// Package dcasim is a discrete-event architectural simulator reproducing
// "DCA: a DRAM-Cache-Aware DRAM Controller" (Huang, Nagarajan & Joshi,
// SC '16). It models die-stacked DRAM caches with tags in DRAM, the three
// controller designs the paper studies (CD, ROD, and the proposed DCA),
// and the full surrounding system: BLISS scheduling, MAP-I miss
// prediction, XOR remapping, an SRAM tag cache, Lee's DRAM-aware L2
// writeback, synthetic SPEC-like multiprogrammed workloads, and a
// trace-driven out-of-order core model.
//
// The package is a thin facade over the internal packages: it re-exports
// the configuration, the simulation entry points, and the experiment
// drivers that regenerate every table and figure of the paper.
//
// Quick start:
//
//	cfg := dcasim.BenchConfig()
//	cfg.Benchmarks = []string{"mcf", "lbm", "libquantum", "omnetpp"}
//	cfg.Design = dcasim.DCA
//	res, err := dcasim.Run(cfg)
//
// See examples/ for complete programs and cmd/experiments for the
// evaluation harness.
package dcasim

import (
	"dcasim/internal/config"
	"dcasim/internal/core"
	"dcasim/internal/dcache"
	"dcasim/internal/exp"
	"dcasim/internal/rescache"
	"dcasim/internal/sched"
	"dcasim/internal/sim"
	"dcasim/internal/stats"
	"dcasim/internal/workload"

	// The facade links the full in-tree scheduling-policy set (ATLAS, ...)
	// so every registered name resolves for any importer; built-ins
	// register from internal/sched itself.
	_ "dcasim/internal/sched/policies"
)

// Config is the full-system configuration (see internal/config).
type Config = config.Config

// Result carries the outputs of one simulation run.
type Result = sim.Result

// Design selects the DRAM cache controller organisation.
type Design = core.Design

// Controller designs under study.
const (
	CD  = core.CD
	ROD = core.ROD
	DCA = core.DCA
)

// Algorithm names the base scheduling policy (a registered policy
// name; see SchedulerNames and docs/adding-a-policy.md).
type Algorithm = core.Algorithm

// Built-in scheduling algorithms. Additional policies (e.g. ATLAS)
// register themselves via internal/sched/policies; select them by name
// with ParseAlgorithm or by setting Config.Algorithm directly.
const (
	AlgBLISS  = core.AlgBLISS
	AlgFRFCFS = core.AlgFRFCFS
	AlgFCFS   = core.AlgFCFS
)

// ParseAlgorithm resolves a policy name (case-insensitive; aliases
// accepted) against the registry.
func ParseAlgorithm(s string) (Algorithm, error) { return core.ParseAlgorithm(s) }

// SchedulerNames lists every registered scheduling policy's canonical
// name, sorted.
func SchedulerNames() []string { return sched.Names() }

// Org selects the DRAM cache organization.
type Org = dcache.Org

// DRAM cache organizations.
const (
	SetAssoc     = dcache.SetAssoc
	DirectMapped = dcache.DirectMapped
)

// Mix is a four-core multiprogrammed workload.
type Mix = workload.Mix

// Runner memoizes simulation runs and produces the paper's tables and
// figures.
type Runner = exp.Runner

// Table is the aligned-text result table returned by experiment drivers.
type Table = stats.Table

// Sample is a replicated measurement cell: the mean over N seeded
// replicate runs and its 95% confidence half-width. Tables render it as
// "mean ±ci" in text and split it into two columns in CSV/JSON.
type Sample = stats.Sample

// PaperConfig returns the paper's Table II configuration (500 M
// instructions per core — use BenchConfig for tractable runs).
func PaperConfig() Config { return config.Paper() }

// BenchConfig returns the scaled configuration used by the benchmark
// harness; shapes and ratios follow Table II.
func BenchConfig() Config { return config.Bench() }

// TestConfig returns a small configuration for quick experiments.
func TestConfig() Config { return config.Test() }

// Run executes one simulation.
func Run(cfg Config) (Result, error) { return sim.Run(cfg) }

// AloneIPC measures a benchmark's alone IPC on the CD baseline, the
// denominator of weighted speedup.
func AloneIPC(cfg Config, bench string) (float64, error) { return sim.AloneIPC(cfg, bench) }

// TableIMixes returns the paper's 30 workload groupings (Table I).
func TableIMixes() []Mix { return workload.TableI() }

// BenchmarkNames lists the synthetic SPEC-like benchmarks.
func BenchmarkNames() []string { return workload.Names() }

// NewRunner builds an experiment runner over a base configuration and a
// set of workload mixes; workers <= 0 uses GOMAXPROCS.
func NewRunner(base Config, mixes []Mix, workers int) *Runner {
	return exp.NewRunner(base, mixes, workers)
}

// ResultCache is the persistent content-addressed result cache; attach
// one to a Runner with SetCache to make repeated evaluations free.
type ResultCache = rescache.Cache

// OpenResultCache opens (creating if needed) a result cache directory.
func OpenResultCache(dir string) (*ResultCache, error) { return rescache.Open(dir) }

// SweepSpec is a serializable scenario sweep (see internal/exp and
// examples/sweep).
type SweepSpec = exp.SweepSpec

// LoadSweep reads and validates a sweep spec file.
func LoadSweep(path string) (SweepSpec, error) { return exp.LoadSweep(path) }

// RunSweep evaluates a sweep spec over a bounded worker pool (workers
// must be >= 1; output is byte-identical at every worker count); cache
// may be nil, and an optional progress observer receives per-run events.
func RunSweep(spec SweepSpec, workers int, cache *ResultCache, progress ...ProgressFunc) (*Table, *Runner, error) {
	return exp.RunSweep(spec, workers, cache, progress...)
}

// SweepOpts bundles the execution knobs of a sweep: workers, cache,
// progress, keep-going failure collection, and the per-run watchdog.
type SweepOpts = exp.SweepOpts

// RunSweepOpts is RunSweep with the full option set.
func RunSweepOpts(spec SweepSpec, opts SweepOpts) (*Table, *Runner, error) {
	return exp.RunSweepOpts(spec, opts)
}

// RunPanicError is the typed error a panicking simulation surfaces as:
// the panic fails its own run (carrying the config hash and captured
// stack) instead of crashing the whole evaluation process.
type RunPanicError = exp.RunPanicError

// RunTimeoutError reports a run that exceeded the configured per-run
// watchdog (Runner.SetRunTimeout / SweepOpts.RunTimeout).
type RunTimeoutError = exp.RunTimeoutError

// ProgressFunc observes experiment-engine run-completion events.
type ProgressFunc = exp.ProgressFunc

// StderrProgress returns the live stderr progress reporter (nil outside
// a terminal, which disables reporting).
func StderrProgress() ProgressFunc { return exp.StderrProgress() }

// ValidateWorkers rejects worker counts below 1.
func ValidateWorkers(j int) error { return exp.ValidateWorkers(j) }

// ValidateReplicates rejects replicate counts below 1 (the -seeds flag).
func ValidateReplicates(n int) error { return exp.ValidateReplicates(n) }

// ReplicateConfigs expands cfg into n seeded replicate configs: element
// 0 is cfg itself, element k shifts the seed by a fixed stride
// (config.ReplicateSeed), so replicates content-address and cache like
// any other config.
func ReplicateConfigs(cfg Config, n int) []Config { return exp.ReplicateConfigs(cfg, n) }

// LoadConfig reads a configuration written by SaveConfig (a versioned
// JSON envelope; see internal/config).
func LoadConfig(path string) (Config, error) { return config.Load(path) }

// SaveConfig writes a configuration as versioned JSON.
func SaveConfig(path string, cfg Config) error { return config.Save(path, cfg) }
