package dcasim

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dcasim/internal/exp"
	"dcasim/internal/stats"
)

// goldenFigures renders every experiment driver — Tables I–II, Figs. 8–19,
// and the three extension studies — at the test scale over two mixes. The
// file pins the drivers' numeric output bit-for-bit, so a refactor of the
// experiment layer (e.g. replacing the hand-rolled enumeration with
// declarative specs) must reproduce the exact same tables.
func goldenFigures() (string, error) {
	mixes := TableIMixes()[:2]
	r := NewRunner(TestConfig(), mixes, 0)
	entries := []struct {
		name string
		run  func() (*stats.Table, error)
	}{
		{"tableI", func() (*stats.Table, error) { return exp.TableI(mixes), nil }},
		{"tableII", func() (*stats.Table, error) { return r.TableII(), nil }},
		{"fig8", r.Fig8},
		{"fig9", r.Fig9},
		{"fig10", r.Fig10},
		{"fig11", r.Fig11},
		{"fig12", r.Fig12},
		{"fig13", r.Fig13},
		{"fig14", r.Fig14},
		{"fig15", r.Fig15},
		{"fig16", r.Fig16},
		{"fig17", r.Fig17},
		{"fig18", r.Fig18},
		{"fig19", r.Fig19},
		{"twtr", r.TWTRSweep},
		{"sched", r.SchedulerStudy},
		{"bear", r.BEARStudy},
	}
	var b strings.Builder
	for _, e := range entries {
		tbl, err := e.run()
		if err != nil {
			return "", fmt.Errorf("%s: %w", e.name, err)
		}
		fmt.Fprintf(&b, "== %s ==\n%s\n", e.name, tbl)
	}
	return b.String(), nil
}

// TestGoldenFigures pins every figure and table driver bit-for-bit.
// Regenerate (only when an intentional model change lands) with:
//
//	go test -run TestGoldenFigures -update .
func TestGoldenFigures(t *testing.T) {
	got, err := goldenFigures()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "golden_figures.txt")
	if *updateGolden {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden file (regenerate with -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("figure drivers diverged from golden file:\n--- want\n%s\n--- got\n%s", want, got)
	}
}
