package dcasim

import (
	"testing"
)

func TestPublicAPIRoundTrip(t *testing.T) {
	cfg := TestConfig()
	cfg.Benchmarks = []string{"soplex", "mcf", "gcc", "libquantum"}
	cfg.Design = DCA
	cfg.Org = DirectMapped
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.IPC) != 4 {
		t.Fatalf("got %d IPCs, want 4", len(res.IPC))
	}
	for i, ipc := range res.IPC {
		if ipc <= 0 {
			t.Errorf("core %d IPC %v", i, ipc)
		}
	}
}

func TestTableIMixes(t *testing.T) {
	mixes := TableIMixes()
	if len(mixes) != 30 {
		t.Fatalf("%d mixes, want 30", len(mixes))
	}
}

func TestBenchmarkNames(t *testing.T) {
	names := BenchmarkNames()
	if len(names) != 11 {
		t.Fatalf("%d benchmarks, want 11", len(names))
	}
}

func TestAloneIPCPositive(t *testing.T) {
	ipc, err := AloneIPC(TestConfig(), "gcc")
	if err != nil {
		t.Fatal(err)
	}
	if ipc <= 0 {
		t.Fatalf("alone IPC %v", ipc)
	}
}

// TestDCAOutperformsCD is the headline acceptance test: on a
// representative mix, DCA must beat CD in end-to-end completion time for
// both organizations — the paper's core claim.
func TestDCAOutperformsCD(t *testing.T) {
	for _, org := range []Org{SetAssoc, DirectMapped} {
		var total [2]float64
		for i, d := range []Design{CD, DCA} {
			cfg := TestConfig()
			cfg.Benchmarks = []string{"lbm", "mcf", "leslie3d", "omnetpp"}
			cfg.Org = org
			cfg.Design = d
			res, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			total[i] = res.TotalNS()
		}
		if total[1] >= total[0] {
			t.Errorf("%v: DCA (%.0f ns) not faster than CD (%.0f ns)", org, total[1], total[0])
		}
	}
}

// TestDCATurnaroundsLowerThanROD checks the Fig. 14/15 mechanism: DCA
// must process far more accesses per bus turnaround than ROD.
func TestDCATurnaroundsLowerThanROD(t *testing.T) {
	get := func(d Design) float64 {
		cfg := TestConfig()
		cfg.Benchmarks = []string{"lbm", "mcf", "leslie3d", "omnetpp"}
		cfg.Design = d
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.AccessesPerTurnaround()
	}
	rod, dca := get(ROD), get(DCA)
	if dca < 2*rod {
		t.Errorf("accesses per turnaround: DCA %.1f vs ROD %.1f — DCA should be several times higher", dca, rod)
	}
}
