module dcasim

go 1.21
