// Command benchdiff compares two benchjson reports and fails on a
// performance regression — the CI bench-gate: a PR that slows a guarded
// benchmark past the time tolerance, or adds a single allocation per op
// to the zero-alloc kernel benchmarks, exits nonzero instead of landing
// silently.
//
//	benchdiff [-time-tol 15] [-alloc-tol 0] [-alloc-tol-pct 1] baseline.json current.json
//
// The time tolerance absorbs machine noise (benchmarks run on whatever
// runner CI hands out). Allocs/op may grow by at most
// max(alloc-tol, baseline*alloc-tol-pct/100) — both tolerances preserve
// zero, so a zero-alloc kernel benchmark fails on a single new
// allocation per op, while allocation-heavy end-to-end benchmarks get
// ~1% headroom for GOMAXPROCS-dependent worker-pool skew. A benchmark
// present in the baseline but missing from the current report also
// fails — dropping a benchmark must not green the gate.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"dcasim/internal/benchfmt"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchdiff: ")
	var (
		timeTol     = flag.Float64("time-tol", 15, "allowed ns/op growth in percent")
		allocTol    = flag.Int64("alloc-tol", 0, "allowed allocs/op growth (absolute)")
		allocTolPct = flag.Float64("alloc-tol-pct", 1, "allowed allocs/op growth in percent of the baseline (zero-alloc baselines stay strict)")
	)
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-time-tol pct] [-alloc-tol n] [-alloc-tol-pct pct] baseline.json current.json")
		os.Exit(2)
	}
	baseline, err := benchfmt.Load(flag.Arg(0))
	if err != nil {
		log.Fatal(err)
	}
	current, err := benchfmt.Load(flag.Arg(1))
	if err != nil {
		log.Fatal(err)
	}
	if len(baseline.Benchmarks) == 0 {
		log.Fatalf("baseline %s carries no benchmarks — refusing to vacuously pass", flag.Arg(0))
	}

	rows, failed := benchfmt.Compare(baseline, current, *timeTol, *allocTol, *allocTolPct)
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "benchmark\tbase ns/op\tcur ns/op\tΔtime\tbase allocs\tcur allocs\tverdict")
	for _, r := range rows {
		if r.Verdict == benchfmt.Missing {
			fmt.Fprintf(w, "%s\t%.0f\t-\t-\t%d\t-\t%s\n", r.Name, r.BaseNs, r.BaseAllocs, r.Verdict)
			continue
		}
		fmt.Fprintf(w, "%s\t%.0f\t%.0f\t%+.1f%%\t%d\t%d\t%s\n",
			r.Name, r.BaseNs, r.CurNs, r.TimeDeltaPct, r.BaseAllocs, r.CurAllocs, r.Verdict)
	}
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}
	if failed {
		log.Fatalf("FAIL: regression beyond tolerance (time +%.0f%%, allocs +max(%d, %.1f%%))", *timeTol, *allocTol, *allocTolPct)
	}
	fmt.Printf("OK: %d benchmarks within tolerance (time +%.0f%%, allocs +max(%d, %.1f%%))\n", len(rows), *timeTol, *allocTol, *allocTolPct)
}
