// Command benchjson converts `go test -bench` text output on stdin into a
// JSON document on stdout, so CI can archive benchmark results as a
// machine-readable artifact and track the performance trajectory per PR.
//
//	go test -run '^$' -bench . -benchmem . | go run ./cmd/benchjson > BENCH.json
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
}

// Report is the emitted document.
type Report struct {
	Timestamp  string      `json:"timestamp"`
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	rep := Report{Timestamp: time.Now().UTC().Format(time.RFC3339)}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			continue
		case strings.HasPrefix(line, "goarch:"):
			rep.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			continue
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		case !strings.HasPrefix(line, "Benchmark"):
			continue
		}
		f := strings.Fields(line)
		// Name  N  ns/op-value "ns/op"  [B/op-value "B/op"  allocs-value "allocs/op"]
		if len(f) < 4 || f[3] != "ns/op" {
			continue
		}
		b := Benchmark{Name: f[0]}
		var err error
		if b.Iterations, err = strconv.ParseInt(f[1], 10, 64); err != nil {
			continue
		}
		if b.NsPerOp, err = strconv.ParseFloat(f[2], 64); err != nil {
			continue
		}
		for i := 4; i+1 < len(f); i += 2 {
			v, err := strconv.ParseInt(f[i], 10, 64)
			if err != nil {
				continue
			}
			switch f[i+1] {
			case "B/op":
				b.BytesPerOp = v
			case "allocs/op":
				b.AllocsPerOp = v
			}
		}
		rep.Benchmarks = append(rep.Benchmarks, b)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
