// Command benchjson converts `go test -bench` text output on stdin into a
// JSON document on stdout, so CI can archive benchmark results as a
// machine-readable artifact and track the performance trajectory per PR.
// The parsing and document shape live in internal/benchfmt, shared with
// cmd/benchdiff (the CI regression gate).
//
//	go test -run '^$' -bench . -benchmem . | go run ./cmd/benchjson > BENCH.json
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"dcasim/internal/benchfmt"
)

func main() {
	rep, err := benchfmt.Parse(os.Stdin, time.Now())
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
