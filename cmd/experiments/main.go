// Command experiments regenerates every table and figure of the paper's
// evaluation and prints them as aligned text tables.
//
// Usage:
//
//	experiments [-mixes N] [-workers N] [-scale bench|test] [-only fig8,fig9,...]
//
// By default it runs all 30 Table I workload mixes at the bench scale and
// prints Tables I–II and Figures 8–19.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"dcasim"
	"dcasim/internal/exp"
	"dcasim/internal/stats"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")
	var (
		nmixes  = flag.Int("mixes", 30, "number of Table I mixes to evaluate (1-30)")
		workers = flag.Int("workers", 0, "parallel simulations (0 = GOMAXPROCS)")
		scale   = flag.String("scale", "bench", "configuration scale: bench or test")
		only    = flag.String("only", "", "comma-separated subset, e.g. tableI,fig8,fig18")
		seed    = flag.Uint64("seed", 1, "base random seed")
	)
	flag.Parse()

	var cfg dcasim.Config
	switch *scale {
	case "bench":
		cfg = dcasim.BenchConfig()
	case "test":
		cfg = dcasim.TestConfig()
	default:
		log.Fatalf("unknown scale %q", *scale)
	}
	cfg.Seed = *seed

	mixes := dcasim.TableIMixes()
	if *nmixes < 1 || *nmixes > len(mixes) {
		log.Fatalf("mixes must be in 1..%d", len(mixes))
	}
	mixes = mixes[:*nmixes]

	runner := dcasim.NewRunner(cfg, mixes, *workers)

	want := map[string]bool{}
	if *only != "" {
		for _, f := range strings.Split(*only, ",") {
			want[strings.ToLower(strings.TrimSpace(f))] = true
		}
	}
	selected := func(name string) bool { return len(want) == 0 || want[strings.ToLower(name)] }

	type entry struct {
		name  string
		title string
		run   func() (*stats.Table, error)
	}
	entries := []entry{
		{"tableI", "Table I: workload groupings", func() (*stats.Table, error) { return exp.TableI(mixes), nil }},
		{"tableII", "Table II: system parameters", func() (*stats.Table, error) { return runner.TableII(), nil }},
		{"fig8", "Fig. 8: average speedup (normalized to CD)", runner.Fig8},
		{"fig9", "Fig. 9: average speedup with remapping (normalized to CD w/o remap)", runner.Fig9},
		{"fig10", "Fig. 10: per-workload speedup, set-associative", runner.Fig10},
		{"fig11", "Fig. 11: per-workload speedup, direct-mapped", runner.Fig11},
		{"fig12", "Fig. 12: L2 miss latency improvement, set-associative", runner.Fig12},
		{"fig13", "Fig. 13: L2 miss latency improvement, direct-mapped", runner.Fig13},
		{"fig14", "Fig. 14: accesses per turnaround, set-associative", runner.Fig14},
		{"fig15", "Fig. 15: accesses per turnaround, direct-mapped", runner.Fig15},
		{"fig16", "Fig. 16: row buffer hit rate, set-associative", runner.Fig16},
		{"fig17", "Fig. 17: row buffer hit rate, direct-mapped", runner.Fig17},
		{"fig18", "Fig. 18: DRAM tag accesses vs tag cache size", runner.Fig18},
		{"fig19", "Fig. 19: speedup under Lee DRAM-aware writeback (direct-mapped)", runner.Fig19},
		{"twtr", "Extension: tWTR sensitivity (direct-mapped; paper §V claim)", runner.TWTRSweep},
		{"sched", "Extension: DCA gain under other base schedulers (paper §IV-B claim)", runner.SchedulerStudy},
		{"bear", "Extension: ideal BEAR writeback probe (direct-mapped; paper §VII claim)", runner.BEARStudy},
	}

	start := time.Now()
	for _, e := range entries {
		if !selected(e.name) {
			continue
		}
		t0 := time.Now()
		tbl, err := e.run()
		if err != nil {
			log.Fatalf("%s: %v", e.name, err)
		}
		fmt.Printf("== %s ==\n%s", e.title, tbl)
		fmt.Fprintf(os.Stderr, "[%s done in %v]\n", e.name, time.Since(t0).Round(time.Millisecond))
		fmt.Println()
	}
	fmt.Fprintf(os.Stderr, "[all selected experiments done in %v over %d mixes]\n",
		time.Since(start).Round(time.Millisecond), len(mixes))
}
