// Command experiments regenerates every table and figure of the paper's
// evaluation and prints them as aligned text tables (or CSV/JSON).
//
// Usage:
//
//	experiments [-mixes N] [-j N] [-scale bench|test] [-only fig8,fig9,...]
//	            [-seeds N] [-cache dir] [-format text|csv|json] [-keep-going]
//	            [-run-timeout d] [-list-policies]
//
// By default it runs all 30 Table I workload mixes at the bench scale and
// prints Tables I–II and Figures 8–19 plus the extension studies. The
// figures are declarative specs (internal/exp) evaluated over a
// memoizing runner; with -cache (default $DCASIM_CACHE) results persist
// in a content-addressed directory, so a repeated invocation — locally
// or in CI — recomputes nothing.
//
// -j bounds the worker pool fanning out the independent simulation runs
// (default: all CPUs; -workers is an alias). Output is byte-identical at
// every -j: results commit in spec order, not completion order. On a
// terminal, stderr shows live progress (runs done, simulated vs cached,
// ETA); in batch logs it stays quiet.
//
// -seeds N evaluates every figure over N seed-derived replicates and
// renders each cell as mean ±95% CI; replicates are ordinary
// seed-patched configs, so they share the memo and persistent cache
// like any other run, and -seeds 1 (the default) is bit-identical to
// the unreplicated engine.
//
// -keep-going continues past a failing figure (and past failing runs
// inside each figure), prints every failure, and exits nonzero at the
// end; with a cache attached every successful run still persists, so a
// rerun after a fix recomputes only what is missing. -run-timeout arms
// a per-run watchdog against hung simulations.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"strings"
	"time"

	"dcasim"
	"dcasim/internal/config"
	"dcasim/internal/exp"
	"dcasim/internal/rescache"
	"dcasim/internal/stats"

	// Link the full in-tree scheduling-policy set (ATLAS, ...): the
	// figure specs name only built-ins, but sweep patches loaded through
	// shared configs may select any registered policy.
	_ "dcasim/internal/sched/policies"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")
	var (
		nmixes   = flag.Int("mixes", 30, "number of Table I mixes to evaluate (1-30)")
		workers  = flag.Int("j", runtime.NumCPU(), "parallel simulation workers")
		scale    = flag.String("scale", "bench", "configuration scale: bench or test")
		only     = flag.String("only", "", "comma-separated subset, e.g. tableI,fig8,fig18")
		seed     = flag.Uint64("seed", 1, "base random seed")
		seeds    = flag.Int("seeds", 1, "seeded replicates per figure cell, rendered as mean ±95% CI (1 = single run)")
		cacheDir = flag.String("cache", os.Getenv("DCASIM_CACHE"), "persistent result cache directory (default $DCASIM_CACHE; empty = no cache)")
		format   = flag.String("format", "text", "table output format: text, csv, or json")
		keep     = flag.Bool("keep-going", false, "continue past failing figures, report every failure, exit nonzero at the end")
		runTO    = flag.Duration("run-timeout", 0, "per-run watchdog: fail a simulation that exceeds this (0 = off)")
		listPols = flag.Bool("list-policies", false, "print the registered scheduling policies and exit")
	)
	flag.IntVar(workers, "workers", *workers, "alias for -j")
	flag.Parse()
	if *listPols {
		fmt.Print(exp.DescribePolicies())
		return
	}

	// Validate before any simulation: a typo must not cost a full
	// bench-scale sweep before failing at the first table.
	if err := stats.CheckFormat(*format); err != nil {
		log.Fatal(err)
	}
	if err := exp.ValidateWorkers(*workers); err != nil {
		log.Fatal(err)
	}
	if err := exp.ValidateReplicates(*seeds); err != nil {
		log.Fatal(err)
	}

	cfg, err := config.ParsePreset(*scale)
	if err != nil || *scale == "paper" {
		log.Fatalf("unknown scale %q (want bench or test)", *scale)
	}
	cfg.Seed = *seed

	mixes := dcasim.TableIMixes()
	if *nmixes < 1 || *nmixes > len(mixes) {
		log.Fatalf("mixes must be in 1..%d", len(mixes))
	}
	mixes = mixes[:*nmixes]

	runner := dcasim.NewRunner(cfg, mixes, *workers)
	runner.SetProgress(exp.StderrProgress())
	runner.SetKeepGoing(*keep)
	runner.SetRunTimeout(*runTO)
	runner.SetReplicates(*seeds)
	if *cacheDir != "" {
		cache, err := rescache.Open(*cacheDir)
		if err != nil {
			log.Fatal(err)
		}
		runner.SetCache(cache)
	}

	want := map[string]bool{}
	if *only != "" {
		for _, f := range strings.Split(*only, ",") {
			want[strings.ToLower(strings.TrimSpace(f))] = true
		}
	}
	selected := func(name string) bool { return len(want) == 0 || want[strings.ToLower(name)] }

	type entry struct {
		name  string
		title string
		run   func() (*stats.Table, error)
	}
	entries := []entry{
		{"tableI", "Table I: workload groupings", func() (*stats.Table, error) { return exp.TableI(mixes), nil }},
		{"tableII", "Table II: system parameters", func() (*stats.Table, error) { return runner.TableII(), nil }},
	}
	for _, spec := range exp.Figures {
		spec := spec
		entries = append(entries, entry{spec.Name, spec.Title,
			func() (*stats.Table, error) { return runner.Table(spec) }})
	}

	// A typoed -only name must fail loudly, not silently select nothing
	// (an empty selection would exit 0 and turn a CI smoke green while
	// exercising zero simulations).
	known := map[string]bool{}
	var names []string
	for _, e := range entries {
		known[strings.ToLower(e.name)] = true
		names = append(names, e.name)
	}
	for w := range want {
		if !known[w] {
			log.Fatalf("unknown -only entry %q (have %s)", w, strings.Join(names, ","))
		}
	}

	start := time.Now()
	failed := false
	for _, e := range entries {
		if !selected(e.name) {
			continue
		}
		t0 := time.Now()
		tbl, err := e.run()
		if err != nil {
			if !*keep {
				log.Fatalf("%s: %v", e.name, err)
			}
			// Keep-going: report, skip this figure's output, and carry
			// on — later figures may share runs that already succeeded.
			log.Printf("%s: %v", e.name, err)
			failed = true
			continue
		}
		switch *format {
		case "text":
			fmt.Printf("== %s ==\n", e.title)
			if err := tbl.Write(os.Stdout, *format); err != nil {
				log.Fatal(err)
			}
		case "csv":
			fmt.Printf("# %s\n", e.title)
			if err := tbl.Write(os.Stdout, *format); err != nil {
				log.Fatal(err)
			}
		case "json":
			data, err := json.Marshal(struct {
				Name  string       `json:"name"`
				Title string       `json:"title"`
				Table *stats.Table `json:"table"`
			}{e.name, e.title, tbl})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%s\n", data)
		}
		fmt.Fprintf(os.Stderr, "[%s done in %v]\n", e.name, time.Since(t0).Round(time.Millisecond))
		fmt.Println()
	}
	exp.WarnCacheErr(os.Stderr, runner)
	fmt.Fprintf(os.Stderr, "[all selected experiments done in %v over %d mixes at -j %d; %d simulations executed, %d cache hits]\n",
		time.Since(start).Round(time.Millisecond), len(mixes), *workers, runner.SimRuns(), runner.CacheHits())
	if failed {
		os.Exit(1)
	}
}
