// Command dcasim runs a single simulation and prints its results: per-core
// IPC, DRAM-cache behaviour, row-buffer statistics, and controller
// counters. It is the quickest way to inspect one configuration.
//
// Usage:
//
//	dcasim [-design cd|rod|dca] [-alg name] [-org sa|dm] [-remap] [-lee]
//	       [-tagkb N] [-bench m1,m2,m3,m4] [-instr N]
//	       [-scale bench|test|paper] [-seed N] [-seeds N] [-config cfg.json]
//	       [-save-config cfg.json] [-cache dir] [-run-timeout d]
//	       [-list-policies]
//
//	dcasim sweep -spec spec.json [-cache dir] [-j N] [-seeds N]
//	             [-format text|csv|json] [-keep-going] [-run-timeout d]
//
// -config loads a scenario written by -save-config (or by hand): the
// file is the complete serialized configuration, and any flags given
// explicitly alongside it override the loaded values. -cache reads and
// writes the persistent content-addressed result cache (default from
// $DCASIM_CACHE), so repeating a run is free.
//
// The sweep subcommand evaluates a declarative sweep spec — a base
// config plus named axes of JSON overrides, run over their cartesian
// product — against the same cache, fanning the points out over -j
// parallel workers (default: all CPUs; -workers is an alias). The
// rendered table is byte-identical at every -j, and on a terminal
// stderr shows live progress. -seeds N (both modes) runs N seed-derived
// replicates of each configuration and reports mean ±95% confidence
// cells; replicates are ordinary seed-patched configs, so they hit the
// same cache. -keep-going runs every point despite
// failures and reports them all (in point order, deterministically);
// because successes persist in the cache either way, rerunning a
// partly-failed sweep recomputes only what is missing. -run-timeout
// arms a per-run watchdog against hung simulations. See
// examples/sweep/ and the README.
//
// -alg selects the base scheduling algorithm by registered policy name
// (case-insensitive; aliases accepted) and -list-policies prints the
// registry — the built-ins plus every policy package linked in via
// dcasim/internal/sched/policies. See docs/adding-a-policy.md.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"strings"
	"time"

	"dcasim"
	"dcasim/internal/config"
	"dcasim/internal/core"
	"dcasim/internal/dcache"
	"dcasim/internal/exp"
	"dcasim/internal/rescache"
	"dcasim/internal/sim"
	"dcasim/internal/stats"

	// Link the full in-tree scheduling-policy set (ATLAS, ...) so -alg
	// and sweep specs resolve every registered name.
	_ "dcasim/internal/sched/policies"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("dcasim: ")
	if len(os.Args) > 1 && os.Args[1] == "sweep" {
		runSweep(os.Args[2:])
		return
	}
	var (
		design   = flag.String("design", "dca", "controller design: cd, rod, or dca")
		alg      = flag.String("alg", "bliss", "base scheduling algorithm (a registered policy name; see -list-policies)")
		listPols = flag.Bool("list-policies", false, "print the registered scheduling policies and exit")
		org      = flag.String("org", "sa", "cache organization: sa (set-associative) or dm (direct-mapped)")
		remap    = flag.Bool("remap", false, "enable XOR permutation remapping")
		lee      = flag.Bool("lee", false, "enable Lee DRAM-aware L2 writeback")
		tagKB    = flag.Int("tagkb", 0, "SRAM tag cache size in KB (0 = none; set-associative only)")
		benches  = flag.String("bench", "soplex,mcf,gcc,libquantum", "comma-separated benchmarks, one per core")
		instr    = flag.Int64("instr", 0, "instructions per core (0 = scale default)")
		scale    = flag.String("scale", "bench", "configuration scale: bench, test, or paper")
		seed     = flag.Uint64("seed", 1, "random seed")
		seeds    = flag.Int("seeds", 1, "seeded replicates: run N seed-derived replicates and report mean ±95% CI (1 = single run)")
		cfgPath  = flag.String("config", "", "load the full configuration from this JSON file (explicit flags still override)")
		savePath = flag.String("save-config", "", "write the resolved configuration to this JSON file and exit")
		cacheDir = flag.String("cache", os.Getenv("DCASIM_CACHE"), "persistent result cache directory (default $DCASIM_CACHE; empty = no cache)")
		workers  = flag.Int("j", runtime.NumCPU(), "runner worker-pool bound (a single run occupies one worker)")
		runTO    = flag.Duration("run-timeout", 0, "per-run watchdog: fail a simulation that exceeds this (0 = off)")
	)
	flag.IntVar(workers, "workers", *workers, "alias for -j")
	flag.Parse()
	if *listPols {
		fmt.Print(exp.DescribePolicies())
		return
	}
	if err := exp.ValidateWorkers(*workers); err != nil {
		log.Fatal(err)
	}
	if err := exp.ValidateReplicates(*seeds); err != nil {
		log.Fatal(err)
	}

	var cfg dcasim.Config
	var err error
	if *cfgPath != "" {
		if cfg, err = config.Load(*cfgPath); err != nil {
			log.Fatal(err)
		}
	} else if cfg, err = config.ParsePreset(*scale); err != nil {
		log.Fatal(err)
	}

	// With -config, a flag overrides the file only when given explicitly;
	// without it, every flag (default or not) configures the run as before.
	explicit := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { explicit[f.Name] = true })
	set := func(name string) bool { return *cfgPath == "" || explicit[name] }

	if set("scale") && *cfgPath != "" {
		log.Fatal("-scale and -config are mutually exclusive")
	}
	if set("design") {
		if cfg.Design, err = core.ParseDesign(*design); err != nil {
			log.Fatal(err)
		}
	}
	if set("alg") {
		if cfg.Algorithm, err = core.ParseAlgorithm(*alg); err != nil {
			log.Fatal(err)
		}
	}
	if set("org") {
		if cfg.Org, err = dcache.ParseOrg(*org); err != nil {
			log.Fatal(err)
		}
	}
	if set("remap") {
		cfg.XORRemap = *remap
	}
	if set("lee") {
		cfg.LeeWriteback = *lee
	}
	if set("tagkb") {
		cfg.TagCacheKB = *tagKB
	}
	if set("bench") {
		cfg.Benchmarks = strings.Split(*benches, ",")
	}
	if set("seed") {
		cfg.Seed = *seed
	}
	if *instr > 0 {
		cfg.InstrPerCore = *instr
	}

	if *savePath != "" {
		if err := config.Save(*savePath, cfg); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s (hash %.12s…)\n", *savePath, cfg.Hash())
		return
	}

	if *seeds > 1 {
		if err := replicateReport(cfg, *seeds, *cacheDir, *workers, *runTO); err != nil {
			log.Fatal(err)
		}
		return
	}

	res, err := cachedRun(cfg, *cacheDir, *workers, *runTO)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("design=%v alg=%v org=%v remap=%v lee=%v tagcache=%dKB\n", cfg.Design, cfg.Algorithm, cfg.Org, cfg.XORRemap, cfg.LeeWriteback, cfg.TagCacheKB)
	for i, b := range res.Benchmarks {
		fmt.Printf("core %d  %-12s IPC %.4f  finished at %.0f ns\n", i, b, res.IPC[i], res.FinishNS[i])
	}
	dcs := res.DCache
	fmt.Printf("dram cache: reads %d (hit %.1f%%), writebacks %d, refills %d, victims %d\n",
		dcs.ReadReqs, 100*dcs.ReadHitRate(), dcs.WritebackReqs, dcs.RefillReqs, dcs.VictimWrites)
	fmt.Printf("            avg read latency %.1f ns, L2 miss latency %.1f ns\n",
		res.AvgReadLatencyNS(), res.L2MissLatencyNS)
	ds := res.DRAM
	fmt.Printf("dram array: %d accesses (%d reads / %d writes), %d tag accesses\n",
		ds.Accesses, ds.Reads, ds.Writes, ds.TagAccesses)
	fmt.Printf("            read row-buffer hit rate %.1f%%, %.1f accesses per turnaround (%d turnarounds)\n",
		100*ds.ReadRowHitRate(), res.AccessesPerTurnaround(), ds.Turnarounds)
	cs := res.Ctrl
	fmt.Printf("controller: PR %d, LR %d (OFS %d), writes %d, forced flushes %d\n",
		cs.PRIssued, cs.LRIssued, cs.OFSIssues, cs.WritesIssued, cs.ForcedFlushes)
	fmt.Printf("main mem:   %d reads, %d writes\n", res.MainMemReads, res.MainMemWrites)
	if res.TagCacheLookups > 0 {
		fmt.Printf("tag cache:  %d lookups, %.1f%% hit\n", res.TagCacheLookups,
			100*float64(res.TagCacheHits)/float64(res.TagCacheLookups))
	}
}

// cachedRun executes one simulation through the persistent cache when a
// directory is configured, so repeating a run costs nothing. It routes
// through the exp runner — the one tested implementation of the
// memo/cache/trace-bypass rules, panic isolation, and the watchdog —
// rather than re-deriving them here. Only the bare default (no cache,
// no watchdog) calls the simulator directly.
func cachedRun(cfg dcasim.Config, cacheDir string, workers int, runTimeout time.Duration) (sim.Result, error) {
	if cacheDir == "" && runTimeout <= 0 {
		return sim.Run(cfg)
	}
	r := exp.NewRunner(cfg, nil, workers)
	r.SetRunTimeout(runTimeout)
	if cacheDir != "" {
		cache, err := rescache.Open(cacheDir)
		if err != nil {
			return sim.Result{}, err
		}
		r.SetCache(cache)
	}
	res, err := r.Run(cfg)
	if err != nil {
		return sim.Result{}, err
	}
	if cacheDir != "" && r.SimRuns() == 0 {
		fmt.Fprintf(os.Stderr, "[cache hit %.12s… in %s]\n", cfg.Hash(), cacheDir)
	}
	exp.WarnCacheErr(os.Stderr, r)
	return res, nil
}

// replicateReport runs n seed-derived replicates of cfg through the
// runner (parallel across workers, deduplicated through the persistent
// cache when one is configured) and prints a summary table of mean
// ±95% CI cells for the headline metrics.
func replicateReport(cfg dcasim.Config, n int, cacheDir string, workers int, runTimeout time.Duration) error {
	r := exp.NewRunner(cfg, nil, workers)
	r.SetRunTimeout(runTimeout)
	if cacheDir != "" {
		cache, err := rescache.Open(cacheDir)
		if err != nil {
			return err
		}
		r.SetCache(cache)
	}
	cfgs := exp.ReplicateConfigs(cfg, n)
	if err := r.Ensure(cfgs); err != nil {
		exp.WarnCacheErr(os.Stderr, r)
		return err
	}
	results := make([]sim.Result, n)
	for k, c := range cfgs {
		res, err := r.Run(c) // memo hit: Ensure already computed every replicate
		if err != nil {
			return err
		}
		results[k] = res
	}

	fmt.Printf("design=%v org=%v remap=%v lee=%v tagcache=%dKB  (%d seeded replicates of seed %d)\n",
		cfg.Design, cfg.Org, cfg.XORRemap, cfg.LeeWriteback, cfg.TagCacheKB, n, cfg.Seed)
	tbl := stats.NewTable("metric", "mean ±ci95")
	sample := func(name string, f func(sim.Result) float64) {
		vals := make([]float64, n)
		for k := range results {
			vals[k] = f(results[k])
		}
		tbl.AddRowf(name, stats.Summarize(vals))
	}
	for i, b := range results[0].Benchmarks {
		sample(fmt.Sprintf("ipc%d (%s)", i, b), func(res sim.Result) float64 { return res.IPC[i] })
	}
	sample("avg read latency ns", func(res sim.Result) float64 { return res.AvgReadLatencyNS() })
	sample("L2 miss latency ns", func(res sim.Result) float64 { return res.L2MissLatencyNS })
	sample("read hit rate", func(res sim.Result) float64 { return res.DCache.ReadHitRate() })
	sample("read row-buffer hit rate", func(res sim.Result) float64 { return res.DRAM.ReadRowHitRate() })
	sample("accesses per turnaround", func(res sim.Result) float64 { return res.AccessesPerTurnaround() })
	fmt.Print(tbl.String())
	fmt.Fprintf(os.Stderr, "[%d replicates: %d simulated, %d cache hits]\n", n, r.SimRuns(), r.CacheHits())
	exp.WarnCacheErr(os.Stderr, r)
	return nil
}

// runSweep is the `dcasim sweep` subcommand.
func runSweep(args []string) {
	fs := flag.NewFlagSet("dcasim sweep", flag.ExitOnError)
	var (
		specPath  = fs.String("spec", "", "sweep spec JSON file (required)")
		cacheDir  = fs.String("cache", os.Getenv("DCASIM_CACHE"), "persistent result cache directory (default $DCASIM_CACHE; empty = no cache)")
		workers   = fs.Int("j", runtime.NumCPU(), "parallel simulation workers")
		format    = fs.String("format", "text", "output format: text, csv, or json")
		keepGoing = fs.Bool("keep-going", false, "run every point despite failures and report them all (successes still land in the cache, so a rerun resumes)")
		runTO     = fs.Duration("run-timeout", 0, "per-run watchdog: fail a simulation that exceeds this (0 = off)")
		seeds     = fs.Int("seeds", 0, "seeded replicates per point, reported as mean ±95% CI (0 = the spec's replicates value, default 1)")
	)
	fs.IntVar(workers, "workers", *workers, "alias for -j")
	if err := fs.Parse(args); err != nil {
		log.Fatal(err) // unreachable under ExitOnError; keeps the error visibly handled
	}
	if *specPath == "" {
		fs.Usage()
		log.Fatal("sweep: -spec is required")
	}
	if err := stats.CheckFormat(*format); err != nil {
		// Fail before the sweep runs, not after.
		log.Fatal(err)
	}
	if err := exp.ValidateWorkers(*workers); err != nil {
		log.Fatal(err)
	}
	if *seeds != 0 {
		if err := exp.ValidateReplicates(*seeds); err != nil {
			log.Fatal(err)
		}
	}
	spec, err := exp.LoadSweep(*specPath)
	if err != nil {
		log.Fatal(err)
	}
	var cache *rescache.Cache
	if *cacheDir != "" {
		if cache, err = rescache.Open(*cacheDir); err != nil {
			log.Fatal(err)
		}
	}
	tbl, runner, err := exp.RunSweepOpts(spec, exp.SweepOpts{
		Workers:    *workers,
		Cache:      cache,
		Progress:   exp.StderrProgress(),
		KeepGoing:  *keepGoing,
		RunTimeout: *runTO,
		Replicates: *seeds,
	})
	if err != nil {
		exp.WarnCacheErr(os.Stderr, runner)
		log.Fatal(err)
	}
	if err := tbl.Write(os.Stdout, *format); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "[sweep %s: %d points at -j %d, %d simulated, %d cache hits]\n",
		spec.Name, len(spec.Points()), *workers, runner.SimRuns(), runner.CacheHits())
	exp.WarnCacheErr(os.Stderr, runner)
}
