// Command dcasim runs a single simulation and prints its results: per-core
// IPC, DRAM-cache behaviour, row-buffer statistics, and controller
// counters. It is the quickest way to inspect one configuration.
//
// Usage:
//
//	dcasim [-design cd|rod|dca] [-org sa|dm] [-remap] [-lee] [-tagkb N]
//	       [-bench m1,m2,m3,m4] [-instr N] [-scale bench|test|paper] [-seed N]
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"dcasim"
	"dcasim/internal/core"
	"dcasim/internal/dcache"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("dcasim: ")
	var (
		design  = flag.String("design", "dca", "controller design: cd, rod, or dca")
		org     = flag.String("org", "sa", "cache organization: sa (set-associative) or dm (direct-mapped)")
		remap   = flag.Bool("remap", false, "enable XOR permutation remapping")
		lee     = flag.Bool("lee", false, "enable Lee DRAM-aware L2 writeback")
		tagKB   = flag.Int("tagkb", 0, "SRAM tag cache size in KB (0 = none; set-associative only)")
		benches = flag.String("bench", "soplex,mcf,gcc,libquantum", "comma-separated benchmarks, one per core")
		instr   = flag.Int64("instr", 0, "instructions per core (0 = scale default)")
		scale   = flag.String("scale", "bench", "configuration scale: bench, test, or paper")
		seed    = flag.Uint64("seed", 1, "random seed")
	)
	flag.Parse()

	var cfg dcasim.Config
	switch *scale {
	case "bench":
		cfg = dcasim.BenchConfig()
	case "test":
		cfg = dcasim.TestConfig()
	case "paper":
		cfg = dcasim.PaperConfig()
	default:
		log.Fatalf("unknown scale %q", *scale)
	}

	d, err := core.ParseDesign(*design)
	if err != nil {
		log.Fatal(err)
	}
	cfg.Design = d
	switch *org {
	case "sa":
		cfg.Org = dcache.SetAssoc
	case "dm":
		cfg.Org = dcache.DirectMapped
	default:
		log.Fatalf("unknown org %q (want sa or dm)", *org)
	}
	cfg.XORRemap = *remap
	cfg.LeeWriteback = *lee
	cfg.TagCacheKB = *tagKB
	cfg.Benchmarks = strings.Split(*benches, ",")
	cfg.Seed = *seed
	if *instr > 0 {
		cfg.InstrPerCore = *instr
	}

	res, err := dcasim.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("design=%v org=%v remap=%v lee=%v tagcache=%dKB\n", cfg.Design, cfg.Org, cfg.XORRemap, cfg.LeeWriteback, cfg.TagCacheKB)
	for i, b := range res.Benchmarks {
		fmt.Printf("core %d  %-12s IPC %.4f  finished at %.0f ns\n", i, b, res.IPC[i], res.FinishNS[i])
	}
	dcs := res.DCache
	fmt.Printf("dram cache: reads %d (hit %.1f%%), writebacks %d, refills %d, victims %d\n",
		dcs.ReadReqs, 100*dcs.ReadHitRate(), dcs.WritebackReqs, dcs.RefillReqs, dcs.VictimWrites)
	fmt.Printf("            avg read latency %.1f ns, L2 miss latency %.1f ns\n",
		res.AvgReadLatencyNS(), res.L2MissLatencyNS)
	ds := res.DRAM
	fmt.Printf("dram array: %d accesses (%d reads / %d writes), %d tag accesses\n",
		ds.Accesses, ds.Reads, ds.Writes, ds.TagAccesses)
	fmt.Printf("            read row-buffer hit rate %.1f%%, %.1f accesses per turnaround (%d turnarounds)\n",
		100*ds.ReadRowHitRate(), res.AccessesPerTurnaround(), ds.Turnarounds)
	cs := res.Ctrl
	fmt.Printf("controller: PR %d, LR %d (OFS %d), writes %d, forced flushes %d\n",
		cs.PRIssued, cs.LRIssued, cs.OFSIssues, cs.WritesIssued, cs.ForcedFlushes)
	fmt.Printf("main mem:   %d reads, %d writes\n", res.MainMemReads, res.MainMemWrites)
	if res.TagCacheLookups > 0 {
		fmt.Printf("tag cache:  %d lookups, %.1f%% hit\n", res.TagCacheLookups,
			100*float64(res.TagCacheHits)/float64(res.TagCacheLookups))
	}
}
