// Command dcalint is the repo's invariant checker: a multichecker over
// the custom analyzers in internal/lint that machine-enforces the
// simulator's headline guarantees — determinism (no wall clock, no
// math/rand, no goroutines, no unordered map iteration in simulation
// packages), the event kernel's zero-allocation contract
// (//dcalint:noalloc functions), exhaustive switches over the closed
// enums, picosecond/nanosecond unit hygiene, and never-discarded
// rescache/trace errors.
//
// Usage:
//
//	dcalint [-list] [-only name[,name...]] [packages]
//
// With no packages, ./... is checked. Exit status is 1 if any
// diagnostic is reported, 2 on operational failure. Findings are
// suppressed line-by-line with
//
//	//nolint:dcalint/<name> -- <justification>
//
// where the justification is mandatory.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"dcasim/internal/lint"
)

func main() {
	list := flag.Bool("list", false, "print the analyzers and exit")
	only := flag.String("only", "", "comma-separated analyzer names to run (default all)")
	flag.Parse()

	if *list {
		for _, a := range lint.All() {
			doc := a.Doc
			if i := strings.IndexByte(doc, '\n'); i >= 0 {
				doc = doc[:i]
			}
			fmt.Printf("%-15s %s\n", a.Name, doc)
		}
		return
	}

	analyzers := lint.All()
	if *only != "" {
		analyzers = nil
		for _, name := range strings.Split(*only, ",") {
			a := lint.ByName(strings.TrimSpace(name))
			if a == nil {
				fmt.Fprintf(os.Stderr, "dcalint: unknown analyzer %q (see -list)\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.LoadPackages(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dcalint:", err)
		os.Exit(2)
	}
	diags, err := lint.Run(pkgs, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dcalint:", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "dcalint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
