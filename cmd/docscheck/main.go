// Command docscheck is the documentation gate behind `make docs-check`.
// It keeps the prose layer as live as the code layer:
//
//   - Every relative markdown link in README.md, ARCHITECTURE.md, and
//     the docs/ and examples/ trees must resolve to an existing file,
//     and every fragment (#section) must name a real heading in its
//     target document (GitHub anchor rules: lowercased, punctuation
//     stripped, spaces to hyphens).
//   - Every registered scheduling policy must have a row in the policy
//     table of docs/adding-a-policy.md, so the authoring guide cannot
//     silently fall behind the registry. The check links the full
//     policy set the binaries link (internal/sched/policies).
//
// External links (http/https/mailto) are not fetched: the gate must be
// deterministic and offline. Run from the repository root; exits
// nonzero listing every problem found.
package main

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"

	"dcasim/internal/sched"

	// Link the full in-tree scheduling-policy set so the policy-table
	// guard sees every name the binaries can resolve.
	_ "dcasim/internal/sched/policies"
)

// roots are the documentation entry points checked for link integrity,
// relative to the repository root.
var roots = []string{"README.md", "ARCHITECTURE.md", "ROADMAP.md", "docs", "examples"}

// policyGuide is the document whose policy table must list every
// registered policy.
const policyGuide = "docs/adding-a-policy.md"

func main() {
	var problems []string

	files, err := collectMarkdown(roots)
	if err != nil {
		fmt.Fprintf(os.Stderr, "docscheck: %v\n", err)
		os.Exit(1)
	}
	for _, f := range files {
		probs, err := checkLinks(f)
		if err != nil {
			fmt.Fprintf(os.Stderr, "docscheck: %v\n", err)
			os.Exit(1)
		}
		problems = append(problems, probs...)
	}

	probs, err := checkPolicyTable(policyGuide)
	if err != nil {
		fmt.Fprintf(os.Stderr, "docscheck: %v\n", err)
		os.Exit(1)
	}
	problems = append(problems, probs...)

	if len(problems) > 0 {
		for _, p := range problems {
			fmt.Fprintf(os.Stderr, "docscheck: %s\n", p)
		}
		fmt.Fprintf(os.Stderr, "docscheck: %d problem(s)\n", len(problems))
		os.Exit(1)
	}
	fmt.Printf("docscheck OK: %d markdown files, links and policy table verified\n", len(files))
}

// collectMarkdown expands the root list into the sorted set of .md
// files under it. A missing root is itself a failure: the gate must
// notice a renamed README.
func collectMarkdown(roots []string) ([]string, error) {
	var files []string
	for _, root := range roots {
		info, err := os.Stat(root)
		if err != nil {
			return nil, err
		}
		if !info.IsDir() {
			files = append(files, root)
			continue
		}
		err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() && strings.HasSuffix(path, ".md") {
				files = append(files, path)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(files)
	return files, nil
}

// linkRe matches inline markdown links [text](target). Images
// (![alt](target)) match too via the link part, which is what we want.
var linkRe = regexp.MustCompile(`\[[^\]]*\]\(([^)\s]+)\)`)

// checkLinks verifies every relative link in file: the target path
// exists, and its fragment (if any) names a heading in the target.
func checkLinks(file string) ([]string, error) {
	data, err := os.ReadFile(file)
	if err != nil {
		return nil, err
	}
	var problems []string
	for _, m := range linkRe.FindAllStringSubmatch(stripCodeBlocks(string(data)), -1) {
		target := m[1]
		if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") {
			continue
		}
		path, frag, _ := strings.Cut(target, "#")
		dest := file
		if path != "" {
			dest = filepath.Join(filepath.Dir(file), filepath.FromSlash(path))
			if _, err := os.Stat(dest); err != nil {
				problems = append(problems, fmt.Sprintf("%s: broken link %q: %v", file, target, err))
				continue
			}
		}
		if frag != "" && strings.HasSuffix(dest, ".md") {
			ok, err := hasAnchor(dest, frag)
			if err != nil {
				return nil, err
			}
			if !ok {
				problems = append(problems, fmt.Sprintf("%s: link %q: no heading anchors to #%s in %s", file, target, frag, dest))
			}
		}
	}
	return problems, nil
}

// stripCodeBlocks blanks fenced code blocks so example snippets cannot
// produce false link matches.
func stripCodeBlocks(s string) string {
	var b strings.Builder
	inFence := false
	for _, line := range strings.Split(s, "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "```") {
			inFence = !inFence
			b.WriteString("\n")
			continue
		}
		if inFence {
			b.WriteString("\n")
			continue
		}
		b.WriteString(line)
		b.WriteString("\n")
	}
	return b.String()
}

// headingRe matches ATX headings.
var headingRe = regexp.MustCompile(`(?m)^#{1,6}\s+(.+?)\s*$`)

// hasAnchor reports whether the markdown file declares a heading whose
// GitHub-style anchor equals frag.
func hasAnchor(file, frag string) (bool, error) {
	data, err := os.ReadFile(file)
	if err != nil {
		return false, err
	}
	for _, m := range headingRe.FindAllStringSubmatch(stripCodeBlocks(string(data)), -1) {
		if slugify(m[1]) == strings.ToLower(frag) {
			return true, nil
		}
	}
	return false, nil
}

// slugify approximates GitHub's heading-anchor algorithm: lowercase,
// drop everything but letters, digits, spaces, and hyphens, then turn
// spaces into hyphens. Inline code spans keep their text.
func slugify(heading string) string {
	heading = strings.ReplaceAll(heading, "`", "")
	var b strings.Builder
	for _, r := range strings.ToLower(heading) {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '-':
			b.WriteRune(r)
		case r == ' ':
			b.WriteRune('-')
		}
	}
	return b.String()
}

// checkPolicyTable requires a `| <name> |`-leading table row in the
// authoring guide for every registered policy.
func checkPolicyTable(guide string) ([]string, error) {
	data, err := os.ReadFile(guide)
	if err != nil {
		return nil, err
	}
	var problems []string
	for _, name := range sched.Names() {
		row := regexp.MustCompile(`(?mi)^\|\s*` + regexp.QuoteMeta(name) + `\s*\|`)
		if !row.Match(data) {
			problems = append(problems, fmt.Sprintf("%s: registered policy %q has no row in the policy table (add `| %s | ... |`)", guide, name, name))
		}
	}
	return problems, nil
}
