// Command dcatrace works with dcasim's workload traces. It inspects the
// synthetic generators (dump, summary, list) and drives the trace
// subsystem: recording a run's operation streams to a .dct file,
// replaying a file through the full simulator, and verifying that a
// record→replay round trip reproduces the live run bit for bit.
//
// Usage:
//
//	dcatrace -bench mcf -n 20                 # dump the first 20 operations
//	dcatrace -bench lbm -summary -n 100000    # aggregate traffic statistics
//	dcatrace -list                            # available benchmarks
//
//	dcatrace -record foo.dct -mix mcf,lbm,libquantum,omnetpp -scale test
//	dcatrace -replay foo.dct -design dca -org sa [-alg name]
//	dcatrace -verify -mix mcf,lbm,libquantum,omnetpp -scale test [-j N]
//	         [-cache dir] [-alg name]
//
// -record runs the mix live and captures every operation each core
// consumes (warm-up included). -replay simulates from the file: core
// count, benchmark names, and run budgets come from the trace header,
// while the machine under test (design, organization, …) comes from the
// flags — one recording drives any controller design and organization.
// -alg selects the base scheduling algorithm by registered policy name
// (see `dcasim -list-policies` and docs/adding-a-policy.md).
// -verify performs the round trip for every registered design ×
// organization (the grid follows the design registry) and
// fails loudly unless each replayed result is bit-identical to its live
// counterpart; the grid fans out over -j parallel workers (default: all
// CPUs) with output committed in grid order. The live halves of the
// grid are ordinary cacheable simulations, so -cache (default
// $DCASIM_CACHE) makes repeated verifications skip them; the replay
// halves always run — their input is the trace file, whose contents the
// cache key does not cover.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"strings"
	"sync"

	"dcasim/internal/config"
	"dcasim/internal/core"
	"dcasim/internal/dcache"
	"dcasim/internal/exp"
	"dcasim/internal/rescache"
	"dcasim/internal/sim"
	"dcasim/internal/workload"

	// Link the full in-tree scheduling-policy set (ATLAS, ...) so -alg
	// resolves every registered name.
	_ "dcasim/internal/sched/policies"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("dcatrace: ")
	var (
		bench   = flag.String("bench", "mcf", "benchmark name (dump/summary modes)")
		n       = flag.Int("n", 20, "operations to generate (dump/summary modes)")
		seed    = flag.Uint64("seed", 1, "generator seed")
		scale   = flag.Float64("wsscale", 1.0, "working-set scale (dump/summary modes)")
		summary = flag.Bool("summary", false, "print aggregate statistics instead of the trace")
		list    = flag.Bool("list", false, "list available benchmarks and their profiles")

		record   = flag.String("record", "", "record a live run's operation streams to this .dct file")
		replay   = flag.String("replay", "", "replay a .dct file through the simulator")
		verify   = flag.Bool("verify", false, "record+replay round trip, compare bit for bit across all designs and organizations")
		mix      = flag.String("mix", "soplex,mcf,gcc,libquantum", "comma-separated benchmarks, one per core (record/verify modes)")
		cfgName  = flag.String("scale", "test", "configuration scale for record/replay/verify: test or bench")
		design   = flag.String("design", "dca", "controller design: cd, rod, or dca (replay/record modes)")
		alg      = flag.String("alg", "bliss", "base scheduling algorithm, a registered policy name (record/replay/verify modes)")
		org      = flag.String("org", "sa", "cache organization: sa or dm (replay/record modes)")
		workers  = flag.Int("j", runtime.NumCPU(), "parallel workers for the -verify design x organization grid")
		cacheDir = flag.String("cache", os.Getenv("DCASIM_CACHE"), "persistent result cache for the -verify live runs (default $DCASIM_CACHE; empty = no cache)")
	)
	flag.IntVar(workers, "workers", *workers, "alias for -j")
	flag.Parse()
	if err := exp.ValidateWorkers(*workers); err != nil {
		log.Fatal(err)
	}

	switch {
	case *list:
		listProfiles()
	case *record != "":
		runRecord(*record, *mix, *cfgName, *design, *alg, *org, *seed)
	case *replay != "":
		runReplay(*replay, *cfgName, *design, *alg, *org)
	case *verify:
		runVerify(*mix, *cfgName, *alg, *seed, *workers, *cacheDir)
	case *summary:
		summarize(*bench, *seed, *scale, *n)
	default:
		dump(*bench, *seed, *scale, *n)
	}
}

// baseConfig builds the simulation config for the record/replay/verify
// modes from the shared config parsing helpers.
func baseConfig(cfgName, design, alg, org string) config.Config {
	cfg, err := config.ParsePreset(cfgName)
	if err != nil || cfgName == "paper" {
		log.Fatalf("unknown scale %q (want test or bench)", cfgName)
	}
	if cfg.Design, err = core.ParseDesign(design); err != nil {
		log.Fatal(err)
	}
	if cfg.Algorithm, err = core.ParseAlgorithm(alg); err != nil {
		log.Fatal(err)
	}
	if cfg.Org, err = dcache.ParseOrg(org); err != nil {
		log.Fatal(err)
	}
	return cfg
}

func printResult(res sim.Result) {
	for i, b := range res.Benchmarks {
		fmt.Printf("core %d  %-12s IPC %.4f  finished at %.0f ns\n", i, b, res.IPC[i], res.FinishNS[i])
	}
	fmt.Printf("dram cache reads %d (hit %.1f%%), dram accesses %d, main mem reads %d\n",
		res.DCache.ReadReqs, 100*res.DCache.ReadHitRate(), res.DRAM.Accesses, res.MainMemReads)
}

func runRecord(path, mix, cfgName, design, alg, org string, seed uint64) {
	cfg := baseConfig(cfgName, design, alg, org)
	cfg.Benchmarks = strings.Split(mix, ",")
	cfg.Seed = seed
	cfg.RecordPath = path
	res, err := sim.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	printResult(res)
	info, err := os.Stat(path)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recorded %s: %d cores, %d bytes\n", path, len(res.Benchmarks), info.Size())
}

func runReplay(path, cfgName, design, alg, org string) {
	cfg := baseConfig(cfgName, design, alg, org)
	cfg.TracePath = path
	res, err := sim.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("replayed %s under %v/%v\n", path, cfg.Design, cfg.Org)
	printResult(res)
}

// runVerify records the mix once, then checks that replaying the file
// reproduces a live run bit for bit under every design × organization.
// The grid cells are independent (each replay opens its own handle on
// the recorded trace), so they fan out over a bounded pool of workers;
// per-cell reports are committed by grid index, keeping the output
// byte-identical at every -j. The live halves route through an exp
// runner so a persistent cache (when configured) can satisfy them;
// replays and the recording never touch the cache — exp.Cacheable
// excludes them, since the cache key covers the trace path, not the
// trace bytes.
func runVerify(mix, cfgName, alg string, seed uint64, workers int, cacheDir string) {
	dir, err := os.MkdirTemp("", "dcatrace-verify")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "verify.dct")

	rec := baseConfig(cfgName, "cd", alg, "sa")
	rec.Benchmarks = strings.Split(mix, ",")
	rec.Seed = seed
	rec.RecordPath = path
	if _, err := sim.Run(rec); err != nil {
		log.Fatal(err)
	}

	runner := exp.NewRunner(baseConfig(cfgName, "cd", alg, "sa"), nil, workers)
	if cacheDir != "" {
		cache, err := rescache.Open(cacheDir)
		if err != nil {
			log.Fatal(err)
		}
		runner.SetCache(cache)
	}

	type cell struct {
		d core.Design
		o dcache.Org
	}
	// The grid spans the design registry, not a hard-coded list, so a
	// newly registered design is verified without touching this command.
	var cells []cell
	for _, d := range core.Designs() {
		for _, o := range []dcache.Org{dcache.SetAssoc, dcache.DirectMapped} {
			cells = append(cells, cell{d, o})
		}
	}

	reports := make([]string, len(cells))
	failures := make([]bool, len(cells))
	errs := make([]error, len(cells))
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i, c := range cells {
		wg.Add(1)
		go func(i int, c cell) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			live := baseConfig(cfgName, "cd", alg, "sa")
			live.Benchmarks = strings.Split(mix, ",")
			live.Seed = seed
			live.Design, live.Org = c.d, c.o
			want, err := runner.Run(live)
			if err != nil {
				errs[i] = err
				return
			}
			rep := baseConfig(cfgName, "cd", alg, "sa")
			rep.Design, rep.Org = c.d, c.o
			rep.TracePath = path
			got, err := sim.Run(rep)
			if err != nil {
				errs[i] = err
				return
			}
			if reflect.DeepEqual(got, want) {
				reports[i] = fmt.Sprintf("%-4v %-13v bit-identical (IPC %s)", c.d, c.o, ipcs(want.IPC))
			} else {
				failures[i] = true
				reports[i] = fmt.Sprintf("%-4v %-13v MISMATCH\n  live:   %+v\n  replay: %+v", c.d, c.o, want, got)
			}
		}(i, c)
	}
	wg.Wait()

	failed := false
	for i := range cells {
		if errs[i] != nil {
			exp.WarnCacheErr(os.Stderr, runner)
			log.Fatal(errs[i])
		}
		fmt.Println(reports[i])
		failed = failed || failures[i]
	}
	exp.WarnCacheErr(os.Stderr, runner)
	if failed {
		log.Fatal("replay verification FAILED")
	}
	fmt.Println("replay verification OK: all designs and organizations bit-identical")
}

func ipcs(v []float64) string {
	parts := make([]string, len(v))
	for i, x := range v {
		parts[i] = fmt.Sprintf("%.4f", x)
	}
	return strings.Join(parts, " ")
}

func listProfiles() {
	fmt.Printf("%-12s %8s %7s %7s %7s %7s\n", "benchmark", "mem/1k", "stores", "seq", "hot", "WS(MB)")
	for _, name := range workload.Names() {
		p, _ := workload.Lookup(name)
		fmt.Printf("%-12s %8d %6.0f%% %6.0f%% %6.0f%% %7d\n",
			p.Name, p.MemPer1000, 100*p.StoreFrac, 100*p.SeqProb, 100*p.HotProb, p.WorkingSetMB)
	}
}

func newGen(bench string, seed uint64, scale float64) *workload.Gen {
	prof, err := workload.Lookup(bench)
	if err != nil {
		log.Fatal(err)
	}
	return workload.NewGen(prof, seed, 0, scale)
}

func dump(bench string, seed uint64, scale float64, n int) {
	g := newGen(bench, seed, scale)
	fmt.Printf("# %s: gap store block-address pc\n", bench)
	for i := 0; i < n; i++ {
		op := g.Next()
		kind := "LD"
		if op.Store {
			kind = "ST"
		}
		fmt.Printf("%4d %s 0x%010x pc=0x%x\n", op.Gap, kind, op.Addr, op.PC)
	}
}

func summarize(bench string, seed uint64, scale float64, n int) {
	g := newGen(bench, seed, scale)
	var instrs, stores, seq int64
	touched := make(map[int64]struct{})
	prev := int64(-10)
	for i := 0; i < n; i++ {
		op := g.Next()
		instrs += int64(op.Gap) + 1
		if op.Store {
			stores++
		}
		if op.Addr == prev+1 {
			seq++
		}
		prev = op.Addr
		touched[op.Addr] = struct{}{}
	}
	ops := int64(n)
	fmt.Printf("benchmark        %s\n", bench)
	fmt.Printf("operations       %d over %d instructions\n", ops, instrs)
	fmt.Printf("memory intensity %.1f per 1000 instructions\n", float64(ops)/float64(instrs)*1000)
	fmt.Printf("store fraction   %.1f%%\n", 100*float64(stores)/float64(ops))
	fmt.Printf("sequential frac  %.1f%%\n", 100*float64(seq)/float64(ops))
	fmt.Printf("distinct blocks  %d (%.1f MB touched of %.1f MB footprint)\n",
		len(touched), float64(len(touched))*64/1024/1024,
		float64(g.WorkingSetBlocks())*64/1024/1024)
}
