// Command dcatrace inspects the synthetic workload generators: it dumps
// a trace prefix or summarises a benchmark's traffic characteristics
// (memory intensity, store fraction, sequentiality, footprint reach).
// Useful when tuning profiles or validating them against published SPEC
// characterisations.
//
// Usage:
//
//	dcatrace -bench mcf -n 20            # dump the first 20 operations
//	dcatrace -bench lbm -summary -n 100000
//	dcatrace -list
package main

import (
	"flag"
	"fmt"
	"log"

	"dcasim/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("dcatrace: ")
	var (
		bench   = flag.String("bench", "mcf", "benchmark name")
		n       = flag.Int("n", 20, "operations to generate")
		seed    = flag.Uint64("seed", 1, "generator seed")
		scale   = flag.Float64("wsscale", 1.0, "working-set scale")
		summary = flag.Bool("summary", false, "print aggregate statistics instead of the trace")
		list    = flag.Bool("list", false, "list available benchmarks and their profiles")
	)
	flag.Parse()

	if *list {
		fmt.Printf("%-12s %8s %7s %7s %7s %7s\n", "benchmark", "mem/1k", "stores", "seq", "hot", "WS(MB)")
		for _, name := range workload.Names() {
			p, _ := workload.Lookup(name)
			fmt.Printf("%-12s %8d %6.0f%% %6.0f%% %6.0f%% %7d\n",
				p.Name, p.MemPer1000, 100*p.StoreFrac, 100*p.SeqProb, 100*p.HotProb, p.WorkingSetMB)
		}
		return
	}

	prof, err := workload.Lookup(*bench)
	if err != nil {
		log.Fatal(err)
	}
	g := workload.NewGen(prof, *seed, 0, *scale)

	if !*summary {
		fmt.Printf("# %s: gap store block-address pc\n", prof.Name)
		for i := 0; i < *n; i++ {
			op := g.Next()
			kind := "LD"
			if op.Store {
				kind = "ST"
			}
			fmt.Printf("%4d %s 0x%010x pc=0x%x\n", op.Gap, kind, op.Addr, op.PC)
		}
		return
	}

	var instrs, stores, seq int64
	touched := make(map[int64]struct{})
	prev := int64(-10)
	for i := 0; i < *n; i++ {
		op := g.Next()
		instrs += int64(op.Gap) + 1
		if op.Store {
			stores++
		}
		if op.Addr == prev+1 {
			seq++
		}
		prev = op.Addr
		touched[op.Addr] = struct{}{}
	}
	ops := int64(*n)
	fmt.Printf("benchmark        %s\n", prof.Name)
	fmt.Printf("operations       %d over %d instructions\n", ops, instrs)
	fmt.Printf("memory intensity %.1f per 1000 instructions\n", float64(ops)/float64(instrs)*1000)
	fmt.Printf("store fraction   %.1f%%\n", 100*float64(stores)/float64(ops))
	fmt.Printf("sequential frac  %.1f%%\n", 100*float64(seq)/float64(ops))
	fmt.Printf("distinct blocks  %d (%.1f MB touched of %.1f MB footprint)\n",
		len(touched), float64(len(touched))*64/1024/1024,
		float64(g.WorkingSetBlocks())*64/1024/1024)
}
