// Multiprogram: sweep several Table I workload mixes through the
// experiment runner, printing per-mix normalized weighted speedups for
// CD, ROD, and DCA on the direct-mapped organization — a miniature
// version of the paper's Fig. 11 built on the public Runner API.
package main

import (
	"fmt"
	"log"

	"dcasim"
)

func main() {
	log.SetFlags(0)
	cfg := dcasim.TestConfig()
	mixes := dcasim.TableIMixes()[:6]

	runner := dcasim.NewRunner(cfg, mixes, 0)
	table, err := runner.Fig11()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Per-workload speedup, direct-mapped DRAM cache (normalized to CD):")
	fmt.Print(table)

	fmt.Println("\nWorkload mixes under test (Table I subset):")
	for _, m := range mixes {
		fmt.Printf("  mix %2d: %v\n", m.ID, m.Benchmarks)
	}
}
