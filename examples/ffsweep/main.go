// FFsweep: sensitivity of DCA's Opportunistic Flushing Scheme to the
// flushing factor (FF), the RRPC threshold below which a low-priority
// read may be scheduled into a conflicting bank. The paper (§IV-C)
// reports the design is insensitive for FF < 5 (under 1% spread from
// FF-1 to FF-4) and chooses FF-4; this example reproduces that ablation.
package main

import (
	"fmt"
	"log"

	"dcasim"
	"dcasim/internal/core"
)

func main() {
	log.SetFlags(0)
	base := dcasim.TestConfig()
	mix := []string{"milc", "leslie3d", "omnetpp", "gcc"}

	fmt.Println("mix:", mix, "— DCA flushing-factor sweep")
	fmt.Printf("%-5s  %12s  %10s  %12s\n", "FF", "total ns", "OFS issues", "row hit rate")
	var ff0 float64
	for ff := uint8(0); ff <= 6; ff++ {
		cfg := base
		cfg.Benchmarks = mix
		cfg.Design = dcasim.DCA
		ctrl := core.DefaultConfig(core.DCA)
		ctrl.FlushFactor = ff
		cfg.Ctrl = &ctrl
		res, err := dcasim.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		tot := res.TotalNS()
		if ff == 0 {
			ff0 = tot
		}
		fmt.Printf("FF-%d  %12.0f  %10d  %11.1f%%   (%+.2f%% vs FF-0)\n",
			ff, tot, res.Ctrl.OFSIssues, 100*res.ReadRowHitRate(), 100*(ff0/tot-1))
	}
	fmt.Println("\nFF-0 only allows conflict-free low-priority reads; larger FF")
	fmt.Println("admits LRs into recently idle banks. The paper selects FF-4.")
}
