// Remapping: study how the XOR permutation remapping scheme (Zhang et
// al.) interacts with each controller design, reproducing the paper's
// §VI-A observation: remapping fixes read-read conflicts, so it helps CD
// a lot and ROD very little — but only DCA also removes read priority
// inversion, so DCA stays ahead even with remapping enabled.
package main

import (
	"fmt"
	"log"

	"dcasim"
)

func main() {
	log.SetFlags(0)
	base := dcasim.TestConfig()
	mix := []string{"lbm", "omnetpp", "leslie3d", "bwaves"}

	type variant struct {
		name   string
		design dcasim.Design
		remap  bool
	}
	variants := []variant{
		{"CD", dcasim.CD, false},
		{"ROD", dcasim.ROD, false},
		{"DCA", dcasim.DCA, false},
		{"XOR+CD", dcasim.CD, true},
		{"XOR+ROD", dcasim.ROD, true},
		{"XOR+DCA", dcasim.DCA, true},
	}

	fmt.Println("mix:", mix, "(set-associative organization)")
	fmt.Printf("%-8s  %12s  %14s  %12s\n", "design", "total ns", "row conflicts", "row hit rate")
	for _, v := range variants {
		cfg := base
		cfg.Benchmarks = mix
		cfg.Design = v.design
		cfg.XORRemap = v.remap
		res, err := dcasim.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s  %12.0f  %14d  %11.1f%%\n",
			v.name, res.TotalNS(), res.DRAM.ReadRowConf, 100*res.ReadRowHitRate())
	}
	fmt.Println("\nlower total ns is better; remapping cuts conflicts for CD but")
	fmt.Println("cannot fix priority inversion — only DCA addresses both.")
}
