// Tracereplay: record a live multiprogrammed run to a compact binary
// trace, replay the file on a different controller design, and prove
// the determinism anchor the trace subsystem guarantees — a replayed
// trace reproduces a live run bit for bit.
//
// The same .dct file drives any design and organization, because the
// operation stream each core consumes is machine-independent; this is
// what makes a recorded corpus usable for regression testing and
// cross-design comparison on exactly identical traffic.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"reflect"

	"dcasim"
)

func main() {
	log.SetFlags(0)
	dir, err := os.MkdirTemp("", "tracereplay")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "mix.dct")

	// 1. Record: run the mix live under DCA and capture every operation
	// each core consumes (functional warm-up included).
	rec := dcasim.TestConfig()
	rec.Benchmarks = []string{"mcf", "lbm", "libquantum", "omnetpp"}
	rec.Design = dcasim.DCA
	rec.RecordPath = path
	recorded, err := dcasim.Run(rec)
	if err != nil {
		log.Fatal(err)
	}
	info, err := os.Stat(path)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recorded %v to %s (%d KB)\n", recorded.Benchmarks, filepath.Base(path), info.Size()>>10)

	// 2. Replay on the same design: the Result must match bit for bit.
	rep := dcasim.TestConfig()
	rep.TracePath = path
	rep.Design = dcasim.DCA
	replayed, err := dcasim.Run(rep)
	if err != nil {
		log.Fatal(err)
	}
	if !reflect.DeepEqual(replayed, recorded) {
		log.Fatal("replay diverged from the recorded run")
	}
	fmt.Printf("replay is bit-identical: IPC %v\n", replayed.IPC)

	// 3. The same file drives a different machine: compare designs on
	// exactly identical traffic.
	for _, d := range []dcasim.Design{dcasim.CD, dcasim.ROD} {
		cfg := dcasim.TestConfig()
		cfg.TracePath = path
		cfg.Design = d
		res, err := dcasim.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-4v on the same trace: IPC %v\n", d, res.IPC)
	}
}
