// Quickstart: run one multiprogrammed workload on the three DRAM-cache
// controller designs the paper studies and compare their weighted
// speedups — a minimal end-to-end use of the dcasim public API.
package main

import (
	"fmt"
	"log"

	"dcasim"
)

func main() {
	log.SetFlags(0)
	base := dcasim.TestConfig() // small and fast; use BenchConfig for fidelity
	mix := []string{"soplex", "mcf", "gcc", "libquantum"}

	// Alone IPCs (on the CD baseline) are the denominators of weighted
	// speedup.
	alone := make([]float64, len(mix))
	for i, b := range mix {
		ipc, err := dcasim.AloneIPC(base, b)
		if err != nil {
			log.Fatal(err)
		}
		alone[i] = ipc
	}

	fmt.Println("mix:", mix)
	var wsCD float64
	for _, d := range []dcasim.Design{dcasim.CD, dcasim.ROD, dcasim.DCA} {
		cfg := base
		cfg.Benchmarks = mix
		cfg.Design = d
		res, err := dcasim.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		ws := 0.0
		for i := range res.IPC {
			ws += res.IPC[i] / alone[i]
		}
		if d == dcasim.CD {
			wsCD = ws
		}
		fmt.Printf("%-4v weighted speedup %.3f (%.1f%% vs CD)  L2 miss latency %.0f ns  row hit %.0f%%\n",
			d, ws, 100*(ws/wsCD-1), res.L2MissLatencyNS, 100*res.ReadRowHitRate())
	}
}
