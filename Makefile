# Tier-1 verification plus the benchmark smoke target.
#
#   make            - build + vet + test (what CI runs per PR)
#   make bench-short - one pass over the substrate microbenchmarks and
#                      one small figure benchmark, with allocation stats

GO ?= go

.PHONY: all build vet test bench-short ci

all: ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Short benchmark pass: substrate microbenchmarks at a real benchtime
# (their alloc counts are regression-guarded), figure benchmarks at one
# iteration just to prove the drivers run.
bench-short:
	$(GO) test -run '^$$' -bench 'BenchmarkEventEngine|BenchmarkChannelIssue|BenchmarkWorkloadGen' -benchmem -benchtime 0.2s .
	$(GO) test -run '^$$' -bench 'BenchmarkFig8$$|BenchmarkSimOneRun' -benchmem -benchtime 1x .

ci: build vet test
