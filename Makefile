# Tier-1 verification plus the benchmark smoke target.
#
# NB on bench-gate baselines: BENCH_controller.json must be recorded by
# `make bench-json` ON THE GATE MACHINE (the CI runner class that
# executes bench-gate), at GOMAXPROCS=1 like the gate itself measures.
# A baseline recorded on a different machine class bakes its clock into
# every later comparison: the 15% time tolerance absorbs runner-to-
# runner noise, not a hardware generation. When a PR intentionally
# moves performance, refresh the baseline from the gate job's uploaded
# BENCH_current artifact (or re-run make bench-json on that hardware)
# rather than from a laptop.
#
#   make            - build + lint + test (what CI runs per PR)
#   make lint       - go vet + cmd/dcalint (the custom invariant
#                     analyzers: determinism, zero-alloc, exhaustive
#                     enums, simtime units, rescache/trace errors)
#                     + golangci-lint when installed (CI always runs it)
#   make race       - full test suite under the race detector (CI job)
#   make faults     - fault-model suite under -race: cachefs fault
#                     injection, the rescache crash/claim protocol
#                     tests, and the exp panic/watchdog/keep-going and
#                     SIGKILL-recovery tests (CI job)
#   make fuzz-short - short fuzz pass over the trace decoder, the
#                     result-cache reader, and the event kernel vs its
#                     heap oracle (CI job)
#   make sweep-smoke - run the example sweep spec end to end against the
#                      persistent result cache (CI job)
#   make docs-check - documentation gate (CI job, cmd/docscheck):
#                     markdown link integrity over README /
#                     ARCHITECTURE / docs / examples, plus the guard
#                     that every registered scheduling policy has a
#                     row in docs/adding-a-policy.md's policy table
#   make bench-short - one pass over the substrate microbenchmarks and
#                      one small figure benchmark, with allocation stats
#   make bench-json  - run the guarded benchmarks (Fig8, SimOneRun,
#                      ChannelIssue, and the three event-kernel
#                      microbenchmarks) with -benchmem and emit
#                      $(BENCH_OUT) (default BENCH_controller.json,
#                      archived by CI per PR)
#   make bench-gate  - re-run the guarded benchmarks and fail if they
#                      regressed past tolerance vs the checked-in
#                      BENCH_controller.json (CI job, cmd/benchdiff)
#   make bench-parallel - cold-cache Fig8 A/B at -j 1 vs -j 8, emitted
#                      as BENCH_parallel.json (the parallel-engine
#                      speedup record)
#   make determinism - render the Fig8 smoke table at -j 1 and -j 8
#                      under -race and require byte-identical output,
#                      then require a -keep-going sweep with injected
#                      failures to report them byte-identically at
#                      every worker count, then require a -seeds 3
#                      replicated sweep to render byte-identical
#                      mean ±CI tables at -j 1 and -j 8 (CI job)

GO ?= go
BENCH_OUT ?= BENCH_controller.json

.PHONY: all build vet lint test race faults fuzz-short sweep-smoke docs-check bench-short bench-json bench-gate bench-parallel determinism ci

all: ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Static analysis gate: go vet, then the repo's own analyzer suite
# (cmd/dcalint — see README "Static analysis"), then golangci-lint if
# present (CI installs it; locally it is optional). `go run` caches the
# dcalint build in the ordinary Go build cache.
lint: vet
	$(GO) run ./cmd/dcalint ./...
	@if command -v golangci-lint >/dev/null 2>&1; then \
		golangci-lint run; \
	else \
		echo "golangci-lint not installed; skipping (the CI lint job runs it)"; \
	fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Fault-model suite under the race detector: the cachefs injector's own
# tests, the rescache crash/corruption/claim-liveness protocol tests
# (including the SIGKILL kill-recovery test in internal/exp), and the
# exp panic-isolation, watchdog, and keep-going tests. This is the
# "nothing wedges, nothing lies" gate — see README "Failure model".
faults:
	$(GO) test -race -count=1 ./internal/cachefs ./internal/rescache
	$(GO) test -race -count=1 -run 'Fault|Panic|Timeout|KeepGoing|Kill|CacheFS' ./internal/exp

# Short fuzz pass over the byte-level readers and the event kernel: a
# malformed trace must never panic the simulator, an arbitrary cache
# entry must never be trusted unless its envelope fully verifies
# (FuzzCacheGet re-checks every accepted entry against an independent
# oracle), and an arbitrary op program must drive the timing wheel and
# the retired 4-ary heap to the exact same dispatch sequence
# (FuzzEngineOps). Seed corpora live in
# internal/{trace,rescache,event}/testdata/fuzz; CI archives grown
# corpora.
fuzz-short:
	$(GO) test ./internal/trace -run '^$$' -fuzz 'FuzzDecoder' -fuzztime 30s
	$(GO) test ./internal/rescache -run '^$$' -fuzz 'FuzzCacheGet' -fuzztime 30s
	$(GO) test ./internal/event -run '^$$' -fuzz 'FuzzEngineOps' -fuzztime 30s

# End-to-end sweep smoke: evaluate the example declarative spec at the
# test scale through the persistent result cache (CI restores the cache
# between runs, so warm invocations simulate nothing).
sweep-smoke:
	$(GO) run ./cmd/dcasim sweep -spec examples/sweep/flushing_factor.json -cache .dcasim-cache

# Documentation gate: relative markdown links (files and #anchors) must
# resolve across README / ARCHITECTURE / docs / examples, and every
# registered scheduling policy needs a row in the authoring guide's
# policy table (docscheck links the full registry to compare).
docs-check:
	$(GO) run ./cmd/docscheck

# Short benchmark pass: substrate microbenchmarks at a real benchtime
# (their alloc counts are regression-guarded), figure benchmarks at one
# iteration just to prove the drivers run.
bench-short:
	$(GO) test -run '^$$' -bench 'BenchmarkEventEngine|BenchmarkChannelIssue|BenchmarkWorkloadGen' -benchmem -benchtime 0.2s .
	$(GO) test -run '^$$' -bench 'BenchmarkFig8$$|BenchmarkSimOneRun' -benchmem -benchtime 1x .

# Perf trajectory: the whole-run benchmarks the scheduler and event-
# kernel reworks target, plus the event microbenchmarks that isolate
# each wheel regime (uniform cascade, DRAM-clustered fast path,
# far-future spill), emitted as JSON so CI diffs are machine-readable.
# Fig8 runs few iterations (it is a whole-evaluation sweep); the
# cheaper benchmarks run more for stability.
# Each run appends to a scratch file and failures abort the target (no
# pipeline, so a failing benchmark cannot hide behind benchjson's exit).
bench-json:
	@rm -f bench_controller.out
	$(GO) test -run '^$$' -bench 'BenchmarkFig8$$' -benchmem -benchtime 2x . >> bench_controller.out
	$(GO) test -run '^$$' -bench 'BenchmarkSimOneRun$$' -benchmem -benchtime 20x . >> bench_controller.out
	$(GO) test -run '^$$' -bench 'BenchmarkChannelIssue$$' -benchmem -benchtime 0.2s . >> bench_controller.out
	$(GO) test -run '^$$' -bench 'BenchmarkEventUniform$$|BenchmarkEventDRAMClustered$$|BenchmarkEventSpill$$' -benchmem -benchtime 0.2s . >> bench_controller.out
	$(GO) run ./cmd/benchjson < bench_controller.out > $(BENCH_OUT)
	@rm -f bench_controller.out
	@cat $(BENCH_OUT)

# Perf-regression gate: measure the guarded benchmarks into a scratch
# report and diff it against the checked-in baseline (cmd/benchdiff
# defaults: >15% time/op fails, allocs/op may grow at most 1% — zero
# stays strict). GOMAXPROCS is pinned to 1 so the measurement is the
# serial path the baseline records: otherwise Fig8 (whose worker pool
# defaults to the core count) would run faster on any multi-core
# machine and a genuine serial regression could hide inside the
# parallel speedup, and its allocation count would skew with the pool's
# goroutine count. Cross-machine clock differences are what the 15%
# time tolerance absorbs; refresh the baseline (make bench-json) when a
# PR intentionally moves it.
bench-gate:
	GOMAXPROCS=1 $(MAKE) bench-json BENCH_OUT=BENCH_current.json
	$(GO) run ./cmd/benchdiff BENCH_controller.json BENCH_current.json
	@rm -f BENCH_current.json

# Parallel-engine speedup record: the same cold-cache Fig8 evaluation at
# one worker and at eight, A/B in one pass so the pair shares machine
# conditions. The report carries the recording machine's core count
# ("cpus"): the ratio only shows scaling when the machine has cores to
# scale onto.
bench-parallel:
	@rm -f bench_parallel.out
	$(GO) test -run '^$$' -bench 'BenchmarkFig8J1$$|BenchmarkFig8J8$$' -benchmem -benchtime 2x . >> bench_parallel.out
	$(GO) run ./cmd/benchjson < bench_parallel.out > BENCH_parallel.json
	@rm -f bench_parallel.out
	@cat BENCH_parallel.json

# Parallel determinism: the Fig8 smoke table must render byte-identical
# at -j 1 and -j 8, with the race detector watching the worker pool.
# The second half asserts the same contract for the failure path: a
# -keep-going sweep whose ghost-trace points fail at runtime (see
# testdata/sweep_keepgoing.json) must report the joined failures
# byte-identically at every worker count. The grep guard pins the
# expected failure count, so a compile error or an accidentally-green
# sweep cannot slip through the `|| true` that tolerates the intended
# nonzero exit. The third half extends the contract to seeded
# replication: a -seeds 3 sweep (testdata/sweep_seeds.json) must render
# its mean ±CI95 table byte-identically at -j 1 and -j 8 — replicate
# fan-out multiplies the points the pool dispatches, so it is the
# stress case for in-order result commitment — and the ± grep guard
# proves the CI columns actually rendered (a silently-degenerate
# single-replicate run would also pass cmp).
determinism:
	$(GO) run -race ./cmd/experiments -scale test -mixes 2 -only fig8 -j 1 -format text > .det-j1.txt
	$(GO) run -race ./cmd/experiments -scale test -mixes 2 -only fig8 -j 8 -format text > .det-j8.txt
	cmp .det-j1.txt .det-j8.txt
	@rm -f .det-j1.txt .det-j8.txt
	DCASIM_CACHE= $(GO) run -race ./cmd/dcasim sweep -spec testdata/sweep_keepgoing.json -keep-going -j 1 > .det-kg-j1.txt 2>&1 || true
	DCASIM_CACHE= $(GO) run -race ./cmd/dcasim sweep -spec testdata/sweep_keepgoing.json -keep-going -j 8 > .det-kg-j8.txt 2>&1 || true
	cmp .det-kg-j1.txt .det-kg-j8.txt
	test "$$(grep -c 'no-such-trace' .det-kg-j1.txt)" = "3"
	@rm -f .det-kg-j1.txt .det-kg-j8.txt
	DCASIM_CACHE= $(GO) run -race ./cmd/dcasim sweep -spec testdata/sweep_seeds.json -seeds 3 -j 1 > .det-seeds-j1.txt
	DCASIM_CACHE= $(GO) run -race ./cmd/dcasim sweep -spec testdata/sweep_seeds.json -seeds 3 -j 8 > .det-seeds-j8.txt
	cmp .det-seeds-j1.txt .det-seeds-j8.txt
	grep -q '±' .det-seeds-j1.txt
	@rm -f .det-seeds-j1.txt .det-seeds-j8.txt
	@echo "parallel determinism OK: tables, keep-going failure reports, and -seeds 3 CI tables byte-identical at -j 1 and -j 8"

ci: build lint test
