# Tier-1 verification plus the benchmark smoke target.
#
#   make            - build + vet + test (what CI runs per PR)
#   make race       - full test suite under the race detector (CI job)
#   make fuzz-short - short fuzz pass over the trace decoder (CI job)
#   make sweep-smoke - run the example sweep spec end to end against the
#                      persistent result cache (CI job)
#   make bench-short - one pass over the substrate microbenchmarks and
#                      one small figure benchmark, with allocation stats
#   make bench-json  - run the scheduler-sensitive benchmarks (Fig8,
#                      SimOneRun, ChannelIssue) with -benchmem and emit
#                      BENCH_controller.json (archived by CI per PR)

GO ?= go

.PHONY: all build vet test race fuzz-short sweep-smoke bench-short bench-json ci

all: ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Short fuzz pass over the trace decoder: a malformed trace must never
# panic the simulator. The seed corpus lives in
# internal/trace/testdata/fuzz; CI archives the grown corpus.
fuzz-short:
	$(GO) test ./internal/trace -run '^$$' -fuzz 'FuzzDecoder' -fuzztime 30s

# End-to-end sweep smoke: evaluate the example declarative spec at the
# test scale through the persistent result cache (CI restores the cache
# between runs, so warm invocations simulate nothing).
sweep-smoke:
	$(GO) run ./cmd/dcasim sweep -spec examples/sweep/flushing_factor.json -cache .dcasim-cache

# Short benchmark pass: substrate microbenchmarks at a real benchtime
# (their alloc counts are regression-guarded), figure benchmarks at one
# iteration just to prove the drivers run.
bench-short:
	$(GO) test -run '^$$' -bench 'BenchmarkEventEngine|BenchmarkChannelIssue|BenchmarkWorkloadGen' -benchmem -benchtime 0.2s .
	$(GO) test -run '^$$' -bench 'BenchmarkFig8$$|BenchmarkSimOneRun' -benchmem -benchtime 1x .

# Controller perf trajectory: the three benchmarks the scheduler rework
# targets, emitted as JSON so CI diffs are machine-readable. Fig8 runs few
# iterations (it is a whole-evaluation sweep); the cheaper benchmarks run
# more for stability.
# Each run appends to a scratch file and failures abort the target (no
# pipeline, so a failing benchmark cannot hide behind benchjson's exit).
bench-json:
	@rm -f bench_controller.out
	$(GO) test -run '^$$' -bench 'BenchmarkFig8$$' -benchmem -benchtime 2x . >> bench_controller.out
	$(GO) test -run '^$$' -bench 'BenchmarkSimOneRun$$' -benchmem -benchtime 20x . >> bench_controller.out
	$(GO) test -run '^$$' -bench 'BenchmarkChannelIssue$$' -benchmem -benchtime 0.2s . >> bench_controller.out
	$(GO) run ./cmd/benchjson < bench_controller.out > BENCH_controller.json
	@rm -f bench_controller.out
	@cat BENCH_controller.json

ci: build vet test
