// Package rng provides a small, fast, deterministic pseudo-random number
// generator for workload generation.
//
// The simulator must be bit-for-bit reproducible across runs and Go
// releases, so it does not use math/rand (whose stream is only stable per
// Go version for the default source). Each generator is an independent
// xoshiro256** instance seeded through splitmix64, the construction
// recommended by its authors.
package rng

// Rand is a deterministic xoshiro256** generator. The zero value is not
// usable; construct with New.
type Rand struct {
	s [4]uint64
}

// New returns a generator seeded from seed via splitmix64. Two generators
// built from the same seed produce identical streams.
func New(seed uint64) *Rand {
	var r Rand
	sm := seed
	for i := range r.s {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
	return &r
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Uint64 returns the next 64 random bits.
func (r *Rand) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Intn returns a uniform integer in [0, n). n must be positive. For
// power-of-two n the modulo reduces to a mask — the identical value
// without the hardware divide.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	if n&(n-1) == 0 {
		return int(r.Uint64() & uint64(n-1))
	}
	return int(r.Uint64() % uint64(n))
}

// Int63n returns a uniform int64 in [0, n). n must be positive.
func (r *Rand) Int63n(n int64) int64 {
	if n <= 0 {
		panic("rng: Int63n with non-positive n")
	}
	if n&(n-1) == 0 {
		return int64(r.Uint64() & uint64(n-1))
	}
	return int64(r.Uint64() % uint64(n))
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *Rand) Bool(p float64) bool { return r.Float64() < p }
