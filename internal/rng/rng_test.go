package rng

import (
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(7), New(7)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d collisions between different seeds", same)
	}
}

func TestIntnRange(t *testing.T) {
	f := func(seed uint64, n int) bool {
		if n <= 0 {
			n = -n + 1
		}
		n = n%1000 + 1
		r := New(seed)
		for i := 0; i < 100; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10_000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(11)
	sum := 0.0
	const n = 100_000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if mean < 0.49 || mean > 0.51 {
		t.Fatalf("mean %v far from 0.5 — generator badly biased", mean)
	}
}

func TestBoolProbability(t *testing.T) {
	r := New(5)
	hits := 0
	const n = 100_000
	for i := 0; i < n; i++ {
		if r.Bool(0.25) {
			hits++
		}
	}
	frac := float64(hits) / n
	if frac < 0.24 || frac > 0.26 {
		t.Fatalf("Bool(0.25) fired %.3f of the time", frac)
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestInt63nRange(t *testing.T) {
	r := New(9)
	const n = int64(1) << 40
	for i := 0; i < 1000; i++ {
		v := r.Int63n(n)
		if v < 0 || v >= n {
			t.Fatalf("Int63n out of range: %d", v)
		}
	}
}
