// Package addrmap maps linear block indices of the die-stacked DRAM cache
// array onto DRAM coordinates (channel, rank, bank, row, column).
//
// The paper's organization (Table II) is RoBaRaChCo with open-page rows:
// reading the field list from most- to least-significant address bits
// gives Row | Bank | Rank | Channel | Column. Consecutive blocks therefore
// fill a row before moving to the next channel, which maximises row-buffer
// locality for spatially local streams.
//
// The package also implements the permutation-based XOR remapping of
// Zhang et al. (MICRO 2000) used in the paper's "with remapping"
// experiments: the bank index is XORed with the low bits of the row index,
// scattering same-bank conflicting rows across banks.
package addrmap

import (
	"fmt"
	"math/bits"
)

// Geometry describes a stacked-DRAM array.
type Geometry struct {
	Channels  int // independent channels, each with its own bus
	Ranks     int // ranks per channel
	Banks     int // banks per rank
	RowBytes  int // row-buffer size in bytes
	BlockSize int // access granularity in bytes (one cache block)
}

// BlocksPerRow returns the number of blocks held by one row buffer.
func (g Geometry) BlocksPerRow() int { return g.RowBytes / g.BlockSize }

// Validate reports a descriptive error for an unusable geometry.
func (g Geometry) Validate() error {
	switch {
	case g.Channels <= 0 || g.Ranks <= 0 || g.Banks <= 0:
		return fmt.Errorf("addrmap: non-positive channel/rank/bank count %+v", g)
	case g.RowBytes <= 0 || g.BlockSize <= 0:
		return fmt.Errorf("addrmap: non-positive row or block size %+v", g)
	case g.RowBytes%g.BlockSize != 0:
		return fmt.Errorf("addrmap: row size %d not a multiple of block size %d", g.RowBytes, g.BlockSize)
	case g.Channels&(g.Channels-1) != 0 || g.Ranks&(g.Ranks-1) != 0 || g.Banks&(g.Banks-1) != 0:
		return fmt.Errorf("addrmap: channels/ranks/banks must be powers of two %+v", g)
	}
	return nil
}

// Loc is a fully decoded DRAM coordinate.
type Loc struct {
	Channel int
	Rank    int
	Bank    int // bank index within the rank
	Row     int64
	Col     int // block index within the row
}

// GlobalBank returns a dense index identifying (rank, bank) within a
// channel, used by per-channel bank state arrays.
func (l Loc) GlobalBank(g Geometry) int { return l.Rank*g.Banks + l.Bank }

// Mapper decodes linear block indices under a Geometry, optionally with
// XOR permutation remapping of the bank index.
type Mapper struct {
	Geom     Geometry
	XORRemap bool
}

// Map decodes block index idx (block number within the DRAM array) into a
// Loc following RoBaRaChCo ordering: column varies fastest, then channel,
// rank, bank, and finally row.
func (m Mapper) Map(idx int64) Loc {
	if idx < 0 {
		panic(fmt.Sprintf("addrmap: negative block index %d", idx))
	}
	g := m.Geom
	bpr := int64(g.BlocksPerRow())
	var col, ch, rank, bank, row int64
	if bpr > 0 && bpr&(bpr-1) == 0 &&
		g.Channels&(g.Channels-1) == 0 && g.Ranks&(g.Ranks-1) == 0 && g.Banks&(g.Banks-1) == 0 {
		// Channels/ranks/banks are powers of two by validation; when the
		// row holds a power-of-two block count as well (the usual 4 KB /
		// 64 B shape), the whole decode is shifts and masks instead of
		// eight int64 divides. idx is non-negative, so unsigned shifts
		// are exact.
		u := uint64(idx)
		s := uint(bits.TrailingZeros64(uint64(bpr)))
		col = int64(u & uint64(bpr-1))
		u >>= s
		ch = int64(u & uint64(g.Channels-1))
		u >>= uint(bits.TrailingZeros64(uint64(g.Channels)))
		rank = int64(u & uint64(g.Ranks-1))
		u >>= uint(bits.TrailingZeros64(uint64(g.Ranks)))
		bank = int64(u & uint64(g.Banks-1))
		row = int64(u >> uint(bits.TrailingZeros64(uint64(g.Banks))))
	} else {
		col = idx % bpr
		idx /= bpr
		ch = idx % int64(g.Channels)
		idx /= int64(g.Channels)
		rank = idx % int64(g.Ranks)
		idx /= int64(g.Ranks)
		bank = idx % int64(g.Banks)
		row = idx / int64(g.Banks)
	}
	if m.XORRemap {
		// Permutation-based interleaving: XOR the bank index with the
		// low log2(banks) bits of the row index. Rows that would
		// conflict in one bank now land in different banks while the
		// mapping stays a bijection (XOR with a row-determined constant
		// permutes banks within each row).
		bank ^= row & int64(g.Banks-1)
	}
	return Loc{Channel: int(ch), Rank: int(rank), Bank: int(bank), Row: row, Col: int(col)}
}

// RowID returns a dense identifier for the (channel, rank, bank, row)
// tuple of l, useful for grouping blocks that share a row buffer.
func (m Mapper) RowID(l Loc) int64 {
	g := m.Geom
	id := l.Row
	id = id*int64(g.Banks) + int64(l.Bank)
	id = id*int64(g.Ranks) + int64(l.Rank)
	id = id*int64(g.Channels) + int64(l.Channel)
	return id
}
