package addrmap

import (
	"testing"
	"testing/quick"
)

func paperGeom() Geometry {
	return Geometry{Channels: 4, Ranks: 1, Banks: 16, RowBytes: 4096, BlockSize: 64}
}

func TestValidate(t *testing.T) {
	if err := paperGeom().Validate(); err != nil {
		t.Fatalf("paper geometry invalid: %v", err)
	}
	bad := []Geometry{
		{Channels: 0, Ranks: 1, Banks: 16, RowBytes: 4096, BlockSize: 64},
		{Channels: 3, Ranks: 1, Banks: 16, RowBytes: 4096, BlockSize: 64}, // not a power of two
		{Channels: 4, Ranks: 1, Banks: 16, RowBytes: 4096, BlockSize: 60},
		{Channels: 4, Ranks: 1, Banks: 16, RowBytes: 0, BlockSize: 64},
	}
	for i, g := range bad {
		if err := g.Validate(); err == nil {
			t.Errorf("bad geometry %d validated: %+v", i, g)
		}
	}
}

func TestRoBaRaChCoOrdering(t *testing.T) {
	m := Mapper{Geom: paperGeom()}
	bpr := int64(m.Geom.BlocksPerRow())

	// Column varies fastest: consecutive indices within a row share
	// everything but the column.
	a, b := m.Map(0), m.Map(1)
	if a.Col+1 != b.Col || a.Channel != b.Channel || a.Bank != b.Bank || a.Row != b.Row {
		t.Fatalf("consecutive blocks not column-adjacent: %+v then %+v", a, b)
	}
	// Then channel.
	c := m.Map(bpr)
	if c.Channel != 1 || c.Col != 0 || c.Row != 0 || c.Bank != 0 {
		t.Fatalf("block at one row stride should advance channel: %+v", c)
	}
	// Then bank (ranks=1).
	d := m.Map(bpr * int64(m.Geom.Channels))
	if d.Bank != 1 || d.Channel != 0 || d.Row != 0 {
		t.Fatalf("expected bank advance: %+v", d)
	}
	// Then row.
	e := m.Map(bpr * int64(m.Geom.Channels) * int64(m.Geom.Banks))
	if e.Row != 1 || e.Bank != 0 || e.Channel != 0 {
		t.Fatalf("expected row advance: %+v", e)
	}
}

func TestMapInjective(t *testing.T) {
	// Property: Map is injective over a window, with and without
	// remapping (the XOR permutation must stay a bijection).
	for _, remap := range []bool{false, true} {
		m := Mapper{Geom: paperGeom(), XORRemap: remap}
		seen := make(map[Loc]int64)
		for i := int64(0); i < 1<<16; i++ {
			l := m.Map(i)
			if prev, ok := seen[l]; ok {
				t.Fatalf("remap=%v: blocks %d and %d collide at %+v", remap, prev, i, l)
			}
			seen[l] = i
		}
	}
}

func TestMapRanges(t *testing.T) {
	g := paperGeom()
	f := func(idx int64) bool {
		if idx < 0 {
			idx = -idx
		}
		idx %= 1 << 40
		for _, remap := range []bool{false, true} {
			m := Mapper{Geom: g, XORRemap: remap}
			l := m.Map(idx)
			if l.Channel < 0 || l.Channel >= g.Channels ||
				l.Rank < 0 || l.Rank >= g.Ranks ||
				l.Bank < 0 || l.Bank >= g.Banks ||
				l.Col < 0 || l.Col >= g.BlocksPerRow() ||
				l.Row < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestXORRemapScattersConflictingRows(t *testing.T) {
	// Two blocks in the same bank but different rows (a conflicting pair
	// under the identity mapping) should usually land in different banks
	// under the XOR permutation — that is the scheme's entire point.
	plain := Mapper{Geom: paperGeom()}
	remap := Mapper{Geom: paperGeom(), XORRemap: true}
	bpr := int64(paperGeom().BlocksPerRow())
	rowStride := bpr * int64(paperGeom().Channels) * int64(paperGeom().Banks)

	scattered := 0
	const rows = 16
	for r := int64(1); r < rows; r++ {
		a, b := plain.Map(0), plain.Map(r*rowStride)
		if a.Bank != b.Bank {
			t.Fatalf("test precondition: rows %d apart should share bank 0", r)
		}
		ra, rb := remap.Map(0), remap.Map(r*rowStride)
		if ra.Bank != rb.Bank {
			scattered++
		}
	}
	if scattered < rows-2 {
		t.Fatalf("XOR remap scattered only %d of %d conflicting rows", scattered, rows-1)
	}
}

func TestRowID(t *testing.T) {
	m := Mapper{Geom: paperGeom()}
	a := m.Map(0)
	b := m.Map(1) // same row, next column
	if m.RowID(a) != m.RowID(b) {
		t.Fatal("same-row blocks have different RowIDs")
	}
	c := m.Map(int64(m.Geom.BlocksPerRow()))
	if m.RowID(a) == m.RowID(c) {
		t.Fatal("different channel should give different RowID")
	}
}

func TestNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Map(-1) did not panic")
		}
	}()
	Mapper{Geom: paperGeom()}.Map(-1)
}
