package workload

// Mix is one multiprogrammed workload: the benchmark run on each core.
type Mix struct {
	ID         int
	Benchmarks [4]string
}

// TableI returns the paper's 30 four-core workload groupings exactly as
// listed in Table I.
func TableI() []Mix {
	rows := [][4]string{
		{"soplex", "mcf", "gcc", "libquantum"},
		{"astar", "omnetpp", "GemsFDTD", "gcc"},
		{"mcf", "soplex", "astar", "leslie3d"},
		{"bwaves", "lbm", "libquantum", "leslie3d"},
		{"omnetpp", "milc", "leslie3d", "astar"},
		{"soplex", "astar", "lbm", "mcf"},
		{"lbm", "omnetpp", "leslie3d", "bwaves"},
		{"milc", "leslie3d", "omnetpp", "gcc"},
		{"bwaves", "astar", "gcc", "leslie3d"},
		{"omnetpp", "libquantum", "mcf", "gcc"},
		{"gcc", "libquantum", "lbm", "soplex"},
		{"gcc", "leslie3d", "GemsFDTD", "soplex"},
		{"lbm", "libquantum", "omnetpp", "bwaves"},
		{"gcc", "mcf", "leslie3d", "milc"},
		{"omnetpp", "mcf", "leslie3d", "lbm"},
		{"libquantum", "lbm", "soplex", "astar"},
		{"milc", "libquantum", "bwaves", "GemsFDTD"},
		{"leslie3d", "astar", "libquantum", "bwaves"},
		{"lbm", "gcc", "mcf", "libquantum"},
		{"soplex", "astar", "GemsFDTD", "leslie3d"},
		{"GemsFDTD", "astar", "leslie3d", "libquantum"},
		{"libquantum", "milc", "lbm", "mcf"},
		{"lbm", "libquantum", "leslie3d", "bwaves"},
		{"milc", "leslie3d", "omnetpp", "bwaves"},
		{"bwaves", "astar", "GemsFDTD", "leslie3d"},
		{"gcc", "soplex", "libquantum", "milc"},
		{"omnetpp", "lbm", "leslie3d", "GemsFDTD"},
		{"soplex", "bwaves", "GemsFDTD", "leslie3d"},
		{"GemsFDTD", "leslie3d", "libquantum", "milc"},
		{"omnetpp", "bwaves", "leslie3d", "GemsFDTD"},
	}
	mixes := make([]Mix, len(rows))
	for i, r := range rows {
		mixes[i] = Mix{ID: i + 1, Benchmarks: r}
	}
	return mixes
}
