// Package workload generates deterministic synthetic memory traces shaped
// like the memory-intensive SPEC CPU2006 benchmarks the paper evaluates
// (Table I). Each benchmark is characterised by its memory intensity,
// store fraction, working-set size, and access-pattern mix (streaming
// runs, hot-set reuse, and irregular pointer-chasing), and each access
// carries a stable synthetic PC so the MAP-I miss predictor sees
// instruction-correlated behaviour.
//
// The generators do not claim instruction-level fidelity to SPEC; they
// reproduce the traffic properties DCA's benefit depends on — the ratio
// of latency-critical reads to writebacks/refills, row-buffer locality,
// and bank-conflict pressure. See DESIGN.md §3.
package workload

import (
	"fmt"
	"sort"

	"dcasim/internal/rng"
)

// Op is one memory operation of a trace.
type Op struct {
	Gap   int    // non-memory instructions preceding this operation
	Store bool   // store (true) or load (false)
	Addr  int64  // block address (physical address >> 6)
	PC    uint64 // synthetic program counter of the instruction
}

// Source is a deterministic stream of memory operations driving one
// core. The synthetic generator (*Gen) is the built-in implementation;
// internal/trace provides recording tees and trace-file replay sources.
// Implementations must be infinite for the consumer's purposes: Next
// never blocks and never fails — a source backed by finite external data
// reports exhaustion out of band (see trace.Reader.Err).
type Source interface {
	Next() Op
}

// Profile describes one synthetic benchmark.
type Profile struct {
	Name         string
	MemPer1000   int     // memory operations per 1000 instructions
	StoreFrac    float64 // fraction of memory operations that are stores
	WorkingSetMB int     // footprint in MB
	SeqProb      float64 // probability an op continues a streaming run
	SeqRun       int     // mean streaming run length in blocks
	HotProb      float64 // probability an op goes to the hot set
	HotBlocks    int     // hot-set size in blocks
	RepeatProb   float64 // probability of re-touching the previous block (L1 reuse)
}

// profiles lists the 11 SPEC CPU2006 benchmarks of Table I with traffic
// characteristics drawn from their published characterisations:
// libquantum/lbm/bwaves/leslie3d stream; mcf/omnetpp/astar chase
// pointers; milc/GemsFDTD mix; lbm is write-heavy.
var profiles = map[string]Profile{
	"mcf":        {Name: "mcf", MemPer1000: 50, StoreFrac: 0.22, WorkingSetMB: 192, SeqProb: 0.10, SeqRun: 4, HotProb: 0.25, HotBlocks: 4096, RepeatProb: 0.20},
	"soplex":     {Name: "soplex", MemPer1000: 38, StoreFrac: 0.25, WorkingSetMB: 96, SeqProb: 0.55, SeqRun: 12, HotProb: 0.20, HotBlocks: 8192, RepeatProb: 0.25},
	"gcc":        {Name: "gcc", MemPer1000: 22, StoreFrac: 0.32, WorkingSetMB: 48, SeqProb: 0.40, SeqRun: 8, HotProb: 0.30, HotBlocks: 16384, RepeatProb: 0.30},
	"libquantum": {Name: "libquantum", MemPer1000: 42, StoreFrac: 0.25, WorkingSetMB: 64, SeqProb: 0.95, SeqRun: 64, HotProb: 0.02, HotBlocks: 1024, RepeatProb: 0.15},
	"astar":      {Name: "astar", MemPer1000: 34, StoreFrac: 0.28, WorkingSetMB: 96, SeqProb: 0.15, SeqRun: 4, HotProb: 0.30, HotBlocks: 8192, RepeatProb: 0.25},
	"omnetpp":    {Name: "omnetpp", MemPer1000: 36, StoreFrac: 0.33, WorkingSetMB: 128, SeqProb: 0.12, SeqRun: 4, HotProb: 0.25, HotBlocks: 8192, RepeatProb: 0.22},
	"GemsFDTD":   {Name: "GemsFDTD", MemPer1000: 44, StoreFrac: 0.30, WorkingSetMB: 128, SeqProb: 0.70, SeqRun: 24, HotProb: 0.10, HotBlocks: 4096, RepeatProb: 0.18},
	"leslie3d":   {Name: "leslie3d", MemPer1000: 40, StoreFrac: 0.30, WorkingSetMB: 96, SeqProb: 0.75, SeqRun: 24, HotProb: 0.08, HotBlocks: 4096, RepeatProb: 0.18},
	"bwaves":     {Name: "bwaves", MemPer1000: 48, StoreFrac: 0.24, WorkingSetMB: 160, SeqProb: 0.85, SeqRun: 48, HotProb: 0.05, HotBlocks: 2048, RepeatProb: 0.15},
	"lbm":        {Name: "lbm", MemPer1000: 50, StoreFrac: 0.45, WorkingSetMB: 128, SeqProb: 0.90, SeqRun: 48, HotProb: 0.02, HotBlocks: 1024, RepeatProb: 0.12},
	"milc":       {Name: "milc", MemPer1000: 40, StoreFrac: 0.35, WorkingSetMB: 144, SeqProb: 0.50, SeqRun: 16, HotProb: 0.12, HotBlocks: 4096, RepeatProb: 0.18},
}

// Lookup returns the profile for a benchmark name.
func Lookup(name string) (Profile, error) {
	p, ok := profiles[name]
	if !ok {
		return Profile{}, fmt.Errorf("workload: unknown benchmark %q", name)
	}
	return p, nil
}

// Names returns the benchmark names in sorted order.
func Names() []string {
	names := make([]string, 0, len(profiles))
	for n := range profiles {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Gen produces the trace of one benchmark instance. Generators with the
// same profile, seed, and base produce identical streams.
type Gen struct {
	prof     Profile
	rng      *rng.Rand
	base     int64 // address-space offset isolating cores from each other
	wsBlocks int64
	scale    float64

	cursor   int64 // streaming position
	runLeft  int
	lastAddr int64
	pcBase   uint64
	streamID uint64
	meanGap  int // precomputed from the profile's memory intensity
}

// NewGen builds a generator. wsScale scales the profile's working set
// (1.0 = paper scale); base offsets the address space, giving each core a
// private footprint as in multiprogrammed SPEC runs.
func NewGen(prof Profile, seed uint64, base int64, wsScale float64) *Gen {
	if wsScale <= 0 {
		wsScale = 1
	}
	ws := int64(float64(prof.WorkingSetMB) * wsScale * 1024 * 1024 / 64)
	if ws < 1024 {
		ws = 1024
	}
	g := &Gen{
		prof:     prof,
		rng:      rng.New(seed),
		base:     base,
		wsBlocks: ws,
		scale:    wsScale,
		pcBase:   hashName(prof.Name),
	}
	g.meanGap = 1000/prof.MemPer1000 - 1
	if g.meanGap < 0 {
		g.meanGap = 0
	}
	g.cursor = g.rng.Int63n(ws)
	g.lastAddr = g.base + g.cursor
	return g
}

func hashName(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h | 1
}

// WorkingSetBlocks returns the effective footprint in blocks.
func (g *Gen) WorkingSetBlocks() int64 { return g.wsBlocks }

// Next produces the next memory operation of the trace.
func (g *Gen) Next() Op {
	p := g.prof
	meanGap := g.meanGap
	gap := meanGap/2 + g.rng.Intn(meanGap+1)

	store := g.rng.Bool(p.StoreFrac)
	var addr int64
	var pc uint64
	switch {
	case g.rng.Bool(p.RepeatProb):
		// Short-range reuse of the previous block (register-spill /
		// same-structure accesses) — this is what the L1 filters.
		addr = g.lastAddr
		pc = g.pcBase + 1
	case g.runLeft > 0 || g.rng.Bool(p.SeqProb):
		// Streaming run.
		if g.runLeft == 0 {
			g.runLeft = 1 + g.rng.Intn(2*p.SeqRun)
			// Occasionally restart the stream elsewhere.
			if g.rng.Bool(0.2) {
				g.cursor = g.rng.Int63n(g.wsBlocks)
				g.streamID++
			}
		}
		g.runLeft--
		g.cursor = (g.cursor + 1) % g.wsBlocks
		addr = g.base + g.cursor
		pc = g.pcBase + 16 + g.streamID%4
	case g.rng.Bool(p.HotProb):
		// Hot-set reuse (L2-resident data).
		addr = g.base + g.rng.Int63n(int64(p.HotBlocks))
		pc = g.pcBase + 32 + uint64(g.rng.Intn(4))
	default:
		// Irregular access over the whole footprint.
		addr = g.base + g.rng.Int63n(g.wsBlocks)
		pc = g.pcBase + 64 + uint64(g.rng.Intn(8))
	}
	g.lastAddr = addr
	return Op{Gap: gap, Store: store, Addr: addr, PC: pc}
}
