package workload

import (
	"math"
	"testing"
)

// TestCharacterization pins the aggregate traffic statistics of every
// built-in benchmark — the same quantities `dcatrace -summary` reports —
// so a generator refactor cannot silently drift the workloads the
// evaluation depends on. The pinned values were measured at seed 1,
// wsScale 0.1, over 100k operations; the tolerances are wide enough to
// survive refactors that preserve the traffic statistics (e.g. a
// different RNG consumption order) but not a change in workload shape.
func TestCharacterization(t *testing.T) {
	const (
		n        = 100_000
		seed     = 1
		wsScale  = 0.1
		relTol   = 0.05 // memory intensity: ±5 % relative
		storeTol = 0.02 // store fraction: ±2 points absolute
		seqTol   = 0.05 // sequential fraction: ±5 points absolute
		reachTol = 0.15 // footprint reach: ±15 % relative
	)
	// name, memory ops per 1000 instructions, store fraction,
	// sequential-address fraction, distinct blocks / working set.
	pins := []struct {
		name      string
		intensity float64
		storeFrac float64
		seqFrac   float64
		reach     float64
	}{
		{"GemsFDTD", 46.55, 0.3018, 0.7924, 0.3219},
		{"astar", 34.45, 0.2807, 0.2673, 0.3582},
		{"bwaves", 51.33, 0.2415, 0.8406, 0.2764},
		{"gcc", 22.23, 0.3202, 0.5468, 0.5823},
		{"lbm", 51.25, 0.4524, 0.8748, 0.3426},
		{"leslie3d", 39.98, 0.2995, 0.7947, 0.4128},
		{"libquantum", 43.48, 0.2500, 0.8438, 0.5654},
		{"mcf", 51.36, 0.2216, 0.2140, 0.2019},
		{"milc", 40.03, 0.3496, 0.7440, 0.2916},
		{"omnetpp", 36.99, 0.3298, 0.2406, 0.2936},
		{"soplex", 39.25, 0.2498, 0.6727, 0.3682},
	}
	if len(pins) != len(Names()) {
		t.Fatalf("pin table covers %d benchmarks, profiles define %d", len(pins), len(Names()))
	}
	for _, pin := range pins {
		pin := pin
		t.Run(pin.name, func(t *testing.T) {
			prof, err := Lookup(pin.name)
			if err != nil {
				t.Fatal(err)
			}
			g := NewGen(prof, seed, 0, wsScale)
			var instrs, stores, seq int64
			touched := make(map[int64]struct{}, n)
			prev := int64(-10)
			for i := 0; i < n; i++ {
				op := g.Next()
				instrs += int64(op.Gap) + 1
				if op.Store {
					stores++
				}
				if op.Addr == prev+1 {
					seq++
				}
				prev = op.Addr
				touched[op.Addr] = struct{}{}
			}
			intensity := float64(n) / float64(instrs) * 1000
			storeFrac := float64(stores) / n
			seqFrac := float64(seq) / n
			reach := float64(len(touched)) / float64(g.WorkingSetBlocks())

			if rel := math.Abs(intensity-pin.intensity) / pin.intensity; rel > relTol {
				t.Errorf("memory intensity %.2f/1000, pinned %.2f (drift %.1f%% > %.0f%%)",
					intensity, pin.intensity, 100*rel, 100*relTol)
			}
			if d := math.Abs(storeFrac - pin.storeFrac); d > storeTol {
				t.Errorf("store fraction %.4f, pinned %.4f (drift %.3f > %.2f)",
					storeFrac, pin.storeFrac, d, storeTol)
			}
			if d := math.Abs(seqFrac - pin.seqFrac); d > seqTol {
				t.Errorf("sequential fraction %.4f, pinned %.4f (drift %.3f > %.2f)",
					seqFrac, pin.seqFrac, d, seqTol)
			}
			if rel := math.Abs(reach-pin.reach) / pin.reach; rel > reachTol {
				t.Errorf("footprint reach %.4f, pinned %.4f (drift %.1f%% > %.0f%%)",
					reach, pin.reach, 100*rel, 100*reachTol)
			}
			// The measured intensity must also sit near the profile's
			// nominal MemPer1000 (quantized by the integer mean gap).
			nominal := 1000.0 / float64(1000/prof.MemPer1000)
			if rel := math.Abs(intensity-nominal) / nominal; rel > relTol {
				t.Errorf("intensity %.2f strayed from nominal %.2f", intensity, nominal)
			}
		})
	}
}
