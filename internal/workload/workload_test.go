package workload

import (
	"testing"
	"testing/quick"
)

func TestProfilesComplete(t *testing.T) {
	want := []string{"mcf", "soplex", "gcc", "libquantum", "astar", "omnetpp",
		"GemsFDTD", "leslie3d", "bwaves", "lbm", "milc"}
	for _, n := range want {
		p, err := Lookup(n)
		if err != nil {
			t.Errorf("missing benchmark %q: %v", n, err)
			continue
		}
		if p.MemPer1000 <= 0 || p.MemPer1000 > 1000 {
			t.Errorf("%s: implausible memory intensity %d", n, p.MemPer1000)
		}
		if p.StoreFrac < 0 || p.StoreFrac > 1 {
			t.Errorf("%s: bad store fraction %v", n, p.StoreFrac)
		}
		if p.WorkingSetMB < 16 {
			t.Errorf("%s: working set %d MB too small to stress a DRAM cache", n, p.WorkingSetMB)
		}
	}
	if len(Names()) != len(want) {
		t.Errorf("Names() has %d entries, want %d", len(Names()), len(want))
	}
}

func TestLookupUnknown(t *testing.T) {
	if _, err := Lookup("quake"); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

func TestGenDeterminism(t *testing.T) {
	p, _ := Lookup("mcf")
	a := NewGen(p, 42, 0, 0.1)
	b := NewGen(p, 42, 0, 0.1)
	for i := 0; i < 10_000; i++ {
		if a.Next() != b.Next() {
			t.Fatalf("generators with identical seeds diverged at op %d", i)
		}
	}
}

func TestGenSeedsDiffer(t *testing.T) {
	p, _ := Lookup("mcf")
	a := NewGen(p, 1, 0, 0.1)
	b := NewGen(p, 2, 0, 0.1)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Next().Addr == b.Next().Addr {
			same++
		}
	}
	if same > 900 {
		t.Fatalf("different seeds produced %d/1000 identical addresses", same)
	}
}

func TestAddressesWithinFootprint(t *testing.T) {
	f := func(seed uint64) bool {
		p, _ := Lookup("bwaves")
		base := int64(1) << 40
		g := NewGen(p, seed, base, 0.05)
		ws := g.WorkingSetBlocks()
		for i := 0; i < 2000; i++ {
			op := g.Next()
			if op.Addr < base || op.Addr >= base+ws {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestMemoryIntensity(t *testing.T) {
	p, _ := Lookup("lbm")
	g := NewGen(p, 7, 0, 0.1)
	instrs, ops := 0, 0
	for ops < 20_000 {
		op := g.Next()
		instrs += op.Gap + 1
		ops++
	}
	got := float64(ops) / float64(instrs) * 1000
	lo, hi := float64(p.MemPer1000)*0.7, float64(p.MemPer1000)*1.4
	if got < lo || got > hi {
		t.Fatalf("lbm memory intensity %.1f per 1000 instr, want within [%.0f, %.0f]", got, lo, hi)
	}
}

func TestStoreFraction(t *testing.T) {
	p, _ := Lookup("lbm")
	g := NewGen(p, 7, 0, 0.1)
	stores := 0
	const n = 50_000
	for i := 0; i < n; i++ {
		if g.Next().Store {
			stores++
		}
	}
	got := float64(stores) / n
	if got < p.StoreFrac-0.03 || got > p.StoreFrac+0.03 {
		t.Fatalf("store fraction %.3f, want near %.2f", got, p.StoreFrac)
	}
}

func TestStreamingLocality(t *testing.T) {
	// libquantum is nearly pure streaming: most consecutive address
	// deltas should be +1 block.
	p, _ := Lookup("libquantum")
	g := NewGen(p, 3, 0, 0.1)
	seq := 0
	const n = 20_000
	prev := g.Next().Addr
	for i := 0; i < n; i++ {
		a := g.Next().Addr
		if a == prev+1 {
			seq++
		}
		prev = a
	}
	if frac := float64(seq) / n; frac < 0.5 {
		t.Fatalf("libquantum sequential fraction %.2f, want streaming-dominated", frac)
	}

	// mcf is pointer-chasing: sequential deltas must be rare.
	p, _ = Lookup("mcf")
	g = NewGen(p, 3, 0, 0.1)
	seq = 0
	prev = g.Next().Addr
	for i := 0; i < n; i++ {
		a := g.Next().Addr
		if a == prev+1 {
			seq++
		}
		prev = a
	}
	if frac := float64(seq) / n; frac > 0.4 {
		t.Fatalf("mcf sequential fraction %.2f, want irregular-dominated", frac)
	}
}

func TestPCsStable(t *testing.T) {
	p, _ := Lookup("milc")
	g := NewGen(p, 5, 0, 0.1)
	pcs := map[uint64]bool{}
	for i := 0; i < 50_000; i++ {
		pcs[g.Next().PC] = true
	}
	if len(pcs) > 64 {
		t.Fatalf("%d distinct PCs; MAP-I needs a small stable set", len(pcs))
	}
	if len(pcs) < 3 {
		t.Fatalf("only %d distinct PCs; need pattern-differentiated PCs", len(pcs))
	}
}

func TestTableI(t *testing.T) {
	mixes := TableI()
	if len(mixes) != 30 {
		t.Fatalf("Table I has %d mixes, want 30", len(mixes))
	}
	for _, m := range mixes {
		if m.ID < 1 || m.ID > 30 {
			t.Errorf("mix ID %d out of range", m.ID)
		}
		for _, b := range m.Benchmarks {
			if _, err := Lookup(b); err != nil {
				t.Errorf("mix %d references unknown benchmark %q", m.ID, b)
			}
		}
	}
	// Spot-check two rows against the paper's table.
	if got := mixes[0].Benchmarks; got != [4]string{"soplex", "mcf", "gcc", "libquantum"} {
		t.Errorf("mix 1 = %v", got)
	}
	if got := mixes[29].Benchmarks; got != [4]string{"omnetpp", "bwaves", "leslie3d", "GemsFDTD"} {
		t.Errorf("mix 30 = %v", got)
	}
}

func TestWSScaleFloor(t *testing.T) {
	p, _ := Lookup("gcc")
	g := NewGen(p, 1, 0, 0.000001)
	if g.WorkingSetBlocks() < 1024 {
		t.Fatal("working set floor not applied")
	}
	g2 := NewGen(p, 1, 0, 0) // non-positive scale falls back to 1.0
	if g2.WorkingSetBlocks() != int64(p.WorkingSetMB)<<20/64 {
		t.Fatalf("zero scale handled wrong: %d blocks", g2.WorkingSetBlocks())
	}
}
