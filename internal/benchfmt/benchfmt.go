// Package benchfmt is the shared model of the repo's benchmark
// artifacts: the JSON report cmd/benchjson emits from `go test -bench`
// text output (BENCH_controller.json, BENCH_parallel.json) and the
// regression comparison cmd/benchdiff applies between two such reports
// in the CI bench-gate job.
package benchfmt

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
}

// Report is the emitted document.
type Report struct {
	Timestamp  string      `json:"timestamp"`
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	CPUs       int         `json:"cpus,omitempty"` // cores on the recording machine
	Benchmarks []Benchmark `json:"benchmarks"`
}

// Parse converts `go test -bench` text output into a Report stamped
// with the given recording time and the machine shape. The timestamp
// is caller-injected — this package never reads the wall clock — so
// parsing is a pure function of its inputs and two invocations over
// the same text with the same stamp produce byte-identical reports
// (cmd/benchjson passes time.Now; tests pass a fixed instant).
// Unparseable lines are skipped — test chatter interleaves freely
// with benchmark results.
func Parse(r io.Reader, stamp time.Time) (Report, error) {
	rep := Report{
		Timestamp: stamp.UTC().Format(time.RFC3339),
		CPUs:      runtime.NumCPU(),
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			continue
		case strings.HasPrefix(line, "goarch:"):
			rep.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			continue
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		case !strings.HasPrefix(line, "Benchmark"):
			continue
		}
		f := strings.Fields(line)
		// Name  N  ns/op-value "ns/op"  [B/op-value "B/op"  allocs-value "allocs/op"]
		if len(f) < 4 || f[3] != "ns/op" {
			continue
		}
		b := Benchmark{Name: f[0]}
		var err error
		if b.Iterations, err = strconv.ParseInt(f[1], 10, 64); err != nil {
			continue
		}
		if b.NsPerOp, err = strconv.ParseFloat(f[2], 64); err != nil {
			continue
		}
		for i := 4; i+1 < len(f); i += 2 {
			v, err := strconv.ParseInt(f[i], 10, 64)
			if err != nil {
				continue
			}
			switch f[i+1] {
			case "B/op":
				b.BytesPerOp = v
			case "allocs/op":
				b.AllocsPerOp = v
			}
		}
		rep.Benchmarks = append(rep.Benchmarks, b)
	}
	if err := sc.Err(); err != nil {
		return rep, err
	}
	return rep, nil
}

// Load reads a Report previously written as JSON.
func Load(path string) (Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Report{}, fmt.Errorf("benchfmt: %w", err)
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return Report{}, fmt.Errorf("benchfmt: decode %s: %w", path, err)
	}
	return rep, nil
}

// Verdict classifies one baseline/current benchmark pair.
type Verdict int

// Verdicts, ordered from fine to fatal.
const (
	OK        Verdict = iota // within tolerance
	Improved                 // measurably faster or leaner
	TimeRegr                 // ns/op beyond the time tolerance
	AllocRegr                // allocs/op above the alloc tolerance
	Missing                  // benchmark present in the baseline, absent now
)

func (v Verdict) String() string {
	switch v {
	case OK:
		return "ok"
	case Improved:
		return "improved"
	case TimeRegr:
		return "TIME REGRESSION"
	case AllocRegr:
		return "ALLOC REGRESSION"
	case Missing:
		return "MISSING"
	}
	return fmt.Sprintf("verdict(%d)", int(v))
}

// Fatal reports whether the verdict must fail the gate.
func (v Verdict) Fatal() bool { return v >= TimeRegr }

// DiffRow is the comparison of one benchmark across two reports.
type DiffRow struct {
	Name                  string
	BaseNs, CurNs         float64
	TimeDeltaPct          float64
	BaseAllocs, CurAllocs int64
	Verdict               Verdict
}

// trimProcs strips the "-N" GOMAXPROCS suffix `go test` appends to
// benchmark names on multi-core machines (and omits on one core), so a
// baseline recorded at one core count compares against a run at another.
// Sub-benchmarks whose own name ends in "-<digits>" would be ambiguous;
// the guarded benchmark set has none.
func trimProcs(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	for _, r := range name[i+1:] {
		if r < '0' || r > '9' {
			return name
		}
	}
	if i+1 == len(name) {
		return name
	}
	return name[:i]
}

// Compare evaluates current against baseline. timeTolPct is the allowed
// ns/op growth in percent (e.g. 15 → fail beyond +15%). Allocs/op may
// grow by max(allocTol, baseline*allocTolPct/100): the absolute and
// relative tolerances are both zero-preserving, so a zero-alloc kernel
// benchmark fails on a single new allocation per op (the gate's core
// contract) while allocation-heavy end-to-end benchmarks get headroom
// for run-to-run and GOMAXPROCS-dependent skew (the worker pool's
// goroutine count follows the core count). A benchmark in the baseline
// but not in current fails — a silently dropped benchmark must not
// green the gate. Benchmarks only in current are ignored: new coverage
// is not a regression. Names match modulo the GOMAXPROCS suffix, so
// reports from machines with different core counts compare.
func Compare(baseline, current Report, timeTolPct float64, allocTol int64, allocTolPct float64) (rows []DiffRow, failed bool) {
	cur := make(map[string]Benchmark, len(current.Benchmarks))
	for _, b := range current.Benchmarks {
		cur[trimProcs(b.Name)] = b
	}
	for _, base := range baseline.Benchmarks {
		row := DiffRow{Name: trimProcs(base.Name), BaseNs: base.NsPerOp, BaseAllocs: base.AllocsPerOp}
		c, ok := cur[trimProcs(base.Name)]
		if !ok {
			row.Verdict = Missing
			failed = true
			rows = append(rows, row)
			continue
		}
		row.CurNs = c.NsPerOp
		row.CurAllocs = c.AllocsPerOp
		if base.NsPerOp > 0 {
			row.TimeDeltaPct = 100 * (c.NsPerOp - base.NsPerOp) / base.NsPerOp
		}
		allowedAllocGrowth := allocTol
		if rel := int64(float64(base.AllocsPerOp) * allocTolPct / 100); rel > allowedAllocGrowth {
			allowedAllocGrowth = rel
		}
		switch {
		case c.AllocsPerOp > base.AllocsPerOp+allowedAllocGrowth:
			row.Verdict = AllocRegr
			failed = true
		case row.TimeDeltaPct > timeTolPct:
			row.Verdict = TimeRegr
			failed = true
		case row.TimeDeltaPct < -5 || c.AllocsPerOp < base.AllocsPerOp:
			row.Verdict = Improved
		default:
			row.Verdict = OK
		}
		rows = append(rows, row)
	}
	return rows, failed
}
