package benchfmt

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

const sampleBenchOutput = `goos: linux
goarch: amd64
pkg: dcasim
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkFig8-8          	       2	909471722 ns/op	45654408 B/op	   23962 allocs/op
BenchmarkSimOneRun-8     	      20	 34478108 ns/op	 1109817 B/op	     690 allocs/op
BenchmarkChannelIssue-8  	18410629	        12.42 ns/op
some interleaved test chatter
PASS
`

// fixedStamp is the injected recording time: Parse never reads the
// wall clock, so the same input and stamp must yield the same report.
var fixedStamp = time.Date(2026, 7, 29, 0, 0, 0, 0, time.UTC)

func TestParse(t *testing.T) {
	rep, err := Parse(strings.NewReader(sampleBenchOutput), fixedStamp)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Timestamp != "2026-07-29T00:00:00Z" {
		t.Fatalf("timestamp not the injected instant: %q", rep.Timestamp)
	}
	if rep.Goos != "linux" || rep.Goarch != "amd64" || !strings.Contains(rep.CPU, "Xeon") {
		t.Fatalf("machine fields not parsed: %+v", rep)
	}
	if rep.CPUs < 1 {
		t.Fatalf("CPUs not stamped: %d", rep.CPUs)
	}
	if len(rep.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(rep.Benchmarks))
	}
	fig8 := rep.Benchmarks[0]
	if fig8.Name != "BenchmarkFig8-8" || fig8.Iterations != 2 ||
		fig8.NsPerOp != 909471722 || fig8.AllocsPerOp != 23962 {
		t.Fatalf("Fig8 mis-parsed: %+v", fig8)
	}
	if ch := rep.Benchmarks[2]; ch.NsPerOp != 12.42 || ch.AllocsPerOp != 0 {
		t.Fatalf("ChannelIssue mis-parsed: %+v", ch)
	}
}

func report(benches ...Benchmark) Report {
	return Report{Timestamp: "2026-07-29T00:00:00Z", Benchmarks: benches}
}

func TestCompareWithinTolerancePasses(t *testing.T) {
	base := report(
		Benchmark{Name: "BenchmarkFig8", NsPerOp: 1000, AllocsPerOp: 100},
		Benchmark{Name: "BenchmarkChannelIssue", NsPerOp: 12.4},
	)
	cur := report(
		Benchmark{Name: "BenchmarkFig8", NsPerOp: 1100, AllocsPerOp: 100}, // +10% < 15%
		Benchmark{Name: "BenchmarkChannelIssue", NsPerOp: 12.9},
		Benchmark{Name: "BenchmarkNewCoverage", NsPerOp: 5}, // extra benchmarks are fine
	)
	rows, failed := Compare(base, cur, 15, 0, 1)
	if failed {
		t.Fatalf("within-tolerance comparison failed: %+v", rows)
	}
	if len(rows) != 2 {
		t.Fatalf("compared %d rows, want 2 (baseline-driven)", len(rows))
	}
}

func TestCompareTimeRegressionFails(t *testing.T) {
	base := report(Benchmark{Name: "BenchmarkFig8", NsPerOp: 1000})
	cur := report(Benchmark{Name: "BenchmarkFig8", NsPerOp: 1200}) // +20% > 15%
	rows, failed := Compare(base, cur, 15, 0, 1)
	if !failed {
		t.Fatal("a +20% time regression passed a 15% gate")
	}
	if rows[0].Verdict != TimeRegr || !rows[0].Verdict.Fatal() {
		t.Fatalf("verdict %v, want TimeRegr", rows[0].Verdict)
	}
}

func TestCompareAnyAllocRegressionFails(t *testing.T) {
	// The zero-alloc kernel contract: a single extra allocation per op
	// fails, no matter how small the time delta.
	base := report(Benchmark{Name: "BenchmarkEventEngine", NsPerOp: 100, AllocsPerOp: 0})
	cur := report(Benchmark{Name: "BenchmarkEventEngine", NsPerOp: 100, AllocsPerOp: 1})
	rows, failed := Compare(base, cur, 15, 0, 1)
	if !failed || rows[0].Verdict != AllocRegr {
		t.Fatalf("one-alloc regression not caught: %+v", rows)
	}
}

func TestCompareMissingBenchmarkFails(t *testing.T) {
	base := report(
		Benchmark{Name: "BenchmarkFig8", NsPerOp: 1000},
		Benchmark{Name: "BenchmarkSimOneRun", NsPerOp: 500},
	)
	cur := report(Benchmark{Name: "BenchmarkFig8", NsPerOp: 1000})
	rows, failed := Compare(base, cur, 15, 0, 1)
	if !failed {
		t.Fatal("dropping a guarded benchmark passed the gate")
	}
	if rows[1].Verdict != Missing {
		t.Fatalf("verdict %v, want Missing", rows[1].Verdict)
	}
}

func TestCompareImprovementIsNotARegression(t *testing.T) {
	base := report(Benchmark{Name: "BenchmarkFig8", NsPerOp: 1000, AllocsPerOp: 100})
	cur := report(Benchmark{Name: "BenchmarkFig8", NsPerOp: 500, AllocsPerOp: 50})
	rows, failed := Compare(base, cur, 15, 0, 1)
	if failed || rows[0].Verdict != Improved {
		t.Fatalf("a 2x improvement misclassified: %+v", rows)
	}
}

// TestCompareRelativeAllocTolerance: allocation-heavy benchmarks get
// percentage headroom (the worker pool's goroutine count tracks
// GOMAXPROCS, skewing allocs/op across machines) while zero-alloc
// baselines remain strict — 0 * pct is still 0.
func TestCompareRelativeAllocTolerance(t *testing.T) {
	base := report(Benchmark{Name: "BenchmarkFig8", NsPerOp: 1000, AllocsPerOp: 40000})
	cur := report(Benchmark{Name: "BenchmarkFig8", NsPerOp: 1000, AllocsPerOp: 40300}) // +0.75% < 1%
	if _, failed := Compare(base, cur, 15, 0, 1); failed {
		t.Fatal("+0.75% allocs failed a 1% relative tolerance")
	}
	cur = report(Benchmark{Name: "BenchmarkFig8", NsPerOp: 1000, AllocsPerOp: 40500}) // +1.25% > 1%
	if _, failed := Compare(base, cur, 15, 0, 1); !failed {
		t.Fatal("+1.25% allocs passed a 1% relative tolerance")
	}
}

func TestCompareAllocTolerance(t *testing.T) {
	base := report(Benchmark{Name: "BenchmarkFig8", NsPerOp: 1000, AllocsPerOp: 100})
	cur := report(Benchmark{Name: "BenchmarkFig8", NsPerOp: 1000, AllocsPerOp: 104})
	if _, failed := Compare(base, cur, 15, 5, 0); failed {
		t.Fatal("+4 allocs failed a +5 tolerance")
	}
	if _, failed := Compare(base, cur, 15, 3, 0); !failed {
		t.Fatal("+4 allocs passed a +3 tolerance")
	}
}

// TestCompareAcrossCoreCounts: a baseline recorded on one core (no
// GOMAXPROCS suffix) must match a current run from a multi-core machine
// (suffixed names) and vice versa.
func TestCompareAcrossCoreCounts(t *testing.T) {
	base := report(Benchmark{Name: "BenchmarkFig8", NsPerOp: 1000, AllocsPerOp: 100})
	cur := report(Benchmark{Name: "BenchmarkFig8-8", NsPerOp: 1010, AllocsPerOp: 100})
	rows, failed := Compare(base, cur, 15, 0, 1)
	if failed || len(rows) != 1 || rows[0].Verdict == Missing {
		t.Fatalf("suffix mismatch broke the comparison: %+v", rows)
	}
	if trimProcs("BenchmarkFig8-16") != "BenchmarkFig8" ||
		trimProcs("BenchmarkFig8") != "BenchmarkFig8" ||
		trimProcs("BenchmarkFoo-bar") != "BenchmarkFoo-bar" ||
		trimProcs("BenchmarkFoo-") != "BenchmarkFoo-" {
		t.Fatal("trimProcs mishandles an edge case")
	}
}

func TestLoadRoundTrip(t *testing.T) {
	rep, err := Parse(strings.NewReader(sampleBenchOutput), fixedStamp)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "bench.json")
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Benchmarks) != len(rep.Benchmarks) || got.CPU != rep.CPU {
		t.Fatalf("round trip diverged: %+v vs %+v", got, rep)
	}
	if _, err := Load(filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Fatal("Load accepted a missing file")
	}
}
