package rescache

import (
	"encoding/json"
	"os"
	"reflect"
	"strings"
	"testing"

	"dcasim/internal/config"
	"dcasim/internal/sim"
)

func sampleResult() sim.Result {
	res := sim.Result{
		Benchmarks:      []string{"mcf", "lbm"},
		IPC:             []float64{0.731234567891234, 1.25},
		FinishNS:        []float64{123456.75, 98765.5},
		L2MissLatencyNS: 87.348723,
		L2MissRate:      0.25,
		MainMemReads:    9876543,
	}
	res.DCache.ReadReqs = 42
	res.DRAM.Accesses = 77
	res.Ctrl.PRIssued = 11
	return res
}

func TestPutGetRoundTrip(t *testing.T) {
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := config.Test().Hash()
	want := sampleResult()
	if err := c.Put(key, want); err != nil {
		t.Fatal(err)
	}
	got, ok := c.Get(key)
	if !ok {
		t.Fatal("entry not found after Put")
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip diverged:\n got %+v\nwant %+v", got, want)
	}
	if _, ok := c.Get(strings.Repeat("ab", 32)); ok {
		t.Fatal("hit for a key never stored")
	}
}

func TestCorruptEntryIsAMiss(t *testing.T) {
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := config.Test().Hash()
	if err := c.Put(key, sampleResult()); err != nil {
		t.Fatal(err)
	}

	corrupt := func(name string, mutate func([]byte) []byte) {
		t.Helper()
		data, err := os.ReadFile(c.Path(key))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(c.Path(key), mutate(data), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, ok := c.Get(key); ok {
			t.Errorf("%s: corrupted entry was trusted", name)
		}
		if err := c.Put(key, sampleResult()); err != nil { // restore
			t.Fatal(err)
		}
	}

	corrupt("truncated", func(b []byte) []byte { return b[:len(b)/2] })
	corrupt("garbage", func(b []byte) []byte { return []byte("not json at all") })
	corrupt("bit flip in payload", func(b []byte) []byte {
		// Flip a digit inside the result payload: the envelope still
		// decodes but the checksum must catch the altered bytes.
		s := strings.Replace(string(b), "9876543", "9876542", 1)
		if s == string(b) {
			t.Fatal("payload marker not found")
		}
		return []byte(s)
	})
	corrupt("wrong key", func(b []byte) []byte {
		other := config.Bench().Hash()
		return []byte(strings.ReplaceAll(string(b), key, other))
	})
	corrupt("old schema", func(b []byte) []byte {
		return []byte(strings.Replace(string(b), `"schema": 1`, `"schema": 0`, 1))
	})

	// After all that vandalism a fresh Put must make the entry readable
	// again — recompute-and-overwrite, never trust.
	if _, ok := c.Get(key); !ok {
		t.Fatal("entry unreadable after re-Put")
	}
}

func TestInvalidKeysRejected(t *testing.T) {
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"", "../escape", "ABCDEF", "deadbeef/../../etc"} {
		if err := c.Put(key, sim.Result{}); err == nil {
			t.Errorf("Put accepted invalid key %q", key)
		}
		if _, ok := c.Get(key); ok {
			t.Errorf("Get accepted invalid key %q", key)
		}
	}
}

// TestEntryEnvelopeShape pins the on-disk format documented in the
// README: schema, key, sha256, result.
func TestEntryEnvelopeShape(t *testing.T) {
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := config.Test().Hash()
	if err := c.Put(key, sampleResult()); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(c.Path(key))
	if err != nil {
		t.Fatal(err)
	}
	var e struct {
		Schema int             `json:"schema"`
		Key    string          `json:"key"`
		SHA256 string          `json:"sha256"`
		Result json.RawMessage `json:"result"`
	}
	if err := json.Unmarshal(data, &e); err != nil {
		t.Fatal(err)
	}
	if e.Schema != config.SchemaVersion || e.Key != key || len(e.SHA256) != 64 || len(e.Result) == 0 {
		t.Fatalf("unexpected envelope: %+v", e)
	}
}
