package rescache

import (
	"os"
	"reflect"
	"sync"
	"syscall"
	"testing"
	"time"

	"dcasim/internal/cachefs"
	"dcasim/internal/config"
)

// checkIntact asserts the cache's headline fault invariant for one key:
// Get either misses or returns exactly want — never a corrupted result
// — and the cache is not wedged: a recompute (Put over the real
// filesystem) must land and read back.
func checkIntact(t *testing.T, dir, key string, want interface{}) {
	t.Helper()
	c, err := Open(dir) // fresh cache over the real FS: the "restarted process"
	if err != nil {
		t.Fatalf("reopen after fault: %v", err)
	}
	if got, ok := c.Get(key); ok && !reflect.DeepEqual(got, want) {
		t.Fatalf("Get trusted a corrupted entry: %+v", got)
	}
	if err := c.Put(key, sampleResult()); err != nil {
		t.Fatalf("recompute Put after fault: %v", err)
	}
	got, ok := c.Get(key)
	if !ok || !reflect.DeepEqual(got, sampleResult()) {
		t.Fatalf("cache wedged after fault: Get = (%+v, %v)", got, ok)
	}
}

// TestFaultEveryPutGetOp is the systematic fault sweep: inject an EIO
// at each successive filesystem operation of a clean Put+Get cycle and
// prove that no fault ever corrupts an entry or wedges the cache —
// every failure either degrades to a recompute or surfaces as a typed
// rescache error.
func TestFaultEveryPutGetOp(t *testing.T) {
	key := config.Test().Hash()
	want := sampleResult()

	// Record the operation sequence of one clean cycle.
	probe := cachefs.NewFault(cachefs.OS())
	pc, err := OpenFS(t.TempDir(), probe)
	if err != nil {
		t.Fatal(err)
	}
	if err := pc.Put(key, want); err != nil {
		t.Fatal(err)
	}
	if _, ok := pc.Get(key); !ok {
		t.Fatal("clean Get missed")
	}
	script := probe.OpLog()
	if len(script) < 6 {
		t.Fatalf("clean Put+Get performed only %d ops: %v", len(script), script)
	}

	ordinal := map[cachefs.Op]int{}
	for i, op := range script {
		ordinal[op]++
		nth := ordinal[op]
		t.Run(string(op), func(t *testing.T) {
			dir := t.TempDir()
			fault := cachefs.NewFault(cachefs.OS())
			c, err := OpenFS(dir, fault)
			if err != nil {
				t.Fatal(err)
			}
			fault.FailAt(op, nth, syscall.EIO)
			perr := c.Put(key, want)
			got, ok := c.Get(key)
			if ok && !reflect.DeepEqual(got, want) {
				t.Fatalf("op %d (%s): Get trusted a corrupted entry", i, op)
			}
			if perr == nil && !ok {
				// A fault swallowed by Put (best-effort dir sync, the
				// Get-side fault) may cost the hit, never corrupt it.
				t.Logf("op %d (%s): Put ok but Get missed (acceptable degrade)", i, op)
			}
			checkIntact(t, dir, key, want)
		})
	}
}

// TestFaultTornWriteNeverVisible: a write that lands only a prefix of
// the entry (torn by ENOSPC) must fail the Put, never become a readable
// entry, and leave the cache recomputable.
func TestFaultTornWrite(t *testing.T) {
	dir := t.TempDir()
	fault := cachefs.NewFault(cachefs.OS())
	c, err := OpenFS(dir, fault)
	if err != nil {
		t.Fatal(err)
	}
	key := config.Test().Hash()
	fault.PartialWriteAt(1, 10, syscall.ENOSPC)
	if err := c.Put(key, sampleResult()); err == nil {
		t.Fatal("Put succeeded through a torn write")
	}
	if _, ok := c.Get(key); ok {
		t.Fatal("torn write became a readable entry")
	}
	checkIntact(t, dir, key, sampleResult())
}

// TestFaultCrashAtRename: the process dies at the rename — the entry
// must not exist, the abandoned temp file must not wedge a restarted
// process, and the key recomputes cleanly.
func TestFaultCrashAtRename(t *testing.T) {
	dir := t.TempDir()
	fault := cachefs.NewFault(cachefs.OS())
	c, err := OpenFS(dir, fault)
	if err != nil {
		t.Fatal(err)
	}
	key := config.Test().Hash()
	fault.CrashAt(cachefs.OpRename, 1)
	if err := c.Put(key, sampleResult()); err == nil {
		t.Fatal("Put succeeded through a crash at rename")
	}
	// The dead process leaves its temp file behind (its post-crash
	// cleanup could not run); the entry must not be visible.
	if _, ok := c.Get(key); ok {
		t.Fatal("entry visible although the rename never happened")
	}
	checkIntact(t, dir, key, sampleResult())
}

// TestFaultCrashAfterRename: the process dies right after the rename
// (at the directory sync). The entry is whole on disk — rename is
// atomic — so a restarted process may trust it.
func TestFaultCrashAfterRename(t *testing.T) {
	dir := t.TempDir()
	fault := cachefs.NewFault(cachefs.OS())
	c, err := OpenFS(dir, fault)
	if err != nil {
		t.Fatal(err)
	}
	key := config.Test().Hash()
	want := sampleResult()
	fault.CrashAt(cachefs.OpSyncDir, 1)
	if err := c.Put(key, want); err != nil {
		t.Fatalf("Put failed on the best-effort dir sync: %v", err)
	}
	c2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := c2.Get(key)
	if !ok || !reflect.DeepEqual(got, want) {
		t.Fatalf("whole renamed entry not readable after crash: (%+v, %v)", got, ok)
	}
}

// TestPutSyncsBeforeRename pins the durability protocol: the temp file
// is fsynced before the rename publishes it, and the directory is
// synced after — the ordering that stops a machine crash from ever
// surfacing a zero-length entry under the final name.
func TestPutSyncsBeforeRename(t *testing.T) {
	fault := cachefs.NewFault(cachefs.OS())
	c, err := OpenFS(t.TempDir(), fault)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Put(config.Test().Hash(), sampleResult()); err != nil {
		t.Fatal(err)
	}
	sync, rename, dirsync := -1, -1, -1
	for i, op := range fault.OpLog() {
		switch op {
		case cachefs.OpFileSync:
			sync = i
		case cachefs.OpRename:
			rename = i
		case cachefs.OpSyncDir:
			dirsync = i
		}
	}
	if sync < 0 || rename < 0 || dirsync < 0 {
		t.Fatalf("Put skipped a durability step: ops %v", fault.OpLog())
	}
	if !(sync < rename && rename < dirsync) {
		t.Fatalf("durability ordering broken: sync@%d rename@%d dirsync@%d", sync, rename, dirsync)
	}
}

// TestCorruptEntriesNeverTrusted: every flavour of on-disk damage —
// zero-length (the crash-after-unsynced-rename artifact), truncation,
// a flipped payload byte, an entry copied under the wrong key — must
// read as a clean miss.
func TestCorruptEntriesNeverTrusted(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := config.Test().Hash()
	if err := c.Put(key, sampleResult()); err != nil {
		t.Fatal(err)
	}
	valid, err := os.ReadFile(c.Path(key))
	if err != nil {
		t.Fatal(err)
	}

	corrupt := map[string][]byte{
		"zero-length": {},
		"truncated":   valid[:len(valid)/2],
		"garbage":     []byte("not json at all"),
	}
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/2] ^= 0x40
	corrupt["bit-flip"] = flipped

	names := []string{"zero-length", "truncated", "garbage", "bit-flip"}
	for _, name := range names {
		if err := os.WriteFile(c.Path(key), corrupt[name], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, ok := c.Get(key); ok {
			t.Errorf("%s entry was trusted", name)
		}
	}

	// A byte-valid entry filed under a different key must also miss:
	// the envelope's key binds the content to its address.
	other := "f" + key[1:]
	if err := os.WriteFile(c.Path(other), valid, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get(other); ok {
		t.Error("entry misfiled under a different key was trusted")
	}
}

// TestClaimAdvisoryOnFaults: a sick filesystem must never block the
// computation — TryClaim degrades to "proceed unclaimed".
func TestClaimAdvisoryOnFaults(t *testing.T) {
	fault := cachefs.NewFault(cachefs.OS())
	c, err := OpenFS(t.TempDir(), fault)
	if err != nil {
		t.Fatal(err)
	}
	key := config.Test().Hash()
	fault.FailAt(cachefs.OpCreateExl, 1, syscall.EIO)
	release, ok := c.TryClaim(key)
	if !ok {
		t.Fatal("TryClaim blocked the caller on an EIO — claims are advisory")
	}
	release() // must be a safe no-op
	if c.ClaimHeld(key) {
		t.Fatal("a failed claim create left a claim behind")
	}
}

// TestHeartbeatKeepsLongClaimLive is the >staleness-window regression:
// a claim held across many staleness windows must stay live (mtime
// refreshed by the heartbeat), so a long-running owner is never raced
// by a claim breaker — the pre-heartbeat false-staleness bug.
func TestHeartbeatKeepsLongClaimLive(t *testing.T) {
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	c.Tune(Tuning{StaleAfter: 400 * time.Millisecond, Heartbeat: 40 * time.Millisecond})
	key := config.Test().Hash()
	release, ok := c.TryClaim(key)
	if !ok {
		t.Fatal("TryClaim lost on an empty cache")
	}
	// Simulate a run 3× longer than the staleness window.
	deadline := time.Now().Add(1200 * time.Millisecond)
	for time.Now().Before(deadline) {
		if !c.ClaimHeld(key) {
			t.Fatal("live claim went stale mid-run: heartbeat missing")
		}
		if _, ok := c.TryClaim(key); ok {
			t.Fatal("a second claimant broke a live, heartbeating claim")
		}
		time.Sleep(50 * time.Millisecond)
	}
	release()
	if c.ClaimHeld(key) {
		t.Fatal("claim survives release")
	}
}

// TestHeartbeatStopsWhenClaimRemoved: if the claim file disappears
// under the owner (broken externally, directory swept), the heartbeat
// must not resurrect it.
func TestHeartbeatStopsWhenClaimRemoved(t *testing.T) {
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	c.Tune(Tuning{StaleAfter: 100 * time.Millisecond, Heartbeat: 10 * time.Millisecond})
	key := config.Test().Hash()
	release, ok := c.TryClaim(key)
	if !ok {
		t.Fatal("TryClaim lost on an empty cache")
	}
	if err := os.Remove(c.claimPath(key)); err != nil {
		t.Fatal(err)
	}
	time.Sleep(60 * time.Millisecond) // several heartbeat ticks
	if _, err := os.Stat(c.claimPath(key)); !os.IsNotExist(err) {
		t.Fatal("heartbeat resurrected a removed claim file")
	}
	release() // removing an already-gone claim must be safe
}

// TestOrphanedClaimBrokenAfterOwnerDies: the owner's process "dies"
// (its filesystem crashes, killing the heartbeat), the claim's mtime
// freezes, and once it ages past the staleness window a survivor
// breaks it and claims the key. This is the unit-level version of the
// SIGKILL integration test.
func TestOrphanedClaimBrokenAfterOwnerDies(t *testing.T) {
	dir := t.TempDir()
	fault := cachefs.NewFault(cachefs.OS())
	owner, err := OpenFS(dir, fault)
	if err != nil {
		t.Fatal(err)
	}
	owner.Tune(Tuning{StaleAfter: 300 * time.Millisecond, Heartbeat: 50 * time.Millisecond})
	key := config.Test().Hash()
	release, ok := owner.TryClaim(key)
	if !ok {
		t.Fatal("owner failed to claim an empty cache")
	}
	defer release() // after the FS "dies" this is inert, but keeps the goroutine contract
	fault.CrashAt(cachefs.OpChtimes, 1)

	survivor, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	survivor.Tune(Tuning{StaleAfter: 300 * time.Millisecond})
	// While the claim is fresh the survivor must respect it.
	if _, ok := survivor.TryClaim(key); ok {
		t.Fatal("survivor broke a fresh orphan claim before the staleness window")
	}
	time.Sleep(700 * time.Millisecond) // heartbeat is dead; the claim ages out
	rel2, ok := survivor.TryClaim(key)
	if !ok {
		t.Fatal("survivor failed to break the orphaned claim after the staleness window")
	}
	rel2()
}

// TestConcurrentStaleBreakersOneWinner: many claimants race to break
// the same stale claim. The breaker lock must let exactly one of them
// win — the historical failure mode is two breakers interleaving
// remove/create so that one deletes the other's fresh claim and both
// believe they hold the key.
func TestConcurrentStaleBreakersOneWinner(t *testing.T) {
	for round := 0; round < 10; round++ {
		dir := t.TempDir()
		c, err := Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		key := config.Test().Hash()
		path := c.claimPath(key)
		if err := os.WriteFile(path, []byte("pid 999999\n"), 0o644); err != nil {
			t.Fatal(err)
		}
		old := time.Now().Add(-claimStale - time.Hour)
		if err := os.Chtimes(path, old, old); err != nil {
			t.Fatal(err)
		}

		const breakers = 16
		releases := make([]func(), breakers)
		wins := make([]bool, breakers)
		var wg sync.WaitGroup
		for i := 0; i < breakers; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				releases[i], wins[i] = c.TryClaim(key)
			}(i)
		}
		wg.Wait()
		won := 0
		for i := range wins {
			if wins[i] {
				won++
			}
		}
		if won != 1 {
			t.Fatalf("round %d: %d claimants won a single stale-claim break, want exactly 1", round, won)
		}
		for i := range wins {
			if wins[i] {
				releases[i]()
			}
		}
		if c.ClaimHeld(key) {
			t.Fatalf("round %d: claim still held after the winner released", round)
		}
	}
}

// TestReleaseAfterPutWakesWaitersToHits is the ordering regression for
// the claim protocol: because Runner.Run releases only after Put, a
// waiter woken by the release must observe the entry — never a miss
// that sends it off to re-simulate work that just finished.
func TestReleaseAfterPutWakesWaitersToHits(t *testing.T) {
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	c.Tune(Tuning{Poll: time.Millisecond})
	key := config.Test().Hash()
	want := sampleResult()
	release, ok := c.TryClaim(key)
	if !ok {
		t.Fatal("TryClaim lost on an empty cache")
	}

	const waiters = 8
	var wg sync.WaitGroup
	misses := make([]bool, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got, ok := c.WaitForClaim(key)
			if !ok {
				misses[i] = true
				return
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("waiter %d observed a wrong result", i)
			}
		}(i)
	}
	time.Sleep(20 * time.Millisecond) // let the waiters block on the claim
	if err := c.Put(key, want); err != nil {
		t.Fatal(err)
	}
	release()
	wg.Wait()
	for i, missed := range misses {
		if missed {
			t.Errorf("waiter %d woke to a miss although release followed Put", i)
		}
	}
}

// TestWaitForClaimBoundedDeadline: a live, heartbeating claim whose
// owner never finishes must not hang a waiter forever — WaitForClaim
// gives up after WaitMax and hands the computation back.
func TestWaitForClaimBoundedDeadline(t *testing.T) {
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	c.Tune(Tuning{StaleAfter: 10 * time.Second, Poll: 2 * time.Millisecond, WaitMax: 150 * time.Millisecond})
	key := config.Test().Hash()
	release, ok := c.TryClaim(key) // heartbeating owner that never Puts
	if !ok {
		t.Fatal("TryClaim lost on an empty cache")
	}
	defer release()
	start := time.Now()
	if _, ok := c.WaitForClaim(key); ok {
		t.Fatal("WaitForClaim reported a hit although no entry was ever written")
	}
	elapsed := time.Since(start)
	if elapsed < 150*time.Millisecond {
		t.Fatalf("WaitForClaim gave up after %v, before the %v deadline", elapsed, 150*time.Millisecond)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("WaitForClaim took %v to honour a %v deadline", elapsed, 150*time.Millisecond)
	}
}
