package rescache

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"os"
	"testing"

	"dcasim/internal/config"
)

// FuzzCacheGet feeds arbitrary bytes to the entry-envelope decode path.
// The cache shares its directory with other processes, so an entry file
// can hold anything — a torn write, bit rot, output of an older or
// newer version. The contract under fuzzing: Get never panics, and it
// reports a hit only for an envelope that independently passes every
// integrity check (schema, key binding, SHA-256 of the canonical
// payload bytes); everything else is a clean miss.
func FuzzCacheGet(f *testing.F) {
	key := config.Test().Hash()

	// A genuine entry as the structural seed.
	seedCache, err := Open(f.TempDir())
	if err != nil {
		f.Fatal(err)
	}
	if err := seedCache.Put(key, sampleResult()); err != nil {
		f.Fatal(err)
	}
	valid, err := os.ReadFile(seedCache.Path(key))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte{})
	f.Add([]byte("{}"))
	f.Add([]byte(`{"schema":1,"key":"` + key + `","sha256":"00","result":{}}`))
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/2] ^= 0x01
	f.Add(flipped)

	c, err := Open(f.TempDir())
	if err != nil {
		f.Fatal(err)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if err := os.WriteFile(c.Path(key), data, 0o644); err != nil {
			t.Fatal(err)
		}
		_, ok := c.Get(key)
		if !ok {
			return
		}
		// Get trusted the bytes: re-verify the envelope with an
		// independent oracle. Any divergence means the integrity checks
		// let a corrupt entry through.
		var e struct {
			Schema int             `json:"schema"`
			Key    string          `json:"key"`
			SHA256 string          `json:"sha256"`
			Result json.RawMessage `json:"result"`
		}
		if err := json.Unmarshal(data, &e); err != nil {
			t.Fatalf("Get trusted undecodable bytes: %v", err)
		}
		if e.Schema != config.SchemaVersion || e.Key != key {
			t.Fatalf("Get trusted a mismatched envelope: schema=%d key=%q", e.Schema, e.Key)
		}
		var compact bytes.Buffer
		if err := json.Compact(&compact, e.Result); err != nil {
			t.Fatalf("Get trusted a non-JSON payload: %v", err)
		}
		sum := sha256.Sum256(compact.Bytes())
		if hex.EncodeToString(sum[:]) != e.SHA256 {
			t.Fatal("Get trusted an entry whose payload checksum does not match")
		}
	})
}
