// Package rescache is the persistent, content-addressed result cache of
// the evaluation harness. A simulation run is a pure function of its
// config (PR 3's replay verification pins this down to the bit), so a
// result can be stored on disk keyed by config.Config.Hash() and reused
// by any later process — a warm cache makes a full evaluation pass cost
// approximately zero simulations.
//
// Layout: one JSON file per entry, <dir>/<key>.json, holding a small
// envelope {schema, key, sha256, result}. An entry is trusted only when
// the envelope decodes, the schema and key match, and the SHA-256 of the
// embedded result bytes matches — anything else (truncation, bit rot,
// a file from an older schema) reads as a miss and is recomputed and
// overwritten, never trusted. Writes go through a temp file and rename,
// so concurrent processes sharing a directory see whole entries or none.
package rescache

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"dcasim/internal/config"
	"dcasim/internal/sim"
)

// Cache is a directory of content-addressed simulation results.
type Cache struct {
	dir string
}

// entry is the on-disk envelope around one result.
type entry struct {
	Schema int             `json:"schema"`
	Key    string          `json:"key"`
	SHA256 string          `json:"sha256"`
	Result json.RawMessage `json:"result"`
}

// Open returns a cache rooted at dir, creating the directory if needed.
func Open(dir string) (*Cache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("rescache: %w", err)
	}
	return &Cache{dir: dir}, nil
}

// Dir returns the cache directory.
func (c *Cache) Dir() string { return c.dir }

// Path returns the file an entry for key lives at (whether or not it
// exists yet).
func (c *Cache) Path(key string) string {
	return filepath.Join(c.dir, key+".json")
}

// validKey reports whether key is a hex digest — the only file names the
// cache will touch, so a corrupted or hostile key cannot escape the
// cache directory.
func validKey(key string) bool {
	if len(key) == 0 {
		return false
	}
	for i := 0; i < len(key); i++ {
		b := key[i]
		if (b < '0' || b > '9') && (b < 'a' || b > 'f') {
			return false
		}
	}
	return true
}

// Get returns the cached result for key. ok is false on a miss or on any
// integrity failure; the caller recomputes either way.
func (c *Cache) Get(key string) (res sim.Result, ok bool) {
	if !validKey(key) {
		return sim.Result{}, false
	}
	data, err := os.ReadFile(c.Path(key))
	if err != nil {
		return sim.Result{}, false
	}
	var e entry
	if json.Unmarshal(data, &e) != nil {
		return sim.Result{}, false
	}
	if e.Schema != config.SchemaVersion || e.Key != key {
		return sim.Result{}, false
	}
	// The envelope is written indented, which re-indents the embedded
	// payload; the checksum is over the canonical compact bytes, so
	// compact before comparing.
	var compact bytes.Buffer
	if json.Compact(&compact, e.Result) != nil {
		return sim.Result{}, false
	}
	sum := sha256.Sum256(compact.Bytes())
	if hex.EncodeToString(sum[:]) != e.SHA256 {
		return sim.Result{}, false
	}
	if json.Unmarshal(e.Result, &res) != nil {
		return sim.Result{}, false
	}
	return res, true
}

// Put stores a result under key, atomically replacing any existing entry.
func (c *Cache) Put(key string, res sim.Result) error {
	if !validKey(key) {
		return fmt.Errorf("rescache: invalid key %q", key)
	}
	payload, err := json.Marshal(res)
	if err != nil {
		return fmt.Errorf("rescache: encode result: %w", err)
	}
	sum := sha256.Sum256(payload)
	data, err := json.MarshalIndent(entry{
		Schema: config.SchemaVersion,
		Key:    key,
		SHA256: hex.EncodeToString(sum[:]),
		Result: payload,
	}, "", " ")
	if err != nil {
		return fmt.Errorf("rescache: encode entry: %w", err)
	}
	tmp, err := os.CreateTemp(c.dir, key+".tmp*")
	if err != nil {
		return fmt.Errorf("rescache: %w", err)
	}
	_, werr := tmp.Write(append(data, '\n'))
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		if werr == nil {
			werr = cerr
		}
		return fmt.Errorf("rescache: write entry: %w", werr)
	}
	if err := os.Rename(tmp.Name(), c.Path(key)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("rescache: %w", err)
	}
	return nil
}
