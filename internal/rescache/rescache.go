// Package rescache is the persistent, content-addressed result cache of
// the evaluation harness. A simulation run is a pure function of its
// config (PR 3's replay verification pins this down to the bit), so a
// result can be stored on disk keyed by config.Config.Hash() and reused
// by any later process — a warm cache makes a full evaluation pass cost
// approximately zero simulations.
//
// Layout: one JSON file per entry, <dir>/<key>.json, holding a small
// envelope {schema, key, sha256, result}. An entry is trusted only when
// the envelope decodes, the schema and key match, and the SHA-256 of the
// embedded result bytes matches — anything else (truncation, bit rot,
// a file from an older schema) reads as a miss and is recomputed and
// overwritten, never trusted. Writes go through a temp file that is
// fsynced and then renamed, so concurrent processes sharing a directory
// see whole entries or none, and a machine crash shortly after the
// rename cannot surface a zero-length entry.
//
// Concurrency: within a process, writes to the same key serialize on a
// per-key lock. Across processes, <dir>/<key>.claim files coordinate who
// computes a missing entry: TryClaim takes the claim with an exclusive
// create and keeps it visibly alive with a heartbeat goroutine that
// refreshes the file's mtime, losers can WaitForClaim (bounded, with
// jittered exponential backoff) until the winner's entry lands or the
// claim goes stale because its owner died. Claims are purely advisory —
// duplicated computation is wasted work, never wrong results, because
// entry writes stay atomic either way. Open sweeps out temp and claim
// files abandoned by killed processes so they cannot pin a key forever.
//
// Every filesystem operation goes through the cachefs.FS seam, so the
// fault-injection suite can prove those invariants under EIO, ENOSPC,
// torn writes, and simulated crashes.
package rescache

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	iofs "io/fs"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"dcasim/internal/cachefs"
	"dcasim/internal/config"
	"dcasim/internal/sim"
)

// FS is the filesystem seam every cache operation goes through; the
// default is the real filesystem (cachefs.OS), and tests substitute
// cachefs.Fault to inject EIO/ENOSPC/torn-write/crash faults.
type FS = cachefs.FS

// claimStale is the default for Tuning.StaleAfter: how old a claim file
// may grow before any process may break it. A live claimant's heartbeat
// refreshes the file's mtime far more often than this, so only a dead
// owner's claim ever ages out — a run longer than the window no longer
// loses its claim.
const claimStale = 10 * time.Minute

// staleTempAge is how old an orphaned temp file must be before Open
// deletes it. Fresh temp files belong to live writers mid-Put and must
// survive; anything this old was abandoned by a killed process.
const staleTempAge = time.Hour

// Tuning groups the liveness timing knobs of the claim protocol. Zero
// fields keep their current values; tests (and the kill-recovery suite)
// shrink them to make staleness observable in milliseconds.
type Tuning struct {
	// StaleAfter is the claim staleness window: a claim whose mtime is
	// older than this belongs to a dead process and may be broken.
	// Default 10 minutes.
	StaleAfter time.Duration
	// Heartbeat is how often a claim owner refreshes its claim file's
	// mtime. Default StaleAfter/4.
	Heartbeat time.Duration
	// Poll is WaitForClaim's initial backoff between entry checks; the
	// backoff doubles (with jitter) up to 32×Poll. Default 50 ms.
	Poll time.Duration
	// WaitMax bounds how long WaitForClaim blocks on a live claim
	// before giving up and letting the caller recompute (claims are
	// advisory: a stuck-but-heartbeating owner must not stall a waiter
	// forever). Default 2×StaleAfter.
	WaitMax time.Duration
}

// Cache is a directory of content-addressed simulation results.
type Cache struct {
	dir string
	fs  cachefs.FS

	staleAfter time.Duration // claim staleness window
	hbEvery    time.Duration // claim heartbeat interval
	pollEvery  time.Duration // WaitForClaim initial backoff
	waitMax    time.Duration // WaitForClaim deadline

	mu       sync.Mutex
	keys     map[string]*sync.Mutex // per-key write locks
	rngState uint64                 // backoff jitter (xorshift, seeded per cache)
}

// entry is the on-disk envelope around one result.
type entry struct {
	Schema int             `json:"schema"`
	Key    string          `json:"key"`
	SHA256 string          `json:"sha256"`
	Result json.RawMessage `json:"result"`
}

// Open returns a cache rooted at dir, creating the directory if needed.
// It also removes temp, claim, and breaker-lock files left behind by
// killed processes: a partially-written <key>.tmp* never becomes
// visible (writes are rename-atomic) but used to sit in the directory
// forever, and a stale <key>.claim would make other processes wait out
// the staleness window for an owner that no longer exists.
func Open(dir string) (*Cache, error) { return OpenFS(dir, cachefs.OS()) }

// OpenFS is Open over an explicit filesystem implementation — the
// fault-injection seam. A nil fsys selects the real filesystem.
func OpenFS(dir string, fsys cachefs.FS) (*Cache, error) {
	if fsys == nil {
		fsys = cachefs.OS()
	}
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("rescache: %w", err)
	}
	c := &Cache{
		dir:        dir,
		fs:         fsys,
		staleAfter: claimStale,
		hbEvery:    claimStale / 4,
		pollEvery:  50 * time.Millisecond,
		waitMax:    2 * claimStale,
		keys:       make(map[string]*sync.Mutex),
		rngState:   uint64(os.Getpid())<<32 ^ uint64(time.Now().UnixNano()) | 1,
	}
	c.cleanStale()
	return c, nil
}

// Tune overrides the claim-liveness timing knobs; zero fields keep
// their current values. Call it before the cache is shared between
// goroutines (it does not lock).
func (c *Cache) Tune(t Tuning) {
	if t.StaleAfter > 0 {
		c.staleAfter = t.StaleAfter
		c.hbEvery = t.StaleAfter / 4
		c.waitMax = 2 * t.StaleAfter
	}
	if t.Heartbeat > 0 {
		c.hbEvery = t.Heartbeat
	}
	if t.Poll > 0 {
		c.pollEvery = t.Poll
	}
	if t.WaitMax > 0 {
		c.waitMax = t.WaitMax
	}
}

// cleanStale removes abandoned temp files and expired claim and breaker
// files. Best effort: a cleanup failure never fails Open — the worst
// case is the status quo ante (a little garbage in the directory).
func (c *Cache) cleanStale() {
	entries, err := c.fs.ReadDir(c.dir)
	if err != nil {
		return
	}
	now := time.Now()
	for _, e := range entries {
		name := e.Name()
		var maxAge time.Duration
		switch {
		case strings.Contains(name, ".tmp"):
			maxAge = staleTempAge
		case strings.HasSuffix(name, ".claim"), strings.HasSuffix(name, ".claim.break"):
			maxAge = claimStale
		default:
			continue // entry files and anything unrecognized are left alone
		}
		info, err := e.Info()
		if err != nil {
			continue
		}
		if now.Sub(info.ModTime()) > maxAge {
			c.removeQuiet(filepath.Join(c.dir, name))
		}
	}
}

// removeQuiet deletes path, tolerating failure by design: every caller
// is cleaning up a scratch, claim, or breaker file whose survival costs
// at most a later sweep or staleness break, never wrong results.
func (c *Cache) removeQuiet(path string) {
	err := c.fs.Remove(path)
	_ = err // best effort: a file that refuses to die goes stale and is swept later
}

// Dir returns the cache directory.
func (c *Cache) Dir() string { return c.dir }

// Path returns the file an entry for key lives at (whether or not it
// exists yet).
func (c *Cache) Path(key string) string {
	return filepath.Join(c.dir, key+".json")
}

// claimPath returns the claim file guarding key's computation.
func (c *Cache) claimPath(key string) string {
	return filepath.Join(c.dir, key+".claim")
}

// keyLock returns the per-key mutex, creating it on first use.
func (c *Cache) keyLock(key string) *sync.Mutex {
	c.mu.Lock()
	defer c.mu.Unlock()
	m := c.keys[key]
	if m == nil {
		m = &sync.Mutex{}
		c.keys[key] = m
	}
	return m
}

// jitter returns a pseudo-random duration in [0, d/2): claim waiters
// desynchronize their polls so a released claim is not hammered by
// every waiter in the same instant. The stream is a per-cache xorshift
// — deliberately not math/rand's process-global state, and irrelevant
// to result determinism (it only shifts when a waiter looks, never what
// it reads).
func (c *Cache) jitter(d time.Duration) time.Duration {
	if d <= 1 {
		return 0
	}
	c.mu.Lock()
	x := c.rngState
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	c.rngState = x
	c.mu.Unlock()
	return time.Duration(x % uint64(d/2))
}

// validKey reports whether key is a hex digest — the only file names the
// cache will touch, so a corrupted or hostile key cannot escape the
// cache directory.
func validKey(key string) bool {
	if len(key) == 0 {
		return false
	}
	for i := 0; i < len(key); i++ {
		b := key[i]
		if (b < '0' || b > '9') && (b < 'a' || b > 'f') {
			return false
		}
	}
	return true
}

// Get returns the cached result for key. ok is false on a miss or on any
// integrity failure; the caller recomputes either way.
func (c *Cache) Get(key string) (res sim.Result, ok bool) {
	if !validKey(key) {
		return sim.Result{}, false
	}
	data, err := c.fs.ReadFile(c.Path(key))
	if err != nil {
		return sim.Result{}, false
	}
	var e entry
	if json.Unmarshal(data, &e) != nil {
		return sim.Result{}, false
	}
	if e.Schema != config.SchemaVersion || e.Key != key {
		return sim.Result{}, false
	}
	// The envelope is written indented, which re-indents the embedded
	// payload; the checksum is over the canonical compact bytes, so
	// compact before comparing.
	var compact bytes.Buffer
	if json.Compact(&compact, e.Result) != nil {
		return sim.Result{}, false
	}
	sum := sha256.Sum256(compact.Bytes())
	if hex.EncodeToString(sum[:]) != e.SHA256 {
		return sim.Result{}, false
	}
	if json.Unmarshal(e.Result, &res) != nil {
		return sim.Result{}, false
	}
	return res, true
}

// Put stores a result under key, atomically replacing any existing
// entry. Concurrent in-process writers to the same key serialize;
// concurrent processes are already safe through the sync-temp-then-
// rename protocol. The temp file is fsynced before the rename — without
// that barrier a machine crash after the rename could leave a
// zero-length entry under the final name on journaled filesystems — and
// the directory is synced best-effort afterwards so the rename itself
// survives a crash (its loss costs one recompute, never a torn entry).
func (c *Cache) Put(key string, res sim.Result) error {
	if !validKey(key) {
		return fmt.Errorf("rescache: invalid key %q", key)
	}
	lock := c.keyLock(key)
	lock.Lock()
	defer lock.Unlock()
	payload, err := json.Marshal(res)
	if err != nil {
		return fmt.Errorf("rescache: encode result: %w", err)
	}
	sum := sha256.Sum256(payload)
	data, err := json.MarshalIndent(entry{
		Schema: config.SchemaVersion,
		Key:    key,
		SHA256: hex.EncodeToString(sum[:]),
		Result: payload,
	}, "", " ")
	if err != nil {
		return fmt.Errorf("rescache: encode entry: %w", err)
	}
	tmp, err := c.fs.CreateTemp(c.dir, key+".tmp*")
	if err != nil {
		return fmt.Errorf("rescache: %w", err)
	}
	_, werr := tmp.Write(append(data, '\n'))
	var serr error
	if werr == nil {
		serr = tmp.Sync()
	}
	cerr := tmp.Close()
	if err := firstErr(werr, serr, cerr); err != nil {
		c.removeQuiet(tmp.Name())
		return fmt.Errorf("rescache: write entry: %w", err)
	}
	if err := c.fs.Rename(tmp.Name(), c.Path(key)); err != nil {
		c.removeQuiet(tmp.Name())
		return fmt.Errorf("rescache: %w", err)
	}
	derr := c.fs.SyncDir(c.dir)
	_ = derr // best effort: an unsynced rename costs at most a recompute after a machine crash
	return nil
}

// firstErr returns the first non-nil error.
func firstErr(errs ...error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// TryClaim attempts to mark key as "being computed by this process" so
// sibling processes sharing the directory can wait instead of
// duplicating the run. ok reports whether the claim was taken; release
// must be called exactly once (after the entry is Put, so waiters wake
// to a hit) and is never nil. While the claim is held, a heartbeat
// goroutine refreshes the claim file's mtime every Tuning.Heartbeat, so
// a run longer than the staleness window keeps its claim; release stops
// the heartbeat and removes the file. A claim whose mtime has outlived
// Tuning.StaleAfter is presumed orphaned and broken (under a per-key
// breaker lock, so racing breakers cannot delete each other's fresh
// replacement claims — at most one claimant wins a breaking episode).
//
// Claims are advisory: on any unexpected filesystem error the caller is
// told to proceed (ok=true with a no-op release) — duplicate computation
// is wasted work, not a correctness hazard.
func (c *Cache) TryClaim(key string) (release func(), ok bool) {
	noop := func() {}
	if !validKey(key) {
		return noop, true
	}
	path := c.claimPath(key)
	for attempt := 0; attempt < 3; attempt++ {
		f, err := c.fs.CreateExclusive(path)
		if err == nil {
			_, werr := fmt.Fprintf(f, "pid %d\n", os.Getpid())
			cerr := f.Close()
			if ferr := firstErr(werr, cerr); ferr != nil {
				// The claim exists but could not be written out; keep it
				// (its existence is the lock) and carry on.
				_ = ferr // the file's contents are diagnostic only
			}
			stop := make(chan struct{})
			done := make(chan struct{})
			go c.heartbeat(path, stop, done)
			return func() {
				close(stop)
				<-done
				c.removeQuiet(path)
			}, true
		}
		if !errors.Is(err, iofs.ErrExist) {
			return noop, true // advisory: proceed without a claim
		}
		info, serr := c.fs.Stat(path)
		if serr != nil {
			continue // claim vanished between create and stat: retry
		}
		if time.Since(info.ModTime()) <= c.staleAfter {
			return noop, false // live claimant
		}
		// Stale claim from a dead process: break it under the breaker
		// lock and retry the exclusive create. A racing claimant may
		// win that create; we then observe a fresh claim on the next
		// attempt and report the key as held.
		if !c.breakStale(path) {
			return noop, false
		}
	}
	return noop, false
}

// heartbeat refreshes path's mtime every hbEvery until stop closes, so
// a live claim never looks stale no matter how long its run computes.
// Any refresh failure ends the heartbeat: either the claim file is gone
// (released, broken, or swept — beating would resurrect a file another
// process now owns) or the filesystem is sick, and in both cases the
// safe behaviour is to let the claim age out.
func (c *Cache) heartbeat(path string, stop <-chan struct{}, done chan<- struct{}) {
	defer close(done)
	for {
		select {
		case <-stop:
			return
		case <-time.After(c.hbEvery):
			now := time.Now()
			if err := c.fs.Chtimes(path, now, now); err != nil {
				return
			}
		}
	}
}

// breakStale removes a stale claim under an exclusive per-key breaker
// lock (<claim>.break). Without the lock, two breakers can interleave
// remove/create such that one deletes the other's *fresh* replacement
// claim and both believe they won; with it, the claim file is only ever
// removed by the lock holder after re-checking staleness, so exactly
// one claimant can win the subsequent exclusive create. Reports whether
// the caller should retry that create; false means another process owns
// the break (or the claim turned out to be live after all).
func (c *Cache) breakStale(path string) bool {
	lock := path + ".break"
	bf, err := c.fs.CreateExclusive(lock)
	if err != nil {
		if !errors.Is(err, iofs.ErrExist) {
			return false // advisory protocol on a sick FS: treat as held
		}
		// Another process is mid-break. If its lock is itself stale
		// (breaker killed between create and remove), sweep it so the
		// key cannot wedge; the next attempt re-races the break.
		if info, serr := c.fs.Stat(lock); serr == nil && time.Since(info.ModTime()) > c.staleAfter {
			c.removeQuiet(lock)
			return true
		}
		return false
	}
	cerr := bf.Close()
	_ = cerr // the lock is the file's existence, not its contents
	defer c.removeQuiet(lock)
	// Re-check under the lock: the claim may have been broken and
	// re-taken (now fresh) while we raced for the lock.
	info, serr := c.fs.Stat(path)
	if serr != nil {
		return true // claim gone already
	}
	if time.Since(info.ModTime()) <= c.staleAfter {
		return false
	}
	c.removeQuiet(path)
	return true
}

// ClaimHeld reports whether a live (non-stale) claim for key exists.
func (c *Cache) ClaimHeld(key string) bool {
	info, err := c.fs.Stat(c.claimPath(key))
	return err == nil && time.Since(info.ModTime()) <= c.staleAfter
}

// WaitForClaim blocks while another process holds a live claim on key,
// waiting for its entry to land with jittered exponential backoff
// (starting at Tuning.Poll, capped at 32×Poll) instead of a fixed-rate
// poll. It returns the result as soon as one is readable; ok is false
// once the claim is gone (released or stale) without an entry
// appearing, or once Tuning.WaitMax elapses — the caller should then
// compute the run itself (claims are advisory, so an owner that
// heartbeats but never finishes costs a duplicated run, never a hang).
// A caller that never claimed and never saw a claim gets an immediate
// miss.
func (c *Cache) WaitForClaim(key string) (sim.Result, bool) {
	deadline := time.Now().Add(c.waitMax)
	backoff := c.pollEvery
	for {
		if res, ok := c.Get(key); ok {
			return res, true
		}
		if !c.ClaimHeld(key) {
			// The claimant may have Put and released between our miss
			// and this check; one last look stops the caller from
			// re-simulating an entry that just landed.
			return c.Get(key)
		}
		if time.Now().After(deadline) {
			// Bounded wait: stop trusting the claimant's progress and
			// recompute. Same final look as above.
			return c.Get(key)
		}
		time.Sleep(backoff + c.jitter(backoff))
		if backoff < 32*c.pollEvery {
			backoff *= 2
		}
	}
}
