// Package rescache is the persistent, content-addressed result cache of
// the evaluation harness. A simulation run is a pure function of its
// config (PR 3's replay verification pins this down to the bit), so a
// result can be stored on disk keyed by config.Config.Hash() and reused
// by any later process — a warm cache makes a full evaluation pass cost
// approximately zero simulations.
//
// Layout: one JSON file per entry, <dir>/<key>.json, holding a small
// envelope {schema, key, sha256, result}. An entry is trusted only when
// the envelope decodes, the schema and key match, and the SHA-256 of the
// embedded result bytes matches — anything else (truncation, bit rot,
// a file from an older schema) reads as a miss and is recomputed and
// overwritten, never trusted. Writes go through a temp file and rename,
// so concurrent processes sharing a directory see whole entries or none.
//
// Concurrency: within a process, writes to the same key serialize on a
// per-key lock. Across processes, <dir>/<key>.claim files coordinate who
// computes a missing entry: TryClaim takes the claim with an exclusive
// create, losers can WaitForClaim until the winner's entry lands (or the
// claim goes stale because its owner died). Claims are purely advisory —
// duplicated computation is wasted work, never wrong results, because
// entry writes stay atomic either way. Open sweeps out temp and claim
// files abandoned by killed processes so they cannot pin a key forever.
package rescache

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"dcasim/internal/config"
	"dcasim/internal/sim"
)

// claimStale is how old a claim file may grow before any process may
// break it: a claimant that has not produced its entry within this
// window is presumed dead. Generous compared to a single run (seconds
// to minutes) so a live claimant is never raced.
const claimStale = 10 * time.Minute

// staleTempAge is how old an orphaned temp file must be before Open
// deletes it. Fresh temp files belong to live writers mid-Put and must
// survive; anything this old was abandoned by a killed process.
const staleTempAge = time.Hour

// Cache is a directory of content-addressed simulation results.
type Cache struct {
	dir       string
	pollEvery time.Duration // WaitForClaim poll interval (tests shrink it)

	mu   sync.Mutex
	keys map[string]*sync.Mutex // per-key write locks
}

// entry is the on-disk envelope around one result.
type entry struct {
	Schema int             `json:"schema"`
	Key    string          `json:"key"`
	SHA256 string          `json:"sha256"`
	Result json.RawMessage `json:"result"`
}

// Open returns a cache rooted at dir, creating the directory if needed.
// It also removes temp and claim files left behind by killed processes:
// a partially-written <key>.tmp* never becomes visible (writes are
// rename-atomic) but used to sit in the directory forever, and a stale
// <key>.claim would make other processes wait out the staleness window
// for an owner that no longer exists.
func Open(dir string) (*Cache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("rescache: %w", err)
	}
	c := &Cache{dir: dir, pollEvery: 50 * time.Millisecond, keys: make(map[string]*sync.Mutex)}
	c.cleanStale()
	return c, nil
}

// cleanStale removes abandoned temp files and expired claim files. Best
// effort: a cleanup failure never fails Open — the worst case is the
// status quo ante (a little garbage in the directory).
func (c *Cache) cleanStale() {
	entries, err := os.ReadDir(c.dir)
	if err != nil {
		return
	}
	now := time.Now()
	for _, e := range entries {
		name := e.Name()
		var maxAge time.Duration
		switch {
		case strings.Contains(name, ".tmp"):
			maxAge = staleTempAge
		case strings.HasSuffix(name, ".claim"):
			maxAge = claimStale
		default:
			continue // entry files and anything unrecognized are left alone
		}
		info, err := e.Info()
		if err != nil {
			continue
		}
		if now.Sub(info.ModTime()) > maxAge {
			os.Remove(filepath.Join(c.dir, name))
		}
	}
}

// Dir returns the cache directory.
func (c *Cache) Dir() string { return c.dir }

// Path returns the file an entry for key lives at (whether or not it
// exists yet).
func (c *Cache) Path(key string) string {
	return filepath.Join(c.dir, key+".json")
}

// claimPath returns the claim file guarding key's computation.
func (c *Cache) claimPath(key string) string {
	return filepath.Join(c.dir, key+".claim")
}

// keyLock returns the per-key mutex, creating it on first use.
func (c *Cache) keyLock(key string) *sync.Mutex {
	c.mu.Lock()
	defer c.mu.Unlock()
	m := c.keys[key]
	if m == nil {
		m = &sync.Mutex{}
		c.keys[key] = m
	}
	return m
}

// validKey reports whether key is a hex digest — the only file names the
// cache will touch, so a corrupted or hostile key cannot escape the
// cache directory.
func validKey(key string) bool {
	if len(key) == 0 {
		return false
	}
	for i := 0; i < len(key); i++ {
		b := key[i]
		if (b < '0' || b > '9') && (b < 'a' || b > 'f') {
			return false
		}
	}
	return true
}

// Get returns the cached result for key. ok is false on a miss or on any
// integrity failure; the caller recomputes either way.
func (c *Cache) Get(key string) (res sim.Result, ok bool) {
	if !validKey(key) {
		return sim.Result{}, false
	}
	data, err := os.ReadFile(c.Path(key))
	if err != nil {
		return sim.Result{}, false
	}
	var e entry
	if json.Unmarshal(data, &e) != nil {
		return sim.Result{}, false
	}
	if e.Schema != config.SchemaVersion || e.Key != key {
		return sim.Result{}, false
	}
	// The envelope is written indented, which re-indents the embedded
	// payload; the checksum is over the canonical compact bytes, so
	// compact before comparing.
	var compact bytes.Buffer
	if json.Compact(&compact, e.Result) != nil {
		return sim.Result{}, false
	}
	sum := sha256.Sum256(compact.Bytes())
	if hex.EncodeToString(sum[:]) != e.SHA256 {
		return sim.Result{}, false
	}
	if json.Unmarshal(e.Result, &res) != nil {
		return sim.Result{}, false
	}
	return res, true
}

// Put stores a result under key, atomically replacing any existing entry.
// Concurrent in-process writers to the same key serialize; concurrent
// processes are already safe through the temp-file-and-rename protocol.
func (c *Cache) Put(key string, res sim.Result) error {
	if !validKey(key) {
		return fmt.Errorf("rescache: invalid key %q", key)
	}
	lock := c.keyLock(key)
	lock.Lock()
	defer lock.Unlock()
	payload, err := json.Marshal(res)
	if err != nil {
		return fmt.Errorf("rescache: encode result: %w", err)
	}
	sum := sha256.Sum256(payload)
	data, err := json.MarshalIndent(entry{
		Schema: config.SchemaVersion,
		Key:    key,
		SHA256: hex.EncodeToString(sum[:]),
		Result: payload,
	}, "", " ")
	if err != nil {
		return fmt.Errorf("rescache: encode entry: %w", err)
	}
	tmp, err := os.CreateTemp(c.dir, key+".tmp*")
	if err != nil {
		return fmt.Errorf("rescache: %w", err)
	}
	_, werr := tmp.Write(append(data, '\n'))
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		if werr == nil {
			werr = cerr
		}
		return fmt.Errorf("rescache: write entry: %w", werr)
	}
	if err := os.Rename(tmp.Name(), c.Path(key)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("rescache: %w", err)
	}
	return nil
}

// TryClaim attempts to mark key as "being computed by this process" so
// sibling processes sharing the directory can wait instead of
// duplicating the run. ok reports whether the claim was taken; release
// must be called exactly once (after the entry is Put, so waiters wake
// to a hit) and is never nil. A claim whose file has outlived
// claimStale is presumed orphaned and broken.
//
// Claims are advisory: on any unexpected filesystem error the caller is
// told to proceed (ok=true with a no-op release) — duplicate computation
// is wasted work, not a correctness hazard.
func (c *Cache) TryClaim(key string) (release func(), ok bool) {
	noop := func() {}
	if !validKey(key) {
		return noop, true
	}
	path := c.claimPath(key)
	for attempt := 0; attempt < 2; attempt++ {
		f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
		if err == nil {
			fmt.Fprintf(f, "pid %d\n", os.Getpid())
			f.Close()
			return func() { os.Remove(path) }, true
		}
		if !os.IsExist(err) {
			return noop, true // advisory: proceed without a claim
		}
		info, serr := os.Stat(path)
		if serr != nil {
			continue // claim vanished between create and stat: retry
		}
		if time.Since(info.ModTime()) <= claimStale {
			return noop, false // live claimant
		}
		// Stale claim from a dead process: break it and retry the
		// exclusive create (a racing breaker may win; we then observe a
		// fresh claim on the next attempt and report it as held).
		os.Remove(path)
	}
	return noop, false
}

// ClaimHeld reports whether a live (non-stale) claim for key exists.
func (c *Cache) ClaimHeld(key string) bool {
	info, err := os.Stat(c.claimPath(key))
	return err == nil && time.Since(info.ModTime()) <= claimStale
}

// WaitForClaim blocks while another process holds a live claim on key,
// polling for its entry to land. It returns the result as soon as one is
// readable; ok is false once the claim is gone (released or stale)
// without an entry appearing — the caller should then compute the run
// itself. A caller that never claimed and never saw a claim gets an
// immediate miss.
func (c *Cache) WaitForClaim(key string) (sim.Result, bool) {
	for {
		if res, ok := c.Get(key); ok {
			return res, true
		}
		if !c.ClaimHeld(key) {
			// The claimant may have Put and released between our miss
			// and this check; one last look stops the caller from
			// re-simulating an entry that just landed.
			return c.Get(key)
		}
		time.Sleep(c.pollEvery)
	}
}
