package rescache

import (
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"dcasim/internal/config"
)

// TestClaimExclusive: only one claimant wins; release frees the key.
func TestClaimExclusive(t *testing.T) {
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := config.Test().Hash()
	release, ok := c.TryClaim(key)
	if !ok {
		t.Fatal("first TryClaim lost on an empty cache")
	}
	if _, ok := c.TryClaim(key); ok {
		t.Fatal("second TryClaim won while the first claim was held")
	}
	if !c.ClaimHeld(key) {
		t.Fatal("ClaimHeld false while claimed")
	}
	release()
	if c.ClaimHeld(key) {
		t.Fatal("ClaimHeld true after release")
	}
	if _, ok := c.TryClaim(key); !ok {
		t.Fatal("TryClaim lost after the previous claim was released")
	}
}

// TestStaleClaimBroken: a claim file older than the staleness window
// belongs to a dead process and must not block a new claimant.
func TestStaleClaimBroken(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := config.Test().Hash()
	path := c.claimPath(key)
	if err := os.WriteFile(path, []byte("pid 999999\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	old := time.Now().Add(-claimStale - time.Hour)
	if err := os.Chtimes(path, old, old); err != nil {
		t.Fatal(err)
	}
	if c.ClaimHeld(key) {
		t.Fatal("stale claim reported as held")
	}
	release, ok := c.TryClaim(key)
	if !ok {
		t.Fatal("TryClaim failed to break a stale claim")
	}
	release()
}

// TestWaitForClaim: a loser blocked on the winner's claim observes the
// entry as soon as the winner Puts and releases.
func TestWaitForClaim(t *testing.T) {
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	c.pollEvery = time.Millisecond
	key := config.Test().Hash()
	want := sampleResult()

	release, ok := c.TryClaim(key)
	if !ok {
		t.Fatal("TryClaim lost on an empty cache")
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		time.Sleep(10 * time.Millisecond)
		if err := c.Put(key, want); err != nil {
			t.Error(err)
		}
		release()
	}()
	got, ok := c.WaitForClaim(key)
	wg.Wait()
	if !ok {
		t.Fatal("WaitForClaim returned a miss although the claimant published an entry")
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("WaitForClaim returned %+v, want %+v", got, want)
	}
}

// TestWaitForClaimReleasedWithoutEntry: the claimant failing (release
// without Put) must hand the computation to the waiter, not hang it.
func TestWaitForClaimReleasedWithoutEntry(t *testing.T) {
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	c.pollEvery = time.Millisecond
	key := config.Test().Hash()
	release, ok := c.TryClaim(key)
	if !ok {
		t.Fatal("TryClaim lost on an empty cache")
	}
	go func() {
		time.Sleep(10 * time.Millisecond)
		release()
	}()
	if _, ok := c.WaitForClaim(key); ok {
		t.Fatal("WaitForClaim reported a hit although no entry was ever written")
	}
}

// TestOpenCleansStaleTempAndClaims: a temp file or claim left by a
// killed process must be swept on open — not accumulate forever — while
// fresh files (a live writer or claimant) and real entries survive.
func TestOpenCleansStaleTempAndClaims(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := config.Test().Hash()
	if err := c.Put(key, sampleResult()); err != nil {
		t.Fatal(err)
	}

	old := time.Now().Add(-2 * time.Hour)
	mk := func(name string, stale bool) string {
		t.Helper()
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte("partial"), 0o644); err != nil {
			t.Fatal(err)
		}
		if stale {
			if err := os.Chtimes(p, old, old); err != nil {
				t.Fatal(err)
			}
		}
		return p
	}
	staleTmp := mk(key+".tmp123456", true)
	freshTmp := mk(key+".tmp654321", false)
	staleClaim := mk(key+".claim", true)
	unrelated := mk("README.txt", true) // unrecognized names are never touched

	if _, err := Open(dir); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{staleTmp, staleClaim} {
		if _, err := os.Stat(p); !os.IsNotExist(err) {
			t.Errorf("%s survived Open, want it swept", filepath.Base(p))
		}
	}
	for _, p := range []string{freshTmp, unrelated, c.Path(key)} {
		if _, err := os.Stat(p); err != nil {
			t.Errorf("%s was swept by Open, want it kept: %v", filepath.Base(p), err)
		}
	}
	if _, ok := c.Get(key); !ok {
		t.Fatal("entry unreadable after cleanup")
	}
}

// TestConcurrentPutsSameKey: hammering one key from many goroutines must
// leave a readable, checksum-valid entry (per-key locking plus atomic
// rename).
func TestConcurrentPutsSameKey(t *testing.T) {
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := config.Test().Hash()
	want := sampleResult()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 10; j++ {
				if err := c.Put(key, want); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	got, ok := c.Get(key)
	if !ok {
		t.Fatal("entry unreadable after concurrent Puts")
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("concurrent Puts corrupted the entry: got %+v", got)
	}
}
