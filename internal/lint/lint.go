// Package lint is dcalint's analysis framework: a deliberately small,
// standard-library-only equivalent of golang.org/x/tools/go/analysis.
//
// The repo's headline guarantees — bit-identical replay, byte-identical
// parallel output, the zero-allocation event kernel — are invariants
// that one stray time.Now, map iteration, or closure capture silently
// breaks. dcalint machine-checks them on every build, the way go vet
// checks printf verbs. The framework mirrors go/analysis closely
// (Analyzer, Pass, Diagnostic) so the suite could be ported onto the
// real multichecker the day x/tools becomes an acceptable dependency;
// until then the vendored surface is ~200 lines and owes nothing to
// the network.
//
// Suppression: a finding may be silenced with
//
//	//nolint:dcalint/<name> -- <justification>
//
// on the offending line or the line directly above it. The
// justification after " -- " is mandatory: a bare nolint is itself
// reported, so every suppression in the tree documents why the
// invariant does not apply.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// An Analyzer describes one invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and nolint
	// directives ("nodeterminism", "noalloc", ...).
	Name string
	// Doc is the one-paragraph description `dcalint -list` prints.
	Doc string
	// Run executes the analyzer over one package.
	Run func(*Pass) error
}

// A Pass provides one analyzer with one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags *[]Diagnostic
}

// A Diagnostic is one reported finding.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s (dcalint/%s)", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Run applies every analyzer to every package and returns the surviving
// diagnostics sorted by position. nolint-suppressed findings are
// dropped; malformed nolint directives (no justification) are reported
// as findings in their own right.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		sup := collectNolint(pkg.Fset, pkg.Files, &diags)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				diags:     &diags,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("dcalint: %s on %s: %w", a.Name, pkg.PkgPath, err)
			}
		}
		diags = sup.filter(diags)
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}

// nolintRe matches "//nolint:dcalint/<name>" or "//nolint:dcalint",
// optionally followed by " -- justification". Deliberately not
// end-anchored so a malformed directive with trailing chatter is still
// recognized (and diagnosed) rather than silently ignored.
var nolintRe = regexp.MustCompile(`^//\s*nolint:dcalint(?:/([a-z]+))?(?:\s+--\s*(\S.*))?`)

// suppression records which analyzers are silenced on which lines of
// which files.
type suppressions struct {
	// byLine maps filename -> line -> analyzer names ("" = all).
	byLine map[string]map[int]map[string]bool
}

// collectNolint scans directive comments. A directive suppresses
// findings on its own line and on the line directly below it (so it
// can sit above a long statement). Directives without a justification
// are themselves diagnosed and suppress nothing.
func collectNolint(fset *token.FileSet, files []*ast.File, diags *[]Diagnostic) *suppressions {
	s := &suppressions{byLine: make(map[string]map[int]map[string]bool)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := nolintRe.FindStringSubmatch(strings.TrimSpace(c.Text))
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				if strings.TrimSpace(m[2]) == "" {
					*diags = append(*diags, Diagnostic{
						Analyzer: "nolint",
						Pos:      pos,
						Message:  `nolint directive needs a justification: "//nolint:dcalint/<name> -- why the invariant does not apply here"`,
					})
					continue
				}
				lines := s.byLine[pos.Filename]
				if lines == nil {
					lines = make(map[int]map[string]bool)
					s.byLine[pos.Filename] = lines
				}
				for _, ln := range []int{pos.Line, pos.Line + 1} {
					if lines[ln] == nil {
						lines[ln] = make(map[string]bool)
					}
					lines[ln][m[1]] = true // m[1] == "" means all analyzers
				}
			}
		}
	}
	return s
}

func (s *suppressions) filter(diags []Diagnostic) []Diagnostic {
	kept := diags[:0]
	for _, d := range diags {
		if d.Analyzer != "nolint" {
			if names := s.byLine[d.Pos.Filename][d.Pos.Line]; names[""] || names[d.Analyzer] {
				continue
			}
		}
		kept = append(kept, d)
	}
	return kept
}

// hasDirective reports whether the doc comment of decl carries the
// given //dcalint: directive (e.g. "noalloc").
func hasDirective(doc *ast.CommentGroup, directive string) bool {
	if doc == nil {
		return false
	}
	want := "//dcalint:" + directive
	for _, c := range doc.List {
		if strings.TrimSpace(c.Text) == want {
			return true
		}
	}
	return false
}

// pkgPathMatches reports whether path is, or ends with, one of the
// given module-relative suffixes. Fixture packages under testdata load
// with synthetic import paths, so suffix matching lets the same
// analyzer configuration govern both the real tree and its fixtures.
func pkgPathMatches(path string, suffixes []string) bool {
	for _, s := range suffixes {
		if path == s || strings.HasSuffix(path, "/"+s) || path == "dcasim/"+s {
			return true
		}
	}
	return false
}
