package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// claimErrPkgs are the packages whose errors must never be discarded:
// the persistent result cache (rescache — a dropped error there means a
// claim file leaks or a result silently fails to persist, wedging or
// corrupting every later run that trusts the cache) and trace I/O (a
// dropped error means a truncated .dct recording that replays wrong).
var claimErrPkgs = []string{
	"internal/rescache",
	"internal/trace",
}

// ClaimErr forbids discarding errors returned by rescache and trace
// operations, whether by assigning to the blank identifier, by calling
// in expression position, or inside a defer.
var ClaimErr = &Analyzer{
	Name: "claimerr",
	Doc: `forbid discarded errors from rescache and trace I/O

Result-cache operations (claims, puts, sweeps) and trace stream I/O
(writes, flushes, closes) return errors whose loss corrupts persistent
state: a leaked .claim file wedges later runs until the staleness
break, an unflushed trace replays differently than it recorded. Every
such error must be assigned to a non-blank variable (or returned).
errcheck catches the garden-variety cases; this analyzer additionally
rejects the explicit "_ =" escape hatch for these two packages.`,
	Run: runClaimErr,
}

func runClaimErr(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok {
					checkDiscardedCall(pass, call, "return value ignored")
				}
			case *ast.DeferStmt:
				checkDiscardedCall(pass, n.Call, "deferred with its error ignored")
			case *ast.GoStmt:
				checkDiscardedCall(pass, n.Call, "spawned with its error ignored")
			case *ast.AssignStmt:
				checkBlankAssign(pass, n)
			}
			return true
		})
	}
	return nil
}

// checkDiscardedCall reports call if it returns an error from a
// guarded package and that error is dropped on the floor.
func checkDiscardedCall(pass *Pass, call *ast.CallExpr, how string) {
	fn := calleeFunc(pass, call)
	if fn == nil || !guardedPkg(fn) || !returnsError(fn) {
		return
	}
	pass.Reportf(call.Pos(), "%s.%s %s: rescache/trace errors corrupt persistent state when dropped — handle or return it", fn.Pkg().Name(), fn.Name(), how)
}

// checkBlankAssign reports error results from guarded packages
// assigned to the blank identifier.
func checkBlankAssign(pass *Pass, asg *ast.AssignStmt) {
	// Single call with multiple results: v, _ := f().
	if len(asg.Rhs) == 1 && len(asg.Lhs) > 1 {
		call, ok := asg.Rhs[0].(*ast.CallExpr)
		if !ok {
			return
		}
		fn := calleeFunc(pass, call)
		if fn == nil || !guardedPkg(fn) {
			return
		}
		res := fn.Type().(*types.Signature).Results()
		for i, lhs := range asg.Lhs {
			if isBlank(lhs) && i < res.Len() && isErrorType(res.At(i).Type()) {
				pass.Reportf(lhs.Pos(), "%s.%s error discarded into _ : handle or return it", fn.Pkg().Name(), fn.Name())
			}
		}
		return
	}
	// Parallel assignment: _ = f().
	for i, lhs := range asg.Lhs {
		if !isBlank(lhs) || i >= len(asg.Rhs) {
			continue
		}
		call, ok := asg.Rhs[i].(*ast.CallExpr)
		if !ok {
			continue
		}
		fn := calleeFunc(pass, call)
		if fn == nil || !guardedPkg(fn) || !returnsError(fn) {
			continue
		}
		pass.Reportf(lhs.Pos(), "%s.%s error discarded into _ : handle or return it", fn.Pkg().Name(), fn.Name())
	}
}

// calleeFunc resolves the called function or method, or nil.
func calleeFunc(pass *Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	fun := call.Fun
	for {
		p, ok := fun.(*ast.ParenExpr)
		if !ok {
			break
		}
		fun = p.X
	}
	switch fun := fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := pass.TypesInfo.Uses[id].(*types.Func)
	return fn
}

func guardedPkg(fn *types.Func) bool {
	if fn.Pkg() == nil {
		return false
	}
	path := fn.Pkg().Path()
	for _, s := range claimErrPkgs {
		if path == s || strings.HasSuffix(path, "/"+s) || path == "dcasim/"+s {
			return true
		}
	}
	return false
}

func returnsError(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	for i := 0; i < sig.Results().Len(); i++ {
		if isErrorType(sig.Results().At(i).Type()) {
			return true
		}
	}
	return false
}

func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}
