package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Exhaustive requires switches over the repo's closed enums (dcache.Org,
// dram.Kind, core.RequestType, ...) to either cover every declared
// constant or carry a default clause that surfaces the unknown value
// (panic or an error mentioning it). Registry-backed enums — types like
// core.Design and core.Algorithm whose defining package exports a
// Register*/MustRegister* function minting new values — are open sets:
// there, covering today's constants proves nothing, and every switch
// must carry a loud default. This is the safety net the plugin-policy
// architecture leans on: registering a fourth design must fail loudly at
// every switch that silently assumed three.
var Exhaustive = &Analyzer{
	Name: "exhaustive",
	Doc: `require enum switches to cover every constant or fail loudly

A closed enum is a defined integer type with at least two package-level
constants of that exact type. A switch whose tag has such a type must
list every constant across its cases, or have a default clause whose
body panics or constructs an error (fmt.Errorf / errors.New) — a
default that silently picks one behaviour converts "new enum value
added" into a wrong simulation result instead of a crash or error.

An open registry enum is a defined integer or string type whose
defining package exports a Register*/MustRegister* function returning
it: the value set grows at link time (core.RegisterDesign,
core.RegisterPolicy), so case coverage can never be exhaustive and
every switch over such a type must carry a panic/error default.`,
	Run: runExhaustive,
}

func runExhaustive(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok || sw.Tag == nil {
				return true
			}
			checkEnumSwitch(pass, sw)
			return true
		})
	}
	return nil
}

func checkEnumSwitch(pass *Pass, sw *ast.SwitchStmt) {
	tagType := pass.TypesInfo.TypeOf(sw.Tag)
	named, ok := tagType.(*types.Named)
	if !ok {
		return
	}
	regFn := registryFunc(named)
	enums := enumConstants(named)
	if regFn == "" && len(enums) < 2 {
		return
	}

	covered := make(map[constant.Value]bool) // keyed by exact constant value
	var defaultClause *ast.CaseClause
	for _, stmt := range sw.Body.List {
		cc := stmt.(*ast.CaseClause)
		if cc.List == nil {
			defaultClause = cc
			continue
		}
		for _, e := range cc.List {
			if tv, ok := pass.TypesInfo.Types[e]; ok && tv.Value != nil {
				covered[tv.Value] = true
			}
		}
	}

	if regFn != "" {
		// Open registry enum: constant coverage proves nothing, a loud
		// default is mandatory.
		if defaultClause != nil && defaultSurfacesUnknown(pass, defaultClause) {
			return
		}
		if defaultClause != nil {
			pass.Reportf(sw.Pos(), "switch over %s, an open registry enum (%s mints new values), silently picks a behaviour in its default; make the default panic / return an error", named.Obj().Name(), regFn)
			return
		}
		pass.Reportf(sw.Pos(), "switch over %s, an open registry enum (%s mints new values), has no default: covering today's constants is not exhaustive — add a default that panics / returns an error", named.Obj().Name(), regFn)
		return
	}

	var missing []string
	for _, c := range enums {
		if !valueCovered(covered, c.Val()) {
			missing = append(missing, c.Name())
		}
	}
	if len(missing) == 0 {
		return
	}
	if defaultClause != nil && defaultSurfacesUnknown(pass, defaultClause) {
		return
	}
	if defaultClause != nil {
		pass.Reportf(sw.Pos(), "switch over %s misses %s and its default silently picks a behaviour; cover the constants or make the default panic / return an error", named.Obj().Name(), strings.Join(missing, ", "))
		return
	}
	pass.Reportf(sw.Pos(), "non-exhaustive switch over %s: missing %s (add the cases or a default that panics / returns an error)", named.Obj().Name(), strings.Join(missing, ", "))
}

// registryFunc detects open registry enums: it returns the name of an
// exported Register*/MustRegister* function declared in the enum's
// defining package whose results include the type, or "" if there is
// none. Such a function mints values beyond the declared constants, so
// no switch over the type can ever be exhaustive by case coverage.
func registryFunc(named *types.Named) string {
	obj := named.Obj()
	if obj == nil || obj.Pkg() == nil || !strings.HasPrefix(obj.Pkg().Path(), "dcasim") {
		return ""
	}
	basic, ok := named.Underlying().(*types.Basic)
	if !ok || basic.Info()&(types.IsInteger|types.IsString) == 0 {
		return ""
	}
	scope := obj.Pkg().Scope()
	for _, name := range scope.Names() { // sorted: deterministic pick
		if !strings.HasPrefix(name, "Register") && !strings.HasPrefix(name, "MustRegister") {
			continue
		}
		fn, ok := scope.Lookup(name).(*types.Func)
		if !ok {
			continue
		}
		sig, ok := fn.Type().(*types.Signature)
		if !ok {
			continue
		}
		res := sig.Results()
		for i := 0; i < res.Len(); i++ {
			if types.Identical(res.At(i).Type(), named) {
				return name
			}
		}
	}
	return ""
}

// enumConstants returns the package-level constants declared with
// exactly the named type, sorted by value.
func enumConstants(named *types.Named) []*types.Const {
	obj := named.Obj()
	if obj == nil || obj.Pkg() == nil {
		return nil
	}
	// Only the module's own enums are closed sets we control; demanding
	// exhaustiveness over std-lib types (reflect.Kind, token.Token, ...)
	// would be noise.
	if !strings.HasPrefix(obj.Pkg().Path(), "dcasim") {
		return nil
	}
	basic, ok := named.Underlying().(*types.Basic)
	if !ok || basic.Info()&types.IsInteger == 0 {
		return nil
	}
	scope := obj.Pkg().Scope()
	var consts []*types.Const
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if ok && types.Identical(c.Type(), named) {
			consts = append(consts, c)
		}
	}
	sort.Slice(consts, func(i, j int) bool {
		return constant.Compare(consts[i].Val(), token.LSS, consts[j].Val())
	})
	return consts
}

func valueCovered(covered map[constant.Value]bool, v constant.Value) bool {
	if covered[v] {
		return true
	}
	// constant.Value is not guaranteed canonical across packages;
	// compare numerically as a fallback.
	for cv := range covered {
		if constant.Compare(cv, token.EQL, v) {
			return true
		}
	}
	return false
}

// defaultSurfacesUnknown reports whether the default clause's body
// contains a panic or constructs an error — i.e. an unknown enum value
// cannot silently flow onward.
func defaultSurfacesUnknown(pass *Pass, cc *ast.CaseClause) bool {
	found := false
	for _, stmt := range cc.Body {
		ast.Inspect(stmt, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || found {
				return !found
			}
			switch fun := call.Fun.(type) {
			case *ast.Ident:
				if fun.Name == "panic" {
					found = true
				}
			case *ast.SelectorExpr:
				if obj := pass.TypesInfo.Uses[fun.Sel]; obj != nil && obj.Pkg() != nil {
					full := obj.Pkg().Path() + "." + obj.Name()
					if full == "fmt.Errorf" || full == "errors.New" {
						found = true
					}
				}
			}
			return !found
		})
	}
	return found
}
