package lint

// All returns every analyzer in the dcalint suite, in the order they
// are documented.
func All() []*Analyzer {
	return []*Analyzer{
		NoDeterminism,
		NoAlloc,
		Exhaustive,
		SimTime,
		ClaimErr,
	}
}

// ByName returns the analyzer with the given name, or nil.
func ByName(name string) *Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}
