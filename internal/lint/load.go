package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os/exec"
	"path/filepath"
	"sort"
)

// Package is one loaded, parsed, type-checked lint target.
type Package struct {
	PkgPath string
	Fset    *token.FileSet
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
}

// listedPackage is the subset of `go list -json` output the loader
// consumes.
type listedPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Error      *struct{ Err string }
}

// LoadPackages resolves patterns with `go list` (run in dir) and
// type-checks each resulting package. Only GoFiles are linted: test
// files are exercised by `go test` itself and are free to use time,
// goroutines, and allocation as they please.
//
// Imports — including the module's own packages — are type-checked
// from source by the standard library's source importer, which is
// module-aware (it defers to the go command for import resolution), so
// the loader works with zero dependencies outside the Go distribution.
func LoadPackages(dir string, patterns ...string) ([]*Package, error) {
	args := append([]string{"list", "-json=ImportPath,Dir,GoFiles,Error", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("lint: go list %v: %v\n%s", patterns, err, stderr.String())
	}

	var listed []listedPackage
	dec := json.NewDecoder(&stdout)
	for dec.More() {
		var lp listedPackage
		if err := dec.Decode(&lp); err != nil {
			return nil, fmt.Errorf("lint: decode go list output: %w", err)
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("lint: go list: %s", lp.Error.Err)
		}
		if len(lp.GoFiles) > 0 {
			listed = append(listed, lp)
		}
	}
	sort.Slice(listed, func(i, j int) bool { return listed[i].ImportPath < listed[j].ImportPath })

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "source", nil)
	var pkgs []*Package
	for _, lp := range listed {
		var files []string
		for _, f := range lp.GoFiles {
			files = append(files, filepath.Join(lp.Dir, f))
		}
		pkg, err := typecheck(fset, imp, lp.ImportPath, files)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// LoadDir parses and type-checks every .go file in one directory as a
// single package with the given (possibly synthetic) import path. The
// fixture runner uses it to present testdata packages to analyzers as
// if they lived at a real path ("dcasim/internal/sim"), which is how
// path-scoped analyzers are exercised.
func LoadDir(dir, importPath string) (*Package, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil || len(matches) == 0 {
		return nil, fmt.Errorf("lint: no .go files in %s: %v", dir, err)
	}
	sort.Strings(matches)
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "source", nil)
	return typecheck(fset, imp, importPath, matches)
}

func typecheck(fset *token.FileSet, imp types.Importer, importPath string, filenames []string) (*Package, error) {
	var files []*ast.File
	for _, name := range filenames {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: parse %s: %w", name, err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: typecheck %s: %w", importPath, err)
	}
	return &Package{PkgPath: importPath, Fset: fset, Files: files, Types: tpkg, Info: info}, nil
}
