package lint

import (
	"go/ast"
	"go/types"
	"strconv"
)

// DeterministicPkgs are the packages that execute inside (or feed) the
// single-threaded discrete-event simulation: their behaviour must be a
// pure function of the configuration and seed. Wall-clock time,
// math/rand's process-global stream, goroutines, and map iteration
// order are all forbidden here.
var DeterministicPkgs = []string{
	"internal/sim",
	"internal/core",
	"internal/event",
	"internal/dram",
	"internal/cpu",
	"internal/dcache",
	"internal/sched",
	"internal/sched/atlas",
	"internal/sched/policies",
	"internal/workload",
	"internal/addrmap",
	"internal/cache",
	"internal/tagcache",
	"internal/mainmem",
	"internal/mempred",
	"internal/rng",
	"internal/simtime",
	"internal/benchfmt",
}

// OrderSensitivePkgs additionally may not iterate maps without an
// ordering discipline: they render tables, serialize configs, and
// schedule experiment runs, all of which must be byte-identical run to
// run (the parallel engine's output contract). Wall-clock time is fine
// here (progress reporting), map iteration order is not.
var OrderSensitivePkgs = append([]string{
	"internal/config",
	"internal/exp",
	"internal/stats",
	"internal/trace",
	"internal/rescache",
}, DeterministicPkgs...)

// bannedTimeFuncs are the package-level time functions that read the
// wall clock or real timers. time.Duration and time.Time as plain data
// types remain usable.
var bannedTimeFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Tick": true,
	"After": true, "AfterFunc": true, "NewTimer": true,
	"NewTicker": true, "Sleep": true,
}

// NoDeterminism enforces the simulator's determinism invariants.
var NoDeterminism = &Analyzer{
	Name: "nodeterminism",
	Doc: `forbid nondeterminism sources in simulation packages

In deterministic packages (internal/sim, core, event, dram, cpu,
dcache, sched, workload, ...): no wall-clock reads (time.Now and
friends), no math/rand (use internal/rng, whose stream is stable
across Go releases), and no goroutine spawns (the kernel is
single-threaded by design; cross-run parallelism lives in the blessed
internal/exp worker pool). In those packages plus the
ordering-sensitive ones (config, exp, stats, trace, rescache): no
map iteration unless the loop only collects keys/values into a slice
that is sorted immediately after the loop.`,
	Run: runNoDeterminism,
}

func runNoDeterminism(pass *Pass) error {
	deterministic := pkgPathMatches(pass.Pkg.Path(), DeterministicPkgs)
	orderSensitive := pkgPathMatches(pass.Pkg.Path(), OrderSensitivePkgs)
	if !deterministic && !orderSensitive {
		return nil
	}
	for _, f := range pass.Files {
		if deterministic {
			for _, imp := range f.Imports {
				path, _ := strconv.Unquote(imp.Path.Value)
				if path == "math/rand" || path == "math/rand/v2" {
					pass.Reportf(imp.Pos(), "deterministic package imports %q: use internal/rng (stable stream across Go releases, per-run seeding)", path)
				}
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if deterministic {
					checkWallClock(pass, n)
				}
			case *ast.GoStmt:
				if deterministic {
					pass.Reportf(n.Pos(), "goroutine spawn in deterministic package: the event kernel is single-threaded; parallelize across runs via the internal/exp worker pool")
				}
			case *ast.RangeStmt:
				checkMapRange(pass, f, n)
			}
			return true
		})
	}
	return nil
}

// checkWallClock flags calls to the wall-clock/timer functions of
// package time.
func checkWallClock(pass *Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !bannedTimeFuncs[sel.Sel.Name] {
		return
	}
	obj := pass.TypesInfo.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "time" {
		return
	}
	pass.Reportf(call.Pos(), "wall-clock read time.%s in deterministic package: simulated time comes from the event engine; real timestamps must be injected by the caller", sel.Sel.Name)
}

// checkMapRange flags `range` over a map unless the loop is the
// collect-then-sort idiom: a body that only appends keys/values to a
// slice which the statement immediately following the loop sorts.
func checkMapRange(pass *Pass, f *ast.File, rng *ast.RangeStmt) {
	t := pass.TypesInfo.TypeOf(rng.X)
	if t == nil {
		return
	}
	if _, isMap := t.Underlying().(*types.Map); !isMap {
		return
	}
	if sortedAfter(pass, f, rng) {
		return
	}
	pass.Reportf(rng.Pos(), "map iteration order is random: sort before use (collect into a slice, then sort) or index by a deterministic key list")
}

// sortFuncs are the sort/slices functions accepted as the ordering
// discipline following a collect loop.
var sortFuncs = map[string]bool{
	"Strings": true, "Ints": true, "Float64s": true, "Slice": true,
	"SliceStable": true, "Sort": true, "Stable": true,
	"SortFunc": true, "SortStableFunc": true,
}

// sortedAfter reports whether rng's body is a single append into a
// slice variable and the statement right after the loop sorts that
// variable (sort.Strings/Ints/Slice/Sort/Stable or slices.Sort*).
func sortedAfter(pass *Pass, f *ast.File, rng *ast.RangeStmt) bool {
	if len(rng.Body.List) != 1 {
		return false
	}
	asg, ok := rng.Body.List[0].(*ast.AssignStmt)
	if !ok || len(asg.Lhs) != 1 || len(asg.Rhs) != 1 {
		return false
	}
	call, ok := asg.Rhs[0].(*ast.CallExpr)
	if !ok {
		return false
	}
	if id, ok := call.Fun.(*ast.Ident); !ok || id.Name != "append" {
		return false
	}
	target, ok := asg.Lhs[0].(*ast.Ident)
	if !ok {
		return false
	}
	next := stmtAfter(f, rng)
	sortCall, ok := next.(*ast.ExprStmt)
	if !ok {
		return false
	}
	sc, ok := sortCall.X.(*ast.CallExpr)
	if !ok || len(sc.Args) == 0 {
		return false
	}
	fn, ok := sc.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	pkgID, ok := fn.X.(*ast.Ident)
	if !ok || (pkgID.Name != "sort" && pkgID.Name != "slices") || !sortFuncs[fn.Sel.Name] {
		return false
	}
	arg, ok := sc.Args[0].(*ast.Ident)
	if !ok {
		return false
	}
	return pass.TypesInfo.Uses[arg] == pass.TypesInfo.ObjectOf(target)
}

// stmtAfter returns the statement that lexically follows stmt inside
// its enclosing block, or nil.
func stmtAfter(f *ast.File, stmt ast.Stmt) ast.Stmt {
	var found ast.Stmt
	ast.Inspect(f, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		block, ok := n.(*ast.BlockStmt)
		if !ok {
			return true
		}
		for i, s := range block.List {
			if s == stmt && i+1 < len(block.List) {
				found = block.List[i+1]
				return false
			}
		}
		return true
	})
	return found
}
