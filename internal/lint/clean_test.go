package lint_test

import (
	"testing"

	"dcasim/internal/lint"
)

// TestTreeIsClean is the integration gate behind `make lint`: the full
// dcalint suite over every package of the module must report nothing.
// Equivalent to `dcalint ./...` exiting 0 from the repo root — this is
// the machine-checked form of the repo's determinism / zero-alloc /
// exhaustiveness invariants, so a finding here is a real regression
// (or a new blessed pattern that needs a justified nolint).
func TestTreeIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module from source")
	}
	pkgs, err := lint.LoadPackages("..", "dcasim/...")
	if err != nil {
		t.Fatalf("load module packages: %v", err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("loaded only %d packages; pattern dcasim/... no longer covers the tree?", len(pkgs))
	}
	diags, err := lint.Run(pkgs, lint.All())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}
