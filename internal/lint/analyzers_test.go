package lint_test

import (
	"path/filepath"
	"testing"

	"dcasim/internal/lint"
	"dcasim/internal/lint/linttest"
)

// Each fixture seeds deliberate violations (pinned by `// want`
// comments) next to the blessed pattern the analyzer must stay silent
// on — internal/rng draws, collect-then-sort map loops, pooled
// appends, panic defaults, unit-constant arithmetic, handled errors.

func TestNoDeterminismFixture(t *testing.T) {
	// Loaded as internal/sim: the full deterministic rule set applies.
	linttest.Run(t, filepath.Join("testdata", "nodeterminism", "sim"), "dcasim/internal/sim", lint.NoDeterminism)
}

func TestNoDeterminismOrderSensitiveTier(t *testing.T) {
	// Loaded as internal/exp: wall-clock reads allowed, map iteration
	// still flagged.
	linttest.Run(t, filepath.Join("testdata", "nodeterminism", "exp"), "dcasim/internal/exp", lint.NoDeterminism)
}

func TestNoDeterminismIgnoresUnscopedPackages(t *testing.T) {
	// The same package body loaded OUTSIDE the scoped path lists must
	// produce no findings at all: the sim fixture's only unsuppressed-
	// silent lines are its want lines, so reuse the exp fixture (one
	// want, on a map range) under a neutral path and expect silence by
	// running with an empty want set — i.e. load it as cmd-like code.
	pkg, err := lint.LoadDir(filepath.Join("testdata", "nodeterminism", "exp"), "dcasim/cmd/whatever")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := lint.Run([]*lint.Package{pkg}, []*lint.Analyzer{lint.NoDeterminism})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Fatalf("nodeterminism fired outside its package scope: %v", diags)
	}
}

func TestNoAllocFixture(t *testing.T) {
	// noalloc scopes by annotation, not package path.
	linttest.Run(t, filepath.Join("testdata", "noalloc", "kernel"), "dcasim/internal/kernelfixture", lint.NoAlloc)
}

func TestExhaustiveFixture(t *testing.T) {
	linttest.Run(t, filepath.Join("testdata", "exhaustive", "policy"), "dcasim/internal/policyfixture", lint.Exhaustive)
}

func TestSimTimeFixture(t *testing.T) {
	linttest.Run(t, filepath.Join("testdata", "simtime", "model"), "dcasim/internal/modelfixture", lint.SimTime)
}

func TestClaimErrFixture(t *testing.T) {
	linttest.Run(t, filepath.Join("testdata", "claimerr", "user"), "dcasim/internal/userfixture", lint.ClaimErr)
}

func TestRegistry(t *testing.T) {
	all := lint.All()
	if len(all) < 5 {
		t.Fatalf("suite has %d analyzers, want >= 5", len(all))
	}
	seen := map[string]bool{}
	for _, a := range all {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %+v incompletely declared", a)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
		if lint.ByName(a.Name) != a {
			t.Errorf("ByName(%q) did not round-trip", a.Name)
		}
	}
	if lint.ByName("nosuch") != nil {
		t.Error("ByName of unknown name should be nil")
	}
}
