// Package linttest is dcalint's analysistest equivalent: it runs one
// analyzer over a fixture package and checks its diagnostics against
// "// want" comments in the fixture source.
//
// A fixture directory holds ordinary Go files. A line expecting a
// diagnostic carries a trailing comment
//
//	x := bad()	// want `regexp matching the message`
//
// (multiple `...` segments for multiple findings on the line). The run
// fails on any diagnostic without a matching want, and on any want
// without a matching diagnostic — fixtures therefore pin both the
// positives (seeded violations fire) and the negatives (blessed
// patterns stay silent).
//
// Fixtures are loaded with a caller-chosen import path, because several
// analyzers scope themselves by package path ("is this a deterministic
// package?"): a fixture loaded as "dcasim/internal/sim" is linted under
// internal/sim's rules no matter where it lives on disk.
package linttest

import (
	"fmt"
	"go/token"
	"regexp"
	"strings"
	"testing"

	"dcasim/internal/lint"
)

// wantRe extracts the backquoted patterns of a want comment.
var wantRe = regexp.MustCompile("// want (`[^`]*`(?: `[^`]*`)*)")

// Run loads dir as a package with the given import path, applies the
// analyzer, and reports mismatches between produced diagnostics and
// the fixture's want comments on t.
func Run(t *testing.T, dir, importPath string, a *lint.Analyzer) {
	t.Helper()
	pkg, err := lint.LoadDir(dir, importPath)
	if err != nil {
		t.Fatalf("load fixture %s: %v", dir, err)
	}
	diags, err := lint.Run([]*lint.Package{pkg}, []*lint.Analyzer{a})
	if err != nil {
		t.Fatalf("run %s on %s: %v", a.Name, dir, err)
	}

	type want struct {
		re      *regexp.Regexp
		matched bool
	}
	wants := make(map[string][]*want) // "file:line" -> expectations
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				key := posKey(pos)
				for _, q := range strings.Split(m[1], "` `") {
					q = strings.Trim(q, "`")
					re, err := regexp.Compile(q)
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", key, q, err)
					}
					wants[key] = append(wants[key], &want{re: re})
				}
			}
		}
	}

	for _, d := range diags {
		key := posKey(d.Pos)
		matched := false
		for _, w := range wants[key] {
			if !w.matched && w.re.MatchString(d.Message) {
				w.matched, matched = true, true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic at %s: %s", key, d.Message)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s: expected diagnostic matching %q, got none", key, w.re)
			}
		}
	}
}

func posKey(pos token.Position) string {
	return fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
}
