package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// NoAlloc enforces the zero-allocation contract of functions annotated
// with a "//dcalint:noalloc" doc-comment directive (the event kernel's
// hot path and any other path that must stay allocation-free in steady
// state).
var NoAlloc = &Analyzer{
	Name: "noalloc",
	Doc: `forbid allocation sources in //dcalint:noalloc functions

Inside an annotated function: no closure captures (a func literal
referencing outer variables allocates its environment), no interface
boxing of non-pointer-shaped values (storing an int or struct in an
interface allocates; pointers, maps, chans, funcs, and zero-size
structs do not), no make/new, no string concatenation, and append only
in the pooled form "x.field = append(x.field, ...)" whose backing
array amortizes to a high-water mark. The runtime zero-alloc tests
catch regressions after the fact; this analyzer names the exact
expression that would allocate.`,
	Run: runNoAlloc,
}

func runNoAlloc(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !hasDirective(fn.Doc, "noalloc") {
				continue
			}
			checkNoAllocFunc(pass, fn)
		}
	}
	return nil
}

func checkNoAllocFunc(pass *Pass, fn *ast.FuncDecl) {
	pooled := pooledAppends(pass, fn.Body)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			if capt := capturedVar(pass, fn, n); capt != "" {
				pass.Reportf(n.Pos(), "closure captures %q: the environment allocates per call; pass context through an event Payload instead", capt)
			}
			return false // the literal runs later, under its own rules
		case *ast.CallExpr:
			checkNoAllocCall(pass, n, pooled)
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isString(pass.TypesInfo.TypeOf(n.X)) {
				pass.Reportf(n.Pos(), "string concatenation allocates; format off the hot path or use a pooled buffer")
			}
		case *ast.CompositeLit:
			checkBoxedFields(pass, n)
		case *ast.AssignStmt:
			checkBoxedAssign(pass, n)
		}
		return true
	})
}

// checkNoAllocCall flags make/new and non-pooled append.
func checkNoAllocCall(pass *Pass, call *ast.CallExpr, pooled map[*ast.CallExpr]bool) {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return
	}
	if obj, ok := pass.TypesInfo.Uses[id].(*types.Builtin); !ok || obj == nil {
		return
	}
	switch id.Name {
	case "make", "new":
		pass.Reportf(call.Pos(), "%s allocates; preallocate in setup and reuse via the pool/free list", id.Name)
	case "append":
		if !pooled[call] {
			pass.Reportf(call.Pos(), "append outside the pooled x.field = append(x.field, ...) form can allocate per call; grow only persistent struct-field slices")
		}
	}
}

// pooledAppends collects the append calls appearing as
// x.f = append(x.f, ...) where x.f is a struct-field selector: the
// backing array then persists across calls and growth amortizes to
// the high-water mark, which is the kernel's pooling idiom.
func pooledAppends(pass *Pass, body *ast.BlockStmt) map[*ast.CallExpr]bool {
	pooled := make(map[*ast.CallExpr]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		asg, ok := n.(*ast.AssignStmt)
		if !ok || len(asg.Lhs) != 1 || len(asg.Rhs) != 1 || asg.Tok != token.ASSIGN {
			return true
		}
		call, ok := asg.Rhs[0].(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		if id, ok := call.Fun.(*ast.Ident); !ok || id.Name != "append" {
			return true
		}
		dst, ok := call.Args[0].(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if sel := pass.TypesInfo.Selections[dst]; sel == nil || sel.Kind() != types.FieldVal {
			return true
		}
		lhs, ok := asg.Lhs[0].(*ast.SelectorExpr)
		if ok && types.ExprString(lhs) == types.ExprString(dst) {
			pooled[call] = true
		}
		return true
	})
	return pooled
}

// checkBoxedFields flags composite-literal fields of interface type
// initialized with a value whose concrete type boxes (allocates).
func checkBoxedFields(pass *Pass, lit *ast.CompositeLit) {
	t := pass.TypesInfo.TypeOf(lit)
	if t == nil {
		return
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return
	}
	for _, el := range lit.Elts {
		kv, ok := el.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		key, ok := kv.Key.(*ast.Ident)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			fld := st.Field(i)
			if fld.Name() != key.Name {
				continue
			}
			reportIfBoxes(pass, kv.Value, fld.Type())
		}
	}
}

// checkBoxedAssign flags assignments that box a non-pointer-shaped
// value into an interface-typed destination.
func checkBoxedAssign(pass *Pass, asg *ast.AssignStmt) {
	if len(asg.Lhs) != len(asg.Rhs) {
		return
	}
	for i, lhs := range asg.Lhs {
		lt := pass.TypesInfo.TypeOf(lhs)
		if lt == nil {
			continue
		}
		reportIfBoxes(pass, asg.Rhs[i], lt)
	}
}

// reportIfBoxes reports expr if assigning it to a destination of type
// dst would box an allocation-requiring value into an interface.
func reportIfBoxes(pass *Pass, expr ast.Expr, dst types.Type) {
	if _, ok := dst.Underlying().(*types.Interface); !ok {
		return
	}
	src := pass.TypesInfo.TypeOf(expr)
	if src == nil || boxesWithoutAlloc(src) {
		return
	}
	if tv, ok := pass.TypesInfo.Types[expr]; ok && tv.IsNil() {
		return
	}
	pass.Reportf(expr.Pos(), "storing %s in an interface allocates (non-pointer-shaped value); box a pointer, func, or zero-size struct instead", src)
}

// boxesWithoutAlloc reports whether a value of type t can be stored in
// an interface without heap allocation: pointer-shaped values reuse
// the pointer word, zero-size values share the runtime's zerobase.
func boxesWithoutAlloc(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Map, *types.Chan, *types.Signature, *types.Interface:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer || u.Kind() == types.UntypedNil
	case *types.Struct:
		return u.NumFields() == 0
	case *types.Array:
		return u.Len() == 0
	}
	return false
}

// capturedVar returns the name of a variable the func literal captures
// from its enclosing function, or "" if it captures nothing.
func capturedVar(pass *Pass, enclosing *ast.FuncDecl, lit *ast.FuncLit) string {
	var captured string
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if captured != "" {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj, ok := pass.TypesInfo.Uses[id].(*types.Var)
		if !ok || obj.Pkg() == nil {
			return true
		}
		// Captured iff declared inside the enclosing function but
		// outside the literal itself.
		if obj.Pos() >= enclosing.Pos() && obj.Pos() < enclosing.End() &&
			(obj.Pos() < lit.Pos() || obj.Pos() >= lit.End()) {
			captured = id.Name
		}
		return true
	})
	return captured
}

// isString reports whether t's underlying type is string.
func isString(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}
