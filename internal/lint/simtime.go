package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// SimTime polices the picosecond time base. simtime.Time is an int64 of
// picoseconds; time.Duration is an int64 of nanoseconds. Go converts
// between them (and absorbs untyped literals) without complaint, which
// turns "t + 100" — is that 100 ps? the author probably meant ns — and
// simtime.Time(time.Millisecond) — a 1000× unit error — into silent
// timing bugs that only show up as wrong latencies in a golden table.
var SimTime = &Analyzer{
	Name: "simtime",
	Doc: `forbid raw literals and time.Duration mixing in simtime arithmetic

Additive arithmetic (+, -) and comparisons against a simtime.Time must
use the named unit constants (simtime.Nanosecond, ...) or values
derived from them, never bare numeric literals (0 is allowed: zero is
zero in every unit). Conversions between time.Duration and
simtime.Time in either direction are flagged unconditionally — the
two types differ by a factor of 1000 and a correct conversion must go
through simtime.FromNS or an explicit unit product.`,
	Run: runSimTime,
}

func runSimTime(pass *Pass) error {
	// The simtime package itself defines the units and converters.
	if pkgPathMatches(pass.Pkg.Path(), []string{"internal/simtime"}) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				checkSimTimeBinary(pass, n)
			case *ast.CallExpr:
				checkSimTimeConversion(pass, n)
			}
			return true
		})
	}
	return nil
}

var additiveOrCompare = map[token.Token]bool{
	token.ADD: true, token.SUB: true,
	token.LSS: true, token.LEQ: true, token.GTR: true, token.GEQ: true,
	token.EQL: true, token.NEQ: true,
}

func checkSimTimeBinary(pass *Pass, be *ast.BinaryExpr) {
	if !additiveOrCompare[be.Op] {
		return
	}
	xSim, ySim := isSimTime(pass.TypesInfo.TypeOf(be.X)), isSimTime(pass.TypesInfo.TypeOf(be.Y))
	if !xSim && !ySim {
		return
	}
	for _, operand := range []ast.Expr{be.X, be.Y} {
		if lit := rawNonZeroLiteral(operand); lit != nil {
			pass.Reportf(lit.Pos(), "raw literal %s in %s with simtime.Time: a bare number has no unit — write it as a product of simtime.Nanosecond/Picosecond or use simtime.FromNS", lit.Value, be.Op)
		}
	}
}

// checkSimTimeConversion flags type conversions between simtime.Time
// and time.Duration.
func checkSimTimeConversion(pass *Pass, call *ast.CallExpr) {
	if len(call.Args) != 1 {
		return
	}
	tv, ok := pass.TypesInfo.Types[call.Fun]
	if !ok || !tv.IsType() {
		return
	}
	dst, src := tv.Type, pass.TypesInfo.TypeOf(call.Args[0])
	switch {
	case isSimTime(dst) && isDuration(src):
		pass.Reportf(call.Pos(), "converting time.Duration (nanoseconds) directly to simtime.Time (picoseconds) drops a factor of 1000; multiply by simtime.Nanosecond or use simtime.FromNS")
	case isDuration(dst) && isSimTime(src):
		pass.Reportf(call.Pos(), "converting simtime.Time (picoseconds) directly to time.Duration (nanoseconds) drops a factor of 1000; divide by simtime.Nanosecond first")
	}
}

// rawNonZeroLiteral returns the integer/float literal expr denotes
// (unwrapping unary minus and parens), or nil if expr is not a bare
// literal or is the unit-free constant 0.
func rawNonZeroLiteral(expr ast.Expr) *ast.BasicLit {
	switch e := expr.(type) {
	case *ast.ParenExpr:
		return rawNonZeroLiteral(e.X)
	case *ast.UnaryExpr:
		if e.Op == token.SUB {
			return rawNonZeroLiteral(e.X)
		}
	case *ast.BasicLit:
		if e.Kind != token.INT && e.Kind != token.FLOAT {
			return nil
		}
		if strings.Trim(e.Value, "0.") == "" { // 0, 0.0, 00 — zero in any unit
			return nil
		}
		return e
	}
	return nil
}

func isSimTime(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Name() == "Time" && strings.HasSuffix(named.Obj().Pkg().Path(), "internal/simtime")
}

func isDuration(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Name() == "Duration" && named.Obj().Pkg().Path() == "time"
}
