// Fixture for the claimerr analyzer: errors returned by rescache and
// trace operations must never be dropped — not in expression position,
// not via the blank identifier, not behind defer.
package user

import (
	"fmt"
	"os"

	"dcasim/internal/rescache"
	"dcasim/internal/sim"
	"dcasim/internal/trace"
)

func ignored(c *rescache.Cache, res sim.Result) {
	c.Put("k", res) // want `rescache.Put return value ignored`
}

func blank(c *rescache.Cache, res sim.Result) {
	_ = c.Put("k", res) // want `rescache.Put error discarded into _`
}

func blankMulti(path string) *rescache.Cache {
	c, _ := rescache.Open(path) // want `rescache.Open error discarded into _`
	return c
}

func deferred(w *trace.Writer) {
	defer w.Flush() // want `trace.Flush deferred with its error ignored`
}

// handled is the required shape.
func handled(c *rescache.Cache, res sim.Result) error {
	if err := c.Put("k", res); err != nil {
		return fmt.Errorf("put: %w", err)
	}
	return nil
}

// errorless methods of guarded packages are unconstrained.
func errorless(c *rescache.Cache) string {
	return c.Dir()
}

// otherPkg: claimerr only guards rescache and trace (errcheck covers
// the rest of the tree with its own policy).
func otherPkg(f *os.File) {
	f.Close()
}
