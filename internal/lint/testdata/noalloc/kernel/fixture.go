// Fixture for the noalloc analyzer: only functions annotated
// //dcalint:noalloc are constrained, and within them every allocation
// source — closure captures, interface boxing, make/new, non-pooled
// append, string concatenation — is named at its exact expression.
package kernel

type pool struct {
	buf  []int
	sink any
}

type state struct {
	payload any
}

// grow uses the pooled form: the backing array persists in the struct
// field and growth amortizes to the high-water mark.
//
//dcalint:noalloc
func (p *pool) grow(v int) {
	p.buf = append(p.buf, v)
}

//dcalint:noalloc
func escape(vs []int, v int) []int {
	vs = append(vs, v) // want `append outside the pooled`
	return vs
}

//dcalint:noalloc
func (p *pool) fresh() {
	p.buf = make([]int, 8) // want `make allocates`
}

//dcalint:noalloc
func (p *pool) boxInt(v int) {
	p.sink = v // want `storing int in an interface allocates`
}

// boxPtr stores a pointer-shaped value: the interface reuses the
// pointer word, no allocation.
//
//dcalint:noalloc
func (p *pool) boxPtr(v *int) {
	p.sink = v
}

//dcalint:noalloc
func boxField(v int) state {
	return state{payload: v} // want `storing int in an interface allocates`
}

// boxFunc passes a func value: pointer-shaped, free to box.
//
//dcalint:noalloc
func boxFunc(f func()) state {
	return state{payload: f}
}

//dcalint:noalloc
func capture(n int) func() int {
	return func() int { return n } // want `closure captures "n"`
}

// pure literals capture nothing: the compiler hoists them to a static
// func value, no environment allocation.
//
//dcalint:noalloc
func pureLiteral() func() int {
	return func() int { return 42 }
}

//dcalint:noalloc
func concat(a, b string) string {
	return a + b // want `string concatenation allocates`
}

// unannotated functions are outside the contract entirely.
func unannotated(a, b string) []byte {
	return []byte(a + b)
}
