// Fixture for the noalloc analyzer: only functions annotated
// //dcalint:noalloc are constrained, and within them every allocation
// source — closure captures, interface boxing, make/new, non-pooled
// append, string concatenation — is named at its exact expression.
package kernel

type pool struct {
	buf  []int
	sink any
}

type state struct {
	payload any
}

// grow uses the pooled form: the backing array persists in the struct
// field and growth amortizes to the high-water mark.
//
//dcalint:noalloc
func (p *pool) grow(v int) {
	p.buf = append(p.buf, v)
}

//dcalint:noalloc
func escape(vs []int, v int) []int {
	vs = append(vs, v) // want `append outside the pooled`
	return vs
}

//dcalint:noalloc
func (p *pool) fresh() {
	p.buf = make([]int, 8) // want `make allocates`
}

//dcalint:noalloc
func (p *pool) boxInt(v int) {
	p.sink = v // want `storing int in an interface allocates`
}

// boxPtr stores a pointer-shaped value: the interface reuses the
// pointer word, no allocation.
//
//dcalint:noalloc
func (p *pool) boxPtr(v *int) {
	p.sink = v
}

//dcalint:noalloc
func boxField(v int) state {
	return state{payload: v} // want `storing int in an interface allocates`
}

// boxFunc passes a func value: pointer-shaped, free to box.
//
//dcalint:noalloc
func boxFunc(f func()) state {
	return state{payload: f}
}

//dcalint:noalloc
func capture(n int) func() int {
	return func() int { return n } // want `closure captures "n"`
}

// pure literals capture nothing: the compiler hoists them to a static
// func value, no environment allocation.
//
//dcalint:noalloc
func pureLiteral() func() int {
	return func() int { return 42 }
}

//dcalint:noalloc
func concat(a, b string) string {
	return a + b // want `string concatenation allocates`
}

// unannotated functions are outside the contract entirely.
func unannotated(a, b string) []byte {
	return []byte(a + b)
}

// --- Shapes the timing-wheel event kernel relies on ---

type wheelLike struct {
	head, tail [4]int32
	spill      []int32
	pool       []struct{ next int32 }
}

// relink is the intrusive-list pattern: bucket membership is index
// assignments into fixed arrays and pooled records — nothing here can
// allocate, and the analyzer must stay silent.
//
//dcalint:noalloc
func (w *wheelLike) relink(b int, idx int32) {
	if w.tail[b] >= 0 {
		w.pool[w.tail[b]].next = idx
	} else {
		w.head[b] = idx
	}
	w.tail[b] = idx
	w.pool[idx].next = -1
}

// orderedInsert is the spill pattern: grow the pooled slice by one via
// the blessed field-append form, then shift with copy. The append
// targets a field selector, so it is pooled; copy never allocates.
//
//dcalint:noalloc
func (w *wheelLike) orderedInsert(at int, idx int32) {
	w.spill = append(w.spill, 0)
	copy(w.spill[at+1:], w.spill[at:])
	w.spill[at] = idx
}

// compact is the spill-refill pattern: drop a consumed prefix by
// copying down and reslicing the same backing array in place.
//
//dcalint:noalloc
func (w *wheelLike) compact(n int) {
	copy(w.spill, w.spill[n:])
	w.spill = w.spill[:len(w.spill)-n]
}
