// Fixture for the exhaustive analyzer: switches over a closed enum
// (a defined integer type with >= 2 typed package constants) must
// cover every constant or carry a default that panics / builds an
// error.
package policy

import "fmt"

type Design int

const (
	CD Design = iota
	ROD
	DCA
)

// full covers every constant: exhaustive without a default.
func full(d Design) string {
	switch d {
	case CD:
		return "cd"
	case ROD:
		return "rod"
	case DCA:
		return "dca"
	}
	return "?"
}

func missing(d Design) string {
	switch d { // want `non-exhaustive switch over Design: missing DCA`
	case CD:
		return "cd"
	case ROD:
		return "rod"
	}
	return "?"
}

func silentDefault(d Design) bool {
	switch d { // want `switch over Design misses CD, DCA and its default silently picks a behaviour`
	case ROD:
		return true
	default:
		return false
	}
}

// panicDefault fails loudly on a value outside the closed set: a new
// enum constant crashes here instead of silently taking a branch.
func panicDefault(d Design) bool {
	switch d {
	case ROD:
		return true
	default:
		panic(fmt.Sprintf("unknown design %d", int(d)))
	}
}

// errDefault surfaces the unknown value as an error.
func errDefault(d Design) (string, error) {
	switch d {
	case CD, ROD, DCA:
		return "known", nil
	default:
		return "", fmt.Errorf("unknown design %d", int(d))
	}
}

// notAnEnum: switches over plain ints are unconstrained.
func notAnEnum(n int) bool {
	switch n {
	case 1:
		return true
	default:
		return false
	}
}
