// Fixture for the exhaustive analyzer: switches over a closed enum
// (a defined integer type with >= 2 typed package constants) must
// cover every constant or carry a default that panics / builds an
// error. Open registry enums — types an exported Register*/
// MustRegister* function in the same package returns — additionally
// require a loud default even when every declared constant is covered.
package policy

import "fmt"

type Design int

const (
	CD Design = iota
	ROD
	DCA
)

// full covers every constant: exhaustive without a default.
func full(d Design) string {
	switch d {
	case CD:
		return "cd"
	case ROD:
		return "rod"
	case DCA:
		return "dca"
	}
	return "?"
}

func missing(d Design) string {
	switch d { // want `non-exhaustive switch over Design: missing DCA`
	case CD:
		return "cd"
	case ROD:
		return "rod"
	}
	return "?"
}

func silentDefault(d Design) bool {
	switch d { // want `switch over Design misses CD, DCA and its default silently picks a behaviour`
	case ROD:
		return true
	default:
		return false
	}
}

// panicDefault fails loudly on a value outside the closed set: a new
// enum constant crashes here instead of silently taking a branch.
func panicDefault(d Design) bool {
	switch d {
	case ROD:
		return true
	default:
		panic(fmt.Sprintf("unknown design %d", int(d)))
	}
}

// errDefault surfaces the unknown value as an error.
func errDefault(d Design) (string, error) {
	switch d {
	case CD, ROD, DCA:
		return "known", nil
	default:
		return "", fmt.Errorf("unknown design %d", int(d))
	}
}

// notAnEnum: switches over plain ints are unconstrained.
func notAnEnum(n int) bool {
	switch n {
	case 1:
		return true
	default:
		return false
	}
}

// Policy is an open registry enum: MustRegisterPolicy below mints values
// beyond the declared constants (mirrors core.Algorithm).
type Policy string

const (
	PolBLISS Policy = "BLISS"
	PolFCFS  Policy = "FCFS"
)

// MustRegisterPolicy marks Policy as registry-backed for the analyzer.
func MustRegisterPolicy(name string) Policy { return Policy(name) }

// openCovered lists every declared constant — still not exhaustive,
// because registration can mint a third value.
func openCovered(p Policy) string {
	switch p { // want `open registry enum \(MustRegisterPolicy mints new values\), has no default`
	case PolBLISS:
		return "bliss"
	case PolFCFS:
		return "fcfs"
	}
	return "?"
}

// openLoudDefault is the blessed pattern for registry enums.
func openLoudDefault(p Policy) string {
	switch p {
	case PolBLISS:
		return "bliss"
	default:
		panic(fmt.Sprintf("unknown policy %q", string(p)))
	}
}

// Scheme is an int-based registry enum (mirrors core.Design).
type Scheme int

const (
	SchemeA Scheme = iota
	SchemeB
)

// RegisterScheme marks Scheme as registry-backed for the analyzer.
func RegisterScheme(name string) (Scheme, error) { return SchemeA, nil }

// openSilentDefault has a default, but it silently picks a behaviour.
func openSilentDefault(s Scheme) bool {
	switch s { // want `open registry enum \(RegisterScheme mints new values\), silently picks a behaviour`
	case SchemeA, SchemeB:
		return true
	default:
		return false
	}
}

// openErrDefault surfaces unknown registrations as an error.
func openErrDefault(s Scheme) (string, error) {
	switch s {
	case SchemeA:
		return "a", nil
	default:
		return "", fmt.Errorf("unknown scheme %d", int(s))
	}
}
