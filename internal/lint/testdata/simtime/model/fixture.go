// Fixture for the simtime analyzer: additive arithmetic and
// comparisons on the picosecond time base must use named unit
// constants, and time.Duration (nanoseconds) never converts directly
// to or from simtime.Time (picoseconds).
package model

import (
	"time"

	"dcasim/internal/simtime"
)

func deadline(t simtime.Time) simtime.Time {
	return t + 100 // want `raw literal 100 in \+ with simtime.Time`
}

func tooSoon(t simtime.Time) bool {
	return t < 250 // want `raw literal 250 in < with simtime.Time`
}

// zero is zero in every unit.
func zeroOK(t simtime.Time) bool {
	return t != 0
}

// unitOK derives the operand from a named unit constant.
func unitOK(t simtime.Time) simtime.Time {
	return t + 3*simtime.Nanosecond
}

// scalarOK: multiplication and division scale a time by a count, the
// literal is unit-free on purpose.
func scalarOK(t simtime.Time) simtime.Time {
	return t * 2 / 4
}

func fromDuration(d time.Duration) simtime.Time {
	return simtime.Time(d) // want `converting time.Duration \(nanoseconds\) directly to simtime.Time`
}

func toDuration(t simtime.Time) time.Duration {
	return time.Duration(t) // want `converting simtime.Time \(picoseconds\) directly to time.Duration`
}

// viaFromNS is the blessed conversion path.
func viaFromNS(d time.Duration) simtime.Time {
	return simtime.FromNS(float64(d) / float64(time.Nanosecond))
}
