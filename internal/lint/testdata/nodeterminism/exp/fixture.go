// Fixture for nodeterminism's tiered scoping, loaded as
// "dcasim/internal/exp": an order-sensitive (but not deterministic)
// package, where wall-clock reads are fine — progress reporting needs
// them — but unordered map iteration still is not.
package exp

import "time"

// stamp is legal here: exp is outside the simulation's deterministic
// core, and its progress reporting reads real time by design.
func stamp() time.Time {
	return time.Now()
}

func renderOrder(cells map[string]float64) float64 {
	var sum float64
	for _, v := range cells { // want `map iteration order is random`
		sum += v
	}
	return sum
}
