// Fixture for the nodeterminism analyzer, loaded as
// "dcasim/internal/sim": a deterministic package where wall-clock
// reads, math/rand, goroutines, and unordered map iteration are all
// violations, while internal/rng and the collect-then-sort idiom are
// blessed.
package sim

import (
	"math/rand" // want `deterministic package imports "math/rand": use internal/rng`
	"sort"
	"time"

	"dcasim/internal/rng"
)

func wallClock() int64 {
	return time.Now().UnixNano() // want `wall-clock read time.Now in deterministic package`
}

func sleepy() {
	time.Sleep(time.Millisecond) // want `wall-clock read time.Sleep in deterministic package`
}

func spawn(ch chan int) {
	go send(ch) // want `goroutine spawn in deterministic package`
}

func send(ch chan int) { ch <- 1 }

func globalStream() int {
	return rand.Int() // the import line above carries the finding
}

// blessedRand draws from the repo's seeded, Go-release-stable stream.
func blessedRand(r *rng.Rand) int {
	return r.Intn(8)
}

func mapOrder(m map[string]int) int {
	total := 0
	for _, v := range m { // want `map iteration order is random`
		total += v
	}
	return total
}

// sortedKeys is the blessed collect-then-sort idiom: the loop only
// gathers keys and the very next statement orders them.
func sortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func suppressed() int64 {
	return time.Now().UnixNano() //nolint:dcalint/nodeterminism -- fixture: proves a justified suppression silences the finding
}

func badSuppression() int64 {
	return time.Now().UnixNano() //nolint:dcalint/nodeterminism // want `nolint directive needs a justification` `wall-clock read time.Now`
}
