package simtime

import (
	"testing"
	"testing/quick"
)

func TestFromNS(t *testing.T) {
	cases := []struct {
		ns   float64
		want Time
	}{
		{0, 0},
		{1, 1000},
		{3.33, 3330},
		{1.67, 1670},
		{7.5, 7500},
		{0.0004, 0}, // rounds to nearest ps
		{0.0006, 1},
		{-1, -1000},
	}
	for _, c := range cases {
		if got := FromNS(c.ns); got != c.want {
			t.Errorf("FromNS(%v) = %v, want %v", c.ns, got, c.want)
		}
	}
}

func TestNSRoundTrip(t *testing.T) {
	f := func(ps int64) bool {
		tm := Time(ps % (1 << 40))
		return FromNS(tm.NS()) == tm
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestString(t *testing.T) {
	cases := []struct {
		t    Time
		want string
	}{
		{8 * Nanosecond, "8ns"},
		{FromNS(3.33), "3.33ns"},
		{Never, "never"},
		{0, "0ns"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("%d.String() = %q, want %q", int64(c.t), got, c.want)
		}
	}
}

func TestMaxMin(t *testing.T) {
	if Max(3, 5) != 5 || Max(5, 3) != 5 {
		t.Error("Max broken")
	}
	if Min(3, 5) != 3 || Min(5, 3) != 3 {
		t.Error("Min broken")
	}
}

func TestUnits(t *testing.T) {
	if Nanosecond != 1000 || Microsecond != 1_000_000 || Millisecond != 1_000_000_000 {
		t.Errorf("unit constants inconsistent: %d %d %d", Nanosecond, Microsecond, Millisecond)
	}
	if Second != 1000*Millisecond {
		t.Error("Second inconsistent")
	}
}
