// Package simtime defines the simulated time base shared by every model in
// the simulator.
//
// All timestamps and durations are integer picoseconds. Integer time keeps
// the discrete-event kernel exactly deterministic (no floating-point drift)
// while still expressing sub-nanosecond DRAM parameters such as the
// tBURST = 3.33 ns and tRTW = 1.67 ns values of the paper's Table II.
package simtime

import "fmt"

// Time is a simulated timestamp or duration in picoseconds.
type Time int64

// Common units.
const (
	Picosecond  Time = 1
	Nanosecond  Time = 1000 * Picosecond
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Never is a timestamp later than any reachable simulation time. It is used
// as the "not scheduled" sentinel.
const Never Time = 1<<63 - 1

// FromNS converts a duration expressed in (possibly fractional)
// nanoseconds into a Time, rounding to the nearest picosecond.
func FromNS(ns float64) Time {
	if ns < 0 {
		return Time(ns*float64(Nanosecond) - 0.5)
	}
	return Time(ns*float64(Nanosecond) + 0.5)
}

// NS reports t in nanoseconds as a float64.
func (t Time) NS() float64 { return float64(t) / float64(Nanosecond) }

// String formats the time with an adaptive unit, e.g. "8ns" or "3.33ns".
func (t Time) String() string {
	switch {
	case t == Never:
		return "never"
	case t%Nanosecond == 0:
		return fmt.Sprintf("%dns", int64(t/Nanosecond))
	default:
		return fmt.Sprintf("%.3gns", t.NS())
	}
}

// Max returns the later of a and b.
func Max(a, b Time) Time {
	if a > b {
		return a
	}
	return b
}

// Min returns the earlier of a and b.
func Min(a, b Time) Time {
	if a < b {
		return a
	}
	return b
}
