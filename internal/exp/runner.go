// Package exp contains one driver per table and figure of the paper's
// evaluation (§V–§VI). Each driver returns a stats.Table whose rows carry
// the same quantities the paper plots, so `cmd/experiments` (or the
// bench harness) regenerates the full evaluation.
//
// Simulation results are memoized by configuration key and computed by a
// bounded worker pool: the figures share most of their underlying runs
// (e.g. Figs. 8, 10, 12, 14, and 16 all consume the same set-associative
// sweeps), so the whole evaluation costs one pass over the distinct
// configurations, parallelised across CPUs.
package exp

import (
	"fmt"
	"runtime"
	"sync"

	"dcasim/internal/config"
	"dcasim/internal/core"
	"dcasim/internal/dcache"
	"dcasim/internal/sim"
	"dcasim/internal/simtime"
	"dcasim/internal/stats"
	"dcasim/internal/workload"
)

// Runner memoizes simulation runs for the experiment drivers.
type Runner struct {
	base    config.Config
	mixes   []workload.Mix
	workers int

	mu       sync.Mutex
	results  map[runKey]sim.Result
	errs     map[runKey]error
	alone    map[aloneKey]float64
	inflight map[aloneKey]*aloneCall

	aloneRuns int64 // alone simulations actually executed (tests assert no duplicates)
}

// aloneCall is the in-flight record of one alone-run computation
// (singleflight): concurrent requesters for the same key block on done
// and share the one result instead of duplicating a full simulation.
type aloneCall struct {
	done chan struct{}
	ipc  float64
	err  error
}

type runKey struct {
	mixID  int
	org    dcache.Org
	design core.Design
	remap  bool
	lee    bool
	tagKB  int
	// Extension-study dimensions (zero values = paper baseline).
	twtrPS int64          // tWTR override in picoseconds; 0 = Table II
	alg    core.Algorithm // base scheduling algorithm
	bear   bool           // BEAR writeback-probe elision
}

type aloneKey struct {
	bench string
	org   dcache.Org
}

// NewRunner builds a runner over a base config and workload mixes.
// workers <= 0 selects GOMAXPROCS.
func NewRunner(base config.Config, mixes []workload.Mix, workers int) *Runner {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Runner{
		base:     base,
		mixes:    mixes,
		workers:  workers,
		results:  make(map[runKey]sim.Result),
		errs:     make(map[runKey]error),
		alone:    make(map[aloneKey]float64),
		inflight: make(map[aloneKey]*aloneCall),
	}
}

// Mixes returns the workload mixes under evaluation.
func (r *Runner) Mixes() []workload.Mix { return r.mixes }

// BaseConfig returns a copy of the base configuration.
func (r *Runner) BaseConfig() config.Config { return r.base }

// mixFor resolves a mix ID against the runner's mixes.
func (r *Runner) mixFor(mixID int) (workload.Mix, error) {
	for _, m := range r.mixes {
		if m.ID == mixID {
			return m, nil
		}
	}
	return workload.Mix{}, fmt.Errorf("exp: unknown mix id %d", mixID)
}

func (r *Runner) configFor(k runKey) (config.Config, error) {
	cfg := r.base
	cfg.Org = k.org
	cfg.Design = k.design
	cfg.XORRemap = k.remap
	cfg.LeeWriteback = k.lee
	cfg.TagCacheKB = k.tagKB
	cfg.Algorithm = k.alg
	cfg.BEARProbe = k.bear
	if k.twtrPS > 0 {
		cfg.Timing.TWTR = simtime.Time(k.twtrPS)
	}
	cfg.Seed = r.base.Seed + uint64(k.mixID)*1_000_003
	m, err := r.mixFor(k.mixID)
	if err != nil {
		return cfg, err
	}
	// Copy: the config escapes into a concurrently running simulation,
	// and sharing the mix's backing array would alias every run started
	// from the same mix.
	cfg.Benchmarks = append([]string(nil), m.Benchmarks[:]...)
	return cfg, nil
}

// ensure computes every missing key, bounded-parallel across runs.
func (r *Runner) ensure(keys []runKey) error {
	var missing []runKey
	r.mu.Lock()
	seen := make(map[runKey]bool)
	for _, k := range keys {
		if _, ok := r.results[k]; ok || r.errs[k] != nil || seen[k] {
			continue
		}
		seen[k] = true
		missing = append(missing, k)
	}
	r.mu.Unlock()
	if len(missing) == 0 {
		return r.firstErr(keys)
	}

	sem := make(chan struct{}, r.workers)
	var wg sync.WaitGroup
	for _, k := range missing {
		wg.Add(1)
		go func(k runKey) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			cfg, err := r.configFor(k)
			var res sim.Result
			if err == nil {
				res, err = sim.Run(cfg)
			}
			r.mu.Lock()
			if err != nil {
				r.errs[k] = err
			} else {
				r.results[k] = res
			}
			r.mu.Unlock()
		}(k)
	}
	wg.Wait()
	return r.firstErr(keys)
}

func (r *Runner) firstErr(keys []runKey) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, k := range keys {
		if err := r.errs[k]; err != nil {
			return fmt.Errorf("exp: run %+v: %w", k, err)
		}
	}
	return nil
}

// result returns a memoized run (ensure must have succeeded for the key).
func (r *Runner) result(k runKey) sim.Result {
	r.mu.Lock()
	defer r.mu.Unlock()
	res, ok := r.results[k]
	if !ok {
		panic(fmt.Sprintf("exp: result %+v not computed", k))
	}
	return res
}

// aloneIPC returns the memoized alone IPC for one (benchmark, org) key,
// computing it at most once: concurrent callers for the same key — e.g.
// two figure drivers sharing benchmarks — join the in-flight computation
// instead of racing to run the same full simulation twice.
func (r *Runner) aloneIPC(k aloneKey) (float64, error) {
	r.mu.Lock()
	if ipc, ok := r.alone[k]; ok {
		r.mu.Unlock()
		return ipc, nil
	}
	if call, ok := r.inflight[k]; ok {
		r.mu.Unlock()
		<-call.done
		return call.ipc, call.err
	}
	call := &aloneCall{done: make(chan struct{})}
	r.inflight[k] = call
	r.aloneRuns++
	r.mu.Unlock()

	cfg := r.base
	cfg.Org = k.org
	call.ipc, call.err = sim.AloneIPC(cfg, k.bench)

	r.mu.Lock()
	if call.err == nil {
		r.alone[k] = call.ipc
	}
	delete(r.inflight, k)
	r.mu.Unlock()
	close(call.done)
	return call.ipc, call.err
}

// aloneIPCs returns per-core alone IPCs for a mix under an organization,
// computing and memoizing per-benchmark alone runs on demand.
func (r *Runner) aloneIPCs(mix workload.Mix, org dcache.Org) ([]float64, error) {
	out := make([]float64, len(mix.Benchmarks))
	for i, b := range mix.Benchmarks {
		ipc, err := r.aloneIPC(aloneKey{bench: b, org: org})
		if err != nil {
			return nil, err
		}
		out[i] = ipc
	}
	return out, nil
}

// ensureAlone precomputes alone IPCs for every benchmark of the mixes in
// parallel, through the same singleflight path aloneIPCs uses.
func (r *Runner) ensureAlone(org dcache.Org) error {
	benches := map[string]bool{}
	for _, m := range r.mixes {
		for _, b := range m.Benchmarks {
			benches[b] = true
		}
	}
	sem := make(chan struct{}, r.workers)
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	for b := range benches {
		wg.Add(1)
		go func(b string) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			if _, err := r.aloneIPC(aloneKey{bench: b, org: org}); err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
			}
		}(b)
	}
	wg.Wait()
	return firstErr
}

// weightedSpeedup computes the weighted speedup of a memoized run. An
// unknown mix ID is an error: proceeding with a zero-value Mix would
// silently normalize against empty benchmark names.
func (r *Runner) weightedSpeedup(k runKey) (float64, error) {
	mix, err := r.mixFor(k.mixID)
	if err != nil {
		return 0, err
	}
	alone, err := r.aloneIPCs(mix, k.org)
	if err != nil {
		return 0, err
	}
	return stats.WeightedSpeedup(r.result(k).IPC, alone), nil
}
