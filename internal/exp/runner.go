// Package exp is the evaluation harness: a memoizing, cache-backed
// simulation runner plus declarative table specs that regenerate every
// table and figure of the paper (§V–§VI).
//
// A simulation run is a pure function of its config, so runs are
// content-addressed by config.Config.Hash(): the in-memory memo and the
// optional persistent rescache.Cache are both keyed by that hash. The
// figures share most of their underlying runs (e.g. Figs. 8, 10, 12, 14,
// and 16 all consume the same set-associative sweeps), so the whole
// evaluation costs one pass over the distinct configurations,
// parallelised across CPUs — and with a warm persistent cache, zero
// simulations at all.
package exp

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"dcasim/internal/config"
	"dcasim/internal/core"
	"dcasim/internal/dcache"
	"dcasim/internal/rescache"
	"dcasim/internal/sim"
	"dcasim/internal/stats"
	"dcasim/internal/workload"
)

// Runner memoizes simulation runs for the experiment drivers.
type Runner struct {
	base       config.Config
	mixes      []workload.Mix
	workers    int
	cache      *rescache.Cache
	progress   ProgressFunc
	replicates int // default replicate count for Table; specs may override

	run        func(config.Config) (sim.Result, error) // the simulator; tests substitute panicking/hanging fakes
	keepGoing  bool                                    // Ensure collects every failure instead of cancelling on the first
	runTimeout time.Duration                           // per-run watchdog; <= 0 disables

	mu        sync.Mutex
	results   map[string]sim.Result // by config.Config.Hash()
	errs      map[string]error
	inflight  map[string]*call
	simRuns   int64 // simulations actually executed (not memo or cache hits)
	cacheHits int64 // persistent-cache hits
	cacheErr  error // first failed cache write, surfaced via CacheErr
}

// call is the in-flight record of one run (singleflight): concurrent
// requesters for the same config hash block on done and share the one
// result instead of duplicating a full simulation.
type call struct {
	done chan struct{}
	res  sim.Result
	err  error
}

// NewRunner builds a runner over a base config and workload mixes.
// workers <= 0 selects GOMAXPROCS.
func NewRunner(base config.Config, mixes []workload.Mix, workers int) *Runner {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Runner{
		base:     base,
		mixes:    mixes,
		workers:  workers,
		run:      sim.Run,
		results:  make(map[string]sim.Result),
		errs:     make(map[string]error),
		inflight: make(map[string]*call),
	}
}

// SetCache attaches a persistent result cache, consulted before running
// any simulation and updated after each one.
func (r *Runner) SetCache(c *rescache.Cache) { r.cache = c }

// SetProgress installs a progress observer for Ensure passes (nil
// disables reporting). Set it before the first Run/Ensure/Table call.
func (r *Runner) SetProgress(f ProgressFunc) { r.progress = f }

// SetKeepGoing selects Ensure's failure mode: false (the default) stops
// dispatching on the first failure and reports the lowest-spec-index
// error; true runs every config and reports all failures joined in spec
// order — the resumable mode, where every run that can succeed lands in
// the cache even when some cannot. Set it before the first Ensure call.
func (r *Runner) SetKeepGoing(v bool) { r.keepGoing = v }

// SetRunTimeout arms a per-run watchdog: a simulation that exceeds d
// fails with *RunTimeoutError instead of hanging the sweep. d <= 0 (the
// default) disables it. Set it before the first Run/Ensure call.
func (r *Runner) SetRunTimeout(d time.Duration) { r.runTimeout = d }

// SetReplicates sets the default replicate count Table uses when a spec
// does not carry its own: every grid cell fans out into n seed-derived
// runs and renders as mean ±CI95. n <= 1 (and the zero default) keeps
// the single-run behaviour, bit-identical to the unreplicated engine.
// A spec's own Replicates field, when positive, wins over this default.
func (r *Runner) SetReplicates(n int) { r.replicates = n }

// ValidateReplicates rejects a nonsensical replicate count up front, so
// a bad -seeds flag fails before any simulation work.
func ValidateReplicates(n int) error {
	if n < 1 {
		return fmt.Errorf("exp: replicates must be >= 1, got %d", n)
	}
	return nil
}

// replicateCfg returns the config of seeded replicate k of a run:
// replicate 0 is the config itself, and k > 0 shifts the seed by
// config.ReplicateSeed. The result is an ordinary config, so replicates
// content-address, cache, and deduplicate exactly like any other run.
func replicateCfg(cfg config.Config, k int) config.Config {
	if k == 0 {
		return cfg
	}
	cfg.Seed = config.ReplicateSeed(cfg.Seed, k)
	return cfg
}

// ReplicateConfigs expands cfg into its n seeded replicate configs:
// element 0 is cfg itself, element k carries the k-th replicate seed.
func ReplicateConfigs(cfg config.Config, n int) []config.Config {
	cfgs := make([]config.Config, n)
	for k := range cfgs {
		cfgs[k] = replicateCfg(cfg, k)
	}
	return cfgs
}

// SimRuns returns how many simulations this runner actually executed —
// memo and persistent-cache hits excluded. A second evaluation pass
// against a warm cache must report zero.
func (r *Runner) SimRuns() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.simRuns
}

// CacheHits returns how many runs were satisfied by the persistent cache.
func (r *Runner) CacheHits() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.cacheHits
}

// CacheErr returns the first error encountered writing the persistent
// cache, if any. Cache write failures never fail a run — the result was
// already computed — but callers may want to warn that the next pass
// will not be warm.
func (r *Runner) CacheErr() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.cacheErr
}

// Mixes returns the workload mixes under evaluation.
func (r *Runner) Mixes() []workload.Mix { return r.mixes }

// BaseConfig returns a copy of the base configuration.
func (r *Runner) BaseConfig() config.Config { return r.base }

// mixConfig specializes a variant config to one mix: the mix's
// benchmarks and a per-mix seed derived from the base seed.
func mixConfig(variant config.Config, base config.Config, m workload.Mix) config.Config {
	cfg := variant
	// Copy: the config escapes into a concurrently running simulation,
	// and sharing the mix's backing array would alias every run started
	// from the same mix.
	cfg.Benchmarks = append([]string(nil), m.Benchmarks[:]...)
	cfg.Seed = base.Seed + uint64(m.ID)*1_000_003
	return cfg
}

// aloneConfig is the single-benchmark run whose IPC is the denominator
// of the weighted-speedup metric: the base config under the given
// organization, on the CD normalization baseline.
func (r *Runner) aloneConfig(bench string, org dcache.Org) config.Config {
	cfg := r.base
	cfg.Org = org
	cfg.Benchmarks = []string{bench}
	cfg.Design = core.CD
	cfg.Ctrl = nil
	return cfg
}

// Cacheable reports whether a config's result may live in the
// persistent cache: trace replay depends on the trace file's contents
// (which the config hash does not cover, only the path) and recording
// is a side effect a cache hit would silently skip, so neither is.
// Every cache front-end (the runner here, cmd/dcasim's single-run
// path) must route through this one predicate.
func Cacheable(cfg config.Config) bool {
	return cfg.ReplayPath() == "" && cfg.RecordPath == ""
}

// Run returns the simulation result for cfg, computing it at most once
// per runner: the in-memory memo, then the persistent cache, then an
// actual simulation. Concurrent callers for the same config hash join
// the in-flight computation (singleflight).
func (r *Runner) Run(cfg config.Config) (sim.Result, error) {
	h := cfg.Hash()
	r.mu.Lock()
	if res, ok := r.results[h]; ok {
		r.mu.Unlock()
		return res, nil
	}
	if err := r.errs[h]; err != nil {
		r.mu.Unlock()
		return sim.Result{}, err
	}
	if c, ok := r.inflight[h]; ok {
		r.mu.Unlock()
		<-c.done
		return c.res, c.err
	}
	c := &call{done: make(chan struct{})}
	r.inflight[h] = c
	r.mu.Unlock()

	fromCache := false
	release := func() {}
	if r.cache != nil && Cacheable(cfg) {
		// Validate before consulting the cache: a bad config must fail
		// loudly even if a stale entry happens to exist under its hash.
		if c.err = cfg.Validate(); c.err == nil {
			c.res, fromCache = r.cache.Get(h)
			if !fromCache {
				// Claim the key so sibling processes sharing this cache
				// directory wait for our entry instead of duplicating
				// the run. If someone else already holds the claim,
				// wait for their entry; if they die or fail, the claim
				// goes away and we compute after all.
				if rel, ok := r.cache.TryClaim(h); ok {
					release = rel
				} else if res, ok := r.cache.WaitForClaim(h); ok {
					c.res, fromCache = res, true
				} else if rel, ok := r.cache.TryClaim(h); ok {
					// The wait ended without an entry: the claimant died
					// (stale claim) or outlived the wait deadline. We are
					// about to recompute — claim the key so siblings wait
					// on us, and so a dead owner's claim file is actually
					// broken and removed rather than left to confuse the
					// next pass.
					release = rel
				}
			}
		}
	}
	if !fromCache && c.err == nil {
		c.res, c.err = r.execute(cfg)
	}

	r.mu.Lock()
	if c.err != nil {
		r.errs[h] = c.err
	} else {
		r.results[h] = c.res
	}
	if c.err == nil {
		if fromCache {
			r.cacheHits++
		} else {
			r.simRuns++
		}
	}
	r.mu.Unlock()
	if !fromCache && c.err == nil && r.cache != nil && Cacheable(cfg) {
		if err := r.cache.Put(h, c.res); err != nil {
			r.mu.Lock()
			if r.cacheErr == nil {
				r.cacheErr = err
			}
			r.mu.Unlock()
		}
	}
	// Release only after the Put: a waiter woken by the release must
	// find the entry, not a miss that sends it off to re-simulate.
	release()
	r.mu.Lock()
	delete(r.inflight, h)
	r.mu.Unlock()
	close(c.done)
	return c.res, c.err
}

// Ensure computes every missing config through a bounded worker pool and
// returns the first error in the order given. Duplicates are launched
// once: a joiner blocked on the singleflight would otherwise hold a
// worker slot for the whole in-flight simulation.
//
// The pool dispatches the distinct configs strictly in order, so the
// error Ensure reports is deterministic at every worker count: when a
// run fails, dispatch stops (in-flight siblings drain, and at most one
// already-offered index — necessarily above the failing one — still
// starts), and in-order dispatch guarantees every config before the
// lowest failing index has already run to completion — making
// "lowest-index recorded error" independent of goroutine scheduling.
// Results are equally order-independent: runs commit into the
// hash-keyed memo and the table/sweep renderers read them back in spec
// order, so parallel output is bit-identical to sequential.
//
// With SetKeepGoing(true) a failure does not stop dispatch: every
// config runs (and every success lands in the persistent cache, so a
// partly-failing sweep is resumable), and Ensure returns all distinct
// failures joined in spec order — the same determinism argument
// applies, because the memo keys failures by hash and the final scan
// reads them back in spec order regardless of which worker hit them.
func (r *Runner) Ensure(cfgs []config.Config) error {
	keepGoing := r.keepGoing
	hashes := make([]string, len(cfgs))
	var distinct []config.Config
	seen := make(map[string]bool, len(cfgs))
	for i, cfg := range cfgs {
		hashes[i] = cfg.Hash()
		if !seen[hashes[i]] {
			seen[hashes[i]] = true
			distinct = append(distinct, cfg)
		}
	}

	var (
		stop     = make(chan struct{}) // closed on the first failure
		stopOnce sync.Once
		cancel   = func() { stopOnce.Do(func() { close(stop) }) }

		progMu sync.Mutex // serializes progress events
		done   int
		start  = time.Now()
	)
	// In-order dispatch: an unbuffered channel hands out index i only
	// after every j < i was handed out (the determinism proof above
	// leans on this).
	idxCh := make(chan int)
	go func() {
		defer close(idxCh)
		for i := range distinct {
			// Check stop before offering: with a worker already blocked
			// on idxCh both select cases would be ready and Go picks
			// randomly, which would keep dealing work after a failure.
			// If stop closes during the send itself, at most this one
			// index slips through (the next iteration's check returns).
			select {
			case <-stop:
				return
			default:
			}
			select {
			case idxCh <- i:
			case <-stop:
				return
			}
		}
	}()

	workers := r.workers
	if workers > len(distinct) {
		workers = len(distinct)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idxCh {
				// Every received index runs, even one that slipped
				// through the dispatcher's send in the same instant a
				// failure cancelled the pass: in-order dispatch means
				// such a straggler is strictly above the failing index,
				// so running it costs at most one extra run — while
				// skipping it here could skip an index received BEFORE
				// the failure and break the lowest-failing-index proof.
				if _, err := r.Run(distinct[i]); err != nil && !keepGoing {
					cancel()
				}
				if r.progress != nil {
					r.mu.Lock()
					p := Progress{Total: len(distinct), Simulated: r.simRuns, CacheHits: r.cacheHits}
					r.mu.Unlock()
					progMu.Lock()
					done++
					p.Done = done
					p.Elapsed = time.Since(start)
					r.progress(p)
					progMu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	cancel() // unblock the dispatcher if it is still offering work

	// An aborted pass (failure before every run completed) gets one
	// terminating event so a live renderer can finalize its output
	// before the error is reported.
	if r.progress != nil {
		progMu.Lock()
		if done < len(distinct) {
			r.mu.Lock()
			p := Progress{Done: done, Total: len(distinct), Simulated: r.simRuns, CacheHits: r.cacheHits}
			r.mu.Unlock()
			p.Elapsed = time.Since(start)
			p.Final = true
			r.progress(p)
		}
		progMu.Unlock()
	}

	r.mu.Lock()
	defer r.mu.Unlock()
	if !keepGoing {
		for i, h := range hashes {
			if err := r.errs[h]; err != nil {
				cfg := cfgs[i]
				return fmt.Errorf("exp: run %.12s… (%v/%v %v seed %d): %w",
					h, cfg.Design, cfg.Org, cfg.Benchmarks, cfg.Seed, err)
			}
		}
		return nil
	}
	// Keep-going: report every distinct failure, in spec order. The
	// dedupe map is written and read in slice order, never ranged.
	var joined []error
	reported := make(map[string]bool, len(hashes))
	for i, h := range hashes {
		if err := r.errs[h]; err != nil && !reported[h] {
			reported[h] = true
			cfg := cfgs[i]
			joined = append(joined, fmt.Errorf("exp: run %.12s… (%v/%v %v seed %d): %w",
				h, cfg.Design, cfg.Org, cfg.Benchmarks, cfg.Seed, err))
		}
	}
	return errors.Join(joined...)
}

// result returns a memoized run (Ensure must have succeeded for cfg).
func (r *Runner) result(cfg config.Config) sim.Result {
	h := cfg.Hash()
	r.mu.Lock()
	defer r.mu.Unlock()
	res, ok := r.results[h]
	if !ok {
		panic(fmt.Sprintf("exp: result %.12s… not computed", h))
	}
	return res
}

// aloneIPC returns the alone IPC for one (benchmark, org) pair at
// replicate k through the memoized, cache-backed run path.
func (r *Runner) aloneIPC(bench string, org dcache.Org, k int) (float64, error) {
	res, err := r.Run(replicateCfg(r.aloneConfig(bench, org), k))
	if err != nil {
		return 0, err
	}
	return res.IPC[0], nil
}

// aloneIPCs returns per-core alone IPCs for a mix under an organization
// at replicate k.
func (r *Runner) aloneIPCs(mix workload.Mix, org dcache.Org, k int) ([]float64, error) {
	out := make([]float64, len(mix.Benchmarks))
	for i, b := range mix.Benchmarks {
		ipc, err := r.aloneIPC(b, org, k)
		if err != nil {
			return nil, err
		}
		out[i] = ipc
	}
	return out, nil
}

// aloneConfigs enumerates the alone runs behind every benchmark of the
// runner's mixes under an organization, across reps replicates.
func (r *Runner) aloneConfigs(org dcache.Org, reps int) []config.Config {
	seen := map[string]bool{}
	var cfgs []config.Config
	for _, m := range r.mixes {
		for _, b := range m.Benchmarks {
			if !seen[b] {
				seen[b] = true
				for k := 0; k < reps; k++ {
					cfgs = append(cfgs, replicateCfg(r.aloneConfig(b, org), k))
				}
			}
		}
	}
	return cfgs
}

// weightedSpeedup computes the weighted speedup of a memoized run over
// the alone IPCs of its mix at replicate k. The shared and alone runs
// use the same replicate index, so each replicate is an internally
// consistent speedup measurement.
func (r *Runner) weightedSpeedup(cfg config.Config, mix workload.Mix, k int) (float64, error) {
	alone, err := r.aloneIPCs(mix, cfg.Org, k)
	if err != nil {
		return 0, err
	}
	ws, err := stats.WeightedSpeedup(r.result(cfg).IPC, alone)
	if err != nil {
		return 0, fmt.Errorf("exp: weighted speedup (%v/%v %v seed %d): %w",
			cfg.Design, cfg.Org, cfg.Benchmarks, cfg.Seed, err)
	}
	return ws, nil
}
