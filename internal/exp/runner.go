// Package exp is the evaluation harness: a memoizing, cache-backed
// simulation runner plus declarative table specs that regenerate every
// table and figure of the paper (§V–§VI).
//
// A simulation run is a pure function of its config, so runs are
// content-addressed by config.Config.Hash(): the in-memory memo and the
// optional persistent rescache.Cache are both keyed by that hash. The
// figures share most of their underlying runs (e.g. Figs. 8, 10, 12, 14,
// and 16 all consume the same set-associative sweeps), so the whole
// evaluation costs one pass over the distinct configurations,
// parallelised across CPUs — and with a warm persistent cache, zero
// simulations at all.
package exp

import (
	"fmt"
	"runtime"
	"sync"

	"dcasim/internal/config"
	"dcasim/internal/core"
	"dcasim/internal/dcache"
	"dcasim/internal/rescache"
	"dcasim/internal/sim"
	"dcasim/internal/stats"
	"dcasim/internal/workload"
)

// Runner memoizes simulation runs for the experiment drivers.
type Runner struct {
	base    config.Config
	mixes   []workload.Mix
	workers int
	cache   *rescache.Cache

	mu       sync.Mutex
	results  map[string]sim.Result // by config.Config.Hash()
	errs     map[string]error
	inflight map[string]*call
	simRuns  int64 // simulations actually executed (not memo or cache hits)
	cacheErr error // first failed cache write, surfaced via CacheErr
}

// call is the in-flight record of one run (singleflight): concurrent
// requesters for the same config hash block on done and share the one
// result instead of duplicating a full simulation.
type call struct {
	done chan struct{}
	res  sim.Result
	err  error
}

// NewRunner builds a runner over a base config and workload mixes.
// workers <= 0 selects GOMAXPROCS.
func NewRunner(base config.Config, mixes []workload.Mix, workers int) *Runner {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Runner{
		base:     base,
		mixes:    mixes,
		workers:  workers,
		results:  make(map[string]sim.Result),
		errs:     make(map[string]error),
		inflight: make(map[string]*call),
	}
}

// SetCache attaches a persistent result cache, consulted before running
// any simulation and updated after each one.
func (r *Runner) SetCache(c *rescache.Cache) { r.cache = c }

// SimRuns returns how many simulations this runner actually executed —
// memo and persistent-cache hits excluded. A second evaluation pass
// against a warm cache must report zero.
func (r *Runner) SimRuns() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.simRuns
}

// CacheErr returns the first error encountered writing the persistent
// cache, if any. Cache write failures never fail a run — the result was
// already computed — but callers may want to warn that the next pass
// will not be warm.
func (r *Runner) CacheErr() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.cacheErr
}

// Mixes returns the workload mixes under evaluation.
func (r *Runner) Mixes() []workload.Mix { return r.mixes }

// BaseConfig returns a copy of the base configuration.
func (r *Runner) BaseConfig() config.Config { return r.base }

// mixConfig specializes a variant config to one mix: the mix's
// benchmarks and a per-mix seed derived from the base seed.
func mixConfig(variant config.Config, base config.Config, m workload.Mix) config.Config {
	cfg := variant
	// Copy: the config escapes into a concurrently running simulation,
	// and sharing the mix's backing array would alias every run started
	// from the same mix.
	cfg.Benchmarks = append([]string(nil), m.Benchmarks[:]...)
	cfg.Seed = base.Seed + uint64(m.ID)*1_000_003
	return cfg
}

// aloneConfig is the single-benchmark run whose IPC is the denominator
// of the weighted-speedup metric: the base config under the given
// organization, on the CD normalization baseline.
func (r *Runner) aloneConfig(bench string, org dcache.Org) config.Config {
	cfg := r.base
	cfg.Org = org
	cfg.Benchmarks = []string{bench}
	cfg.Design = core.CD
	cfg.Ctrl = nil
	return cfg
}

// Cacheable reports whether a config's result may live in the
// persistent cache: trace replay depends on the trace file's contents
// (which the config hash does not cover, only the path) and recording
// is a side effect a cache hit would silently skip, so neither is.
// Every cache front-end (the runner here, cmd/dcasim's single-run
// path) must route through this one predicate.
func Cacheable(cfg config.Config) bool {
	return cfg.ReplayPath() == "" && cfg.RecordPath == ""
}

// Run returns the simulation result for cfg, computing it at most once
// per runner: the in-memory memo, then the persistent cache, then an
// actual simulation. Concurrent callers for the same config hash join
// the in-flight computation (singleflight).
func (r *Runner) Run(cfg config.Config) (sim.Result, error) {
	h := cfg.Hash()
	r.mu.Lock()
	if res, ok := r.results[h]; ok {
		r.mu.Unlock()
		return res, nil
	}
	if err := r.errs[h]; err != nil {
		r.mu.Unlock()
		return sim.Result{}, err
	}
	if c, ok := r.inflight[h]; ok {
		r.mu.Unlock()
		<-c.done
		return c.res, c.err
	}
	c := &call{done: make(chan struct{})}
	r.inflight[h] = c
	r.mu.Unlock()

	fromCache := false
	if r.cache != nil && Cacheable(cfg) {
		// Validate before consulting the cache: a bad config must fail
		// loudly even if a stale entry happens to exist under its hash.
		if c.err = cfg.Validate(); c.err == nil {
			c.res, fromCache = r.cache.Get(h)
		}
	}
	if !fromCache && c.err == nil {
		c.res, c.err = sim.Run(cfg)
	}

	r.mu.Lock()
	if c.err != nil {
		r.errs[h] = c.err
	} else {
		r.results[h] = c.res
	}
	if !fromCache && c.err == nil {
		r.simRuns++
	}
	r.mu.Unlock()
	if !fromCache && c.err == nil && r.cache != nil && Cacheable(cfg) {
		if err := r.cache.Put(h, c.res); err != nil {
			r.mu.Lock()
			if r.cacheErr == nil {
				r.cacheErr = err
			}
			r.mu.Unlock()
		}
	}
	r.mu.Lock()
	delete(r.inflight, h)
	r.mu.Unlock()
	close(c.done)
	return c.res, c.err
}

// Ensure computes every missing config, bounded-parallel across runs,
// and returns the first error in the order given. Duplicates are
// launched once: a joiner blocked on the singleflight would otherwise
// hold a worker slot for the whole in-flight simulation.
func (r *Runner) Ensure(cfgs []config.Config) error {
	hashes := make([]string, len(cfgs))
	var distinct []config.Config
	seen := make(map[string]bool, len(cfgs))
	for i, cfg := range cfgs {
		hashes[i] = cfg.Hash()
		if !seen[hashes[i]] {
			seen[hashes[i]] = true
			distinct = append(distinct, cfg)
		}
	}
	sem := make(chan struct{}, r.workers)
	var wg sync.WaitGroup
	for _, cfg := range distinct {
		wg.Add(1)
		go func(cfg config.Config) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			r.Run(cfg)
		}(cfg)
	}
	wg.Wait()
	r.mu.Lock()
	defer r.mu.Unlock()
	for i, h := range hashes {
		if err := r.errs[h]; err != nil {
			cfg := cfgs[i]
			return fmt.Errorf("exp: run %.12s… (%v/%v %v seed %d): %w",
				h, cfg.Design, cfg.Org, cfg.Benchmarks, cfg.Seed, err)
		}
	}
	return nil
}

// result returns a memoized run (Ensure must have succeeded for cfg).
func (r *Runner) result(cfg config.Config) sim.Result {
	h := cfg.Hash()
	r.mu.Lock()
	defer r.mu.Unlock()
	res, ok := r.results[h]
	if !ok {
		panic(fmt.Sprintf("exp: result %.12s… not computed", h))
	}
	return res
}

// aloneIPC returns the alone IPC for one (benchmark, org) pair through
// the memoized, cache-backed run path.
func (r *Runner) aloneIPC(bench string, org dcache.Org) (float64, error) {
	res, err := r.Run(r.aloneConfig(bench, org))
	if err != nil {
		return 0, err
	}
	return res.IPC[0], nil
}

// aloneIPCs returns per-core alone IPCs for a mix under an organization.
func (r *Runner) aloneIPCs(mix workload.Mix, org dcache.Org) ([]float64, error) {
	out := make([]float64, len(mix.Benchmarks))
	for i, b := range mix.Benchmarks {
		ipc, err := r.aloneIPC(b, org)
		if err != nil {
			return nil, err
		}
		out[i] = ipc
	}
	return out, nil
}

// aloneConfigs enumerates the alone runs behind every benchmark of the
// runner's mixes under an organization.
func (r *Runner) aloneConfigs(org dcache.Org) []config.Config {
	seen := map[string]bool{}
	var cfgs []config.Config
	for _, m := range r.mixes {
		for _, b := range m.Benchmarks {
			if !seen[b] {
				seen[b] = true
				cfgs = append(cfgs, r.aloneConfig(b, org))
			}
		}
	}
	return cfgs
}

// weightedSpeedup computes the weighted speedup of a memoized run over
// the alone IPCs of its mix.
func (r *Runner) weightedSpeedup(cfg config.Config, mix workload.Mix) (float64, error) {
	alone, err := r.aloneIPCs(mix, cfg.Org)
	if err != nil {
		return 0, err
	}
	return stats.WeightedSpeedup(r.result(cfg).IPC, alone), nil
}
