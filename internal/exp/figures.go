package exp

import (
	"fmt"

	"dcasim/internal/core"
	"dcasim/internal/dcache"
	"dcasim/internal/stats"
	"dcasim/internal/workload"
)

var designs = []core.Design{core.CD, core.ROD, core.DCA}
var orgs = []dcache.Org{dcache.SetAssoc, dcache.DirectMapped}

// keysFor enumerates the runs needed for an organization across designs,
// with and without remapping as requested.
func (r *Runner) keysFor(org dcache.Org, remaps []bool, lee bool) []runKey {
	var keys []runKey
	for _, m := range r.mixes {
		for _, d := range designs {
			for _, rm := range remaps {
				keys = append(keys, runKey{mixID: m.ID, org: org, design: d, remap: rm, lee: lee})
			}
		}
	}
	return keys
}

// normalizedWS returns, per mix, the weighted speedup of (design, remap)
// normalized to CD without remapping — the paper's normalization for
// Figs. 8–11.
func (r *Runner) normalizedWS(org dcache.Org, design core.Design, remap, lee bool) ([]float64, error) {
	var out []float64
	for _, m := range r.mixes {
		k := runKey{mixID: m.ID, org: org, design: design, remap: remap, lee: lee}
		base := runKey{mixID: m.ID, org: org, design: core.CD, lee: lee}
		ws, err := r.weightedSpeedup(k)
		if err != nil {
			return nil, err
		}
		wsBase, err := r.weightedSpeedup(base)
		if err != nil {
			return nil, err
		}
		out = append(out, ws/wsBase)
	}
	return out, nil
}

// Fig8 reproduces the average normalized weighted speedup of CD, ROD, and
// DCA for both organizations (no remapping), normalized to CD.
func (r *Runner) Fig8() (*stats.Table, error) {
	t := stats.NewTable("org", "CD", "ROD", "DCA")
	for _, org := range orgs {
		if err := r.ensure(r.keysFor(org, []bool{false}, false)); err != nil {
			return nil, err
		}
		if err := r.ensureAlone(org); err != nil {
			return nil, err
		}
		row := []interface{}{org.String()}
		for _, d := range designs {
			ws, err := r.normalizedWS(org, d, false, false)
			if err != nil {
				return nil, err
			}
			row = append(row, stats.GeoMean(ws))
		}
		t.AddRowf(row...)
	}
	return t, nil
}

// Fig9 reproduces the average speedups with the XOR remapping scheme,
// still normalized to CD without remapping.
func (r *Runner) Fig9() (*stats.Table, error) {
	t := stats.NewTable("org", "XOR+CD", "XOR+ROD", "XOR+DCA")
	for _, org := range orgs {
		if err := r.ensure(r.keysFor(org, []bool{false, true}, false)); err != nil {
			return nil, err
		}
		if err := r.ensureAlone(org); err != nil {
			return nil, err
		}
		row := []interface{}{org.String()}
		for _, d := range designs {
			ws, err := r.normalizedWS(org, d, true, false)
			if err != nil {
				return nil, err
			}
			row = append(row, stats.GeoMean(ws))
		}
		t.AddRowf(row...)
	}
	return t, nil
}

// perWorkload builds the per-mix speedup table of Figs. 10 (SA) and 11
// (DM): all six designs normalized to CD without remapping.
func (r *Runner) perWorkload(org dcache.Org) (*stats.Table, error) {
	if err := r.ensure(r.keysFor(org, []bool{false, true}, false)); err != nil {
		return nil, err
	}
	if err := r.ensureAlone(org); err != nil {
		return nil, err
	}
	t := stats.NewTable("mix", "CD", "ROD", "DCA", "XOR+CD", "XOR+ROD", "XOR+DCA")
	series := make(map[string][]float64)
	for _, rm := range []bool{false, true} {
		for _, d := range designs {
			name := d.String()
			if rm {
				name = "XOR+" + name
			}
			ws, err := r.normalizedWS(org, d, rm, false)
			if err != nil {
				return nil, err
			}
			series[name] = ws
		}
	}
	for i, m := range r.mixes {
		t.AddRowf(fmt.Sprintf("%d(%s)", m.ID, m.Benchmarks[0]),
			series["CD"][i], series["ROD"][i], series["DCA"][i],
			series["XOR+CD"][i], series["XOR+ROD"][i], series["XOR+DCA"][i])
	}
	t.AddRowf("gmean",
		stats.GeoMean(series["CD"]), stats.GeoMean(series["ROD"]), stats.GeoMean(series["DCA"]),
		stats.GeoMean(series["XOR+CD"]), stats.GeoMean(series["XOR+ROD"]), stats.GeoMean(series["XOR+DCA"]))
	return t, nil
}

// Fig10 is the per-workload speedup table for the set-associative cache.
func (r *Runner) Fig10() (*stats.Table, error) { return r.perWorkload(dcache.SetAssoc) }

// Fig11 is the per-workload speedup table for the direct-mapped cache.
func (r *Runner) Fig11() (*stats.Table, error) { return r.perWorkload(dcache.DirectMapped) }

// missLatency builds the L2-miss-latency improvement table of Figs. 12
// (SA) and 13 (DM): mean improvement over CD-without-remapping, in
// percent (higher is better).
func (r *Runner) missLatency(org dcache.Org) (*stats.Table, error) {
	if err := r.ensure(r.keysFor(org, []bool{false, true}, false)); err != nil {
		return nil, err
	}
	t := stats.NewTable("design", "L2 miss latency improvement (%)")
	base := make([]float64, len(r.mixes))
	for i, m := range r.mixes {
		base[i] = r.result(runKey{mixID: m.ID, org: org, design: core.CD}).L2MissLatencyNS
	}
	for _, rm := range []bool{false, true} {
		for _, d := range designs {
			name := d.String()
			if rm {
				name = "XOR+" + name
			}
			var imps []float64
			for i, m := range r.mixes {
				lat := r.result(runKey{mixID: m.ID, org: org, design: d, remap: rm}).L2MissLatencyNS
				imps = append(imps, 100*(base[i]-lat)/base[i])
			}
			t.AddRowf(name, stats.Mean(imps))
		}
	}
	return t, nil
}

// Fig12 is the set-associative L2 miss latency improvement.
func (r *Runner) Fig12() (*stats.Table, error) { return r.missLatency(dcache.SetAssoc) }

// Fig13 is the direct-mapped L2 miss latency improvement.
func (r *Runner) Fig13() (*stats.Table, error) { return r.missLatency(dcache.DirectMapped) }

// turnarounds builds the accesses-per-turnaround table of Figs. 14/15
// (no remapping — the paper observes remapping does not change it).
func (r *Runner) turnarounds(org dcache.Org) (*stats.Table, error) {
	if err := r.ensure(r.keysFor(org, []bool{false}, false)); err != nil {
		return nil, err
	}
	t := stats.NewTable("design", "accesses per turnaround")
	for _, d := range designs {
		var vals []float64
		for _, m := range r.mixes {
			vals = append(vals, r.result(runKey{mixID: m.ID, org: org, design: d}).AccessesPerTurnaround())
		}
		t.AddRowf(d.String(), stats.Mean(vals))
	}
	return t, nil
}

// Fig14 is accesses per turnaround, set-associative.
func (r *Runner) Fig14() (*stats.Table, error) { return r.turnarounds(dcache.SetAssoc) }

// Fig15 is accesses per turnaround, direct-mapped.
func (r *Runner) Fig15() (*stats.Table, error) { return r.turnarounds(dcache.DirectMapped) }

// rowHits builds the read row-buffer hit-rate table of Figs. 16/17.
func (r *Runner) rowHits(org dcache.Org) (*stats.Table, error) {
	if err := r.ensure(r.keysFor(org, []bool{false, true}, false)); err != nil {
		return nil, err
	}
	t := stats.NewTable("design", "row buffer hit rate")
	for _, rm := range []bool{false, true} {
		for _, d := range designs {
			name := d.String()
			if rm {
				name = "XOR+" + name
			}
			var vals []float64
			for _, m := range r.mixes {
				vals = append(vals, r.result(runKey{mixID: m.ID, org: org, design: d, remap: rm}).ReadRowHitRate())
			}
			t.AddRowf(name, stats.Mean(vals))
		}
	}
	return t, nil
}

// Fig16 is the read row-buffer hit rate, set-associative.
func (r *Runner) Fig16() (*stats.Table, error) { return r.rowHits(dcache.SetAssoc) }

// Fig17 is the read row-buffer hit rate, direct-mapped.
func (r *Runner) Fig17() (*stats.Table, error) { return r.rowHits(dcache.DirectMapped) }

// Fig18Sizes are the SRAM tag-cache capacities swept by Fig. 18.
var Fig18Sizes = []int{64, 128, 192, 256, 384, 512}

// Fig18 reproduces the tag-cache study: DRAM tag accesses for various
// tag-cache sizes on the set-associative organization, normalized to the
// no-tag-cache baseline. The paper's observation is that a small tag
// cache *increases* DRAM tag traffic (≈2× at 192 KB) because tag blocks
// have little temporal locality and the row-granular prefetch multiplies
// fetches.
func (r *Runner) Fig18() (*stats.Table, error) {
	org := dcache.SetAssoc
	var keys []runKey
	for _, m := range r.mixes {
		keys = append(keys, runKey{mixID: m.ID, org: org, design: core.CD})
		for _, kb := range Fig18Sizes {
			keys = append(keys, runKey{mixID: m.ID, org: org, design: core.CD, tagKB: kb})
		}
	}
	if err := r.ensure(keys); err != nil {
		return nil, err
	}
	t := stats.NewTable("tag cache", "normalized DRAM tag accesses", "tag cache hit rate")
	for _, kb := range Fig18Sizes {
		var ratios, hitRates []float64
		for _, m := range r.mixes {
			base := r.result(runKey{mixID: m.ID, org: org, design: core.CD})
			with := r.result(runKey{mixID: m.ID, org: org, design: core.CD, tagKB: kb})
			if base.DRAMTagAccesses > 0 {
				ratios = append(ratios, float64(with.DRAMTagAccesses)/float64(base.DRAMTagAccesses))
			}
			if with.TagCacheLookups > 0 {
				hitRates = append(hitRates, float64(with.TagCacheHits)/float64(with.TagCacheLookups))
			}
		}
		t.AddRowf(fmt.Sprintf("%dKB", kb), stats.Mean(ratios), stats.Mean(hitRates))
	}
	return t, nil
}

// Fig19 reproduces the Lee DRAM-aware writeback study on the
// direct-mapped organization: CD, ROD, and DCA with the Lee policy
// enabled in the L2, normalized to CD+LEE. The paper reports DCA
// continuing to outperform CD by ≈7 % under this policy.
func (r *Runner) Fig19() (*stats.Table, error) {
	org := dcache.DirectMapped
	if err := r.ensure(r.keysFor(org, []bool{false}, true)); err != nil {
		return nil, err
	}
	if err := r.ensureAlone(org); err != nil {
		return nil, err
	}
	t := stats.NewTable("design", "speedup vs LEE+CD")
	for _, d := range designs {
		ws, err := r.normalizedWS(org, d, false, true)
		if err != nil {
			return nil, err
		}
		t.AddRowf("LEE+"+d.String(), stats.GeoMean(ws))
	}
	return t, nil
}

// TableI renders the workload groupings.
func TableI(mixes []workload.Mix) *stats.Table {
	t := stats.NewTable("mix", "core0", "core1", "core2", "core3")
	for _, m := range mixes {
		t.AddRowf(m.ID, m.Benchmarks[0], m.Benchmarks[1], m.Benchmarks[2], m.Benchmarks[3])
	}
	return t
}

// TableII renders the system parameters of a configuration.
func (r *Runner) TableII() *stats.Table {
	c := r.base
	t := stats.NewTable("parameter", "value")
	t.AddRowf("processor", fmt.Sprintf("%.0f GHz, %d-wide, %d ROB entries, %d MSHRs",
		c.CPU.FreqGHz, c.CPU.Width, c.CPU.ROB, c.CPU.MSHRs))
	t.AddRowf("L1", fmt.Sprintf("%d KB / %d-way", c.L1Bytes>>10, c.L1Ways))
	t.AddRowf("L2", fmt.Sprintf("%d MB / %d-way, %v hit", c.L2Bytes>>20, c.L2Ways, c.L2HitLat))
	t.AddRowf("DRAM cache", fmt.Sprintf("%d MB, %d channels x %d banks, %d B rows",
		c.CacheSizeBytes>>20, c.Channels, c.Banks, c.RowBytes))
	t.AddRowf("timing", fmt.Sprintf("tRCD/tCAS/tRP/tRAS %v/%v/%v/%v",
		c.Timing.TRCD, c.Timing.TCAS, c.Timing.TRP, c.Timing.TRAS))
	t.AddRowf("turnaround", fmt.Sprintf("tWTR %v, tRTW %v, tWR %v, tBURST %v",
		c.Timing.TWTR, c.Timing.TRTW, c.Timing.TWR, c.Timing.TBurst))
	t.AddRowf("main memory", fmt.Sprintf("%v latency, %v per block",
		c.MainMem.Latency, c.MainMem.BlockTime))
	cc := c.CtrlConfig()
	t.AddRowf("read queue", fmt.Sprintf("%d entries", cc.ReadQueueCap))
	t.AddRowf("write queue", fmt.Sprintf("%d entries, flush %.0f%%/%.0f%%",
		cc.WriteQueueCap, 100*cc.WriteFlushLow, 100*cc.WriteFlushHigh))
	t.AddRowf("run", fmt.Sprintf("%d instr/core, %d warm memops/core, WS x%.2f",
		c.InstrPerCore, c.WarmMemops, c.WSScale))
	return t
}
