package exp

import (
	"encoding/json"
	"fmt"

	"dcasim/internal/core"
	"dcasim/internal/dcache"
	"dcasim/internal/stats"
	"dcasim/internal/workload"
)

var designs = []core.Design{core.CD, core.ROD, core.DCA}
var orgs = []dcache.Org{dcache.SetAssoc, dcache.DirectMapped}

// raw builds a JSON patch literal.
func raw(format string, args ...interface{}) json.RawMessage {
	return json.RawMessage(fmt.Sprintf(format, args...))
}

// pins holds the paper-baseline values of every dimension the evaluation
// sweeps. Each figure's table patch starts from these so a figure always
// runs the paper's machine regardless of what the base config carries;
// rows and columns then override the dimensions that figure studies —
// exactly the fields the old hand-rolled run keys always set.
const pins = `"XORRemap":false,"LeeWriteback":false,"TagCacheKB":0,"Algorithm":"BLISS","BEARProbe":false`

// normToCD is the paper's normalization baseline for every speedup
// figure: the Conventional Design without remapping.
var normToCD = raw(`{"Design":"CD","XORRemap":false}`)

// designCols builds one weighted-speedup column per design, normalized
// to CD, with an optional remapping pass and header prefix ("XOR+").
func designCols(remaps []bool) []ColSpec {
	var cols []ColSpec
	for _, rm := range remaps {
		for _, d := range designs {
			name := d.String()
			if rm {
				name = "XOR+" + name
			}
			cols = append(cols, ColSpec{
				Header:   name,
				Patch:    raw(`{"Design":%q,"XORRemap":%v}`, d.String(), rm),
				Metric:   MetricWS,
				Agg:      "geomean",
				Baseline: normToCD,
			})
		}
	}
	return cols
}

// designRemapRows builds one row per (remap, design) variant carrying a
// single metric column's value — the layout of Figs. 12–17.
func designRemapRows(remaps []bool) []RowSpec {
	var rows []RowSpec
	for _, rm := range remaps {
		for _, d := range designs {
			name := d.String()
			if rm {
				name = "XOR+" + name
			}
			rows = append(rows, RowSpec{
				Labels: []string{name},
				Patch:  raw(`{"Design":%q,"XORRemap":%v}`, d.String(), rm),
			})
		}
	}
	return rows
}

// orgRows maps both organizations to table rows.
func orgRows() []RowSpec {
	var rows []RowSpec
	for _, o := range orgs {
		rows = append(rows, RowSpec{Labels: []string{o.String()}, Patch: raw(`{"Org":%q}`, o.String())})
	}
	return rows
}

// perOrg stamps two copies of a per-organization figure spec, one per
// organization (the paper presents SA and DM variants side by side).
// The template's Patch slot belongs to perOrg (org + the paper pins);
// a figure needing more table-wide overrides (like fig19's Lee flag)
// writes its spec by hand, so a non-empty template patch is a
// programming error rather than something to silently discard.
func perOrg(names, titles [2]string, spec TableSpec) []TableSpec {
	if len(spec.Patch) != 0 {
		panic("exp: perOrg template must not set Patch — it is replaced per organization")
	}
	out := make([]TableSpec, 2)
	for i, o := range orgs {
		s := spec
		s.Name, s.Title = names[i], titles[i]
		s.Patch = raw(`{"Org":%q,%s}`, o.String(), pins)
		out[i] = s
	}
	return out
}

// Fig18Sizes are the SRAM tag-cache capacities swept by Fig. 18.
var Fig18Sizes = []int{64, 128, 192, 256, 384, 512}

func fig18Rows() []RowSpec {
	var rows []RowSpec
	for _, kb := range Fig18Sizes {
		rows = append(rows, RowSpec{
			Labels: []string{fmt.Sprintf("%dKB", kb)},
			Patch:  raw(`{"TagCacheKB":%d}`, kb),
		})
	}
	return rows
}

func fig19Rows() []RowSpec {
	var rows []RowSpec
	for _, d := range designs {
		rows = append(rows, RowSpec{
			Labels: []string{"LEE+" + d.String()},
			Patch:  raw(`{"Design":%q}`, d.String()),
		})
	}
	return rows
}

// Figures is the declarative registry of every evaluation table: the
// paper's Figs. 8–19 plus the extension studies of extensions.go, in
// presentation order. Each entry is pure data interpreted by
// Runner.Table, so adding a figure is adding a spec here (or loading one
// from JSON), not writing a new driver.
var Figures = buildFigures()

func buildFigures() []TableSpec {
	var specs []TableSpec
	add := func(s ...TableSpec) { specs = append(specs, s...) }

	add(TableSpec{
		Name:    "fig8",
		Title:   "Fig. 8: average speedup (normalized to CD)",
		Headers: []string{"org"},
		Patch:   raw(`{%s}`, pins),
		Rows:    orgRows(),
		Cols:    designCols([]bool{false}),
	})
	add(TableSpec{
		Name:    "fig9",
		Title:   "Fig. 9: average speedup with remapping (normalized to CD w/o remap)",
		Headers: []string{"org"},
		Patch:   raw(`{%s}`, pins),
		Rows:    orgRows(),
		Cols:    designCols([]bool{true}),
	})
	add(perOrg([2]string{"fig10", "fig11"}, [2]string{
		"Fig. 10: per-workload speedup, set-associative",
		"Fig. 11: per-workload speedup, direct-mapped",
	}, TableSpec{
		Headers: []string{"mix"},
		PerMix:  true,
		Rows:    []RowSpec{{}},
		Cols:    designCols([]bool{false, true}),
	})...)
	add(perOrg([2]string{"fig12", "fig13"}, [2]string{
		"Fig. 12: L2 miss latency improvement, set-associative",
		"Fig. 13: L2 miss latency improvement, direct-mapped",
	}, TableSpec{
		Headers: []string{"design"},
		Rows:    designRemapRows([]bool{false, true}),
		Cols: []ColSpec{{
			Header:   "L2 miss latency improvement (%)",
			Metric:   "l2MissLatencyNS",
			Agg:      "mean",
			Baseline: normToCD,
			Op:       "pctImprove",
		}},
	})...)
	add(perOrg([2]string{"fig14", "fig15"}, [2]string{
		"Fig. 14: accesses per turnaround, set-associative",
		"Fig. 15: accesses per turnaround, direct-mapped",
	}, TableSpec{
		Headers: []string{"design"},
		Rows:    designRemapRows([]bool{false}),
		Cols: []ColSpec{{
			Header: "accesses per turnaround",
			Metric: "accessesPerTurnaround",
			Agg:    "mean",
		}},
	})...)
	add(perOrg([2]string{"fig16", "fig17"}, [2]string{
		"Fig. 16: row buffer hit rate, set-associative",
		"Fig. 17: row buffer hit rate, direct-mapped",
	}, TableSpec{
		Headers: []string{"design"},
		Rows:    designRemapRows([]bool{false, true}),
		Cols: []ColSpec{{
			Header: "row buffer hit rate",
			Metric: "readRowHitRate",
			Agg:    "mean",
		}},
	})...)
	// Fig. 18, the tag-cache study: DRAM tag accesses for various SRAM
	// tag-cache sizes on the set-associative organization, normalized to
	// the no-tag-cache baseline. The paper's observation is that a small
	// tag cache *increases* DRAM tag traffic (≈2× at 192 KB) because tag
	// blocks have little temporal locality and the row-granular prefetch
	// multiplies fetches.
	add(TableSpec{
		Name:    "fig18",
		Title:   "Fig. 18: DRAM tag accesses vs tag cache size",
		Headers: []string{"tag cache"},
		Patch:   raw(`{"Org":"set-assoc","Design":"CD",%s}`, pins),
		Rows:    fig18Rows(),
		Cols: []ColSpec{
			{
				Header:   "normalized DRAM tag accesses",
				Metric:   "dramTagAccesses",
				Agg:      "mean",
				Baseline: raw(`{"TagCacheKB":0}`),
				Op:       "ratio",
			},
			{
				Header: "tag cache hit rate",
				Metric: "tagCacheHitRate",
				Agg:    "mean",
			},
		},
	})
	// Fig. 19, the Lee DRAM-aware writeback study on the direct-mapped
	// organization: CD, ROD, and DCA with the Lee policy enabled in the
	// L2, normalized to CD+LEE. The paper reports DCA continuing to
	// outperform CD by ≈7 % under this policy.
	add(TableSpec{
		Name:    "fig19",
		Title:   "Fig. 19: speedup under Lee DRAM-aware writeback (direct-mapped)",
		Headers: []string{"design"},
		Patch:   raw(`{"Org":"direct-mapped","XORRemap":false,"LeeWriteback":true,"TagCacheKB":0,"Algorithm":"BLISS","BEARProbe":false}`),
		Rows:    fig19Rows(),
		Cols: []ColSpec{{
			Header:   "speedup vs LEE+CD",
			Metric:   MetricWS,
			Agg:      "geomean",
			Baseline: raw(`{"Design":"CD"}`),
		}},
	})
	add(extensionSpecs()...)
	return specs
}

// Fig8 reproduces the average normalized weighted speedup of CD, ROD, and
// DCA for both organizations (no remapping), normalized to CD.
func (r *Runner) Fig8() (*stats.Table, error) { return r.Figure("fig8") }

// Fig9 reproduces the average speedups with the XOR remapping scheme,
// still normalized to CD without remapping.
func (r *Runner) Fig9() (*stats.Table, error) { return r.Figure("fig9") }

// Fig10 is the per-workload speedup table for the set-associative cache.
func (r *Runner) Fig10() (*stats.Table, error) { return r.Figure("fig10") }

// Fig11 is the per-workload speedup table for the direct-mapped cache.
func (r *Runner) Fig11() (*stats.Table, error) { return r.Figure("fig11") }

// Fig12 is the set-associative L2 miss latency improvement.
func (r *Runner) Fig12() (*stats.Table, error) { return r.Figure("fig12") }

// Fig13 is the direct-mapped L2 miss latency improvement.
func (r *Runner) Fig13() (*stats.Table, error) { return r.Figure("fig13") }

// Fig14 is accesses per turnaround, set-associative.
func (r *Runner) Fig14() (*stats.Table, error) { return r.Figure("fig14") }

// Fig15 is accesses per turnaround, direct-mapped.
func (r *Runner) Fig15() (*stats.Table, error) { return r.Figure("fig15") }

// Fig16 is the read row-buffer hit rate, set-associative.
func (r *Runner) Fig16() (*stats.Table, error) { return r.Figure("fig16") }

// Fig17 is the read row-buffer hit rate, direct-mapped.
func (r *Runner) Fig17() (*stats.Table, error) { return r.Figure("fig17") }

// Fig18 is the tag-cache study (see the fig18 spec).
func (r *Runner) Fig18() (*stats.Table, error) { return r.Figure("fig18") }

// Fig19 is the Lee DRAM-aware writeback study (see the fig19 spec).
func (r *Runner) Fig19() (*stats.Table, error) { return r.Figure("fig19") }

// TableI renders the workload groupings.
func TableI(mixes []workload.Mix) *stats.Table {
	t := stats.NewTable("mix", "core0", "core1", "core2", "core3")
	for _, m := range mixes {
		t.AddRowf(m.ID, m.Benchmarks[0], m.Benchmarks[1], m.Benchmarks[2], m.Benchmarks[3])
	}
	return t
}

// TableII renders the system parameters of a configuration.
func (r *Runner) TableII() *stats.Table {
	c := r.base
	t := stats.NewTable("parameter", "value")
	t.AddRowf("processor", fmt.Sprintf("%.0f GHz, %d-wide, %d ROB entries, %d MSHRs",
		c.CPU.FreqGHz, c.CPU.Width, c.CPU.ROB, c.CPU.MSHRs))
	t.AddRowf("L1", fmt.Sprintf("%d KB / %d-way", c.L1Bytes>>10, c.L1Ways))
	t.AddRowf("L2", fmt.Sprintf("%d MB / %d-way, %v hit", c.L2Bytes>>20, c.L2Ways, c.L2HitLat))
	t.AddRowf("DRAM cache", fmt.Sprintf("%d MB, %d channels x %d banks, %d B rows",
		c.CacheSizeBytes>>20, c.Channels, c.Banks, c.RowBytes))
	t.AddRowf("timing", fmt.Sprintf("tRCD/tCAS/tRP/tRAS %v/%v/%v/%v",
		c.Timing.TRCD, c.Timing.TCAS, c.Timing.TRP, c.Timing.TRAS))
	t.AddRowf("turnaround", fmt.Sprintf("tWTR %v, tRTW %v, tWR %v, tBURST %v",
		c.Timing.TWTR, c.Timing.TRTW, c.Timing.TWR, c.Timing.TBurst))
	t.AddRowf("main memory", fmt.Sprintf("%v latency, %v per block",
		c.MainMem.Latency, c.MainMem.BlockTime))
	cc := c.CtrlConfig()
	t.AddRowf("read queue", fmt.Sprintf("%d entries", cc.ReadQueueCap))
	t.AddRowf("write queue", fmt.Sprintf("%d entries, flush %.0f%%/%.0f%%",
		cc.WriteQueueCap, 100*cc.WriteFlushLow, 100*cc.WriteFlushHigh))
	t.AddRowf("run", fmt.Sprintf("%d instr/core, %d warm memops/core, WS x%.2f",
		c.InstrPerCore, c.WarmMemops, c.WSScale))
	return t
}
