package exp

import (
	"strings"
	"testing"

	"dcasim/internal/simtime"
)

func TestTWTRKeySharesBaseline(t *testing.T) {
	if twtrKey(simtime.FromNS(5)) != 0 {
		t.Fatal("the Table II tWTR must map to the baseline key for run reuse")
	}
	if twtrKey(simtime.FromNS(10)) == 0 {
		t.Fatal("non-default tWTR must get its own key")
	}
}

func TestTWTRSweep(t *testing.T) {
	r := testRunner(t, 1)
	tbl, err := r.TWTRSweep()
	if err != nil {
		t.Fatal(err)
	}
	out := tbl.String()
	for _, want := range []string{"2.5ns", "5ns", "10ns"} {
		if !strings.Contains(out, want) {
			t.Errorf("TWTR sweep missing %s row:\n%s", want, out)
		}
	}
}

func TestSchedulerStudy(t *testing.T) {
	r := testRunner(t, 1)
	tbl, err := r.SchedulerStudy()
	if err != nil {
		t.Fatal(err)
	}
	out := tbl.String()
	for _, want := range []string{"BLISS", "FR-FCFS", "FCFS"} {
		if !strings.Contains(out, want) {
			t.Errorf("scheduler study missing %s:\n%s", want, out)
		}
	}
}

func TestBEARStudy(t *testing.T) {
	r := testRunner(t, 1)
	tbl, err := r.BEARStudy()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tbl.String(), "BEAR+DCA") {
		t.Fatalf("BEAR study missing rows:\n%s", tbl)
	}
}
