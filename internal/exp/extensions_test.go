package exp

import (
	"strings"
	"testing"

	"dcasim/internal/config"
	"dcasim/internal/simtime"
)

// TestTWTRBaselineSharesRuns: patching the Table II tWTR value must
// produce a config that hashes identically to the untouched base, so the
// twtr study's 5 ns column reuses the main figures' runs instead of
// re-simulating them.
func TestTWTRBaselineSharesRuns(t *testing.T) {
	base := config.Test()
	patched, err := base.Patch(raw(`{"Timing":{"TWTR":%d}}`, int64(simtime.FromNS(5))))
	if err != nil {
		t.Fatal(err)
	}
	if patched.Hash() != base.Hash() {
		t.Fatal("the Table II tWTR patch must hash to the baseline config for run reuse")
	}
	other, err := base.Patch(raw(`{"Timing":{"TWTR":%d}}`, int64(simtime.FromNS(10))))
	if err != nil {
		t.Fatal(err)
	}
	if other.Hash() == base.Hash() {
		t.Fatal("a non-default tWTR must hash differently")
	}
}

func TestTWTRSweep(t *testing.T) {
	r := testRunner(t, 1)
	tbl, err := r.TWTRSweep()
	if err != nil {
		t.Fatal(err)
	}
	out := tbl.String()
	for _, want := range []string{"2.5ns", "5ns", "10ns"} {
		if !strings.Contains(out, want) {
			t.Errorf("TWTR sweep missing %s row:\n%s", want, out)
		}
	}
}

func TestSchedulerStudy(t *testing.T) {
	r := testRunner(t, 1)
	tbl, err := r.SchedulerStudy()
	if err != nil {
		t.Fatal(err)
	}
	out := tbl.String()
	for _, want := range []string{"BLISS", "FR-FCFS", "FCFS"} {
		if !strings.Contains(out, want) {
			t.Errorf("scheduler study missing %s:\n%s", want, out)
		}
	}
}

func TestBEARStudy(t *testing.T) {
	r := testRunner(t, 1)
	tbl, err := r.BEARStudy()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tbl.String(), "BEAR+DCA") {
		t.Fatalf("BEAR study missing rows:\n%s", tbl)
	}
}
