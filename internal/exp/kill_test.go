package exp

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"dcasim/internal/config"
	"dcasim/internal/rescache"
)

// killChildEnv points a re-executed child test process at the shared
// cache directory; empty (the normal case) skips the child body.
const killChildEnv = "DCASIM_KILL_CHILD_DIR"

// killTuning is the shrunk claim-liveness timing both the child and the
// survivor use, so staleness is observable in milliseconds.
var killTuning = rescache.Tuning{
	StaleAfter: 400 * time.Millisecond,
	Heartbeat:  80 * time.Millisecond,
	Poll:       5 * time.Millisecond,
}

// killSweepSpec is the sweep the killed child and the survivor share:
// one seed axis of distinct points, so progress is simply "entries in
// the cache directory".
func killSweepSpec() SweepSpec {
	axis := SweepAxis{Name: "seed"}
	for seed := 101; seed <= 116; seed++ {
		axis.Values = append(axis.Values, SweepPoint{
			Label: fmt.Sprint(seed),
			Set:   raw(`{"Seed":%d}`, seed),
		})
	}
	return SweepSpec{
		Schema:  config.SchemaVersion,
		Name:    "kill-recovery",
		Scale:   "test",
		Base:    raw(`{"Benchmarks":["mcf","lbm","libquantum","omnetpp"]}`),
		Axes:    []SweepAxis{axis},
		Metrics: []string{"totalNS"},
	}
}

// TestKillRecoveryChild is the victim body of TestKillRecovery, run in
// a separate process (the parent re-executes the test binary with
// killChildEnv set) so it can be SIGKILLed mid-sweep with its claims
// left orphaned on disk. In a normal test run it skips immediately.
func TestKillRecoveryChild(t *testing.T) {
	dir := os.Getenv(killChildEnv)
	if dir == "" {
		t.Skip("child body; driven by TestKillRecovery")
	}
	cache, err := rescache.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	cache.Tune(killTuning)
	if _, _, err := RunSweepOpts(killSweepSpec(), SweepOpts{Workers: 2, Cache: cache}); err != nil {
		t.Fatal(err)
	}
}

// countSuffix counts dir entries with the given suffix, excluding any
// longer suffix in except (so ".claim" does not count ".claim.break").
func countSuffix(t *testing.T, dir, suffix, except string) int {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), suffix) && (except == "" || !strings.HasSuffix(e.Name(), except)) {
			n++
		}
	}
	return n
}

// TestKillRecovery is the crash-safety integration test: a child
// process is SIGKILLed in the middle of a sweep — orphaning its claim
// files with no chance to clean up — and a survivor sharing the cache
// directory must then complete the sweep, reusing every entry the
// victim persisted and breaking the orphaned claims instead of waiting
// on a dead process.
func TestKillRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns and kills a child test process")
	}

	// Kill the child only while it provably holds a claim; if the claim
	// released in the instant between observing it and the kill landing,
	// retry with a fresh directory rather than flake.
	var dir string
	var orphans int
	for attempt := 1; ; attempt++ {
		dir = t.TempDir()
		cmd := exec.Command(os.Args[0], "-test.run=^TestKillRecoveryChild$", "-test.count=1", "-test.v")
		cmd.Env = append(os.Environ(), killChildEnv+"="+dir)
		out := &strings.Builder{}
		cmd.Stdout, cmd.Stderr = out, out
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		waited := make(chan error, 1)
		go func() { waited <- cmd.Wait() }()

		deadline := time.Now().Add(60 * time.Second)
		killed := false
		for !killed {
			select {
			case err := <-waited:
				// The child finished before we caught it mid-claim.
				t.Logf("attempt %d: child exited before the kill (%v); output:\n%s", attempt, err, out)
			case <-time.After(2 * time.Millisecond):
				if countSuffix(t, dir, ".json", "") >= 2 && countSuffix(t, dir, ".claim", ".claim.break") >= 1 {
					if err := cmd.Process.Kill(); err != nil {
						t.Fatal(err)
					}
					<-waited
					killed = true
					continue
				}
				if time.Now().Before(deadline) {
					continue
				}
				t.Fatalf("attempt %d: child never reached 2 entries + 1 live claim; output:\n%s", attempt, out)
			}
			break
		}
		if !killed {
			if attempt >= 3 {
				t.Fatal("child completed the sweep before every kill attempt")
			}
			continue
		}
		orphans = countSuffix(t, dir, ".claim", ".claim.break")
		if orphans >= 1 {
			break
		}
		if attempt >= 3 {
			t.Fatal("no kill attempt left an orphaned claim behind")
		}
	}

	pre := countSuffix(t, dir, ".json", "")
	if pre < 2 || pre >= 16 {
		t.Fatalf("victim persisted %d entries before the kill, want 2..15", pre)
	}
	t.Logf("victim killed with %d entries persisted and %d claims orphaned", pre, orphans)

	// Let the orphaned claims (mtime frozen at the kill) age past the
	// staleness window, then run the survivor in-process.
	time.Sleep(killTuning.StaleAfter + 200*time.Millisecond)
	cache, err := rescache.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	cache.Tune(killTuning)
	tbl, r, err := RunSweepOpts(killSweepSpec(), SweepOpts{Workers: 2, Cache: cache})
	if err != nil {
		t.Fatalf("survivor sweep failed: %v", err)
	}
	if tbl == nil {
		t.Fatal("survivor sweep returned no table")
	}
	if got := r.CacheHits(); got != int64(pre) {
		t.Errorf("survivor reused %d of the victim's %d entries", got, pre)
	}
	if got := r.SimRuns(); got != int64(16-pre) {
		t.Errorf("survivor simulated %d runs, want exactly the %d missing", got, 16-pre)
	}
	if n := countSuffix(t, dir, ".claim.break", ""); n != 0 {
		t.Errorf("%d breaker-lock files left behind", n)
	}
	// Every claim blocking a missing entry must have been broken. A
	// claim orphaned after its Put (kill between rename and release) may
	// survive — it guards an entry that exists, so it can never block
	// work, and Open sweeps it once it ages past the default window.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		name := e.Name()
		if !strings.HasSuffix(name, ".claim") || strings.HasSuffix(name, ".claim.break") {
			continue
		}
		key := strings.TrimSuffix(name, ".claim")
		if _, err := os.Stat(filepath.Join(dir, key+".json")); err != nil {
			t.Errorf("orphaned claim %s still blocks a missing entry", name)
		}
	}
}
