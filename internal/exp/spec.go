package exp

import (
	"encoding/json"
	"fmt"
	"sort"

	"dcasim/internal/config"
	"dcasim/internal/stats"
	"dcasim/internal/workload"
)

// TableSpec declares one evaluation table as data: a grid of config
// variants (row patch × column patch on top of the base config), a
// metric per column, and how per-mix samples aggregate into a cell.
// Every figure of the paper is an instance (see figures.go), so adding a
// figure is writing a spec, not plumbing a new driver. Patches are raw
// JSON objects deep-merged onto the base config (config.Config.Patch),
// which also makes specs fully serializable.
type TableSpec struct {
	Name    string          `json:"name"`
	Title   string          `json:"title"`
	Headers []string        `json:"headers"`          // leading label column headers
	Patch   json.RawMessage `json:"patch,omitempty"`  // applied to every cell of the table
	PerMix  bool            `json:"perMix,omitempty"` // one row per mix plus a gmean summary (Figs. 10–11)
	Rows    []RowSpec       `json:"rows"`
	Cols    []ColSpec       `json:"cols"`

	// Replicates, when > 1, fans every cell into that many seed-derived
	// runs (config.ReplicateSeed) and renders mean ±CI95 cells. 0 defers
	// to the runner's SetReplicates default; 0/1 both keep the
	// single-run output bit-identical to the unreplicated engine.
	Replicates int `json:"replicates,omitempty"`
}

// RowSpec is one table row: its label cells and the config patch shared
// by every cell of the row. Under PerMix the single row spec provides
// the patch while the rows themselves come from the runner's mixes.
type RowSpec struct {
	Labels []string        `json:"labels,omitempty"`
	Patch  json.RawMessage `json:"patch,omitempty"`
}

// ColSpec is one data column.
type ColSpec struct {
	Header string          `json:"header"`
	Patch  json.RawMessage `json:"patch,omitempty"`
	Metric string          `json:"metric"` // registry name, or MetricWS

	// Agg folds the per-mix samples into the cell: "geomean" or "mean".
	Agg string `json:"agg,omitempty"`

	// Baseline, when set, is a further patch selecting the variant each
	// per-mix sample is normalized against before aggregation; Op picks
	// the normalization: "ratio" (default) or "pctImprove"
	// (100*(baseline-v)/baseline, the paper's latency-improvement form).
	Baseline json.RawMessage `json:"baseline,omitempty"`
	Op       string          `json:"op,omitempty"`

	// Div derives the cell from two earlier columns of the same row
	// (numerator/denominator by header) instead of from runs.
	Div *[2]string `json:"div,omitempty"`

	// Format renders the aggregated value: "" uses the table default
	// (%.3f), "pct0" renders 100*v as a whole-number percentage.
	Format string `json:"format,omitempty"`
}

// validate rejects a malformed column before any simulation runs: a
// typoed aggregation or a dangling Div reference must not cost a full
// sweep before failing at render time. earlier holds the headers of
// the columns to this one's left (Div may only reference those).
func (c ColSpec) validate(earlier map[string]bool) error {
	if c.Div != nil {
		for _, ref := range *c.Div {
			if !earlier[ref] {
				return fmt.Errorf("exp: column %q: div references unknown column %q", c.Header, ref)
			}
		}
		// A Div cell is derived purely from two earlier columns, so the
		// run-driven fields are dead weight on it: a typoed agg/op/
		// baseline or a stray metric would be silently ignored — the
		// exact failure mode validate exists to prevent. Reject them.
		switch {
		case c.Metric != "":
			return fmt.Errorf("exp: column %q: div columns take no metric (got %q)", c.Header, c.Metric)
		case c.Agg != "":
			return fmt.Errorf("exp: column %q: div columns take no aggregation (got %q)", c.Header, c.Agg)
		case c.Op != "":
			return fmt.Errorf("exp: column %q: div columns take no op (got %q)", c.Header, c.Op)
		case c.Baseline != nil:
			return fmt.Errorf("exp: column %q: div columns take no baseline", c.Header)
		case len(c.Patch) != 0:
			return fmt.Errorf("exp: column %q: div columns take no patch", c.Header)
		}
		switch c.Format {
		case "", "pct0":
			return nil
		}
		return fmt.Errorf("exp: column %q: unknown format %q", c.Header, c.Format)
	}
	if c.Metric != MetricWS {
		if _, err := lookupMetric(c.Metric); err != nil {
			return err
		}
	}
	switch c.Agg {
	case "geomean", "mean", "":
	default:
		return fmt.Errorf("exp: column %q: unknown aggregation %q", c.Header, c.Agg)
	}
	switch c.Op {
	case "ratio", "pctImprove", "":
	default:
		return fmt.Errorf("exp: column %q: unknown op %q", c.Header, c.Op)
	}
	switch c.Format {
	case "", "pct0":
	default:
		return fmt.Errorf("exp: column %q: unknown format %q", c.Header, c.Format)
	}
	return nil
}

// aggregate folds samples per the column spec. A degenerate sample set
// (a non-positive value under geomean) is reported as an error: it
// reaches this at render time, after every simulation has completed, so
// panicking here would escape runIsolated and take down the process.
func (c ColSpec) aggregate(vals []float64) (float64, error) {
	switch c.Agg {
	case "geomean":
		g, err := stats.GeoMean(vals)
		if err != nil {
			return 0, fmt.Errorf("exp: column %q: %w", c.Header, err)
		}
		return g, nil
	case "mean", "":
		return stats.Mean(vals), nil
	}
	return 0, fmt.Errorf("exp: column %q: unknown aggregation %q", c.Header, c.Agg)
}

// normalize applies the column's baseline op to one per-mix sample.
func (c ColSpec) normalize(v, base float64) (float64, error) {
	switch c.Op {
	case "ratio", "":
		return v / base, nil
	case "pctImprove":
		return 100 * (base - v) / base, nil
	}
	return 0, fmt.Errorf("exp: column %q: unknown op %q", c.Header, c.Op)
}

// cell renders the aggregated value per the column's format.
func (c ColSpec) cell(v float64) (interface{}, error) {
	switch c.Format {
	case "":
		return v, nil
	case "pct0":
		return fmt.Sprintf("%.0f%%", 100*v), nil
	}
	return nil, fmt.Errorf("exp: column %q: unknown format %q", c.Header, c.Format)
}

// cellSample renders a replicated cell. The default format passes the
// stats.Sample through so the table renders "mean ±CI" in text and
// splits CSV/JSON columns; pct0 folds both numbers into one percentage
// string (percentages stay a single column in every format).
func (c ColSpec) cellSample(s stats.Sample) (interface{}, error) {
	switch c.Format {
	case "":
		return s, nil
	case "pct0":
		return fmt.Sprintf("%.0f%% ±%.0f%%", 100*s.Mean, 100*s.CI), nil
	}
	return nil, fmt.Errorf("exp: column %q: unknown format %q", c.Header, c.Format)
}

// variant resolves the cell config of (row, col) and, when the column is
// normalized, its baseline config.
func (s TableSpec) variant(base config.Config, row RowSpec, col ColSpec) (cfg, bl config.Config, err error) {
	cfg, err = base.Patch(s.Patch, row.Patch, col.Patch)
	if err != nil {
		return cfg, bl, fmt.Errorf("exp: %s row %v col %q: %w", s.Name, row.Labels, col.Header, err)
	}
	if col.Baseline != nil {
		bl, err = base.Patch(s.Patch, row.Patch, col.Patch, col.Baseline)
		if err != nil {
			return cfg, bl, fmt.Errorf("exp: %s row %v col %q baseline: %w", s.Name, row.Labels, col.Header, err)
		}
	}
	return cfg, bl, nil
}

// Table evaluates a spec: it enumerates every run the grid needs
// (cells, baselines, the alone runs behind weighted speedups, and every
// seeded replicate of each), computes the missing ones in parallel
// through the memo and persistent cache, and renders the table. With
// more than one replicate each cell aggregates per replicate exactly as
// the single-run engine would and then folds the per-replicate values
// into a mean ±CI95 Sample.
func (r *Runner) Table(spec TableSpec) (*stats.Table, error) {
	if spec.PerMix && len(spec.Rows) != 1 {
		return nil, fmt.Errorf("exp: %s: perMix wants exactly one row spec, got %d", spec.Name, len(spec.Rows))
	}
	if spec.Replicates < 0 {
		return nil, fmt.Errorf("exp: %s: negative replicates %d", spec.Name, spec.Replicates)
	}
	reps := spec.Replicates
	if reps == 0 {
		reps = r.replicates
	}
	if reps < 1 {
		reps = 1
	}
	earlier := map[string]bool{}
	for _, col := range spec.Cols {
		if spec.PerMix && col.Div != nil {
			return nil, fmt.Errorf("exp: %s: div columns are not supported with perMix", spec.Name)
		}
		if err := col.validate(earlier); err != nil {
			return nil, err
		}
		earlier[col.Header] = true
	}

	// Resolve the variant grid once.
	type cellVariant struct {
		cfg, bl config.Config
	}
	grid := make([][]cellVariant, len(spec.Rows))
	var need []config.Config
	aloneOrgs := map[string]config.Config{} // org name -> a config under that org
	for i, row := range spec.Rows {
		grid[i] = make([]cellVariant, len(spec.Cols))
		for j, col := range spec.Cols {
			if col.Div != nil {
				continue
			}
			cfg, bl, err := spec.variant(r.base, row, col)
			if err != nil {
				return nil, err
			}
			grid[i][j] = cellVariant{cfg: cfg, bl: bl}
			for _, m := range r.mixes {
				for k := 0; k < reps; k++ {
					need = append(need, replicateCfg(mixConfig(cfg, r.base, m), k))
					if col.Baseline != nil {
						need = append(need, replicateCfg(mixConfig(bl, r.base, m), k))
					}
				}
			}
			if col.Metric == MetricWS {
				aloneOrgs[cfg.Org.String()] = cfg
				if col.Baseline != nil {
					aloneOrgs[bl.Org.String()] = bl
				}
			}
		}
	}
	// Sorted key order keeps the need list deterministic: Ensure
	// dispatches in list order and reports the first failure in that
	// order, so a map-ordered list would make the reported error (and
	// the dispatch schedule) vary run to run.
	orgNames := make([]string, 0, len(aloneOrgs))
	for name := range aloneOrgs {
		orgNames = append(orgNames, name)
	}
	sort.Strings(orgNames)
	for _, name := range orgNames {
		need = append(need, r.aloneConfigs(aloneOrgs[name].Org, reps)...)
	}
	if err := r.Ensure(need); err != nil {
		return nil, err
	}

	// sample extracts the per-mix metric value of a variant at one
	// replicate index.
	sample := func(col ColSpec, cfg config.Config, m workload.Mix, k int) (float64, bool, error) {
		run := replicateCfg(mixConfig(cfg, r.base, m), k)
		if col.Metric == MetricWS {
			ws, err := r.weightedSpeedup(run, m, k)
			return ws, true, err
		}
		f, err := lookupMetric(col.Metric)
		if err != nil {
			return 0, false, err
		}
		v, ok := f(r.result(run))
		return v, ok, nil
	}
	// samples collects the normalized per-mix series of one grid cell at
	// one replicate index.
	samples := func(col ColSpec, cv cellVariant, k int) ([]float64, error) {
		var vals []float64
		for _, m := range r.mixes {
			v, ok, err := sample(col, cv.cfg, m, k)
			if err != nil {
				return nil, err
			}
			if col.Baseline != nil {
				base, bok, err := sample(col, cv.bl, m, k)
				if err != nil {
					return nil, err
				}
				// The hand-written drivers skipped a mix when its
				// normalization denominator carried no samples (Fig. 18's
				// zero-tag-access guard); keep that exact behaviour.
				if !bok || base <= 0 {
					continue
				}
				if v, err = col.normalize(v, base); err != nil {
					return nil, err
				}
			}
			if ok {
				vals = append(vals, v)
			}
		}
		return vals, nil
	}
	// fold renders per-replicate aggregated values as a cell value: the
	// single value at one replicate (bit-identical to the unreplicated
	// engine), a mean ±CI95 Sample otherwise.
	fold := func(col ColSpec, perRep []float64) (interface{}, error) {
		if len(perRep) == 1 {
			return col.cell(perRep[0])
		}
		return col.cellSample(stats.Summarize(perRep))
	}

	tbl := stats.NewTable(append(append([]string{}, spec.Headers...),
		colHeaders(spec.Cols)...)...)

	if spec.PerMix {
		// One row per mix; cells are the raw per-mix samples (folded
		// across replicates), then a geomean summary row per column
		// (geomean per replicate, then folded).
		series := make([][][]float64, len(spec.Cols)) // [col][rep][mix]
		for j, col := range spec.Cols {
			series[j] = make([][]float64, reps)
			for k := 0; k < reps; k++ {
				vals, err := samples(col, grid[0][j], k)
				if err != nil {
					return nil, err
				}
				if len(vals) != len(r.mixes) {
					return nil, fmt.Errorf("exp: %s col %q: %d samples for %d mixes", spec.Name, col.Header, len(vals), len(r.mixes))
				}
				series[j][k] = vals
			}
		}
		perRep := make([]float64, reps)
		for i, m := range r.mixes {
			row := []interface{}{fmt.Sprintf("%d(%s)", m.ID, m.Benchmarks[0])}
			for j := range spec.Cols {
				if reps == 1 {
					row = append(row, series[j][0][i])
					continue
				}
				for k := 0; k < reps; k++ {
					perRep[k] = series[j][k][i]
				}
				row = append(row, stats.Summarize(perRep))
			}
			tbl.AddRowf(row...)
		}
		sum := []interface{}{"gmean"}
		for j := range spec.Cols {
			for k := 0; k < reps; k++ {
				g, err := stats.GeoMean(series[j][k])
				if err != nil {
					return nil, fmt.Errorf("exp: %s col %q gmean: %w", spec.Name, spec.Cols[j].Header, err)
				}
				perRep[k] = g
			}
			if reps == 1 {
				sum = append(sum, perRep[0])
			} else {
				sum = append(sum, stats.Summarize(perRep))
			}
		}
		tbl.AddRowf(sum...)
		return tbl, nil
	}

	for i, rowSpec := range spec.Rows {
		row := make([]interface{}, 0, len(spec.Headers)+len(spec.Cols))
		for _, l := range rowSpec.Labels {
			row = append(row, l)
		}
		// Per-replicate aggregated values by column header, for Div
		// references; aggOK marks columns whose value is defined (a Div
		// with a zero denominator is not). Both maps are only ever
		// indexed by header, never ranged.
		aggVals := map[string][]float64{}
		aggOK := map[string]bool{}
		for j, col := range spec.Cols {
			var perRep []float64
			ok := true
			if col.Div != nil {
				num, nok := aggVals[col.Div[0]]
				den, dok := aggVals[col.Div[1]]
				if !nok || !dok {
					return nil, fmt.Errorf("exp: %s col %q: div references unknown columns %v", spec.Name, col.Header, *col.Div)
				}
				ok = aggOK[col.Div[0]] && aggOK[col.Div[1]]
				for k := 0; ok && k < len(den); k++ {
					// A zero denominator has no ratio; render "-" like
					// the sweep engine does for missing metrics rather
					// than passing NaN/Inf off as data.
					if den[k] == 0 {
						ok = false
					}
				}
				if ok {
					perRep = make([]float64, len(num))
					for k := range num {
						perRep[k] = num[k] / den[k]
					}
				}
			} else {
				perRep = make([]float64, reps)
				for k := 0; k < reps; k++ {
					vals, err := samples(col, grid[i][j], k)
					if err != nil {
						return nil, err
					}
					v, err := col.aggregate(vals)
					if err != nil {
						return nil, fmt.Errorf("exp: %s row %v: %w", spec.Name, rowSpec.Labels, err)
					}
					perRep[k] = v
				}
			}
			aggVals[col.Header] = perRep
			aggOK[col.Header] = ok
			if !ok {
				row = append(row, "-")
				continue
			}
			cell, err := fold(col, perRep)
			if err != nil {
				return nil, err
			}
			row = append(row, cell)
		}
		tbl.AddRowf(row...)
	}
	return tbl, nil
}

func colHeaders(cols []ColSpec) []string {
	h := make([]string, len(cols))
	for i, c := range cols {
		h[i] = c.Header
	}
	return h
}

// FigureNames lists the registered table specs in presentation order.
func FigureNames() []string {
	names := make([]string, len(Figures))
	for i, s := range Figures {
		names[i] = s.Name
	}
	return names
}

// Figure evaluates a registered spec by name.
func (r *Runner) Figure(name string) (*stats.Table, error) {
	for _, s := range Figures {
		if s.Name == name {
			return r.Table(s)
		}
	}
	return nil, fmt.Errorf("exp: unknown figure %q (have %v)", name, FigureNames())
}
