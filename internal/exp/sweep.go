package exp

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"

	"dcasim/internal/config"
	"dcasim/internal/rescache"
	"dcasim/internal/stats"
)

// SweepSpec is a user-authored, fully serializable scenario sweep: a
// preset scale, a base patch, named axes of config overrides, and the
// metrics to report. The engine runs the cartesian product of the axes
// through the memoizing (and, with a cache directory, persistent)
// runner and renders one table row per point — so exploring a new knob,
// including ones no CLI flag exposes, is writing JSON, not Go.
type SweepSpec struct {
	Schema int    `json:"schema"`
	Name   string `json:"name"`

	// Scale names the preset the sweep starts from ("paper", "bench",
	// or "test"); Base then patches it (deep-merged JSON, see
	// config.Config.Patch). Benchmarks and seed come from the resulting
	// config, not from workload mixes.
	Scale string          `json:"scale"`
	Base  json.RawMessage `json:"base,omitempty"`

	Axes    []SweepAxis `json:"axes"`
	Metrics []string    `json:"metrics"`

	// Replicates, when > 1, fans every point into that many seed-derived
	// runs (replicate k patches Seed to config.ReplicateSeed of the
	// point's seed) and renders each metric cell as mean ±CI95. 0/1 keep
	// the single-run output bit-identical to the unreplicated engine.
	// SweepOpts.Replicates, when positive, overrides this.
	Replicates int `json:"replicates,omitempty"`
}

// SweepAxis is one named dimension of the sweep.
type SweepAxis struct {
	Name   string       `json:"name"`
	Values []SweepPoint `json:"values"`
}

// SweepPoint is one value of an axis: a display label and the partial
// config it applies.
type SweepPoint struct {
	Label string          `json:"label"`
	Set   json.RawMessage `json:"set"`
}

// LoadSweep reads and validates a sweep spec. Unknown fields are errors
// for the same reason they are in config.Load: a typo silently ignored
// would sweep the wrong machine.
func LoadSweep(path string) (SweepSpec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return SweepSpec{}, fmt.Errorf("exp: %w", err)
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s SweepSpec
	if err := dec.Decode(&s); err != nil {
		return SweepSpec{}, fmt.Errorf("exp: decode sweep %s: %w", path, err)
	}
	if _, err := dec.Token(); err != io.EOF {
		return SweepSpec{}, fmt.Errorf("exp: %s: trailing data after the sweep document", path)
	}
	if err := s.Validate(); err != nil {
		return SweepSpec{}, fmt.Errorf("exp: sweep %s: %w", path, err)
	}
	return s, nil
}

// Validate reports the first structural problem with the spec.
func (s SweepSpec) Validate() error {
	if s.Schema != config.SchemaVersion {
		return fmt.Errorf("schema %d, this build expects %d", s.Schema, config.SchemaVersion)
	}
	if len(s.Axes) == 0 {
		return fmt.Errorf("no axes")
	}
	for _, ax := range s.Axes {
		if ax.Name == "" {
			return fmt.Errorf("axis with empty name")
		}
		if len(ax.Values) == 0 {
			return fmt.Errorf("axis %q has no values", ax.Name)
		}
	}
	if len(s.Metrics) == 0 {
		return fmt.Errorf("no metrics")
	}
	if s.Replicates < 0 {
		return fmt.Errorf("negative replicates %d", s.Replicates)
	}
	for _, m := range s.Metrics {
		if m == MetricWS {
			return fmt.Errorf("metric %q needs per-benchmark alone runs over workload mixes and is only available to table specs, not sweeps", MetricWS)
		}
		if _, err := lookupMetric(m); err != nil {
			return err
		}
	}
	return nil
}

// Points returns the cartesian product of the axes in row-major order
// (first axis slowest), as index vectors into Axes[i].Values.
func (s SweepSpec) Points() [][]int {
	total := 1
	for _, ax := range s.Axes {
		total *= len(ax.Values)
	}
	points := make([][]int, 0, total)
	idx := make([]int, len(s.Axes))
	for {
		points = append(points, append([]int(nil), idx...))
		i := len(idx) - 1
		for ; i >= 0; i-- {
			idx[i]++
			if idx[i] < len(s.Axes[i].Values) {
				break
			}
			idx[i] = 0
		}
		if i < 0 {
			return points
		}
	}
}

// pointConfig resolves the config of one cartesian point.
func (s SweepSpec) pointConfig(base config.Config, idx []int) (config.Config, error) {
	patches := make([]json.RawMessage, 0, len(idx))
	for i, v := range idx {
		patches = append(patches, s.Axes[i].Values[v].Set)
	}
	cfg, err := base.Patch(patches...)
	if err != nil {
		return cfg, fmt.Errorf("exp: sweep point %s: %w", s.pointLabel(idx), err)
	}
	return cfg, nil
}

func (s SweepSpec) pointLabel(idx []int) string {
	var b bytes.Buffer
	for i, v := range idx {
		if i > 0 {
			b.WriteByte('/')
		}
		fmt.Fprintf(&b, "%s=%s", s.Axes[i].Name, s.Axes[i].Values[v].Label)
	}
	return b.String()
}

// SweepOpts bundles the execution knobs of a sweep.
type SweepOpts struct {
	// Workers bounds concurrent simulations; must be >= 1.
	Workers int
	// Cache is the optional persistent result cache.
	Cache *rescache.Cache
	// Progress observes per-run completion events (nil disables).
	Progress ProgressFunc
	// KeepGoing runs every point even after failures and reports them
	// all joined in cartesian order; false stops on the first failure.
	// Either way a partly-failing sweep is resumable: completed points
	// are in the cache, so a rerun recomputes only what is missing.
	KeepGoing bool
	// RunTimeout arms the per-run watchdog; <= 0 (the default) disables.
	RunTimeout time.Duration
	// Replicates, when > 0, overrides the spec's replicate count (the
	// -seeds flag); 0 defers to spec.Replicates (default 1).
	Replicates int
}

// RunSweep evaluates the spec: resolve the base config, enumerate the
// cartesian product, compute every point (bounded-parallel over workers
// simulations, consulting the persistent cache when one is attached),
// and render one row per point with the requested metric columns. Rows
// commit in cartesian order regardless of which worker finished first,
// so the rendered table — text, CSV, or JSON — is byte-identical at
// every worker count. Runs with no sample for a metric render "-".
// An optional progress observer receives per-run completion events.
func RunSweep(spec SweepSpec, workers int, cache *rescache.Cache, progress ...ProgressFunc) (*stats.Table, *Runner, error) {
	opts := SweepOpts{Workers: workers, Cache: cache}
	for _, p := range progress {
		opts.Progress = p
	}
	return RunSweepOpts(spec, opts)
}

// RunSweepOpts is RunSweep with the full option set. On failure the
// returned runner is non-nil whenever the sweep got as far as running
// (so callers can still inspect cache statistics and CacheErr); the
// table is nil — a partial table would invite consuming half a sweep
// as if it were the sweep.
func RunSweepOpts(spec SweepSpec, opts SweepOpts) (*stats.Table, *Runner, error) {
	// LoadSweep validates too, but specs can also be built in Go and
	// handed straight here; a structural error must not surface as a
	// panic after the simulations already ran.
	if err := spec.Validate(); err != nil {
		return nil, nil, fmt.Errorf("exp: sweep %s: %w", spec.Name, err)
	}
	if err := ValidateWorkers(opts.Workers); err != nil {
		return nil, nil, err
	}
	base, err := config.ParsePreset(spec.Scale)
	if err != nil {
		return nil, nil, err
	}
	base, err = base.Patch(spec.Base)
	if err != nil {
		return nil, nil, fmt.Errorf("exp: sweep base: %w", err)
	}

	reps := opts.Replicates
	if reps == 0 {
		reps = spec.Replicates
	}
	if reps < 1 {
		reps = 1
	}

	points := spec.Points()
	// cfgs[i][k] is replicate k of point i; replicate 0 is the point
	// config itself, later replicates are ordinary Seed patches — so
	// they content-address, cache, and deduplicate like any other run.
	cfgs := make([][]config.Config, len(points))
	need := make([]config.Config, 0, len(points)*reps)
	for i, idx := range points {
		cfgs[i] = make([]config.Config, reps)
		if cfgs[i][0], err = spec.pointConfig(base, idx); err != nil {
			return nil, nil, err
		}
		if err := cfgs[i][0].Validate(); err != nil {
			return nil, nil, fmt.Errorf("exp: sweep point %s: %w", spec.pointLabel(idx), err)
		}
		// Points run in parallel, so a shared RecordPath would have
		// every run truncating (and, on failure, deleting) the same
		// trace file mid-write.
		if cfgs[i][0].RecordPath != "" {
			return nil, nil, fmt.Errorf("exp: sweep point %s: RecordPath is not supported in sweeps (parallel points would overwrite one trace file)", spec.pointLabel(idx))
		}
		for k := 1; k < reps; k++ {
			cfgs[i][k], err = cfgs[i][0].Patch(config.SeedPatch(config.ReplicateSeed(cfgs[i][0].Seed, k)))
			if err != nil {
				return nil, nil, fmt.Errorf("exp: sweep point %s replicate %d: %w", spec.pointLabel(idx), k, err)
			}
		}
		need = append(need, cfgs[i]...)
	}

	r := NewRunner(base, nil, opts.Workers)
	if opts.Cache != nil {
		r.SetCache(opts.Cache)
	}
	r.SetProgress(opts.Progress)
	r.SetKeepGoing(opts.KeepGoing)
	r.SetRunTimeout(opts.RunTimeout)
	if err := r.Ensure(need); err != nil {
		return nil, r, err
	}

	header := make([]string, 0, len(spec.Axes)+len(spec.Metrics))
	for _, ax := range spec.Axes {
		header = append(header, ax.Name)
	}
	header = append(header, spec.Metrics...)
	tbl := stats.NewTable(header...)
	vals := make([]float64, 0, reps)
	for i, idx := range points {
		row := make([]interface{}, 0, len(header))
		for ai, v := range idx {
			row = append(row, spec.Axes[ai].Values[v].Label)
		}
		for _, m := range spec.Metrics {
			f, _ := lookupMetric(m)
			vals = vals[:0]
			ok := true
			for k := 0; ok && k < reps; k++ {
				v, vok := f(r.result(cfgs[i][k]))
				if !vok {
					ok = false
					break
				}
				vals = append(vals, v)
			}
			switch {
			case !ok:
				// A metric with no sample in any replicate renders "-":
				// a partially sampled mean would not be comparable
				// across rows.
				row = append(row, "-")
			case reps == 1:
				row = append(row, vals[0])
			default:
				row = append(row, stats.Summarize(vals))
			}
		}
		tbl.AddRowf(row...)
	}
	return tbl, r, nil
}
