package exp

// The policy-comparison example sweep must stay loadable and resolvable:
// every point names a registered policy (including ATLAS, linked in via
// the policies aggregator) and every AlgParams override passes Validate.

import (
	"path/filepath"
	"testing"

	"dcasim/internal/config"

	_ "dcasim/internal/sched/policies"
)

const policyComparisonSpec = "../../examples/sweep/policy_comparison.json"

func TestPolicyComparisonSpecResolves(t *testing.T) {
	spec, err := LoadSweep(filepath.FromSlash(policyComparisonSpec))
	if err != nil {
		t.Fatal(err)
	}
	base, err := config.ParsePreset(spec.Scale)
	if err != nil {
		t.Fatal(err)
	}
	if base, err = base.Patch(spec.Base); err != nil {
		t.Fatal(err)
	}
	sawATLAS := false
	for _, idx := range spec.Points() {
		cfg, err := spec.pointConfig(base, idx)
		if err != nil {
			t.Fatalf("point %s: %v", spec.pointLabel(idx), err)
		}
		if err := cfg.Validate(); err != nil {
			t.Errorf("point %s does not validate: %v", spec.pointLabel(idx), err)
		}
		if cfg.Algorithm == "ATLAS" {
			sawATLAS = true
		}
	}
	if !sawATLAS {
		t.Error("spec exercises no beyond-paper policy; expected an ATLAS point")
	}
}

func TestPolicyAxesResolve(t *testing.T) {
	axes, err := PolicyAxes("atlas")
	if err != nil {
		t.Fatal(err)
	}
	if len(axes) == 0 {
		t.Fatal("ATLAS declares no sweep axes")
	}
	base := config.Test()
	base.Benchmarks = []string{"soplex", "mcf", "gcc", "libquantum"}
	base.Algorithm = "ATLAS"
	for _, ax := range axes {
		for _, pt := range ax.Values {
			cfg, err := base.Patch(pt.Set)
			if err != nil {
				t.Fatalf("axis %s point %s: %v", ax.Name, pt.Label, err)
			}
			if err := cfg.Validate(); err != nil {
				t.Errorf("axis %s point %s does not validate: %v", ax.Name, pt.Label, err)
			}
		}
	}
	if _, err := PolicyAxes("bananas"); err == nil {
		t.Error("unknown policy accepted")
	}
}
