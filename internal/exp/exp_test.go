package exp

import (
	"strings"
	"sync"
	"testing"

	"dcasim/internal/config"
	"dcasim/internal/dcache"
	"dcasim/internal/workload"
)

func testRunner(t *testing.T, nmix int) *Runner {
	t.Helper()
	cfg := config.Test()
	return NewRunner(cfg, workload.TableI()[:nmix], 2)
}

func TestTableI(t *testing.T) {
	tbl := TableI(workload.TableI())
	out := tbl.String()
	if !strings.Contains(out, "soplex") || !strings.Contains(out, "GemsFDTD") {
		t.Fatalf("Table I missing benchmarks:\n%s", out)
	}
	if got := strings.Count(out, "\n"); got != 32 { // header + separator + 30 rows
		t.Fatalf("Table I has %d lines, want 32", got)
	}
}

func TestTableII(t *testing.T) {
	out := testRunner(t, 1).TableII().String()
	for _, want := range []string{"DRAM cache", "read queue", "write queue", "tWTR"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table II missing %q:\n%s", want, out)
		}
	}
}

func TestFig8ShapeAndMemoization(t *testing.T) {
	r := testRunner(t, 2)
	tbl, err := r.Fig8()
	if err != nil {
		t.Fatal(err)
	}
	out := tbl.String()
	if !strings.Contains(out, "set-assoc") || !strings.Contains(out, "direct-mapped") {
		t.Fatalf("Fig8 rows missing:\n%s", out)
	}
	runsAfter := r.SimRuns()
	// Rerunning must reuse every memoized simulation.
	if _, err := r.Fig8(); err != nil {
		t.Fatal(err)
	}
	if r.SimRuns() != runsAfter {
		t.Fatalf("Fig8 rerun launched new simulations: %d -> %d", runsAfter, r.SimRuns())
	}
}

func TestFig8CDBaselineIsOne(t *testing.T) {
	r := testRunner(t, 2)
	tbl, err := r.Fig8()
	if err != nil {
		t.Fatal(err)
	}
	// The CD column is normalized to itself, so it must render exactly 1.
	for _, row := range tbl.Rows() {
		if row[1] != "1.000" {
			t.Fatalf("CD normalized to itself should be exactly 1.000, row %v", row)
		}
	}
}

func TestFiguresShareRuns(t *testing.T) {
	r := testRunner(t, 1)
	if _, err := r.Fig10(); err != nil { // needs SA, all designs, both remaps
		t.Fatal(err)
	}
	n := r.SimRuns()
	if _, err := r.Fig12(); err != nil { // same runs, different metric
		t.Fatal(err)
	}
	if _, err := r.Fig14(); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Fig16(); err != nil {
		t.Fatal(err)
	}
	if r.SimRuns() != n {
		t.Fatalf("figures 12/14/16 did not reuse figure 10's runs: %d -> %d", n, r.SimRuns())
	}
}

func TestFig18RowsPerSize(t *testing.T) {
	r := testRunner(t, 1)
	tbl, err := r.Fig18()
	if err != nil {
		t.Fatal(err)
	}
	out := tbl.String()
	for _, kb := range Fig18Sizes {
		if !strings.Contains(out, "KB") {
			t.Fatalf("Fig18 missing %dKB row:\n%s", kb, out)
		}
	}
}

func TestFig19Runs(t *testing.T) {
	r := testRunner(t, 1)
	tbl, err := r.Fig19()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tbl.String(), "LEE+DCA") {
		t.Fatalf("Fig19 missing LEE+DCA row:\n%s", tbl)
	}
}

func TestAloneIPCMemoized(t *testing.T) {
	r := testRunner(t, 1)
	if err := r.Ensure(r.aloneConfigs(dcache.SetAssoc, 1)); err != nil {
		t.Fatal(err)
	}
	n := r.SimRuns()
	if n == 0 {
		t.Fatal("no alone IPCs computed")
	}
	if err := r.Ensure(r.aloneConfigs(dcache.SetAssoc, 1)); err != nil {
		t.Fatal(err)
	}
	if r.SimRuns() != n {
		t.Fatal("re-ensuring alone configs recomputed cached entries")
	}
}

// TestAloneIPCSingleflight hammers the same alone configs from many
// goroutines at once and asserts every simulation ran exactly once: the
// in-flight guard must close the check-then-compute window that used to
// let two drivers duplicate a full run.
func TestAloneIPCSingleflight(t *testing.T) {
	r := testRunner(t, 1)
	mix := r.Mixes()[0]
	distinct := make(map[string]bool)
	for _, b := range mix.Benchmarks {
		distinct[b] = true
	}

	const callers = 8
	results := make([][]float64, callers)
	errs := make([]error, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = r.aloneIPCs(mix, dcache.SetAssoc, 0)
		}(i)
	}
	wg.Wait()

	for i := 0; i < callers; i++ {
		if errs[i] != nil {
			t.Fatalf("caller %d: %v", i, errs[i])
		}
		for j, v := range results[i] {
			if v != results[0][j] {
				t.Fatalf("caller %d got %v, caller 0 got %v", i, results[i], results[0])
			}
		}
	}
	if got, want := r.SimRuns(), int64(len(distinct)); got != want {
		t.Fatalf("executed %d alone runs for %d distinct benchmarks (duplicated work)", got, want)
	}
	if len(r.inflight) != 0 {
		t.Fatalf("%d in-flight records leaked", len(r.inflight))
	}
}
