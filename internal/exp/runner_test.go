package exp

import (
	"strings"
	"testing"

	"dcasim/internal/dcache"
)

// TestWeightedSpeedupUnknownMix: an unknown mix ID must surface as an
// error, not proceed with a zero-value Mix (which would run alone-IPC
// simulations for empty benchmark names or, before the fix, silently
// produce a bogus speedup).
func TestWeightedSpeedupUnknownMix(t *testing.T) {
	r := testRunner(t, 1)
	before := r.aloneRuns
	_, err := r.weightedSpeedup(runKey{mixID: 999, org: dcache.SetAssoc})
	if err == nil {
		t.Fatal("weightedSpeedup accepted an unknown mix id")
	}
	if !strings.Contains(err.Error(), "unknown mix id 999") {
		t.Fatalf("error %q does not name the unknown mix", err)
	}
	if r.aloneRuns != before {
		t.Fatalf("unknown mix still triggered %d alone runs", r.aloneRuns-before)
	}
}

// TestConfigForUnknownMix: the run-config path shares the same lookup.
func TestConfigForUnknownMix(t *testing.T) {
	r := testRunner(t, 1)
	if _, err := r.configFor(runKey{mixID: -7}); err == nil {
		t.Fatal("configFor accepted an unknown mix id")
	}
}
