package exp

import (
	"strings"
	"testing"

	"dcasim/internal/config"
)

// TestRunErrorMemoized: an invalid config must fail once and then keep
// failing from the memo without re-running validation-failing sims.
func TestRunErrorMemoized(t *testing.T) {
	r := testRunner(t, 1)
	bad := config.Test()
	bad.Benchmarks = []string{"no-such-benchmark"}
	if _, err := r.Run(bad); err == nil {
		t.Fatal("Run accepted an unknown benchmark")
	}
	if _, err := r.Run(bad); err == nil {
		t.Fatal("memoized error was dropped on the second call")
	}
	if n := r.SimRuns(); n != 0 {
		t.Fatalf("failed config counted as %d executed simulations", n)
	}
}

// TestTableUnknownMetric: a spec naming a metric outside the registry
// must error up front, before any simulation runs.
func TestTableUnknownMetric(t *testing.T) {
	r := testRunner(t, 1)
	spec := TableSpec{
		Name:    "bogus",
		Headers: []string{"x"},
		Rows:    []RowSpec{{Labels: []string{"row"}}},
		Cols:    []ColSpec{{Header: "c", Metric: "no-such-metric"}},
	}
	_, err := r.Table(spec)
	if err == nil || !strings.Contains(err.Error(), "unknown metric") {
		t.Fatalf("want unknown-metric error, got %v", err)
	}
	if r.SimRuns() != 0 {
		t.Fatal("unknown metric still launched simulations")
	}
}

// TestTableBadPatch: a typoed config field in a patch must be rejected,
// not silently ignored (it would select the wrong cache key).
func TestTableBadPatch(t *testing.T) {
	r := testRunner(t, 1)
	spec := TableSpec{
		Name:    "typo",
		Headers: []string{"x"},
		Rows:    []RowSpec{{Labels: []string{"row"}, Patch: raw(`{"Desing":"CD"}`)}},
		Cols:    []ColSpec{{Header: "c", Metric: "totalNS"}},
	}
	if _, err := r.Table(spec); err == nil {
		t.Fatal("Table accepted a patch with an unknown field")
	}
}

// TestDivColumnUnknownReference: derived columns must name columns that
// already exist in the row.
func TestDivColumnUnknownReference(t *testing.T) {
	r := testRunner(t, 1)
	spec := TableSpec{
		Name:    "div",
		Headers: []string{"x"},
		Rows:    []RowSpec{{Labels: []string{"row"}}},
		Cols: []ColSpec{
			{Header: "a", Metric: "totalNS"},
			{Header: "bad", Div: &[2]string{"a", "missing"}},
		},
	}
	if _, err := r.Table(spec); err == nil {
		t.Fatal("Table accepted a div column referencing a missing column")
	}
	if r.SimRuns() != 0 {
		t.Fatal("bad div column still launched simulations")
	}
}

// TestTableBadAggOpFormat: typos in the fold/normalize/format fields
// must also fail before any simulation runs.
func TestTableBadAggOpFormat(t *testing.T) {
	r := testRunner(t, 1)
	base := TableSpec{
		Name:    "bad",
		Headers: []string{"x"},
		Rows:    []RowSpec{{Labels: []string{"row"}}},
	}
	cases := map[string]ColSpec{
		"agg":    {Header: "c", Metric: "totalNS", Agg: "geomena"},
		"op":     {Header: "c", Metric: "totalNS", Baseline: raw(`{}`), Op: "pctimprove"},
		"format": {Header: "c", Metric: "totalNS", Format: "pct1"},
	}
	for name, col := range cases {
		spec := base
		spec.Cols = []ColSpec{col}
		if _, err := r.Table(spec); err == nil {
			t.Errorf("%s: typo accepted", name)
		}
	}
	if r.SimRuns() != 0 {
		t.Fatalf("typoed specs launched %d simulations", r.SimRuns())
	}
}
