package exp

import (
	"bytes"
	"strings"
	"testing"

	"dcasim/internal/config"
	"dcasim/internal/rescache"
	"dcasim/internal/workload"
)

// TestReplicateConfigs: element 0 is the config itself and later
// elements differ only in seed, each with a distinct hash — the
// property that lets replicates ride the content-addressed cache for
// free.
func TestReplicateConfigs(t *testing.T) {
	cfg := config.Test()
	cfg.Benchmarks = []string{"mcf", "lbm", "libquantum", "omnetpp"}
	cfgs := ReplicateConfigs(cfg, 3)
	if len(cfgs) != 3 {
		t.Fatalf("got %d configs, want 3", len(cfgs))
	}
	if cfgs[0].Hash() != cfg.Hash() {
		t.Fatal("replicate 0 is not the base config")
	}
	seen := map[string]bool{}
	for k, c := range cfgs {
		if c.Seed != config.ReplicateSeed(cfg.Seed, k) {
			t.Fatalf("replicate %d seed = %d, want %d", k, c.Seed, config.ReplicateSeed(cfg.Seed, k))
		}
		h := c.Hash()
		if seen[h] {
			t.Fatalf("replicate %d shares a hash with an earlier replicate", k)
		}
		seen[h] = true
	}
}

func TestValidateReplicates(t *testing.T) {
	for _, n := range []int{0, -1} {
		if err := ValidateReplicates(n); err == nil {
			t.Errorf("ValidateReplicates(%d) accepted", n)
		}
	}
	for _, n := range []int{1, 3, 10} {
		if err := ValidateReplicates(n); err != nil {
			t.Errorf("ValidateReplicates(%d) rejected: %v", n, err)
		}
	}
}

// TestTableReplicatesOne: replicates=1 (explicit or via the runner
// default) must be bit-identical to the unreplicated engine — the
// acceptance bar that keeps every golden green.
func TestTableReplicatesOne(t *testing.T) {
	mixes := workload.TableI()[:2]
	plain, err := NewRunner(config.Test(), mixes, 2).Fig8()
	if err != nil {
		t.Fatal(err)
	}
	r := NewRunner(config.Test(), mixes, 2)
	r.SetReplicates(1)
	rep1, err := r.Fig8()
	if err != nil {
		t.Fatal(err)
	}
	if plain.String() != rep1.String() {
		t.Fatalf("replicates=1 diverges from the unreplicated engine:\n--- plain ---\n%s\n--- rep1 ---\n%s", plain, rep1)
	}
}

// TestTableReplicatesCI: with N>1 every data cell renders mean ±CI95,
// and the CD column (each replicate normalized to itself) pins the
// degenerate interval: exactly "1.000 ±0.000".
func TestTableReplicatesCI(t *testing.T) {
	mixes := workload.TableI()[:1]
	r := NewRunner(config.Test(), mixes, 4)
	r.SetReplicates(2)
	tbl, err := r.Fig8()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tbl.Rows() {
		if got := row[1]; got != "1.000 ±0.000" {
			t.Errorf("CD baseline cell = %q, want \"1.000 ±0.000\"\n%s", got, tbl)
		}
		for _, cell := range row[1:] {
			if !strings.Contains(cell, "±") {
				t.Errorf("replicated cell %q lacks a confidence interval\n%s", cell, tbl)
			}
		}
	}
}

// TestTableSpecReplicatesOverridesRunner: a spec's own Replicates field
// wins over the runner default.
func TestTableSpecReplicatesOverridesRunner(t *testing.T) {
	mixes := workload.TableI()[:1]
	plain, err := NewRunner(config.Test(), mixes, 2).Fig8()
	if err != nil {
		t.Fatal(err)
	}
	r := NewRunner(config.Test(), mixes, 2)
	r.SetReplicates(2)
	spec := Figures[0] // fig8
	if spec.Name != "fig8" {
		t.Fatalf("Figures[0] = %q, want fig8", spec.Name)
	}
	spec.Replicates = 1
	tbl, err := r.Table(spec)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.String() != plain.String() {
		t.Fatalf("spec.Replicates=1 did not override the runner default:\n%s", tbl)
	}
	if _, err := r.Table(TableSpec{Name: "neg", Replicates: -1, Rows: []RowSpec{{}}}); err == nil {
		t.Fatal("negative spec replicates accepted")
	}
}

// TestSweepReplicatesDeterministicAndCached pins the three acceptance
// properties of replicated sweeps at once: output is byte-identical at
// every worker count in every format, each metric column splits into a
// ci95 pair in CSV/JSON, and a warm second pass over the same seeds
// executes zero simulations — replicates are ordinary cached configs.
func TestSweepReplicatesDeterministicAndCached(t *testing.T) {
	cache, err := rescache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	spec := parallelSweepSpec()
	spec.Replicates = 3
	render := func(workers int) map[string][]byte {
		t.Helper()
		tbl, _, err := RunSweepOpts(spec, SweepOpts{Workers: workers, Cache: cache})
		if err != nil {
			t.Fatal(err)
		}
		out := map[string][]byte{}
		for _, format := range []string{"text", "csv", "json"} {
			var buf bytes.Buffer
			if err := tbl.Write(&buf, format); err != nil {
				t.Fatal(err)
			}
			out[format] = buf.Bytes()
		}
		return out
	}
	seq := render(1)
	par := render(8)
	for _, format := range []string{"text", "csv", "json"} {
		if !bytes.Equal(par[format], seq[format]) {
			t.Errorf("replicated sweep %s output diverges between -j 1 and -j 8:\n--- j1 ---\n%s\n--- j8 ---\n%s",
				format, seq[format], par[format])
		}
	}
	if !strings.Contains(string(seq["text"]), "±") {
		t.Fatalf("replicated sweep text lacks CI cells:\n%s", seq["text"])
	}
	if !strings.Contains(string(seq["csv"]), "totalNS ci95") {
		t.Fatalf("replicated sweep CSV lacks split ci95 columns:\n%s", seq["csv"])
	}

	// Warm pass: same spec, same seeds, fresh runner — everything must
	// come from the persistent cache.
	_, warm, err := RunSweepOpts(spec, SweepOpts{Workers: 4, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if warm.SimRuns() != 0 {
		t.Fatalf("warm replicated pass executed %d simulations, want 0", warm.SimRuns())
	}
	want := int64(len(spec.Points()) * spec.Replicates)
	if warm.CacheHits() != want {
		t.Fatalf("warm replicated pass hit the cache %d times, want %d", warm.CacheHits(), want)
	}
}

// TestSweepOptsReplicatesOverrideSpec: the -seeds flag (SweepOpts) wins
// over the spec's replicates value, and replicates=1 output is
// bit-identical to the plain sweep.
func TestSweepOptsReplicatesOverrideSpec(t *testing.T) {
	plainTbl, _, err := RunSweep(parallelSweepSpec(), 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	spec := parallelSweepSpec()
	spec.Replicates = 3
	tbl, _, err := RunSweepOpts(spec, SweepOpts{Workers: 2, Replicates: 1})
	if err != nil {
		t.Fatal(err)
	}
	if tbl.String() != plainTbl.String() {
		t.Fatalf("SweepOpts.Replicates=1 did not override spec.Replicates=3:\n%s", tbl)
	}
	bad := parallelSweepSpec()
	bad.Replicates = -2
	if _, _, err := RunSweepOpts(bad, SweepOpts{Workers: 1}); err == nil {
		t.Fatal("negative spec.Replicates accepted")
	}
}

// TestTableReplicatesWarmCache: the figure engine's replicates share the
// persistent cache too — a second evaluation of a replicated figure
// simulates nothing.
func TestTableReplicatesWarmCache(t *testing.T) {
	cache, err := rescache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	mixes := workload.TableI()[:1]
	run := func() (*Runner, string) {
		t.Helper()
		r := NewRunner(config.Test(), mixes, 4)
		r.SetCache(cache)
		r.SetReplicates(2)
		tbl, err := r.Fig8()
		if err != nil {
			t.Fatal(err)
		}
		return r, tbl.String()
	}
	cold, coldOut := run()
	if cold.SimRuns() == 0 {
		t.Fatal("cold replicated pass executed no simulations")
	}
	warm, warmOut := run()
	if warm.SimRuns() != 0 {
		t.Fatalf("warm replicated pass executed %d simulations, want 0", warm.SimRuns())
	}
	if coldOut != warmOut {
		t.Fatalf("warm replicated pass renders differently:\n--- cold ---\n%s\n--- warm ---\n%s", coldOut, warmOut)
	}
}
