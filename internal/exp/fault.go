package exp

import (
	"fmt"
	"runtime/debug"
	"time"

	"dcasim/internal/config"
	"dcasim/internal/sim"
)

// RunPanicError is a simulation panic converted into a run error: one
// panicking config fails its own run instead of crashing the process
// and losing every in-flight sibling of the sweep. The stack is
// captured for diagnostics but kept out of Error() — error text flows
// into the deterministic sweep output, and goroutine addresses would
// make it differ run to run.
type RunPanicError struct {
	Hash  string // config.Config.Hash() of the panicking run
	Value string // the panic value, stringified
	Stack []byte // stack of the panicking goroutine, for diagnostics
}

func (e *RunPanicError) Error() string {
	return fmt.Sprintf("run panicked: %s (config %.12s…)", e.Value, e.Hash)
}

// RunTimeoutError reports a run that exceeded the per-run watchdog.
type RunTimeoutError struct {
	Hash    string // config.Config.Hash() of the runaway run
	Timeout time.Duration
}

func (e *RunTimeoutError) Error() string {
	return fmt.Sprintf("run exceeded the %v watchdog (config %.12s…)", e.Timeout, e.Hash)
}

// runIsolated invokes one simulation behind a panic barrier: a panic
// anywhere under sim.Run surfaces as a *RunPanicError for exactly this
// config. Isolation is per run, not per process — the memo records the
// error under the config's hash like any other failure, so a fail-fast
// pass still reports the lowest failing spec index and a keep-going
// pass carries on past it.
func (r *Runner) runIsolated(cfg config.Config) (res sim.Result, err error) {
	defer func() {
		if v := recover(); v != nil {
			err = &RunPanicError{Hash: cfg.Hash(), Value: fmt.Sprint(v), Stack: debug.Stack()}
		}
	}()
	return r.run(cfg)
}

// execute runs one simulation with panic isolation and, when a run
// timeout is set, a watchdog. The watchdog abandons the runaway
// goroutine rather than killing it (Go offers no preemptive cancel,
// and the simulator deliberately takes no context — the deterministic
// core must not observe wall-clock): its leak is the accepted price,
// bounded by one goroutine per timed-out run, and it can never commit
// a result because the memo records the timeout error first.
func (r *Runner) execute(cfg config.Config) (sim.Result, error) {
	if r.runTimeout <= 0 {
		return r.runIsolated(cfg)
	}
	type outcome struct {
		res sim.Result
		err error
	}
	ch := make(chan outcome, 1) // buffered: a late finisher must not block forever
	go func() {
		res, err := r.runIsolated(cfg)
		ch <- outcome{res: res, err: err}
	}()
	timer := time.NewTimer(r.runTimeout)
	defer timer.Stop()
	select {
	case o := <-ch:
		return o.res, o.err
	case <-timer.C:
		return sim.Result{}, &RunTimeoutError{Hash: cfg.Hash(), Timeout: r.runTimeout}
	}
}
