package exp

import (
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"sync"
	"time"
)

// Progress is one run-completion event of an Ensure pass: how far the
// pass is, where the resolved runs came from, and how long it has been
// going. ETA extrapolation is left to the consumer — it knows how it
// wants to smooth.
type Progress struct {
	Done  int // distinct runs resolved so far in this Ensure pass
	Total int // distinct runs this Ensure pass scheduled

	Simulated int64 // cumulative simulations this runner executed
	CacheHits int64 // cumulative persistent-cache hits

	Elapsed time.Duration // since this Ensure pass started

	// Final marks the last event of an aborted pass (a run failed with
	// Done still short of Total): renderers must finalize their output —
	// the error about to be reported must not splice into a live line.
	Final bool
}

// ETA linearly extrapolates the remaining wall-clock of the pass from
// its completion rate so far. Zero until the first run completes.
func (p Progress) ETA() time.Duration {
	if p.Done == 0 || p.Done >= p.Total {
		return 0
	}
	return time.Duration(float64(p.Elapsed) / float64(p.Done) * float64(p.Total-p.Done))
}

// ProgressFunc observes Ensure progress. Events arrive serialized (never
// two at once) but from worker goroutines, so implementations must not
// call back into the runner. A nil ProgressFunc disables reporting.
type ProgressFunc func(Progress)

// ValidateWorkers rejects nonsensical worker counts at the flag
// boundary. Every CLI defaults -j to runtime.NumCPU(), so zero or a
// negative can only be an explicit mistake — failing loudly beats
// silently substituting a default the user did not ask for.
func ValidateWorkers(j int) error {
	if j < 1 {
		return fmt.Errorf("exp: workers must be >= 1, got %d (default is the machine's %d CPUs)", j, runtime.NumCPU())
	}
	return nil
}

// StderrProgress returns a ProgressFunc that renders a live one-line
// counter to stderr — runs done/total, simulations vs cache hits, and an
// ETA — rewriting the line in place. When stderr is not a terminal it
// returns nil: batch logs and CI transcripts stay clean, per-table
// summaries already cover them.
func StderrProgress() ProgressFunc {
	if !isTerminal(os.Stderr) {
		return nil
	}
	var mu sync.Mutex
	var lastLen int
	var lastAt time.Time
	return func(p Progress) {
		mu.Lock()
		defer mu.Unlock()
		// Throttle repaints; always paint a terminating event so the
		// line ends accurate.
		now := time.Now()
		if p.Done < p.Total && !p.Final && now.Sub(lastAt) < 100*time.Millisecond {
			return
		}
		lastAt = now
		line := fmt.Sprintf("[exp] %d/%d runs  %d simulated  %d cache hits",
			p.Done, p.Total, p.Simulated, p.CacheHits)
		if eta := p.ETA(); eta > 0 {
			line += fmt.Sprintf("  ETA %s", eta.Round(time.Second))
		}
		pad := ""
		if n := lastLen - len(line); n > 0 {
			pad = strings.Repeat(" ", n)
		}
		lastLen = len(line)
		if p.Done >= p.Total || p.Final {
			// Terminate the line: the pass is over (completed or
			// aborted) and whatever prints next — including the error
			// an aborted pass is about to report — must not splice
			// into the counter.
			fmt.Fprintf(os.Stderr, "\r%s%s\n", line, pad)
			lastLen = 0
			return
		}
		fmt.Fprintf(os.Stderr, "\r%s%s", line, pad)
	}
}

// isTerminal reports whether f is attached to a character device — the
// dependency-free TTY test (no termios needed just to decide whether a
// progress line would garble a log file).
func isTerminal(f *os.File) bool {
	info, err := f.Stat()
	return err == nil && info.Mode()&os.ModeCharDevice != 0
}

// WarnCacheErr prints the standard warning when a runner computed
// results but could not persist them (CacheErr). Every binary that
// attaches a persistent cache routes through this one helper so the
// degraded mode is reported identically everywhere; a nil runner or a
// clean cache prints nothing.
func WarnCacheErr(w io.Writer, r *Runner) {
	if r == nil {
		return
	}
	if err := r.CacheErr(); err != nil {
		fmt.Fprintf(w, "warning: result cache write failed: %v (results were computed but not persisted; the next pass will re-simulate them)\n", err)
	}
}
