package exp

import (
	"dcasim/internal/core"
	"dcasim/internal/simtime"
	"dcasim/internal/stats"
)

// The extension studies go beyond the paper's figures but test claims
// the paper makes in prose:
//
//   - §V argues the conservative tWTR assumption (5 ns instead of
//     JEDEC's 10 ns) "will only lower the speedup of our design over
//     ROD" — the twtr spec verifies DCA's margin over ROD grows with
//     tWTR.
//   - §IV-B notes the scheme "is not limited to any scheduling
//     algorithm" — the sched spec swaps BLISS for FR-FCFS and FCFS.
//   - §VII argues DCA composes with BEAR by scheduling the residual
//     accesses — the bear spec enables an ideal writeback-probe filter.
//
// Like the figures, each study is a declarative TableSpec; the Table II
// tWTR value patches to the very bytes the base config already carries,
// so those runs hash identically to — and are shared with — the main
// figures' runs.

// TWTRValues are the write-to-read turnaround latencies swept: the
// optimistic half-JEDEC value the paper assumes conservatively low
// (2.5 ns), the paper's 5 ns, and the JEDEC wide-IO minimum (10 ns).
var TWTRValues = []simtime.Time{
	simtime.FromNS(2.5),
	simtime.FromNS(5),
	simtime.FromNS(10),
}

// SchedulerAlgorithms are the base algorithms swept by the sched study.
var SchedulerAlgorithms = []core.Algorithm{core.AlgBLISS, core.AlgFRFCFS, core.AlgFCFS}

func extensionSpecs() []TableSpec {
	vsCD := func(d core.Design) ColSpec {
		return ColSpec{
			Header:   d.String() + " vs CD",
			Patch:    raw(`{"Design":%q}`, d.String()),
			Metric:   MetricWS,
			Agg:      "geomean",
			Baseline: raw(`{"Design":"CD"}`),
		}
	}

	var twtrRows []RowSpec
	for _, tw := range TWTRValues {
		twtrRows = append(twtrRows, RowSpec{
			Labels: []string{tw.String()},
			Patch:  raw(`{"Timing":{"TWTR":%d}}`, int64(tw)),
		})
	}
	twtr := TableSpec{
		Name:    "twtr",
		Title:   "Extension: tWTR sensitivity (direct-mapped; paper §V claim)",
		Headers: []string{"tWTR"},
		Patch:   raw(`{"Org":"direct-mapped",%s}`, pins),
		Rows:    twtrRows,
		Cols: []ColSpec{
			vsCD(core.ROD),
			vsCD(core.DCA),
			{Header: "DCA vs ROD", Div: &[2]string{"DCA vs CD", "ROD vs CD"}},
		},
	}

	var schedRows []RowSpec
	for _, alg := range SchedulerAlgorithms {
		for _, o := range orgs {
			schedRows = append(schedRows, RowSpec{
				Labels: []string{alg.String(), o.String()},
				Patch:  raw(`{"Algorithm":%q,"Org":%q}`, alg.String(), o.String()),
			})
		}
	}
	sched := TableSpec{
		Name:    "sched",
		Title:   "Extension: DCA gain under other base schedulers (paper §IV-B claim)",
		Headers: []string{"algorithm", "org"},
		Patch:   raw(`{"XORRemap":false,"LeeWriteback":false,"TagCacheKB":0,"BEARProbe":false}`),
		Rows:    schedRows,
		Cols:    []ColSpec{vsCD(core.DCA)},
	}

	var bearRows []RowSpec
	for _, d := range designs {
		bearRows = append(bearRows, RowSpec{
			Labels: []string{"BEAR+" + d.String()},
			Patch:  raw(`{"Design":%q,"BEARProbe":true}`, d.String()),
		})
	}
	bear := TableSpec{
		Name:    "bear",
		Title:   "Extension: ideal BEAR writeback probe (direct-mapped; paper §VII claim)",
		Headers: []string{"design"},
		Patch:   raw(`{"Org":"direct-mapped","XORRemap":false,"LeeWriteback":false,"TagCacheKB":0,"Algorithm":"BLISS"}`),
		Rows:    bearRows,
		Cols: []ColSpec{
			{
				Header:   "speedup vs CD",
				Metric:   MetricWS,
				Agg:      "geomean",
				Baseline: raw(`{"Design":"CD","BEARProbe":false}`),
			},
			{
				Header: "probes elided",
				Metric: "bearElidedFrac",
				Agg:    "mean",
				Format: "pct0",
			},
		},
	}

	return []TableSpec{twtr, sched, bear}
}

// TWTRSweep reports the average speedup of ROD and DCA over CD on the
// direct-mapped organization as the write-to-read turnaround delay
// varies (the twtr spec).
func (r *Runner) TWTRSweep() (*stats.Table, error) { return r.Figure("twtr") }

// SchedulerStudy reports DCA's speedup over CD under different base
// scheduling algorithms on both organizations (the sched spec).
func (r *Runner) SchedulerStudy() (*stats.Table, error) { return r.Figure("sched") }

// BEARStudy reports each design's speedup over plain CD with an ideal
// BEAR writeback-probe filter enabled (the bear spec).
func (r *Runner) BEARStudy() (*stats.Table, error) { return r.Figure("bear") }
