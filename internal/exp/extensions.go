package exp

import (
	"fmt"

	"dcasim/internal/core"
	"dcasim/internal/dcache"
	"dcasim/internal/simtime"
	"dcasim/internal/stats"
)

// The extension studies go beyond the paper's figures but test claims
// the paper makes in prose:
//
//   - §V argues the conservative tWTR assumption (5 ns instead of
//     JEDEC's 10 ns) "will only lower the speedup of our design over
//     ROD" — TWTRSweep verifies DCA's margin over ROD grows with tWTR.
//   - §IV-B notes the scheme "is not limited to any scheduling
//     algorithm" — SchedulerStudy swaps BLISS for FR-FCFS and FCFS.
//   - §VII argues DCA composes with BEAR by scheduling the residual
//     accesses — BEARStudy enables an ideal writeback-probe filter.

// twtrKey maps a tWTR value to its run-key override: the Table II value
// (5 ns) maps to zero so those runs are shared with the main figures.
func twtrKey(tw simtime.Time) int64 {
	if tw == simtime.FromNS(5) {
		return 0
	}
	return int64(tw)
}

// TWTRValues are the write-to-read turnaround latencies swept: the
// optimistic half-JEDEC value the paper assumes conservatively low
// (2.5 ns), the paper's 5 ns, and the JEDEC wide-IO minimum (10 ns).
var TWTRValues = []simtime.Time{
	simtime.FromNS(2.5),
	simtime.FromNS(5),
	simtime.FromNS(10),
}

// TWTRSweep reports the average speedup of ROD and DCA over CD on the
// direct-mapped organization as the write-to-read turnaround delay
// varies. The paper's §V claim predicts DCA's edge over ROD widens as
// tWTR grows (ROD pays per-access turnarounds; CD and DCA amortise
// them).
func (r *Runner) TWTRSweep() (*stats.Table, error) {
	org := dcache.DirectMapped
	var keys []runKey
	for _, tw := range TWTRValues {
		for _, m := range r.mixes {
			for _, d := range designs {
				keys = append(keys, runKey{mixID: m.ID, org: org, design: d, twtrPS: twtrKey(tw)})
			}
		}
	}
	if err := r.ensure(keys); err != nil {
		return nil, err
	}
	if err := r.ensureAlone(org); err != nil {
		return nil, err
	}
	t := stats.NewTable("tWTR", "ROD vs CD", "DCA vs CD", "DCA vs ROD")
	for _, tw := range TWTRValues {
		speedup := func(d core.Design) (float64, error) {
			var vals []float64
			for _, m := range r.mixes {
				k := runKey{mixID: m.ID, org: org, design: d, twtrPS: twtrKey(tw)}
				base := runKey{mixID: m.ID, org: org, design: core.CD, twtrPS: twtrKey(tw)}
				ws, err := r.weightedSpeedup(k)
				if err != nil {
					return 0, err
				}
				wsBase, err := r.weightedSpeedup(base)
				if err != nil {
					return 0, err
				}
				vals = append(vals, ws/wsBase)
			}
			return stats.GeoMean(vals), nil
		}
		rod, err := speedup(core.ROD)
		if err != nil {
			return nil, err
		}
		dca, err := speedup(core.DCA)
		if err != nil {
			return nil, err
		}
		t.AddRowf(tw.String(), rod, dca, dca/rod)
	}
	return t, nil
}

// SchedulerAlgorithms are the base algorithms swept by SchedulerStudy.
var SchedulerAlgorithms = []core.Algorithm{core.AlgBLISS, core.AlgFRFCFS, core.AlgFCFS}

// SchedulerStudy reports DCA's speedup over CD under different base
// scheduling algorithms on both organizations, testing the paper's
// claim that the scheme is not tied to BLISS.
func (r *Runner) SchedulerStudy() (*stats.Table, error) {
	t := stats.NewTable("algorithm", "org", "DCA vs CD")
	for _, alg := range SchedulerAlgorithms {
		for _, org := range orgs {
			var keys []runKey
			for _, m := range r.mixes {
				keys = append(keys,
					runKey{mixID: m.ID, org: org, design: core.CD, alg: alg},
					runKey{mixID: m.ID, org: org, design: core.DCA, alg: alg})
			}
			if err := r.ensure(keys); err != nil {
				return nil, err
			}
			if err := r.ensureAlone(org); err != nil {
				return nil, err
			}
			var vals []float64
			for _, m := range r.mixes {
				ws, err := r.weightedSpeedup(runKey{mixID: m.ID, org: org, design: core.DCA, alg: alg})
				if err != nil {
					return nil, err
				}
				wsBase, err := r.weightedSpeedup(runKey{mixID: m.ID, org: org, design: core.CD, alg: alg})
				if err != nil {
					return nil, err
				}
				vals = append(vals, ws/wsBase)
			}
			t.AddRowf(alg.String(), org.String(), stats.GeoMean(vals))
		}
	}
	return t, nil
}

// BEARStudy enables an ideal BEAR writeback-probe filter (writeback
// hits skip their tag read) on the direct-mapped organization and
// reports each design's speedup over plain CD, plus the fraction of
// writeback probes the filter removed. DCA should retain an advantage
// on the residual accesses, per the paper's related-work argument.
func (r *Runner) BEARStudy() (*stats.Table, error) {
	org := dcache.DirectMapped
	var keys []runKey
	for _, m := range r.mixes {
		keys = append(keys, runKey{mixID: m.ID, org: org, design: core.CD})
		for _, d := range designs {
			keys = append(keys, runKey{mixID: m.ID, org: org, design: d, bear: true})
		}
	}
	if err := r.ensure(keys); err != nil {
		return nil, err
	}
	if err := r.ensureAlone(org); err != nil {
		return nil, err
	}
	t := stats.NewTable("design", "speedup vs CD", "probes elided")
	for _, d := range designs {
		var vals, elided []float64
		for _, m := range r.mixes {
			k := runKey{mixID: m.ID, org: org, design: d, bear: true}
			ws, err := r.weightedSpeedup(k)
			if err != nil {
				return nil, err
			}
			wsBase, err := r.weightedSpeedup(runKey{mixID: m.ID, org: org, design: core.CD})
			if err != nil {
				return nil, err
			}
			vals = append(vals, ws/wsBase)
			res := r.result(k)
			if res.DCache.WritebackReqs > 0 {
				elided = append(elided, float64(res.DCache.BEARElided)/float64(res.DCache.WritebackReqs))
			}
		}
		t.AddRowf("BEAR+"+d.String(), stats.GeoMean(vals), fmt.Sprintf("%.0f%%", 100*stats.Mean(elided)))
	}
	return t, nil
}
