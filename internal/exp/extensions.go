package exp

import (
	"encoding/json"
	"fmt"
	"strings"

	"dcasim/internal/core"
	"dcasim/internal/sched"
	"dcasim/internal/simtime"
	"dcasim/internal/stats"
)

// The extension studies go beyond the paper's figures but test claims
// the paper makes in prose:
//
//   - §V argues the conservative tWTR assumption (5 ns instead of
//     JEDEC's 10 ns) "will only lower the speedup of our design over
//     ROD" — the twtr spec verifies DCA's margin over ROD grows with
//     tWTR.
//   - §IV-B notes the scheme "is not limited to any scheduling
//     algorithm" — the sched spec swaps BLISS for FR-FCFS and FCFS.
//   - §VII argues DCA composes with BEAR by scheduling the residual
//     accesses — the bear spec enables an ideal writeback-probe filter.
//
// Like the figures, each study is a declarative TableSpec; the Table II
// tWTR value patches to the very bytes the base config already carries,
// so those runs hash identically to — and are shared with — the main
// figures' runs.

// TWTRValues are the write-to-read turnaround latencies swept: the
// optimistic half-JEDEC value the paper assumes conservatively low
// (2.5 ns), the paper's 5 ns, and the JEDEC wide-IO minimum (10 ns).
var TWTRValues = []simtime.Time{
	simtime.FromNS(2.5),
	simtime.FromNS(5),
	simtime.FromNS(10),
}

// SchedulerAlgorithms are the base algorithms swept by the sched study.
// Deliberately static rather than derived from the policy registry: the
// golden figure tables pin the sched study's exact rows, so a policy
// package registering itself must not silently grow this list. Sweep
// additional registered policies (e.g. ATLAS) through sweep specs —
// see examples/sweep/policy_comparison.json — or PolicyAxes.
var SchedulerAlgorithms = []core.Algorithm{core.AlgBLISS, core.AlgFRFCFS, core.AlgFCFS}

// PolicyAxes returns the ready-made sweep axes a registered scheduling
// policy declared (sched.Registration.SweepAxes) converted to sweep-spec
// axes, so `dcasim sweep` specs and programmatic sweeps can pick them up
// without hand-writing the patches.
func PolicyAxes(name string) ([]SweepAxis, error) {
	r, ok := sched.Lookup(name)
	if !ok {
		return nil, fmt.Errorf("exp: unknown scheduling policy %q (registered: %s)",
			name, strings.Join(sched.Names(), ", "))
	}
	axes := make([]SweepAxis, 0, len(r.SweepAxes))
	for _, a := range r.SweepAxes {
		ax := SweepAxis{Name: a.Name}
		for _, p := range a.Points {
			if !json.Valid([]byte(p.Patch)) {
				return nil, fmt.Errorf("exp: policy %q axis %q point %q: invalid patch %s",
					name, a.Name, p.Label, p.Patch)
			}
			ax.Values = append(ax.Values, SweepPoint{Label: p.Label, Set: json.RawMessage(p.Patch)})
		}
		axes = append(axes, ax)
	}
	return axes, nil
}

// DescribePolicies renders the policy registry as a text table for the
// CLIs' -list-policies flags: canonical name, aliases, declared tunables
// with defaults and ranges, and the one-line description.
func DescribePolicies() string {
	var b strings.Builder
	for _, name := range sched.Names() {
		r, ok := sched.Lookup(name)
		if !ok {
			continue
		}
		fmt.Fprintf(&b, "%s", name)
		if len(r.Aliases) > 0 {
			fmt.Fprintf(&b, " (aliases: %s)", strings.Join(r.Aliases, ", "))
		}
		if r.Doc != "" {
			fmt.Fprintf(&b, " — %s", r.Doc)
		}
		b.WriteString("\n")
		for _, p := range r.Params {
			fmt.Fprintf(&b, "    %-16s default %v", p.Name, p.Default)
			if p.Max > p.Min {
				fmt.Fprintf(&b, "  range [%v, %v]", p.Min, p.Max)
			}
			if p.Doc != "" {
				fmt.Fprintf(&b, "  %s", p.Doc)
			}
			b.WriteString("\n")
		}
		for _, a := range r.SweepAxes {
			labels := make([]string, len(a.Points))
			for i, pt := range a.Points {
				labels[i] = pt.Label
			}
			fmt.Fprintf(&b, "    sweep axis %s: %s\n", a.Name, strings.Join(labels, ", "))
		}
	}
	return b.String()
}

func extensionSpecs() []TableSpec {
	vsCD := func(d core.Design) ColSpec {
		return ColSpec{
			Header:   d.String() + " vs CD",
			Patch:    raw(`{"Design":%q}`, d.String()),
			Metric:   MetricWS,
			Agg:      "geomean",
			Baseline: raw(`{"Design":"CD"}`),
		}
	}

	var twtrRows []RowSpec
	for _, tw := range TWTRValues {
		twtrRows = append(twtrRows, RowSpec{
			Labels: []string{tw.String()},
			Patch:  raw(`{"Timing":{"TWTR":%d}}`, int64(tw)),
		})
	}
	twtr := TableSpec{
		Name:    "twtr",
		Title:   "Extension: tWTR sensitivity (direct-mapped; paper §V claim)",
		Headers: []string{"tWTR"},
		Patch:   raw(`{"Org":"direct-mapped",%s}`, pins),
		Rows:    twtrRows,
		Cols: []ColSpec{
			vsCD(core.ROD),
			vsCD(core.DCA),
			{Header: "DCA vs ROD", Div: &[2]string{"DCA vs CD", "ROD vs CD"}},
		},
	}

	var schedRows []RowSpec
	for _, alg := range SchedulerAlgorithms {
		for _, o := range orgs {
			schedRows = append(schedRows, RowSpec{
				Labels: []string{alg.String(), o.String()},
				Patch:  raw(`{"Algorithm":%q,"Org":%q}`, alg.String(), o.String()),
			})
		}
	}
	sched := TableSpec{
		Name:    "sched",
		Title:   "Extension: DCA gain under other base schedulers (paper §IV-B claim)",
		Headers: []string{"algorithm", "org"},
		Patch:   raw(`{"XORRemap":false,"LeeWriteback":false,"TagCacheKB":0,"BEARProbe":false}`),
		Rows:    schedRows,
		Cols:    []ColSpec{vsCD(core.DCA)},
	}

	var bearRows []RowSpec
	for _, d := range designs {
		bearRows = append(bearRows, RowSpec{
			Labels: []string{"BEAR+" + d.String()},
			Patch:  raw(`{"Design":%q,"BEARProbe":true}`, d.String()),
		})
	}
	bear := TableSpec{
		Name:    "bear",
		Title:   "Extension: ideal BEAR writeback probe (direct-mapped; paper §VII claim)",
		Headers: []string{"design"},
		Patch:   raw(`{"Org":"direct-mapped","XORRemap":false,"LeeWriteback":false,"TagCacheKB":0,"Algorithm":"BLISS"}`),
		Rows:    bearRows,
		Cols: []ColSpec{
			{
				Header:   "speedup vs CD",
				Metric:   MetricWS,
				Agg:      "geomean",
				Baseline: raw(`{"Design":"CD","BEARProbe":false}`),
			},
			{
				Header: "probes elided",
				Metric: "bearElidedFrac",
				Agg:    "mean",
				Format: "pct0",
			},
		},
	}

	return []TableSpec{twtr, sched, bear}
}

// TWTRSweep reports the average speedup of ROD and DCA over CD on the
// direct-mapped organization as the write-to-read turnaround delay
// varies (the twtr spec).
func (r *Runner) TWTRSweep() (*stats.Table, error) { return r.Figure("twtr") }

// SchedulerStudy reports DCA's speedup over CD under different base
// scheduling algorithms on both organizations (the sched spec).
func (r *Runner) SchedulerStudy() (*stats.Table, error) { return r.Figure("sched") }

// BEARStudy reports each design's speedup over plain CD with an ideal
// BEAR writeback-probe filter enabled (the bear spec).
func (r *Runner) BEARStudy() (*stats.Table, error) { return r.Figure("bear") }
