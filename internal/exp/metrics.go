package exp

import (
	"fmt"
	"sort"

	"dcasim/internal/sim"
)

// A metricFunc extracts one scalar from a run. ok is false when the run
// carries no sample for the metric (e.g. tag-cache hit rate without a
// tag cache); such runs are skipped by the aggregation, exactly as the
// hand-written drivers skipped them.
type metricFunc func(res sim.Result) (v float64, ok bool)

// MetricWS is the weighted-speedup metric. It is resolved by the table
// engine rather than this registry because it needs the per-benchmark
// alone runs of the mix, not just the run's own result.
const MetricWS = "ws"

// metrics maps spec metric names to extractors. Every quantity a figure
// plots — and the run-level quantities user sweeps care about — is
// reachable by name, so a new table or sweep needs no new Go code.
var metrics = map[string]metricFunc{
	"totalNS":  func(r sim.Result) (float64, bool) { return r.TotalNS(), true },
	"ipcTotal": func(r sim.Result) (float64, bool) { return sumF(r.IPC), true },
	"ipc0": func(r sim.Result) (float64, bool) {
		if len(r.IPC) == 0 {
			return 0, false
		}
		return r.IPC[0], true
	},
	"readHitRate":           func(r sim.Result) (float64, bool) { return r.DCache.ReadHitRate(), true },
	"avgReadLatencyNS":      func(r sim.Result) (float64, bool) { return r.AvgReadLatencyNS(), true },
	"l2MissLatencyNS":       func(r sim.Result) (float64, bool) { return r.L2MissLatencyNS, true },
	"l2MissRate":            func(r sim.Result) (float64, bool) { return r.L2MissRate, true },
	"readRowHitRate":        func(r sim.Result) (float64, bool) { return r.ReadRowHitRate(), true },
	"accessesPerTurnaround": func(r sim.Result) (float64, bool) { return r.AccessesPerTurnaround(), true },
	"turnarounds":           func(r sim.Result) (float64, bool) { return float64(r.DRAM.Turnarounds), true },
	"dramAccesses":          func(r sim.Result) (float64, bool) { return float64(r.DRAM.Accesses), true },
	"dramTagAccesses":       func(r sim.Result) (float64, bool) { return float64(r.DRAMTagAccesses), true },
	"prIssued":              func(r sim.Result) (float64, bool) { return float64(r.Ctrl.PRIssued), true },
	"lrIssued":              func(r sim.Result) (float64, bool) { return float64(r.Ctrl.LRIssued), true },
	"ofsIssues":             func(r sim.Result) (float64, bool) { return float64(r.Ctrl.OFSIssues), true },
	"writesIssued":          func(r sim.Result) (float64, bool) { return float64(r.Ctrl.WritesIssued), true },
	"forcedFlushes":         func(r sim.Result) (float64, bool) { return float64(r.Ctrl.ForcedFlushes), true },
	"mainMemReads":          func(r sim.Result) (float64, bool) { return float64(r.MainMemReads), true },
	"mainMemWrites":         func(r sim.Result) (float64, bool) { return float64(r.MainMemWrites), true },
	"tagCacheHitRate": func(r sim.Result) (float64, bool) {
		if r.TagCacheLookups == 0 {
			return 0, false
		}
		return float64(r.TagCacheHits) / float64(r.TagCacheLookups), true
	},
	"bearElidedFrac": func(r sim.Result) (float64, bool) {
		if r.DCache.WritebackReqs == 0 {
			return 0, false
		}
		return float64(r.DCache.BEARElided) / float64(r.DCache.WritebackReqs), true
	},
}

func sumF(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}

// MetricNames lists every registry metric, sorted, for error messages
// and docs.
func MetricNames() []string {
	names := make([]string, 0, len(metrics))
	for n := range metrics {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// lookupMetric resolves a registry metric name. MetricWS is not in the
// registry — table specs resolve it separately (it needs alone runs)
// and sweeps reject it — so it is deliberately absent from the
// suggestion list.
func lookupMetric(name string) (metricFunc, error) {
	f, ok := metrics[name]
	if !ok {
		return nil, fmt.Errorf("exp: unknown metric %q (have %v)", name, MetricNames())
	}
	return f, nil
}
