package exp

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"dcasim/internal/cachefs"
	"dcasim/internal/config"
	"dcasim/internal/rescache"
	"dcasim/internal/sim"
)

// fakeCfg returns a distinct, hashable config for runner tests that
// substitute the simulator.
func fakeCfg(seed uint64) config.Config {
	cfg := config.Test()
	cfg.Benchmarks = []string{"mcf", "lbm", "libquantum", "omnetpp"}
	cfg.Seed = seed
	return cfg
}

// fakeSim is a substitute simulator: instant results, panicking on the
// seeds in panics, so the panic-isolation machinery can be exercised
// without multi-second simulations.
func fakeSim(panics ...uint64) func(config.Config) (sim.Result, error) {
	return func(cfg config.Config) (sim.Result, error) {
		for _, s := range panics {
			if cfg.Seed == s {
				panic(fmt.Sprintf("injected panic at seed %d", s)) // distinct, deterministic value
			}
		}
		return sim.Result{IPC: []float64{float64(cfg.Seed)}}, nil
	}
}

// TestRunPanicIsolated: a panic inside one simulation becomes a typed
// error for exactly that run — carrying the config hash and a captured
// stack — and does not poison the runner for other configs.
func TestRunPanicIsolated(t *testing.T) {
	r := NewRunner(config.Test(), nil, 2)
	r.run = fakeSim(666)

	if _, err := r.Run(fakeCfg(1)); err != nil {
		t.Fatalf("healthy run failed: %v", err)
	}
	_, err := r.Run(fakeCfg(666))
	var pe *RunPanicError
	if !errors.As(err, &pe) {
		t.Fatalf("panicking run returned %v, want *RunPanicError", err)
	}
	if pe.Hash != fakeCfg(666).Hash() {
		t.Fatalf("panic error carries hash %q, want the run's %q", pe.Hash, fakeCfg(666).Hash())
	}
	if len(pe.Stack) == 0 {
		t.Fatal("panic error lost the stack trace")
	}
	if strings.Contains(pe.Error(), "goroutine") {
		t.Fatal("Error() leaks the stack trace into the deterministic error text")
	}
	// The runner is still healthy after the panic.
	if _, err := r.Run(fakeCfg(2)); err != nil {
		t.Fatalf("run after a sibling's panic failed: %v", err)
	}
	// The failure is memoized: a retry of the same config must not
	// re-execute and must report the same error.
	if _, err2 := r.Run(fakeCfg(666)); err2 == nil || err2.Error() != err.Error() {
		t.Fatalf("memoized panic error diverges: %v vs %v", err2, err)
	}
}

// TestEnsureFailFastPanicDeterministic: with panicking configs in the
// batch, fail-fast Ensure reports the lowest-spec-index failure with an
// identical message at every worker count.
func TestEnsureFailFastPanicDeterministic(t *testing.T) {
	cfgs := []config.Config{fakeCfg(1), fakeCfg(666), fakeCfg(2), fakeCfg(3), fakeCfg(777)}
	var msgs []string
	for _, workers := range []int{1, 2, 8} {
		r := NewRunner(config.Test(), nil, workers)
		r.run = fakeSim(666, 777)
		err := r.Ensure(cfgs)
		if err == nil {
			t.Fatalf("workers=%d: Ensure swallowed the panics", workers)
		}
		var pe *RunPanicError
		if !errors.As(err, &pe) {
			t.Fatalf("workers=%d: Ensure error %v does not unwrap to *RunPanicError", workers, err)
		}
		if want := fakeCfg(666).Hash(); pe.Hash != want {
			t.Errorf("workers=%d: reported hash %.12s, want the spec-order-first panic %.12s", workers, pe.Hash, want)
		}
		msgs = append(msgs, err.Error())
	}
	for i := 1; i < len(msgs); i++ {
		if msgs[i] != msgs[0] {
			t.Fatalf("fail-fast error text diverges across worker counts:\n%s\n%s", msgs[0], msgs[i])
		}
	}
}

// TestEnsureKeepGoingJoinsAll: keep-going mode runs everything despite
// failures, joins every distinct failure in spec order, and the joined
// message is byte-identical at every worker count.
func TestEnsureKeepGoingJoinsAll(t *testing.T) {
	cfgs := []config.Config{
		fakeCfg(666), fakeCfg(1), fakeCfg(777), fakeCfg(2),
		fakeCfg(3), fakeCfg(888), fakeCfg(666), // duplicate failure: reported once
	}
	var msgs []string
	for _, workers := range []int{1, 2, 8} {
		r := NewRunner(config.Test(), nil, workers)
		r.run = fakeSim(666, 777, 888)
		r.SetKeepGoing(true)
		err := r.Ensure(cfgs)
		if err == nil {
			t.Fatalf("workers=%d: keep-going Ensure swallowed the failures", workers)
		}
		if got := r.SimRuns(); got != 3 {
			t.Errorf("workers=%d: keep-going executed %d healthy runs, want 3 (failures must not stop dispatch)", workers, got)
		}
		for _, seed := range []string{"666", "777", "888"} {
			if !strings.Contains(err.Error(), "seed "+seed) {
				t.Errorf("workers=%d: joined error is missing the seed-%s failure:\n%v", workers, seed, err)
			}
		}
		if n := strings.Count(err.Error(), "exp: run "+fakeCfg(666).Hash()[:12]); n != 1 {
			t.Errorf("workers=%d: duplicate config reported %d times, want once", workers, n)
		}
		msgs = append(msgs, err.Error())
	}
	for i := 1; i < len(msgs); i++ {
		if msgs[i] != msgs[0] {
			t.Fatalf("keep-going error text diverges across worker counts:\n%s\n%s", msgs[0], msgs[i])
		}
	}
}

// TestRunTimeout: a hung simulation trips the watchdog with a typed,
// hash-carrying error instead of hanging the sweep.
func TestRunTimeout(t *testing.T) {
	r := NewRunner(config.Test(), nil, 1)
	r.run = func(cfg config.Config) (sim.Result, error) {
		if cfg.Seed == 13 {
			select {} // a run that never returns
		}
		return sim.Result{IPC: []float64{1}}, nil
	}
	r.SetRunTimeout(50 * time.Millisecond)

	if _, err := r.Run(fakeCfg(1)); err != nil {
		t.Fatalf("fast run tripped the watchdog: %v", err)
	}
	_, err := r.Run(fakeCfg(13))
	var te *RunTimeoutError
	if !errors.As(err, &te) {
		t.Fatalf("hung run returned %v, want *RunTimeoutError", err)
	}
	if te.Hash != fakeCfg(13).Hash() || te.Timeout != 50*time.Millisecond {
		t.Fatalf("timeout error carries (%q, %v), want the run's hash and 50ms", te.Hash, te.Timeout)
	}
}

// TestSweepSurvivesCacheFSFailure: with the persistent cache's
// filesystem completely dead, a sweep must still complete from pure
// computation — the cache degrades to nothing, surfacing the failure
// only through CacheErr/WarnCacheErr.
func TestSweepSurvivesCacheFSFailure(t *testing.T) {
	fault := cachefs.NewFault(cachefs.OS())
	cache, err := rescache.OpenFS(t.TempDir(), fault)
	if err != nil {
		t.Fatal(err)
	}
	fault.CrashAt(cachefs.OpReadFile, 1) // every cache operation fails from the first Get on

	tbl, r, err := RunSweepOpts(parallelSweepSpec(), SweepOpts{Workers: 2, Cache: cache})
	if err != nil {
		t.Fatalf("sweep failed on a dead cache filesystem: %v", err)
	}
	if tbl == nil {
		t.Fatal("sweep returned no table")
	}
	if got := r.SimRuns(); got != 4 {
		t.Fatalf("sweep executed %d simulations, want all 4 (dead cache = no hits)", got)
	}
	if r.CacheErr() == nil {
		t.Fatal("CacheErr did not surface the failed cache writes")
	}
	var buf bytes.Buffer
	WarnCacheErr(&buf, r)
	if !strings.Contains(buf.String(), "cache write failed") {
		t.Fatalf("WarnCacheErr printed %q, want the standard warning", buf.String())
	}
	// A healthy runner warns nothing.
	buf.Reset()
	WarnCacheErr(&buf, NewRunner(config.Test(), nil, 1))
	WarnCacheErr(&buf, nil)
	if buf.Len() != 0 {
		t.Fatalf("WarnCacheErr printed %q for a healthy runner", buf.String())
	}
}

// TestKeepGoingSweepResumable: a keep-going sweep with some failing
// points persists every successful point, so a rerun after the failures
// are fixed recomputes nothing that already succeeded.
func TestKeepGoingSweepResumable(t *testing.T) {
	dir := t.TempDir()
	cache, err := rescache.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	spec := parallelSweepSpec()
	// Sabotage half the sweep: a trace path that does not exist passes
	// config validation (replay mode) but fails when the run opens it.
	spec.Axes = append(spec.Axes, SweepAxis{Name: "src", Values: []SweepPoint{
		{Label: "live", Set: raw(`{}`)},
		{Label: "ghost", Set: raw(`{"TracePath":"testdata/no-such-trace.dct","Benchmarks":[]}`)},
	}})

	tbl, r, err := RunSweepOpts(spec, SweepOpts{Workers: 4, Cache: cache, KeepGoing: true})
	if err == nil {
		t.Fatal("keep-going sweep swallowed the ghost-trace failures")
	}
	if tbl != nil {
		t.Fatal("failed sweep returned a table")
	}
	if r == nil {
		t.Fatal("failed sweep returned no runner")
	}
	if got := r.SimRuns(); got != 4 {
		t.Fatalf("keep-going ran %d healthy points, want 4", got)
	}
	if n := strings.Count(err.Error(), "no-such-trace"); n != 4 {
		t.Fatalf("joined error reports %d ghost points, want 4:\n%v", n, err)
	}

	// Resume with the failures fixed (drop the ghost axis): every
	// surviving point must come from the cache.
	tbl2, r2, err := RunSweepOpts(parallelSweepSpec(), SweepOpts{Workers: 4, Cache: cache})
	if err != nil {
		t.Fatalf("resumed sweep failed: %v", err)
	}
	if tbl2 == nil {
		t.Fatal("resumed sweep returned no table")
	}
	if got := r2.SimRuns(); got != 0 {
		t.Fatalf("resumed sweep re-simulated %d points, want 0 (all cached)", got)
	}
	if got := r2.CacheHits(); got != 4 {
		t.Fatalf("resumed sweep had %d cache hits, want 4", got)
	}
}
