package exp

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dcasim/internal/config"
	"dcasim/internal/rescache"
	"dcasim/internal/workload"
)

// cachedRunner builds a fresh runner (fresh in-memory memo) over the
// given persistent cache directory.
func cachedRunner(t *testing.T, dir string, nmix int) *Runner {
	t.Helper()
	c, err := rescache.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	r := NewRunner(config.Test(), workload.TableI()[:nmix], 2)
	r.SetCache(c)
	return r
}

// evaluate runs a representative slice of the evaluation — a speedup
// figure (which pulls in alone runs), a metric figure, and an extension
// study — and returns the concatenated rendered tables.
func evaluate(t *testing.T, r *Runner) string {
	t.Helper()
	var b strings.Builder
	for _, name := range []string{"fig8", "fig14", "bear"} {
		tbl, err := r.Figure(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		b.WriteString(tbl.String())
	}
	if err := r.CacheErr(); err != nil {
		t.Fatalf("cache write failed: %v", err)
	}
	return b.String()
}

// TestPersistentCacheMakesSecondPassFree is the headline cache property:
// a second evaluation pass by a brand-new runner (a brand-new process,
// as far as the cache can tell) against a warm directory must execute
// zero simulations yet render byte-identical tables.
func TestPersistentCacheMakesSecondPassFree(t *testing.T) {
	dir := t.TempDir()

	cold := cachedRunner(t, dir, 2)
	first := evaluate(t, cold)
	if cold.SimRuns() == 0 {
		t.Fatal("cold pass executed no simulations — cache dir was not empty?")
	}

	warm := cachedRunner(t, dir, 2)
	second := evaluate(t, warm)
	if n := warm.SimRuns(); n != 0 {
		t.Fatalf("warm pass executed %d simulations, want 0", n)
	}
	if first != second {
		t.Fatalf("warm-cache tables diverged:\n--- cold\n%s\n--- warm\n%s", first, second)
	}
}

// TestCorruptCacheEntryIsRecomputed: a damaged entry must be silently
// recomputed (and rewritten), never trusted, and the tables must come
// out identical to the undamaged pass.
func TestCorruptCacheEntryIsRecomputed(t *testing.T) {
	dir := t.TempDir()
	first := evaluate(t, cachedRunner(t, dir, 1))

	entries, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil || len(entries) == 0 {
		t.Fatalf("no cache entries written (err=%v)", err)
	}
	victim := entries[len(entries)/2]
	if err := os.WriteFile(victim, []byte(`{"schema":1,"key":"bogus","result":{}}`), 0o644); err != nil {
		t.Fatal(err)
	}

	r := cachedRunner(t, dir, 1)
	second := evaluate(t, r)
	if n := r.SimRuns(); n != 1 {
		t.Fatalf("executed %d simulations after corrupting one entry, want exactly 1", n)
	}
	if first != second {
		t.Fatalf("tables diverged after recompute:\n--- before\n%s\n--- after\n%s", first, second)
	}

	// The recompute must also have repaired the entry on disk.
	r2 := cachedRunner(t, dir, 1)
	evaluate(t, r2)
	if n := r2.SimRuns(); n != 0 {
		t.Fatalf("corrupted entry was not rewritten: third pass executed %d simulations", n)
	}
}

// TestTraceRunsBypassCache: the config hash covers the trace *path*,
// not the file's contents, and a recording is a side effect — so
// record/replay runs must never be served from or stored in the
// persistent cache.
func TestTraceRunsBypassCache(t *testing.T) {
	dir := t.TempDir()
	tracePath := filepath.Join(t.TempDir(), "rec.dct")
	noEntries := func(when string) {
		t.Helper()
		if entries, _ := filepath.Glob(filepath.Join(dir, "*.json")); len(entries) != 0 {
			t.Fatalf("%s: trace run left %d cache entries", when, len(entries))
		}
	}

	rec := config.Test()
	rec.Benchmarks = []string{"mcf"}
	rec.RecordPath = tracePath
	if _, err := cachedRunner(t, dir, 1).Run(rec); err != nil {
		t.Fatal(err)
	}
	noEntries("after record")
	if _, err := os.Stat(tracePath); err != nil {
		t.Fatalf("recording not written: %v", err)
	}

	rep := config.Test()
	rep.TracePath = tracePath
	for pass := 1; pass <= 2; pass++ {
		r := cachedRunner(t, dir, 1)
		if _, err := r.Run(rep); err != nil {
			t.Fatal(err)
		}
		if r.SimRuns() != 1 {
			t.Fatalf("replay pass %d executed %d simulations, want 1 (served stale trace result from cache?)", pass, r.SimRuns())
		}
	}
	noEntries("after replay")
}

// TestCacheSharedAcrossScenarios: two runners with overlapping but
// different workloads share the overlapping runs through the directory.
func TestCacheSharedAcrossScenarios(t *testing.T) {
	dir := t.TempDir()
	one := cachedRunner(t, dir, 1)
	if _, err := one.Fig8(); err != nil {
		t.Fatal(err)
	}
	// Mix 2 adds new runs but mix 1's runs (and its alone runs) are warm.
	two := cachedRunner(t, dir, 2)
	if _, err := two.Fig8(); err != nil {
		t.Fatal(err)
	}
	solo := NewRunner(config.Test(), workload.TableI()[1:2], 2)
	if _, err := solo.Fig8(); err != nil {
		t.Fatal(err)
	}
	if two.SimRuns() >= one.SimRuns()+solo.SimRuns() {
		t.Fatalf("overlapping runs not shared: %d + %d vs %d new", one.SimRuns(), solo.SimRuns(), two.SimRuns())
	}
}
