package exp

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"dcasim/internal/rescache"
)

const testSweepJSON = `{
  "schema": 1,
  "name": "ff-mini",
  "scale": "test",
  "base": {
    "Benchmarks": ["milc", "leslie3d", "omnetpp", "gcc"],
    "Design": "DCA"
  },
  "axes": [
    {"name": "org", "values": [
      {"label": "sa", "set": {"Org": "set-assoc"}},
      {"label": "dm", "set": {"Org": "direct-mapped"}}
    ]},
    {"name": "ff", "values": [
      {"label": "FF-0", "set": {"Ctrl": {"FlushFactor": 0}}},
      {"label": "FF-4", "set": {"Ctrl": {"FlushFactor": 4}}}
    ]}
  ],
  "metrics": ["totalNS", "ofsIssues", "readRowHitRate"]
}`

func testSweep(t *testing.T) SweepSpec {
	t.Helper()
	path := filepath.Join(t.TempDir(), "sweep.json")
	if err := os.WriteFile(path, []byte(testSweepJSON), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := LoadSweep(path)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSweepPointsRowMajor(t *testing.T) {
	s := testSweep(t)
	got := s.Points()
	want := [][]int{{0, 0}, {0, 1}, {1, 0}, {1, 1}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("points %v, want %v", got, want)
	}
}

func TestSweepRuns(t *testing.T) {
	s := testSweep(t)
	cache, err := rescache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	tbl, r, err := RunSweep(s, 2, cache)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := tbl.Header(), []string{"org", "ff", "totalNS", "ofsIssues", "readRowHitRate"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("header %v, want %v", got, want)
	}
	if len(tbl.Rows()) != 4 {
		t.Fatalf("%d rows, want 4", len(tbl.Rows()))
	}
	if r.SimRuns() != 4 {
		t.Fatalf("%d simulations for 4 distinct points", r.SimRuns())
	}
	// The flushing factor must actually reach the controller: FF-0
	// forbids row-conflicting opportunistic flushes, so the two FF rows
	// of one organization differ.
	rows := tbl.Rows()
	if reflect.DeepEqual(rows[0][2:], rows[1][2:]) {
		t.Fatalf("FF-0 and FF-4 produced identical results — knob not wired?\n%s", tbl)
	}

	// A second sweep from a cold runner but warm cache is free.
	_, r2, err := RunSweep(s, 2, cache)
	if err != nil {
		t.Fatal(err)
	}
	if r2.SimRuns() != 0 {
		t.Fatalf("warm sweep executed %d simulations, want 0", r2.SimRuns())
	}
}

// TestSweepRejectsRecordPath: sweep points run in parallel, so a shared
// RecordPath would have every run truncating the same trace file.
func TestSweepRejectsRecordPath(t *testing.T) {
	var s SweepSpec
	if err := json.Unmarshal([]byte(testSweepJSON), &s); err != nil {
		t.Fatal(err)
	}
	s.Base = json.RawMessage(`{"Benchmarks":["mcf"],"RecordPath":"x.dct"}`)
	_, _, err := RunSweep(s, 1, nil)
	if err == nil || !strings.Contains(err.Error(), "RecordPath") {
		t.Fatalf("sweep with RecordPath not rejected: %v", err)
	}
}

func TestSweepValidation(t *testing.T) {
	ok := testSweep(t)

	mutate := func(f func(*SweepSpec)) SweepSpec {
		var s SweepSpec
		if err := json.Unmarshal([]byte(testSweepJSON), &s); err != nil {
			t.Fatal(err)
		}
		f(&s)
		return s
	}
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	cases := map[string]SweepSpec{
		"wrong schema": mutate(func(s *SweepSpec) { s.Schema = 99 }),
		"no axes":      mutate(func(s *SweepSpec) { s.Axes = nil }),
		"empty axis":   mutate(func(s *SweepSpec) { s.Axes[0].Values = nil }),
		"bad metric":   mutate(func(s *SweepSpec) { s.Metrics = []string{"nope"} }),
		"no metrics":   mutate(func(s *SweepSpec) { s.Metrics = nil }),
	}
	for name, s := range cases {
		if err := s.Validate(); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}

	// Unknown top-level fields in the file are rejected at load.
	path := filepath.Join(t.TempDir(), "bad.json")
	bad := strings.Replace(testSweepJSON, `"name"`, `"nmae"`, 1)
	if err := os.WriteFile(path, []byte(bad), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadSweep(path); err == nil {
		t.Error("LoadSweep accepted an unknown field")
	}
}
