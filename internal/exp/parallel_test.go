package exp

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync/atomic"
	"testing"

	"dcasim/internal/config"
	"dcasim/internal/workload"
)

// TestParallelMatchesSequentialFig8 is the headline determinism
// guarantee of the parallel engine: the rendered Fig. 8 table must be
// byte-identical between one worker and many, because cells commit in
// spec order no matter which worker finished first.
func TestParallelMatchesSequentialFig8(t *testing.T) {
	mixes := workload.TableI()[:2]
	seq, err := NewRunner(config.Test(), mixes, 1).Fig8()
	if err != nil {
		t.Fatal(err)
	}
	par, err := NewRunner(config.Test(), mixes, 8).Fig8()
	if err != nil {
		t.Fatal(err)
	}
	if seq.String() != par.String() {
		t.Fatalf("Fig8 diverges between -j 1 and -j 8:\n--- j1 ---\n%s\n--- j8 ---\n%s", seq, par)
	}
}

// parallelSweepSpec is a small two-axis sweep used by the determinism
// tests: 2x2 cartesian points at the test scale.
func parallelSweepSpec() SweepSpec {
	return SweepSpec{
		Schema: config.SchemaVersion,
		Name:   "parallel-determinism",
		Scale:  "test",
		Base:   raw(`{"Benchmarks":["mcf","lbm","libquantum","omnetpp"]}`),
		Axes: []SweepAxis{
			{Name: "design", Values: []SweepPoint{
				{Label: "CD", Set: raw(`{"Design":"CD"}`)},
				{Label: "DCA", Set: raw(`{"Design":"DCA"}`)},
			}},
			{Name: "org", Values: []SweepPoint{
				{Label: "sa", Set: raw(`{"Org":"set-assoc"}`)},
				{Label: "dm", Set: raw(`{"Org":"direct-mapped"}`)},
			}},
		},
		Metrics: []string{"totalNS", "readHitRate"},
	}
}

// TestParallelMatchesSequentialSweep pins the same guarantee for the
// sweep engine across every output format: text, CSV, and JSON renders
// must be byte-identical between -j 1 and -j 8.
func TestParallelMatchesSequentialSweep(t *testing.T) {
	spec := parallelSweepSpec()
	render := func(workers int) map[string][]byte {
		t.Helper()
		tbl, _, err := RunSweep(spec, workers, nil)
		if err != nil {
			t.Fatal(err)
		}
		out := map[string][]byte{}
		for _, format := range []string{"text", "csv", "json"} {
			var buf bytes.Buffer
			if err := tbl.Write(&buf, format); err != nil {
				t.Fatal(err)
			}
			out[format] = buf.Bytes()
		}
		return out
	}
	seq, par := render(1), render(8)
	for format, want := range seq {
		if !bytes.Equal(par[format], want) {
			t.Errorf("sweep %s output diverges between -j 1 and -j 8:\n--- j1 ---\n%s\n--- j8 ---\n%s",
				format, want, par[format])
		}
	}
}

// TestValidateWorkers: -j 0 and negatives are configuration errors, not
// silently-substituted defaults.
func TestValidateWorkers(t *testing.T) {
	for _, j := range []int{0, -1, -8} {
		if err := ValidateWorkers(j); err == nil {
			t.Errorf("ValidateWorkers(%d) accepted", j)
		}
	}
	for _, j := range []int{1, 2, 64} {
		if err := ValidateWorkers(j); err != nil {
			t.Errorf("ValidateWorkers(%d) rejected: %v", j, err)
		}
	}
}

// TestRunSweepRejectsBadWorkers: the sweep engine refuses a nonsensical
// worker count before any simulation runs.
func TestRunSweepRejectsBadWorkers(t *testing.T) {
	for _, j := range []int{0, -3} {
		_, r, err := RunSweep(parallelSweepSpec(), j, nil)
		if err == nil || !strings.Contains(err.Error(), "workers") {
			t.Fatalf("RunSweep(workers=%d) = %v, want workers error", j, err)
		}
		if r != nil {
			t.Fatalf("RunSweep(workers=%d) returned a runner alongside the error", j)
		}
	}
}

// TestEnsureSingleRun: a one-element batch must work at any pool width
// (the pool shrinks to the work, it does not idle-spin extra workers).
func TestEnsureSingleRun(t *testing.T) {
	r := NewRunner(config.Test(), nil, 8)
	cfg := config.Test()
	cfg.Benchmarks = []string{"mcf", "lbm", "libquantum", "omnetpp"}
	if err := r.Ensure([]config.Config{cfg}); err != nil {
		t.Fatal(err)
	}
	if got := r.SimRuns(); got != 1 {
		t.Fatalf("single-run Ensure executed %d simulations, want 1", got)
	}
	// The memoized result must be readable back.
	if res := r.result(cfg); len(res.IPC) != 4 {
		t.Fatalf("result has %d IPCs, want 4", len(res.IPC))
	}
}

// TestEnsureFirstErrorDeterministic: with several failing configs in one
// batch, Ensure must always report the earliest one in spec order — at
// every worker count — even though goroutine completion order varies.
func TestEnsureFirstErrorDeterministic(t *testing.T) {
	good := func(seed uint64) config.Config {
		cfg := config.Test()
		cfg.Benchmarks = []string{"mcf", "lbm", "libquantum", "omnetpp"}
		cfg.Seed = seed
		return cfg
	}
	badA := good(100)
	badA.Benchmarks = []string{"nope-a"}
	badB := good(200)
	badB.Benchmarks = []string{"nope-b"}
	cfgs := []config.Config{good(1), badA, good(2), good(3), badB}

	for _, workers := range []int{1, 2, 8} {
		err := NewRunner(config.Test(), nil, workers).Ensure(cfgs)
		if err == nil {
			t.Fatalf("workers=%d: Ensure accepted unknown benchmarks", workers)
		}
		if !strings.Contains(err.Error(), "nope-a") {
			t.Errorf("workers=%d: Ensure reported %v, want the spec-order-first error (nope-a)", workers, err)
		}
	}
}

// TestEnsureErrorCancelsSiblings: once a run fails, no further queued
// run may start. With one worker and the failure first in spec order,
// exactly zero simulations may execute.
func TestEnsureErrorCancelsSiblings(t *testing.T) {
	bad := config.Test()
	bad.Benchmarks = []string{"no-such-benchmark"}
	var cfgs []config.Config
	cfgs = append(cfgs, bad)
	for seed := uint64(1); seed <= 6; seed++ {
		cfg := config.Test()
		cfg.Benchmarks = []string{"mcf", "lbm", "libquantum", "omnetpp"}
		cfg.Seed = seed
		cfgs = append(cfgs, cfg)
	}
	r := NewRunner(config.Test(), nil, 1)
	if err := r.Ensure(cfgs); err == nil {
		t.Fatal("Ensure accepted an unknown benchmark")
	}
	if got := r.SimRuns(); got != 0 {
		t.Fatalf("siblings ran after the failure: %d simulations executed, want 0", got)
	}
}

// TestEnsureProgressEvents: every distinct run produces exactly one
// completion event, monotonically counting up to the total, and the
// counters add up.
func TestEnsureProgressEvents(t *testing.T) {
	r := NewRunner(config.Test(), nil, 4)
	var events int64
	var lastDone, total int64
	r.SetProgress(func(p Progress) {
		// Events are serialized by the runner, so plain reads/writes
		// would do; atomics keep the race detector explicit about it.
		n := atomic.AddInt64(&events, 1)
		if int64(p.Done) <= atomic.LoadInt64(&lastDone) {
			t.Errorf("event %d: Done=%d did not advance past %d", n, p.Done, lastDone)
		}
		atomic.StoreInt64(&lastDone, int64(p.Done))
		atomic.StoreInt64(&total, int64(p.Total))
	})
	var cfgs []config.Config
	for seed := uint64(1); seed <= 5; seed++ {
		cfg := config.Test()
		cfg.Benchmarks = []string{"mcf", "lbm", "libquantum", "omnetpp"}
		cfg.Seed = seed
		cfgs = append(cfgs, cfg)
	}
	cfgs = append(cfgs, cfgs[0]) // duplicate: must not produce an extra event
	if err := r.Ensure(cfgs); err != nil {
		t.Fatal(err)
	}
	if events != 5 || total != 5 || lastDone != 5 {
		t.Fatalf("progress saw %d events, total %d, final done %d; want 5/5/5", events, total, lastDone)
	}
}

// TestProgressETA sanity-checks the linear extrapolation.
func TestProgressETA(t *testing.T) {
	p := Progress{Done: 2, Total: 6, Elapsed: 10}
	if got := p.ETA(); got != 20 {
		t.Fatalf("ETA = %d, want 20", got)
	}
	if (Progress{Done: 0, Total: 6}).ETA() != 0 {
		t.Fatal("ETA before the first completion must be 0")
	}
	if (Progress{Done: 6, Total: 6, Elapsed: 10}).ETA() != 0 {
		t.Fatal("ETA after the last completion must be 0")
	}
}

// TestSweepJSONStableAcrossWorkers re-renders the sweep JSON through a
// decode/encode round trip to prove row ordering (not just formatting)
// is what is stable.
func TestSweepJSONStableAcrossWorkers(t *testing.T) {
	spec := parallelSweepSpec()
	rows := func(workers int) [][]string {
		t.Helper()
		tbl, _, err := RunSweep(spec, workers, nil)
		if err != nil {
			t.Fatal(err)
		}
		return tbl.Rows()
	}
	a, b := rows(1), rows(8)
	aj, _ := json.Marshal(a)
	bj, _ := json.Marshal(b)
	if !bytes.Equal(aj, bj) {
		t.Fatalf("sweep rows diverge between worker counts:\n%s\n%s", aj, bj)
	}
}
