package exp

// Regression tests for the de-panicked aggregation layer: degenerate
// samples (zero IPC from a poisoned run) reach stats.GeoMean and
// stats.WeightedSpeedup at table-render time — after every simulation
// has completed and outside runIsolated's panic isolation — so they
// must surface as errors, never as process-killing panics.

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dcasim/internal/config"
	"dcasim/internal/sim"
	"dcasim/internal/trace"
	"dcasim/internal/workload"
)

// zeroIPCSim is a substitute simulator returning a successful result
// whose IPCs are all zero — the degenerate sample a poisoned run
// produces — so the render-time aggregation paths can be driven without
// a real simulation.
func zeroIPCSim(cfg config.Config) (sim.Result, error) {
	n := len(cfg.Benchmarks)
	return sim.Result{
		Benchmarks: append([]string(nil), cfg.Benchmarks...),
		IPC:        make([]float64, n),
		FinishNS:   make([]float64, n),
	}, nil
}

// TestGeoMeanAggregationErrorNotPanic: a geomean column over all-zero
// samples must fail the table with an error.
func TestGeoMeanAggregationErrorNotPanic(t *testing.T) {
	r := testRunner(t, 1)
	r.run = zeroIPCSim
	spec := TableSpec{
		Name:    "degenerate-geomean",
		Headers: []string{"x"},
		Rows:    []RowSpec{{Labels: []string{"row"}}},
		Cols:    []ColSpec{{Header: "g", Metric: "ipcTotal", Agg: "geomean"}},
	}
	tbl, err := r.Table(spec)
	if err == nil {
		t.Fatalf("geomean over zero samples did not error:\n%s", tbl)
	}
	if !strings.Contains(err.Error(), "geometric mean") {
		t.Fatalf("error does not name the degenerate aggregation: %v", err)
	}
}

// TestWeightedSpeedupZeroAloneErrorNotPanic: a ws column whose alone
// runs report zero IPC must fail the table with an error, not panic at
// stats.WeightedSpeedup.
func TestWeightedSpeedupZeroAloneErrorNotPanic(t *testing.T) {
	r := testRunner(t, 1)
	r.run = zeroIPCSim
	spec := TableSpec{
		Name:    "degenerate-ws",
		Headers: []string{"x"},
		Rows:    []RowSpec{{Labels: []string{"row"}}},
		Cols:    []ColSpec{{Header: "ws", Metric: MetricWS, Agg: "geomean"}},
	}
	tbl, err := r.Table(spec)
	if err == nil {
		t.Fatalf("weighted speedup over zero alone IPCs did not error:\n%s", tbl)
	}
	if !strings.Contains(err.Error(), "alone IPC") {
		t.Fatalf("error does not name the zero alone IPC: %v", err)
	}
}

// TestPerMixGmeanErrorNotPanic: the PerMix summary row computes a
// geomean over raw per-mix samples; all-zero samples must error there
// too.
func TestPerMixGmeanErrorNotPanic(t *testing.T) {
	r := testRunner(t, 1)
	r.run = zeroIPCSim
	spec := TableSpec{
		Name:    "degenerate-permix",
		Headers: []string{"mix"},
		PerMix:  true,
		Rows:    []RowSpec{{}},
		Cols:    []ColSpec{{Header: "ipc", Metric: "ipcTotal"}},
	}
	tbl, err := r.Table(spec)
	if err == nil {
		t.Fatalf("perMix gmean over zero samples did not error:\n%s", tbl)
	}
	if !strings.Contains(err.Error(), "gmean") {
		t.Fatalf("error does not name the gmean row: %v", err)
	}
}

// TestDivZeroDenominatorRendersDash: a Div cell with a zero denominator
// must render "-" like the sweep engine's missing metrics, not pass
// NaN/Inf off as data.
func TestDivZeroDenominatorRendersDash(t *testing.T) {
	r := testRunner(t, 1)
	r.run = func(cfg config.Config) (sim.Result, error) {
		n := len(cfg.Benchmarks)
		res := sim.Result{
			Benchmarks: append([]string(nil), cfg.Benchmarks...),
			IPC:        make([]float64, n),
			FinishNS:   make([]float64, n),
		}
		for i := range res.IPC {
			res.IPC[i] = 1
		}
		// res.DRAM.Turnarounds stays 0: the denominator column below
		// aggregates to exactly zero.
		return res, nil
	}
	spec := TableSpec{
		Name:    "div-zero",
		Headers: []string{"x"},
		Rows:    []RowSpec{{Labels: []string{"row"}}},
		Cols: []ColSpec{
			{Header: "num", Metric: "ipcTotal", Agg: "mean"},
			{Header: "den", Metric: "turnarounds", Agg: "mean"},
			{Header: "ratio", Div: &[2]string{"num", "den"}},
		},
	}
	tbl, err := r.Table(spec)
	if err != nil {
		t.Fatal(err)
	}
	row := tbl.Rows()[0]
	if got := row[3]; got != "-" {
		t.Fatalf("zero-denominator div cell = %q, want %q\n%s", got, "-", tbl)
	}
	if out := tbl.String(); strings.Contains(out, "NaN") || strings.Contains(out, "Inf") {
		t.Fatalf("table leaks NaN/Inf:\n%s", out)
	}
}

// TestDivValidateRejectsStrayFields: validate must reject run-driven
// fields on a Div column before any simulation runs — they would be
// silently ignored otherwise, the exact failure mode validate exists to
// prevent.
func TestDivValidateRejectsStrayFields(t *testing.T) {
	r := testRunner(t, 1)
	base := TableSpec{
		Name:    "div-stray",
		Headers: []string{"x"},
		Rows:    []RowSpec{{Labels: []string{"row"}}},
	}
	div := &[2]string{"a", "a"}
	cases := map[string]ColSpec{
		"metric":   {Header: "d", Div: div, Metric: "totalNS"},
		"agg":      {Header: "d", Div: div, Agg: "geomena"},
		"op":       {Header: "d", Div: div, Op: "ratio"},
		"baseline": {Header: "d", Div: div, Baseline: raw(`{}`)},
		"patch":    {Header: "d", Div: div, Patch: raw(`{}`)},
	}
	for name, col := range cases {
		spec := base
		spec.Cols = []ColSpec{{Header: "a", Metric: "totalNS"}, col}
		if _, err := r.Table(spec); err == nil {
			t.Errorf("%s: stray field on div column accepted", name)
		}
	}
	if r.SimRuns() != 0 {
		t.Fatalf("stray-field specs launched %d simulations", r.SimRuns())
	}
}

// TestKeepGoingSweepZeroOpTrace is the end-to-end regression for the
// bug this PR fixes: a keep-going sweep over a zero-op trace (a header
// with no operations, as a poisoned recording would leave behind) must
// finish with a joined error naming every failing point — not crash the
// process.
func TestKeepGoingSweepZeroOpTrace(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "zero-op.dct")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w, err := trace.NewWriter(f, trace.Header{
		Benchmarks:   []string{"mcf"},
		Seed:         1,
		WSScale:      1,
		InstrPerCore: 1000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	spec := SweepSpec{
		Schema: config.SchemaVersion,
		Name:   "zero-op-keepgoing",
		Scale:  "test",
		Base:   raw(`{"TracePath":%q,"Benchmarks":[]}`, path),
		Axes: []SweepAxis{
			{Name: "seed", Values: []SweepPoint{
				{Label: "s1", Set: raw(`{"Seed":1}`)},
				{Label: "s2", Set: raw(`{"Seed":2}`)},
			}},
		},
		Metrics: []string{"totalNS"},
	}
	tbl, runner, err := RunSweepOpts(spec, SweepOpts{Workers: 2, KeepGoing: true})
	if err == nil {
		t.Fatalf("zero-op trace sweep succeeded:\n%s", tbl)
	}
	if tbl != nil {
		t.Fatal("failed sweep returned a partial table")
	}
	if runner == nil {
		t.Fatal("failed sweep returned no runner")
	}
	// Keep-going joins every distinct failure in point order; both
	// seeded points must be reported.
	msg := err.Error()
	for _, want := range []string{"seed 1", "seed 2", "replay"} {
		if !strings.Contains(msg, want) {
			t.Errorf("joined error missing %q: %v", want, err)
		}
	}
}

// TestKeepGoingTableDegenerateSamples: under keep-going the runner
// itself survives the runs, and the degenerate-sample failure still
// surfaces as a render-time error from Table (not a panic), even for
// per-mix workload specs with multiple mixes.
func TestKeepGoingTableDegenerateSamples(t *testing.T) {
	cfg := config.Test()
	r := NewRunner(cfg, workload.TableI()[:2], 2)
	r.SetKeepGoing(true)
	r.run = zeroIPCSim
	spec := TableSpec{
		Name:    "degenerate-keepgoing",
		Headers: []string{"x"},
		Rows:    []RowSpec{{Labels: []string{"row"}}},
		Cols:    []ColSpec{{Header: "g", Metric: "ipcTotal", Agg: "geomean"}},
	}
	if _, err := r.Table(spec); err == nil {
		t.Fatal("keep-going table over zero samples did not error")
	}
}
