package mempred

import "testing"

func TestInitiallyPredictsHit(t *testing.T) {
	m := New(1)
	if m.PredictMiss(0, 0x400) {
		t.Fatal("untrained predictor must not flood memory with speculative fetches")
	}
}

func TestTrainsTowardMiss(t *testing.T) {
	m := New(1)
	pc := uint64(0x1234)
	for i := 0; i < 5; i++ {
		p := m.PredictMiss(0, pc)
		m.Update(0, pc, p, false) // misses
	}
	if !m.PredictMiss(0, pc) {
		t.Fatal("predictor did not learn a missing PC")
	}
}

func TestTrainsBackTowardHit(t *testing.T) {
	m := New(1)
	pc := uint64(0x1234)
	for i := 0; i < 7; i++ {
		m.Update(0, pc, true, false)
	}
	for i := 0; i < 7; i++ {
		m.Update(0, pc, true, true)
	}
	if m.PredictMiss(0, pc) {
		t.Fatal("predictor did not recover after a hitting phase")
	}
}

func TestPerCoreIsolation(t *testing.T) {
	m := New(2)
	pc := uint64(0xbeef)
	for i := 0; i < 7; i++ {
		m.Update(0, pc, true, false)
	}
	if m.PredictMiss(1, pc) {
		t.Fatal("training on core 0 leaked into core 1")
	}
}

func TestAccuracyCounters(t *testing.T) {
	m := New(1)
	m.Update(0, 1, true, false)  // correct miss
	m.Update(0, 1, true, true)   // false miss
	m.Update(0, 1, false, false) // missed miss
	m.Update(0, 1, false, true)  // correct hit
	if m.CorrectMiss != 1 || m.FalseMiss != 1 || m.MissedMiss != 1 || m.CorrectHit != 1 {
		t.Fatalf("accuracy counters wrong: %+v", m)
	}
}

func TestDistinctPCsTrainIndependently(t *testing.T) {
	m := New(1)
	missPC, hitPC := uint64(0x100), uint64(0x200)
	if index(missPC) == index(hitPC) {
		t.Skip("hash collision between the chosen PCs")
	}
	for i := 0; i < 7; i++ {
		m.Update(0, missPC, false, false)
		m.Update(0, hitPC, false, true)
	}
	if !m.PredictMiss(0, missPC) {
		t.Error("missing PC predicted to hit")
	}
	if m.PredictMiss(0, hitPC) {
		t.Error("hitting PC predicted to miss")
	}
}
