// Package mempred implements a MAP-I-style DRAM-cache miss predictor
// (Qureshi & Loh, MICRO 2012).
//
// MAP-I keeps a small table of saturating counters indexed by a hash of
// the requesting instruction address: instructions that recently missed
// are predicted to miss again, letting the controller launch the off-chip
// fetch in parallel with the in-DRAM tag probe and hide most of the miss
// penalty. The workload generators emit stable synthetic PCs, so the
// predictor sees the same instruction-correlated behaviour the original
// hardware design exploits.
package mempred

// TableSize is the number of counters per core; MAP-I uses a 256-entry
// table (96 bytes per core at 3 bits each).
const TableSize = 256

// MAPI is a per-core array of 3-bit saturating hit/miss counters.
// Counter semantics: 0 = strong miss ... 7 = strong hit; predictions
// above the midpoint are hits.
type MAPI struct {
	table [][]uint8

	Lookups        int64
	PredictedMiss  int64
	CorrectMiss    int64 // predicted miss, was miss
	FalseMiss      int64 // predicted miss, was hit (wasted fetch)
	MissedMiss     int64 // predicted hit, was miss (late fetch)
	CorrectHit     int64
	initialCounter uint8
}

// New builds a predictor for cores cores. Counters start weakly at hit
// (4): an empty predictor should not flood main memory with speculative
// fetches.
func New(cores int) *MAPI {
	m := &MAPI{table: make([][]uint8, cores), initialCounter: 4}
	for i := range m.table {
		row := make([]uint8, TableSize)
		for j := range row {
			row[j] = m.initialCounter
		}
		m.table[i] = row
	}
	return m
}

func index(pc uint64) int {
	// Fibonacci hashing folds the PC into the table.
	return int((pc * 0x9e3779b97f4a7c15) >> 56)
}

// PredictMiss returns true when the request from (core, pc) is predicted
// to miss in the DRAM cache.
func (m *MAPI) PredictMiss(core int, pc uint64) bool {
	m.Lookups++
	miss := m.table[core][index(pc)] < 4
	if miss {
		m.PredictedMiss++
	}
	return miss
}

// Update trains the predictor with the actual outcome and accounts
// prediction accuracy. predictedMiss must be the value PredictMiss
// returned for this request.
func (m *MAPI) Update(core int, pc uint64, predictedMiss, wasHit bool) {
	ctr := &m.table[core][index(pc)]
	if wasHit {
		if *ctr < 7 {
			*ctr++
		}
	} else {
		if *ctr > 0 {
			*ctr--
		}
	}
	switch {
	case predictedMiss && !wasHit:
		m.CorrectMiss++
	case predictedMiss && wasHit:
		m.FalseMiss++
	case !predictedMiss && !wasHit:
		m.MissedMiss++
	default:
		m.CorrectHit++
	}
}
