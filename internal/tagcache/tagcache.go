// Package tagcache models an ATCache-style SRAM tag cache (Huang &
// Nagarajan, PACT 2014) in front of the tags-in-DRAM array, used by the
// paper's Fig. 18 study.
//
// The tag cache stores recently used *tag blocks*. A hit removes the DRAM
// tag probe from a request's access chain; a miss fetches the needed tag
// block from DRAM and spatially prefetches the sibling tag blocks of the
// same DRAM row (the source of ATCache's benefit — and of the extra DRAM
// tag traffic the paper measures: tag-block temporal reuse is poor because
// the tag cache is smaller than the tag footprint of the L2 working set).
package tagcache

// Config sizes the tag cache.
type Config struct {
	SizeBytes  int // total capacity
	BlockBytes int // one tag block (64 B, covering one DRAM-cache set group)
	Ways       int
	// PrefetchSiblings is the number of neighbouring tag blocks fetched
	// on a miss (the other tag blocks of the same DRAM row; 3 for the
	// paper's 4-tag-block rows).
	PrefetchSiblings int
}

// DefaultConfig returns an ATCache-like geometry: 64 B blocks, 8 ways,
// row-granular prefetch of the 3 sibling tag blocks.
func DefaultConfig(sizeBytes int) Config {
	return Config{SizeBytes: sizeBytes, BlockBytes: 64, Ways: 8, PrefetchSiblings: 3}
}

// TagCache is a set-associative SRAM cache over tag-block indices.
type TagCache struct {
	cfg  Config
	sets int
	tags [][]int64 // tag-block index per way; -1 invalid
	lru  [][]uint32
	tick uint32

	Lookups    int64
	Hits       int64
	Misses     int64
	Prefetches int64
}

// New builds the tag cache; size must hold at least one set.
func New(cfg Config) *TagCache {
	blocks := cfg.SizeBytes / cfg.BlockBytes
	sets := blocks / cfg.Ways
	if sets < 1 {
		sets = 1
	}
	t := &TagCache{cfg: cfg, sets: sets}
	t.tags = make([][]int64, sets)
	t.lru = make([][]uint32, sets)
	for i := 0; i < sets; i++ {
		t.tags[i] = make([]int64, cfg.Ways)
		t.lru[i] = make([]uint32, cfg.Ways)
		for w := range t.tags[i] {
			t.tags[i][w] = -1
		}
	}
	return t
}

func (t *TagCache) set(blockIdx int64) int { return int(blockIdx % int64(t.sets)) }

// Lookup probes the tag cache for a tag block and returns whether it hit.
// On a miss the block is installed together with its row siblings
// (spatial prefetch) and the number of DRAM tag-block fetches performed
// (1 + prefetches) is returned; on a hit zero fetches are needed.
func (t *TagCache) Lookup(blockIdx int64, rowSiblings []int64) (hit bool, dramFetches int) {
	t.Lookups++
	t.tick++
	if t.probe(blockIdx) {
		t.Hits++
		return true, 0
	}
	t.Misses++
	t.install(blockIdx)
	fetches := 1
	for _, s := range rowSiblings {
		if s == blockIdx {
			continue
		}
		if fetches > t.cfg.PrefetchSiblings {
			break
		}
		if !t.probe(s) {
			t.install(s)
			t.Prefetches++
			fetches++
		}
	}
	return false, fetches
}

func (t *TagCache) probe(blockIdx int64) bool {
	s := t.set(blockIdx)
	for w, tag := range t.tags[s] {
		if tag == blockIdx {
			t.lru[s][w] = t.tick
			return true
		}
	}
	return false
}

func (t *TagCache) install(blockIdx int64) {
	s := t.set(blockIdx)
	victim, oldest := 0, t.lru[s][0]
	for w, tag := range t.tags[s] {
		if tag == -1 {
			victim = w
			break
		}
		if t.lru[s][w] < oldest {
			victim, oldest = w, t.lru[s][w]
		}
	}
	t.tags[s][victim] = blockIdx
	t.lru[s][victim] = t.tick
}

// ResetStats clears the counters after warm-up.
func (t *TagCache) ResetStats() {
	t.Lookups, t.Hits, t.Misses, t.Prefetches = 0, 0, 0, 0
}
