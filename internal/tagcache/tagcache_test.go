package tagcache

import "testing"

func small() *TagCache {
	// 8 blocks total, 2 ways -> 4 sets.
	return New(Config{SizeBytes: 512, BlockBytes: 64, Ways: 2, PrefetchSiblings: 3})
}

func TestMissThenHit(t *testing.T) {
	tc := small()
	hit, fetches := tc.Lookup(100, nil)
	if hit || fetches != 1 {
		t.Fatalf("first lookup: hit=%v fetches=%d, want miss with 1 fetch", hit, fetches)
	}
	hit, fetches = tc.Lookup(100, nil)
	if !hit || fetches != 0 {
		t.Fatalf("second lookup: hit=%v fetches=%d, want hit with 0 fetches", hit, fetches)
	}
	if tc.Hits != 1 || tc.Misses != 1 {
		t.Fatalf("counters wrong: %+v", tc)
	}
}

func TestSpatialPrefetch(t *testing.T) {
	tc := small()
	siblings := []int64{100, 101, 102, 103}
	_, fetches := tc.Lookup(100, siblings)
	if fetches != 4 {
		t.Fatalf("miss with 3 siblings fetched %d blocks, want 4", fetches)
	}
	if tc.Prefetches != 3 {
		t.Fatalf("prefetch count %d, want 3", tc.Prefetches)
	}
	// The prefetched siblings must now hit.
	for _, s := range siblings[1:] {
		if hit, _ := tc.Lookup(s, nil); !hit {
			t.Fatalf("sibling %d not installed by prefetch", s)
		}
	}
}

func TestPrefetchLimit(t *testing.T) {
	tc := New(Config{SizeBytes: 512, BlockBytes: 64, Ways: 2, PrefetchSiblings: 1})
	_, fetches := tc.Lookup(100, []int64{100, 101, 102, 103})
	if fetches != 2 {
		t.Fatalf("prefetch limit 1 fetched %d blocks, want 2", fetches)
	}
}

func TestLRUEviction(t *testing.T) {
	tc := small() // 4 sets, 2 ways; blocks with the same idx%4 share a set
	tc.Lookup(0, nil)
	tc.Lookup(4, nil)
	tc.Lookup(0, nil) // refresh 0
	tc.Lookup(8, nil) // evicts 4 (LRU), not 0
	if hit, _ := tc.Lookup(0, nil); !hit {
		t.Fatal("recently used block was evicted")
	}
	if hit, _ := tc.Lookup(4, nil); hit {
		t.Fatal("LRU block survived eviction")
	}
}

func TestDefaultConfig(t *testing.T) {
	cfg := DefaultConfig(192 << 10)
	if cfg.SizeBytes != 192<<10 || cfg.BlockBytes != 64 || cfg.PrefetchSiblings != 3 {
		t.Fatalf("unexpected default config: %+v", cfg)
	}
	tc := New(cfg)
	if tc.sets*cfg.Ways*cfg.BlockBytes != cfg.SizeBytes {
		t.Fatalf("geometry does not cover the configured capacity")
	}
}

func TestResetStats(t *testing.T) {
	tc := small()
	tc.Lookup(1, nil)
	tc.Lookup(1, nil)
	tc.ResetStats()
	if tc.Lookups != 0 || tc.Hits != 0 || tc.Misses != 0 {
		t.Fatalf("ResetStats left counters: %+v", tc)
	}
	// State survives the reset — only counters clear.
	if hit, _ := tc.Lookup(1, nil); !hit {
		t.Fatal("ResetStats dropped cache contents")
	}
}
