// Package core implements the paper's primary contribution: DRAM cache
// controllers that schedule the multiple DRAM accesses a DRAM-cache
// request expands into.
//
// Three designs are provided (paper §III–§IV):
//
//   - CD, the Conventional Design: accesses are queued by access type
//     (reads to the read queue, writes to the write queue) exactly as in a
//     conventional DRAM memory controller. CD minimises bus turnarounds
//     but suffers read priority inversion and read-read conflicts because
//     tag reads of writeback requests share the read queue with the
//     latency-critical reads of cache read requests.
//
//   - ROD, the Request-Oriented Design: accesses are queued by request
//     type (all accesses of a read request to the read queue; all accesses
//     of writeback/refill requests to the write queue, with the write-tag
//     of a read request also going to the write queue). ROD avoids
//     priority inversion but mixes reads and writes inside each queue, so
//     it pays frequent bus turnarounds and longer write-queue flushes.
//
//   - DCA, the DRAM-Cache-Aware design: CD's queue mapping plus a
//     two-level read classification. Reads from cache read requests are
//     priority reads (PR); reads from writeback/refill requests are
//     low-priority reads (LR). LRs are held like writes and drained either
//     when read-queue occupancy crosses a hysteresis threshold
//     (ScheduleAll, on >85 % / off <75 %) or opportunistically (OFS) when
//     no PR is pending and the LR's bank shows no row conflict or has a
//     re-reference prediction counter (RRPC) below the flushing factor.
//
// Both axes are open registries rather than closed enums: designs carry
// their classification hooks in a DesignSpec (RegisterDesign), and the
// scheduling algorithm within a priority class is resolved by name
// against the policy registry in dcasim/internal/sched (RegisterPolicy).
// The paper's grid — CD/ROD/DCA × BLISS/FR-FCFS/FCFS — is registered
// here and in sched's init; additional policies (e.g.
// dcasim/internal/sched/atlas) register themselves when imported.
package core

import (
	"encoding/json"
	"fmt"
	"strings"

	"dcasim/internal/dram"
	"dcasim/internal/sched"
)

// Design selects a controller organisation. Values are indices into the
// design registry: the paper's three designs are the CD/ROD/DCA
// constants, and RegisterDesign mints new values at init time, so a
// switch over Design is never exhaustive — always handle the default.
type Design int

// The paper's controller designs, registered at init.
const (
	CD Design = iota
	ROD
	DCA
)

// DesignSpec carries a design's identity and the classification hooks
// the controller consults, so a new design is data plus two decisions
// rather than edits to the controller's switch statements.
type DesignSpec struct {
	// Name is the canonical spelling (the Config.Design JSON value);
	// Aliases are accepted on parse. Matching is case-insensitive.
	Name    string
	Aliases []string
	// Doc is a one-line description for listings.
	Doc string

	// RouteToWrite decides whether an access of the given DRAM kind,
	// belonging to a request of the given type, enters the write queue
	// (otherwise it is a read-queue resident). This is the queue-mapping
	// half of a design (paper Fig. 3 and Fig. 6).
	RouteToWrite func(kind dram.Kind, req RequestType) bool

	// TwoLevel enables DCA's two-level read classification: PR/LR lanes,
	// the ScheduleAll occupancy hysteresis, and opportunistic flushing
	// (OFS). Without it every read schedules equally.
	TwoLevel bool

	// Architected queue capacities for DefaultConfig; zero means the
	// Table II default of 64.
	ReadQueueCap  int
	WriteQueueCap int
}

// designs is the registry, indexed by Design value, in registration
// order. It is populated by init functions; the simulator never mutates
// it after startup.
var designs []DesignSpec

func init() {
	for _, reg := range []struct {
		want Design
		spec DesignSpec
	}{
		{CD, DesignSpec{
			Name:         "CD",
			Doc:          "conventional design: queue by access type",
			RouteToWrite: routeByAccessType,
		}},
		{ROD, DesignSpec{
			Name:         "ROD",
			Doc:          "request-oriented design: queue by request type",
			RouteToWrite: routeByRequestType,
			// Table II: ROD narrows the read queue and widens the write
			// queue because whole requests land on one side.
			ReadQueueCap:  32,
			WriteQueueCap: 96,
		}},
		{DCA, DesignSpec{
			Name:         "DCA",
			Doc:          "DRAM-cache-aware: CD mapping + two-level PR/LR read scheduling",
			RouteToWrite: routeByAccessType,
			TwoLevel:     true,
		}},
	} {
		if got := MustRegisterDesign(reg.spec); got != reg.want {
			panic(fmt.Sprintf("core: design %s registered as %d, want %d", reg.spec.Name, int(got), int(reg.want)))
		}
	}
}

// routeByAccessType is the CD/DCA queue mapping: writes to the write
// queue, reads to the read queue, regardless of the owning request.
func routeByAccessType(kind dram.Kind, _ RequestType) bool {
	return kind.IsWrite()
}

// routeByRequestType is the ROD mapping: every access follows its
// request, except the write-tag of a read request, which the paper's
// footnote sends to the write queue for performance.
func routeByRequestType(kind dram.Kind, req RequestType) bool {
	switch req {
	case ReadReq:
		return kind.IsWrite()
	case WritebackReq, RefillReq:
		return true
	default:
		panic(fmt.Sprintf("core: routeByRequestType: unknown request type %d", int(req)))
	}
}

// RegisterDesign adds a controller design to the registry and returns
// its Design value. Names and aliases must be unused
// (case-insensitively) and RouteToWrite must be non-nil. Registration
// normally happens in package init functions.
func RegisterDesign(spec DesignSpec) (Design, error) {
	if spec.Name == "" {
		return 0, fmt.Errorf("core: RegisterDesign: empty design name")
	}
	if spec.RouteToWrite == nil {
		return 0, fmt.Errorf("core: RegisterDesign %q: nil RouteToWrite", spec.Name)
	}
	for _, k := range append([]string{spec.Name}, spec.Aliases...) {
		if prev, err := ParseDesign(k); err == nil {
			return 0, fmt.Errorf("core: design name %q already registered (by %q)", k, designs[prev].Name)
		}
	}
	designs = append(designs, spec)
	return Design(len(designs) - 1), nil
}

// MustRegisterDesign is RegisterDesign that panics on error, for package
// init use.
func MustRegisterDesign(spec DesignSpec) Design {
	d, err := RegisterDesign(spec)
	if err != nil {
		panic(err)
	}
	return d
}

// Designs returns every registered design in registration order (the
// paper's CD, ROD, DCA first).
func Designs() []Design {
	out := make([]Design, len(designs))
	for i := range designs {
		out[i] = Design(i)
	}
	return out
}

// Spec returns the design's registration, or an error for a value
// outside the registry.
func (d Design) Spec() (DesignSpec, error) {
	if d < 0 || int(d) >= len(designs) {
		return DesignSpec{}, fmt.Errorf("core: unknown design %d (registered: %s)", int(d), designNames())
	}
	return designs[d], nil
}

func designNames() string {
	names := make([]string, len(designs))
	for i := range designs {
		names[i] = designs[i].Name
	}
	return strings.Join(names, ", ")
}

// String implements fmt.Stringer via the registry.
func (d Design) String() string {
	if spec, err := d.Spec(); err == nil {
		return spec.Name
	}
	return fmt.Sprintf("Design(%d)", int(d))
}

// ParseDesign resolves a design name or alias (case-insensitively)
// against the registry.
func ParseDesign(s string) (Design, error) {
	for i := range designs {
		if strings.EqualFold(s, designs[i].Name) {
			return Design(i), nil
		}
		for _, a := range designs[i].Aliases {
			if strings.EqualFold(s, a) {
				return Design(i), nil
			}
		}
	}
	return CD, fmt.Errorf("core: unknown design %q (registered: %s)", s, designNames())
}

// MarshalJSON encodes the design as its canonical name so serialized
// configurations read "DCA" rather than an opaque enum ordinal.
func (d Design) MarshalJSON() ([]byte, error) {
	spec, err := d.Spec()
	if err != nil {
		return nil, fmt.Errorf("core: cannot marshal unknown design %d", int(d))
	}
	return quoteName(spec.Name), nil
}

// UnmarshalJSON accepts the same names ParseDesign does.
func (d *Design) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return fmt.Errorf("core: design must be a JSON string: %s", b)
	}
	v, err := ParseDesign(s)
	if err != nil {
		return err
	}
	*d = v
	return nil
}

// RequestType classifies the DRAM-cache request an access belongs to.
type RequestType uint8

const (
	ReadReq      RequestType = iota // demand read from the upper-level cache
	WritebackReq                    // dirty eviction from the upper-level cache
	RefillReq                       // fill after a DRAM-cache miss
)

// String implements fmt.Stringer.
func (t RequestType) String() string {
	switch t {
	case ReadReq:
		return "read"
	case WritebackReq:
		return "writeback"
	case RefillReq:
		return "refill"
	}
	return "?"
}

// Algorithm names the base scheduling algorithm within a priority class.
// The paper evaluates on BLISS but notes DCA "is not limited to any
// scheduling algorithm"; values are resolved by name against the policy
// registry in dcasim/internal/sched, so any imported policy package
// (e.g. dcasim/internal/sched/atlas) extends the accepted set. The zero
// value canonicalises to BLISS, the paper's baseline. Because the value
// set is open, a switch over Algorithm must always handle the default.
type Algorithm string

// The paper's three policies, registered by internal/sched.
const (
	// AlgBLISS is blacklisting + row-hit-first + direction + age.
	AlgBLISS Algorithm = "BLISS"
	// AlgFRFCFS drops the blacklisting component.
	AlgFRFCFS Algorithm = "FR-FCFS"
	// AlgFCFS is pure age order (no row-hit or direction preference).
	AlgFCFS Algorithm = "FCFS"
)

// Canonical maps the zero value to BLISS (the default algorithm) and any
// registered alias to its canonical spelling; unknown names pass through
// unchanged for the caller to reject.
func (a Algorithm) Canonical() Algorithm {
	if a == "" {
		return AlgBLISS
	}
	if r, ok := sched.Lookup(string(a)); ok {
		return Algorithm(r.Policy.Name())
	}
	return a
}

// String implements fmt.Stringer, canonicalising first so the zero value
// reads "BLISS".
func (a Algorithm) String() string { return string(a.Canonical()) }

// RegisterPolicy registers a scheduling policy (see sched.Register) and
// returns its typed Algorithm name, for policy packages that want a
// ready-made constant: Config.Algorithm accepts the returned value.
func RegisterPolicy(r sched.Registration) (Algorithm, error) {
	if err := sched.Register(r); err != nil {
		return "", err
	}
	return Algorithm(r.Policy.Name()), nil
}

// MustRegisterPolicy is RegisterPolicy that panics on error, for package
// init use.
func MustRegisterPolicy(r sched.Registration) Algorithm {
	a, err := RegisterPolicy(r)
	if err != nil {
		panic(err)
	}
	return a
}

// ParseAlgorithm resolves a policy name or alias (case-insensitively,
// e.g. "bliss", "fr-fcfs", "frfcfs") against the policy registry.
func ParseAlgorithm(s string) (Algorithm, error) {
	if r, ok := sched.Lookup(s); ok {
		return Algorithm(r.Policy.Name()), nil
	}
	return AlgBLISS, fmt.Errorf("core: unknown scheduling algorithm %q (registered: %s)",
		s, strings.Join(sched.Names(), ", "))
}

// MarshalJSON encodes the algorithm as its canonical registered name.
func (a Algorithm) MarshalJSON() ([]byte, error) {
	c := a.Canonical()
	if _, ok := sched.Lookup(string(c)); !ok {
		return nil, fmt.Errorf("core: cannot marshal unknown algorithm %q", string(a))
	}
	return quoteName(string(c)), nil
}

// quoteName JSON-quotes an enum name in a single allocation. Registered
// design and policy names are plain identifiers (letters, digits, '-',
// '_'), so no JSON escaping can apply; config hashing marshals these
// enums on every memoized run, making this a measured hot path (the
// bench gate pins its allocation count).
func quoteName(s string) []byte {
	b := make([]byte, 0, len(s)+2)
	b = append(b, '"')
	b = append(b, s...)
	return append(b, '"')
}

// UnmarshalJSON accepts the same names ParseAlgorithm does.
func (a *Algorithm) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return fmt.Errorf("core: algorithm must be a JSON string: %s", b)
	}
	v, err := ParseAlgorithm(s)
	if err != nil {
		return err
	}
	*a = v
	return nil
}

// Config holds the per-channel queue and threshold parameters (Table II).
type Config struct {
	Design    Design
	Algorithm Algorithm // base scheduling algorithm (default BLISS)

	// AlgParams overrides the scheduling policy's declared tunables by
	// name (e.g. BLISS's "Threshold"); keys are validated against the
	// policy's ParamSpecs by Validate. Nil — the default — keeps every
	// parameter at its declared default and is omitted from the
	// canonical JSON, so existing config hashes are unchanged.
	AlgParams map[string]float64 `json:",omitempty"`

	ReadQueueCap  int
	WriteQueueCap int

	// Write-queue passive flushing thresholds as queue fractions:
	// reaching High forces a drain that stops at Low; when no reads are
	// pending a drain also starts above Low.
	WriteFlushLow  float64
	WriteFlushHigh float64

	// DCA ScheduleAll hysteresis on read-queue occupancy.
	ScheduleAllHigh float64
	ScheduleAllLow  float64

	// FlushFactor is the OFS RRPC threshold (FF; the paper uses FF-4).
	FlushFactor uint8
}

// DefaultConfig returns the Table II parameters for a design: 64-entry
// read and write queues (ROD: 32-entry read, 96-entry write, from its
// DesignSpec), write flush thresholds 50 %/85 %, DCA ScheduleAll
// thresholds 75 %/85 %, FF-4.
func DefaultConfig(d Design) Config {
	cfg := Config{
		Design:          d,
		Algorithm:       AlgBLISS,
		ReadQueueCap:    64,
		WriteQueueCap:   64,
		WriteFlushLow:   0.50,
		WriteFlushHigh:  0.85,
		ScheduleAllHigh: 0.85,
		ScheduleAllLow:  0.75,
		FlushFactor:     4,
	}
	if spec, err := d.Spec(); err == nil {
		if spec.ReadQueueCap > 0 {
			cfg.ReadQueueCap = spec.ReadQueueCap
		}
		if spec.WriteQueueCap > 0 {
			cfg.WriteQueueCap = spec.WriteQueueCap
		}
	}
	return cfg
}

// Policy resolves the configured Algorithm against the scheduling-policy
// registry, returning the registration and the fully resolved parameter
// set (declared defaults overlaid with AlgParams).
func (c Config) Policy() (*sched.Registration, sched.Params, error) {
	name := c.Algorithm.Canonical()
	r, ok := sched.Lookup(string(name))
	if !ok {
		return nil, nil, fmt.Errorf("core: unknown scheduling algorithm %q (registered: %s)",
			string(c.Algorithm), strings.Join(sched.Names(), ", "))
	}
	p, err := r.ResolveParams(c.AlgParams)
	if err != nil {
		return nil, nil, err
	}
	return r, p, nil
}

// Validate reports a descriptive error for unusable parameters,
// including a design or algorithm missing from the registries and
// AlgParams rejected by the policy's ParamSpecs.
func (c Config) Validate() error {
	switch {
	case c.ReadQueueCap <= 0 || c.WriteQueueCap <= 0:
		return fmt.Errorf("core: non-positive queue capacity %+v", c)
	case c.WriteFlushLow <= 0 || c.WriteFlushHigh > 1 || c.WriteFlushLow > c.WriteFlushHigh:
		return fmt.Errorf("core: bad write flush thresholds low=%v high=%v", c.WriteFlushLow, c.WriteFlushHigh)
	case c.ScheduleAllLow <= 0 || c.ScheduleAllHigh > 1 || c.ScheduleAllLow > c.ScheduleAllHigh:
		return fmt.Errorf("core: bad ScheduleAll thresholds low=%v high=%v", c.ScheduleAllLow, c.ScheduleAllHigh)
	case c.FlushFactor > 7:
		return fmt.Errorf("core: flush factor %d exceeds 3-bit RRPC range", c.FlushFactor)
	}
	if _, err := c.Design.Spec(); err != nil {
		return err
	}
	if _, _, err := c.Policy(); err != nil {
		return err
	}
	return nil
}
