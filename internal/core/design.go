// Package core implements the paper's primary contribution: DRAM cache
// controllers that schedule the multiple DRAM accesses a DRAM-cache
// request expands into.
//
// Three designs are provided (paper §III–§IV):
//
//   - CD, the Conventional Design: accesses are queued by access type
//     (reads to the read queue, writes to the write queue) exactly as in a
//     conventional DRAM memory controller. CD minimises bus turnarounds
//     but suffers read priority inversion and read-read conflicts because
//     tag reads of writeback requests share the read queue with the
//     latency-critical reads of cache read requests.
//
//   - ROD, the Request-Oriented Design: accesses are queued by request
//     type (all accesses of a read request to the read queue; all accesses
//     of writeback/refill requests to the write queue, with the write-tag
//     of a read request also going to the write queue). ROD avoids
//     priority inversion but mixes reads and writes inside each queue, so
//     it pays frequent bus turnarounds and longer write-queue flushes.
//
//   - DCA, the DRAM-Cache-Aware design: CD's queue mapping plus a
//     two-level read classification. Reads from cache read requests are
//     priority reads (PR); reads from writeback/refill requests are
//     low-priority reads (LR). LRs are held like writes and drained either
//     when read-queue occupancy crosses a hysteresis threshold
//     (ScheduleAll, on >85 % / off <75 %) or opportunistically (OFS) when
//     no PR is pending and the LR's bank shows no row conflict or has a
//     re-reference prediction counter (RRPC) below the flushing factor.
//
// Each Controller instance manages one DRAM channel; the underlying
// scheduling algorithm within a priority class is BLISS with FR-FCFS
// tie-breaking, per the paper's methodology.
package core

import (
	"encoding/json"
	"fmt"
)

// Design selects one of the three controller organisations.
type Design int

const (
	CD Design = iota
	ROD
	DCA
)

// String implements fmt.Stringer.
func (d Design) String() string {
	switch d {
	case CD:
		return "CD"
	case ROD:
		return "ROD"
	case DCA:
		return "DCA"
	}
	return fmt.Sprintf("Design(%d)", int(d))
}

// ParseDesign converts a name ("cd", "rod", "dca") to a Design.
func ParseDesign(s string) (Design, error) {
	switch s {
	case "cd", "CD":
		return CD, nil
	case "rod", "ROD":
		return ROD, nil
	case "dca", "DCA":
		return DCA, nil
	}
	return CD, fmt.Errorf("core: unknown design %q", s)
}

// MarshalJSON encodes the design as its canonical name so serialized
// configurations read "DCA" rather than an opaque enum ordinal.
func (d Design) MarshalJSON() ([]byte, error) {
	switch d {
	case CD, ROD, DCA:
		return []byte(`"` + d.String() + `"`), nil
	}
	return nil, fmt.Errorf("core: cannot marshal unknown design %d", int(d))
}

// UnmarshalJSON accepts the same names ParseDesign does.
func (d *Design) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return fmt.Errorf("core: design must be a JSON string: %s", b)
	}
	v, err := ParseDesign(s)
	if err != nil {
		return err
	}
	*d = v
	return nil
}

// RequestType classifies the DRAM-cache request an access belongs to.
type RequestType uint8

const (
	ReadReq      RequestType = iota // demand read from the upper-level cache
	WritebackReq                    // dirty eviction from the upper-level cache
	RefillReq                       // fill after a DRAM-cache miss
)

// String implements fmt.Stringer.
func (t RequestType) String() string {
	switch t {
	case ReadReq:
		return "read"
	case WritebackReq:
		return "writeback"
	case RefillReq:
		return "refill"
	}
	return "?"
}

// Algorithm selects the base scheduling algorithm within a priority
// class. The paper evaluates on BLISS but notes DCA "is not limited to
// any scheduling algorithm"; the alternatives let that claim be tested.
type Algorithm int

const (
	// AlgBLISS is blacklisting + row-hit-first + direction + age.
	AlgBLISS Algorithm = iota
	// AlgFRFCFS drops the blacklisting component.
	AlgFRFCFS
	// AlgFCFS is pure age order (no row-hit or direction preference).
	AlgFCFS
)

// String implements fmt.Stringer.
func (a Algorithm) String() string {
	switch a {
	case AlgBLISS:
		return "BLISS"
	case AlgFRFCFS:
		return "FR-FCFS"
	case AlgFCFS:
		return "FCFS"
	}
	return fmt.Sprintf("Algorithm(%d)", int(a))
}

// ParseAlgorithm converts a name ("bliss", "fr-fcfs", "fcfs") to an
// Algorithm.
func ParseAlgorithm(s string) (Algorithm, error) {
	switch s {
	case "bliss", "BLISS":
		return AlgBLISS, nil
	case "fr-fcfs", "FR-FCFS", "frfcfs":
		return AlgFRFCFS, nil
	case "fcfs", "FCFS":
		return AlgFCFS, nil
	}
	return AlgBLISS, fmt.Errorf("core: unknown scheduling algorithm %q", s)
}

// MarshalJSON encodes the algorithm as its canonical name.
func (a Algorithm) MarshalJSON() ([]byte, error) {
	switch a {
	case AlgBLISS, AlgFRFCFS, AlgFCFS:
		return []byte(`"` + a.String() + `"`), nil
	}
	return nil, fmt.Errorf("core: cannot marshal unknown algorithm %d", int(a))
}

// UnmarshalJSON accepts the same names ParseAlgorithm does.
func (a *Algorithm) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return fmt.Errorf("core: algorithm must be a JSON string: %s", b)
	}
	v, err := ParseAlgorithm(s)
	if err != nil {
		return err
	}
	*a = v
	return nil
}

// Config holds the per-channel queue and threshold parameters (Table II).
type Config struct {
	Design    Design
	Algorithm Algorithm // base scheduling algorithm (default BLISS)

	ReadQueueCap  int
	WriteQueueCap int

	// Write-queue passive flushing thresholds as queue fractions:
	// reaching High forces a drain that stops at Low; when no reads are
	// pending a drain also starts above Low.
	WriteFlushLow  float64
	WriteFlushHigh float64

	// DCA ScheduleAll hysteresis on read-queue occupancy.
	ScheduleAllHigh float64
	ScheduleAllLow  float64

	// FlushFactor is the OFS RRPC threshold (FF; the paper uses FF-4).
	FlushFactor uint8
}

// DefaultConfig returns the Table II parameters for a design: 64-entry
// read and write queues (ROD: 32-entry read, 96-entry write), write flush
// thresholds 50 %/85 %, DCA ScheduleAll thresholds 75 %/85 %, FF-4.
func DefaultConfig(d Design) Config {
	cfg := Config{
		Design:          d,
		ReadQueueCap:    64,
		WriteQueueCap:   64,
		WriteFlushLow:   0.50,
		WriteFlushHigh:  0.85,
		ScheduleAllHigh: 0.85,
		ScheduleAllLow:  0.75,
		FlushFactor:     4,
	}
	if d == ROD {
		cfg.ReadQueueCap = 32
		cfg.WriteQueueCap = 96
	}
	return cfg
}

// Validate reports a descriptive error for unusable parameters.
func (c Config) Validate() error {
	switch {
	case c.ReadQueueCap <= 0 || c.WriteQueueCap <= 0:
		return fmt.Errorf("core: non-positive queue capacity %+v", c)
	case c.WriteFlushLow <= 0 || c.WriteFlushHigh > 1 || c.WriteFlushLow > c.WriteFlushHigh:
		return fmt.Errorf("core: bad write flush thresholds low=%v high=%v", c.WriteFlushLow, c.WriteFlushHigh)
	case c.ScheduleAllLow <= 0 || c.ScheduleAllHigh > 1 || c.ScheduleAllLow > c.ScheduleAllHigh:
		return fmt.Errorf("core: bad ScheduleAll thresholds low=%v high=%v", c.ScheduleAllLow, c.ScheduleAllHigh)
	case c.FlushFactor > 7:
		return fmt.Errorf("core: flush factor %d exceeds 3-bit RRPC range", c.FlushFactor)
	}
	return nil
}
