package core

import (
	"sort"
	"testing"

	"dcasim/internal/addrmap"
	"dcasim/internal/dram"
	"dcasim/internal/event"
	"dcasim/internal/simtime"
)

func testGeom() addrmap.Geometry {
	return addrmap.Geometry{Channels: 1, Ranks: 1, Banks: 8, RowBytes: 4096, BlockSize: 64}
}

func testRig(d Design) (*event.Engine, *dram.Channel, *Controller) {
	eng := &event.Engine{}
	ch := dram.NewChannel(dram.StackedDRAM(), testGeom())
	return eng, ch, NewController(eng, ch, DefaultConfig(d), 4)
}

func acc(kind dram.Kind, bank int, row int64, done func(simtime.Time)) dram.Access {
	var cb event.Callback
	if done != nil {
		cb = event.Func(done)
	}
	return dram.Access{Kind: kind, Loc: addrmap.Loc{Bank: bank, Row: row}, Bytes: 64, Done: cb}
}

func TestDefaultConfigsMatchTableII(t *testing.T) {
	cd := DefaultConfig(CD)
	if cd.ReadQueueCap != 64 || cd.WriteQueueCap != 64 {
		t.Fatalf("CD queues %d/%d, want 64/64", cd.ReadQueueCap, cd.WriteQueueCap)
	}
	rod := DefaultConfig(ROD)
	if rod.ReadQueueCap != 32 || rod.WriteQueueCap != 96 {
		t.Fatalf("ROD queues %d/%d, want 32/96", rod.ReadQueueCap, rod.WriteQueueCap)
	}
	dca := DefaultConfig(DCA)
	if dca.ScheduleAllHigh != 0.85 || dca.ScheduleAllLow != 0.75 || dca.FlushFactor != 4 {
		t.Fatalf("DCA thresholds wrong: %+v", dca)
	}
	for _, d := range []Design{CD, ROD, DCA} {
		if err := DefaultConfig(d).Validate(); err != nil {
			t.Errorf("%v default config invalid: %v", d, err)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	bad := DefaultConfig(CD)
	bad.ReadQueueCap = 0
	if bad.Validate() == nil {
		t.Error("zero read queue accepted")
	}
	bad = DefaultConfig(CD)
	bad.WriteFlushLow = 0.9
	bad.WriteFlushHigh = 0.5
	if bad.Validate() == nil {
		t.Error("inverted flush thresholds accepted")
	}
	bad = DefaultConfig(DCA)
	bad.FlushFactor = 9
	if bad.Validate() == nil {
		t.Error("flush factor beyond 3-bit range accepted")
	}
}

// routing checks Fig. 3 / Fig. 6: which queue each (kind, request type)
// combination lands in.
func TestQueueRouting(t *testing.T) {
	cases := []struct {
		design    Design
		kind      dram.Kind
		req       RequestType
		wantWrite bool
	}{
		// CD: by access type.
		{CD, dram.ReadTag, ReadReq, false},
		{CD, dram.ReadTag, WritebackReq, false}, // the inversion source
		{CD, dram.WriteData, WritebackReq, true},
		{CD, dram.WriteTag, ReadReq, true},
		// ROD: by request type, except WTr of a read request.
		{ROD, dram.ReadTag, ReadReq, false},
		{ROD, dram.ReadTag, WritebackReq, true}, // probe follows its request
		{ROD, dram.ReadData, RefillReq, true},
		{ROD, dram.WriteTag, ReadReq, true}, // the footnote exception
		{ROD, dram.WriteData, WritebackReq, true},
		// DCA: same mapping as CD.
		{DCA, dram.ReadTag, WritebackReq, false},
		{DCA, dram.WriteData, RefillReq, true},
	}
	for _, c := range cases {
		_, _, ctrl := testRig(c.design)
		ctrl.busy = true // prevent immediate issue so depth is observable
		ctrl.Enqueue(acc(c.kind, 0, 0, nil), c.req)
		r, w := ctrl.QueueDepths()
		gotWrite := w == 1
		if gotWrite != c.wantWrite || r+w != 1 {
			t.Errorf("%v %v/%v routed to write=%v (r=%d w=%d), want write=%v",
				c.design, c.kind, c.req, gotWrite, r, w, c.wantWrite)
		}
	}
}

// readQueueEntries collects the architected read queue in arrival (seq)
// order by walking the per-bank index.
func readQueueEntries(c *Controller) []*Entry {
	var out []*Entry
	for gb := range c.rq.banks {
		for lane := 0; lane < laneCount; lane++ {
			for e := c.rq.banks[gb][lane].mainHead; e != nil; e = e.bNext {
				out = append(out, e)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].seq < out[j].seq })
	return out
}

func TestPRLRClassification(t *testing.T) {
	_, _, ctrl := testRig(DCA)
	ctrl.busy = true
	ctrl.Enqueue(acc(dram.ReadTag, 0, 0, nil), ReadReq)
	ctrl.Enqueue(acc(dram.ReadTag, 1, 0, nil), WritebackReq)
	ctrl.Enqueue(acc(dram.ReadTag, 2, 0, nil), RefillReq)
	rq := readQueueEntries(ctrl)
	if len(rq) != 3 {
		t.Fatalf("read queue depth %d, want 3", len(rq))
	}
	if !rq[0].PriorityRead() {
		t.Error("read-request tag read must be a PR")
	}
	if rq[1].PriorityRead() || rq[2].PriorityRead() {
		t.Error("writeback/refill tag reads must be LRs")
	}
}

func TestCompletionCallback(t *testing.T) {
	eng, _, ctrl := testRig(CD)
	var doneAt simtime.Time
	ctrl.Enqueue(acc(dram.ReadTag, 0, 0, func(now simtime.Time) { doneAt = now }), ReadReq)
	eng.Run()
	if doneAt == 0 {
		t.Fatal("completion callback never fired")
	}
	tm := dram.StackedDRAM()
	want := tm.TRCD + tm.TCAS + tm.TBurst
	if doneAt != want {
		t.Fatalf("completion at %v, want %v", doneAt, want)
	}
}

// TestDCAHoldsConflictingLR reproduces the OFS decision of §IV-C: an LR
// whose bank has a row conflict and a high RRPC must wait; once enough
// PRs touch other banks (decaying the RRPC below the flushing factor),
// the LR drains.
func TestDCAHoldsConflictingLR(t *testing.T) {
	eng, ch, ctrl := testRig(DCA)

	// A PR to bank 0 opens row 1 and sets RRPC[0] = 7.
	ctrl.Enqueue(acc(dram.ReadTag, 0, 1, nil), ReadReq)
	eng.Run()
	if ctrl.RRPC(0) != 7 {
		t.Fatalf("RRPC[0] = %d after PR, want 7", ctrl.RRPC(0))
	}

	// An LR to bank 0 row 2: conflict, RRPC 7 >= FF 4 -> held.
	lrDone := false
	ctrl.Enqueue(acc(dram.ReadTag, 0, 2, func(simtime.Time) { lrDone = true }), WritebackReq)
	eng.Run()
	if lrDone {
		t.Fatal("conflicting LR in a hot bank was scheduled; OFS should hold it")
	}
	if ch.Peek(addrmap.Loc{Bank: 0, Row: 1}) != dram.RowHit {
		t.Fatal("row 1 should still be open — the LR must not have closed it")
	}

	// Three PRs to other banks decay RRPC[0] to 4 — still held — and a
	// fourth brings it to 3 < FF, releasing the LR.
	for i := 1; i <= 4; i++ {
		ctrl.Enqueue(acc(dram.ReadTag, i, 1, nil), ReadReq)
		eng.Run()
	}
	if !lrDone {
		t.Fatalf("LR still held at RRPC[0]=%d < FF", ctrl.RRPC(0))
	}
	if ctrl.Stats().OFSIssues != 1 {
		t.Fatalf("OFS issues = %d, want 1", ctrl.Stats().OFSIssues)
	}
}

// TestDCASchedulesConflictFreeLR: an LR with no row conflict drains
// immediately through OFS even with a hot RRPC.
func TestDCASchedulesConflictFreeLR(t *testing.T) {
	eng, _, ctrl := testRig(DCA)
	ctrl.Enqueue(acc(dram.ReadTag, 0, 1, nil), ReadReq)
	eng.Run()
	lrDone := false
	// Same bank, same open row: row hit, no conflict.
	ctrl.Enqueue(acc(dram.ReadTag, 0, 1, func(simtime.Time) { lrDone = true }), WritebackReq)
	eng.Run()
	if !lrDone {
		t.Fatal("conflict-free LR was held; OFS should schedule it")
	}
}

// TestCDDoesNotHoldLR: the conventional design schedules writeback tag
// reads freely — the very behaviour that causes priority inversion.
func TestCDDoesNotHoldLR(t *testing.T) {
	eng, _, ctrl := testRig(CD)
	ctrl.Enqueue(acc(dram.ReadTag, 0, 1, nil), ReadReq)
	eng.Run()
	lrDone := false
	ctrl.Enqueue(acc(dram.ReadTag, 0, 2, func(simtime.Time) { lrDone = true }), WritebackReq)
	eng.Run()
	if !lrDone {
		t.Fatal("CD held a writeback tag read; it must schedule by access type only")
	}
}

// TestDCAPriorityInversionAvoided: with an LR and a later PR both queued,
// DCA serves the PR first; CD serves the older LR first.
func TestPriorityInversion(t *testing.T) {
	order := func(d Design) []string {
		eng, _, ctrl := testRig(d)
		ctrl.busy = true // hold scheduling while both enqueue
		var got []string
		// Older LR (writeback probe) to a conflicting row.
		ctrl.Enqueue(acc(dram.ReadTag, 0, 2, func(simtime.Time) { got = append(got, "LR") }), WritebackReq)
		// Newer PR.
		ctrl.Enqueue(acc(dram.ReadTag, 1, 1, func(simtime.Time) { got = append(got, "PR") }), ReadReq)
		ctrl.busy = false
		ctrl.kick()
		eng.Run()
		return got
	}
	if got := order(DCA); len(got) == 0 || got[0] != "PR" {
		t.Errorf("DCA service order %v, want PR first", got)
	}
	if got := order(CD); len(got) != 2 || got[0] != "LR" {
		// Both banks are closed (equal row state), so FR-FCFS falls back
		// to age and the older LR wins — priority inversion.
		t.Errorf("CD service order %v, want the older LR first", got)
	}
}

// TestWriteDrainThresholds: writes accumulate until the high threshold
// forces a drain down to the low threshold.
func TestWriteDrainThresholds(t *testing.T) {
	eng := &event.Engine{}
	ch := dram.NewChannel(dram.StackedDRAM(), testGeom())
	cfg := DefaultConfig(CD)
	cfg.WriteQueueCap = 8 // high = 7, low = 4
	ctrl := NewController(eng, ch, cfg, 4)

	// Hold scheduling while filling so only the threshold logic decides.
	served := 0
	ctrl.busy = true
	for i := 0; i < 3; i++ {
		ctrl.Enqueue(acc(dram.WriteData, i%4, 0, func(simtime.Time) { served++ }), WritebackReq)
	}
	ctrl.busy = false
	ctrl.kick()
	eng.Run()
	if served != 0 {
		t.Fatalf("%d writes served below both thresholds, want 0", served)
	}
	ctrl.busy = true
	for i := 0; i < 4; i++ {
		ctrl.Enqueue(acc(dram.WriteData, i%4, 1, func(simtime.Time) { served++ }), WritebackReq)
	}
	ctrl.busy = false
	ctrl.kick()
	eng.Run()
	// Occupancy hit the high threshold (7): forced drain down to the low
	// threshold (4) services 3 writes.
	if served != 3 {
		t.Fatalf("forced flush served %d writes, want 3", served)
	}
	if ctrl.Stats().ForcedFlushes != 1 {
		t.Fatalf("forced flushes = %d, want 1", ctrl.Stats().ForcedFlushes)
	}
}

// TestPassiveWriteFlush: with no reads pending and occupancy above the
// low threshold, writes drain opportunistically.
func TestPassiveWriteFlush(t *testing.T) {
	eng := &event.Engine{}
	ch := dram.NewChannel(dram.StackedDRAM(), testGeom())
	cfg := DefaultConfig(CD)
	cfg.WriteQueueCap = 8 // low = 4
	ctrl := NewController(eng, ch, cfg, 4)
	served := 0
	for i := 0; i < 6; i++ {
		ctrl.Enqueue(acc(dram.WriteData, i%4, 0, func(simtime.Time) { served++ }), WritebackReq)
	}
	eng.Run()
	// Hmm: all six arrived while idle, so the passive path drains down to
	// the low threshold.
	if served != 2 {
		t.Fatalf("passive flush served %d, want 2 (down to low threshold)", served)
	}
}

// TestReadsPreemptPassiveFlush: reads always beat the passive write path.
func TestReadsPreemptPassiveFlush(t *testing.T) {
	eng, _, ctrl := testRig(CD)
	ctrl.busy = true
	var got []string
	ctrl.Enqueue(acc(dram.WriteData, 0, 0, func(simtime.Time) { got = append(got, "W") }), WritebackReq)
	ctrl.Enqueue(acc(dram.ReadTag, 1, 0, func(simtime.Time) { got = append(got, "R") }), ReadReq)
	ctrl.busy = false
	ctrl.kick()
	eng.Run()
	if len(got) == 0 || got[0] != "R" {
		t.Fatalf("service order %v, want the read first", got)
	}
}

// TestScheduleAllHysteresis drives read-queue occupancy across the 85 %
// threshold and verifies LRs drain until occupancy falls below 75 %.
func TestScheduleAllHysteresis(t *testing.T) {
	eng := &event.Engine{}
	ch := dram.NewChannel(dram.StackedDRAM(), testGeom())
	cfg := DefaultConfig(DCA)
	cfg.ReadQueueCap = 20 // ScheduleAll on at >17, off at <15
	ctrl := NewController(eng, ch, cfg, 4)

	// Open row 1 in bank 0 and heat its RRPC so conflicting LRs are held.
	ctrl.Enqueue(acc(dram.ReadTag, 0, 1, nil), ReadReq)
	eng.Run()

	served := 0
	for i := 0; i < 18; i++ {
		ctrl.Enqueue(acc(dram.ReadTag, 0, 2+int64(i), func(simtime.Time) { served++ }), WritebackReq)
	}
	eng.Run()
	if served == 0 {
		t.Fatal("ScheduleAll never engaged: held LRs filled the queue past 85%")
	}
	if ctrl.Stats().ScheduleAllOn == 0 {
		t.Fatal("ScheduleAll counter not incremented")
	}
	// Hysteresis: once engaged it drains below 75 % (15 of 20), i.e. at
	// least 4 LRs must have been served before disengaging.
	if served < 4 {
		t.Fatalf("only %d LRs drained; hysteresis should drain to below 75%%", served)
	}
}

// TestOverflowPreserved: entries beyond the architected capacity spill
// and are eventually serviced in order.
func TestOverflowPreserved(t *testing.T) {
	eng := &event.Engine{}
	ch := dram.NewChannel(dram.StackedDRAM(), testGeom())
	cfg := DefaultConfig(CD)
	cfg.ReadQueueCap = 4
	ctrl := NewController(eng, ch, cfg, 4)
	served := 0
	for i := 0; i < 12; i++ {
		ctrl.Enqueue(acc(dram.ReadTag, i%8, int64(i), func(simtime.Time) { served++ }), ReadReq)
	}
	eng.Run()
	if served != 12 {
		t.Fatalf("served %d of 12 enqueued reads (overflow lost work)", served)
	}
}

// TestBLISSDeprioritizesStreak: after one app hogs the channel, another
// app's newer request is served ahead of the hog's older one.
func TestBLISSDeprioritizesStreak(t *testing.T) {
	eng, _, ctrl := testRig(CD)
	// App 0 gets four consecutive services -> blacklisted.
	for i := 0; i < 4; i++ {
		a := acc(dram.ReadTag, 0, 1, nil)
		a.App = 0
		ctrl.Enqueue(a, ReadReq)
		eng.Run()
	}
	ctrl.busy = true
	var got []int
	older := acc(dram.ReadTag, 1, 1, func(simtime.Time) { got = append(got, 0) })
	older.App = 0
	ctrl.Enqueue(older, ReadReq)
	newer := acc(dram.ReadTag, 2, 1, func(simtime.Time) { got = append(got, 1) })
	newer.App = 1
	ctrl.Enqueue(newer, ReadReq)
	ctrl.busy = false
	ctrl.kick()
	eng.Run()
	if len(got) != 2 || got[0] != 1 {
		t.Fatalf("service order %v, want the non-blacklisted app first", got)
	}
}

func TestRRPCDecay(t *testing.T) {
	eng, _, ctrl := testRig(DCA)
	ctrl.Enqueue(acc(dram.ReadTag, 3, 1, nil), ReadReq)
	eng.Run()
	if ctrl.RRPC(3) != 7 {
		t.Fatalf("RRPC[3] = %d, want 7", ctrl.RRPC(3))
	}
	ctrl.Enqueue(acc(dram.ReadTag, 5, 1, nil), ReadReq)
	eng.Run()
	if ctrl.RRPC(3) != 6 || ctrl.RRPC(5) != 7 {
		t.Fatalf("RRPC decay wrong: bank3=%d bank5=%d", ctrl.RRPC(3), ctrl.RRPC(5))
	}
	// Floor at zero: issue many PRs elsewhere.
	for i := 0; i < 10; i++ {
		ctrl.Enqueue(acc(dram.ReadTag, 1, 1, nil), ReadReq)
		eng.Run()
	}
	if ctrl.RRPC(3) != 0 {
		t.Fatalf("RRPC[3] = %d after decay, want 0", ctrl.RRPC(3))
	}
}

func TestParseDesign(t *testing.T) {
	for _, c := range []struct {
		in   string
		want Design
	}{{"cd", CD}, {"ROD", ROD}, {"dca", DCA}} {
		got, err := ParseDesign(c.in)
		if err != nil || got != c.want {
			t.Errorf("ParseDesign(%q) = %v, %v", c.in, got, err)
		}
	}
	if _, err := ParseDesign("nope"); err == nil {
		t.Error("unknown design accepted")
	}
}
