package core

import (
	"fmt"
	"testing"

	"dcasim/internal/addrmap"
	"dcasim/internal/dram"
	"dcasim/internal/event"
	"dcasim/internal/rng"
	"dcasim/internal/simtime"
)

// issueRecord is one scheduling decision: which entry (by enqueue seq)
// was issued, when, and through which path.
type issueRecord struct {
	seq      uint64
	now      simtime.Time
	fromRead bool
	viaOFS   bool
}

func (r issueRecord) String() string {
	return fmt.Sprintf("{seq %d @%v read=%v ofs=%v}", r.seq, r.now, r.fromRead, r.viaOFS)
}

// diffTraffic is a reproducible random access stream. Both controllers
// must receive identical streams, so it is generated once per seed.
type diffOp struct {
	acc dram.Access
	req RequestType
}

func makeTraffic(seed uint64, n, apps int) []diffOp {
	r := rng.New(seed)
	kinds := []dram.Kind{dram.ReadTag, dram.ReadData, dram.WriteTag, dram.WriteData}
	reqs := []RequestType{ReadReq, WritebackReq, RefillReq}
	ops := make([]diffOp, n)
	for i := range ops {
		// Concentrate on four apps so BLISS streaks (and blacklisting)
		// actually occur, but with many apps also sprinkle high ids to
		// exercise the >64-app fallback paths.
		app := r.Intn(4)
		if apps > 4 && r.Intn(4) == 0 {
			app = apps - 1 - r.Intn(4)
		}
		ops[i] = diffOp{
			acc: dram.Access{
				Kind:  kinds[r.Intn(len(kinds))],
				Loc:   addrmap.Loc{Bank: r.Intn(8), Row: int64(r.Intn(16)), Col: r.Intn(64)},
				Bytes: 64,
				App:   app,
			},
			req: reqs[r.Intn(len(reqs))],
		}
	}
	return ops
}

// TestDifferentialSchedule replays randomized enqueue/complete sequences
// through the reference linear-scan controller and the indexed scheduler
// and asserts the (time, seq, path) issue sequences are identical, for
// all three designs and all three base algorithms. Small queue capacities
// force the spill, drain, ScheduleAll, and OFS paths; the tight row space
// forces hits, conflicts, and blacklisting streaks.
func TestDifferentialSchedule(t *testing.T) {
	for _, design := range []Design{CD, ROD, DCA} {
		for _, alg := range []Algorithm{AlgBLISS, AlgFRFCFS, AlgFCFS} {
			t.Run(fmt.Sprintf("%v-%v", design, alg), func(t *testing.T) {
				for seed := uint64(1); seed <= 8; seed++ {
					runDifferential(t, design, alg, seed, 4)
				}
			})
		}
	}
}

// TestDifferentialScheduleManyApps covers the >64-application fallback,
// where the blacklist bitmask snapshot cannot represent every app and the
// controller reverts to per-app BLISS queries during skip scans.
func TestDifferentialScheduleManyApps(t *testing.T) {
	for seed := uint64(1); seed <= 4; seed++ {
		runDifferential(t, DCA, AlgBLISS, seed, 80)
		runDifferential(t, CD, AlgBLISS, seed, 80)
	}
}

func runDifferential(t *testing.T, design Design, alg Algorithm, seed uint64, apps int) {
	t.Helper()
	cfg := DefaultConfig(design)
	cfg.Algorithm = alg
	cfg.ReadQueueCap = 6
	cfg.WriteQueueCap = 6

	ops := makeTraffic(seed, 400, apps)

	var gotNew, gotRef []issueRecord

	engN := &event.Engine{}
	chN := dram.NewChannel(dram.StackedDRAM(), testGeom())
	ctrlN := NewController(engN, chN, cfg, apps)
	ctrlN.onIssue = func(e *Entry, now simtime.Time, fromRead, viaOFS bool) {
		gotNew = append(gotNew, issueRecord{e.seq, now, fromRead, viaOFS})
	}

	engR := &event.Engine{}
	chR := dram.NewChannel(dram.StackedDRAM(), testGeom())
	ctrlR := newRefController(engR, chR, cfg, apps)
	ctrlR.onIssue = func(e *refEntry, now simtime.Time, fromRead, viaOFS bool) {
		gotRef = append(gotRef, issueRecord{e.seq, now, fromRead, viaOFS})
	}

	for i, op := range ops {
		ctrlN.Enqueue(op.acc, op.req)
		ctrlR.Enqueue(op.acc, op.req)
		// Let both engines make progress between bursts so completions
		// interleave with arrivals.
		if i%8 == 7 {
			engN.Run()
			engR.Run()
		}
	}
	engN.Run()
	engR.Run()

	if len(gotNew) != len(gotRef) {
		t.Fatalf("%v/%v seed %d: issued %d vs reference %d", design, alg, seed, len(gotNew), len(gotRef))
	}
	for i := range gotNew {
		if gotNew[i] != gotRef[i] {
			t.Fatalf("%v/%v seed %d: pick %d diverged: indexed %v, reference %v",
				design, alg, seed, i, gotNew[i], gotRef[i])
		}
	}
	// The lazy RRPC epoch scheme must be bit-identical to the eager walk.
	for b := 0; b < chN.Banks(); b++ {
		if got, want := ctrlN.RRPC(b), ctrlR.rrpc[b]; got != want {
			t.Fatalf("%v/%v seed %d: RRPC[%d] = %d, reference %d", design, alg, seed, b, got, want)
		}
	}
	// Residual queue state must agree too (held LRs, undrained writes).
	nr, nw := ctrlN.QueueDepths()
	if nr != len(ctrlR.readQ) || nw != len(ctrlR.writeQ) {
		t.Fatalf("%v/%v seed %d: residual depths (%d,%d) vs reference (%d,%d)",
			design, alg, seed, nr, nw, len(ctrlR.readQ), len(ctrlR.writeQ))
	}
	if ctrlN.Stats() != ctrlR.stats {
		t.Fatalf("%v/%v seed %d: stats diverged:\nindexed   %+v\nreference %+v",
			design, alg, seed, ctrlN.Stats(), ctrlR.stats)
	}
}

// TestLazyRRPCMatchesEagerWalk drives the decay directly with random
// touch sequences and checks the derived counters against the eager
// all-banks walk after every step.
func TestLazyRRPCMatchesEagerWalk(t *testing.T) {
	_, ch, ctrl := testRig(DCA)
	eager := make([]uint8, ch.Banks())
	r := rng.New(7)
	for i := 0; i < 2000; i++ {
		bank := r.Intn(ch.Banks())
		ctrl.touchRRPC(bank)
		for j := range eager {
			if eager[j] > 0 {
				eager[j]--
			}
		}
		eager[bank] = 7
		if i%7 != 0 {
			continue
		}
		for j := range eager {
			if got := ctrl.RRPC(j); got != eager[j] {
				t.Fatalf("step %d: RRPC[%d] = %d, eager %d", i, j, got, eager[j])
			}
		}
	}
}

// TestSpillQueueDoesNotPinConsumedPrefix exercises the spill ring: the
// consumed prefix must be cleared and the buffer compacted, so sustained
// spill traffic cannot grow the backing array without bound.
func TestSpillQueueDoesNotPinConsumedPrefix(t *testing.T) {
	var s spillQueue
	for i := 0; i < 10_000; i++ {
		s.push(&Entry{seq: uint64(i)})
		if i%2 == 1 { // drain at half rate, then catch up
			if e := s.pop(); e.seq != uint64(i/2) {
				t.Fatalf("pop %d returned seq %d", i/2, e.seq)
			}
		}
	}
	for s.len() > 0 {
		s.pop()
	}
	if len(s.buf) != 0 || s.head != 0 {
		t.Fatalf("drained spill retains buf len %d head %d", len(s.buf), s.head)
	}
	// Push/pop in lockstep on a fresh queue: with at most one entry
	// outstanding, the backing array must not grow at all.
	var lk spillQueue
	for i := 0; i < 10_000; i++ {
		lk.push(&Entry{})
		lk.pop()
	}
	if cap(lk.buf) > 64 {
		t.Fatalf("lockstep spill grew backing array to %d", cap(lk.buf))
	}
}
