package core

// Error-path coverage for the design and policy registries, and for how
// registry failures surface through Config.Validate — a config naming an
// unknown policy or passing a bad parameter must be rejected with a
// descriptive error, not simulated under a silently-substituted default.

import (
	"strings"
	"testing"

	"dcasim/internal/sched"
)

type dupPolicy struct{ name string }

func (p dupPolicy) Name() string                       { return p.name }
func (dupPolicy) New(int, sched.Params) sched.Instance { return nil }

func TestRegisterPolicyRejectsDuplicates(t *testing.T) {
	// Case-insensitive clash with the built-in canonical name.
	if _, err := RegisterPolicy(sched.Registration{Policy: dupPolicy{name: "bliss"}}); err == nil || !strings.Contains(err.Error(), "already registered") {
		t.Errorf("duplicate of built-in BLISS accepted: %v", err)
	}
	// Clash with a built-in alias.
	if _, err := RegisterPolicy(sched.Registration{Policy: dupPolicy{name: "frfcfs"}}); err == nil || !strings.Contains(err.Error(), "already registered") {
		t.Errorf("duplicate of FR-FCFS alias accepted: %v", err)
	}
	if _, err := RegisterPolicy(sched.Registration{Policy: nil}); err == nil {
		t.Error("nil policy accepted")
	}
	if _, err := RegisterPolicy(sched.Registration{Policy: dupPolicy{name: ""}}); err == nil {
		t.Error("empty policy name accepted")
	}
}

func TestRegisterDesignRejectsBadSpecs(t *testing.T) {
	if _, err := RegisterDesign(DesignSpec{Name: "", RouteToWrite: routeByAccessType}); err == nil {
		t.Error("empty design name accepted")
	}
	if _, err := RegisterDesign(DesignSpec{Name: "x"}); err == nil {
		t.Error("nil RouteToWrite accepted")
	}
	if _, err := RegisterDesign(DesignSpec{Name: "dca", RouteToWrite: routeByAccessType}); err == nil || !strings.Contains(err.Error(), "already registered") {
		t.Errorf("duplicate of built-in DCA accepted: %v", err)
	}
}

func TestParseAlgorithmUnknown(t *testing.T) {
	if _, err := ParseAlgorithm("bananas"); err == nil || !strings.Contains(err.Error(), "unknown scheduling algorithm") {
		t.Errorf("unknown algorithm parsed: %v", err)
	}
	// The error lists the registry so the fix is discoverable.
	if _, err := ParseAlgorithm("bananas"); !strings.Contains(err.Error(), "BLISS") {
		t.Errorf("error does not list registered names: %v", err)
	}
	for in, want := range map[string]Algorithm{
		"bliss": AlgBLISS, "BLISS": AlgBLISS,
		"frfcfs": AlgFRFCFS, "FR-FCFS": AlgFRFCFS,
		"fcfs": AlgFCFS,
	} {
		got, err := ParseAlgorithm(in)
		if err != nil || got != want {
			t.Errorf("ParseAlgorithm(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
}

func TestValidateSurfacesRegistryErrors(t *testing.T) {
	unknownAlg := DefaultConfig(DCA)
	unknownAlg.Algorithm = "bananas"
	if err := unknownAlg.Validate(); err == nil || !strings.Contains(err.Error(), "unknown scheduling algorithm") {
		t.Errorf("unknown Algorithm passed Validate: %v", err)
	}

	unknownParam := DefaultConfig(DCA)
	unknownParam.AlgParams = map[string]float64{"Bogus": 1}
	if err := unknownParam.Validate(); err == nil || !strings.Contains(err.Error(), "no parameter") {
		t.Errorf("unknown AlgParams key passed Validate: %v", err)
	}

	outOfRange := DefaultConfig(DCA)
	outOfRange.AlgParams = map[string]float64{"Threshold": 0}
	if err := outOfRange.Validate(); err == nil || !strings.Contains(err.Error(), "outside") {
		t.Errorf("out-of-range AlgParams value passed Validate: %v", err)
	}

	unknownDesign := DefaultConfig(DCA)
	unknownDesign.Design = Design(99)
	if err := unknownDesign.Validate(); err == nil || !strings.Contains(err.Error(), "unknown design") {
		t.Errorf("unregistered Design passed Validate: %v", err)
	}
}

func TestConfigPolicyResolvesParams(t *testing.T) {
	cfg := DefaultConfig(DCA)
	cfg.AlgParams = map[string]float64{"Threshold": 2}
	reg, params, err := cfg.Policy()
	if err != nil {
		t.Fatal(err)
	}
	if reg.Policy.Name() != string(AlgBLISS) {
		t.Fatalf("resolved %q, want BLISS", reg.Policy.Name())
	}
	if got := params.Get("Threshold"); got != 2 {
		t.Errorf("override lost: Threshold = %v", got)
	}
	if got := params.Get("ClearIntervalNS"); got != 2500 {
		t.Errorf("default not filled: ClearIntervalNS = %v", got)
	}
}

func TestAlgorithmCanonical(t *testing.T) {
	if got := Algorithm("").Canonical(); got != AlgBLISS {
		t.Errorf("zero value canonicalises to %q, want BLISS", got)
	}
	if got := Algorithm("fr-fcfs").Canonical(); got != AlgFRFCFS {
		t.Errorf("alias canonicalises to %q, want FR-FCFS", got)
	}
	if got := Algorithm("bananas").Canonical(); got != "bananas" {
		t.Errorf("unknown name rewritten to %q; must pass through for the caller to reject", got)
	}
}
