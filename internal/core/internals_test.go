package core

// White-box tests of controller internals (lazy RRPC epochs, the spill
// ring) that need unexported access. The linear-scan reference oracle
// and the differential schedule tests that used to live beside these
// moved to dcasim/internal/sched/policytest, where they run for every
// registered policy.

import (
	"testing"

	"dcasim/internal/rng"
)

// TestLazyRRPCMatchesEagerWalk drives the decay directly with random
// touch sequences and checks the derived counters against the eager
// all-banks walk after every step.
func TestLazyRRPCMatchesEagerWalk(t *testing.T) {
	_, ch, ctrl := testRig(DCA)
	eager := make([]uint8, ch.Banks())
	r := rng.New(7)
	for i := 0; i < 2000; i++ {
		bank := r.Intn(ch.Banks())
		ctrl.touchRRPC(bank)
		for j := range eager {
			if eager[j] > 0 {
				eager[j]--
			}
		}
		eager[bank] = 7
		if i%7 != 0 {
			continue
		}
		for j := range eager {
			if got := ctrl.RRPC(j); got != eager[j] {
				t.Fatalf("step %d: RRPC[%d] = %d, eager %d", i, j, got, eager[j])
			}
		}
	}
}

// TestSpillQueueDoesNotPinConsumedPrefix exercises the spill ring: the
// consumed prefix must be cleared and the buffer compacted, so sustained
// spill traffic cannot grow the backing array without bound.
func TestSpillQueueDoesNotPinConsumedPrefix(t *testing.T) {
	var s spillQueue
	for i := 0; i < 10_000; i++ {
		s.push(&Entry{seq: uint64(i)})
		if i%2 == 1 { // drain at half rate, then catch up
			if e := s.pop(); e.seq != uint64(i/2) {
				t.Fatalf("pop %d returned seq %d", i/2, e.seq)
			}
		}
	}
	for s.len() > 0 {
		s.pop()
	}
	if len(s.buf) != 0 || s.head != 0 {
		t.Fatalf("drained spill retains buf len %d head %d", len(s.buf), s.head)
	}
	// Push/pop in lockstep on a fresh queue: with at most one entry
	// outstanding, the backing array must not grow at all.
	var lk spillQueue
	for i := 0; i < 10_000; i++ {
		lk.push(&Entry{})
		lk.pop()
	}
	if cap(lk.buf) > 64 {
		t.Fatalf("lockstep spill grew backing array to %d", cap(lk.buf))
	}
}
