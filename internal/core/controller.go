package core

import (
	"fmt"
	"math/bits"

	"dcasim/internal/dram"
	"dcasim/internal/event"
	"dcasim/internal/sched"
	"dcasim/internal/simtime"
)

// Entry is one queued DRAM access together with the request context the
// controllers classify on. Entries are pooled by the controller: the
// access is embedded by value and records are recycled through a free
// list once their completion fires, so steady-state enqueue/issue/
// complete cycles allocate nothing.
type Entry struct {
	Acc     dram.Access
	ReqType RequestType

	// priorityRead is true for read accesses belonging to cache read
	// requests (PRs); it is derived in Enqueue.
	priorityRead bool
	enqueued     simtime.Time
	seq          uint64

	// Scheduling metadata precomputed at enqueue so the pick loops do no
	// address math: the access's dense global bank and its lane (PR
	// read / LR read / write).
	gb   int32
	lane uint8

	// Intrusive links: every architected-queue entry sits on its
	// (bank, lane) FIFO list, and additionally on that list's row-hit
	// sublist when its row matches the bank's open row.
	bPrev, bNext *Entry
	hPrev, hNext *Entry
	inHit        bool
}

// PriorityRead reports the PR/LR classification assigned at enqueue time.
func (e *Entry) PriorityRead() bool { return e.priorityRead }

// Seq returns the entry's global arrival sequence number (the age
// component of the scheduling key), exposed for the conformance harness.
func (e *Entry) Seq() uint64 { return e.seq }

// Lanes segregate entries by the static attributes the priority key
// consumes: PR reads and LR reads share the read bus direction but differ
// under DCA's two-level classification; writes drive the bus the other
// way. Within one (bank, lane) list every entry therefore has the same
// direction and the same PR/LR class, so only row-hit status, blacklist
// status, and age distinguish them.
const (
	lanePRRead = iota // reads belonging to cache read requests
	laneLRRead        // reads belonging to writeback/refill requests
	laneWrite
	laneCount
)

const (
	laneMaskPR  uint8 = 1 << lanePRRead
	laneMaskAll uint8 = 1<<laneCount - 1
)

// laneMismatch reports whether lane's bus direction differs from the last
// burst's (the FR-FCFS turnaround-amortising key component).
func laneMismatch(lane int, lastDir dram.Dir) bool {
	if lastDir == dram.DirNone {
		return false
	}
	if lane == laneWrite {
		return lastDir != dram.DirWrite
	}
	return lastDir != dram.DirRead
}

// bankLane is the pair of intrusive lists holding one bank's entries of
// one lane: the full FIFO (seq order) and its row-hit sublist.
type bankLane struct {
	mainHead, mainTail *Entry
	hitHead, hitTail   *Entry
}

// qindex is one architected queue (read or write) indexed by global bank
// and lane. Bitmaps record which (lane, bank) lists are non-empty so a
// pick consults only populated banks; stale marks banks whose open row
// changed since their hit sublists were last rebuilt (rebuilt lazily, on
// the next consultation, from the row-change notifications the channel
// delivers — never by re-Peeking every entry).
type qindex struct {
	banks    [][laneCount]bankLane
	nonEmpty [laneCount]uint64 // per-lane bitmap of banks with entries
	hitBanks [laneCount]uint64 // per-lane bitmap of banks with row hits
	stale    uint64            // banks whose hit sublists need a rebuild
	count    int

	// appCnt[app*laneCount+lane] counts queued entries per application
	// and lane (apps outside [0, napps) share the final slot; a phase
	// mask never excludes them). It lets a pick prove "no candidate is
	// admitted by this phase" in O(apps) and skip the phase instead of
	// walking every list to find nothing — under BLISS this is the
	// steady state of single-application (alone) runs, whose only app
	// re-blacklists after every fourth service.
	appCnt []int32
	napps  int
}

func (q *qindex) init(nbanks, napps int) {
	q.banks = make([][laneCount]bankLane, nbanks)
	q.napps = napps
	q.appCnt = make([]int32, (napps+1)*laneCount)
}

func (q *qindex) appSlot(app int) int {
	if app < 0 || app >= q.napps {
		return q.napps
	}
	return app
}

// hasAllowed reports whether any queued entry in the allowed lanes
// belongs to an application the phase's allowed-mask admits (i.e.
// whether a restricted scan phase can possibly find a candidate).
// Applications outside [0, napps) and outside the mask's 64-bit range
// are always admitted, matching entryAllowed.
func (q *qindex) hasAllowed(laneMask uint8, allowed uint64) bool {
	for a := 0; a <= q.napps; a++ {
		if a < q.napps && a < 64 && allowed>>uint(a)&1 == 0 {
			continue
		}
		base := a * laneCount
		for lane := 0; lane < laneCount; lane++ {
			if laneMask&(1<<uint(lane)) != 0 && q.appCnt[base+lane] > 0 {
				return true
			}
		}
	}
	return false
}

// add appends e (already carrying gb and lane) to its FIFO list, and to
// the row-hit sublist when its row matches the bank's open row. Appends
// preserve seq order because seq is globally increasing and spilled
// entries refill strictly in arrival order.
func (q *qindex) add(e *Entry, openRow int64) {
	bl := &q.banks[e.gb][e.lane]
	e.bPrev = bl.mainTail
	e.bNext = nil
	if bl.mainTail != nil {
		bl.mainTail.bNext = e
	} else {
		bl.mainHead = e
	}
	bl.mainTail = e
	bit := uint64(1) << uint(e.gb)
	q.nonEmpty[e.lane] |= bit
	if q.stale&bit == 0 && e.Acc.Loc.Row == openRow {
		e.inHit = true
		e.hPrev = bl.hitTail
		e.hNext = nil
		if bl.hitTail != nil {
			bl.hitTail.hNext = e
		} else {
			bl.hitHead = e
		}
		bl.hitTail = e
		q.hitBanks[e.lane] |= bit
	}
	q.appCnt[q.appSlot(e.Acc.App)*laneCount+int(e.lane)]++
	q.count++
}

// unlink removes e from its lists in O(1).
func (q *qindex) unlink(e *Entry) {
	bl := &q.banks[e.gb][e.lane]
	if e.bPrev != nil {
		e.bPrev.bNext = e.bNext
	} else {
		bl.mainHead = e.bNext
	}
	if e.bNext != nil {
		e.bNext.bPrev = e.bPrev
	} else {
		bl.mainTail = e.bPrev
	}
	e.bPrev, e.bNext = nil, nil
	bit := uint64(1) << uint(e.gb)
	if bl.mainHead == nil {
		q.nonEmpty[e.lane] &^= bit
	}
	if e.inHit {
		if e.hPrev != nil {
			e.hPrev.hNext = e.hNext
		} else {
			bl.hitHead = e.hNext
		}
		if e.hNext != nil {
			e.hNext.hPrev = e.hPrev
		} else {
			bl.hitTail = e.hPrev
		}
		e.hPrev, e.hNext = nil, nil
		e.inHit = false
		if bl.hitHead == nil {
			q.hitBanks[e.lane] &^= bit
		}
	}
	q.appCnt[q.appSlot(e.Acc.App)*laneCount+int(e.lane)]--
	q.count--
}

// freshen rebuilds the hit sublists of every stale, populated bank. At
// most one bank goes stale per issued access (the activated one), so the
// amortised cost is the handful of entries queued at that bank.
func (q *qindex) freshen(rows []int64) {
	if q.stale == 0 {
		return
	}
	dirty := q.stale & (q.nonEmpty[0] | q.nonEmpty[1] | q.nonEmpty[2])
	for dirty != 0 {
		gb := bits.TrailingZeros64(dirty)
		dirty &^= 1 << uint(gb)
		q.rebuildHit(gb, rows[gb])
	}
	q.stale = 0
}

func (q *qindex) rebuildHit(gb int, row int64) {
	bls := &q.banks[gb]
	bit := uint64(1) << uint(gb)
	for lane := range bls {
		bl := &bls[lane]
		bl.hitHead, bl.hitTail = nil, nil
		q.hitBanks[lane] &^= bit
		for e := bl.mainHead; e != nil; e = e.bNext {
			if e.Acc.Loc.Row == row {
				e.inHit = true
				e.hPrev = bl.hitTail
				e.hNext = nil
				if bl.hitTail != nil {
					bl.hitTail.hNext = e
				} else {
					bl.hitHead = e
				}
				bl.hitTail = e
			} else if e.inHit {
				e.inHit = false
				e.hPrev, e.hNext = nil, nil
			}
		}
		if bl.hitHead != nil {
			q.hitBanks[lane] |= bit
		}
	}
}

// spillQueue holds entries beyond the architected queue capacities in
// arrival order. Consumed slots are cleared immediately and the buffer is
// compacted as the head advances, so a long-lived spill never pins the
// consumed prefix of its backing array.
type spillQueue struct {
	buf  []*Entry
	head int
}

func (s *spillQueue) push(e *Entry) { s.buf = append(s.buf, e) }
func (s *spillQueue) len() int      { return len(s.buf) - s.head }

func (s *spillQueue) pop() *Entry {
	e := s.buf[s.head]
	s.buf[s.head] = nil
	s.head++
	if s.head == len(s.buf) {
		s.buf = s.buf[:0]
		s.head = 0
	} else if s.head >= 32 && s.head*2 >= len(s.buf) {
		n := copy(s.buf, s.buf[s.head:])
		for i := n; i < len(s.buf); i++ {
			s.buf[i] = nil
		}
		s.buf = s.buf[:n]
		s.head = 0
	}
	return e
}

// Stats aggregates the controller-level counters the evaluation consumes.
type Stats struct {
	PRIssued      int64
	LRIssued      int64
	WritesIssued  int64
	OFSIssues     int64 // LRs issued through the opportunistic flush path
	ScheduleAllOn int64 // times the hysteresis engaged
	ForcedFlushes int64 // write drains triggered by the high threshold
	IdleSlots     int64 // scheduling slots with nothing eligible

	ReadQueueWait  simtime.Time // summed queue residency of read-queue issues
	WriteQueueWait simtime.Time
}

// Controller schedules accesses onto one DRAM channel according to a
// Design. It is event-driven: Enqueue inserts work and the controller
// re-evaluates whenever the channel completes an access or new work
// arrives.
//
// Scheduling is O(1)-amortised per slot: entries live on per-bank indexed
// FIFO lists with incrementally maintained row-hit sublists, picks walk
// non-empty-bank bitmaps in priority-class order (policy phase, row hit,
// bus direction, age — exactly the linear scan's [4]int64 key), removal
// is intrusive unlinking, and the RRPC decay is a lazy epoch scheme. The
// policy phases come from the registered scheduling policy's Instance
// (see dcasim/internal/sched); the schedule produced is bit-identical to
// the reference linear scan, which the conformance harness in
// dcasim/internal/sched/policytest replays side by side against every
// registered policy.
type Controller struct {
	eng *event.Engine
	ch  *dram.Channel
	cfg Config

	// Design hooks resolved from the registry at construction: the
	// queue-mapping rule and whether the two-level PR/LR machinery
	// (ScheduleAll, OFS) is active.
	route    func(kind dram.Kind, req RequestType) bool
	twoLevel bool

	// pol is the per-channel scheduling-policy instance; rowHitFirst
	// caches its (constant) RowHitFirst answer.
	pol         sched.Instance
	rowHitFirst bool

	rq, wq         qindex
	spillR, spillW spillQueue

	// rows shadows each bank's open row (-1 precharged), maintained by
	// the channel's row-change notification; row changes also mark the
	// bank stale in both queue indexes.
	rows []int64

	draining    bool
	scheduleAll bool
	busy        bool
	seq         uint64

	// Lazy RRPC decay: the eager scheme decrements every bank's 3-bit
	// counter on each PR issue and sets the touched bank to 7. Storing
	// (value, epoch) per bank and a global PR-issue epoch derives the
	// same value on read — max(0, val - (prEpoch - epoch)) — in O(1)
	// per touch instead of O(banks).
	prEpoch uint64
	rrpcVal []uint8
	rrpcEp  []uint64

	// Thresholds that are pure functions of the config, precomputed.
	writeHi, writeLo int

	// Restriction state of the current scan phase, loaded by enterPhase:
	// with a mask-representable phase (curMaskOK) the restricted scans
	// test one mask bit per entry; otherwise they fall back to per-entry
	// PhaseAllows(curPhase, app) queries on the policy instance.
	curMask   uint64
	curMaskOK bool
	curPhase  int

	// pool is the free list of retired entries awaiting reuse.
	pool []*Entry

	stats Stats

	// onIssue, when non-nil, observes every issue decision (test hook
	// for the differential scheduling oracle in sched/policytest).
	onIssue func(e *Entry, now simtime.Time, fromRead, viaOFS bool)
}

// SetIssueObserver installs fn to observe every issue decision: the
// chosen entry, the issue time, whether it left the read queue, and
// whether it was an opportunistic (OFS) LR issue. It exists for test
// instrumentation — the differential conformance harness records both
// schedules through it — and must be set before simulation starts.
func (c *Controller) SetIssueObserver(fn func(e *Entry, now simtime.Time, fromRead, viaOFS bool)) {
	c.onIssue = fn
}

// NewController builds a controller for one channel serving `apps`
// applications. The config must validate. The per-bank index uses one
// bitmap word, capping a channel at 64 banks (the paper's machines have
// 16).
func NewController(eng *event.Engine, ch *dram.Channel, cfg Config, apps int) *Controller {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	nb := ch.Banks()
	if nb > 64 {
		panic(fmt.Sprintf("core: controller supports at most 64 banks per channel, got %d", nb))
	}
	spec, err := cfg.Design.Spec()
	if err != nil {
		panic(err) // unreachable: Validate resolved the design above
	}
	reg, params, err := cfg.Policy()
	if err != nil {
		panic(err) // unreachable: Validate resolved the policy above
	}
	c := &Controller{
		eng:      eng,
		ch:       ch,
		cfg:      cfg,
		route:    spec.RouteToWrite,
		twoLevel: spec.TwoLevel,
		pol:      reg.Policy.New(apps, params),
		rows:     make([]int64, nb),
		rrpcVal:  make([]uint8, nb),
		rrpcEp:   make([]uint64, nb),
		writeHi:  int(float64(cfg.WriteQueueCap)*cfg.WriteFlushHigh + 0.5),
		writeLo:  int(float64(cfg.WriteQueueCap)*cfg.WriteFlushLow + 0.5),
	}
	c.rowHitFirst = c.pol.RowHitFirst()
	for i := range c.rows {
		c.rows[i] = -1
	}
	c.rq.init(nb, apps)
	c.wq.init(nb, apps)
	ch.SetRowListener(c.onRowChange)
	return c
}

// onRowChange is the channel's activate notification: it updates the
// open-row shadow and marks the bank's hit sublists stale in both queues.
func (c *Controller) onRowChange(gb int, row int64) {
	c.rows[gb] = row
	bit := uint64(1) << uint(gb)
	c.rq.stale |= bit
	c.wq.stale |= bit
}

// Design returns the controller's design.
func (c *Controller) Design() Design { return c.cfg.Design }

// Stats returns a snapshot of the controller counters.
func (c *Controller) Stats() Stats { return c.stats }

// ResetStats clears the controller counters (used after warm-up).
func (c *Controller) ResetStats() { c.stats = Stats{} }

// QueueDepths returns the current architected read/write queue depths,
// exposed for tests and debugging.
func (c *Controller) QueueDepths() (reads, writes int) {
	return c.rq.count, c.wq.count
}

// getEntry takes a record off the free list, or grows the pool.
func (c *Controller) getEntry() *Entry {
	if n := len(c.pool); n > 0 {
		e := c.pool[n-1]
		c.pool[n-1] = nil
		c.pool = c.pool[:n-1]
		return e
	}
	return new(Entry)
}

// putEntry clears a retired record (dropping its callback references)
// and returns it to the free list.
func (c *Controller) putEntry(e *Entry) {
	*e = Entry{}
	c.pool = append(c.pool, e)
}

// Enqueue routes one access into the controller's queues following the
// design's classification rule and triggers a scheduling evaluation.
func (c *Controller) Enqueue(acc dram.Access, reqType RequestType) {
	c.seq++
	e := c.getEntry()
	e.Acc = acc
	e.ReqType = reqType
	e.enqueued = c.eng.Now()
	e.seq = c.seq
	e.gb = int32(c.ch.GlobalBank(acc.Loc))
	toWrite := c.route(acc.Kind, reqType)
	if acc.Kind.IsWrite() {
		e.lane = laneWrite
	} else {
		if !toWrite {
			e.priorityRead = reqType == ReadReq
		}
		if e.priorityRead {
			e.lane = lanePRRead
		} else {
			e.lane = laneLRRead
		}
	}
	if toWrite {
		if c.wq.count < c.cfg.WriteQueueCap {
			c.wq.add(e, c.rows[e.gb])
		} else {
			c.spillW.push(e)
		}
	} else {
		if c.rq.count < c.cfg.ReadQueueCap {
			c.rq.add(e, c.rows[e.gb])
		} else {
			c.spillR.push(e)
		}
	}
	c.kick()
}

// kick evaluates the scheduler if the channel is idle.
func (c *Controller) kick() {
	if c.busy {
		return
	}
	now := c.eng.Now()
	e, fromRead, viaOFS := c.pick(now)
	if e == nil {
		c.stats.IdleSlots++
		return
	}
	c.issue(e, fromRead, viaOFS, now)
}

// pick chooses the next entry to service, returning whether it came from
// the read queue and whether it was an OFS low-priority-read issue.
func (c *Controller) pick(now simtime.Time) (e *Entry, fromRead, viaOFS bool) {
	c.updateDrainState()
	c.updateScheduleAll()

	if c.draining {
		if e := c.bestIn(&c.wq, now, laneMaskAll); e != nil {
			return e, false, false
		}
		// The write queue emptied below the capacity threshold only via
		// completions; fall through to reads.
	}

	// Read queue: single-level designs (CD, ROD) schedule every entry;
	// two-level designs (DCA) schedule PRs unless ScheduleAll engaged.
	mask := laneMaskAll
	if c.twoLevel && !c.scheduleAll {
		mask = laneMaskPR
	}
	if e := c.bestIn(&c.rq, now, mask); e != nil {
		return e, true, false
	}

	// Opportunistic flushing of LRs (two-level designs): only when no PR
	// was eligible and occupancy is below the ScheduleAll threshold
	// (guaranteed here because ScheduleAll would have widened the mask
	// above).
	if c.twoLevel && !c.scheduleAll {
		if e := c.bestOFS(now); e != nil {
			return e, true, true
		}
	}

	// Passive write flush: no read work pending, write queue above the
	// low threshold.
	if c.wq.count > c.writeLo {
		if e := c.bestIn(&c.wq, now, laneMaskAll); e != nil {
			return e, false, false
		}
	}
	return nil, false, false
}

// bestIn picks the highest-priority entry among q's lanes in laneMask
// under the policy's key: earliest admitting phase first (e.g. BLISS's
// non-blacklisted applications), then row hits (FR-FCFS), then accesses
// matching the bus's current direction, then oldest arrival. It consults
// only the banks whose lists are populated — row-hit candidates come
// straight from the per-bank hit sublists.
func (c *Controller) bestIn(q *qindex, now simtime.Time, laneMask uint8) *Entry {
	if q.count == 0 {
		return nil
	}
	if !c.rowHitFirst {
		// Pure age order: the oldest entry across the allowed lanes.
		return q.minSeqHead(laneMask)
	}
	// Consult the policy only when at least one entry is a candidate:
	// policies apply time-based state transitions (e.g. BLISS's periodic
	// blacklist clear) on consultation, so the consultation schedule must
	// see exactly the consultations the reference linear scan performs.
	var populated uint64
	for lane := 0; lane < laneCount; lane++ {
		if laneMask&(1<<uint(lane)) != 0 {
			populated |= q.nonEmpty[lane]
		}
	}
	if populated == 0 {
		return nil
	}
	q.freshen(c.rows)
	// An entry admitted by an earlier phase beats every entry admitted
	// only later, so resolve phase by phase: scan each restricted phase
	// (skipping entries it does not admit, or the whole phase when the
	// per-app counters prove it empty) and finish with the unrestricted
	// final phase, where the phase component ties and drops out of the
	// key.
	phases := c.pol.BeginPick(now)
	for p := 0; p < phases-1; p++ {
		if !c.enterPhase(q, laneMask, p) {
			continue
		}
		if e := c.classBest(q, laneMask, true); e != nil {
			return e
		}
	}
	return c.classBest(q, laneMask, false)
}

// enterPhase loads phase p's restriction into the pick state and reports
// whether the phase can possibly yield a candidate: a mask-representable
// phase admitting no queued application is skipped without walking any
// list.
func (c *Controller) enterPhase(q *qindex, laneMask uint8, p int) bool {
	c.curPhase = p
	c.curMask, c.curMaskOK = c.pol.PhaseMask(p)
	if c.curMaskOK && !q.hasAllowed(laneMask, c.curMask) {
		return false
	}
	return true
}

// minSeqHead returns the oldest entry across the allowed lanes' bank
// lists (each list head is its bank's oldest).
func (q *qindex) minSeqHead(laneMask uint8) *Entry {
	var best *Entry
	for lane := 0; lane < laneCount; lane++ {
		if laneMask&(1<<uint(lane)) == 0 {
			continue
		}
		bm := q.nonEmpty[lane]
		for bm != 0 {
			gb := bits.TrailingZeros64(bm)
			bm &^= 1 << uint(gb)
			if e := q.banks[gb][lane].mainHead; best == nil || e.seq < best.seq {
				best = e
			}
		}
	}
	return best
}

// classBest walks the priority classes in key order — (row hit, same
// direction), (row hit, turnaround), (row miss, same direction), (row
// miss, turnaround) — returning the oldest candidate of the first
// non-empty class. Row-hit candidates come from the hit sublists; by the
// time a miss class is reached no eligible hit exists anywhere, so the
// first eligible entry of any bank FIFO is necessarily a miss.
func (c *Controller) classBest(q *qindex, laneMask uint8, restricted bool) *Entry {
	lastDir := c.ch.LastDir()
	for hitPass := 0; hitPass < 2; hitPass++ {
		for dmv := 0; dmv < 2; dmv++ {
			var best *Entry
			for lane := 0; lane < laneCount; lane++ {
				if laneMask&(1<<uint(lane)) == 0 {
					continue
				}
				if laneMismatch(lane, lastDir) != (dmv == 1) {
					continue
				}
				var bm uint64
				if hitPass == 0 {
					bm = q.hitBanks[lane]
				} else {
					bm = q.nonEmpty[lane]
				}
				for bm != 0 {
					gb := bits.TrailingZeros64(bm)
					bm &^= 1 << uint(gb)
					bl := &q.banks[gb][lane]
					var e *Entry
					if hitPass == 0 {
						e = c.firstEligible(bl.hitHead, true, restricted, best)
					} else {
						e = c.firstEligible(bl.mainHead, false, restricted, best)
					}
					if e != nil && (best == nil || e.seq < best.seq) {
						best = e
					}
				}
			}
			if best != nil {
				return best
			}
			if lastDir == dram.DirNone {
				// Every lane matched the (vacuous) direction; there is
				// no second direction pass.
				break
			}
		}
	}
	return nil
}

// firstEligible returns the first (oldest) entry of a list, skipping
// entries the current phase does not admit when restricted. Lists are
// seq-ascending, so the walk aborts once it passes limit (the best
// candidate found so far in the same priority class): no later node can
// beat it.
func (c *Controller) firstEligible(head *Entry, viaHit, restricted bool, limit *Entry) *Entry {
	for e := head; e != nil; {
		if limit != nil && e.seq > limit.seq {
			return nil
		}
		if !restricted || c.entryAllowed(e) {
			return e
		}
		if viaHit {
			e = e.hNext
		} else {
			e = e.bNext
		}
	}
	return nil
}

// entryAllowed tests e's app against the current phase restriction. In
// mask mode, apps outside bits 0..63 are always admitted (negative apps
// convert to huge unsigned values), matching the Instance contract and
// hasAllowed's accounting.
func (c *Controller) entryAllowed(e *Entry) bool {
	if c.curMaskOK {
		return uint(e.Acc.App) >= 64 || c.curMask>>uint(e.Acc.App)&1 != 0
	}
	return c.pol.PhaseAllows(c.curPhase, e.Acc.App)
}

// bestOFS implements the OFS criteria (§IV-C) over the LR lane: an LR is
// eligible if its bank shows no row conflict (a hit, or the bank is
// precharged) or the bank's RRPC is below the flushing factor (the bank
// has not been touched by PRs recently). Row hits are always eligible;
// whole banks become eligible when precharged or cool.
func (c *Controller) bestOFS(now simtime.Time) *Entry {
	q := &c.rq
	if q.nonEmpty[laneLRRead] == 0 {
		return nil
	}
	q.freshen(c.rows)
	// As in bestIn, consult the policy only when the eligible set is
	// non-empty, mirroring the reference scan's per-candidate checks.
	eligible := q.hitBanks[laneLRRead] != 0
	if !eligible {
		bm := q.nonEmpty[laneLRRead]
		for bm != 0 {
			gb := bits.TrailingZeros64(bm)
			bm &^= 1 << uint(gb)
			if c.bankFlushable(gb) {
				eligible = true
				break
			}
		}
	}
	if !eligible {
		return nil
	}
	if !c.rowHitFirst {
		var best *Entry
		bm := q.nonEmpty[laneLRRead]
		for bm != 0 {
			gb := bits.TrailingZeros64(bm)
			bm &^= 1 << uint(gb)
			var e *Entry
			if c.bankFlushable(gb) {
				e = q.banks[gb][laneLRRead].mainHead
			} else {
				e = q.banks[gb][laneLRRead].hitHead
			}
			if e != nil && (best == nil || e.seq < best.seq) {
				best = e
			}
		}
		return best
	}
	phases := c.pol.BeginPick(now)
	for p := 0; p < phases-1; p++ {
		if !c.enterPhase(q, 1<<laneLRRead, p) {
			continue
		}
		if e := c.ofsClassBest(true); e != nil {
			return e
		}
	}
	return c.ofsClassBest(false)
}

func (c *Controller) ofsClassBest(restricted bool) *Entry {
	q := &c.rq
	// Row hits first (all OFS-eligible; direction ties across the lane).
	var best *Entry
	bm := q.hitBanks[laneLRRead]
	for bm != 0 {
		gb := bits.TrailingZeros64(bm)
		bm &^= 1 << uint(gb)
		e := c.firstEligible(q.banks[gb][laneLRRead].hitHead, true, restricted, best)
		if e != nil && (best == nil || e.seq < best.seq) {
			best = e
		}
	}
	if best != nil {
		return best
	}
	// Then misses, only in flushable banks; no eligible hit exists at
	// this point, so bank FIFO walks yield misses.
	bm = q.nonEmpty[laneLRRead]
	for bm != 0 {
		gb := bits.TrailingZeros64(bm)
		bm &^= 1 << uint(gb)
		if !c.bankFlushable(gb) {
			continue
		}
		e := c.firstEligible(q.banks[gb][laneLRRead].mainHead, false, restricted, best)
		if e != nil && (best == nil || e.seq < best.seq) {
			best = e
		}
	}
	return best
}

// bankFlushable reports whether every LR queued at gb passes the OFS
// check: the bank is precharged, or cool (RRPC below the flush factor).
func (c *Controller) bankFlushable(gb int) bool {
	return c.rows[gb] == -1 || c.rrpcNow(gb) < c.cfg.FlushFactor
}

// issue services e on the channel and schedules the completion event.
func (c *Controller) issue(e *Entry, fromRead, viaOFS bool, now simtime.Time) {
	if fromRead {
		c.rq.unlink(e)
		c.refill(&c.rq, &c.spillR, c.cfg.ReadQueueCap)
		c.stats.ReadQueueWait += now - e.enqueued
	} else {
		c.wq.unlink(e)
		c.refill(&c.wq, &c.spillW, c.cfg.WriteQueueCap)
		c.stats.WriteQueueWait += now - e.enqueued
	}

	if e.Acc.Kind.IsWrite() {
		c.stats.WritesIssued++
	} else if e.priorityRead {
		c.stats.PRIssued++
		c.touchRRPC(int(e.gb))
	} else {
		c.stats.LRIssued++
		if viaOFS {
			c.stats.OFSIssues++
		}
	}

	if c.onIssue != nil {
		c.onIssue(e, now, fromRead, viaOFS)
	}

	done := c.ch.Issue(&e.Acc, now)
	c.pol.OnServed(now, e.Acc.App)
	c.busy = true
	c.eng.Schedule(done, c, event.Payload{Ptr: e})
}

// OnEvent implements event.Handler: it fires at an access's data
// completion time, retires the entry, and re-evaluates the scheduler.
func (c *Controller) OnEvent(now simtime.Time, p event.Payload) {
	e := p.Ptr.(*Entry)
	cb := e.Acc.Done
	c.putEntry(e)
	c.busy = false
	cb.Invoke(now)
	c.kick()
}

// touchRRPC applies the RRIP-style update — every bank counter decays by
// one (floor zero) and the bank just accessed by a PR becomes most recent
// (7) — lazily: one epoch bump plus one store.
func (c *Controller) touchRRPC(bank int) {
	c.prEpoch++
	c.rrpcVal[bank] = 7
	c.rrpcEp[bank] = c.prEpoch
}

// rrpcNow derives bank's current counter from its last-touch record.
func (c *Controller) rrpcNow(bank int) uint8 {
	d := c.prEpoch - c.rrpcEp[bank]
	v := c.rrpcVal[bank]
	if d >= uint64(v) {
		return 0
	}
	return v - uint8(d)
}

// RRPC exposes a bank's counter for tests.
func (c *Controller) RRPC(bank int) uint8 { return c.rrpcNow(bank) }

func (c *Controller) updateDrainState() {
	if !c.draining && c.wq.count >= c.writeHi {
		c.draining = true
		c.stats.ForcedFlushes++
	}
	if c.draining && c.wq.count <= c.writeLo {
		c.draining = false
	}
}

func (c *Controller) updateScheduleAll() {
	if !c.twoLevel {
		return
	}
	occ := float64(c.rq.count) / float64(c.cfg.ReadQueueCap)
	if !c.scheduleAll && occ > c.cfg.ScheduleAllHigh {
		c.scheduleAll = true
		c.stats.ScheduleAllOn++
	} else if c.scheduleAll && occ < c.cfg.ScheduleAllLow {
		c.scheduleAll = false
	}
}

// refill tops an architected queue up from its spill queue in arrival
// order.
func (c *Controller) refill(q *qindex, sp *spillQueue, capacity int) {
	for q.count < capacity && sp.len() > 0 {
		e := sp.pop()
		q.add(e, c.rows[e.gb])
	}
}
