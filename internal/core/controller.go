package core

import (
	"dcasim/internal/dram"
	"dcasim/internal/event"
	"dcasim/internal/sched"
	"dcasim/internal/simtime"
)

// Entry is one queued DRAM access together with the request context the
// controllers classify on. Entries are pooled by the controller: the
// access is embedded by value and records are recycled through a free
// list once their completion fires, so steady-state enqueue/issue/
// complete cycles allocate nothing.
type Entry struct {
	Acc     dram.Access
	ReqType RequestType

	// priorityRead is true for read accesses belonging to cache read
	// requests (PRs); it is derived in Enqueue.
	priorityRead bool
	enqueued     simtime.Time
	seq          uint64
}

// PriorityRead reports the PR/LR classification assigned at enqueue time.
func (e *Entry) PriorityRead() bool { return e.priorityRead }

// Stats aggregates the controller-level counters the evaluation consumes.
type Stats struct {
	PRIssued      int64
	LRIssued      int64
	WritesIssued  int64
	OFSIssues     int64 // LRs issued through the opportunistic flush path
	ScheduleAllOn int64 // times the hysteresis engaged
	ForcedFlushes int64 // write drains triggered by the high threshold
	IdleSlots     int64 // scheduling slots with nothing eligible

	ReadQueueWait  simtime.Time // summed queue residency of read-queue issues
	WriteQueueWait simtime.Time
}

// Controller schedules accesses onto one DRAM channel according to a
// Design. It is event-driven: Enqueue inserts work and the controller
// re-evaluates whenever the channel completes an access or new work
// arrives.
type Controller struct {
	eng   *event.Engine
	ch    *dram.Channel
	cfg   Config
	bliss *sched.BLISS

	readQ  []*Entry
	writeQ []*Entry
	// Overflow holds entries beyond the architected queue capacities in
	// arrival order. Real hardware exerts backpressure on the cache
	// frontend; modelling that as a spill queue keeps the occupancy
	// thresholds meaningful without entangling the frontend FSMs in flow
	// control. Spills are rare at the paper's queue sizes.
	overflowR []*Entry
	overflowW []*Entry

	draining    bool
	scheduleAll bool
	rrpc        []uint8 // 3-bit per-bank re-reference prediction counters
	busy        bool
	seq         uint64

	// pool is the free list of retired entries awaiting reuse.
	pool []*Entry

	stats Stats
}

// NewController builds a controller for one channel serving `apps`
// applications. The config must validate.
func NewController(eng *event.Engine, ch *dram.Channel, cfg Config, apps int) *Controller {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Controller{
		eng:   eng,
		ch:    ch,
		cfg:   cfg,
		bliss: sched.NewBLISS(apps),
		rrpc:  make([]uint8, ch.Banks()),
	}
}

// Design returns the controller's design.
func (c *Controller) Design() Design { return c.cfg.Design }

// Stats returns a snapshot of the controller counters.
func (c *Controller) Stats() Stats { return c.stats }

// ResetStats clears the controller counters (used after warm-up).
func (c *Controller) ResetStats() { c.stats = Stats{} }

// QueueDepths returns the current architected read/write queue depths,
// exposed for tests and debugging.
func (c *Controller) QueueDepths() (reads, writes int) {
	return len(c.readQ), len(c.writeQ)
}

// getEntry takes a record off the free list, or grows the pool.
func (c *Controller) getEntry() *Entry {
	if n := len(c.pool); n > 0 {
		e := c.pool[n-1]
		c.pool[n-1] = nil
		c.pool = c.pool[:n-1]
		return e
	}
	return new(Entry)
}

// putEntry clears a retired record (dropping its callback references)
// and returns it to the free list.
func (c *Controller) putEntry(e *Entry) {
	*e = Entry{}
	c.pool = append(c.pool, e)
}

// Enqueue routes one access into the controller's queues following the
// design's classification rule and triggers a scheduling evaluation.
func (c *Controller) Enqueue(acc dram.Access, reqType RequestType) {
	c.seq++
	e := c.getEntry()
	*e = Entry{Acc: acc, ReqType: reqType, enqueued: c.eng.Now(), seq: c.seq}
	toWrite := c.routesToWriteQueue(acc.Kind, reqType)
	if !toWrite && !acc.Kind.IsWrite() {
		e.priorityRead = reqType == ReadReq
	}
	if toWrite {
		if len(c.writeQ) < c.cfg.WriteQueueCap {
			c.writeQ = append(c.writeQ, e)
		} else {
			c.overflowW = append(c.overflowW, e)
		}
	} else {
		if len(c.readQ) < c.cfg.ReadQueueCap {
			c.readQ = append(c.readQ, e)
		} else {
			c.overflowR = append(c.overflowR, e)
		}
	}
	c.kick()
}

// routesToWriteQueue implements Fig. 3 (CD, ROD) and Fig. 6 (DCA).
func (c *Controller) routesToWriteQueue(kind dram.Kind, reqType RequestType) bool {
	switch c.cfg.Design {
	case ROD:
		// Request-oriented: everything follows its request, except the
		// write-tag of a read request which the paper's footnote sends
		// to the write queue for performance.
		if reqType == ReadReq {
			return kind.IsWrite()
		}
		return true
	default: // CD and DCA classify by access type.
		return kind.IsWrite()
	}
}

// kick evaluates the scheduler if the channel is idle.
func (c *Controller) kick() {
	if c.busy {
		return
	}
	now := c.eng.Now()
	e, fromRead, viaOFS := c.pick(now)
	if e == nil {
		c.stats.IdleSlots++
		return
	}
	c.issue(e, fromRead, viaOFS, now)
}

// pick chooses the next entry to service, returning whether it came from
// the read queue and whether it was an OFS low-priority-read issue.
func (c *Controller) pick(now simtime.Time) (e *Entry, fromRead, viaOFS bool) {
	c.updateDrainState()
	c.updateScheduleAll()

	if c.draining {
		if e := c.best(c.writeQ, now, nil); e != nil {
			return e, false, false
		}
		// The write queue emptied below the capacity threshold only via
		// completions; fall through to reads.
	}

	// Read queue: CD and ROD schedule every entry; DCA schedules PRs
	// unless ScheduleAll engaged.
	var filter func(*Entry) bool
	if c.cfg.Design == DCA && !c.scheduleAll {
		filter = func(e *Entry) bool { return e.priorityRead }
	}
	if e := c.best(c.readQ, now, filter); e != nil {
		return e, true, false
	}

	// DCA opportunistic flushing of LRs: only when no PR was eligible
	// and occupancy is below the ScheduleAll threshold (guaranteed here
	// because ScheduleAll would have widened the filter above).
	if c.cfg.Design == DCA && !c.scheduleAll {
		if e := c.best(c.readQ, now, c.ofsEligible); e != nil {
			return e, true, true
		}
	}

	// Passive write flush: no read work pending, write queue above the
	// low threshold.
	if len(c.writeQ) > c.writeLowCount() {
		if e := c.best(c.writeQ, now, nil); e != nil {
			return e, false, false
		}
	}
	return nil, false, false
}

// ofsEligible implements the OFS criteria (§IV-C): schedule an LR if its
// bank has no row conflict, or the bank's RRPC is below the flushing
// factor (the bank has not been touched by PRs recently).
func (c *Controller) ofsEligible(e *Entry) bool {
	if e.priorityRead {
		return false
	}
	if c.ch.Peek(e.Acc.Loc) != dram.RowConflict {
		return true
	}
	return c.rrpc[c.ch.GlobalBank(e.Acc.Loc)] < c.cfg.FlushFactor
}

// best scans q for the highest-priority entry passing filter:
// non-blacklisted applications first (BLISS), then row hits (FR-FCFS),
// then accesses matching the bus's current direction (amortising
// turnaround delays — this only matters for ROD, whose queues mix reads
// and writes), then oldest arrival.
func (c *Controller) best(q []*Entry, now simtime.Time, filter func(*Entry) bool) *Entry {
	lastDir := c.ch.LastDir()
	alg := c.cfg.Algorithm
	var pick *Entry
	var pickKey [4]int64
	for _, e := range q {
		if filter != nil && !filter(e) {
			continue
		}
		key := [4]int64{0, 0, 0, int64(e.seq)}
		if alg == AlgBLISS && c.bliss.Blacklisted(now, e.Acc.App) {
			key[0] = 1
		}
		if alg != AlgFCFS {
			if c.ch.Peek(e.Acc.Loc) != dram.RowHit {
				key[1] = 1
			}
			dir := dram.DirRead
			if e.Acc.Kind.IsWrite() {
				dir = dram.DirWrite
			}
			if lastDir != dram.DirNone && dir != lastDir {
				key[2] = 1
			}
		}
		if pick == nil || less(key, pickKey) {
			pick, pickKey = e, key
		}
	}
	return pick
}

func less(a, b [4]int64) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// issue services e on the channel and schedules the completion event.
func (c *Controller) issue(e *Entry, fromRead, viaOFS bool, now simtime.Time) {
	if fromRead {
		c.remove(&c.readQ, e)
		c.refill(&c.readQ, &c.overflowR, c.cfg.ReadQueueCap)
		c.stats.ReadQueueWait += now - e.enqueued
	} else {
		c.remove(&c.writeQ, e)
		c.refill(&c.writeQ, &c.overflowW, c.cfg.WriteQueueCap)
		c.stats.WriteQueueWait += now - e.enqueued
	}

	if e.Acc.Kind.IsWrite() {
		c.stats.WritesIssued++
	} else if e.priorityRead {
		c.stats.PRIssued++
		c.touchRRPC(c.ch.GlobalBank(e.Acc.Loc))
	} else {
		c.stats.LRIssued++
		if viaOFS {
			c.stats.OFSIssues++
		}
	}

	done := c.ch.Issue(&e.Acc, now)
	c.bliss.OnServed(now, e.Acc.App)
	c.busy = true
	c.eng.Schedule(done, c, event.Payload{Ptr: e})
}

// OnEvent implements event.Handler: it fires at an access's data
// completion time, retires the entry, and re-evaluates the scheduler.
func (c *Controller) OnEvent(now simtime.Time, p event.Payload) {
	e := p.Ptr.(*Entry)
	cb := e.Acc.Done
	c.putEntry(e)
	c.busy = false
	cb.Invoke(now)
	c.kick()
}

// touchRRPC applies the RRIP-style update: every bank counter decays by
// one (floor zero) and the bank just accessed by a PR becomes most
// recent (7).
func (c *Controller) touchRRPC(bank int) {
	for i := range c.rrpc {
		if c.rrpc[i] > 0 {
			c.rrpc[i]--
		}
	}
	c.rrpc[bank] = 7
}

// RRPC exposes a bank's counter for tests.
func (c *Controller) RRPC(bank int) uint8 { return c.rrpc[bank] }

func (c *Controller) updateDrainState() {
	hi := int(float64(c.cfg.WriteQueueCap)*c.cfg.WriteFlushHigh + 0.5)
	if !c.draining && len(c.writeQ) >= hi {
		c.draining = true
		c.stats.ForcedFlushes++
	}
	if c.draining && len(c.writeQ) <= c.writeLowCount() {
		c.draining = false
	}
}

func (c *Controller) writeLowCount() int {
	return int(float64(c.cfg.WriteQueueCap)*c.cfg.WriteFlushLow + 0.5)
}

func (c *Controller) updateScheduleAll() {
	if c.cfg.Design != DCA {
		return
	}
	occ := float64(len(c.readQ)) / float64(c.cfg.ReadQueueCap)
	if !c.scheduleAll && occ > c.cfg.ScheduleAllHigh {
		c.scheduleAll = true
		c.stats.ScheduleAllOn++
	} else if c.scheduleAll && occ < c.cfg.ScheduleAllLow {
		c.scheduleAll = false
	}
}

func (c *Controller) remove(q *[]*Entry, e *Entry) {
	s := *q
	for i, x := range s {
		if x == e {
			copy(s[i:], s[i+1:])
			s[len(s)-1] = nil
			*q = s[:len(s)-1]
			return
		}
	}
	panic("core: entry not found in queue")
}

func (c *Controller) refill(q, overflow *[]*Entry, cap int) {
	for len(*q) < cap && len(*overflow) > 0 {
		*q = append(*q, (*overflow)[0])
		(*overflow)[0] = nil
		*overflow = (*overflow)[1:]
	}
}
