package core

import (
	"testing"
	"testing/quick"

	"dcasim/internal/addrmap"
	"dcasim/internal/dram"
	"dcasim/internal/event"
	"dcasim/internal/rng"
	"dcasim/internal/simtime"
)

// TestControllerConservation is a property test: under random traffic of
// every access kind and request type, every design must (a) never lose a
// read, (b) complete accesses in nondecreasing time, and (c) keep the
// write queue at or below its drain low-threshold once the engine goes
// idle with no reads pending.
func TestControllerConservation(t *testing.T) {
	prop := func(seed uint64, designPick uint8) bool {
		design := []Design{CD, ROD, DCA}[int(designPick)%3]
		eng := &event.Engine{}
		ch := dram.NewChannel(dram.StackedDRAM(), testGeom())
		cfg := DefaultConfig(design)
		cfg.ReadQueueCap = 8
		cfg.WriteQueueCap = 8
		ctrl := NewController(eng, ch, cfg, 4)

		r := rng.New(seed)
		kinds := []dram.Kind{dram.ReadTag, dram.ReadData, dram.WriteTag, dram.WriteData}
		reqs := []RequestType{ReadReq, WritebackReq, RefillReq}

		readsEnqueued, readsDone := 0, 0
		var lastDone simtime.Time
		monotone := true
		const n = 200
		for i := 0; i < n; i++ {
			kind := kinds[r.Intn(len(kinds))]
			req := reqs[r.Intn(len(reqs))]
			isRead := !kind.IsWrite()
			toWriteQ := ctrl.route(kind, req)
			if isRead && !toWriteQ {
				readsEnqueued++
			}
			a := dram.Access{
				Kind:  kind,
				Loc:   addrmap.Loc{Bank: r.Intn(8), Row: int64(r.Intn(64)), Col: r.Intn(64)},
				Bytes: 64,
				App:   r.Intn(4),
			}
			if isRead && !toWriteQ {
				a.Done = event.Func(func(now simtime.Time) {
					readsDone++
					if now < lastDone {
						monotone = false
					}
					lastDone = now
				})
			}
			ctrl.Enqueue(a, req)
			// Let the engine make progress between batches.
			if i%16 == 15 {
				eng.Run()
			}
		}
		eng.Run()

		if !monotone {
			return false
		}
		// All read-queue reads complete: nothing that can starve them
		// remains once traffic stops (ScheduleAll/OFS or plain priority
		// must eventually drain LRs because reads hold the queue).
		if design != DCA && readsDone != readsEnqueued {
			return false
		}
		if design == DCA && readsDone < readsEnqueued-int(cfg.ReadQueueCap) {
			// DCA may legitimately hold a few LRs when idle; they must
			// at least fit in the architected queue (no unbounded
			// accumulation).
			return false
		}
		rq, wq := ctrl.QueueDepths()
		if rq > cfg.ReadQueueCap || wq > cfg.WriteQueueCap {
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
