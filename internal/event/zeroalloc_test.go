package event

import (
	"testing"

	"dcasim/internal/simtime"
)

// countHandler records fire order and payloads.
type countHandler struct {
	fired []uint64
}

func (h *countHandler) OnEvent(_ simtime.Time, p Payload) {
	h.fired = append(h.fired, p.U64)
}

// sinkHandler does nothing; used for allocation measurements.
type sinkHandler struct{}

func (*sinkHandler) OnEvent(simtime.Time, Payload) {}

// TestZeroAllocScheduling is the kernel's allocation regression test:
// once the pool, free list, and heap have reached their high-water
// marks, a schedule/fire cycle must not allocate at all.
func TestZeroAllocScheduling(t *testing.T) {
	var e Engine
	h := &sinkHandler{}

	// Warm to the high-water mark used by the measured loop.
	const burst = 64
	for i := 0; i < 4; i++ {
		for j := 0; j < burst; j++ {
			e.ScheduleAfter(simtime.Time(j), h, Payload{U64: uint64(j)})
		}
		e.Run()
	}

	avg := testing.AllocsPerRun(100, func() {
		for j := 0; j < burst; j++ {
			e.ScheduleAfter(simtime.Time(j), h, Payload{U64: uint64(j), I64: -1})
		}
		e.Run()
	})
	if avg != 0 {
		t.Fatalf("steady-state scheduling allocates %.2f per %d-event burst, want 0", avg, burst)
	}
}

// TestZeroAllocPrebuiltFunc checks the closure convenience API is also
// allocation-free when the func value is built once and reused (the
// pattern bench_test.go's BenchmarkEventEngine measures).
func TestZeroAllocPrebuiltFunc(t *testing.T) {
	var e Engine
	fn := func() {}
	for i := 0; i < 128; i++ {
		e.After(simtime.Time(i%7), fn)
	}
	e.Run()

	avg := testing.AllocsPerRun(100, func() {
		for i := 0; i < 64; i++ {
			e.After(simtime.Time(i%7), fn)
		}
		e.Run()
	})
	if avg != 0 {
		t.Fatalf("prebuilt-func scheduling allocates %.2f per burst, want 0", avg)
	}
}

// TestSameTimeHandlerOrder asserts the determinism contract for the
// handler API: events scheduled for the same timestamp fire in schedule
// order, including events scheduled from inside a running event and
// records recycled through the free list.
func TestSameTimeHandlerOrder(t *testing.T) {
	var e Engine
	h := &countHandler{}
	for round := 0; round < 3; round++ { // recycle pool records each round
		h.fired = h.fired[:0]
		for i := 0; i < 100; i++ {
			e.Schedule(5, h, Payload{U64: uint64(i)})
		}
		// An event scheduled *while running* at the same timestamp must
		// fire after everything already queued for that timestamp.
		e.CallAt(5, Func(func(now simtime.Time) {
			e.Schedule(now, h, Payload{U64: 1000})
		}))
		e.Run()
		if len(h.fired) != 101 {
			t.Fatalf("round %d: fired %d events, want 101", round, len(h.fired))
		}
		for i := 0; i < 100; i++ {
			if h.fired[i] != uint64(i) {
				t.Fatalf("round %d: slot %d fired payload %d, want %d", round, i, h.fired[i], i)
			}
		}
		if h.fired[100] != 1000 {
			t.Fatalf("round %d: nested same-time event fired out of order: %v", round, h.fired[100])
		}
	}
}

// TestCallbackSemantics pins the Callback helper contract: zero
// callbacks are no-ops and are dropped (not queued) by CallAt.
func TestCallbackSemantics(t *testing.T) {
	var e Engine
	var zero Callback
	if zero.Valid() {
		t.Error("zero Callback reports Valid")
	}
	zero.Invoke(0) // must not panic

	e.CallAt(10, Callback{})
	if e.Pending() != 0 {
		t.Errorf("zero callback was queued: %d pending", e.Pending())
	}

	var got simtime.Time
	cb := Func(func(now simtime.Time) { got = now })
	if !cb.Valid() {
		t.Error("Func callback reports invalid")
	}
	e.CallAfter(7, cb)
	e.Run()
	if got != 7 {
		t.Errorf("callback fired at %v, want 7", got)
	}
}

// TestPoolRecycling checks the free list actually bounds the pool: the
// pool's high-water mark is the maximum number of simultaneously
// pending events, not the total scheduled.
func TestPoolRecycling(t *testing.T) {
	var e Engine
	h := &sinkHandler{}
	for i := 0; i < 10_000; i++ {
		e.Schedule(e.Now(), h, Payload{})
		e.Run()
	}
	if len(e.pool) > 4 {
		t.Errorf("pool grew to %d records for 1 pending event max", len(e.pool))
	}
	if e.Steps() != 10_000 {
		t.Errorf("Steps = %d, want 10000", e.Steps())
	}
}
