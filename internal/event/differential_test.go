package event

import (
	"math/rand"
	"testing"

	"dcasim/internal/simtime"
)

// engineAPI is the surface the differential and fuzz harnesses drive on
// both the production Engine (timing wheel) and the refEngine (retired
// 4-ary heap oracle).
type engineAPI interface {
	Now() simtime.Time
	Steps() uint64
	Pending() int
	PeekTime() (simtime.Time, bool)
	Schedule(t simtime.Time, h Handler, p Payload)
	ScheduleAfter(d simtime.Time, h Handler, p Payload)
	Step() bool
	RunUntil(t simtime.Time)
}

var (
	_ engineAPI = (*Engine)(nil)
	_ engineAPI = (*refEngine)(nil)
)

// fired is one observed dispatch.
type fired struct {
	at  simtime.Time
	tag uint64
}

// splitmix64 is the deterministic bit mixer the chaos handler uses to
// derive follow-up work from its payload, so both engines replay the
// exact same nested-scheduling cascade.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// chaosDeltas is the schedule-delta menu: the Table II DRAM constants
// (in ps), the 4 GHz CPU cycle, the off-chip latency, exact
// wheel-bucket and wheel-level boundaries, zero (same-time), and
// far-future values that overflow into the spill.
var chaosDeltas = []simtime.Time{
	0, 1, 250, 1670, 3330, 5000, 7500, 8000, 15000, 30000, 50000,
	255, 256, 257, 65535, 65536, 65537, // level-0 bucket and level-0→1 boundaries
	1 << 24, 1<<24 + 1, 1 << 32, 1<<32 - 1, // level-1→2, level-2→3 boundaries
	1 << 40, 1<<40 + 7, 1 << 45, // beyond the outermost level: spill
}

// chaosHandler records every dispatch and deterministically schedules
// follow-up events derived from its payload, exercising the
// schedule-while-firing paths (same-time bursts included) on both
// engines identically.
type chaosHandler struct {
	e   engineAPI
	log []fired
}

func (h *chaosHandler) OnEvent(now simtime.Time, p Payload) {
	h.log = append(h.log, fired{at: now, tag: p.U64})
	x := splitmix64(p.U64)
	switch x % 8 {
	case 0: // one follow-up at a menu delta
		d := chaosDeltas[(x>>8)%uint64(len(chaosDeltas))]
		h.e.Schedule(now+d, h, Payload{U64: x})
	case 1: // same-time burst scheduled from inside a running event
		for i := uint64(0); i < 3; i++ {
			h.e.Schedule(now, h, Payload{U64: x + i})
		}
	case 2: // a pair straddling a bucket boundary
		h.e.ScheduleAfter(simtime.Time(x%512), h, Payload{U64: x ^ 1})
	}
}

// runScript drives e through a deterministic op script derived from
// seed and returns the full dispatch log.
func runScript(e engineAPI, h *chaosHandler, seed int64, t *testing.T) []fired {
	rnd := rand.New(rand.NewSource(seed))
	h.e = e
	for op := 0; op < 2000; op++ {
		switch rnd.Intn(10) {
		case 0, 1, 2, 3: // schedule at a menu delta
			d := chaosDeltas[rnd.Intn(len(chaosDeltas))]
			e.Schedule(e.Now()+d, h, Payload{U64: uint64(op)})
		case 4: // schedule at a uniform delta
			e.ScheduleAfter(simtime.Time(rnd.Int63n(200_000)), h, Payload{U64: uint64(op) | 1<<32})
		case 5: // same-time burst
			for i := 0; i < rnd.Intn(6)+1; i++ {
				e.Schedule(e.Now(), h, Payload{U64: uint64(op)<<8 | uint64(i) | 1<<33})
			}
		case 6: // a few steps
			for i := rnd.Intn(4); i >= 0; i-- {
				e.Step()
			}
		case 7: // bounded run, sometimes a huge clock jump
			d := simtime.Time(rnd.Int63n(100_000))
			if rnd.Intn(10) == 0 {
				d = simtime.Time(rnd.Int63n(1 << 42))
			}
			e.RunUntil(e.Now() + d)
		case 8: // drain a chunk
			for i := 0; i < 50 && e.Step(); i++ {
			}
		case 9: // schedule far future then peek
			e.ScheduleAfter(simtime.Time(rnd.Int63n(1<<43)), h, Payload{U64: uint64(op) | 1<<34})
			if _, ok := e.PeekTime(); !ok {
				t.Fatalf("seed %d op %d: PeekTime empty right after scheduling", seed, op)
			}
		}
	}
	// Drain everything, capping runaway self-scheduling cascades.
	for i := 0; i < 200_000 && e.Step(); i++ {
	}
	return h.log
}

// TestDifferentialVsHeapOracle proves pop-order identity: the timing
// wheel dispatches the exact same (time, payload) sequence as the
// retired 4-ary heap for randomized schedules covering same-time
// bursts, nested scheduling, bucket boundaries, huge RunUntil jumps,
// and far-future spill traffic.
func TestDifferentialVsHeapOracle(t *testing.T) {
	for seed := int64(1); seed <= 25; seed++ {
		var wheelEng Engine
		refEng := &refEngine{}
		wh := &chaosHandler{}
		rh := &chaosHandler{}
		wlog := runScript(&wheelEng, wh, seed, t)
		rlog := runScript(refEng, rh, seed, t)
		if len(wlog) != len(rlog) {
			t.Fatalf("seed %d: wheel fired %d events, heap oracle %d", seed, len(wlog), len(rlog))
		}
		for i := range wlog {
			if wlog[i] != rlog[i] {
				t.Fatalf("seed %d: dispatch %d diverged: wheel %+v, heap oracle %+v", seed, i, wlog[i], rlog[i])
			}
		}
		if wheelEng.Now() != refEng.Now() || wheelEng.Steps() != refEng.Steps() || wheelEng.Pending() != refEng.Pending() {
			t.Fatalf("seed %d: final state diverged: wheel (now %v, steps %d, pending %d) vs heap (now %v, steps %d, pending %d)",
				seed, wheelEng.Now(), wheelEng.Steps(), wheelEng.Pending(), refEng.Now(), refEng.Steps(), refEng.Pending())
		}
	}
}

// TestQueueDifferential drives the two queue implementations directly
// through the shared interface with identical pools: interleaved pushes
// and pops (including heavy same-timestamp collisions) must yield
// identical index sequences, and peek must always agree.
func TestQueueDifferential(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		rnd := rand.New(rand.NewSource(seed))
		var pool []node
		var seq uint64
		queues := []queue{&wheel{}, &refHeap{}}
		var popped [2][]int32
		for op := 0; op < 5000; op++ {
			if rnd.Intn(3) > 0 || queues[0].size() == 0 {
				seq++
				at := simtime.Time(rnd.Int63n(50)) * 256 * simtime.Time(rnd.Intn(4)+1)
				pool = append(pool, node{at: at, seq: seq})
				idx := int32(len(pool) - 1)
				for _, q := range queues {
					q.push(pool, idx)
				}
			} else {
				for qi, q := range queues {
					idx, ok := q.pop(pool)
					if !ok {
						t.Fatalf("seed %d op %d: queue %d empty at size %d", seed, op, qi, q.size())
					}
					popped[qi] = append(popped[qi], idx)
				}
			}
			wt, wok := queues[0].peek(pool)
			ht, hok := queues[1].peek(pool)
			if wt != ht || wok != hok {
				t.Fatalf("seed %d op %d: peek diverged: wheel (%v,%v) heap (%v,%v)", seed, op, wt, wok, ht, hok)
			}
			if queues[0].size() != queues[1].size() {
				t.Fatalf("seed %d op %d: size diverged: %d vs %d", seed, op, queues[0].size(), queues[1].size())
			}
		}
		for queues[0].size() > 0 {
			for qi, q := range queues {
				idx, _ := q.pop(pool)
				popped[qi] = append(popped[qi], idx)
			}
		}
		for i := range popped[0] {
			if popped[0][i] != popped[1][i] {
				a, b := &pool[popped[0][i]], &pool[popped[1][i]]
				t.Fatalf("seed %d: pop %d diverged: wheel idx %d (at %v seq %d), heap idx %d (at %v seq %d)",
					seed, i, popped[0][i], a.at, a.seq, popped[1][i], b.at, b.seq)
			}
		}
	}
}
