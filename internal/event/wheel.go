package event

import (
	"math/bits"

	"dcasim/internal/simtime"
)

// The wheel is a hierarchical timing wheel (Varghese & Lauck '87; the
// hierarchical refinement of Brown's calendar queue). Time is divided
// into power-of-two buckets at wheelLevels granularities: level l
// buckets span 2^(wheelShift0 + l*wheelBits) ps, and each level holds
// wheelBuckets of them, so level l covers the next
// 2^(wheelShift0 + (l+1)*wheelBits) ps beyond the drain horizon.
//
// With wheelShift0 = 8 and wheelBits = 8 the levels cover, relative to
// the horizon:
//
//	level 0:  256 ps buckets ≈ one 4 GHz CPU cycle, range ≈ 65.5 ns —
//	          every Table II DRAM constant (tRCD/tCAS/tRP 8 ns,
//	          tRAS 30 ns, tWR 15 ns, turnarounds, bursts) and the
//	          off-chip latency (50 ns) schedule directly here in O(1)
//	level 1:  ≈ 65.5 ns buckets, range ≈ 16.8 µs
//	level 2:  ≈ 16.8 µs buckets, range ≈ 4.3 ms
//	level 3:  ≈ 4.3 ms buckets, range ≈ 1.1 s
//
// Deltas beyond level 3 — which no simulated component produces — park
// in a small (time, seq)-sorted spill slice and re-enter the wheel when
// the horizon approaches them.
//
// Buckets are intrusive FIFO lists threaded through the record pool's
// next links (head/tail index pairs per bucket), so filing, cascading,
// and draining never allocate: a record moves between buckets by
// relinking, and the only growable storage — the firing batch and the
// spill — is a pair of reused int32 slices.
//
// # Determinism
//
// Pop order must be the strict total order (time, seq) — bit-identical
// to the retired 4-ary heap. Buckets are FIFO and a bucket can hold
// events of different timestamps (and, after a cascade interleaves with
// direct schedules, even locally out of seq order), so ordering is
// enforced at one place: draining. The next level-0 bucket to expire is
// insertion-sorted into cur, the firing batch, which is kept sorted by
// (time, seq); events scheduled below the drain horizon while the batch
// fires are ordered-inserted into it. Since bucket FIFO order is
// nearly sorted already (seq grows monotonically), the insertion sort
// is near-linear. Everything earlier than the horizon is in cur or has
// fired; everything at or beyond it is in a bucket whose start is ≥ the
// horizon, or in the spill — so the cur head is always the global
// minimum. Cascades relocate whole buckets to finer levels without
// firing anything, and the drain loop always relocates the
// smallest-start bucket first (ties go to the coarser level, and the
// spill beats both), so no bucket is ever drained while an earlier or
// equal-time event hides at a coarser level.
const (
	wheelLevels  = 4
	wheelBits    = 8 // log2 buckets per level
	wheelBuckets = 1 << wheelBits
	bucketMask   = wheelBuckets - 1
	bucketWords  = wheelBuckets / 64
	wheelShift0  = 8 // level-0 bucket width 2^8 ps = 256 ps
)

// levelShift returns the bucket-width shift of level l.
func levelShift(l int) uint { return wheelShift0 + uint(l)*wheelBits }

// wheelLevel is one ring of buckets. A bucket is the intrusive FIFO
// list pool[head[b]] → … → pool[tail[b]] linked through node.next; occ
// is the occupancy bitmap — the source of truth for emptiness (head and
// tail are stale while a bucket's bit is clear) — so the drain loop
// finds the next expiring bucket with a handful of word scans instead
// of walking the ring.
type wheelLevel struct {
	count int
	occ   [bucketWords]uint64
	head  [wheelBuckets]int32
	tail  [wheelBuckets]int32
}

// firstFrom returns the masked index of the first occupied bucket at
// circular distance >= 0 from the masked position pos, or -1 if the
// level is empty. Because every live bucket lies within one window of
// the drain cursor, circular order from the cursor is absolute order.
//
//dcalint:noalloc
func (lv *wheelLevel) firstFrom(pos int) int {
	w0 := pos >> 6
	if x := lv.occ[w0] >> uint(pos&63); x != 0 {
		return pos + bits.TrailingZeros64(x)
	}
	for i := 1; i <= bucketWords; i++ {
		w := (w0 + i) & (bucketWords - 1)
		if x := lv.occ[w]; x != 0 {
			return w<<6 + bits.TrailingZeros64(x)
		}
	}
	return -1
}

// wheel is the production queue implementation. The zero value is
// ready to use. All ordering comparisons read (at, seq) from the
// caller-owned record pool, so the structure itself stores nothing but
// int32 indices.
type wheel struct {
	// horizon is the drain frontier: every event with at < horizon has
	// been moved into cur (or already fired); every event with
	// at >= horizon is in a level bucket or the spill. Bucket windows
	// are positioned relative to horizon >> levelShift(l).
	horizon simtime.Time

	// cur is the firing batch, sorted ascending by (at, seq);
	// cur[:curHead] has already popped. Late arrivals below the horizon
	// ordered-insert here.
	cur     []int32
	curHead int

	// spill parks events beyond the outermost level, sorted ascending
	// by (at, seq). The characterization test pins that real workloads
	// essentially never reach it.
	spill []int32

	count  int // total live events (cur tail + levels + spill)
	levels [wheelLevels]wheelLevel
}

// size implements queue.
func (w *wheel) size() int { return w.count }

// push files record idx (already written into pool) into the batch, a
// bucket, or the spill.
//
//dcalint:noalloc
func (w *wheel) push(pool []node, idx int32) {
	at := pool[idx].at
	if w.count == 0 {
		// Empty queue: snap the horizon forward to the event's own
		// level-0 bucket so a long RunUntil jump doesn't force the
		// first new event through a chain of cascades.
		if snap := simtime.Time(int64(at) &^ (1<<wheelShift0 - 1)); snap > w.horizon {
			w.horizon = snap
		}
	}
	w.count++
	if at < w.horizon {
		w.insertCur(pool, idx)
		return
	}
	w.place(pool, idx)
}

// place files idx into the finest level whose window reaches its
// timestamp, or the spill when none does.
//
//dcalint:noalloc
func (w *wheel) place(pool []node, idx int32) {
	at := int64(pool[idx].at)
	h := int64(w.horizon)
	for l := 0; l < wheelLevels; l++ {
		s := levelShift(l)
		slot := at >> s
		if slot-(h>>s) < wheelBuckets {
			lv := &w.levels[l]
			b := int(slot & bucketMask)
			word, bit := b>>6, uint64(1)<<uint(b&63)
			if lv.occ[word]&bit == 0 {
				lv.occ[word] |= bit
				lv.head[b] = idx
			} else {
				pool[lv.tail[b]].next = idx
			}
			lv.tail[b] = idx
			lv.count++
			return
		}
	}
	w.insertSpill(pool, idx)
}

// insertCur ordered-inserts idx into the firing batch. New arrivals
// carry the largest seq so far, so the backwards walk from the tail
// stops at the first event with an earlier-or-equal timestamp —
// usually immediately.
//
//dcalint:noalloc
func (w *wheel) insertCur(pool []node, idx int32) {
	w.cur = append(w.cur, idx)
	i := len(w.cur) - 1
	n := &pool[idx]
	for i > w.curHead {
		p := &pool[w.cur[i-1]]
		if p.at < n.at || (p.at == n.at && p.seq < n.seq) {
			break
		}
		w.cur[i] = w.cur[i-1]
		i--
	}
	w.cur[i] = idx
}

// insertSpill ordered-inserts idx into the far-future spill
// (binary search + shift; the spill is expected to stay tiny).
//
//dcalint:noalloc
func (w *wheel) insertSpill(pool []node, idx int32) {
	n := &pool[idx]
	lo, hi := 0, len(w.spill)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		m := &pool[w.spill[mid]]
		if m.at < n.at || (m.at == n.at && m.seq < n.seq) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	w.spill = append(w.spill, 0)
	copy(w.spill[lo+1:], w.spill[lo:])
	w.spill[lo] = idx
}

// peek implements queue: the earliest pending (time, seq) event's
// timestamp, without popping it.
//
//dcalint:noalloc
func (w *wheel) peek(pool []node) (simtime.Time, bool) {
	if !w.ensureCur(pool) {
		return 0, false
	}
	return pool[w.cur[w.curHead]].at, true
}

// pop implements queue: remove and return the earliest (time, seq)
// record index.
//
//dcalint:noalloc
func (w *wheel) pop(pool []node) (int32, bool) {
	if !w.ensureCur(pool) {
		return 0, false
	}
	idx := w.cur[w.curHead]
	w.curHead++
	w.count--
	return idx, true
}

// ensureCur makes the firing batch non-empty if any event is pending:
// it rotates the wheel — cascading coarse buckets inward and refilling
// from the spill — until the globally earliest bucket is at level 0,
// then drains that bucket into cur in (time, seq) order.
//
//dcalint:noalloc
func (w *wheel) ensureCur(pool []node) bool {
	if w.curHead < len(w.cur) {
		return true
	}
	if len(w.cur) > 0 {
		w.cur = w.cur[:0]
		w.curHead = 0
	}
	if w.count == 0 {
		return false
	}
	for {
		// Find the earliest candidate across the levels: the first
		// occupied bucket of each level, compared by bucket start time.
		// On ties the coarser level wins — it must cascade before the
		// finer bucket may drain, since its events can be earlier than
		// (or tie with) anything already filed finer.
		h := int64(w.horizon)
		bestLevel := -1
		var bestAbs, bestStart int64
		for l := 0; l < wheelLevels; l++ {
			lv := &w.levels[l]
			if lv.count == 0 {
				continue
			}
			s := levelShift(l)
			d := h >> s
			m := lv.firstFrom(int(d & bucketMask))
			abs := d + ((int64(m) - (d & bucketMask)) & bucketMask)
			if start := abs << s; bestLevel < 0 || start <= bestStart {
				bestLevel, bestAbs, bestStart = l, abs, start
			}
		}
		// The spill head outranks any bucket whose span would cover or
		// follow it: compare at level-0 bucket granularity, spill first
		// on ties, so spilled events re-enter the wheel before the
		// region containing them drains.
		if len(w.spill) > 0 {
			t := int64(pool[w.spill[0]].at)
			if key := t &^ (1<<wheelShift0 - 1); bestLevel < 0 || key <= bestStart {
				w.refillSpill(pool)
				continue
			}
		}
		// Detach the chosen bucket's whole FIFO list.
		lv := &w.levels[bestLevel]
		b := int(bestAbs & bucketMask)
		head, tail := lv.head[b], lv.tail[b]
		lv.occ[b>>6] &^= 1 << uint(b&63)
		if bestLevel == 0 {
			// Drain: insertion-sort the expiring bucket into cur. The
			// bucket's FIFO order is already seq-sorted except where a
			// cascade interleaved with direct schedules, so the sort is
			// near-linear.
			w.horizon = simtime.Time((bestAbs + 1) << wheelShift0)
			for idx := head; ; {
				next := pool[idx].next
				w.insertCur(pool, idx)
				lv.count--
				if idx == tail {
					break
				}
				idx = next
			}
			return true
		}
		// Cascade: advance the horizon to the bucket's start and refile
		// its records one level finer (or finer still) by relinking.
		// Nothing fires, so exact ordering is untouched; each record
		// cascades at most wheelLevels-1 times over its lifetime.
		if start := simtime.Time(bestStart); start > w.horizon {
			w.horizon = start
		}
		for idx := head; ; {
			next := pool[idx].next
			lv.count--
			w.place(pool, idx)
			if idx == tail {
				break
			}
			idx = next
		}
	}
}

// refillSpill advances the horizon to the spill head and moves the
// prefix of spilled events that now fits the outermost level back into
// the wheel.
//
//dcalint:noalloc
func (w *wheel) refillSpill(pool []node) {
	w.horizon = pool[w.spill[0]].at
	h := int64(w.horizon)
	s := levelShift(wheelLevels - 1)
	k := 0
	for k < len(w.spill) {
		at := int64(pool[w.spill[k]].at)
		if (at>>s)-(h>>s) >= wheelBuckets {
			break
		}
		k++
	}
	for _, idx := range w.spill[:k] {
		w.place(pool, idx)
	}
	n := copy(w.spill, w.spill[k:])
	w.spill = w.spill[:n]
}
