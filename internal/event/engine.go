// Package event implements the discrete-event simulation kernel.
//
// The kernel is a hierarchical timing wheel (Varghese & Lauck '87) over
// a pool of event records, specialised for the access pattern of a DRAM
// timing simulation: almost every scheduled delta is one of a handful
// of fixed timing constants (tCAS, tRCD, tRP, tWR, the CPU cycle…), so
// nearly all events land in the wheel's innermost level and schedule
// and pop in O(1) amortized — versus the O(log n) sift loops of the
// retired 4-ary heap, which survives only as a test oracle (see
// wheel.go for the structure and the determinism argument, and
// oracle_test.go for the differential proof).
//
// Events scheduled for the same timestamp fire in the order they were
// scheduled — pop order is the strict total order (time, sequence) —
// which makes whole-simulation behaviour exactly reproducible run to
// run. The kernel is single-threaded by design: determinism of an
// architectural simulation is worth far more than intra-run
// parallelism, and the harness instead parallelises across independent
// simulations.
//
// Scheduling is allocation-free in steady state. Instead of a fresh
// closure per event, an event record pairs a Handler (typically the
// simulated component itself, a long-lived pointer) with a small inline
// Payload the handler uses to recover the event's context. Records live
// in a pool indexed by the wheel and are recycled through a free list,
// and every wheel bucket, the firing batch, and the far-future spill
// are reused int32 slices — once they reach their high-water marks the
// kernel performs no per-event heap allocation at all.
package event

import (
	"fmt"

	"dcasim/internal/simtime"
)

// Handler receives fired events. Implementations are typically the
// long-lived simulated components themselves; per-event context travels
// in the Payload, so scheduling never needs to close over variables.
type Handler interface {
	OnEvent(now simtime.Time, p Payload)
}

// Payload is the inline per-event argument block. Handlers that service
// several event kinds conventionally use a few low bits of U64 as the
// discriminator. Ptr must hold a pointer-shaped value (a pointer, map,
// channel, or func) — boxing a non-pointer value into it would allocate,
// defeating the kernel's zero-allocation contract.
type Payload struct {
	Time simtime.Time
	I64  int64
	U64  uint64
	Ptr  any
}

// Callback bundles a Handler with its Payload so components can hand a
// continuation across module boundaries without allocating a closure.
// The zero value is a no-op.
type Callback struct {
	H Handler
	P Payload
}

// Valid reports whether the callback has a handler attached.
func (cb Callback) Valid() bool { return cb.H != nil }

// Invoke fires the callback immediately (outside the event queue). A
// zero callback is a no-op.
func (cb Callback) Invoke(now simtime.Time) {
	if cb.H != nil {
		cb.H.OnEvent(now, cb.P)
	}
}

// funcHandler adapts a plain function to the Handler interface; the
// function travels in Payload.Ptr, so the adapter itself is stateless
// and boxing it allocates nothing.
type funcHandler struct{}

func (funcHandler) OnEvent(now simtime.Time, p Payload) {
	p.Ptr.(func(simtime.Time))(now)
}

// Func wraps fn into a Callback. The wrapper is allocation-free, but fn
// itself is usually a closure the caller allocated — use Func in tests
// and setup paths, and a real Handler on hot paths.
func Func(fn func(now simtime.Time)) Callback {
	return Callback{H: funcHandler{}, P: Payload{Ptr: fn}}
}

// thunkHandler adapts an argument-less function for At/After.
type thunkHandler struct{}

func (thunkHandler) OnEvent(_ simtime.Time, p Payload) { p.Ptr.(func())() }

// node is one pooled event record. next threads the record into its
// wheel bucket's intrusive FIFO list (meaningful only while the record
// is linked into a bucket; see wheel.go).
type node struct {
	at   simtime.Time
	seq  uint64
	next int32
	h    Handler
	p    Payload
}

// queue is the scheduling structure contract shared by the production
// timing wheel and the retired 4-ary heap, which lives on as a
// test-only reference implementation (oracle_test.go): push/pop in
// strict (time, sequence) order over records held in an external pool.
// The Engine calls the wheel concretely — the interface exists so the
// differential and fuzz tests can drive both implementations through
// one harness, the same retired-oracle pattern the controller rework
// used for its linear-scan scheduler.
type queue interface {
	push(pool []node, idx int32)
	pop(pool []node) (int32, bool)
	peek(pool []node) (simtime.Time, bool)
	size() int
}

var _ queue = (*wheel)(nil)

// Engine is a discrete-event scheduler. The zero value is ready to use.
type Engine struct {
	now   simtime.Time
	seq   uint64
	steps uint64

	// hook, when set, observes every Schedule (test instrumentation).
	hook func(now, at simtime.Time)

	// pool holds event records; wh orders indices into it by
	// (time, sequence); free recycles retired indices. int32 indices
	// halve the wheel's cache footprint versus pointers and are ample:
	// two billion simultaneously pending events would exhaust memory
	// long before the index space.
	pool []node
	free []int32
	wh   wheel
}

// Now returns the current simulated time.
func (e *Engine) Now() simtime.Time { return e.now }

// Steps returns the number of events executed so far.
func (e *Engine) Steps() uint64 { return e.steps }

// Pending returns the number of events waiting in the queue.
func (e *Engine) Pending() int { return e.wh.size() }

// PeekTime returns the timestamp of the earliest pending event, or
// false if the queue is empty. It never fires events or advances the
// clock (it may rotate the wheel internally, which is unobservable).
//
//dcalint:noalloc
func (e *Engine) PeekTime() (simtime.Time, bool) { return e.wh.peek(e.pool) }

// SetScheduleHook installs fn to observe (now, t) at every Schedule
// call, or removes the hook when fn is nil. This is test
// instrumentation (e.g. the event-delta characterization test); the
// hook must not schedule events itself.
func (e *Engine) SetScheduleHook(fn func(now, at simtime.Time)) { e.hook = fn }

// Schedule queues h to fire at absolute time t with payload p.
// Scheduling in the past is a programming error and panics: silently
// reordering time would corrupt every downstream model.
//
//dcalint:noalloc
func (e *Engine) Schedule(t simtime.Time, h Handler, p Payload) {
	if t < e.now {
		panic(fmt.Sprintf("event: schedule at %v before now %v", t, e.now))
	}
	if e.hook != nil {
		e.hook(e.now, t)
	}
	e.seq++
	idx := e.alloc()
	e.pool[idx] = node{at: t, seq: e.seq, h: h, p: p}
	e.wh.push(e.pool, idx)
}

// ScheduleAfter queues h to fire d after the current time.
//
//dcalint:noalloc
func (e *Engine) ScheduleAfter(d simtime.Time, h Handler, p Payload) {
	e.Schedule(e.now+d, h, p)
}

// CallAt queues cb to fire at absolute time t. A zero callback is
// dropped rather than queued.
//
//dcalint:noalloc
func (e *Engine) CallAt(t simtime.Time, cb Callback) {
	if cb.H == nil {
		return
	}
	e.Schedule(t, cb.H, cb.P)
}

// CallAfter queues cb to fire d after the current time.
//
//dcalint:noalloc
func (e *Engine) CallAfter(d simtime.Time, cb Callback) { e.CallAt(e.now+d, cb) }

// At schedules fn to run at absolute time t. This is the closure
// convenience API: it is allocation-free only when fn itself is (a
// pre-built func value); hot paths should use Schedule with a Handler.
func (e *Engine) At(t simtime.Time, fn func()) {
	e.Schedule(t, thunkHandler{}, Payload{Ptr: fn})
}

// After schedules fn to run d after the current time.
func (e *Engine) After(d simtime.Time, fn func()) { e.At(e.now+d, fn) }

// Step executes the earliest pending event. It reports whether an event
// was executed.
//
//dcalint:noalloc
func (e *Engine) Step() bool {
	idx, ok := e.wh.pop(e.pool)
	if !ok {
		return false
	}
	n := e.pool[idx]
	// Release the record before dispatch: the handler may schedule new
	// events, and reusing this slot immediately keeps the pool minimal.
	e.pool[idx] = node{}
	e.free = append(e.free, idx)
	e.now = n.at
	e.steps++
	n.h.OnEvent(n.at, n.p)
	return true
}

// Run executes events until the queue is empty.
//
//dcalint:noalloc
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil executes events with timestamps <= t and then advances the
// clock to t. Events scheduled beyond t stay queued.
//
//dcalint:noalloc
func (e *Engine) RunUntil(t simtime.Time) {
	for {
		at, ok := e.PeekTime()
		if !ok || at > t {
			break
		}
		e.Step()
	}
	if t > e.now {
		e.now = t
	}
}

// RunFor is RunUntil relative to the current time.
//
//dcalint:noalloc
func (e *Engine) RunFor(d simtime.Time) { e.RunUntil(e.now + d) }

// alloc returns a free pool index, growing the pool only when the free
// list is empty (i.e. at a new high-water mark of pending events).
//
//dcalint:noalloc
func (e *Engine) alloc() int32 {
	if n := len(e.free); n > 0 {
		idx := e.free[n-1]
		e.free = e.free[:n-1]
		return idx
	}
	e.pool = append(e.pool, node{})
	return int32(len(e.pool) - 1)
}
