// Package event implements the discrete-event simulation kernel.
//
// The kernel is a binary min-heap of (time, sequence, callback) items.
// Events scheduled for the same timestamp fire in the order they were
// scheduled, which makes whole-simulation behaviour exactly reproducible
// run to run. The kernel is single-threaded by design: determinism of an
// architectural simulation is worth far more than intra-run parallelism,
// and the harness instead parallelises across independent simulations.
package event

import (
	"fmt"

	"dcasim/internal/simtime"
)

// Engine is a discrete-event scheduler. The zero value is ready to use.
type Engine struct {
	now   simtime.Time
	seq   uint64
	heap  []item
	steps uint64
}

type item struct {
	at  simtime.Time
	seq uint64
	fn  func()
}

// Now returns the current simulated time.
func (e *Engine) Now() simtime.Time { return e.now }

// Steps returns the number of events executed so far.
func (e *Engine) Steps() uint64 { return e.steps }

// Pending returns the number of events waiting in the queue.
func (e *Engine) Pending() int { return len(e.heap) }

// At schedules fn to run at absolute time t. Scheduling in the past is a
// programming error and panics: silently reordering time would corrupt
// every downstream model.
func (e *Engine) At(t simtime.Time, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("event: schedule at %v before now %v", t, e.now))
	}
	e.seq++
	e.push(item{at: t, seq: e.seq, fn: fn})
}

// After schedules fn to run d after the current time.
func (e *Engine) After(d simtime.Time, fn func()) { e.At(e.now+d, fn) }

// Step executes the earliest pending event. It reports whether an event
// was executed.
func (e *Engine) Step() bool {
	if len(e.heap) == 0 {
		return false
	}
	it := e.pop()
	e.now = it.at
	e.steps++
	it.fn()
	return true
}

// Run executes events until the queue is empty.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil executes events with timestamps <= t and then advances the
// clock to t. Events scheduled beyond t stay queued.
func (e *Engine) RunUntil(t simtime.Time) {
	for len(e.heap) > 0 && e.heap[0].at <= t {
		e.Step()
	}
	if t > e.now {
		e.now = t
	}
}

// RunFor is RunUntil relative to the current time.
func (e *Engine) RunFor(d simtime.Time) { e.RunUntil(e.now + d) }

func (e *Engine) less(i, j int) bool {
	if e.heap[i].at != e.heap[j].at {
		return e.heap[i].at < e.heap[j].at
	}
	return e.heap[i].seq < e.heap[j].seq
}

func (e *Engine) push(it item) {
	e.heap = append(e.heap, it)
	i := len(e.heap) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !e.less(i, parent) {
			break
		}
		e.heap[i], e.heap[parent] = e.heap[parent], e.heap[i]
		i = parent
	}
}

func (e *Engine) pop() item {
	top := e.heap[0]
	n := len(e.heap) - 1
	e.heap[0] = e.heap[n]
	e.heap[n] = item{} // release the closure for GC
	e.heap = e.heap[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && e.less(l, smallest) {
			smallest = l
		}
		if r < n && e.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			break
		}
		e.heap[i], e.heap[smallest] = e.heap[smallest], e.heap[i]
		i = smallest
	}
	return top
}
