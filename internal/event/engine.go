// Package event implements the discrete-event simulation kernel.
//
// The kernel is a 4-ary min-heap of (time, sequence) keys over a pool of
// event records. Events scheduled for the same timestamp fire in the
// order they were scheduled, which makes whole-simulation behaviour
// exactly reproducible run to run. The kernel is single-threaded by
// design: determinism of an architectural simulation is worth far more
// than intra-run parallelism, and the harness instead parallelises
// across independent simulations.
//
// Scheduling is allocation-free in steady state. Instead of a fresh
// closure per event, an event record pairs a Handler (typically the
// simulated component itself, a long-lived pointer) with a small inline
// Payload the handler uses to recover the event's context. Records live
// in a pool indexed by the heap and are recycled through a free list, so
// once the pool, free list, and heap slices reach their high-water marks
// the kernel performs no per-event heap allocation at all.
package event

import (
	"fmt"

	"dcasim/internal/simtime"
)

// Handler receives fired events. Implementations are typically the
// long-lived simulated components themselves; per-event context travels
// in the Payload, so scheduling never needs to close over variables.
type Handler interface {
	OnEvent(now simtime.Time, p Payload)
}

// Payload is the inline per-event argument block. Handlers that service
// several event kinds conventionally use a few low bits of U64 as the
// discriminator. Ptr must hold a pointer-shaped value (a pointer, map,
// channel, or func) — boxing a non-pointer value into it would allocate,
// defeating the kernel's zero-allocation contract.
type Payload struct {
	Time simtime.Time
	I64  int64
	U64  uint64
	Ptr  any
}

// Callback bundles a Handler with its Payload so components can hand a
// continuation across module boundaries without allocating a closure.
// The zero value is a no-op.
type Callback struct {
	H Handler
	P Payload
}

// Valid reports whether the callback has a handler attached.
func (cb Callback) Valid() bool { return cb.H != nil }

// Invoke fires the callback immediately (outside the event queue). A
// zero callback is a no-op.
func (cb Callback) Invoke(now simtime.Time) {
	if cb.H != nil {
		cb.H.OnEvent(now, cb.P)
	}
}

// funcHandler adapts a plain function to the Handler interface; the
// function travels in Payload.Ptr, so the adapter itself is stateless
// and boxing it allocates nothing.
type funcHandler struct{}

func (funcHandler) OnEvent(now simtime.Time, p Payload) {
	p.Ptr.(func(simtime.Time))(now)
}

// Func wraps fn into a Callback. The wrapper is allocation-free, but fn
// itself is usually a closure the caller allocated — use Func in tests
// and setup paths, and a real Handler on hot paths.
func Func(fn func(now simtime.Time)) Callback {
	return Callback{H: funcHandler{}, P: Payload{Ptr: fn}}
}

// thunkHandler adapts an argument-less function for At/After.
type thunkHandler struct{}

func (thunkHandler) OnEvent(_ simtime.Time, p Payload) { p.Ptr.(func())() }

// node is one pooled event record.
type node struct {
	at  simtime.Time
	seq uint64
	h   Handler
	p   Payload
}

// Engine is a discrete-event scheduler. The zero value is ready to use.
type Engine struct {
	now   simtime.Time
	seq   uint64
	steps uint64

	// pool holds event records; heap orders indices into it by
	// (time, sequence); free recycles retired indices. int32 indices
	// halve the heap's cache footprint versus pointers and are ample:
	// two billion simultaneously pending events would exhaust memory
	// long before the index space.
	pool []node
	heap []int32
	free []int32
}

// Now returns the current simulated time.
func (e *Engine) Now() simtime.Time { return e.now }

// Steps returns the number of events executed so far.
func (e *Engine) Steps() uint64 { return e.steps }

// Pending returns the number of events waiting in the queue.
func (e *Engine) Pending() int { return len(e.heap) }

// Schedule queues h to fire at absolute time t with payload p.
// Scheduling in the past is a programming error and panics: silently
// reordering time would corrupt every downstream model.
//
//dcalint:noalloc
func (e *Engine) Schedule(t simtime.Time, h Handler, p Payload) {
	if t < e.now {
		panic(fmt.Sprintf("event: schedule at %v before now %v", t, e.now))
	}
	e.seq++
	idx := e.alloc()
	e.pool[idx] = node{at: t, seq: e.seq, h: h, p: p}
	e.push(idx)
}

// ScheduleAfter queues h to fire d after the current time.
//
//dcalint:noalloc
func (e *Engine) ScheduleAfter(d simtime.Time, h Handler, p Payload) {
	e.Schedule(e.now+d, h, p)
}

// CallAt queues cb to fire at absolute time t. A zero callback is
// dropped rather than queued.
//
//dcalint:noalloc
func (e *Engine) CallAt(t simtime.Time, cb Callback) {
	if cb.H == nil {
		return
	}
	e.Schedule(t, cb.H, cb.P)
}

// CallAfter queues cb to fire d after the current time.
//
//dcalint:noalloc
func (e *Engine) CallAfter(d simtime.Time, cb Callback) { e.CallAt(e.now+d, cb) }

// At schedules fn to run at absolute time t. This is the closure
// convenience API: it is allocation-free only when fn itself is (a
// pre-built func value); hot paths should use Schedule with a Handler.
func (e *Engine) At(t simtime.Time, fn func()) {
	e.Schedule(t, thunkHandler{}, Payload{Ptr: fn})
}

// After schedules fn to run d after the current time.
func (e *Engine) After(d simtime.Time, fn func()) { e.At(e.now+d, fn) }

// Step executes the earliest pending event. It reports whether an event
// was executed.
//
//dcalint:noalloc
func (e *Engine) Step() bool {
	if len(e.heap) == 0 {
		return false
	}
	idx := e.pop()
	n := e.pool[idx]
	// Release the record before dispatch: the handler may schedule new
	// events, and reusing this slot immediately keeps the pool minimal.
	e.pool[idx] = node{}
	e.free = append(e.free, idx)
	e.now = n.at
	e.steps++
	n.h.OnEvent(n.at, n.p)
	return true
}

// Run executes events until the queue is empty.
//
//dcalint:noalloc
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil executes events with timestamps <= t and then advances the
// clock to t. Events scheduled beyond t stay queued.
//
//dcalint:noalloc
func (e *Engine) RunUntil(t simtime.Time) {
	for len(e.heap) > 0 && e.pool[e.heap[0]].at <= t {
		e.Step()
	}
	if t > e.now {
		e.now = t
	}
}

// RunFor is RunUntil relative to the current time.
//
//dcalint:noalloc
func (e *Engine) RunFor(d simtime.Time) { e.RunUntil(e.now + d) }

// alloc returns a free pool index, growing the pool only when the free
// list is empty (i.e. at a new high-water mark of pending events).
//
//dcalint:noalloc
func (e *Engine) alloc() int32 {
	if n := len(e.free); n > 0 {
		idx := e.free[n-1]
		e.free = e.free[:n-1]
		return idx
	}
	e.pool = append(e.pool, node{})
	return int32(len(e.pool) - 1)
}

// less orders pool records by (time, sequence): strict total order, so
// heap pop order is independent of the heap's internal layout.
//
//dcalint:noalloc
func (e *Engine) less(a, b int32) bool {
	na, nb := &e.pool[a], &e.pool[b]
	if na.at != nb.at {
		return na.at < nb.at
	}
	return na.seq < nb.seq
}

// The heap is 4-ary: children of slot i live at 4i+1..4i+4. Compared to
// a binary heap this halves the tree depth paid on every sift-up and
// fits each node's children in one cache line of int32 indices, which
// matters because the heap is touched twice per simulated event.

//dcalint:noalloc
func (e *Engine) push(idx int32) {
	e.heap = append(e.heap, idx)
	i := len(e.heap) - 1
	for i > 0 {
		parent := (i - 1) / 4
		if !e.less(e.heap[i], e.heap[parent]) {
			break
		}
		e.heap[i], e.heap[parent] = e.heap[parent], e.heap[i]
		i = parent
	}
}

//dcalint:noalloc
func (e *Engine) pop() int32 {
	h := e.heap
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	e.heap = h[:n]
	h = e.heap
	i := 0
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		smallest := i
		last := first + 4
		if last > n {
			last = n
		}
		for c := first; c < last; c++ {
			if e.less(h[c], h[smallest]) {
				smallest = c
			}
		}
		if smallest == i {
			break
		}
		h[i], h[smallest] = h[smallest], h[i]
		i = smallest
	}
	return top
}
