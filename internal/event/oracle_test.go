package event

import (
	"fmt"

	"dcasim/internal/simtime"
)

// This file keeps the retired 4-ary min-heap alive as a test-only
// reference implementation of the queue interface — the same
// retired-oracle pattern the controller rework used for its linear-scan
// scheduler. The heap is a direct transplant of the pre-wheel
// production code: pop order is (time, sequence) by pairwise
// comparison, with none of the wheel's bucketing, so any divergence
// between the two is a wheel bug by construction.

// refHeap is the retired 4-ary min-heap over pool indices.
type refHeap struct {
	heap []int32
}

var _ queue = (*refHeap)(nil)

func (h *refHeap) size() int { return len(h.heap) }

// less orders pool records by (time, sequence): strict total order, so
// heap pop order is independent of the heap's internal layout.
func (h *refHeap) less(pool []node, a, b int32) bool {
	na, nb := &pool[a], &pool[b]
	if na.at != nb.at {
		return na.at < nb.at
	}
	return na.seq < nb.seq
}

// The heap is 4-ary: children of slot i live at 4i+1..4i+4.
func (h *refHeap) push(pool []node, idx int32) {
	h.heap = append(h.heap, idx)
	i := len(h.heap) - 1
	for i > 0 {
		parent := (i - 1) / 4
		if !h.less(pool, h.heap[i], h.heap[parent]) {
			break
		}
		h.heap[i], h.heap[parent] = h.heap[parent], h.heap[i]
		i = parent
	}
}

func (h *refHeap) pop(pool []node) (int32, bool) {
	if len(h.heap) == 0 {
		return 0, false
	}
	hp := h.heap
	top := hp[0]
	n := len(hp) - 1
	hp[0] = hp[n]
	h.heap = hp[:n]
	hp = h.heap
	i := 0
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		smallest := i
		last := first + 4
		if last > n {
			last = n
		}
		for c := first; c < last; c++ {
			if h.less(pool, hp[c], hp[smallest]) {
				smallest = c
			}
		}
		if smallest == i {
			break
		}
		hp[i], hp[smallest] = hp[smallest], hp[i]
		i = smallest
	}
	return top, true
}

func (h *refHeap) peek(pool []node) (simtime.Time, bool) {
	if len(h.heap) == 0 {
		return 0, false
	}
	return pool[h.heap[0]].at, true
}

// refEngine replays the Engine's exact record-pool semantics over the
// retired heap, exposing the same method set the differential and fuzz
// harnesses exercise. Keeping it behind the shared queue interface
// (rather than forking the whole Engine) pins the one thing under
// test: pop order.
type refEngine struct {
	now   simtime.Time
	seq   uint64
	steps uint64
	pool  []node
	free  []int32
	q     refHeap
}

func (e *refEngine) Now() simtime.Time { return e.now }

func (e *refEngine) Steps() uint64 { return e.steps }

func (e *refEngine) Pending() int { return e.q.size() }

func (e *refEngine) PeekTime() (simtime.Time, bool) { return e.q.peek(e.pool) }

func (e *refEngine) Schedule(t simtime.Time, h Handler, p Payload) {
	if t < e.now {
		panic(fmt.Sprintf("event: schedule at %v before now %v", t, e.now))
	}
	e.seq++
	idx := e.alloc()
	e.pool[idx] = node{at: t, seq: e.seq, h: h, p: p}
	e.q.push(e.pool, idx)
}

func (e *refEngine) ScheduleAfter(d simtime.Time, h Handler, p Payload) {
	e.Schedule(e.now+d, h, p)
}

func (e *refEngine) Step() bool {
	idx, ok := e.q.pop(e.pool)
	if !ok {
		return false
	}
	n := e.pool[idx]
	e.pool[idx] = node{}
	e.free = append(e.free, idx)
	e.now = n.at
	e.steps++
	n.h.OnEvent(n.at, n.p)
	return true
}

func (e *refEngine) Run() {
	for e.Step() {
	}
}

func (e *refEngine) RunUntil(t simtime.Time) {
	for {
		at, ok := e.PeekTime()
		if !ok || at > t {
			break
		}
		e.Step()
	}
	if t > e.now {
		e.now = t
	}
}

func (e *refEngine) alloc() int32 {
	if n := len(e.free); n > 0 {
		idx := e.free[n-1]
		e.free = e.free[:n-1]
		return idx
	}
	e.pool = append(e.pool, node{})
	return int32(len(e.pool) - 1)
}
