package event

import (
	"testing"

	"dcasim/internal/simtime"
)

// FuzzEngineOps fuzzes the kernel against the retired 4-ary heap
// oracle: an arbitrary byte string is interpreted as an op program —
// schedules at DRAM-like, boundary-straddling, and far-future deltas,
// same-timestamp bursts, steps, RunUntil jumps, peeks, and
// deliberately-past schedules — applied to both engines in lockstep.
// Any divergence in dispatch order, clocks, pending counts, peeks, or
// panic behaviour fails. The seed corpus in
// testdata/fuzz/FuzzEngineOps covers each op and every wheel level;
// `make fuzz-short` runs this alongside the decoder and cache fuzzers.
func FuzzEngineOps(f *testing.F) {
	// One seed per op family plus a mixed program; the checked-in
	// corpus extends these with boundary-heavy variants.
	f.Add([]byte{0, 3, 7, 1, 0x40, 0x10, 3, 3, 3})
	f.Add([]byte{5, 9, 0, 2, 8, 35, 4, 0xff, 0x7f, 3, 3, 3, 3})
	f.Add([]byte{6, 0, 0, 7, 0, 0, 6, 0, 0, 4, 0, 0x80})
	f.Add([]byte{2, 8, 40, 2, 8, 12, 4, 0xff, 0xff, 6, 0, 0})
	f.Fuzz(func(t *testing.T, program []byte) {
		var wheelEng Engine
		refEng := &refEngine{}
		wh := &chaosHandler{e: &wheelEng}
		rh := &chaosHandler{e: refEng}
		engines := [2]engineAPI{&wheelEng, refEng}
		handlers := [2]*chaosHandler{wh, rh}

		var tag uint64
		events := 0
		for pc := 0; pc+2 < len(program) && events < 4096; pc += 3 {
			op, a, b := program[pc], uint64(program[pc+1]), uint64(program[pc+2])
			tag++
			switch op % 8 {
			case 0: // DRAM-constant delta, small multiple
				d := chaosDeltas[a%uint64(len(chaosDeltas))] * simtime.Time(b%3+1)
				for i, e := range engines {
					e.Schedule(e.Now()+d, handlers[i], Payload{U64: tag})
				}
				events++
			case 1: // uniform 16-bit delta
				d := simtime.Time(a | b<<8)
				for i, e := range engines {
					e.ScheduleAfter(d, handlers[i], Payload{U64: tag})
				}
				events++
			case 2: // exponential delta: reaches every level and the spill
				d := simtime.Time(a+1) << (b % 48)
				for i, e := range engines {
					e.ScheduleAfter(d, handlers[i], Payload{U64: tag})
				}
				events++
			case 3: // one step
				if engines[0].Step() != engines[1].Step() {
					t.Fatal("Step() availability diverged")
				}
			case 4: // bounded run with a possibly-large jump
				d := simtime.Time(a|b<<8) << (a % 24)
				for _, e := range engines {
					e.RunUntil(e.Now() + d)
				}
			case 5: // same-time burst
				n := int(a%16) + 1
				at := engines[0].Now() + simtime.Time(b)
				for i := 0; i < n; i++ {
					tag++
					for j, e := range engines {
						e.Schedule(at, handlers[j], Payload{U64: tag})
					}
					events++
				}
			case 6: // peek must agree
				wt, wok := engines[0].PeekTime()
				ht, hok := engines[1].PeekTime()
				if wt != ht || wok != hok {
					t.Fatalf("PeekTime diverged: wheel (%v,%v) heap (%v,%v)", wt, wok, ht, hok)
				}
			case 7: // past-time schedule: both must panic, neither mutates
				d := simtime.Time(a+1) + simtime.Time(b)<<4
				for i, e := range engines {
					if e.Now() < d {
						continue
					}
					func() {
						defer func() {
							if recover() == nil {
								t.Fatalf("engine %d: past-time schedule did not panic", i)
							}
						}()
						e.Schedule(e.Now()-d, handlers[i], Payload{U64: tag})
					}()
				}
			}
			if engines[0].Pending() != engines[1].Pending() {
				t.Fatalf("pending diverged: wheel %d, heap %d", engines[0].Pending(), engines[1].Pending())
			}
			if engines[0].Now() != engines[1].Now() {
				t.Fatalf("clock diverged: wheel %v, heap %v", engines[0].Now(), engines[1].Now())
			}
		}
		// Drain both (nested chaos scheduling is subcritical, but cap it).
		for i := 0; i < 100_000 && engines[0].Step(); i++ {
			if !engines[1].Step() {
				t.Fatal("heap oracle ran dry before the wheel")
			}
		}
		if engines[0].Pending() != engines[1].Pending() {
			t.Fatalf("post-drain pending diverged: wheel %d, heap %d", engines[0].Pending(), engines[1].Pending())
		}
		if len(wh.log) != len(rh.log) {
			t.Fatalf("wheel fired %d events, heap oracle fired %d", len(wh.log), len(rh.log))
		}
		for i := range wh.log {
			if wh.log[i] != rh.log[i] {
				t.Fatalf("dispatch %d diverged: wheel %+v, heap oracle %+v", i, wh.log[i], rh.log[i])
			}
		}
		if engines[0].Steps() != engines[1].Steps() {
			t.Fatalf("steps diverged: wheel %d, heap %d", engines[0].Steps(), engines[1].Steps())
		}
	})
}
