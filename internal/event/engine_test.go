package event

import (
	"math/rand"
	"sort"
	"testing"

	"dcasim/internal/simtime"
)

func TestOrdering(t *testing.T) {
	var e Engine
	var got []int
	e.At(30, func() { got = append(got, 3) })
	e.At(10, func() { got = append(got, 1) })
	e.At(20, func() { got = append(got, 2) })
	e.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("events out of order: %v", got)
	}
	if e.Now() != 30 {
		t.Fatalf("Now = %v, want 30", e.Now())
	}
}

func TestSameTimeFIFO(t *testing.T) {
	var e Engine
	var got []int
	for i := 0; i < 100; i++ {
		i := i
		e.At(5, func() { got = append(got, i) })
	}
	e.Run()
	if !sort.IntsAreSorted(got) {
		t.Fatalf("same-timestamp events not FIFO: %v", got)
	}
}

func TestNestedScheduling(t *testing.T) {
	var e Engine
	var got []simtime.Time
	e.At(10, func() {
		got = append(got, e.Now())
		e.After(5, func() { got = append(got, e.Now()) })
		e.At(e.Now(), func() { got = append(got, e.Now()) })
	})
	e.Run()
	want := []simtime.Time{10, 10, 15}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event %d at %v, want %v", i, got[i], want[i])
		}
	}
}

func TestSchedulePastPanics(t *testing.T) {
	var e Engine
	e.At(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(5, func() {})
	})
	e.Run()
}

func TestRunUntil(t *testing.T) {
	var e Engine
	fired := 0
	for _, at := range []simtime.Time{5, 10, 15, 20} {
		e.At(at, func() { fired++ })
	}
	e.RunUntil(12)
	if fired != 2 {
		t.Fatalf("fired %d events until t=12, want 2", fired)
	}
	if e.Now() != 12 {
		t.Fatalf("Now = %v, want 12", e.Now())
	}
	if e.Pending() != 2 {
		t.Fatalf("pending %d, want 2", e.Pending())
	}
	e.Run()
	if fired != 4 {
		t.Fatalf("fired %d total, want 4", fired)
	}
}

func TestRunFor(t *testing.T) {
	var e Engine
	fired := false
	e.At(100, func() { fired = true })
	e.RunFor(50)
	if fired || e.Now() != 50 {
		t.Fatalf("RunFor(50): fired=%v now=%v", fired, e.Now())
	}
	e.RunFor(50)
	if !fired || e.Now() != 100 {
		t.Fatalf("RunFor to 100: fired=%v now=%v", fired, e.Now())
	}
}

func TestPeekTime(t *testing.T) {
	var e Engine
	if _, ok := e.PeekTime(); ok {
		t.Fatal("PeekTime on an empty engine reported an event")
	}
	e.At(300, func() {})
	e.At(100, func() {})
	e.At(100, func() {})
	if at, ok := e.PeekTime(); !ok || at != 100 {
		t.Fatalf("PeekTime = (%v, %v), want (100, true)", at, ok)
	}
	e.Step()
	if at, ok := e.PeekTime(); !ok || at != 100 {
		t.Fatalf("after one step PeekTime = (%v, %v), want (100, true)", at, ok)
	}
	e.Step()
	if at, ok := e.PeekTime(); !ok || at != 300 {
		t.Fatalf("after two steps PeekTime = (%v, %v), want (300, true)", at, ok)
	}
	// Peek must not advance the clock or consume the event.
	if e.Now() != 100 || e.Pending() != 1 {
		t.Fatalf("PeekTime mutated state: now=%v pending=%d", e.Now(), e.Pending())
	}
	e.Run()
	if _, ok := e.PeekTime(); ok {
		t.Fatal("PeekTime after drain reported an event")
	}
}

func TestPeekTimeAcrossLevels(t *testing.T) {
	// Earliest event visible through PeekTime no matter which wheel
	// level — or the far-future spill — holds it.
	for _, at := range []simtime.Time{1, 1 << 10, 1 << 20, 1 << 30, 1 << 41} {
		var e Engine
		e.At(1<<42, func() {}) // spill resident
		e.At(at, func() {})
		if got, ok := e.PeekTime(); !ok || got != at {
			t.Fatalf("PeekTime = (%v, %v), want (%v, true)", got, ok, at)
		}
	}
}

func TestHeapRandomized(t *testing.T) {
	// Property: events fire in nondecreasing time order regardless of
	// insertion order, including events inserted while running.
	rnd := rand.New(rand.NewSource(42))
	var e Engine
	var times []simtime.Time
	record := func() { times = append(times, e.Now()) }
	for i := 0; i < 500; i++ {
		at := simtime.Time(rnd.Intn(10_000))
		e.At(at, func() {
			record()
			if rnd.Intn(3) == 0 {
				e.After(simtime.Time(rnd.Intn(100)), record)
			}
		})
	}
	e.Run()
	for i := 1; i < len(times); i++ {
		if times[i] < times[i-1] {
			t.Fatalf("time went backwards at %d: %v < %v", i, times[i], times[i-1])
		}
	}
	if e.Steps() != uint64(len(times)) {
		t.Fatalf("Steps() = %d, fired %d", e.Steps(), len(times))
	}
}
