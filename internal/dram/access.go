package dram

import (
	"dcasim/internal/addrmap"
	"dcasim/internal/event"
)

// Kind identifies what a DRAM access moves, mirroring the paper's Fig. 2
// nomenclature (RT/RD/WT/WD, plus the direct-mapped combined TAD forms).
type Kind uint8

const (
	ReadTag   Kind = iota // RT: tag block read
	ReadData              // RD: data block read
	WriteTag              // WT: tag block write (replacement-bit update)
	WriteData             // WD: data block write
	ReadTAD               // direct-mapped combined tag+data read
	WriteTAD              // direct-mapped combined tag+data write
)

// IsWrite reports whether the access drives the bus in write direction.
func (k Kind) IsWrite() bool { return k == WriteTag || k == WriteData || k == WriteTAD }

// IsTag reports whether the access touches tag state (used by the tag
// traffic accounting of Fig. 18).
func (k Kind) IsTag() bool { return k != ReadData && k != WriteData }

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case ReadTag:
		return "RT"
	case ReadData:
		return "RD"
	case WriteTag:
		return "WT"
	case WriteData:
		return "WD"
	case ReadTAD:
		return "RTAD"
	case WriteTAD:
		return "WTAD"
	}
	return "?"
}

// Access is a single DRAM array access, the unit the controllers queue and
// schedule.
type Access struct {
	Kind  Kind
	Loc   addrmap.Loc
	Bytes int // transfer size: 64 for a block, 72 for a TAD

	// App is the issuing application (core) index, consumed by the BLISS
	// blacklisting scheduler.
	App int

	// Done, when valid, is invoked by the controller at the access's
	// data completion time. It is a handler/payload pair rather than a
	// closure so queueing an access allocates nothing.
	Done event.Callback
}
