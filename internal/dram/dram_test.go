package dram

import (
	"testing"

	"dcasim/internal/addrmap"
	"dcasim/internal/simtime"
)

func geom() addrmap.Geometry {
	return addrmap.Geometry{Channels: 1, Ranks: 1, Banks: 16, RowBytes: 4096, BlockSize: 64}
}

func read(bank int, row int64, col int) *Access {
	return &Access{Kind: ReadData, Loc: addrmap.Loc{Bank: bank, Row: row, Col: col}, Bytes: 64}
}

func write(bank int, row int64, col int) *Access {
	return &Access{Kind: WriteData, Loc: addrmap.Loc{Bank: bank, Row: row, Col: col}, Bytes: 64}
}

func TestStackedDRAMTimings(t *testing.T) {
	tm := StackedDRAM()
	if tm.TRCD != 8*simtime.Nanosecond || tm.TRAS != 30*simtime.Nanosecond {
		t.Fatalf("Table II timings wrong: %+v", tm)
	}
	if tm.TWTR != 5*simtime.Nanosecond || tm.TRTW != simtime.FromNS(1.67) {
		t.Fatalf("turnaround timings wrong: %+v", tm)
	}
}

func TestBurstTime(t *testing.T) {
	tm := StackedDRAM()
	if tm.BurstTime(64) != tm.TBurst {
		t.Fatalf("64B burst = %v, want %v", tm.BurstTime(64), tm.TBurst)
	}
	tad := tm.BurstTime(72)
	if tad <= tm.TBurst || tad >= 2*tm.TBurst {
		t.Fatalf("72B TAD burst %v should be between 1x and 2x %v", tad, tm.TBurst)
	}
	if tm.BurstTime(128) != 2*tm.TBurst {
		t.Fatalf("128B burst = %v, want %v", tm.BurstTime(128), 2*tm.TBurst)
	}
}

func TestClosedRowLatency(t *testing.T) {
	tm := StackedDRAM()
	ch := NewChannel(tm, geom())
	if got := ch.Peek(addrmap.Loc{Bank: 0, Row: 5}); got != RowClosed {
		t.Fatalf("fresh bank state = %v, want closed", got)
	}
	end := ch.Issue(read(0, 5, 0), 0)
	want := tm.TRCD + tm.TCAS + tm.TBurst
	if end != want {
		t.Fatalf("closed-row read completes at %v, want %v", end, want)
	}
	if ch.Peek(addrmap.Loc{Bank: 0, Row: 5}) != RowHit {
		t.Fatal("row should be open after access (open-page policy)")
	}
}

func TestRowHitLatency(t *testing.T) {
	tm := StackedDRAM()
	ch := NewChannel(tm, geom())
	end := ch.Issue(read(0, 5, 0), 0)
	end2 := ch.Issue(read(0, 5, 1), end)
	want := end + tm.TCAS + tm.TBurst
	if end2 != want {
		t.Fatalf("row-hit read completes at %v, want %v", end2, want)
	}
}

func TestRowConflictLatency(t *testing.T) {
	tm := StackedDRAM()
	ch := NewChannel(tm, geom())
	end := ch.Issue(read(0, 5, 0), 0)
	if ch.Peek(addrmap.Loc{Bank: 0, Row: 6}) != RowConflict {
		t.Fatal("different row in open bank should conflict")
	}
	// Conflict: must respect tRAS from the first activate (at t=0),
	// then tRP + tRCD + tCAS + burst.
	end2 := ch.Issue(read(0, 6, 0), end)
	actOfFirst := simtime.Time(0)
	preOK := actOfFirst + tm.TRAS
	pre := simtime.Max(end, preOK)
	want := pre + tm.TRP + tm.TRCD + tm.TCAS + tm.TBurst
	if end2 != want {
		t.Fatalf("conflict read completes at %v, want %v", end2, want)
	}
	if got := ch.Stats().ReadRowConf; got != 1 {
		t.Fatalf("conflict count = %d, want 1", got)
	}
}

func TestWriteToReadTurnaround(t *testing.T) {
	tm := StackedDRAM()
	ch := NewChannel(tm, geom())
	wEnd := ch.Issue(write(0, 1, 0), 0)
	// Read to an open row in another bank: CAS must wait tWTR after the
	// write burst end.
	ch2 := ch.Issue(read(1, 1, 0), wEnd)
	// Bank 1 closed: activate may overlap nothing (serial model): cmd
	// starts at wEnd, +tRCD, then CAS >= wEnd + tWTR.
	cas := simtime.Max(wEnd+tm.TRCD, wEnd+tm.TWTR)
	want := cas + tm.TCAS + tm.TBurst
	if ch2 != want {
		t.Fatalf("read after write completes at %v, want %v", ch2, want)
	}
	if ch.Stats().Turnarounds != 1 {
		t.Fatalf("turnarounds = %d, want 1", ch.Stats().Turnarounds)
	}
}

func TestReadToWriteTurnaround(t *testing.T) {
	tm := StackedDRAM()
	ch := NewChannel(tm, geom())
	rEnd := ch.Issue(read(0, 1, 0), 0)
	end := ch.Issue(write(0, 1, 1), rEnd) // row hit write
	cas := rEnd + tm.TRTW
	want := cas + tm.TCAS + tm.TBurst
	if end != want {
		t.Fatalf("write after read completes at %v, want %v", end, want)
	}
}

func TestNoTurnaroundSameDirection(t *testing.T) {
	ch := NewChannel(StackedDRAM(), geom())
	end := ch.Issue(read(0, 1, 0), 0)
	end = ch.Issue(read(0, 1, 1), end)
	end = ch.Issue(read(0, 1, 2), end)
	if ch.Stats().Turnarounds != 0 {
		t.Fatalf("same-direction accesses recorded %d turnarounds", ch.Stats().Turnarounds)
	}
	if ch.Stats().Reads != 3 || ch.Stats().ReadRowHit != 2 {
		t.Fatalf("stats wrong: %+v", ch.Stats())
	}
}

func TestWriteRecoveryDelaysPrecharge(t *testing.T) {
	tm := StackedDRAM()
	ch := NewChannel(tm, geom())
	wEnd := ch.Issue(write(0, 1, 0), 0)
	// Conflicting read: precharge must wait tWR after the write burst.
	end := ch.Issue(read(0, 2, 0), wEnd)
	pre := wEnd + tm.TWR
	want := pre + tm.TRP + tm.TRCD
	// CAS also >= wEnd + tWTR, but the row preparation dominates here.
	cas := simtime.Max(want, wEnd+tm.TWTR)
	want = cas + tm.TCAS + tm.TBurst
	if end != want {
		t.Fatalf("conflicting read after write completes at %v, want %v", end, want)
	}
}

func TestIssueBeforeBusFreePanics(t *testing.T) {
	ch := NewChannel(StackedDRAM(), geom())
	end := ch.Issue(read(0, 1, 0), 0)
	defer func() {
		if recover() == nil {
			t.Error("Issue before bus free did not panic")
		}
	}()
	ch.Issue(read(0, 1, 1), end-1)
}

func TestBanksIndependentRows(t *testing.T) {
	ch := NewChannel(StackedDRAM(), geom())
	end := ch.Issue(read(0, 1, 0), 0)
	end = ch.Issue(read(1, 2, 0), end)
	_ = ch.Issue(read(0, 1, 1), end) // still a hit in bank 0
	s := ch.Stats()
	if s.ReadRowHit != 1 || s.ReadRowMiss != 2 || s.ReadRowConf != 0 {
		t.Fatalf("bank independence broken: %+v", s)
	}
}

func TestStatsAddAndRates(t *testing.T) {
	var a, b Stats
	a.Reads, a.ReadRowHit, a.Accesses, a.Turnarounds = 10, 6, 12, 3
	b.Reads, b.ReadRowHit, b.Accesses, b.Turnarounds = 10, 2, 12, 1
	a.Add(b)
	if a.Reads != 20 || a.ReadRowHit != 8 {
		t.Fatalf("Add broken: %+v", a)
	}
	if got := a.ReadRowHitRate(); got != 0.4 {
		t.Fatalf("hit rate %v, want 0.4", got)
	}
	if got := a.AccessesPerTurnaround(); got != 6 {
		t.Fatalf("accesses per turnaround %v, want 6", got)
	}
	var empty Stats
	if empty.ReadRowHitRate() != 0 {
		t.Fatal("empty stats hit rate should be 0")
	}
	if empty.AccessesPerTurnaround() != 0 {
		t.Fatal("empty stats turnaround metric should be 0")
	}
}

func TestKindClassification(t *testing.T) {
	if ReadTag.IsWrite() || ReadData.IsWrite() || ReadTAD.IsWrite() {
		t.Error("read kinds classified as writes")
	}
	if !WriteTag.IsWrite() || !WriteData.IsWrite() || !WriteTAD.IsWrite() {
		t.Error("write kinds not classified as writes")
	}
	if !ReadTag.IsTag() || !WriteTag.IsTag() || !ReadTAD.IsTag() || !WriteTAD.IsTag() {
		t.Error("tag kinds not classified as tag accesses")
	}
	if ReadData.IsTag() || WriteData.IsTag() {
		t.Error("data kinds classified as tag accesses")
	}
}

// TestRowChangeNotification: the listener fires exactly on activates
// (closed-row and conflict accesses), with the bank's dense index and the
// newly opened row; row hits are silent. RowGen counts the same events.
func TestRowChangeNotification(t *testing.T) {
	ch := NewChannel(StackedDRAM(), geom())
	type change struct {
		gb  int
		row int64
	}
	var got []change
	ch.SetRowListener(func(gb int, row int64) { got = append(got, change{gb, row}) })

	end := ch.Issue(read(3, 5, 0), 0)  // closed -> activate row 5
	end = ch.Issue(read(3, 5, 1), end) // row hit -> silent
	end = ch.Issue(read(3, 9, 0), end) // conflict -> activate row 9
	_ = ch.Issue(read(7, 2, 0), end)   // other bank activate
	want := []change{{3, 5}, {3, 9}, {7, 2}}
	if len(got) != len(want) {
		t.Fatalf("listener fired %d times, want %d (%v)", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("notification %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	if ch.RowGen() != 3 {
		t.Fatalf("RowGen = %d after 3 activates", ch.RowGen())
	}
}

// TestPeekBankMatchesPeek: the pre-decoded fast path must agree with the
// address-decoding Peek in every row-buffer state.
func TestPeekBankMatchesPeek(t *testing.T) {
	ch := NewChannel(StackedDRAM(), geom())
	_ = ch.Issue(read(2, 4, 0), 0)
	locs := []addrmap.Loc{
		{Bank: 2, Row: 4}, // hit
		{Bank: 2, Row: 6}, // conflict
		{Bank: 5, Row: 1}, // closed
	}
	for _, l := range locs {
		if got, want := ch.PeekBank(ch.GlobalBank(l), l.Row), ch.Peek(l); got != want {
			t.Fatalf("PeekBank(%+v) = %v, Peek = %v", l, got, want)
		}
	}
}
