package dram

import (
	"fmt"

	"dcasim/internal/addrmap"
	"dcasim/internal/simtime"
)

// RowState classifies the row-buffer situation an access would meet in
// its bank, the information FR-FCFS and the OFS flushing check consume.
type RowState uint8

const (
	RowHit      RowState = iota // bank open on the access's row
	RowClosed                   // bank precharged, no row open
	RowConflict                 // bank open on a different row
)

// String implements fmt.Stringer.
func (s RowState) String() string {
	switch s {
	case RowHit:
		return "hit"
	case RowClosed:
		return "closed"
	case RowConflict:
		return "conflict"
	}
	return "?"
}

// Dir is the bus data direction.
type Dir uint8

const (
	DirNone Dir = iota
	DirRead
	DirWrite
)

type bank struct {
	openRow int64        // -1 when precharged
	preOK   simtime.Time // earliest next precharge (tRAS, tWR, tRTP)
	actOK   simtime.Time // earliest next activate
}

// Channel models one stacked-DRAM channel: its banks and its shared data
// bus. All methods are driven by a single controller goroutine; the type
// is not safe for concurrent use (simulations are single-threaded).
type Channel struct {
	timing Timing
	geom   addrmap.Geometry
	banks  []bank

	busFree      simtime.Time // data bus free (end of last burst)
	lastDir      Dir
	lastReadEnd  simtime.Time
	lastWriteEnd simtime.Time

	// rowGen counts open-row changes (activates) across all banks, and
	// rowListener, when set, is invoked with the bank and its new open
	// row on every such change. Together they let a scheduler maintain
	// incremental row-hit state instead of re-Peeking every queued entry
	// on every scheduling slot.
	rowGen      uint64
	rowListener func(gb int, row int64)

	stats Stats
}

// NewChannel builds a channel with all banks precharged.
func NewChannel(t Timing, g addrmap.Geometry) *Channel {
	n := g.Ranks * g.Banks
	c := &Channel{timing: t, geom: g, banks: make([]bank, n)}
	for i := range c.banks {
		c.banks[i].openRow = -1
	}
	return c
}

// Banks returns the number of banks the channel manages.
func (c *Channel) Banks() int { return len(c.banks) }

// Timing returns the channel's timing parameters.
func (c *Channel) Timing() Timing { return c.timing }

// Peek reports the row-buffer state the given location would encounter,
// without modifying anything.
func (c *Channel) Peek(l addrmap.Loc) RowState {
	return c.PeekBank(l.GlobalBank(c.geom), l.Row)
}

// PeekBank is the fast path of Peek for callers that already decoded the
// location's dense global bank index: no address math is repeated.
func (c *Channel) PeekBank(gb int, row int64) RowState {
	switch c.banks[gb].openRow {
	case row:
		return RowHit
	case -1:
		return RowClosed
	default:
		return RowConflict
	}
}

// RowGen returns a generation counter incremented on every open-row
// change of any bank. Observers compare generations to decide whether
// cached row-dependent state is still valid.
func (c *Channel) RowGen() uint64 { return c.rowGen }

// SetRowListener registers fn to be called whenever an activate changes a
// bank's open row, with the bank's dense index and the newly opened row.
// At most one listener is supported (one controller owns each channel).
func (c *Channel) SetRowListener(fn func(gb int, row int64)) { c.rowListener = fn }

// OpenRow returns the row currently open in global bank gb, or -1.
func (c *Channel) OpenRow(gb int) int64 { return c.banks[gb].openRow }

// GlobalBank returns the dense (rank, bank) index of l under the
// channel's geometry.
func (c *Channel) GlobalBank(l addrmap.Loc) int { return l.GlobalBank(c.geom) }

// LastDir returns the direction of the most recent data burst, letting
// the scheduler prefer same-direction accesses and amortise turnarounds.
func (c *Channel) LastDir() Dir { return c.lastDir }

// BusFreeAt returns the time the data bus finishes its current burst.
func (c *Channel) BusFreeAt() simtime.Time { return c.busFree }

// Issue services one access starting no earlier than now and returns its
// data completion time. The caller (the controller) is responsible for
// issuing at most one access at a time per channel; Issue panics if called
// while a previous burst is still in flight, since that indicates a
// controller bug rather than a recoverable condition.
func (c *Channel) Issue(a *Access, now simtime.Time) simtime.Time {
	if now < c.busFree {
		panic(fmt.Sprintf("dram: Issue at %v before bus free %v", now, c.busFree))
	}
	t := c.timing
	gb := a.Loc.GlobalBank(c.geom)
	b := &c.banks[gb]

	state := c.PeekBank(gb, a.Loc.Row)
	cmd := now

	// Row preparation on the critical path.
	switch state {
	case RowHit:
		// Row already open: no preparation, straight to the column access.
	case RowConflict:
		pre := simtime.Max(cmd, b.preOK)
		cmd = pre + t.TRP
		fallthrough
	case RowClosed:
		act := simtime.Max(cmd, b.actOK)
		cmd = act + t.TRCD
		b.openRow = a.Loc.Row
		b.preOK = act + t.TRAS
		// tRC-style back-to-back activate spacing approximated by
		// tRAS + tRP from this activate.
		b.actOK = act + t.TRAS + t.TRP
		c.rowGen++
		if c.rowListener != nil {
			c.rowListener(gb, a.Loc.Row)
		}
	}

	// CAS issue, honouring bus-turnaround constraints.
	write := a.Kind.IsWrite()
	if write {
		if c.lastDir == DirRead {
			cmd = simtime.Max(cmd, c.lastReadEnd+t.TRTW)
		}
	} else {
		if c.lastDir == DirWrite {
			cmd = simtime.Max(cmd, c.lastWriteEnd+t.TWTR)
		}
	}

	// Data burst on the shared bus.
	burst := t.BurstTime(a.Bytes)
	dataStart := cmd + t.TCAS
	if dataStart < c.busFree {
		shift := c.busFree - dataStart
		cmd += shift
		dataStart += shift
	}
	end := dataStart + burst

	// Post-access bank constraints.
	if write {
		b.preOK = simtime.Max(b.preOK, end+t.TWR)
		c.lastWriteEnd = end
	} else {
		b.preOK = simtime.Max(b.preOK, cmd+t.TRTP)
		c.lastReadEnd = end
	}
	c.busFree = end

	dir := DirRead
	if write {
		dir = DirWrite
	}
	c.stats.record(a, state, dir, c.lastDir, now, end)
	c.lastDir = dir
	return end
}

// Stats returns a snapshot of the channel's counters.
func (c *Channel) Stats() Stats { return c.stats }

// ResetStats clears the counters (used after warm-up).
func (c *Channel) ResetStats() { c.stats = Stats{} }
