package dram

import "dcasim/internal/simtime"

// Stats aggregates per-channel counters used by the paper's evaluation:
// row-buffer outcomes for reads (Figs. 16/17), accesses per bus turnaround
// (Figs. 14/15), and tag-access counts (Fig. 18).
type Stats struct {
	Accesses     int64
	Reads        int64
	Writes       int64
	TagAccesses  int64
	ReadRowHit   int64
	ReadRowMiss  int64 // closed-row activations
	ReadRowConf  int64
	WriteRowHit  int64
	WriteRowMiss int64
	WriteRowConf int64
	Turnarounds  int64
	BusyTime     simtime.Time // total data-bus occupancy plus stalls charged
}

func (s *Stats) record(a *Access, state RowState, dir, prev Dir, start, end simtime.Time) {
	s.Accesses++
	if a.Kind.IsTag() {
		s.TagAccesses++
	}
	if dir == DirWrite {
		s.Writes++
		switch state {
		case RowHit:
			s.WriteRowHit++
		case RowClosed:
			s.WriteRowMiss++
		case RowConflict:
			s.WriteRowConf++
		}
	} else {
		s.Reads++
		switch state {
		case RowHit:
			s.ReadRowHit++
		case RowClosed:
			s.ReadRowMiss++
		case RowConflict:
			s.ReadRowConf++
		}
	}
	if prev != DirNone && dir != prev {
		s.Turnarounds++
	}
	s.BusyTime += end - start
}

// Add accumulates other into s, for summing across channels.
func (s *Stats) Add(other Stats) {
	s.Accesses += other.Accesses
	s.Reads += other.Reads
	s.Writes += other.Writes
	s.TagAccesses += other.TagAccesses
	s.ReadRowHit += other.ReadRowHit
	s.ReadRowMiss += other.ReadRowMiss
	s.ReadRowConf += other.ReadRowConf
	s.WriteRowHit += other.WriteRowHit
	s.WriteRowMiss += other.WriteRowMiss
	s.WriteRowConf += other.WriteRowConf
	s.Turnarounds += other.Turnarounds
	s.BusyTime += other.BusyTime
}

// ReadRowHitRate returns the fraction of read accesses that hit an open
// row (the metric of Figs. 16/17). It returns 0 when no reads occurred.
func (s Stats) ReadRowHitRate() float64 {
	if s.Reads == 0 {
		return 0
	}
	return float64(s.ReadRowHit) / float64(s.Reads)
}

// AccessesPerTurnaround returns total accesses divided by bus turnarounds
// (the metric of Figs. 14/15). With no turnaround it returns the access
// count itself.
func (s Stats) AccessesPerTurnaround() float64 {
	if s.Turnarounds == 0 {
		return float64(s.Accesses)
	}
	return float64(s.Accesses) / float64(s.Turnarounds)
}
