// Package dram models the timing behaviour of a die-stacked DRAM channel:
// per-bank row-buffer state, activation/precharge/CAS latencies, data-bus
// occupancy, and — central to the paper — read/write bus turnarounds.
//
// The model is analytic rather than command-cycle-accurate: when the
// controller issues an access the channel computes the completion time
// from the bank and bus state and charges every constraint on the critical
// path (precharge + activate on a row conflict, tWTR/tRTW on a direction
// switch, burst occupancy on the shared data bus). Accesses on one channel
// are serviced one at a time, which is exactly the scheduling decision
// point the paper's controllers reason about. See DESIGN.md §6 for the
// justification of this simplification.
package dram

import "dcasim/internal/simtime"

// Timing collects the stacked-DRAM timing parameters of the paper's
// Table II.
type Timing struct {
	TRCD   simtime.Time // activate to CAS
	TCAS   simtime.Time // CAS to first data beat (CL; CWL assumed equal)
	TRP    simtime.Time // precharge latency
	TRAS   simtime.Time // activate to precharge minimum
	TWTR   simtime.Time // write burst end to read CAS (write→read turnaround)
	TRTP   simtime.Time // read CAS to precharge
	TRTW   simtime.Time // read burst end to write CAS (read→write turnaround)
	TWR    simtime.Time // write burst end to precharge (write recovery)
	TBurst simtime.Time // data burst for one 64 B block
}

// StackedDRAM returns the die-stacked DRAM timings used throughout the
// paper's evaluation: tRCD-tCAS-tRP-tRAS = 8-8-8-30 ns,
// tWTR-tRTP-tRTW = 5-7.5-1.67 ns, tWR-tBURST = 15-3.33 ns.
func StackedDRAM() Timing {
	return Timing{
		TRCD:   simtime.FromNS(8),
		TCAS:   simtime.FromNS(8),
		TRP:    simtime.FromNS(8),
		TRAS:   simtime.FromNS(30),
		TWTR:   simtime.FromNS(5),
		TRTP:   simtime.FromNS(7.5),
		TRTW:   simtime.FromNS(1.67),
		TWR:    simtime.FromNS(15),
		TBurst: simtime.FromNS(3.33),
	}
}

// BurstTime returns the data-bus occupancy of a transfer of the given
// number of bytes, scaling the single-block burst linearly and rounding
// up to a whole number of 16-byte beats so a 72 B TAD costs more than a
// 64 B block but less than two blocks.
func (t Timing) BurstTime(bytes int) simtime.Time {
	const beat = 16
	beats := (bytes + beat - 1) / beat
	blockBeats := 64 / beat
	return t.TBurst * simtime.Time(beats) / simtime.Time(blockBeats)
}
