// Package dcache models the die-stacked, tags-in-DRAM cache: its two
// organizations (set-associative per Loh & Hill, direct-mapped per
// Qureshi & Loh's Alloy cache), the translation of cache requests into
// DRAM access chains (paper Fig. 2), the MAP-I miss predictor hookup, and
// the optional ATCache-style SRAM tag cache.
//
// The package owns the functional tag state (what is cached, dirtiness,
// replacement order) and drives the per-channel controllers of
// internal/core, which own all timing.
package dcache

import (
	"encoding/json"
	"fmt"
	"math/bits"

	"dcasim/internal/addrmap"
)

// Org selects the DRAM cache organization.
type Org int

const (
	// SetAssoc is the Loh–Hill-style organization: each 4 KB row holds
	// 4 tag blocks followed by 60 data blocks, forming 4 sets of 15 ways
	// (the paper's 240 MB-data-in-256 MB layout). A read needs a tag
	// read, then a data read, then a tag write.
	SetAssoc Org = iota
	// DirectMapped is the Alloy-cache-style organization: each 4 KB row
	// holds 56 tag-and-data (TAD) units of 72 B; tag and data stream out
	// in a single slightly longer burst.
	DirectMapped
)

// String implements fmt.Stringer.
func (o Org) String() string {
	if o == DirectMapped {
		return "direct-mapped"
	}
	return "set-assoc"
}

// ParseOrg converts a name to an Org. Both the short CLI spellings
// ("sa", "dm") and the canonical String forms are accepted.
func ParseOrg(s string) (Org, error) {
	switch s {
	case "sa", "SA", "set-assoc", "setassoc":
		return SetAssoc, nil
	case "dm", "DM", "direct-mapped", "directmapped":
		return DirectMapped, nil
	}
	return SetAssoc, fmt.Errorf("dcache: unknown organization %q (want sa or dm)", s)
}

// MarshalJSON encodes the organization as its canonical name.
func (o Org) MarshalJSON() ([]byte, error) {
	switch o {
	case SetAssoc, DirectMapped:
		return []byte(`"` + o.String() + `"`), nil
	}
	return nil, fmt.Errorf("dcache: cannot marshal unknown organization %d", int(o))
}

// UnmarshalJSON accepts the same names ParseOrg does.
func (o *Org) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return fmt.Errorf("dcache: organization must be a JSON string: %s", b)
	}
	v, err := ParseOrg(s)
	if err != nil {
		return err
	}
	*o = v
	return nil
}

// Layout constants shared by the organizations.
const (
	BlockBytes = 64
	TADBytes   = 72 // 64 B data + 8 B tag in the direct-mapped design

	saSetsPerRow = 4
	saWays       = 15
	saTagCols    = saSetsPerRow // one tag block per set, cols 0..3

	dmTADsPerRow = 56 // 56 × 72 B = 4032 B of a 4 KB row
)

// Geometry captures the derived shape of a DRAM cache instance.
type Geometry struct {
	Org       Org
	SizeBytes int64 // total stacked-DRAM capacity (tags + data)
	RowBytes  int
	Rows      int64 // rows across all channels/ranks/banks
	Sets      int64 // cache sets (DM: one block per set)
	Ways      int
	DRAM      addrmap.Geometry

	// Power-of-two set counts (the set-associative organization always;
	// direct-mapped never, 56 TADs per row) split addresses with a mask
	// and shift instead of the div/mod pair on the warm-up fast path.
	setsPow2 bool
	setShift uint
}

// NewGeometry derives a geometry from the stacked-DRAM shape. The DRAM
// geometry's row size and block size define the layout; sizeBytes must be
// a whole number of rows.
func NewGeometry(org Org, sizeBytes int64, dram addrmap.Geometry) (Geometry, error) {
	if err := dram.Validate(); err != nil {
		return Geometry{}, err
	}
	if dram.BlockSize != BlockBytes {
		return Geometry{}, fmt.Errorf("dcache: DRAM block size %d, want %d", dram.BlockSize, BlockBytes)
	}
	if sizeBytes%int64(dram.RowBytes) != 0 {
		return Geometry{}, fmt.Errorf("dcache: size %d not a multiple of row size %d", sizeBytes, dram.RowBytes)
	}
	rows := sizeBytes / int64(dram.RowBytes)
	g := Geometry{Org: org, SizeBytes: sizeBytes, RowBytes: dram.RowBytes, Rows: rows, DRAM: dram}
	switch org {
	case SetAssoc:
		g.Sets = rows * saSetsPerRow
		g.Ways = saWays
	case DirectMapped:
		g.Sets = rows * dmTADsPerRow
		g.Ways = 1
	default:
		return Geometry{}, fmt.Errorf("dcache: unknown org %d", int(org))
	}
	if g.Sets&(g.Sets-1) == 0 {
		g.setsPow2 = true
		g.setShift = uint(bits.TrailingZeros64(uint64(g.Sets)))
	}
	return g, nil
}

// DataCapacity returns the cacheable data bytes (240 MB for the paper's
// 256 MB set-associative instance).
func (g Geometry) DataCapacity() int64 { return g.Sets * int64(g.Ways) * BlockBytes }

// SetOf maps a physical block address (block number) to its set.
func (g *Geometry) SetOf(blockAddr int64) int64 {
	if blockAddr < 0 {
		panic(fmt.Sprintf("dcache: negative block address %d", blockAddr))
	}
	if g.setsPow2 {
		return blockAddr & (g.Sets - 1)
	}
	return blockAddr % g.Sets
}

// TagOf returns the tag stored for blockAddr.
func (g *Geometry) TagOf(blockAddr int64) int64 {
	if g.setsPow2 {
		return blockAddr >> g.setShift
	}
	return blockAddr / g.Sets
}

// rowOf returns the DRAM row (linear row index) holding a set.
func (g *Geometry) rowOf(set int64) int64 {
	if g.Org == SetAssoc {
		return set / saSetsPerRow
	}
	return set / dmTADsPerRow
}

// TagLoc returns the DRAM location of the tag block for a set. For the
// direct-mapped design this is the TAD slot itself (the probe reads the
// whole TAD).
func (g *Geometry) TagLoc(set int64, m addrmap.Mapper) addrmap.Loc {
	row := g.rowOf(set)
	blocksPerRow := int64(g.DRAM.BlocksPerRow())
	var col int64
	if g.Org == SetAssoc {
		col = set % saSetsPerRow // tag blocks live in cols 0..3
	} else {
		col = set % dmTADsPerRow
	}
	return m.Map(row*blocksPerRow + col)
}

// DataLoc returns the DRAM location of a data block (set, way). Only
// meaningful for the set-associative organization; the direct-mapped
// design reads data together with the tag.
func (g *Geometry) DataLoc(set int64, way int, m addrmap.Mapper) addrmap.Loc {
	if g.Org != SetAssoc {
		return g.TagLoc(set, m)
	}
	row := g.rowOf(set)
	local := set % saSetsPerRow
	col := int64(saTagCols) + local*int64(saWays) + int64(way)
	return m.Map(row*int64(g.DRAM.BlocksPerRow()) + col)
}

// TagBlockIndex returns a dense identifier of the tag block holding a
// set's tags, the unit cached by the SRAM tag cache.
func (g *Geometry) TagBlockIndex(set int64) int64 {
	if g.Org == SetAssoc {
		return set // one tag block per set
	}
	return set / dmTADsPerRow
}

// TagRowSiblings returns the tag-block indices sharing the DRAM row of
// set, used by the tag cache's spatial prefetch.
func (g *Geometry) TagRowSiblings(set int64) []int64 {
	if g.Org != SetAssoc {
		return nil
	}
	base := set - set%saSetsPerRow
	sib := make([]int64, saSetsPerRow)
	for i := range sib {
		sib[i] = base + int64(i)
	}
	return sib
}
