package dcache

import "testing"

func smallTags(t *testing.T) *tagStore {
	t.Helper()
	g, err := NewGeometry(SetAssoc, 1<<20, paperDRAM()) // 1024 sets x 15 ways
	if err != nil {
		t.Fatal(err)
	}
	return newTagStore(g)
}

func TestTagLookupInstall(t *testing.T) {
	ts := smallTags(t)
	addr := int64(12345)
	if _, way := ts.lookup(addr); way != -1 {
		t.Fatal("empty store reported a hit")
	}
	set := ts.geom.SetOf(addr)
	ts.install(addr, set, 3, false)
	s, way := ts.lookup(addr)
	if s != set || way != 3 {
		t.Fatalf("lookup found (%d,%d), want (%d,3)", s, way, set)
	}
}

func TestTagAliasesDistinguished(t *testing.T) {
	ts := smallTags(t)
	a := int64(100)
	alias := a + ts.geom.Sets // same set, different tag
	set := ts.geom.SetOf(a)
	ts.install(a, set, 0, false)
	if _, way := ts.lookup(alias); way != -1 {
		t.Fatal("alias with different tag hit")
	}
}

func TestVictimPrefersInvalid(t *testing.T) {
	ts := smallTags(t)
	set := int64(7)
	ts.install(int64(7), set, 0, false)
	if vw := ts.victim(set); vw == 0 {
		t.Fatal("victim chose an occupied way while invalid ways exist")
	}
}

func TestVictimLRU(t *testing.T) {
	ts := smallTags(t)
	set := int64(7)
	// Fill all ways; way 0 becomes LRU unless touched.
	for w := 0; w < ts.geom.Ways; w++ {
		ts.install(int64(7)+int64(w)*ts.geom.Sets, set, w, false)
	}
	ts.touch(set, 0) // refresh way 0; way 1 is now LRU
	if vw := ts.victim(set); vw != 1 {
		t.Fatalf("victim way %d, want 1 (LRU)", vw)
	}
}

func TestDirtyTracking(t *testing.T) {
	ts := smallTags(t)
	set := int64(3)
	ts.install(int64(3), set, 0, false)
	if ts.dirty(set, 0) {
		t.Fatal("clean install reported dirty")
	}
	ts.setDirty(set, 0)
	if !ts.dirty(set, 0) {
		t.Fatal("setDirty did not stick")
	}
	addr, valid, dirty := ts.victimInfo(set, 0)
	if addr != 3 || !valid || !dirty {
		t.Fatalf("victimInfo = (%d,%v,%v), want (3,true,true)", addr, valid, dirty)
	}
}

func TestVictimInfoInvalid(t *testing.T) {
	ts := smallTags(t)
	if _, valid, _ := ts.victimInfo(0, 5); valid {
		t.Fatal("empty way reported valid")
	}
}

func TestInstallReplaces(t *testing.T) {
	ts := smallTags(t)
	set := int64(9)
	ts.install(int64(9), set, 2, true)
	repl := int64(9) + 4*ts.geom.Sets
	ts.install(repl, set, 2, false)
	if _, way := ts.lookup(int64(9)); way != -1 {
		t.Fatal("replaced block still present")
	}
	if _, way := ts.lookup(repl); way != 2 {
		t.Fatal("replacement not installed")
	}
	if ts.dirty(set, 2) {
		t.Fatal("dirtiness leaked across install")
	}
}
