package dcache

// tagStore is the functional (zero-time) tag state of the DRAM cache:
// which blocks are present, their dirtiness, and LRU order. Timing is
// charged separately by the access chains; the functional state advances
// when the corresponding tag accesses complete.
type tagStore struct {
	geom Geometry
	// Flat arrays indexed by set*ways+way. tag is the block tag, with
	// emptyTag marking an invalid way so the 15-way hit scan touches
	// only two cache lines of tag words; lru and dirty live separately
	// and are loaded only on the miss (victim) path or on a hit way.
	tag  []int64
	dbit []bool
	lru  []uint32
	tick uint32
}

// emptyTag marks an invalid way. Real tags are block addresses divided by
// the set count and therefore non-negative.
const emptyTag = int64(-1)

func newTagStore(g Geometry) *tagStore {
	n := g.Sets * int64(g.Ways)
	t := &tagStore{
		geom: g,
		tag:  make([]int64, n),
		dbit: make([]bool, n),
		lru:  make([]uint32, n),
	}
	for i := range t.tag {
		t.tag[i] = emptyTag
	}
	return t
}

func (t *tagStore) idx(set int64, way int) int64 { return set*int64(t.geom.Ways) + int64(way) }

// lookup returns the way holding blockAddr, or -1.
func (t *tagStore) lookup(blockAddr int64) (set int64, way int) {
	set = t.geom.SetOf(blockAddr)
	want := t.geom.TagOf(blockAddr)
	base := set * int64(t.geom.Ways)
	for w := 0; w < t.geom.Ways; w++ {
		if t.tag[base+int64(w)] == want {
			return set, w
		}
	}
	return set, -1
}

// lookupOrVictim combines lookup and victim selection for the warm-up
// fast path: way is -1 on a miss, in which case victim is the way to
// replace (the first invalid way if one exists, else LRU). The hit scan
// runs first and touches only the tag words; the victim scan runs only
// on a miss.
func (t *tagStore) lookupOrVictim(blockAddr int64) (set int64, way, victim int) {
	set = t.geom.SetOf(blockAddr)
	want := t.geom.TagOf(blockAddr)
	base := set * int64(t.geom.Ways)
	for w := 0; w < t.geom.Ways; w++ {
		if t.tag[base+int64(w)] == want {
			return set, w, -1
		}
	}
	victim = -1
	var oldest uint32
	for w := 0; w < t.geom.Ways; w++ {
		i := base + int64(w)
		if t.tag[i] == emptyTag {
			victim = w
			break
		}
		if victim < 0 || t.lru[i] < oldest {
			victim, oldest = w, t.lru[i]
		}
	}
	return set, -1, victim
}

// touch updates replacement state for a hit.
func (t *tagStore) touch(set int64, way int) {
	t.tick++
	t.lru[t.idx(set, way)] = t.tick
}

// dirty returns whether (set, way) holds a dirty block.
func (t *tagStore) dirty(set int64, way int) bool {
	return t.dbit[t.idx(set, way)]
}

// setDirty marks (set, way) dirty.
func (t *tagStore) setDirty(set int64, way int) {
	t.dbit[t.idx(set, way)] = true
}

// victim selects the replacement way in set: an invalid way if one
// exists, otherwise the LRU way.
func (t *tagStore) victim(set int64) int {
	victim, oldest := 0, uint32(0)
	first := true
	for w := 0; w < t.geom.Ways; w++ {
		i := t.idx(set, w)
		if t.tag[i] == emptyTag {
			return w
		}
		if first || t.lru[i] < oldest {
			victim, oldest, first = w, t.lru[i], false
		}
	}
	return victim
}

// victimInfo reports the block currently in (set, way).
func (t *tagStore) victimInfo(set int64, way int) (blockAddr int64, valid, dirty bool) {
	i := t.idx(set, way)
	if t.tag[i] == emptyTag {
		return 0, false, false
	}
	return t.tag[i]*t.geom.Sets + set, true, t.dbit[i]
}

// install places blockAddr into (set, way), replacing the previous
// occupant, and touches replacement state.
func (t *tagStore) install(blockAddr int64, set int64, way int, dirty bool) {
	i := t.idx(set, way)
	t.tag[i] = t.geom.TagOf(blockAddr)
	t.dbit[i] = dirty
	t.tick++
	t.lru[i] = t.tick
}
