package dcache

// tagStore is the functional (zero-time) tag state of the DRAM cache:
// which blocks are present, their dirtiness, and LRU order. Timing is
// charged separately by the access chains; the functional state advances
// when the corresponding tag accesses complete.
type tagStore struct {
	geom Geometry
	// Flat arrays indexed by set*ways+way. tag is the block tag;
	// meta packs validity and dirtiness; lru is a per-set stamp.
	tag  []int64
	meta []uint8
	lru  []uint32
	tick uint32
}

const (
	metaValid uint8 = 1 << 0
	metaDirty uint8 = 1 << 1
)

func newTagStore(g Geometry) *tagStore {
	n := g.Sets * int64(g.Ways)
	return &tagStore{
		geom: g,
		tag:  make([]int64, n),
		meta: make([]uint8, n),
		lru:  make([]uint32, n),
	}
}

func (t *tagStore) idx(set int64, way int) int64 { return set*int64(t.geom.Ways) + int64(way) }

// lookup returns the way holding blockAddr, or -1.
func (t *tagStore) lookup(blockAddr int64) (set int64, way int) {
	set = t.geom.SetOf(blockAddr)
	want := t.geom.TagOf(blockAddr)
	for w := 0; w < t.geom.Ways; w++ {
		i := t.idx(set, w)
		if t.meta[i]&metaValid != 0 && t.tag[i] == want {
			return set, w
		}
	}
	return set, -1
}

// lookupOrVictim combines lookup and victim selection in one way scan
// for the warm-up fast path: way is -1 on a miss, in which case victim
// is the way to replace (an invalid way if one exists, else LRU).
func (t *tagStore) lookupOrVictim(blockAddr int64) (set int64, way, victim int) {
	set = t.geom.SetOf(blockAddr)
	want := t.geom.TagOf(blockAddr)
	base := set * int64(t.geom.Ways)
	victim = -1
	invalid := -1
	var oldest uint32
	for w := 0; w < t.geom.Ways; w++ {
		i := base + int64(w)
		if t.meta[i]&metaValid == 0 {
			if invalid < 0 {
				invalid = w
			}
			continue
		}
		if t.tag[i] == want {
			return set, w, -1
		}
		if victim < 0 || t.lru[i] < oldest {
			victim, oldest = w, t.lru[i]
		}
	}
	if invalid >= 0 {
		victim = invalid
	}
	return set, -1, victim
}

// touch updates replacement state for a hit.
func (t *tagStore) touch(set int64, way int) {
	t.tick++
	t.lru[t.idx(set, way)] = t.tick
}

// dirty returns whether (set, way) holds a dirty block.
func (t *tagStore) dirty(set int64, way int) bool {
	return t.meta[t.idx(set, way)]&metaDirty != 0
}

// setDirty marks (set, way) dirty.
func (t *tagStore) setDirty(set int64, way int) {
	t.meta[t.idx(set, way)] |= metaDirty
}

// victim selects the replacement way in set: an invalid way if one
// exists, otherwise the LRU way.
func (t *tagStore) victim(set int64) int {
	victim, oldest := 0, uint32(0)
	first := true
	for w := 0; w < t.geom.Ways; w++ {
		i := t.idx(set, w)
		if t.meta[i]&metaValid == 0 {
			return w
		}
		if first || t.lru[i] < oldest {
			victim, oldest, first = w, t.lru[i], false
		}
	}
	return victim
}

// victimInfo reports the block currently in (set, way).
func (t *tagStore) victimInfo(set int64, way int) (blockAddr int64, valid, dirty bool) {
	i := t.idx(set, way)
	if t.meta[i]&metaValid == 0 {
		return 0, false, false
	}
	return t.tag[i]*t.geom.Sets + set, true, t.meta[i]&metaDirty != 0
}

// install places blockAddr into (set, way), replacing the previous
// occupant, and touches replacement state.
func (t *tagStore) install(blockAddr int64, set int64, way int, dirty bool) {
	i := t.idx(set, way)
	t.tag[i] = t.geom.TagOf(blockAddr)
	t.meta[i] = metaValid
	if dirty {
		t.meta[i] |= metaDirty
	}
	t.tick++
	t.lru[i] = t.tick
}
