package dcache

import (
	"testing"

	"dcasim/internal/core"
	"dcasim/internal/event"
	"dcasim/internal/mainmem"
	"dcasim/internal/simtime"
	"dcasim/internal/tagcache"

	"dcasim/internal/dram"
)

func rig(t *testing.T, org Org, mutate func(*Config)) (*event.Engine, *DCache, *mainmem.Memory) {
	t.Helper()
	eng := &event.Engine{}
	mem := mainmem.New(eng, mainmem.DefaultConfig())
	ctrl := core.DefaultConfig(core.DCA)
	// Tiny write queue with a zero low threshold so writes drain as soon
	// as the channel idles — the access-mix assertions below count
	// issued DRAM accesses.
	ctrl.WriteQueueCap = 2
	ctrl.WriteFlushLow = 0.2
	cfg := Config{
		Org:       org,
		SizeBytes: 1 << 20,
		DRAM:      paperDRAM(),
		Timing:    dram.StackedDRAM(),
		Ctrl:      ctrl,
		Cores:     2,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	dc, err := New(eng, cfg, mem)
	if err != nil {
		t.Fatal(err)
	}
	return eng, dc, mem
}

func TestReadHitChainSetAssoc(t *testing.T) {
	eng, dc, mem := rig(t, SetAssoc, nil)
	dc.WarmRead(42, 0, 1) // install the block

	var doneAt simtime.Time
	dc.Read(42, 0, 1, event.Func(func(now simtime.Time) { doneAt = now }))
	eng.Run()

	if doneAt == 0 {
		t.Fatal("read never completed")
	}
	s := dc.Stats()
	if s.ReadReqs != 1 || s.ReadHits != 1 || s.ReadMisses != 0 {
		t.Fatalf("request stats: %+v", s)
	}
	ds := dc.DRAMStats()
	// Fig. 2: RTr + RDr reads and a WTr write, two of them tag accesses.
	if ds.Reads != 2 || ds.Writes != 1 || ds.TagAccesses != 2 {
		t.Fatalf("access mix reads=%d writes=%d tags=%d, want 2/1/2", ds.Reads, ds.Writes, ds.TagAccesses)
	}
	if mem.Reads != 0 {
		t.Fatal("hit went to main memory")
	}
}

func TestReadMissRefillSetAssoc(t *testing.T) {
	eng, dc, mem := rig(t, SetAssoc, nil)
	var doneAt simtime.Time
	dc.Read(42, 0, 1, event.Func(func(now simtime.Time) { doneAt = now }))
	eng.Run()

	s := dc.Stats()
	if s.ReadMisses != 1 || s.RefillReqs != 1 {
		t.Fatalf("miss stats: %+v", s)
	}
	if mem.Reads != 1 {
		t.Fatalf("main memory reads = %d, want 1", mem.Reads)
	}
	// Miss penalty includes the 50 ns fetch.
	if doneAt < 50*simtime.Nanosecond {
		t.Fatalf("miss completed at %v, faster than main memory", doneAt)
	}
	// The refill installed the block: a second read hits.
	dc.Read(42, 0, 1, event.Callback{})
	eng.Run()
	if dc.Stats().ReadHits != 1 {
		t.Fatal("refill did not install the block")
	}
	// Refill translation (Fig. 2): RTw read + WD/WT writes beyond the
	// original RTr.
	ds := dc.DRAMStats()
	if ds.Writes < 2 {
		t.Fatalf("refill produced %d writes, want >= 2", ds.Writes)
	}
}

func TestReadDirectMappedSingleAccess(t *testing.T) {
	eng, dc, _ := rig(t, DirectMapped, nil)
	dc.WarmRead(42, 0, 1)
	dc.Read(42, 0, 1, event.Callback{})
	eng.Run()
	ds := dc.DRAMStats()
	// One combined TAD read; no separate data read, no tag write.
	if ds.Reads != 1 || ds.Writes != 0 {
		t.Fatalf("direct-mapped hit: reads=%d writes=%d, want 1/0", ds.Reads, ds.Writes)
	}
}

func TestWritebackHit(t *testing.T) {
	eng, dc, _ := rig(t, SetAssoc, nil)
	dc.WarmRead(42, 0, 1)
	dc.Writeback(42, 0)
	eng.Run()
	s := dc.Stats()
	if s.WritebackReqs != 1 || s.WritebackHits != 1 {
		t.Fatalf("writeback stats: %+v", s)
	}
	ds := dc.DRAMStats()
	// RTw + WDw + WTw.
	if ds.Reads != 1 || ds.Writes != 2 {
		t.Fatalf("writeback hit accesses: reads=%d writes=%d, want 1/2", ds.Reads, ds.Writes)
	}
}

func TestWritebackMissDirtyVictim(t *testing.T) {
	eng, dc, mem := rig(t, SetAssoc, nil)
	g := dc.Geometry()
	// Fill one set with dirty blocks so the allocation displaces one.
	set := g.SetOf(42)
	for w := 0; w < g.Ways; w++ {
		dc.WarmWrite(42+int64(w+1)*g.Sets, 0)
	}
	if set != g.SetOf(42+g.Sets) {
		t.Fatal("test setup: aliases must share a set")
	}
	dc.Writeback(42, 0)
	eng.Run()
	s := dc.Stats()
	if s.WritebackMiss != 1 || s.VictimWrites != 1 {
		t.Fatalf("writeback miss stats: %+v", s)
	}
	// Fig. 2 with dirty victim: RTw + RDw reads, WDw + WTw writes, and
	// one main-memory write for the victim.
	ds := dc.DRAMStats()
	if ds.Reads != 2 || ds.Writes != 2 {
		t.Fatalf("accesses reads=%d writes=%d, want 2/2", ds.Reads, ds.Writes)
	}
	if mem.Writes != 1 {
		t.Fatalf("main memory writes = %d, want 1", mem.Writes)
	}
}

func TestDirectMappedWritebackNoVictimRead(t *testing.T) {
	eng, dc, mem := rig(t, DirectMapped, nil)
	g := dc.Geometry()
	dc.WarmWrite(42+g.Sets, 0) // dirty occupant of the same set
	dc.Writeback(42, 0)
	eng.Run()
	ds := dc.DRAMStats()
	// The TAD probe already carried the victim's data: exactly one read
	// (the probe) and one TAD write; the victim still reaches memory.
	if ds.Reads != 1 || ds.Writes != 1 {
		t.Fatalf("accesses reads=%d writes=%d, want 1/1", ds.Reads, ds.Writes)
	}
	if mem.Writes != 1 {
		t.Fatalf("main memory writes = %d, want 1", mem.Writes)
	}
}

func TestMAPIOverlapsMissFetch(t *testing.T) {
	// With MAP-I trained to predict misses, the fetch overlaps the tag
	// probe, so the miss completes sooner than probe+fetch in series.
	missLatency := func(useMAPI bool) simtime.Time {
		eng, dc, _ := rig(t, SetAssoc, func(c *Config) { c.UseMAPI = useMAPI })
		if useMAPI {
			// Train the predictor: this PC misses.
			for i := 0; i < 8; i++ {
				dc.WarmRead(int64(1000+i)*dc.Geometry().Sets, 0, 99) // distinct sets... distinct addrs
			}
			// The warm reads install blocks; use fresh addresses below.
		}
		var done simtime.Time
		dc.Read(7, 0, 99, event.Func(func(now simtime.Time) { done = now }))
		eng.Run()
		return done
	}
	plain := missLatency(false)
	overlapped := missLatency(true)
	if overlapped >= plain {
		t.Fatalf("MAP-I did not hide the miss: %v vs %v", overlapped, plain)
	}
}

func TestTagCacheSkipsProbe(t *testing.T) {
	eng, dc, _ := rig(t, SetAssoc, func(c *Config) {
		tc := tagcache.DefaultConfig(64 << 10)
		c.TagCache = &tc
	})
	dc.WarmRead(42, 0, 1)
	dc.Read(42, 0, 1, event.Callback{}) // tag-cache miss: fetches tag block + siblings
	eng.Run()
	first := dc.DRAMStats().TagAccesses
	dc.Read(42, 0, 1, event.Callback{}) // tag-cache hit: no DRAM tag read, just WT
	eng.Run()
	second := dc.DRAMStats().TagAccesses - first
	// Second read: tag cache hit leaves only the replacement-update WT.
	if second != 1 {
		t.Fatalf("tag accesses on tag-cache hit = %d, want 1 (the WT)", second)
	}
	tc := dc.TagCache()
	if tc == nil || tc.Hits == 0 {
		t.Fatal("tag cache not engaged")
	}
}

func TestTagCacheRequiresSetAssoc(t *testing.T) {
	eng := &event.Engine{}
	mem := mainmem.New(eng, mainmem.DefaultConfig())
	tc := tagcache.DefaultConfig(64 << 10)
	_, err := New(eng, Config{
		Org:       DirectMapped,
		SizeBytes: 1 << 20,
		DRAM:      paperDRAM(),
		Timing:    dram.StackedDRAM(),
		Ctrl:      core.DefaultConfig(core.CD),
		Cores:     1,
		TagCache:  &tc,
	}, mem)
	if err == nil {
		t.Fatal("tag cache on direct-mapped organization accepted")
	}
}

func TestRowSpan(t *testing.T) {
	_, dc, _ := rig(t, SetAssoc, nil)
	lo, hi := dc.RowSpan(10)
	if hi-lo != saSetsPerRow || 10 < lo || 10 >= hi {
		t.Fatalf("RowSpan(10) = [%d,%d)", lo, hi)
	}
	_, dm, _ := rig(t, DirectMapped, nil)
	lo, hi = dm.RowSpan(100)
	if hi-lo != dmTADsPerRow || 100 < lo || 100 >= hi {
		t.Fatalf("direct-mapped RowSpan(100) = [%d,%d)", lo, hi)
	}
}

func TestResetStats(t *testing.T) {
	eng, dc, _ := rig(t, SetAssoc, nil)
	dc.Read(1, 0, 1, event.Callback{})
	eng.Run()
	dc.ResetStats()
	if dc.Stats().ReadReqs != 0 || dc.DRAMStats().Accesses != 0 {
		t.Fatal("ResetStats left counters")
	}
	// State survives: the earlier refill still hits.
	dc.Read(1, 0, 1, event.Callback{})
	eng.Run()
	if dc.Stats().ReadHits != 1 {
		t.Fatal("ResetStats dropped tag state")
	}
}

func TestWarmAccessors(t *testing.T) {
	_, dc, _ := rig(t, SetAssoc, nil)
	dc.WarmRead(5, 0, 1)
	dc.WarmWrite(6, 0)
	set, way := dc.tags.lookup(5)
	if way < 0 || dc.tags.dirty(set, way) {
		t.Fatal("WarmRead should install clean")
	}
	set, way = dc.tags.lookup(6)
	if way < 0 || !dc.tags.dirty(set, way) {
		t.Fatal("WarmWrite should install dirty")
	}
}
