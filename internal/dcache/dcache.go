package dcache

import (
	"fmt"

	"dcasim/internal/addrmap"
	"dcasim/internal/core"
	"dcasim/internal/dram"
	"dcasim/internal/event"
	"dcasim/internal/mainmem"
	"dcasim/internal/mempred"
	"dcasim/internal/simtime"
	"dcasim/internal/tagcache"
)

// Config assembles a DRAM cache instance.
type Config struct {
	Org       Org
	SizeBytes int64
	DRAM      addrmap.Geometry
	Timing    dram.Timing
	XORRemap  bool
	Ctrl      core.Config
	UseMAPI   bool
	TagCache  *tagcache.Config // nil disables the SRAM tag cache
	// BEARProbe models BEAR's Bandwidth Efficient Writeback Probe (Chou
	// et al., ISCA 2015): writebacks that hit skip the tag-read probe.
	// Modeled as an ideal probe filter; an extension beyond the paper's
	// baseline configurations (its related work argues DCA composes
	// with BEAR by scheduling the residual accesses).
	BEARProbe bool
	Cores     int
}

// Stats aggregates request-level counters. DRAM- and controller-level
// counters are reported separately via DRAMStats and CtrlStats.
type Stats struct {
	ReadReqs      int64
	ReadHits      int64
	ReadMisses    int64
	WritebackReqs int64
	WritebackHits int64
	WritebackMiss int64
	RefillReqs    int64
	VictimWrites  int64 // dirty victims written to main memory
	BEARElided    int64 // writeback tag probes removed by the BEAR filter

	ReadsCompleted int64
	ReadLatency    simtime.Time // summed arrival→completion time of reads
	WastedFetches  int64        // MAP-I predicted miss but the tag probe hit
}

// AvgReadLatency returns the mean DRAM-cache read request latency, the
// quantity behind the paper's L2-miss-latency figures.
func (s Stats) AvgReadLatency() simtime.Time {
	if s.ReadsCompleted == 0 {
		return 0
	}
	return s.ReadLatency / simtime.Time(s.ReadsCompleted)
}

// ReadHitRate returns the fraction of read requests that hit.
func (s Stats) ReadHitRate() float64 {
	if s.ReadReqs == 0 {
		return 0
	}
	return float64(s.ReadHits) / float64(s.ReadReqs)
}

// DCache is a die-stacked DRAM cache with tags in DRAM.
type DCache struct {
	eng    *event.Engine
	geom   Geometry
	mapper addrmap.Mapper
	tags   *tagStore
	chans  []*dram.Channel
	ctrls  []*core.Controller
	mem    *mainmem.Memory
	mapi   *mempred.MAPI
	tcache *tagcache.TagCache
	bear   bool

	// rrPool recycles retired readReq records so the read path allocates
	// nothing in steady state.
	rrPool []*readReq

	stats Stats
}

var _ event.Handler = (*DCache)(nil)

// New builds the DRAM cache, its channels, and one controller per
// channel.
func New(eng *event.Engine, cfg Config, mem *mainmem.Memory) (*DCache, error) {
	geom, err := NewGeometry(cfg.Org, cfg.SizeBytes, cfg.DRAM)
	if err != nil {
		return nil, err
	}
	if err := cfg.Ctrl.Validate(); err != nil {
		return nil, err
	}
	if cfg.Cores <= 0 {
		return nil, fmt.Errorf("dcache: non-positive core count %d", cfg.Cores)
	}
	d := &DCache{
		eng:    eng,
		geom:   geom,
		mapper: addrmap.Mapper{Geom: cfg.DRAM, XORRemap: cfg.XORRemap},
		tags:   newTagStore(geom),
		mem:    mem,
	}
	for i := 0; i < cfg.DRAM.Channels; i++ {
		ch := dram.NewChannel(cfg.Timing, cfg.DRAM)
		d.chans = append(d.chans, ch)
		d.ctrls = append(d.ctrls, core.NewController(eng, ch, cfg.Ctrl, cfg.Cores))
	}
	if cfg.UseMAPI {
		d.mapi = mempred.New(cfg.Cores)
	}
	if cfg.TagCache != nil {
		if cfg.Org != SetAssoc {
			return nil, fmt.Errorf("dcache: tag cache study applies to the set-associative organization")
		}
		d.tcache = tagcache.New(*cfg.TagCache)
	}
	d.bear = cfg.BEARProbe
	return d, nil
}

// Geometry returns the derived cache geometry.
func (d *DCache) Geometry() Geometry { return d.geom }

// Stats returns the request-level counters.
func (d *DCache) Stats() Stats { return d.stats }

// DRAMStats sums the channel counters.
func (d *DCache) DRAMStats() dram.Stats {
	var s dram.Stats
	for _, ch := range d.chans {
		s.Add(ch.Stats())
	}
	return s
}

// CtrlStats sums the controller counters.
func (d *DCache) CtrlStats() core.Stats {
	var s core.Stats
	for _, c := range d.ctrls {
		cs := c.Stats()
		s.PRIssued += cs.PRIssued
		s.LRIssued += cs.LRIssued
		s.WritesIssued += cs.WritesIssued
		s.OFSIssues += cs.OFSIssues
		s.ScheduleAllOn += cs.ScheduleAllOn
		s.ForcedFlushes += cs.ForcedFlushes
		s.IdleSlots += cs.IdleSlots
		s.ReadQueueWait += cs.ReadQueueWait
		s.WriteQueueWait += cs.WriteQueueWait
	}
	return s
}

// TagCache returns the SRAM tag cache, or nil.
func (d *DCache) TagCache() *tagcache.TagCache { return d.tcache }

// Predictor returns the MAP-I instance, or nil.
func (d *DCache) Predictor() *mempred.MAPI { return d.mapi }

// ResetStats clears request, controller, channel, tag-cache, and main
// memory statistics at the warm-up boundary.
func (d *DCache) ResetStats() {
	d.stats = Stats{}
	for _, ch := range d.chans {
		ch.ResetStats()
	}
	for _, c := range d.ctrls {
		c.ResetStats()
	}
	if d.tcache != nil {
		d.tcache.ResetStats()
	}
}

func (d *DCache) enqueue(kind dram.Kind, loc addrmap.Loc, bytes, coreID int, reqType core.RequestType, done event.Callback) {
	acc := dram.Access{Kind: kind, Loc: loc, Bytes: bytes, App: coreID, Done: done}
	d.ctrls[loc.Channel].Enqueue(acc, reqType)
}

// readReq tracks one in-flight cache read request across its tag probe
// and (on a miss) the overlapped main-memory fetch. Records are pooled:
// a readReq implements event.Handler and is released back to the cache's
// free list once its last outstanding event has fired.
type readReq struct {
	d             *DCache
	addr          int64
	coreID        int
	pc            uint64
	start         simtime.Time
	predictedMiss bool
	fetchStarted  bool
	memDone       bool
	memAt         simtime.Time
	tagDone       bool
	hit           bool
	finished      bool
	done          event.Callback
}

// Event kinds a readReq schedules on itself, carried in Payload.U64.
const (
	rrTagDone  = iota // the tag probe (or TAD read) completed
	rrMemDone         // the overlapped main-memory fetch completed
	rrDataDone        // the hit-path data read completed
)

// OnEvent implements event.Handler, dispatching on the event kind.
func (r *readReq) OnEvent(now simtime.Time, p event.Payload) {
	switch p.U64 {
	case rrTagDone:
		r.afterTag(now)
	case rrMemDone:
		r.memDone = true
		r.memAt = now
		if r.tagDone && !r.hit {
			r.finishMiss(now)
		}
	case rrDataDone:
		r.complete(now)
	}
	r.maybeFree()
}

// maybeFree returns the record to the pool once no outstanding event can
// still reference it: the request finished and any speculative memory
// fetch (which may outlive a hit as a wasted fetch) has also landed.
func (r *readReq) maybeFree() {
	if !r.finished || (r.fetchStarted && !r.memDone) {
		return
	}
	d := r.d
	*r = readReq{}
	d.rrPool = append(d.rrPool, r)
}

// getReadReq takes a record off the free list, or grows the pool.
func (d *DCache) getReadReq() *readReq {
	if n := len(d.rrPool); n > 0 {
		r := d.rrPool[n-1]
		d.rrPool[n-1] = nil
		d.rrPool = d.rrPool[:n-1]
		return r
	}
	return new(readReq)
}

// Read issues a cache read request for block address addr (a block
// number, i.e. physical address >> 6). done fires when the data is
// available to the requester.
func (d *DCache) Read(addr int64, coreID int, pc uint64, done event.Callback) {
	d.stats.ReadReqs++
	r := d.getReadReq()
	*r = readReq{d: d, addr: addr, coreID: coreID, pc: pc, start: d.eng.Now(), done: done}

	if d.mapi != nil && d.mapi.PredictMiss(coreID, pc) {
		r.predictedMiss = true
		r.startFetch()
	}

	set := d.geom.SetOf(addr)
	probeKind, probeBytes := dram.ReadTag, BlockBytes
	if d.geom.Org == DirectMapped {
		probeKind, probeBytes = dram.ReadTAD, TADBytes
	}
	afterTag := event.Callback{H: r, P: event.Payload{U64: rrTagDone}}
	if d.tcache != nil {
		hit, fetches := d.tcache.Lookup(d.geom.TagBlockIndex(set), d.geom.TagRowSiblings(set))
		if hit {
			r.afterTag(d.eng.Now())
			r.maybeFree()
			return
		}
		d.enqueueTagFetches(set, fetches, coreID, core.ReadReq, afterTag)
		return
	}
	d.enqueue(probeKind, d.geom.TagLoc(set, d.mapper), probeBytes, coreID, core.ReadReq, afterTag)
}

// enqueueTagFetches issues the demanded tag-block read plus the tag
// cache's spatial prefetches of sibling tag blocks in the same row.
func (d *DCache) enqueueTagFetches(set int64, fetches, coreID int, reqType core.RequestType, done event.Callback) {
	d.enqueue(dram.ReadTag, d.geom.TagLoc(set, d.mapper), BlockBytes, coreID, reqType, done)
	issued := 1
	for _, sib := range d.geom.TagRowSiblings(set) {
		if issued >= fetches {
			break
		}
		if sib == set {
			continue
		}
		d.enqueue(dram.ReadTag, d.geom.TagLoc(sib, d.mapper), BlockBytes, coreID, reqType, event.Callback{})
		issued++
	}
}

func (r *readReq) startFetch() {
	r.fetchStarted = true
	r.d.mem.Read(event.Callback{H: r, P: event.Payload{U64: rrMemDone}})
}

func (r *readReq) afterTag(now simtime.Time) {
	d := r.d
	set, way := d.tags.lookup(r.addr)
	r.tagDone = true
	if way >= 0 {
		r.hit = true
		d.stats.ReadHits++
		d.tags.touch(set, way)
		if d.mapi != nil {
			d.mapi.Update(r.coreID, r.pc, r.predictedMiss, true)
			if r.predictedMiss {
				d.stats.WastedFetches++
			}
		}
		if d.geom.Org == SetAssoc {
			// Data read (PR), then the replacement-bit tag write.
			d.enqueue(dram.ReadData, d.geom.DataLoc(set, way, d.mapper), BlockBytes, r.coreID, core.ReadReq,
				event.Callback{H: r, P: event.Payload{U64: rrDataDone}})
			d.enqueue(dram.WriteTag, d.geom.TagLoc(set, d.mapper), BlockBytes, r.coreID, core.ReadReq, event.Callback{})
		} else {
			// The TAD probe already carried the data.
			r.complete(now)
		}
		return
	}
	d.stats.ReadMisses++
	if d.mapi != nil {
		d.mapi.Update(r.coreID, r.pc, r.predictedMiss, false)
	}
	if !r.fetchStarted {
		r.startFetch()
	} else if r.memDone {
		r.finishMiss(simtime.Max(now, r.memAt))
	}
}

func (r *readReq) finishMiss(now simtime.Time) {
	if r.finished {
		return
	}
	r.complete(now)
	r.d.stats.RefillReqs++
	r.d.write(r.addr, r.coreID, core.RefillReq)
}

func (r *readReq) complete(now simtime.Time) {
	if r.finished {
		return
	}
	r.finished = true
	r.d.stats.ReadsCompleted++
	r.d.stats.ReadLatency += now - r.start
	r.done.Invoke(now)
}

// Writeback issues a dirty-eviction write request from the upper-level
// cache. It is fire-and-forget: writebacks are never on the critical
// path.
func (d *DCache) Writeback(addr int64, coreID int) {
	d.stats.WritebackReqs++
	d.write(addr, coreID, core.WritebackReq)
}

// Event kinds the DCache schedules on itself for the write path. The
// request context is packed into Payload.U64 (kind, core, way, request
// type) with the block address or set in Payload.I64 — small scalars, so
// a write-path continuation needs no allocated closure.
const (
	dcWriteTagDone   = iota // write-path tag probe completed (I64 = addr)
	dcVictimReadDone        // victim data read completed (I64 = set)
)

func packWriteCtx(kind, coreID, way int, reqType core.RequestType) uint64 {
	return uint64(kind) | uint64(coreID)<<8 | uint64(way)<<24 | uint64(reqType)<<40
}

// OnEvent implements event.Handler for write-path continuations.
func (d *DCache) OnEvent(now simtime.Time, p event.Payload) {
	kind := int(p.U64 & 0xff)
	coreID := int(p.U64 >> 8 & 0xffff)
	way := int(p.U64 >> 24 & 0xffff)
	reqType := core.RequestType(p.U64 >> 40 & 0xff)
	switch kind {
	case dcWriteTagDone:
		d.afterWriteTag(p.I64, coreID, reqType, now)
	case dcVictimReadDone:
		// The victim's data is out of the array (Fig. 2's RDw): stream
		// it to main memory, then perform the data+tag writes.
		d.mem.Write()
		d.issueDataWrite(p.I64, way, coreID, reqType)
	}
}

// write implements the shared writeback/refill translation (Fig. 2): a
// tag read, then data+tag writes, with a victim data read when a dirty
// block must be displaced.
func (d *DCache) write(addr int64, coreID int, reqType core.RequestType) {
	set := d.geom.SetOf(addr)
	afterTag := event.Callback{H: d, P: event.Payload{
		I64: addr, U64: packWriteCtx(dcWriteTagDone, coreID, 0, reqType),
	}}

	// BEAR writeback probe: a hit needs no tag read before the writes.
	if d.bear && reqType == core.WritebackReq {
		if _, way := d.tags.lookup(addr); way >= 0 {
			d.stats.BEARElided++
			d.afterWriteTag(addr, coreID, reqType, d.eng.Now())
			return
		}
	}

	if d.tcache != nil {
		hit, fetches := d.tcache.Lookup(d.geom.TagBlockIndex(set), d.geom.TagRowSiblings(set))
		if hit {
			d.afterWriteTag(addr, coreID, reqType, d.eng.Now())
			return
		}
		d.enqueueTagFetches(set, fetches, coreID, reqType, afterTag)
		return
	}
	probeKind, probeBytes := dram.ReadTag, BlockBytes
	if d.geom.Org == DirectMapped {
		// The probe streams the whole TAD so a dirty victim's data
		// arrives with the tag — no separate victim read is needed.
		probeBytes = TADBytes
	}
	d.enqueue(probeKind, d.geom.TagLoc(set, d.mapper), probeBytes, coreID, reqType, afterTag)
}

func (d *DCache) afterWriteTag(addr int64, coreID int, reqType core.RequestType, now simtime.Time) {
	set, way := d.tags.lookup(addr)
	if way >= 0 {
		if reqType == core.WritebackReq {
			d.stats.WritebackHits++
			d.tags.setDirty(set, way)
		}
		d.tags.touch(set, way)
		d.issueDataWrite(set, way, coreID, reqType)
		return
	}

	if reqType == core.WritebackReq {
		d.stats.WritebackMiss++
	}
	vw := d.tags.victim(set)
	_, valid, dirty := d.tags.victimInfo(set, vw)
	writeVictim := valid && dirty
	d.tags.install(addr, set, vw, reqType == core.WritebackReq)
	if writeVictim {
		d.stats.VictimWrites++
		if d.geom.Org == SetAssoc {
			// Read the victim's data out of the array before
			// overwriting it (Fig. 2's RDw); completion continues in
			// OnEvent's dcVictimReadDone arm.
			d.enqueue(dram.ReadData, d.geom.DataLoc(set, vw, d.mapper), BlockBytes, coreID, reqType,
				event.Callback{H: d, P: event.Payload{
					I64: set, U64: packWriteCtx(dcVictimReadDone, coreID, vw, reqType),
				}})
			return
		}
		// Direct-mapped: the probe already carried the victim TAD.
		d.mem.Write()
	}
	d.issueDataWrite(set, vw, coreID, reqType)
}

// issueDataWrite emits the write half of a writeback/refill: WD+WT for
// the set-associative design, one combined TAD write for direct-mapped.
func (d *DCache) issueDataWrite(set int64, way, coreID int, reqType core.RequestType) {
	if d.geom.Org == SetAssoc {
		d.enqueue(dram.WriteData, d.geom.DataLoc(set, way, d.mapper), BlockBytes, coreID, reqType, event.Callback{})
		d.enqueue(dram.WriteTag, d.geom.TagLoc(set, d.mapper), BlockBytes, coreID, reqType, event.Callback{})
		return
	}
	d.enqueue(dram.WriteTAD, d.geom.TagLoc(set, d.mapper), TADBytes, coreID, reqType, event.Callback{})
}

// WarmRead performs a functional (zero-time) read used during cache
// warm-up: misses install the block clean, as a refill would, and the
// MAP-I predictor trains on the outcome.
func (d *DCache) WarmRead(addr int64, coreID int, pc uint64) {
	set, way, vw := d.tags.lookupOrVictim(addr)
	hit := way >= 0
	if d.mapi != nil {
		p := d.mapi.PredictMiss(coreID, pc)
		d.mapi.Update(coreID, pc, p, hit)
	}
	if hit {
		d.tags.touch(set, way)
		return
	}
	d.tags.install(addr, set, vw, false)
}

// WarmWrite performs a functional writeback: hits become dirty, misses
// allocate dirty.
func (d *DCache) WarmWrite(addr int64, coreID int) {
	set, way, vw := d.tags.lookupOrVictim(addr)
	if way >= 0 {
		d.tags.setDirty(set, way)
		d.tags.touch(set, way)
		return
	}
	d.tags.install(addr, set, vw, true)
}

// RowSpan returns the contiguous block-address window whose members map
// to the same DRAM row as addr, used by the Lee DRAM-aware L2 writeback
// policy to find row-mates.
func (d *DCache) RowSpan(addr int64) (lo, hi int64) {
	var span int64
	if d.geom.Org == SetAssoc {
		span = saSetsPerRow
	} else {
		span = dmTADsPerRow
	}
	set := d.geom.SetOf(addr)
	lo = addr - set%span
	return lo, lo + span
}
