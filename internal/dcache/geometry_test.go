package dcache

import (
	"testing"

	"dcasim/internal/addrmap"
)

func paperDRAM() addrmap.Geometry {
	return addrmap.Geometry{Channels: 4, Ranks: 1, Banks: 16, RowBytes: 4096, BlockSize: 64}
}

func TestSetAssocGeometry(t *testing.T) {
	g, err := NewGeometry(SetAssoc, 256<<20, paperDRAM())
	if err != nil {
		t.Fatal(err)
	}
	if g.Rows != 65536 {
		t.Fatalf("rows = %d, want 65536", g.Rows)
	}
	if g.Sets != 65536*4 || g.Ways != 15 {
		t.Fatalf("sets/ways = %d/%d, want 262144/15", g.Sets, g.Ways)
	}
	// The paper's 240 MB data capacity in a 256 MB array.
	if got := g.DataCapacity(); got != 240<<20 {
		t.Fatalf("data capacity = %d MB, want 240", got>>20)
	}
}

func TestDirectMappedGeometry(t *testing.T) {
	g, err := NewGeometry(DirectMapped, 256<<20, paperDRAM())
	if err != nil {
		t.Fatal(err)
	}
	if g.Sets != g.Rows*dmTADsPerRow || g.Ways != 1 {
		t.Fatalf("sets/ways = %d/%d", g.Sets, g.Ways)
	}
	// 56 x 72 B TADs use 4032 of 4096 row bytes.
	if got := g.DataCapacity(); got != g.Sets*64 {
		t.Fatalf("data capacity = %d", got)
	}
}

func TestGeometryErrors(t *testing.T) {
	if _, err := NewGeometry(SetAssoc, 1000, paperDRAM()); err == nil {
		t.Error("non-row-multiple size accepted")
	}
	bad := paperDRAM()
	bad.BlockSize = 128
	if _, err := NewGeometry(SetAssoc, 256<<20, bad); err == nil {
		t.Error("non-64B block accepted")
	}
}

func TestSetMapping(t *testing.T) {
	g, _ := NewGeometry(SetAssoc, 16<<20, paperDRAM())
	if g.SetOf(0) != 0 || g.SetOf(g.Sets) != 0 || g.SetOf(g.Sets+5) != 5 {
		t.Fatal("SetOf is not addr mod sets")
	}
	if g.TagOf(g.Sets+5) != 1 {
		t.Fatal("TagOf is not addr div sets")
	}
}

func TestTagAndDataLocations(t *testing.T) {
	g, _ := NewGeometry(SetAssoc, 16<<20, paperDRAM())
	m := addrmap.Mapper{Geom: paperDRAM()}

	for set := int64(0); set < 8; set++ {
		tl := g.TagLoc(set, m)
		if tl.Col != int(set%4) {
			t.Fatalf("set %d tag block at col %d, want %d (tags live in cols 0-3)", set, tl.Col, set%4)
		}
		for way := 0; way < saWays; way++ {
			dl := g.DataLoc(set, way, m)
			wantCol := saTagCols + int(set%4)*saWays + way
			if dl.Col != wantCol {
				t.Fatalf("set %d way %d at col %d, want %d", set, way, dl.Col, wantCol)
			}
			// Tag and data of one set share a DRAM row.
			if m.RowID(dl) != m.RowID(tl) {
				t.Fatalf("set %d way %d: data and tag in different rows", set, way)
			}
		}
	}
}

func TestDataLocsDistinct(t *testing.T) {
	// No two (set, way) pairs may alias to the same DRAM location.
	g, _ := NewGeometry(SetAssoc, 16<<20, paperDRAM())
	m := addrmap.Mapper{Geom: paperDRAM()}
	seen := map[addrmap.Loc]string{}
	for set := int64(0); set < 64; set++ {
		tl := g.TagLoc(set, m)
		if prev, ok := seen[tl]; ok {
			t.Fatalf("tag of set %d collides with %s", set, prev)
		}
		seen[tl] = "tag"
		for way := 0; way < g.Ways; way++ {
			dl := g.DataLoc(set, way, m)
			if prev, ok := seen[dl]; ok {
				t.Fatalf("set %d way %d collides with %s", set, way, prev)
			}
			seen[dl] = "data"
		}
	}
}

func TestTagRowSiblings(t *testing.T) {
	g, _ := NewGeometry(SetAssoc, 16<<20, paperDRAM())
	sib := g.TagRowSiblings(6)
	want := []int64{4, 5, 6, 7}
	if len(sib) != 4 {
		t.Fatalf("siblings = %v", sib)
	}
	for i := range want {
		if sib[i] != want[i] {
			t.Fatalf("siblings = %v, want %v", sib, want)
		}
	}
	gdm, _ := NewGeometry(DirectMapped, 16<<20, paperDRAM())
	if gdm.TagRowSiblings(6) != nil {
		t.Fatal("direct-mapped design has no tag-block siblings")
	}
}

func TestDMTagLocWithinRow(t *testing.T) {
	g, _ := NewGeometry(DirectMapped, 16<<20, paperDRAM())
	m := addrmap.Mapper{Geom: paperDRAM()}
	a := g.TagLoc(0, m)
	b := g.TagLoc(dmTADsPerRow-1, m)
	if m.RowID(a) != m.RowID(b) {
		t.Fatal("TADs 0 and 55 should share the first row")
	}
	c := g.TagLoc(dmTADsPerRow, m)
	if m.RowID(a) == m.RowID(c) {
		t.Fatal("TAD 56 should start the next row")
	}
}
