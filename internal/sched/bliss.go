// Package sched is the scheduling-policy plugin layer: the Policy /
// Instance interfaces the controller picks through, a name-keyed
// registry (Register / Lookup / Names) that internal/config resolves
// Algorithm values against, and the three paper policies (BLISS,
// FR-FCFS, FCFS) as built-in registrations.
//
// A policy is one self-contained package: it registers its canonical
// name, aliases, tunable parameters (ParamSpecs, set per run through the
// configuration's AlgParams map), and ready-made sweep axes, plus a
// constructor for per-channel Instances. The controller keeps the shared
// per-(bank, lane) indexed-queue machinery and asks the instance only
// for *phase restrictions* — which applications may be served in each
// scan phase — so every policy inherits the O(1)-amortised pick paths.
// See Instance for the exact contract and dcasim/internal/sched/policytest
// for the conformance harness every registered policy must pass;
// docs/adding-a-policy.md walks through writing one.
//
// The BLISS blacklisting scheduler (Subramanian et al.) is the paper's
// baseline: an application served Threshold times in a row is
// blacklisted and loses priority until the periodic clear. Within a
// priority class the controllers break ties row-hit-first then
// oldest-first (FR-FCFS).
package sched

import "dcasim/internal/simtime"

// Default BLISS parameters from the original proposal, scaled to the
// simulator's 4 GHz clock (10 000 cycles = 2.5 µs).
const (
	DefaultThreshold     = 4
	DefaultClearInterval = simtime.Time(2500) * simtime.Nanosecond
)

// BLISS tracks per-application blacklist state for one channel.
type BLISS struct {
	Threshold     int
	ClearInterval simtime.Time

	blacklisted []bool
	nBlack      int    // count of currently blacklisted apps
	mask        uint64 // bit per blacklisted app (apps 0..63)
	lastApp     int
	streak      int
	nextClear   simtime.Time
}

// NewBLISS returns a scheduler tracking apps applications with the default
// parameters.
func NewBLISS(apps int) *BLISS {
	return &BLISS{
		Threshold:     DefaultThreshold,
		ClearInterval: DefaultClearInterval,
		blacklisted:   make([]bool, apps),
		lastApp:       -1,
	}
}

// maybeClear resets the blacklist when the clearing interval elapsed.
func (b *BLISS) maybeClear(now simtime.Time) {
	if now < b.nextClear {
		return
	}
	for i := range b.blacklisted {
		b.blacklisted[i] = false
	}
	b.nBlack = 0
	b.mask = 0
	b.streak = 0
	b.lastApp = -1
	b.nextClear = now + b.ClearInterval
}

// AnyBlacklisted reports whether at least one application is currently
// deprioritised, applying a pending periodic clear first. Schedulers use
// this O(1) check to skip per-entry blacklist tests entirely during the
// (common) intervals when the blacklist is empty.
func (b *BLISS) AnyBlacklisted(now simtime.Time) bool {
	b.maybeClear(now)
	return b.nBlack > 0
}

// BlacklistMask returns the blacklist as a bitmask (bit app set when app
// is deprioritised), applying a pending periodic clear first. Only the
// first 64 applications are representable; callers tracking more must
// fall back to per-app Blacklisted queries.
func (b *BLISS) BlacklistMask(now simtime.Time) uint64 {
	b.maybeClear(now)
	return b.mask
}

// Blacklisted reports whether app is currently deprioritised.
func (b *BLISS) Blacklisted(now simtime.Time, app int) bool {
	b.maybeClear(now)
	if app < 0 || app >= len(b.blacklisted) {
		return false
	}
	return b.blacklisted[app]
}

// OnServed records that a request from app was just serviced and updates
// the consecutive-service streak and blacklist.
func (b *BLISS) OnServed(now simtime.Time, app int) {
	b.maybeClear(now)
	if app < 0 || app >= len(b.blacklisted) {
		return
	}
	if app == b.lastApp {
		b.streak++
	} else {
		b.lastApp = app
		b.streak = 1
	}
	if b.streak >= b.Threshold {
		if !b.blacklisted[app] {
			b.nBlack++
			if app < 64 {
				b.mask |= 1 << uint(app)
			}
		}
		b.blacklisted[app] = true
	}
}
