// Package sched implements the BLISS blacklisting memory scheduler
// (Subramanian et al.), the base scheduling algorithm for every controller
// design in the paper.
//
// BLISS observes the stream of serviced requests: an application that is
// served `Threshold` times in a row is blacklisted, and blacklisted
// applications lose priority against non-blacklisted ones. The blacklist
// clears periodically. Within a priority class the controllers break ties
// row-hit-first then oldest-first (FR-FCFS).
package sched

import "dcasim/internal/simtime"

// Default BLISS parameters from the original proposal, scaled to the
// simulator's 4 GHz clock (10 000 cycles = 2.5 µs).
const (
	DefaultThreshold     = 4
	DefaultClearInterval = simtime.Time(2500) * simtime.Nanosecond
)

// BLISS tracks per-application blacklist state for one channel.
type BLISS struct {
	Threshold     int
	ClearInterval simtime.Time

	blacklisted []bool
	nBlack      int    // count of currently blacklisted apps
	mask        uint64 // bit per blacklisted app (apps 0..63)
	lastApp     int
	streak      int
	nextClear   simtime.Time
}

// NewBLISS returns a scheduler tracking apps applications with the default
// parameters.
func NewBLISS(apps int) *BLISS {
	return &BLISS{
		Threshold:     DefaultThreshold,
		ClearInterval: DefaultClearInterval,
		blacklisted:   make([]bool, apps),
		lastApp:       -1,
	}
}

// maybeClear resets the blacklist when the clearing interval elapsed.
func (b *BLISS) maybeClear(now simtime.Time) {
	if now < b.nextClear {
		return
	}
	for i := range b.blacklisted {
		b.blacklisted[i] = false
	}
	b.nBlack = 0
	b.mask = 0
	b.streak = 0
	b.lastApp = -1
	b.nextClear = now + b.ClearInterval
}

// AnyBlacklisted reports whether at least one application is currently
// deprioritised, applying a pending periodic clear first. Schedulers use
// this O(1) check to skip per-entry blacklist tests entirely during the
// (common) intervals when the blacklist is empty.
func (b *BLISS) AnyBlacklisted(now simtime.Time) bool {
	b.maybeClear(now)
	return b.nBlack > 0
}

// BlacklistMask returns the blacklist as a bitmask (bit app set when app
// is deprioritised), applying a pending periodic clear first. Only the
// first 64 applications are representable; callers tracking more must
// fall back to per-app Blacklisted queries.
func (b *BLISS) BlacklistMask(now simtime.Time) uint64 {
	b.maybeClear(now)
	return b.mask
}

// Blacklisted reports whether app is currently deprioritised.
func (b *BLISS) Blacklisted(now simtime.Time, app int) bool {
	b.maybeClear(now)
	if app < 0 || app >= len(b.blacklisted) {
		return false
	}
	return b.blacklisted[app]
}

// OnServed records that a request from app was just serviced and updates
// the consecutive-service streak and blacklist.
func (b *BLISS) OnServed(now simtime.Time, app int) {
	b.maybeClear(now)
	if app < 0 || app >= len(b.blacklisted) {
		return
	}
	if app == b.lastApp {
		b.streak++
	} else {
		b.lastApp = app
		b.streak = 1
	}
	if b.streak >= b.Threshold {
		if !b.blacklisted[app] {
			b.nBlack++
			if app < 64 {
				b.mask |= 1 << uint(app)
			}
		}
		b.blacklisted[app] = true
	}
}
