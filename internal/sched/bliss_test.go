package sched

import (
	"testing"

	"dcasim/internal/simtime"
)

func TestBlacklistAfterStreak(t *testing.T) {
	b := NewBLISS(4)
	for i := 0; i < DefaultThreshold-1; i++ {
		b.OnServed(0, 1)
		if b.Blacklisted(0, 1) {
			t.Fatalf("blacklisted after only %d consecutive services", i+1)
		}
	}
	b.OnServed(0, 1)
	if !b.Blacklisted(0, 1) {
		t.Fatal("not blacklisted after reaching the threshold streak")
	}
	if b.Blacklisted(0, 0) || b.Blacklisted(0, 2) {
		t.Fatal("other applications must not be blacklisted")
	}
}

func TestStreakResetOnInterleave(t *testing.T) {
	b := NewBLISS(2)
	for i := 0; i < 10; i++ {
		b.OnServed(0, 0)
		b.OnServed(0, 1)
	}
	if b.Blacklisted(0, 0) || b.Blacklisted(0, 1) {
		t.Fatal("interleaved applications must never be blacklisted")
	}
}

func TestPeriodicClearing(t *testing.T) {
	b := NewBLISS(2)
	for i := 0; i < DefaultThreshold; i++ {
		b.OnServed(0, 0)
	}
	if !b.Blacklisted(0, 0) {
		t.Fatal("setup: app 0 should be blacklisted")
	}
	if !b.Blacklisted(DefaultClearInterval-1, 0) {
		t.Fatal("blacklist cleared before the interval elapsed")
	}
	if b.Blacklisted(DefaultClearInterval+1, 0) {
		t.Fatal("blacklist not cleared after the interval")
	}
}

func TestOutOfRangeAppIgnored(t *testing.T) {
	b := NewBLISS(2)
	b.OnServed(0, 7)  // must not panic
	b.OnServed(0, -1) // must not panic
	if b.Blacklisted(0, 7) || b.Blacklisted(0, -1) {
		t.Fatal("out-of-range apps reported blacklisted")
	}
}

func TestCustomThreshold(t *testing.T) {
	b := NewBLISS(1)
	b.Threshold = 2
	b.ClearInterval = simtime.Time(1000)
	b.OnServed(0, 0)
	b.OnServed(0, 0)
	if !b.Blacklisted(0, 0) {
		t.Fatal("custom threshold not honoured")
	}
}

// TestAnyBlacklistedAndMask: the O(1) occupancy check and the bitmask
// snapshot must track the per-app state through streaks and the periodic
// clear.
func TestAnyBlacklistedAndMask(t *testing.T) {
	b := NewBLISS(4)
	if b.AnyBlacklisted(0) || b.BlacklistMask(0) != 0 {
		t.Fatal("fresh scheduler reports blacklisted apps")
	}
	for i := 0; i < b.Threshold; i++ {
		b.OnServed(0, 2)
	}
	if !b.AnyBlacklisted(0) {
		t.Fatal("AnyBlacklisted false after a blacklisting streak")
	}
	if got := b.BlacklistMask(0); got != 1<<2 {
		t.Fatalf("mask = %#x, want bit 2", got)
	}
	// Repeat services must not double-count occupancy.
	for i := 0; i < b.Threshold; i++ {
		b.OnServed(0, 2)
	}
	if got := b.BlacklistMask(0); got != 1<<2 {
		t.Fatalf("mask after repeat streak = %#x, want bit 2", got)
	}
	// The periodic clear empties both.
	later := b.ClearInterval + 1
	if b.AnyBlacklisted(later) || b.BlacklistMask(later) != 0 {
		t.Fatal("clear did not reset occupancy/mask")
	}
}
