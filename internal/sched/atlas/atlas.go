// Package atlas implements ATLAS (Adaptive per-Thread Least-Attained-
// Service scheduling, Kim et al., HPCA 2010) as the first beyond-paper
// scheduling policy registered through the dcasim plugin interface — and
// as the worked example of docs/adding-a-policy.md.
//
// ATLAS divides time into quanta. Within a quantum each application
// accrues attained service; at each quantum boundary the long-term
// totals decay toward the quantum's attained service with exponential
// weight HistoryWeight, and applications are ranked by total attained
// service ascending — the least-serviced application gets the highest
// priority for the whole next quantum. The pick therefore runs one
// restriction phase per application, phase p admitting the p+1
// least-serviced applications (cumulative), before the controller's
// unconditional final unrestricted phase.
//
// Divergences from the paper, scaled to this simulator:
//
//   - Attained service is counted in serviced requests, not in DRAM
//     service cycles: the OnServed feedback carries no durations. Under
//     a closed-bank-latency-dominated mix the two are proportional.
//   - The quantum defaults to 25 µs rather than the paper's ~10 M cycles
//     (2.5 ms at 4 GHz): dcasim's bench/test scales simulate far shorter
//     windows, and the quantum must roll over often enough to matter.
//     Sweep QuantumNS to recover the paper's value.
//   - ATLAS coordinates rankings across controllers via a meta-
//     controller; dcasim ranks per channel (instances are per
//     controller, like BLISS).
package atlas

import (
	"dcasim/internal/core"
	"dcasim/internal/sched"
	"dcasim/internal/simtime"
)

// Name is the canonical registered policy name (config Algorithm value).
const Name = "ATLAS"

// Defaults for the registered parameters.
const (
	DefaultQuantumNS     = 25_000
	DefaultHistoryWeight = 0.875
)

// Alg is the config-level algorithm value selecting ATLAS.
var Alg = core.MustRegisterPolicy(sched.Registration{
	Policy:  policy{},
	Aliases: []string{"atlas"},
	Doc:     "least-attained-service quantum ranking (Kim et al., HPCA 2010); beyond-paper extension",
	Params: []sched.ParamSpec{
		{
			Name: "QuantumNS", Default: DefaultQuantumNS, Min: 100, Max: 1e12,
			Doc: "ranking quantum in nanoseconds (paper: 2.5e6 at 4 GHz)",
		},
		{
			Name: "HistoryWeight", Default: DefaultHistoryWeight, Min: 0, Max: 1,
			Doc: "exponential weight of past quanta in the service totals (paper: 0.875)",
		},
	},
	SweepAxes: []sched.AxisSpec{
		{
			Name: "atlasQuantum",
			Points: []sched.AxisPoint{
				{Label: "q10us", Patch: `{"AlgParams":{"QuantumNS":10000}}`},
				{Label: "q25us", Patch: `{"AlgParams":{"QuantumNS":25000}}`},
				{Label: "q100us", Patch: `{"AlgParams":{"QuantumNS":100000}}`},
			},
		},
	},
})

type policy struct{}

func (policy) Name() string { return Name }

func (policy) New(apps int, params sched.Params) sched.Instance {
	a := &instance{
		apps:     apps,
		quantum:  simtime.Time(DefaultQuantumNS) * simtime.Nanosecond,
		alpha:    DefaultHistoryWeight,
		total:    make([]float64, apps),
		attained: make([]float64, apps),
		rank:     make([]int, apps),
		order:    make([]int, apps),
	}
	if v, ok := params["QuantumNS"]; ok {
		a.quantum = simtime.Time(v) * simtime.Nanosecond
	}
	if v, ok := params["HistoryWeight"]; ok {
		a.alpha = v
	}
	if apps <= 64 {
		a.masks = make([]uint64, apps)
	}
	a.rerank()
	return a
}

// instance is one controller's ATLAS state. Rankings are recomputed only
// at quantum rollover (inside BeginPick, idempotent at a fixed now), so
// PhaseMask/PhaseAllows are pure reads of the precomputed cumulative
// masks, as the sched.Instance contract requires.
type instance struct {
	apps    int
	quantum simtime.Time
	alpha   float64

	total    []float64 // decayed long-term attained service per app
	attained []float64 // service accrued in the current quantum
	rank     []int     // rank[app]: 0 = least attained service
	order    []int     // apps sorted by rank (scratch for rerank)
	masks    []uint64  // masks[p]: cumulative admission mask of phase p; nil when apps > 64
	next     simtime.Time
}

//dcalint:noalloc
func (a *instance) RowHitFirst() bool { return true }

// BeginPick rolls the quantum over when due — decay the totals, fold in
// the quantum's attained service, recompute the ranking — and runs one
// restriction phase per application. Rollover advances next strictly
// past now, so repeated calls at a fixed now are idempotent.
//
//dcalint:noalloc
func (a *instance) BeginPick(now simtime.Time) int {
	if now >= a.next {
		for i := range a.total {
			a.total[i] = a.alpha*a.total[i] + (1-a.alpha)*a.attained[i]
			a.attained[i] = 0
		}
		a.rerank()
		a.next = now + a.quantum
	}
	if a.apps < 1 {
		return 1
	}
	return a.apps
}

//dcalint:noalloc
func (a *instance) PhaseMask(phase int) (uint64, bool) {
	if a.masks == nil {
		return 0, false
	}
	return a.masks[phase], true
}

//dcalint:noalloc
func (a *instance) PhaseAllows(phase, app int) bool {
	if app < 0 || app >= a.apps {
		return true
	}
	return a.rank[app] <= phase
}

//dcalint:noalloc
func (a *instance) OnServed(now simtime.Time, app int) {
	if app >= 0 && app < a.apps {
		a.attained[app]++
	}
}

// rerank sorts applications by total attained service ascending (app id
// breaks ties, keeping the order deterministic) and rebuilds the
// cumulative per-phase masks. Insertion sort over the preallocated
// scratch keeps the scheduling path allocation-free.
//
//dcalint:noalloc
func (a *instance) rerank() {
	for i := range a.order {
		a.order[i] = i
	}
	for i := 1; i < len(a.order); i++ {
		for j := i; j > 0 && a.less(a.order[j], a.order[j-1]); j-- {
			a.order[j], a.order[j-1] = a.order[j-1], a.order[j]
		}
	}
	for p, app := range a.order {
		a.rank[app] = p
	}
	if a.masks == nil {
		return
	}
	// Bits at and above apps stay set: in mask mode the controller admits
	// out-of-range applications unconditionally, and PhaseAllows above
	// agrees.
	var m uint64
	if a.apps < 64 {
		m = ^uint64(0) << uint(a.apps)
	}
	for p, app := range a.order {
		m |= 1 << uint(app)
		a.masks[p] = m
	}
}

//dcalint:noalloc
func (a *instance) less(x, y int) bool {
	if a.total[x] != a.total[y] {
		return a.total[x] < a.total[y]
	}
	return x < y
}
