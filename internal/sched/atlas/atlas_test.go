package atlas_test

import (
	"testing"

	"dcasim/internal/sched/atlas"
	"dcasim/internal/sched/policytest"
)

// TestConformance is the policy-package idiom from
// docs/adding-a-policy.md: every policy runs the shared conformance
// harness (contract probes plus the differential schedule oracle) from
// its own package, so a broken change fails here even before the
// registry-wide sweep in policytest.
func TestConformance(t *testing.T) {
	policytest.Run(t, atlas.Name)
}
