package policytest

// This file preserves the pre-index controller as a policy-generic
// test-only oracle: queues are plain slices, every scheduling slot
// linearly scans them re-Peeking each entry, remove is an O(N) shift,
// and the RRPC decay eagerly walks all banks. Where the original
// hard-coded BLISS and per-design switches, this version consumes the
// same registry surfaces as the production controller — Design.Spec()
// for routing/two-level structure and sched.Instance for scheduling —
// so any registered policy can be replayed through it.

import (
	"dcasim/internal/core"
	"dcasim/internal/dram"
	"dcasim/internal/event"
	"dcasim/internal/sched"
	"dcasim/internal/simtime"
)

type refEntry struct {
	Acc          dram.Access
	ReqType      core.RequestType
	priorityRead bool
	enqueued     simtime.Time
	seq          uint64
}

type refController struct {
	eng         *event.Engine
	ch          *dram.Channel
	cfg         core.Config
	inst        sched.Instance
	rowHitFirst bool
	route       func(dram.Kind, core.RequestType) bool
	twoLevel    bool

	readQ     []*refEntry
	writeQ    []*refEntry
	overflowR []*refEntry
	overflowW []*refEntry

	draining    bool
	scheduleAll bool
	rrpc        []uint8
	busy        bool
	seq         uint64

	stats core.Stats

	onIssue func(e *refEntry, now simtime.Time, fromRead, viaOFS bool)
}

func newRefController(eng *event.Engine, ch *dram.Channel, cfg core.Config, apps int) *refController {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	spec, err := cfg.Design.Spec()
	if err != nil {
		panic(err)
	}
	reg, params, err := cfg.Policy()
	if err != nil {
		panic(err)
	}
	inst := reg.Policy.New(apps, params)
	return &refController{
		eng:         eng,
		ch:          ch,
		cfg:         cfg,
		inst:        inst,
		rowHitFirst: inst.RowHitFirst(),
		route:       spec.RouteToWrite,
		twoLevel:    spec.TwoLevel,
		rrpc:        make([]uint8, ch.Banks()),
	}
}

func (c *refController) Enqueue(acc dram.Access, reqType core.RequestType) {
	c.seq++
	e := &refEntry{Acc: acc, ReqType: reqType, enqueued: c.eng.Now(), seq: c.seq}
	toWrite := c.route(acc.Kind, reqType)
	if !toWrite && !acc.Kind.IsWrite() {
		e.priorityRead = reqType == core.ReadReq
	}
	if toWrite {
		if len(c.writeQ) < c.cfg.WriteQueueCap {
			c.writeQ = append(c.writeQ, e)
		} else {
			c.overflowW = append(c.overflowW, e)
		}
	} else {
		if len(c.readQ) < c.cfg.ReadQueueCap {
			c.readQ = append(c.readQ, e)
		} else {
			c.overflowR = append(c.overflowR, e)
		}
	}
	c.kick()
}

func (c *refController) kick() {
	if c.busy {
		return
	}
	now := c.eng.Now()
	e, fromRead, viaOFS := c.pick(now)
	if e == nil {
		c.stats.IdleSlots++
		return
	}
	c.issue(e, fromRead, viaOFS, now)
}

func (c *refController) pick(now simtime.Time) (e *refEntry, fromRead, viaOFS bool) {
	c.updateDrainState()
	c.updateScheduleAll()

	if c.draining {
		if e := c.best(c.writeQ, now, nil); e != nil {
			return e, false, false
		}
	}

	var filter func(*refEntry) bool
	if c.twoLevel && !c.scheduleAll {
		filter = func(e *refEntry) bool { return e.priorityRead }
	}
	if e := c.best(c.readQ, now, filter); e != nil {
		return e, true, false
	}

	if c.twoLevel && !c.scheduleAll {
		if e := c.best(c.readQ, now, c.ofsEligible); e != nil {
			return e, true, true
		}
	}

	if len(c.writeQ) > c.writeLowCount() {
		if e := c.best(c.writeQ, now, nil); e != nil {
			return e, false, false
		}
	}
	return nil, false, false
}

func (c *refController) ofsEligible(e *refEntry) bool {
	if e.priorityRead {
		return false
	}
	if c.ch.Peek(e.Acc.Loc) != dram.RowConflict {
		return true
	}
	return c.rrpc[c.ch.GlobalBank(e.Acc.Loc)] < c.cfg.FlushFactor
}

// best linearly scans q and returns the minimum-key candidate under the
// per-candidate key [phase, !rowHit, dirMismatch, seq]. The phase
// component generalizes the original blacklisted bit: it is the first
// pick phase that admits the candidate's app, computed with the same
// semantics the indexed controller's phase loop applies (mask mode with
// the out-of-range rule when PhaseMask reports ok, the per-entry
// PhaseAllows fallback otherwise, and an unconditionally unrestricted
// final phase). BeginPick is consulted once per scan that sees at least
// one filter-passing candidate — the same set of times the indexed
// controller consults it.
func (c *refController) best(q []*refEntry, now simtime.Time, filter func(*refEntry) bool) *refEntry {
	lastDir := c.ch.LastDir()
	var pick *refEntry
	var pickKey [4]int64
	phases := 0
	for _, e := range q {
		if filter != nil && !filter(e) {
			continue
		}
		key := [4]int64{0, 0, 0, int64(e.seq)}
		if c.rowHitFirst {
			if phases == 0 {
				phases = c.inst.BeginPick(now)
			}
			key[0] = int64(phaseOf(c.inst, phases, e.Acc.App))
			if c.ch.Peek(e.Acc.Loc) != dram.RowHit {
				key[1] = 1
			}
			dir := dram.DirRead
			if e.Acc.Kind.IsWrite() {
				dir = dram.DirWrite
			}
			if lastDir != dram.DirNone && dir != lastDir {
				key[2] = 1
			}
		}
		if pick == nil || refLess(key, pickKey) {
			pick, pickKey = e, key
		}
	}
	return pick
}

// phaseOf returns the first phase admitting app. The final phase is
// unconditionally unrestricted, so every app lands in [0, phases-1].
func phaseOf(inst sched.Instance, phases, app int) int {
	for p := 0; p < phases-1; p++ {
		if allowsMachine(inst, p, app) {
			return p
		}
	}
	return phases - 1
}

// allowsMachine applies the controller's admission semantics for one
// non-final phase: the mask governs apps 0..63 and everything outside
// that range is admitted; without a mask the per-entry callback decides.
func allowsMachine(inst sched.Instance, p, app int) bool {
	if mask, ok := inst.PhaseMask(p); ok {
		return uint(app) >= 64 || mask>>uint(app)&1 != 0
	}
	return inst.PhaseAllows(p, app)
}

func refLess(a, b [4]int64) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

func (c *refController) issue(e *refEntry, fromRead, viaOFS bool, now simtime.Time) {
	if fromRead {
		c.remove(&c.readQ, e)
		c.refill(&c.readQ, &c.overflowR, c.cfg.ReadQueueCap)
		c.stats.ReadQueueWait += now - e.enqueued
	} else {
		c.remove(&c.writeQ, e)
		c.refill(&c.writeQ, &c.overflowW, c.cfg.WriteQueueCap)
		c.stats.WriteQueueWait += now - e.enqueued
	}

	if e.Acc.Kind.IsWrite() {
		c.stats.WritesIssued++
	} else if e.priorityRead {
		c.stats.PRIssued++
		c.touchRRPC(c.ch.GlobalBank(e.Acc.Loc))
	} else {
		c.stats.LRIssued++
		if viaOFS {
			c.stats.OFSIssues++
		}
	}

	if c.onIssue != nil {
		c.onIssue(e, now, fromRead, viaOFS)
	}

	done := c.ch.Issue(&e.Acc, now)
	c.inst.OnServed(now, e.Acc.App)
	c.busy = true
	c.eng.Schedule(done, c, event.Payload{Ptr: e})
}

func (c *refController) OnEvent(now simtime.Time, p event.Payload) {
	e := p.Ptr.(*refEntry)
	cb := e.Acc.Done
	c.busy = false
	cb.Invoke(now)
	c.kick()
}

// touchRRPC is the eager decay the controller's lazy epoch scheme must
// reproduce.
func (c *refController) touchRRPC(bank int) {
	for i := range c.rrpc {
		if c.rrpc[i] > 0 {
			c.rrpc[i]--
		}
	}
	c.rrpc[bank] = 7
}

func (c *refController) updateDrainState() {
	hi := int(float64(c.cfg.WriteQueueCap)*c.cfg.WriteFlushHigh + 0.5)
	if !c.draining && len(c.writeQ) >= hi {
		c.draining = true
		c.stats.ForcedFlushes++
	}
	if c.draining && len(c.writeQ) <= c.writeLowCount() {
		c.draining = false
	}
}

func (c *refController) writeLowCount() int {
	return int(float64(c.cfg.WriteQueueCap)*c.cfg.WriteFlushLow + 0.5)
}

func (c *refController) updateScheduleAll() {
	if !c.twoLevel {
		return
	}
	occ := float64(len(c.readQ)) / float64(c.cfg.ReadQueueCap)
	if !c.scheduleAll && occ > c.cfg.ScheduleAllHigh {
		c.scheduleAll = true
		c.stats.ScheduleAllOn++
	} else if c.scheduleAll && occ < c.cfg.ScheduleAllLow {
		c.scheduleAll = false
	}
}

func (c *refController) remove(q *[]*refEntry, e *refEntry) {
	s := *q
	for i, x := range s {
		if x == e {
			copy(s[i:], s[i+1:])
			s[len(s)-1] = nil
			*q = s[:len(s)-1]
			return
		}
	}
	panic("policytest: entry not found in reference queue")
}

func (c *refController) refill(q, overflow *[]*refEntry, cap int) {
	for len(*q) < cap && len(*overflow) > 0 {
		*q = append(*q, (*overflow)[0])
		(*overflow)[0] = nil
		*overflow = (*overflow)[1:]
	}
}
