package policytest_test

import (
	"strings"
	"testing"

	"dcasim/internal/sched"
	"dcasim/internal/sched/policytest"

	_ "dcasim/internal/sched/policies"
)

// TestAllRegisteredPolicies runs the conformance suite over every policy
// in the registry — the built-ins and everything pulled in by the
// policies aggregator. A new policy added to the aggregator is covered
// here automatically; it cannot ship without passing the differential
// bar. The deliberately broken "broken." fixtures registered by
// selftest_test.go are excluded — TestHarnessCatchesBrokenPolicies
// asserts those FAIL.
func TestAllRegisteredPolicies(t *testing.T) {
	var covered int
	for _, name := range sched.Names() {
		if strings.HasPrefix(name, brokenPrefix) {
			continue
		}
		covered++
		t.Run(name, func(t *testing.T) {
			policytest.Run(t, name)
		})
	}
	if covered < 4 {
		t.Fatalf("conformance covered %d policies; expected at least BLISS, FCFS, FR-FCFS, ATLAS", covered)
	}
}
