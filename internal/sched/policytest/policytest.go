// Package policytest is the conformance harness every registered
// scheduling policy must pass (see dcasim/internal/sched and
// docs/adding-a-policy.md). It promotes the retired pre-index linear-scan
// controller into a policy-generic reference oracle and replays random
// traffic through it and the production indexed controller side by side,
// requiring bit-identical schedules — the same differential bar the
// BLISS/FR-FCFS/FCFS migration was proven against — plus direct checks
// of the sched.Instance contract (phase counts, mask/PhaseAllows
// agreement, BeginPick idempotence, RowHitFirst stability).
//
// Use Run in a policy package's tests:
//
//	func TestConformance(t *testing.T) { policytest.Run(t, atlas.Name) }
//
// or Check for an error-returning form.
package policytest

import (
	"fmt"
	"testing"

	"dcasim/internal/addrmap"
	"dcasim/internal/core"
	"dcasim/internal/dram"
	"dcasim/internal/event"
	"dcasim/internal/rng"
	"dcasim/internal/sched"
	"dcasim/internal/simtime"
)

// Run checks the named registered policy against the full conformance
// suite and fails the test on the first violation.
func Run(t testing.TB, name string) {
	t.Helper()
	if err := Check(name); err != nil {
		t.Fatalf("policy %q fails conformance: %v", name, err)
	}
}

// Check verifies the named registered policy: first the Instance
// contract on fresh instances (normal and >64-app overflow shapes), then
// differential schedule equality against the reference oracle across
// every registered design, eight traffic seeds, and the >64-application
// fallback. It returns the first violation found, nil for a conformant
// policy.
func Check(name string) error {
	reg, ok := sched.Lookup(name)
	if !ok {
		return fmt.Errorf("policytest: %q is not a registered policy (registered: %v)", name, sched.Names())
	}
	for _, apps := range []int{4, 80} {
		if err := checkContract(reg, apps); err != nil {
			return err
		}
	}
	alg := core.Algorithm(reg.Policy.Name())
	for _, design := range core.Designs() {
		for seed := uint64(1); seed <= 8; seed++ {
			if err := diffRun(alg, design, seed, 4); err != nil {
				return err
			}
		}
	}
	// The >64-application shapes exercise the per-entry PhaseAllows
	// fallback (mask mode is unrepresentable there for most policies).
	for seed := uint64(1); seed <= 4; seed++ {
		if err := diffRun(alg, core.DCA, seed, 80); err != nil {
			return err
		}
		if err := diffRun(alg, core.CD, seed, 80); err != nil {
			return err
		}
	}
	return nil
}

// checkContract probes a fresh instance directly for the documented
// sched.Instance invariants.
func checkContract(reg *sched.Registration, apps int) error {
	params, err := reg.ResolveParams(nil)
	if err != nil {
		return fmt.Errorf("policytest: default params rejected: %w", err)
	}
	inst := reg.Policy.New(apps, params)
	if inst == nil {
		return fmt.Errorf("policytest: New(%d) returned a nil Instance", apps)
	}
	rhf := inst.RowHitFirst()
	for _, now := range []simtime.Time{0, simtime.Millisecond, 5 * simtime.Millisecond} {
		phases := inst.BeginPick(now)
		if phases < 1 {
			return fmt.Errorf("policytest: BeginPick(%v) returned %d phases; the contract requires >= 1", now, phases)
		}
		if again := inst.BeginPick(now); again != phases {
			return fmt.Errorf("policytest: BeginPick(%v) is not idempotent at a fixed now: %d then %d phases", now, phases, again)
		}
		for p := 0; p < phases-1; p++ {
			mask, ok := inst.PhaseMask(p)
			if mask2, ok2 := inst.PhaseMask(p); mask2 != mask || ok2 != ok {
				return fmt.Errorf("policytest: PhaseMask(%d) at now=%v is impure: (%#x,%v) then (%#x,%v)", p, now, mask, ok, mask2, ok2)
			}
			if !ok {
				continue
			}
			// Mask mode: PhaseAllows must agree bit for bit over the mask
			// range and must admit everything outside it (the controller
			// admits out-of-range apps unconditionally in mask mode).
			for app := 0; app < 64; app++ {
				if got, want := inst.PhaseAllows(p, app), mask>>uint(app)&1 != 0; got != want {
					return fmt.Errorf("policytest: phase %d at now=%v: PhaseAllows(app %d)=%v disagrees with mask bit %v", p, now, app, want, got)
				}
			}
			for _, app := range []int{64, 64 + apps, -1} {
				if !inst.PhaseAllows(p, app) {
					return fmt.Errorf("policytest: phase %d at now=%v: PhaseAllows(app %d)=false, but mask mode admits apps outside bits 0..63 unconditionally", p, now, app)
				}
			}
		}
		inst.OnServed(now, 0)
		inst.OnServed(now, apps-1)
		if inst.RowHitFirst() != rhf {
			return fmt.Errorf("policytest: RowHitFirst changed from %v at now=%v; it must be constant for the instance's life", rhf, now)
		}
	}
	return nil
}

// issueRecord is one scheduling decision: which entry (by enqueue seq)
// was issued, when, and through which path.
type issueRecord struct {
	seq      uint64
	now      simtime.Time
	fromRead bool
	viaOFS   bool
}

func (r issueRecord) String() string {
	return fmt.Sprintf("{seq %d @%v read=%v ofs=%v}", r.seq, r.now, r.fromRead, r.viaOFS)
}

type diffOp struct {
	acc dram.Access
	req core.RequestType
}

// makeTraffic is a reproducible random access stream. Both controllers
// must receive identical streams, so it is generated once per seed. The
// stream concentrates on four apps so feedback policies (BLISS streaks,
// ATLAS attained service) actually discriminate, but with many apps also
// sprinkles high ids to exercise the >64-app fallback paths.
func makeTraffic(seed uint64, n, apps int) []diffOp {
	r := rng.New(seed)
	kinds := []dram.Kind{dram.ReadTag, dram.ReadData, dram.WriteTag, dram.WriteData}
	reqs := []core.RequestType{core.ReadReq, core.WritebackReq, core.RefillReq}
	ops := make([]diffOp, n)
	for i := range ops {
		app := r.Intn(4)
		if apps > 4 && r.Intn(4) == 0 {
			app = apps - 1 - r.Intn(4)
		}
		ops[i] = diffOp{
			acc: dram.Access{
				Kind:  kinds[r.Intn(len(kinds))],
				Loc:   addrmap.Loc{Bank: r.Intn(8), Row: int64(r.Intn(16)), Col: r.Intn(64)},
				Bytes: 64,
				App:   app,
			},
			req: reqs[r.Intn(len(reqs))],
		}
	}
	return ops
}

func testGeom() addrmap.Geometry {
	return addrmap.Geometry{Channels: 1, Ranks: 1, Banks: 8, RowBytes: 4096, BlockSize: 64}
}

// diffRun replays one randomized enqueue/complete sequence through the
// reference linear-scan controller and the production indexed scheduler
// and requires identical (time, seq, path) issue sequences, RRPC state,
// residual queue depths, and stats. Small queue capacities force the
// spill, drain, ScheduleAll, and OFS paths; the tight row space forces
// hits, conflicts, and feedback-policy streaks.
func diffRun(alg core.Algorithm, design core.Design, seed uint64, apps int) error {
	cfg := core.DefaultConfig(design)
	cfg.Algorithm = alg
	cfg.ReadQueueCap = 6
	cfg.WriteQueueCap = 6

	ops := makeTraffic(seed, 400, apps)

	var gotNew, gotRef []issueRecord

	engN := &event.Engine{}
	chN := dram.NewChannel(dram.StackedDRAM(), testGeom())
	ctrlN := core.NewController(engN, chN, cfg, apps)
	ctrlN.SetIssueObserver(func(e *core.Entry, now simtime.Time, fromRead, viaOFS bool) {
		gotNew = append(gotNew, issueRecord{e.Seq(), now, fromRead, viaOFS})
	})

	engR := &event.Engine{}
	chR := dram.NewChannel(dram.StackedDRAM(), testGeom())
	ctrlR := newRefController(engR, chR, cfg, apps)
	ctrlR.onIssue = func(e *refEntry, now simtime.Time, fromRead, viaOFS bool) {
		gotRef = append(gotRef, issueRecord{e.seq, now, fromRead, viaOFS})
	}

	for i, op := range ops {
		ctrlN.Enqueue(op.acc, op.req)
		ctrlR.Enqueue(op.acc, op.req)
		// Let both engines make progress between bursts so completions
		// interleave with arrivals.
		if i%8 == 7 {
			engN.Run()
			engR.Run()
		}
	}
	engN.Run()
	engR.Run()

	ctx := fmt.Sprintf("%v/%v seed %d apps %d", design, alg, seed, apps)
	if len(gotNew) != len(gotRef) {
		return fmt.Errorf("policytest: %s: issued %d vs reference %d", ctx, len(gotNew), len(gotRef))
	}
	for i := range gotNew {
		if gotNew[i] != gotRef[i] {
			return fmt.Errorf("policytest: %s: pick %d diverged: indexed %v, reference %v", ctx, i, gotNew[i], gotRef[i])
		}
	}
	for b := 0; b < chN.Banks(); b++ {
		if got, want := ctrlN.RRPC(b), ctrlR.rrpc[b]; got != want {
			return fmt.Errorf("policytest: %s: RRPC[%d] = %d, reference %d", ctx, b, got, want)
		}
	}
	nr, nw := ctrlN.QueueDepths()
	if nr != len(ctrlR.readQ) || nw != len(ctrlR.writeQ) {
		return fmt.Errorf("policytest: %s: residual depths (%d,%d) vs reference (%d,%d)", ctx, nr, nw, len(ctrlR.readQ), len(ctrlR.writeQ))
	}
	if ctrlN.Stats() != ctrlR.stats {
		return fmt.Errorf("policytest: %s: stats diverged:\nindexed   %+v\nreference %+v", ctx, ctrlN.Stats(), ctrlR.stats)
	}
	return nil
}
