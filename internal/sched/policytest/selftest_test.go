package policytest_test

// Self-test of the conformance harness: deliberately broken policies,
// registered under the reserved "broken." name prefix, must each be
// caught by the invariant they violate. The first five break the
// Instance contract directly; the last one is contract-clean under the
// harness's probes but becomes impure mid-run, and must be caught by the
// differential oracle instead.

import (
	"strings"
	"testing"

	"dcasim/internal/core"
	"dcasim/internal/sched"
	"dcasim/internal/sched/policytest"
	"dcasim/internal/simtime"
)

// BrokenPrefix marks self-test fixture policies; TestAllRegisteredPolicies
// skips them.
const brokenPrefix = "broken."

// conformant is a neutral, restriction-free baseline the broken variants
// embed and selectively override.
type conformant struct{}

func (conformant) RowHitFirst() bool                  { return true }
func (conformant) BeginPick(simtime.Time) int         { return 1 }
func (conformant) PhaseMask(int) (uint64, bool)       { return ^uint64(0), true }
func (conformant) PhaseAllows(int, int) bool          { return true }
func (conformant) OnServed(now simtime.Time, app int) {}

type fixture struct {
	name string
	make func() sched.Instance
}

func (f fixture) Name() string                         { return f.name }
func (f fixture) New(int, sched.Params) sched.Instance { return f.make() }

type zeroPhases struct{ conformant }

func (zeroPhases) BeginPick(simtime.Time) int { return 0 }

type maskLiar struct{ conformant }

func (maskLiar) BeginPick(simtime.Time) int { return 2 }
func (maskLiar) PhaseMask(int) (uint64, bool) {
	return ^uint64(0) &^ (1 << 1), true // claims app 1 blocked...
}
func (maskLiar) PhaseAllows(int, int) bool { return true } // ...but allows it

type highAppBlocker struct{ conformant }

func (highAppBlocker) BeginPick(simtime.Time) int  { return 2 }
func (highAppBlocker) PhaseAllows(_, app int) bool { return app < 64 }

type flappingRHF struct {
	conformant
	calls int
}

func (f *flappingRHF) RowHitFirst() bool { f.calls++; return f.calls%2 == 1 }

type unstablePhases struct {
	conformant
	calls int
}

func (u *unstablePhases) BeginPick(simtime.Time) int { u.calls++; return 1 + u.calls%2 }

// lateImpure is clean under every direct contract probe, then — after
// more services than the probes perform — its PhaseMask starts rotating
// a blocked app on every call. The indexed controller reads the mask
// once per phase while the reference oracle reads it per candidate, so
// the impurity makes the two schedules diverge.
type lateImpure struct {
	conformant
	served  int
	blocked int
}

func (l *lateImpure) BeginPick(simtime.Time) int { return 2 }
func (l *lateImpure) PhaseMask(int) (uint64, bool) {
	m := ^uint64(0) &^ (1 << uint(l.blocked))
	if l.served > 50 {
		l.blocked = (l.blocked + 1) % 4
	}
	return m, true
}
func (l *lateImpure) PhaseAllows(_, app int) bool    { return app != l.blocked }
func (l *lateImpure) OnServed(_ simtime.Time, _ int) { l.served++ }

func init() {
	for _, f := range []fixture{
		{brokenPrefix + "zero-phases", func() sched.Instance { return zeroPhases{} }},
		{brokenPrefix + "mask-liar", func() sched.Instance { return maskLiar{} }},
		{brokenPrefix + "high-app-blocker", func() sched.Instance { return highAppBlocker{} }},
		{brokenPrefix + "flapping-rhf", func() sched.Instance { return &flappingRHF{} }},
		{brokenPrefix + "unstable-phases", func() sched.Instance { return &unstablePhases{} }},
		{brokenPrefix + "late-impure", func() sched.Instance { return &lateImpure{} }},
	} {
		core.MustRegisterPolicy(sched.Registration{Policy: f, Doc: "policytest self-test fixture"})
	}
}

func TestHarnessCatchesBrokenPolicies(t *testing.T) {
	cases := []struct {
		name string
		want string // substring of the expected violation message
	}{
		{"zero-phases", "BeginPick"},
		{"mask-liar", "disagrees with mask bit"},
		{"high-app-blocker", "outside bits 0..63"},
		{"flapping-rhf", "RowHitFirst"},
		{"unstable-phases", "not idempotent"},
		// Any differential mismatch (pick sequence, counts, stats)
		// carries the run context; "seed" pins it to the oracle, not a
		// contract probe.
		{"late-impure", "seed"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := policytest.Check(brokenPrefix + tc.name)
			if err == nil {
				t.Fatalf("harness passed the deliberately broken policy %q", tc.name)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("broken policy %q caught, but by the wrong invariant:\n got: %v\nwant substring %q", tc.name, err, tc.want)
			}
			t.Logf("caught: %v", err)
		})
	}
}

func TestHarnessRejectsUnknownPolicy(t *testing.T) {
	if err := policytest.Check("no-such-policy"); err == nil || !strings.Contains(err.Error(), "not a registered policy") {
		t.Fatalf("unknown policy not rejected: %v", err)
	}
}
