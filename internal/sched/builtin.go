package sched

import "dcasim/internal/simtime"

// The three paper policies, registered as plugins over the shared
// indexed-queue machinery. BLISS is the paper's baseline; FR-FCFS and
// FCFS back the "DCA is not limited to any scheduling algorithm" claim.
func init() {
	MustRegister(Registration{
		Policy: blissPolicy{},
		Doc:    "blacklisting (Subramanian et al.) + row-hit-first + direction + age; the paper's baseline",
		Params: []ParamSpec{
			{Name: "Threshold", Default: DefaultThreshold, Min: 1, Max: 1 << 20,
				Doc: "consecutive services before an application is blacklisted"},
			{Name: "ClearIntervalNS", Default: float64(DefaultClearInterval / simtime.Nanosecond), Min: 1, Max: 1e12,
				Doc: "blacklist clearing interval in nanoseconds"},
		},
		SweepAxes: []AxisSpec{{
			Name: "blissThreshold",
			Points: []AxisPoint{
				{Label: "thr2", Patch: `{"Ctrl":{"AlgParams":{"Threshold":2}}}`},
				{Label: "thr4", Patch: `{"Ctrl":{"AlgParams":{"Threshold":4}}}`},
				{Label: "thr8", Patch: `{"Ctrl":{"AlgParams":{"Threshold":8}}}`},
			},
		}},
	})
	MustRegister(Registration{
		Policy:  frfcfsPolicy{},
		Aliases: []string{"frfcfs"},
		Doc:     "row-hit-first + direction + age (BLISS minus the blacklist)",
	})
	MustRegister(Registration{
		Policy: fcfsPolicy{},
		Doc:    "pure age order (no row-hit or direction preference)",
	})
}

// blissPolicy adapts the BLISS blacklist tracker to the Policy interface.
type blissPolicy struct{}

func (blissPolicy) Name() string { return "BLISS" }

func (blissPolicy) New(apps int, params Params) Instance {
	// The BLISS state is embedded by value so a channel's instance is a
	// single allocation (plus the blacklist slice); the bench gate pins
	// controller construction cost.
	i := &blissInstance{overflow: apps > 64}
	i.b.Threshold = DefaultThreshold
	i.b.ClearInterval = DefaultClearInterval
	i.b.blacklisted = make([]bool, apps)
	i.b.lastApp = -1
	if v, ok := params["Threshold"]; ok {
		i.b.Threshold = int(v)
	}
	if v, ok := params["ClearIntervalNS"]; ok {
		i.b.ClearInterval = simtime.Time(v) * simtime.Nanosecond
	}
	return i
}

// blissInstance exposes BLISS as a two-phase restriction: when anything
// is blacklisted, phase 0 admits only non-blacklisted applications and
// the controller's final unrestricted phase covers the remainder; when
// the blacklist is empty the pick collapses to a single phase. With at
// most 64 applications the restriction is the blacklist bitmask's
// complement; beyond that (overflow) it falls back to per-entry queries
// at the pick time captured by BeginPick. The periodic blacklist clear
// is applied on every consultation (BeginPick and each PhaseAllows), so
// the consultation schedule — part of the bit-identical contract — is
// exactly the pre-registry controller's.
type blissInstance struct {
	b        BLISS
	overflow bool         // more apps than the 64-bit mask tracks
	now      simtime.Time // pick time for per-entry queries (overflow)
	allowed  uint64       // ^blacklist mask captured by BeginPick
}

func (i *blissInstance) RowHitFirst() bool { return true }

func (i *blissInstance) BeginPick(now simtime.Time) int {
	i.now = now
	if i.overflow {
		if i.b.AnyBlacklisted(now) {
			return 2
		}
		return 1
	}
	m := i.b.BlacklistMask(now)
	i.allowed = ^m
	if m != 0 {
		return 2
	}
	return 1
}

func (i *blissInstance) PhaseMask(int) (uint64, bool) {
	if i.overflow {
		return 0, false
	}
	return i.allowed, true
}

func (i *blissInstance) PhaseAllows(_, app int) bool {
	return !i.b.Blacklisted(i.now, app)
}

func (i *blissInstance) OnServed(now simtime.Time, app int) { i.b.OnServed(now, app) }

// frfcfsPolicy is BLISS without the blacklist: a single unrestricted
// phase resolved by the controller's row-hit / direction / age key.
type frfcfsPolicy struct{}

func (frfcfsPolicy) Name() string             { return "FR-FCFS" }
func (frfcfsPolicy) New(int, Params) Instance { return frfcfsInstance{} }

type frfcfsInstance struct{}

func (frfcfsInstance) RowHitFirst() bool            { return true }
func (frfcfsInstance) BeginPick(simtime.Time) int   { return 1 }
func (frfcfsInstance) PhaseMask(int) (uint64, bool) { return ^uint64(0), true }
func (frfcfsInstance) PhaseAllows(int, int) bool    { return true }
func (frfcfsInstance) OnServed(simtime.Time, int)   {}

// fcfsPolicy is pure age order: RowHitFirst false short-circuits the
// controller to oldest-first scans and the phase machinery is unused.
type fcfsPolicy struct{}

func (fcfsPolicy) Name() string             { return "FCFS" }
func (fcfsPolicy) New(int, Params) Instance { return fcfsInstance{} }

type fcfsInstance struct{}

func (fcfsInstance) RowHitFirst() bool            { return false }
func (fcfsInstance) BeginPick(simtime.Time) int   { return 1 }
func (fcfsInstance) PhaseMask(int) (uint64, bool) { return ^uint64(0), true }
func (fcfsInstance) PhaseAllows(int, int) bool    { return true }
func (fcfsInstance) OnServed(simtime.Time, int)   {}
