// Package policies registers the full in-tree scheduling-policy set by
// blank-importing every policy package. Binaries and tests import it for
// side effects:
//
//	import _ "dcasim/internal/sched/policies"
//
// The built-in BLISS/FR-FCFS/FCFS policies register from internal/sched
// itself (every controller build links them); this package adds the
// optional beyond-paper policies. A new policy package becomes available
// everywhere by adding one blank import here — docs/adding-a-policy.md
// walks through it.
package policies

import (
	_ "dcasim/internal/sched/atlas"
)
