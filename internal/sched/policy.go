package sched

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"dcasim/internal/simtime"
)

// Params carries a policy's resolved tunable parameters, keyed by the
// names declared in the registration's ParamSpecs. A Params produced by
// Registration.ResolveParams holds a value for every declared parameter
// (defaults filled in), so policy constructors may index it directly.
type Params map[string]float64

// Get returns the named parameter's value. On a Params produced by
// ResolveParams the value is always present; absent keys read as zero.
func (p Params) Get(name string) float64 { return p[name] }

// ParamSpec declares one tunable a policy accepts through the
// configuration's AlgParams map. The range [Min, Max] is enforced by
// ResolveParams when Max > Min; otherwise the parameter is unconstrained.
type ParamSpec struct {
	Name     string
	Default  float64
	Min, Max float64
	Doc      string
}

// Instance is one channel's live scheduling state: the per-pick phase
// restrictions and the service feedback a policy consumes. Instances are
// created per controller by Policy.New and are never shared.
//
// The controller resolves each scheduling slot over the shared indexed
// (bank, lane) queues in *phases*: BeginPick returns how many restriction
// phases this pick has, and the controller scans the queues once per
// phase in priority order, returning the first phase's best candidate
// (row hits first, then bus direction, then age — the FR-FCFS tail of
// the key). The final phase (phases-1) is always an unrestricted scan
// performed by the controller itself, so PhaseMask/PhaseAllows are only
// consulted for phases 0..phases-2: a policy's restrictions narrow the
// earlier phases, and BeginPick == 1 means "no restriction at all".
//
// Contract (checked by sched/policytest):
//
//   - BeginPick must return >= 1. It is called with the current simulated
//     time once per queue scan — up to a few times per scheduling slot,
//     always with the same now — so any time-based state transition made
//     there must be idempotent at a fixed now.
//   - PhaseMask(p) reports phase p's allowed applications as a bitmask
//     (bit a set = application a is a candidate). ok=false means the
//     restriction is not mask-representable and the controller falls back
//     to per-entry PhaseAllows calls. In mask mode applications outside
//     bits 0..63 are always treated as candidates; a policy that must
//     deprioritise them has to return ok=false.
//   - PhaseAllows(p, app) must agree with a returned mask for apps 0..63
//     and must report true for any out-of-mask-range app, in every phase
//     where ok=true. PhaseMask and PhaseAllows are pure reads: policy
//     state may change only inside BeginPick and OnServed (the reference
//     oracle calls them with different granularity than the controller,
//     and impurity diverges the two schedules).
//   - RowHitFirst reports whether the policy wants the row-hit /
//     direction / age key at all. When false the controller serves pure
//     age order (FCFS) and never calls BeginPick/PhaseMask/PhaseAllows.
//     The result must be constant for the life of the instance; the
//     controller caches it at construction.
//   - OnServed observes every serviced access (its application id), for
//     feedback policies like BLISS blacklisting or ATLAS attained
//     service. It is called for every policy, in issue order.
type Instance interface {
	RowHitFirst() bool
	BeginPick(now simtime.Time) int
	PhaseMask(phase int) (mask uint64, ok bool)
	PhaseAllows(phase, app int) bool
	OnServed(now simtime.Time, app int)
}

// Policy is the factory a scheduling algorithm registers: a canonical
// name (the value of the configuration's Algorithm field) and a
// constructor producing per-channel instances. apps is the number of
// applications the workload multiprograms; params is the resolved
// parameter set (see ResolveParams).
type Policy interface {
	Name() string
	New(apps int, params Params) Instance
}

// AxisPoint is one point of a ready-made sweep axis: a human label and
// the JSON config patch that selects the point.
type AxisPoint struct {
	Label string
	Patch string
}

// AxisSpec is a ready-made sweep axis a policy ships with its
// registration (e.g. a threshold sweep). internal/exp converts these to
// SweepSpec axes via PolicyAxes.
type AxisSpec struct {
	Name   string
	Points []AxisPoint
}

// Registration bundles a Policy with the metadata the rest of the system
// consumes: accepted spellings, a one-line description, the declared
// tunables, and ready-made sweep axes.
type Registration struct {
	Policy    Policy
	Aliases   []string
	Doc       string
	Params    []ParamSpec
	SweepAxes []AxisSpec

	// defaults is the fully-defaulted parameter set, precomputed by
	// Register so the no-override ResolveParams path (one call per
	// controller construction) allocates nothing.
	defaults Params
}

var (
	regMu    sync.Mutex
	registry = map[string]*Registration{} // lower-cased name and aliases
	regNames []string                     // canonical names, registration order
)

// Register adds a policy to the registry. The canonical name and every
// alias must be unused (case-insensitively); a duplicate is an error so
// two packages cannot silently shadow each other. Registrations normally
// happen in package init functions; blank-import a policy package (or
// dcasim/internal/sched/policies for the whole in-tree set) to make it
// available.
func Register(r Registration) error {
	if r.Policy == nil {
		return fmt.Errorf("sched: Register: nil Policy")
	}
	name := r.Policy.Name()
	if name == "" {
		return fmt.Errorf("sched: Register: empty policy name")
	}
	seen := map[string]bool{}
	keys := make([]string, 0, 1+len(r.Aliases))
	for _, k := range append([]string{name}, r.Aliases...) {
		if !validPolicyName(k) {
			return fmt.Errorf("sched: Register %q: name %q must match [A-Za-z0-9._+-]+ (names flow into JSON configs and docs tables unescaped)", name, k)
		}
		lk := strings.ToLower(k)
		if !seen[lk] {
			seen[lk] = true
			keys = append(keys, lk)
		}
	}
	for _, s := range r.Params {
		if s.Name == "" {
			return fmt.Errorf("sched: Register %q: unnamed ParamSpec", name)
		}
		if s.Max > s.Min && (s.Default < s.Min || s.Default > s.Max) {
			return fmt.Errorf("sched: Register %q: parameter %q default %v outside [%v, %v]",
				name, s.Name, s.Default, s.Min, s.Max)
		}
	}
	regMu.Lock()
	defer regMu.Unlock()
	for _, k := range keys {
		if prev, ok := registry[k]; ok {
			return fmt.Errorf("sched: policy name %q already registered (by %q)", k, prev.Policy.Name())
		}
	}
	stored := r
	stored.defaults = make(Params, len(r.Params))
	for _, s := range r.Params {
		stored.defaults[s.Name] = s.Default
	}
	for _, k := range keys {
		registry[k] = &stored
	}
	// Also index the exact spellings (canonical name and aliases as
	// given): Lookup then hits them without lowercasing, keeping the
	// per-controller resolution allocation-free. The case-insensitive
	// collision check above already covered every case variant, so the
	// extra keys cannot clash.
	for _, k := range append([]string{name}, r.Aliases...) {
		registry[k] = &stored
	}
	regNames = append(regNames, name)
	return nil
}

// validPolicyName restricts registered names and aliases to characters
// that survive JSON encoding without escaping and render cleanly in
// markdown tables: core.Algorithm.MarshalJSON quotes names with a
// single append, and docs/adding-a-policy.md's policy table is matched
// by a literal-name regexp.
func validPolicyName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		case c == '.' || c == '_' || c == '+' || c == '-':
		default:
			return false
		}
	}
	return true
}

// MustRegister is Register that panics on error, for package init use.
func MustRegister(r Registration) {
	if err := Register(r); err != nil {
		panic(err)
	}
}

// Lookup resolves a policy name or alias (case-insensitively) to its
// registration.
func Lookup(name string) (*Registration, bool) {
	regMu.Lock()
	defer regMu.Unlock()
	if r, ok := registry[name]; ok {
		return r, true
	}
	r, ok := registry[strings.ToLower(name)]
	return r, ok
}

// Names returns the canonical names of every registered policy, sorted.
func Names() []string {
	regMu.Lock()
	defer regMu.Unlock()
	out := make([]string, len(regNames))
	copy(out, regNames)
	sort.Strings(out)
	return out
}

// ResolveParams validates raw overrides (the configuration's AlgParams
// map) against the declared ParamSpecs and returns the full parameter
// set: defaults for every declared parameter, overridden where given.
// Unknown parameter names and out-of-range values are errors.
//
// With no overrides the returned Params is a map shared by every
// caller (precomputed at registration, so controller construction does
// not allocate); treat it as read-only, as policy constructors do.
func (r *Registration) ResolveParams(overrides map[string]float64) (Params, error) {
	// defaults is nil only on a Registration that never went through
	// Register (possible in tests); fall through and build the map.
	if len(overrides) == 0 && r.defaults != nil {
		return r.defaults, nil
	}
	p := make(Params, len(r.Params))
	for _, s := range r.Params {
		p[s.Name] = s.Default
	}
	if len(overrides) == 0 {
		return p, nil
	}
	keys := make([]string, 0, len(overrides))
	for k := range overrides {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		v := overrides[k]
		spec := r.paramSpec(k)
		if spec == nil {
			return nil, fmt.Errorf("sched: policy %q has no parameter %q (declared: %s)",
				r.Policy.Name(), k, r.paramNames())
		}
		if spec.Max > spec.Min && (v < spec.Min || v > spec.Max) {
			return nil, fmt.Errorf("sched: policy %q parameter %q = %v outside [%v, %v]",
				r.Policy.Name(), k, v, spec.Min, spec.Max)
		}
		p[k] = v
	}
	return p, nil
}

func (r *Registration) paramSpec(name string) *ParamSpec {
	for i := range r.Params {
		if r.Params[i].Name == name {
			return &r.Params[i]
		}
	}
	return nil
}

func (r *Registration) paramNames() string {
	if len(r.Params) == 0 {
		return "none"
	}
	names := make([]string, len(r.Params))
	for i, s := range r.Params {
		names[i] = s.Name
	}
	return strings.Join(names, ", ")
}
