// Package cpu models the processor side of the system: a trace-driven
// approximation of the paper's out-of-order cores (4 GHz, 8-wide, 192 ROB
// entries) plus the private L1 and shared L2 in front of the DRAM cache.
//
// The model captures exactly what the paper's evaluation depends on:
// loads that miss the SRAM hierarchy are latency-critical — the core can
// run ahead only until its reorder-buffer window or MSHRs fill — while
// stores and writebacks drain asynchronously and never stall the core.
// Instruction throughput between memory operations is paced at the
// dispatch width.
package cpu

import (
	"dcasim/internal/cache"
	"dcasim/internal/event"
	"dcasim/internal/simtime"
	"dcasim/internal/workload"
)

// Params configures a core.
type Params struct {
	FreqGHz float64 // clock frequency
	Width   int     // dispatch width (instructions per cycle)
	ROB     int     // reorder-buffer entries (run-ahead window)
	MSHRs   int     // maximum outstanding long-latency loads
}

// DefaultParams matches Table II: 4 GHz, 8-wide, 192 ROB entries, with
// 16 MSHRs (gem5's default L1 MSHR provisioning is of this order).
func DefaultParams() Params {
	return Params{FreqGHz: 4, Width: 8, ROB: 192, MSHRs: 16}
}

type inflight struct {
	idx  int64 // instruction index at dispatch
	done bool
}

// Core is one trace-driven core.
type Core struct {
	eng *event.Engine
	id  int
	par Params
	src workload.Source
	l1  *cache.Cache
	l2  *L2

	slot simtime.Time // dispatch time per instruction

	target     int64
	executed   int64
	cpuTime    simtime.Time
	pendingOp  workload.Op
	havePend   bool
	pendingAt  simtime.Time
	loads      []inflight
	notDone    int
	waiting    bool
	stepQueued bool
	finished   bool
	finishedAt simtime.Time
	onFinish   func(*Core)

	Loads     int64
	Stores    int64
	L1Misses  int64
	StallTime simtime.Time
}

// NewCore builds a core over its workload source (a synthetic generator
// or a trace-replay stream), private L1, and the shared L2.
func NewCore(eng *event.Engine, id int, par Params, src workload.Source, l1 *cache.Cache, l2 *L2) *Core {
	cycle := simtime.FromNS(1 / par.FreqGHz)
	return &Core{
		eng:  eng,
		id:   id,
		par:  par,
		src:  src,
		l1:   l1,
		l2:   l2,
		slot: cycle / simtime.Time(par.Width),
	}
}

// ID returns the core index.
func (c *Core) ID() int { return c.id }

// Finished reports whether the core retired its instruction target.
func (c *Core) Finished() bool { return c.finished }

// FinishTime returns when the target was reached (valid once Finished).
func (c *Core) FinishTime() simtime.Time { return c.finishedAt }

// Executed returns retired instructions so far.
func (c *Core) Executed() int64 { return c.executed }

// IPC returns retired instructions per cycle over the run (valid once
// Finished).
func (c *Core) IPC() float64 {
	if c.finishedAt == 0 {
		return 0
	}
	cycles := float64(c.finishedAt) / float64(simtime.FromNS(1/c.par.FreqGHz))
	return float64(c.target) / cycles
}

// Event kinds a Core schedules on itself, carried in Payload.U64.
const (
	coreStep     = iota // advance the dispatch loop
	coreLoadDone        // a long-latency load completed (Payload.I64 = idx)
)

// OnEvent implements event.Handler for the core's own events.
func (c *Core) OnEvent(_ simtime.Time, p event.Payload) {
	if p.U64 == coreLoadDone {
		c.completeLoad(p.I64)
		return
	}
	c.step()
}

// Run starts the core toward target retired instructions; onFinish fires
// when it gets there.
func (c *Core) Run(target int64, onFinish func(*Core)) {
	c.target = target
	c.onFinish = onFinish
	c.eng.Schedule(c.eng.Now(), c, event.Payload{U64: coreStep})
}

// Warm advances the core's trace through the functional hierarchy for
// memops memory operations without consuming simulated time, warming L1,
// L2, DRAM-cache tags, and the miss predictor.
func (c *Core) Warm(memops int64) {
	for i := int64(0); i < memops; i++ {
		op := c.src.Next()
		if op.Store {
			res := c.l1.Access(op.Addr, true)
			if !res.Hit && res.VictimValid && res.VictimDirty {
				c.l2.WarmWrite(res.VictimAddr, c.id)
			}
			continue
		}
		res := c.l1.Access(op.Addr, false)
		if !res.Hit {
			if res.VictimValid && res.VictimDirty {
				c.l2.WarmWrite(res.VictimAddr, c.id)
			}
			c.l2.WarmRead(op.Addr, c.id, op.PC)
		}
	}
	c.l1.ResetStats()
}

// step advances the core as far as the trace, the ROB window, and the
// MSHRs allow, then parks until either the next dispatch slot or a load
// completion.
func (c *Core) step() {
	c.stepQueued = false
	now := c.eng.Now()
	if c.cpuTime < now {
		// Time the core could not dispatch (blocked on memory).
		c.StallTime += now - c.cpuTime
		c.cpuTime = now
	}
	for {
		if c.finished {
			return
		}
		c.popCompleted()
		if c.executed >= c.target {
			c.finish()
			return
		}
		// Fetch the next memory operation lazily so its dispatch time
		// is pinned once.
		if !c.havePend {
			c.pendingOp = c.src.Next()
			c.havePend = true
			c.pendingAt = c.cpuTime + simtime.Time(c.pendingOp.Gap+1)*c.slot
		}
		// Blocked on the ROB window? The oldest incomplete load pins
		// retirement; dispatch may run at most ROB instructions ahead.
		if len(c.loads) > 0 {
			head := c.loads[0]
			if !head.done && c.executed+int64(c.pendingOp.Gap)+1-head.idx >= int64(c.par.ROB) {
				c.waiting = true
				return
			}
		}
		if c.notDone >= c.par.MSHRs {
			c.waiting = true
			return
		}
		if c.pendingAt > now {
			c.eng.Schedule(c.pendingAt, c, event.Payload{U64: coreStep})
			c.stepQueued = true
			return
		}
		op := c.pendingOp
		c.havePend = false
		c.executed += int64(op.Gap) + 1
		// A stall may have carried cpuTime past the dispatch point that
		// was computed before the stall; never move the clock backward.
		c.cpuTime = simtime.Max(c.cpuTime, c.pendingAt)
		c.execMem(op)
	}
}

// execMem performs the memory operation at the current dispatch point.
func (c *Core) execMem(op workload.Op) {
	if op.Store {
		c.Stores++
		res := c.l1.Access(op.Addr, true)
		if !res.Hit {
			c.L1Misses++
			if res.VictimValid && res.VictimDirty {
				c.l2.Write(res.VictimAddr, c.id)
			}
		}
		return
	}
	c.Loads++
	res := c.l1.Access(op.Addr, false)
	if res.Hit {
		return // L1 hit latency is hidden by the OoO window
	}
	c.L1Misses++
	if res.VictimValid && res.VictimDirty {
		c.l2.Write(res.VictimAddr, c.id)
	}
	idx := c.executed
	c.loads = append(c.loads, inflight{idx: idx})
	c.notDone++
	c.l2.Read(op.Addr, c.id, op.PC,
		event.Callback{H: c, P: event.Payload{U64: coreLoadDone, I64: idx}})
}

// completeLoad marks the load dispatched at instruction idx complete and
// wakes the core if it was blocked.
func (c *Core) completeLoad(idx int64) {
	for i := range c.loads {
		if c.loads[i].idx == idx && !c.loads[i].done {
			c.loads[i].done = true
			c.notDone--
			break
		}
	}
	if c.waiting && !c.stepQueued {
		c.waiting = false
		c.step()
	}
}

// popCompleted retires completed loads from the head of the FIFO
// (in-order retirement).
func (c *Core) popCompleted() {
	i := 0
	for i < len(c.loads) && c.loads[i].done {
		i++
	}
	if i > 0 {
		c.loads = append(c.loads[:0], c.loads[i:]...)
	}
}

func (c *Core) finish() {
	c.finished = true
	c.finishedAt = c.cpuTime
	if c.onFinish != nil {
		c.onFinish(c)
	}
}
