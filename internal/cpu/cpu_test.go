package cpu

import (
	"testing"

	"dcasim/internal/cache"
	"dcasim/internal/core"
	"dcasim/internal/dcache"
	"dcasim/internal/dram"
	"dcasim/internal/event"
	"dcasim/internal/mainmem"
	"dcasim/internal/simtime"
	"dcasim/internal/workload"

	"dcasim/internal/addrmap"
)

type rig struct {
	eng  *event.Engine
	dc   *dcache.DCache
	l2   *L2
	core *Core
	mem  *mainmem.Memory
}

func newRig(t *testing.T, bench string, memLatency simtime.Time, lee bool) *rig {
	t.Helper()
	eng := &event.Engine{}
	memCfg := mainmem.DefaultConfig()
	if memLatency > 0 {
		memCfg.Latency = memLatency
	}
	mem := mainmem.New(eng, memCfg)
	dc, err := dcache.New(eng, dcache.Config{
		Org:       dcache.SetAssoc,
		SizeBytes: 1 << 20,
		DRAM:      addrmap.Geometry{Channels: 4, Ranks: 1, Banks: 16, RowBytes: 4096, BlockSize: 64},
		Timing:    dram.StackedDRAM(),
		Ctrl:      core.DefaultConfig(core.CD),
		Cores:     1,
	}, mem)
	if err != nil {
		t.Fatal(err)
	}
	l2arr, err := cache.New(256<<10, 64, 8)
	if err != nil {
		t.Fatal(err)
	}
	l2 := NewL2(eng, l2arr, dc, 5*simtime.Nanosecond, lee)
	prof, err := workload.Lookup(bench)
	if err != nil {
		t.Fatal(err)
	}
	gen := workload.NewGen(prof, 11, 0, 0.02)
	l1, err := cache.New(32<<10, 64, 2)
	if err != nil {
		t.Fatal(err)
	}
	c := NewCore(eng, 0, DefaultParams(), gen, l1, l2)
	return &rig{eng: eng, dc: dc, l2: l2, core: c, mem: mem}
}

func run(t *testing.T, r *rig, instrs int64) {
	t.Helper()
	done := false
	r.core.Run(instrs, func(*Core) { done = true })
	for !done {
		if !r.eng.Step() {
			t.Fatalf("deadlock: core stuck at %v after %d instructions", r.eng.Now(), r.core.Executed())
		}
	}
}

func TestCoreFinishes(t *testing.T) {
	r := newRig(t, "mcf", 0, false)
	run(t, r, 20_000)
	if !r.core.Finished() {
		t.Fatal("core did not finish")
	}
	ipc := r.core.IPC()
	if ipc <= 0 || ipc > float64(DefaultParams().Width) {
		t.Fatalf("implausible IPC %v", ipc)
	}
}

func TestMemoryBoundCoreIsSlower(t *testing.T) {
	// The ROB window must make the core latency-sensitive: the same
	// trace with 10x main-memory latency must take meaningfully longer.
	fast := newRig(t, "mcf", 50*simtime.Nanosecond, false)
	run(t, fast, 20_000)
	slow := newRig(t, "mcf", 500*simtime.Nanosecond, false)
	run(t, slow, 20_000)
	if slow.core.FinishTime() < fast.core.FinishTime()*2 {
		t.Fatalf("10x memory latency only moved finish from %v to %v — window model broken",
			fast.core.FinishTime(), slow.core.FinishTime())
	}
}

func TestROBWindowBoundsOverlap(t *testing.T) {
	// At most MSHRs loads may be outstanding; the window blocks dispatch
	// beyond ROB instructions past the oldest incomplete load. Indirect
	// check: stall time is accounted and positive for a miss-heavy run.
	r := newRig(t, "mcf", 0, false)
	run(t, r, 20_000)
	if r.core.StallTime == 0 {
		t.Fatal("miss-heavy workload recorded zero stall time")
	}
	if r.core.Loads == 0 || r.core.L1Misses == 0 {
		t.Fatalf("trace produced no memory traffic: loads=%d l1miss=%d", r.core.Loads, r.core.L1Misses)
	}
}

func TestStoresDoNotBlock(t *testing.T) {
	// lbm is store-heavy; stores must drain through the write path
	// without stalling retirement. Its stall time should come only from
	// loads, so a store-heavy benchmark must not be dramatically slower
	// than dispatch for the same load count.
	r := newRig(t, "lbm", 0, false)
	run(t, r, 200_000)
	if r.core.Stores == 0 {
		t.Fatal("lbm produced no stores")
	}
	if r.l2.Writebacks == 0 {
		t.Fatal("store-heavy run produced no L2 writebacks to the DRAM cache")
	}
}

func TestWarmDoesNotAdvanceTime(t *testing.T) {
	r := newRig(t, "gcc", 0, false)
	r.core.Warm(10_000)
	if r.eng.Now() != 0 {
		t.Fatalf("warm-up advanced simulated time to %v", r.eng.Now())
	}
	if r.eng.Pending() != 0 {
		t.Fatalf("warm-up left %d pending events", r.eng.Pending())
	}
}

func TestL2MSHRMerging(t *testing.T) {
	eng := &event.Engine{}
	mem := mainmem.New(eng, mainmem.DefaultConfig())
	dc, err := dcache.New(eng, dcache.Config{
		Org:       dcache.SetAssoc,
		SizeBytes: 1 << 20,
		DRAM:      addrmap.Geometry{Channels: 1, Ranks: 1, Banks: 16, RowBytes: 4096, BlockSize: 64},
		Timing:    dram.StackedDRAM(),
		Ctrl:      core.DefaultConfig(core.CD),
		Cores:     1,
	}, mem)
	if err != nil {
		t.Fatal(err)
	}
	l2arr, _ := cache.New(64<<10, 64, 8)
	l2 := NewL2(eng, l2arr, dc, 5*simtime.Nanosecond, false)

	completions := 0
	l2.Read(42, 0, 1, event.Func(func(simtime.Time) { completions++ }))
	l2.Read(42, 0, 1, event.Func(func(simtime.Time) { completions++ })) // merges
	eng.Run()
	if completions != 2 {
		t.Fatalf("%d completions, want 2", completions)
	}
	if dc.Stats().ReadReqs != 1 {
		t.Fatalf("MSHR did not merge: %d DRAM cache reads, want 1", dc.Stats().ReadReqs)
	}
	if l2.ReadMisses != 2 {
		t.Fatalf("read misses = %d, want 2", l2.ReadMisses)
	}
}

func TestL2HitLatency(t *testing.T) {
	eng := &event.Engine{}
	mem := mainmem.New(eng, mainmem.DefaultConfig())
	dc, _ := dcache.New(eng, dcache.Config{
		Org:       dcache.SetAssoc,
		SizeBytes: 1 << 20,
		DRAM:      addrmap.Geometry{Channels: 1, Ranks: 1, Banks: 16, RowBytes: 4096, BlockSize: 64},
		Timing:    dram.StackedDRAM(),
		Ctrl:      core.DefaultConfig(core.CD),
		Cores:     1,
	}, mem)
	l2arr, _ := cache.New(64<<10, 64, 8)
	l2 := NewL2(eng, l2arr, dc, 5*simtime.Nanosecond, false)
	l2.Write(42, 0) // install
	var done simtime.Time
	l2.Read(42, 0, 1, event.Func(func(now simtime.Time) { done = now }))
	eng.Run()
	if done != 5*simtime.Nanosecond {
		t.Fatalf("L2 hit completed at %v, want 5ns", done)
	}
}

func TestLeeEagerWriteback(t *testing.T) {
	eng := &event.Engine{}
	mem := mainmem.New(eng, mainmem.DefaultConfig())
	dc, _ := dcache.New(eng, dcache.Config{
		Org:       dcache.SetAssoc,
		SizeBytes: 1 << 20,
		DRAM:      addrmap.Geometry{Channels: 1, Ranks: 1, Banks: 16, RowBytes: 4096, BlockSize: 64},
		Timing:    dram.StackedDRAM(),
		Ctrl:      core.DefaultConfig(core.CD),
		Cores:     1,
	}, mem)
	l2arr, _ := cache.New(64<<10, 64, 8) // 128 sets
	l2 := NewL2(eng, l2arr, dc, 5*simtime.Nanosecond, true)

	// Dirty DRAM-cache-row-mates of block 0 (blocks 0..3 share a row in
	// the SA layout) living in different L2 sets.
	l2.Write(0, 0)
	l2.Write(1, 0)
	l2.Write(2, 0)
	// Evict block 0 from L2 by filling its set (set = addr % 128).
	for i := 1; i <= 8; i++ {
		l2.Write(int64(i*128), 0)
	}
	eng.RunUntil(eng.Now()) // flush nothing; writebacks are sync
	if l2.LeeEager < 2 {
		t.Fatalf("Lee policy drained %d row-mates, want >= 2 (blocks 1 and 2)", l2.LeeEager)
	}
	// Blocks 1 and 2 must now be clean in L2.
	if _, dirty := l2arr.Probe(1); dirty {
		t.Fatal("row-mate 1 still dirty after Lee drain")
	}
	if l2.Writebacks < 3 {
		t.Fatalf("writebacks = %d, want >= 3 (victim + 2 row-mates)", l2.Writebacks)
	}
}

func TestIPCZeroBeforeFinish(t *testing.T) {
	r := newRig(t, "gcc", 0, false)
	if r.core.IPC() != 0 {
		t.Fatal("IPC before finishing should be 0")
	}
}
