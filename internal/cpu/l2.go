package cpu

import (
	"dcasim/internal/cache"
	"dcasim/internal/dcache"
	"dcasim/internal/event"
	"dcasim/internal/simtime"
)

var _ event.Handler = (*L2)(nil)

// L2 is the shared last-level SRAM cache in front of the DRAM cache. It
// is functional with a fixed hit latency; misses go to the DRAM cache and
// merge in MSHRs. Dirty evictions become DRAM-cache writeback requests,
// optionally widened by the Lee DRAM-aware writeback policy (Fig. 19):
// when a dirty block is evicted, other dirty L2 blocks that map to the
// same DRAM-cache row are eagerly written back (and left resident clean),
// so the DRAM cache services row-batched writes.
type L2 struct {
	eng    *event.Engine
	arr    *cache.Cache
	dc     *dcache.DCache
	hitLat simtime.Time
	lee    bool

	mshr map[int64][]event.Callback
	// wpool recycles drained MSHR waiter slices so misses allocate no
	// fresh slice headers in steady state.
	wpool [][]event.Callback

	Reads        int64
	ReadMisses   int64
	Writebacks   int64 // dirty evictions sent to the DRAM cache
	LeeEager     int64 // extra row-mate writebacks issued by the Lee policy
	MissLatency  simtime.Time
	MissesServed int64
}

// NewL2 builds the shared L2.
func NewL2(eng *event.Engine, arr *cache.Cache, dc *dcache.DCache, hitLat simtime.Time, lee bool) *L2 {
	return &L2{
		eng:    eng,
		arr:    arr,
		dc:     dc,
		hitLat: hitLat,
		lee:    lee,
		mshr:   make(map[int64][]event.Callback),
	}
}

// getWaiters returns an empty waiter slice, reusing a drained one.
func (l *L2) getWaiters() []event.Callback {
	if n := len(l.wpool); n > 0 {
		w := l.wpool[n-1]
		l.wpool[n-1] = nil
		l.wpool = l.wpool[:n-1]
		return w
	}
	return make([]event.Callback, 0, 4)
}

// Read services a load that missed in L1. done fires when the block is
// available to the core.
func (l *L2) Read(addr int64, coreID int, pc uint64, done event.Callback) {
	l.Reads++
	if l.arr.Touch(addr) { // hit: LRU refreshed in the same scan
		l.eng.CallAfter(l.hitLat, done)
		return
	}
	l.ReadMisses++
	if waiters, ok := l.mshr[addr]; ok {
		l.mshr[addr] = append(waiters, done)
		return
	}
	l.mshr[addr] = append(l.getWaiters(), done)
	l.dc.Read(addr, coreID, pc, event.Callback{H: l, P: event.Payload{
		I64:  addr,
		Time: l.eng.Now(),
		U64:  uint64(coreID),
	}})
}

// OnEvent implements event.Handler: the DRAM cache finished servicing a
// miss (Payload: I64 = block address, Time = request start, U64 = the
// first requester's core ID).
func (l *L2) OnEvent(now simtime.Time, p event.Payload) {
	addr := p.I64
	l.MissLatency += now - p.Time
	l.MissesServed++
	l.install(addr, false, int(p.U64))
	waiters := l.mshr[addr]
	delete(l.mshr, addr)
	for _, w := range waiters {
		w.Invoke(now)
	}
	for i := range waiters {
		waiters[i] = event.Callback{}
	}
	l.wpool = append(l.wpool, waiters[:0])
}

// Write installs a dirty block (an L1 dirty eviction). Allocation is
// no-fetch: stores are off the critical path in this study.
func (l *L2) Write(addr int64, coreID int) {
	l.install(addr, true, coreID)
}

// install places addr in the array and routes any dirty victim to the
// DRAM cache as a writeback request.
func (l *L2) install(addr int64, dirty bool, coreID int) {
	res := l.arr.Access(addr, dirty)
	if res.Hit || !res.VictimValid || !res.VictimDirty {
		return
	}
	l.writeback(res.VictimAddr, coreID)
	if l.lee {
		l.leeDrain(res.VictimAddr, coreID)
	}
}

func (l *L2) writeback(addr int64, coreID int) {
	l.Writebacks++
	l.dc.Writeback(addr, coreID)
}

// leeDrain implements the Lee policy: probe the victim's DRAM-row-mates
// and eagerly write back the dirty ones, leaving them resident clean.
func (l *L2) leeDrain(victim int64, coreID int) {
	lo, hi := l.dc.RowSpan(victim)
	for a := lo; a < hi; a++ {
		if a == victim {
			continue
		}
		if present, dirty := l.arr.Probe(a); present && dirty {
			l.arr.Clean(a)
			l.LeeEager++
			l.writeback(a, coreID)
		}
	}
}

// WarmRead is the functional warm-up read path.
func (l *L2) WarmRead(addr int64, coreID int, pc uint64) {
	if l.arr.Touch(addr) {
		return
	}
	l.dc.WarmRead(addr, coreID, pc)
	l.warmInstall(addr, false, coreID)
}

// WarmWrite is the functional warm-up write path.
func (l *L2) WarmWrite(addr int64, coreID int) {
	l.warmInstall(addr, true, coreID)
}

func (l *L2) warmInstall(addr int64, dirty bool, coreID int) {
	res := l.arr.Access(addr, dirty)
	if !res.Hit && res.VictimValid && res.VictimDirty {
		l.dc.WarmWrite(res.VictimAddr, coreID)
	}
}

// AvgMissLatency returns the mean time the L2 waited on the DRAM cache,
// the paper's L2-miss-latency metric (Figs. 12/13).
func (l *L2) AvgMissLatency() simtime.Time {
	if l.MissesServed == 0 {
		return 0
	}
	return l.MissLatency / simtime.Time(l.MissesServed)
}

// ResetStats clears counters at the warm-up boundary.
func (l *L2) ResetStats() {
	l.Reads, l.ReadMisses, l.Writebacks, l.LeeEager = 0, 0, 0, 0
	l.MissLatency, l.MissesServed = 0, 0
	l.arr.ResetStats()
}
