// Package stats provides the evaluation arithmetic of the paper: weighted
// speedup over per-application alone IPCs (Eyerman & Eeckhout), geometric
// means for averaging across workloads, and small table-formatting
// helpers shared by the experiment drivers.
package stats

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strings"
)

// WeightedSpeedup returns sum_i shared[i]/alone[i], the multiprogrammed
// throughput metric used for every speedup figure in the paper. A length
// mismatch or a non-positive alone IPC is a data error, not a programming
// error — a degenerate run (e.g. a zero-op replay trace under -keep-going)
// reaches this at table-render time, after every simulation has already
// completed — so it is reported as an error rather than a panic.
func WeightedSpeedup(shared, alone []float64) (float64, error) {
	if len(shared) != len(alone) {
		return 0, fmt.Errorf("stats: weighted speedup with %d shared vs %d alone IPCs", len(shared), len(alone))
	}
	ws := 0.0
	for i := range shared {
		if alone[i] <= 0 {
			return 0, fmt.Errorf("stats: non-positive alone IPC %v at %d", alone[i], i)
		}
		ws += shared[i] / alone[i]
	}
	return ws, nil
}

// GeoMean returns the geometric mean of xs, or 0 for an empty slice. A
// non-positive value has no geometric mean and is reported as an error
// (see WeightedSpeedup for why this must not panic).
func GeoMean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, nil
	}
	sum := 0.0
	for _, x := range xs {
		if x <= 0 {
			return 0, fmt.Errorf("stats: geometric mean of non-positive value %v", x)
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs))), nil
}

// Mean returns the arithmetic mean of xs, or 0 when empty.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// StdDev returns the sample standard deviation of xs (Bessel-corrected,
// n-1 denominator), or 0 for fewer than two values.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	sum := 0.0
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(xs)-1))
}

// tCrit95 holds the two-tailed Student-t critical values at 95%
// confidence for 1..30 degrees of freedom; tCritical steps down to the
// asymptotic 1.960 beyond that. A normal approximation would understate
// the interval badly at the replicate counts experiments actually use
// (N = 3..10, so df = 2..9 — where t is 1.2-2.2x the normal quantile).
var tCrit95 = [...]float64{
	12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
	2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
	2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
}

func tCritical(df int) float64 {
	switch {
	case df < 1:
		return 0
	case df <= len(tCrit95):
		return tCrit95[df-1]
	case df <= 40:
		return 2.021
	case df <= 60:
		return 2.000
	case df <= 120:
		return 1.980
	}
	return 1.960
}

// CI95 returns the half-width of the 95% confidence interval of the mean
// of xs under the Student-t distribution: t_{0.975,n-1} * s / sqrt(n).
// It returns 0 for fewer than two values — a point estimate has no
// interval.
func CI95(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	return tCritical(n-1) * StdDev(xs) / math.Sqrt(float64(n))
}

// Sample is a replicated measurement: the mean across N seeded replicate
// runs and the half-width of its 95% confidence interval. Table renders a
// Sample cell as "mean ±CI" in text and splits it into two columns
// (value, value ci95) in CSV and JSON output.
type Sample struct {
	Mean float64
	CI   float64
}

// Summarize folds replicate values into a Sample: their arithmetic mean
// and the CI95 half-width.
func Summarize(xs []float64) Sample {
	return Sample{Mean: Mean(xs), CI: CI95(xs)}
}

// String renders the sample as "mean ±ci" with the same precision plain
// float cells use.
func (s Sample) String() string {
	return fmt.Sprintf("%.3f ±%.3f", s.Mean, s.CI)
}

// Table accumulates rows for aligned text output of experiment results.
type Table struct {
	header []string
	rows   [][]string
	// samps records, per row, which cells were added as Sample values
	// (column index -> the sample), so CSV/JSON output can split them
	// into separate mean and ci95 columns. nil for rows without samples.
	samps []map[int]Sample
}

// NewTable starts a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends a row; cells beyond the header width are kept as-is.
func (t *Table) AddRow(cells ...string) {
	t.rows = append(t.rows, cells)
	t.samps = append(t.samps, nil)
}

// AddRowf appends a row where each value is formatted with %v for
// strings, %.3f for floats, and "mean ±ci" for Sample cells.
func (t *Table) AddRowf(cells ...interface{}) {
	row := make([]string, len(cells))
	var samps map[int]Sample
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		case Sample:
			row[i] = v.String()
			if samps == nil {
				samps = make(map[int]Sample)
			}
			samps[i] = v
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.rows = append(t.rows, row)
	t.samps = append(t.samps, samps)
}

// Header returns the column headers.
func (t *Table) Header() []string { return t.header }

// Rows returns the formatted cell strings, row-major. The slice is the
// table's backing store; callers must not mutate it.
func (t *Table) Rows() [][]string { return t.rows }

// sampleCols reports which header columns hold at least one Sample cell;
// the second return is true when any do. Columns are scanned by index so
// the result is deterministic.
func (t *Table) sampleCols() ([]bool, bool) {
	cols := make([]bool, len(t.header))
	any := false
	for i := range t.rows {
		for j := range cols {
			if _, ok := t.samps[i][j]; ok {
				cols[j] = true
				any = true
			}
		}
	}
	return cols, any
}

// expandHeader widens the header for CSV/JSON output: every column that
// holds Sample cells gains a trailing "<name> ci95" column.
func (t *Table) expandHeader(cols []bool) []string {
	out := make([]string, 0, len(t.header))
	for j, h := range t.header {
		out = append(out, h)
		if cols[j] {
			out = append(out, h+" ci95")
		}
	}
	return out
}

// expandRow widens one row to match expandHeader: Sample cells split
// into mean and ci95 values; plain cells in a sample-bearing column get
// an empty ci95 cell.
func (t *Table) expandRow(cols []bool, i int) []string {
	row := t.rows[i]
	out := make([]string, 0, len(row))
	for j, c := range row {
		if s, ok := t.samps[i][j]; ok {
			out = append(out, fmt.Sprintf("%.3f", s.Mean), fmt.Sprintf("%.3f", s.CI))
			continue
		}
		out = append(out, c)
		if j < len(cols) && cols[j] {
			out = append(out, "")
		}
	}
	return out
}

// MarshalJSON encodes the table as {"header": [...], "rows": [[...]]},
// the machine-readable form behind the -format json output modes. Tables
// holding Sample cells split each sampled column into mean and ci95
// columns; without samples the encoding is byte-identical to the
// single-run form.
func (t *Table) MarshalJSON() ([]byte, error) {
	header, rows := t.header, t.rows
	if cols, any := t.sampleCols(); any {
		header = t.expandHeader(cols)
		rows = make([][]string, len(t.rows))
		for i := range t.rows {
			rows[i] = t.expandRow(cols, i)
		}
	}
	if rows == nil {
		rows = [][]string{}
	}
	return json.Marshal(struct {
		Header []string   `json:"header"`
		Rows   [][]string `json:"rows"`
	}{header, rows})
}

// CheckFormat validates a -format flag value up front, so a typo fails
// before any simulation work rather than at the first rendered table.
func CheckFormat(format string) error {
	switch format {
	case "text", "csv", "json":
		return nil
	}
	return fmt.Errorf("unknown format %q (want text, csv, or json)", format)
}

// Write renders the table in the given format ("text", "csv", "json") —
// the one implementation behind every command's -format flag.
func (t *Table) Write(w io.Writer, format string) error {
	switch format {
	case "text":
		_, err := io.WriteString(w, t.String())
		return err
	case "csv":
		return t.WriteCSV(w)
	case "json":
		data, err := t.MarshalJSON()
		if err != nil {
			return err
		}
		_, err = fmt.Fprintf(w, "%s\n", data)
		return err
	}
	return CheckFormat(format)
}

// WriteCSV emits the table as RFC 4180 CSV, header row first. Sampled
// columns split into mean and ci95 columns exactly as in MarshalJSON.
func (t *Table) WriteCSV(w io.Writer) error {
	cols, any := t.sampleCols()
	cw := csv.NewWriter(w)
	header := t.header
	if any {
		header = t.expandHeader(cols)
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for i, row := range t.rows {
		if any {
			row = t.expandRow(cols, i)
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			if i < len(widths) {
				fmt.Fprintf(&b, "%-*s", widths[i], c)
			} else {
				b.WriteString(c)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}
