// Package stats provides the evaluation arithmetic of the paper: weighted
// speedup over per-application alone IPCs (Eyerman & Eeckhout), geometric
// means for averaging across workloads, and small table-formatting
// helpers shared by the experiment drivers.
package stats

import (
	"fmt"
	"math"
	"strings"
)

// WeightedSpeedup returns sum_i shared[i]/alone[i], the multiprogrammed
// throughput metric used for every speedup figure in the paper.
func WeightedSpeedup(shared, alone []float64) float64 {
	if len(shared) != len(alone) {
		panic(fmt.Sprintf("stats: weighted speedup with %d shared vs %d alone IPCs", len(shared), len(alone)))
	}
	ws := 0.0
	for i := range shared {
		if alone[i] <= 0 {
			panic(fmt.Sprintf("stats: non-positive alone IPC %v at %d", alone[i], i))
		}
		ws += shared[i] / alone[i]
	}
	return ws
}

// GeoMean returns the geometric mean of xs; all values must be positive.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		if x <= 0 {
			panic(fmt.Sprintf("stats: geometric mean of non-positive value %v", x))
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}

// Mean returns the arithmetic mean of xs, or 0 when empty.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Table accumulates rows for aligned text output of experiment results.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable starts a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends a row; cells beyond the header width are kept as-is.
func (t *Table) AddRow(cells ...string) { t.rows = append(t.rows, cells) }

// AddRowf appends a row where each value is formatted with %v for
// strings and %.3f for floats.
func (t *Table) AddRowf(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.rows = append(t.rows, row)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			if i < len(widths) {
				fmt.Fprintf(&b, "%-*s", widths[i], c)
			} else {
				b.WriteString(c)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}
