// Package stats provides the evaluation arithmetic of the paper: weighted
// speedup over per-application alone IPCs (Eyerman & Eeckhout), geometric
// means for averaging across workloads, and small table-formatting
// helpers shared by the experiment drivers.
package stats

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strings"
)

// WeightedSpeedup returns sum_i shared[i]/alone[i], the multiprogrammed
// throughput metric used for every speedup figure in the paper.
func WeightedSpeedup(shared, alone []float64) float64 {
	if len(shared) != len(alone) {
		panic(fmt.Sprintf("stats: weighted speedup with %d shared vs %d alone IPCs", len(shared), len(alone)))
	}
	ws := 0.0
	for i := range shared {
		if alone[i] <= 0 {
			panic(fmt.Sprintf("stats: non-positive alone IPC %v at %d", alone[i], i))
		}
		ws += shared[i] / alone[i]
	}
	return ws
}

// GeoMean returns the geometric mean of xs; all values must be positive.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		if x <= 0 {
			panic(fmt.Sprintf("stats: geometric mean of non-positive value %v", x))
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}

// Mean returns the arithmetic mean of xs, or 0 when empty.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Table accumulates rows for aligned text output of experiment results.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable starts a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends a row; cells beyond the header width are kept as-is.
func (t *Table) AddRow(cells ...string) { t.rows = append(t.rows, cells) }

// AddRowf appends a row where each value is formatted with %v for
// strings and %.3f for floats.
func (t *Table) AddRowf(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.rows = append(t.rows, row)
}

// Header returns the column headers.
func (t *Table) Header() []string { return t.header }

// Rows returns the formatted cell strings, row-major. The slice is the
// table's backing store; callers must not mutate it.
func (t *Table) Rows() [][]string { return t.rows }

// MarshalJSON encodes the table as {"header": [...], "rows": [[...]]},
// the machine-readable form behind the -format json output modes.
func (t *Table) MarshalJSON() ([]byte, error) {
	rows := t.rows
	if rows == nil {
		rows = [][]string{}
	}
	return json.Marshal(struct {
		Header []string   `json:"header"`
		Rows   [][]string `json:"rows"`
	}{t.header, rows})
}

// CheckFormat validates a -format flag value up front, so a typo fails
// before any simulation work rather than at the first rendered table.
func CheckFormat(format string) error {
	switch format {
	case "text", "csv", "json":
		return nil
	}
	return fmt.Errorf("unknown format %q (want text, csv, or json)", format)
}

// Write renders the table in the given format ("text", "csv", "json") —
// the one implementation behind every command's -format flag.
func (t *Table) Write(w io.Writer, format string) error {
	switch format {
	case "text":
		_, err := io.WriteString(w, t.String())
		return err
	case "csv":
		return t.WriteCSV(w)
	case "json":
		data, err := t.MarshalJSON()
		if err != nil {
			return err
		}
		_, err = fmt.Fprintf(w, "%s\n", data)
		return err
	}
	return CheckFormat(format)
}

// WriteCSV emits the table as RFC 4180 CSV, header row first.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.header); err != nil {
		return err
	}
	for _, row := range t.rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			if i < len(widths) {
				fmt.Fprintf(&b, "%-*s", widths[i], c)
			} else {
				b.WriteString(c)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}
