package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestWeightedSpeedup(t *testing.T) {
	ws, err := WeightedSpeedup([]float64{1, 2}, []float64{2, 2})
	if err != nil {
		t.Fatal(err)
	}
	if ws != 1.5 {
		t.Fatalf("WS = %v, want 1.5", ws)
	}
}

// TestWeightedSpeedupErrors pins the de-panicked failure mode: degenerate
// inputs reach WeightedSpeedup at table-render time, after the
// simulations already ran, so they must surface as errors rather than
// crash the process.
func TestWeightedSpeedupErrors(t *testing.T) {
	if _, err := WeightedSpeedup([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch did not error")
	}
	if _, err := WeightedSpeedup([]float64{1}, []float64{0}); err == nil {
		t.Error("zero alone IPC did not error")
	}
	if _, err := WeightedSpeedup([]float64{1}, []float64{-1}); err == nil {
		t.Error("negative alone IPC did not error")
	}
}

func TestGeoMean(t *testing.T) {
	got, err := GeoMean([]float64{2, 8})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-4) > 1e-12 {
		t.Fatalf("GeoMean(2,8) = %v, want 4", got)
	}
	if g, err := GeoMean(nil); err != nil || g != 0 {
		t.Fatalf("GeoMean(nil) = %v, %v, want 0, nil", g, err)
	}
	if _, err := GeoMean([]float64{1, 0}); err == nil {
		t.Error("GeoMean with zero did not error")
	}
	if _, err := GeoMean([]float64{1, -2}); err == nil {
		t.Error("GeoMean with negative did not error")
	}
}

func TestGeoMeanBounds(t *testing.T) {
	// Property: min <= geomean <= max for positive inputs. Inputs are
	// folded into (0.1, ~1e6]: near math.MaxFloat64 the exp(mean(log))
	// round-trip loses enough precision to overflow, which is not a
	// regime the simulator's metrics ever reach.
	fold := func(x float64) float64 { return math.Mod(math.Abs(x), 1e6) + 0.1 }
	f := func(a, b, c float64) bool {
		xs := []float64{fold(a), fold(b), fold(c)}
		g, err := GeoMean(xs)
		if err != nil {
			return false
		}
		lo, hi := xs[0], xs[0]
		for _, x := range xs {
			lo, hi = math.Min(lo, x), math.Max(hi, x)
		}
		return g >= lo-1e-9 && g <= hi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMean(t *testing.T) {
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Fatal("Mean broken")
	}
	if Mean(nil) != 0 {
		t.Fatal("Mean(nil) should be 0")
	}
}

func TestStdDev(t *testing.T) {
	// Sample (n-1) standard deviation of {2,4,4,4,5,5,7,9} is
	// sqrt(32/7).
	got := StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	want := math.Sqrt(32.0 / 7.0)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("StdDev = %v, want %v", got, want)
	}
	if StdDev([]float64{42}) != 0 || StdDev(nil) != 0 {
		t.Fatal("StdDev of fewer than two values should be 0")
	}
}

func TestCI95(t *testing.T) {
	// {1,2,3}: s = 1, n = 3, t_{0.975,2} = 4.303 -> 4.303/sqrt(3).
	got := CI95([]float64{1, 2, 3})
	want := 4.303 / math.Sqrt(3)
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("CI95({1,2,3}) = %v, want %v", got, want)
	}
	if CI95([]float64{5}) != 0 || CI95(nil) != 0 {
		t.Fatal("CI95 of fewer than two values should be 0")
	}
	// Identical replicates have zero-width intervals.
	if CI95([]float64{3, 3, 3, 3}) != 0 {
		t.Fatal("CI95 of identical values should be 0")
	}
}

// TestTCriticalMonotone pins the t-table: values decrease toward the
// asymptotic normal quantile as degrees of freedom grow.
func TestTCriticalMonotone(t *testing.T) {
	prev := tCritical(1)
	for df := 2; df <= 200; df++ {
		cur := tCritical(df)
		if cur > prev {
			t.Fatalf("tCritical(%d) = %v > tCritical(%d) = %v", df, cur, df-1, prev)
		}
		prev = cur
	}
	if prev != 1.960 {
		t.Fatalf("asymptotic tCritical = %v, want 1.960", prev)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3})
	if s.Mean != 2 {
		t.Fatalf("Summarize mean = %v, want 2", s.Mean)
	}
	if math.Abs(s.CI-4.303/math.Sqrt(3)) > 1e-9 {
		t.Fatalf("Summarize CI = %v", s.CI)
	}
	if got := s.String(); got != "2.000 ±2.484" {
		t.Fatalf("Sample.String() = %q", got)
	}
}

// TestTableSampleRendering pins the three output forms of a Sample cell:
// "mean ±ci" in text, and a split (value, value ci95) column pair in CSV
// and JSON — with plain cells in the same column padded by an empty ci95
// cell, and sample-free columns untouched.
func TestTableSampleRendering(t *testing.T) {
	tbl := NewTable("name", "value", "note")
	tbl.AddRowf("a", Sample{Mean: 1.5, CI: 0.25}, "ok")
	tbl.AddRowf("b", 2.0, "plain")
	if got := tbl.Rows()[0][1]; got != "1.500 ±0.250" {
		t.Fatalf("text cell = %q", got)
	}

	var csvOut strings.Builder
	if err := tbl.WriteCSV(&csvOut); err != nil {
		t.Fatal(err)
	}
	wantCSV := "name,value,value ci95,note\na,1.500,0.250,ok\nb,2.000,,plain\n"
	if csvOut.String() != wantCSV {
		t.Fatalf("CSV = %q, want %q", csvOut.String(), wantCSV)
	}

	data, err := tbl.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	wantJSON := `{"header":["name","value","value ci95","note"],"rows":[["a","1.500","0.250","ok"],["b","2.000","","plain"]]}`
	if string(data) != wantJSON {
		t.Fatalf("JSON = %s, want %s", data, wantJSON)
	}
}

func TestTableRendering(t *testing.T) {
	tbl := NewTable("name", "value")
	tbl.AddRowf("alpha", 1.5)
	tbl.AddRow("b", "x")
	out := tbl.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("table has %d lines, want 4:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "name") || !strings.Contains(lines[0], "value") {
		t.Fatalf("header missing: %q", lines[0])
	}
	if !strings.Contains(lines[2], "1.500") {
		t.Fatalf("float not formatted: %q", lines[2])
	}
	// Columns align: every row starts its second column at the same
	// offset.
	idx0 := strings.Index(lines[0], "value")
	idx2 := strings.Index(lines[2], "1.500")
	if idx0 != idx2 {
		t.Fatalf("columns misaligned: %d vs %d\n%s", idx0, idx2, out)
	}
}

func TestTableAccessors(t *testing.T) {
	tbl := NewTable("name", "value")
	tbl.AddRowf("a", 1.5)
	if got := tbl.Header(); len(got) != 2 || got[0] != "name" {
		t.Fatalf("Header() = %v", got)
	}
	rows := tbl.Rows()
	if len(rows) != 1 || rows[0][0] != "a" || rows[0][1] != "1.500" {
		t.Fatalf("Rows() = %v", rows)
	}
}

func TestTableJSON(t *testing.T) {
	tbl := NewTable("name", "value")
	tbl.AddRowf("a", 1.5)
	data, err := tbl.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	want := `{"header":["name","value"],"rows":[["a","1.500"]]}`
	if string(data) != want {
		t.Fatalf("JSON = %s, want %s", data, want)
	}
	empty := NewTable("x")
	data, err = empty.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != `{"header":["x"],"rows":[]}` {
		t.Fatalf("empty-table JSON = %s", data)
	}
}

func TestTableCSV(t *testing.T) {
	tbl := NewTable("name", "value")
	tbl.AddRowf("a,with comma", 1.5)
	tbl.AddRow("b", "x")
	var b strings.Builder
	if err := tbl.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	want := "name,value\n\"a,with comma\",1.500\nb,x\n"
	if b.String() != want {
		t.Fatalf("CSV = %q, want %q", b.String(), want)
	}
}
