package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestWeightedSpeedup(t *testing.T) {
	ws := WeightedSpeedup([]float64{1, 2}, []float64{2, 2})
	if ws != 1.5 {
		t.Fatalf("WS = %v, want 1.5", ws)
	}
}

func TestWeightedSpeedupPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"length mismatch": func() { WeightedSpeedup([]float64{1}, []float64{1, 2}) },
		"zero alone":      func() { WeightedSpeedup([]float64{1}, []float64{0}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{2, 8}); math.Abs(got-4) > 1e-12 {
		t.Fatalf("GeoMean(2,8) = %v, want 4", got)
	}
	if GeoMean(nil) != 0 {
		t.Fatal("GeoMean(nil) should be 0")
	}
}

func TestGeoMeanBounds(t *testing.T) {
	// Property: min <= geomean <= max for positive inputs. Inputs are
	// folded into (0.1, ~1e6]: near math.MaxFloat64 the exp(mean(log))
	// round-trip loses enough precision to overflow, which is not a
	// regime the simulator's metrics ever reach.
	fold := func(x float64) float64 { return math.Mod(math.Abs(x), 1e6) + 0.1 }
	f := func(a, b, c float64) bool {
		xs := []float64{fold(a), fold(b), fold(c)}
		g := GeoMean(xs)
		lo, hi := xs[0], xs[0]
		for _, x := range xs {
			lo, hi = math.Min(lo, x), math.Max(hi, x)
		}
		return g >= lo-1e-9 && g <= hi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMean(t *testing.T) {
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Fatal("Mean broken")
	}
	if Mean(nil) != 0 {
		t.Fatal("Mean(nil) should be 0")
	}
}

func TestTableRendering(t *testing.T) {
	tbl := NewTable("name", "value")
	tbl.AddRowf("alpha", 1.5)
	tbl.AddRow("b", "x")
	out := tbl.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("table has %d lines, want 4:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "name") || !strings.Contains(lines[0], "value") {
		t.Fatalf("header missing: %q", lines[0])
	}
	if !strings.Contains(lines[2], "1.500") {
		t.Fatalf("float not formatted: %q", lines[2])
	}
	// Columns align: every row starts its second column at the same
	// offset.
	idx0 := strings.Index(lines[0], "value")
	idx2 := strings.Index(lines[2], "1.500")
	if idx0 != idx2 {
		t.Fatalf("columns misaligned: %d vs %d\n%s", idx0, idx2, out)
	}
}

func TestTableAccessors(t *testing.T) {
	tbl := NewTable("name", "value")
	tbl.AddRowf("a", 1.5)
	if got := tbl.Header(); len(got) != 2 || got[0] != "name" {
		t.Fatalf("Header() = %v", got)
	}
	rows := tbl.Rows()
	if len(rows) != 1 || rows[0][0] != "a" || rows[0][1] != "1.500" {
		t.Fatalf("Rows() = %v", rows)
	}
}

func TestTableJSON(t *testing.T) {
	tbl := NewTable("name", "value")
	tbl.AddRowf("a", 1.5)
	data, err := tbl.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	want := `{"header":["name","value"],"rows":[["a","1.500"]]}`
	if string(data) != want {
		t.Fatalf("JSON = %s, want %s", data, want)
	}
	empty := NewTable("x")
	data, err = empty.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != `{"header":["x"],"rows":[]}` {
		t.Fatalf("empty-table JSON = %s", data)
	}
}

func TestTableCSV(t *testing.T) {
	tbl := NewTable("name", "value")
	tbl.AddRowf("a,with comma", 1.5)
	tbl.AddRow("b", "x")
	var b strings.Builder
	if err := tbl.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	want := "name,value\n\"a,with comma\",1.500\nb,x\n"
	if b.String() != want {
		t.Fatalf("CSV = %q, want %q", b.String(), want)
	}
}
