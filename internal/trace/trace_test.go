package trace

import (
	"bytes"
	"errors"
	"io"
	"math"
	"strings"
	"testing"

	"dcasim/internal/rng"
	"dcasim/internal/workload"
)

func testHeader(n int) Header {
	names := make([]string, n)
	for i := range names {
		names[i] = workload.Names()[i%len(workload.Names())]
	}
	return Header{Benchmarks: names, Seed: 42, WSScale: 0.25, InstrPerCore: 50_000, WarmMemops: 10_000}
}

// randomOps produces a plausible op stream (deltas small and large,
// stores mixed in, PCs clustered) without depending on the generator.
func randomOps(seed uint64, n int) []workload.Op {
	r := rng.New(seed)
	ops := make([]workload.Op, n)
	addr := int64(1 << 30)
	pc := uint64(0xfeed0000)
	for i := range ops {
		switch r.Intn(4) {
		case 0:
			addr++
		case 1:
			addr += int64(r.Intn(64)) - 32
		case 2:
			addr = r.Int63n(1 << 40)
		case 3:
			pc = 0xfeed0000 + uint64(r.Intn(64))
		}
		ops[i] = workload.Op{Gap: r.Intn(40), Store: r.Bool(0.3), Addr: addr, PC: pc}
	}
	return ops
}

func TestRoundTripSingleCore(t *testing.T) {
	ops := randomOps(7, 10_000)
	var buf bytes.Buffer
	w, err := NewWriter(&buf, testHeader(1))
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range ops {
		w.Add(0, op)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	hdr := r.Header()
	if hdr.Seed != 42 || hdr.WSScale != 0.25 || hdr.InstrPerCore != 50_000 || hdr.WarmMemops != 10_000 {
		t.Fatalf("header round-trip mismatch: %+v", hdr)
	}
	src := r.Source(0)
	for i, want := range ops {
		if got := src.Next(); got != want {
			t.Fatalf("op %d: got %+v want %+v", i, got, want)
		}
	}
	if r.Err() != nil {
		t.Fatalf("unexpected decode error: %v", r.Err())
	}
	// One more pull outruns the stream: latched underrun, zero op.
	if got := src.Next(); got != (workload.Op{}) {
		t.Fatalf("underrun returned %+v, want zero op", got)
	}
	if !errors.Is(r.Err(), io.ErrUnexpectedEOF) {
		t.Fatalf("underrun error = %v, want ErrUnexpectedEOF", r.Err())
	}
}

func TestRoundTripInterleavedCores(t *testing.T) {
	const ncores = 3
	streams := make([][]workload.Op, ncores)
	for i := range streams {
		streams[i] = randomOps(uint64(100+i), 5_000)
	}
	var buf bytes.Buffer
	w, err := NewWriter(&buf, testHeader(ncores))
	if err != nil {
		t.Fatal(err)
	}
	// Interleave production unevenly, like cores running at different
	// speeds.
	pos := [ncores]int{}
	r0 := rng.New(9)
	for {
		all := true
		for c := 0; c < ncores; c++ {
			burst := 1 + r0.Intn(50)
			for k := 0; k < burst && pos[c] < len(streams[c]); k++ {
				w.Add(c, streams[c][pos[c]])
				pos[c]++
			}
			if pos[c] < len(streams[c]) {
				all = false
			}
		}
		if all {
			break
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	srcs := make([]workload.Source, ncores)
	for i := range srcs {
		srcs[i] = r.Source(i)
	}
	// Consume in a different interleaving than production.
	cons := [ncores]int{}
	r1 := rng.New(10)
	for {
		all := true
		for c := 0; c < ncores; c++ {
			burst := 1 + r1.Intn(70)
			for k := 0; k < burst && cons[c] < len(streams[c]); k++ {
				if got, want := srcs[c].Next(), streams[c][cons[c]]; got != want {
					t.Fatalf("core %d op %d: got %+v want %+v", c, cons[c], got, want)
				}
				cons[c]++
			}
			if cons[c] < len(streams[c]) {
				all = false
			}
		}
		if all {
			break
		}
	}
	if r.Err() != nil {
		t.Fatalf("unexpected decode error: %v", r.Err())
	}
}

func TestTeeRecordsAndForwards(t *testing.T) {
	prof, err := workload.Lookup("mcf")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	w, err := NewWriter(&buf, testHeader(1))
	if err != nil {
		t.Fatal(err)
	}
	gen := workload.NewGen(prof, 5, 0, 0.01)
	tee := w.Tee(0, gen)
	var seen []workload.Op
	for i := 0; i < 2_000; i++ {
		seen = append(seen, tee.Next())
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	// The tee must forward exactly the generator's stream.
	ref := workload.NewGen(prof, 5, 0, 0.01)
	for i, op := range seen {
		if want := ref.Next(); op != want {
			t.Fatalf("tee perturbed op %d: got %+v want %+v", i, op, want)
		}
	}
	// And the file must replay the same stream.
	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	src := r.Source(0)
	for i, want := range seen {
		if got := src.Next(); got != want {
			t.Fatalf("replay op %d: got %+v want %+v", i, got, want)
		}
	}
}

// TestWriterRejectsBadGap: an operation a replay would refuse must fail
// at encode time, not produce a file that only errors when replayed.
func TestWriterRejectsBadGap(t *testing.T) {
	for _, gap := range []int{-1, maxGap + 1} {
		var buf bytes.Buffer
		w, err := NewWriter(&buf, testHeader(1))
		if err != nil {
			t.Fatal(err)
		}
		w.Add(0, workload.Op{Gap: gap})
		if err := w.Flush(); err == nil {
			t.Errorf("gap %d encoded without error", gap)
		}
	}
}

func TestHeaderRejects(t *testing.T) {
	if _, err := NewWriter(io.Discard, Header{}); err == nil {
		t.Error("writer accepted zero cores")
	}
	if _, err := NewWriter(io.Discard, Header{Benchmarks: []string{strings.Repeat("x", maxNameLen+1)}}); err == nil {
		t.Error("writer accepted oversized name")
	}
	cases := map[string][]byte{
		"empty":       {},
		"bad magic":   []byte("NOPE"),
		"short magic": []byte("DC"),
		"bad version": append([]byte(magic), 99),
	}
	for name, data := range cases {
		if _, err := NewReader(bytes.NewReader(data)); err == nil {
			t.Errorf("reader accepted %s", name)
		}
	}
}

// TestMalformedBodyLatches: corrupting the body after a valid header
// must produce an error through Err, never a panic, and Next must keep
// returning zero ops.
func TestMalformedBodyLatches(t *testing.T) {
	ops := randomOps(3, 500)
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, testHeader(1))
	for _, op := range ops {
		w.Add(0, op)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()

	mutations := map[string]func() []byte{
		"truncated body": func() []byte { return full[:len(full)-3] },
		"chunk for unknown core": func() []byte {
			hdrLen := headerLen(t, full)
			out := append([]byte(nil), full[:hdrLen]...)
			out = append(out, 0x07, 0x01, 0x00) // core 7 of 1
			return out
		},
		"zero-length chunk": func() []byte {
			hdrLen := headerLen(t, full)
			out := append([]byte(nil), full[:hdrLen]...)
			out = append(out, 0x00, 0x00)
			return out
		},
		"flipped bytes": func() []byte {
			out := append([]byte(nil), full...)
			for i := headerLen(t, full); i < len(out); i += 7 {
				out[i] ^= 0xff
			}
			return out
		},
	}
	for name, mutate := range mutations {
		t.Run(name, func(t *testing.T) {
			r, err := NewReader(bytes.NewReader(mutate()))
			if err != nil {
				return // rejecting at open is also fine
			}
			src := r.Source(0)
			for i := 0; i < len(ops)+10; i++ {
				src.Next()
			}
			if r.Err() == nil {
				t.Fatal("malformed body decoded without error")
			}
			if got := src.Next(); got != (workload.Op{}) {
				t.Fatalf("post-error Next returned %+v, want zero op", got)
			}
		})
	}
}

// headerLen locates the end of the header by re-parsing a valid trace.
func headerLen(t *testing.T, full []byte) int {
	t.Helper()
	cr := &countingReader{r: bytes.NewReader(full)}
	if _, err := NewReader(cr); err != nil {
		t.Fatal(err)
	}
	return cr.n
}

type countingReader struct {
	r io.Reader
	n int
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += n
	return n, err
}

// TestDecoderSteadyStateAllocs: the streaming decoder must not allocate
// per operation once its chunk buffers reach steady state.
func TestDecoderSteadyStateAllocs(t *testing.T) {
	ops := randomOps(11, 50_000)
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, testHeader(2))
	for i, op := range ops {
		w.Add(i%2, op)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	a, b := r.Source(0), r.Source(1)
	// Warm the buffers past their high-water mark.
	for i := 0; i < 2_000; i++ {
		a.Next()
		b.Next()
	}
	allocs := testing.AllocsPerRun(10_000, func() {
		a.Next()
		b.Next()
	})
	if allocs != 0 {
		t.Fatalf("steady-state decode allocates %.2f objects per pair of ops", allocs)
	}
	if r.Err() != nil {
		t.Fatalf("decode error: %v", r.Err())
	}
}

// TestCompactness: delta coding must keep a streaming workload around a
// few bytes per operation — the format's reason to exist.
func TestCompactness(t *testing.T) {
	prof, err := workload.Lookup("libquantum") // highly sequential
	if err != nil {
		t.Fatal(err)
	}
	gen := workload.NewGen(prof, 1, 0, 0.05)
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, testHeader(1))
	const n = 100_000
	for i := 0; i < n; i++ {
		w.Add(0, gen.Next())
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	perOp := float64(buf.Len()) / n
	if perOp > 6 {
		t.Fatalf("trace costs %.2f bytes/op, want <= 6 for a streaming workload", perOp)
	}
}

func TestZigzag(t *testing.T) {
	for _, v := range []int64{0, 1, -1, 63, -64, math.MaxInt64, math.MinInt64} {
		if got := unzigzag(zigzag(v)); got != v {
			t.Errorf("zigzag round-trip of %d = %d", v, got)
		}
	}
}
