// Package trace defines dcasim's compact binary trace format (.dct) and
// its streaming encoder/decoder. A trace captures, per core, the exact
// sequence of memory operations a simulation consumed — warm-up included
// — so that replaying the file through sim.Run reproduces the original
// run bit for bit on any controller design and cache organization (the
// operation stream a core consumes is independent of both).
//
// # File layout
//
// Everything is little-endian unsigned varints (encoding/binary style)
// unless noted. Signed quantities use zigzag encoding.
//
//	magic    4 bytes "DCT1"
//	version  uvarint (currently 1)
//	seed     uvarint — generator seed of the recorded run
//	wsScale  uvarint — math.Float64bits of the working-set scale
//	instr    uvarint — InstrPerCore of the recorded run
//	warm     uvarint — WarmMemops of the recorded run
//	ncores   uvarint
//	percore  ncores × (uvarint name length, name bytes)
//	body     chunk* until EOF
//
// Each chunk is (uvarint coreID, uvarint payload length, payload). A
// chunk's payload is a run of operation records belonging to that core;
// chunks from different cores interleave in consumption order, so the
// decoder buffers at most a few chunks per core. One operation record is
//
//	head uvarint — gap<<1 | store
//	addr varint  — zigzag delta from the core's previous block address
//	pc   varint  — zigzag delta from the core's previous PC
//
// with per-core delta state starting at zero. Delta coding makes
// streaming runs cost two bytes per operation.
//
// # Robustness
//
// The decoder never panics on malformed input: every structural bound
// (core count, name length, chunk size, gap magnitude) is checked, and
// the first error latches in Reader.Err while subsequent Next calls
// return harmless zero operations. A consumer that outlives a truncated
// or corrupt trace therefore still terminates, and checks Err once at
// the end.
package trace

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"dcasim/internal/workload"
)

// Format bounds. They exist so a malformed header or chunk cannot make
// the decoder allocate or loop unboundedly.
const (
	magic        = "DCT1"
	version      = 1
	maxCores     = 1024
	maxNameLen   = 256
	maxChunkLen  = 1 << 20
	maxGap       = 1 << 32 // far above any sane instruction gap
	flushTrigger = 4096    // writer flushes a core's chunk past this size
)

// Header is the trace metadata: enough to name the recorded workload and
// to re-derive the run budgets on replay.
type Header struct {
	Benchmarks   []string // one per core, in core order
	Seed         uint64
	WSScale      float64
	InstrPerCore int64
	WarmMemops   int64
}

// zigzag encodes a signed delta as an unsigned varint-friendly value.
func zigzag(v int64) uint64 { return uint64(v<<1) ^ uint64(v>>63) }

// unzigzag inverts zigzag.
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// Writer encodes per-core operation streams into a trace file. It
// buffers each core's records and emits them as interleaved chunks, so
// memory stays bounded regardless of trace length.
type Writer struct {
	w     io.Writer
	cores []coreEnc
	err   error
}

type coreEnc struct {
	buf      []byte
	prevAddr int64
	prevPC   uint64
}

// NewWriter writes the header and returns a writer for len(hdr.Benchmarks)
// core streams.
func NewWriter(w io.Writer, hdr Header) (*Writer, error) {
	n := len(hdr.Benchmarks)
	if n == 0 || n > maxCores {
		return nil, fmt.Errorf("trace: %d cores out of range [1,%d]", n, maxCores)
	}
	var b []byte
	b = append(b, magic...)
	b = binary.AppendUvarint(b, version)
	b = binary.AppendUvarint(b, hdr.Seed)
	b = binary.AppendUvarint(b, math.Float64bits(hdr.WSScale))
	b = binary.AppendUvarint(b, uint64(hdr.InstrPerCore))
	b = binary.AppendUvarint(b, uint64(hdr.WarmMemops))
	b = binary.AppendUvarint(b, uint64(n))
	for _, name := range hdr.Benchmarks {
		if len(name) > maxNameLen {
			return nil, fmt.Errorf("trace: benchmark name %q too long", name)
		}
		b = binary.AppendUvarint(b, uint64(len(name)))
		b = append(b, name...)
	}
	if _, err := w.Write(b); err != nil {
		return nil, fmt.Errorf("trace: write header: %w", err)
	}
	return &Writer{w: w, cores: make([]coreEnc, n)}, nil
}

// Add appends one operation to a core's stream. An operation a replay
// would reject (negative or absurd gap) latches an encode error rather
// than producing a file that only fails later, at replay time.
func (w *Writer) Add(core int, op workload.Op) {
	if w.err != nil {
		return
	}
	if op.Gap < 0 || uint64(op.Gap) > maxGap {
		w.err = fmt.Errorf("trace: core %d: gap %d outside [0,%d]", core, op.Gap, uint64(maxGap))
		return
	}
	c := &w.cores[core]
	c.buf = binary.AppendUvarint(c.buf, uint64(op.Gap)<<1|b2u(op.Store))
	c.buf = binary.AppendUvarint(c.buf, zigzag(op.Addr-c.prevAddr))
	c.buf = binary.AppendUvarint(c.buf, zigzag(int64(op.PC-c.prevPC)))
	c.prevAddr = op.Addr
	c.prevPC = op.PC
	if len(c.buf) >= flushTrigger {
		w.flushCore(core)
	}
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// flushCore emits one chunk holding a core's pending records.
func (w *Writer) flushCore(core int) {
	c := &w.cores[core]
	if len(c.buf) == 0 || w.err != nil {
		return
	}
	var hdr [2 * binary.MaxVarintLen64]byte
	n := binary.PutUvarint(hdr[:], uint64(core))
	n += binary.PutUvarint(hdr[n:], uint64(len(c.buf)))
	if _, err := w.w.Write(hdr[:n]); err != nil {
		w.err = fmt.Errorf("trace: write chunk header: %w", err)
		return
	}
	if _, err := w.w.Write(c.buf); err != nil {
		w.err = fmt.Errorf("trace: write chunk: %w", err)
		return
	}
	c.buf = c.buf[:0]
}

// Flush emits all pending chunks and reports the first write error.
func (w *Writer) Flush() error {
	for i := range w.cores {
		w.flushCore(i)
	}
	return w.err
}

// Tee wraps a source so every operation it produces is also recorded to
// the writer, unchanged, for one core stream.
func (w *Writer) Tee(core int, src workload.Source) workload.Source {
	return &teeSource{w: w, core: core, src: src}
}

type teeSource struct {
	w    *Writer
	core int
	src  workload.Source
}

func (t *teeSource) Next() workload.Op {
	op := t.src.Next()
	t.w.Add(t.core, op)
	return op
}

// Reader decodes a trace. It streams chunks on demand: when a core's
// buffered records run out, the reader pulls chunks off the file —
// queuing the other cores' payloads — until that core gets data or the
// file ends. After the first few chunks the steady state allocates
// nothing: per-core buffers are recycled in place.
type Reader struct {
	r     io.Reader
	hdr   Header
	cores []coreDec
	err   error // first structural/IO error, latched
	eof   bool

	varbuf [binary.MaxVarintLen64]byte
}

type coreDec struct {
	buf      []byte // undecoded record bytes
	off      int
	prevAddr int64
	prevPC   uint64
}

// NewReader parses the header. The reader performs its own buffering of
// r via chunk payloads; wrapping r in a bufio.Reader is still worthwhile
// for small-chunk traces on raw files.
func NewReader(r io.Reader) (*Reader, error) {
	d := &Reader{r: r}
	var m [4]byte
	if _, err := io.ReadFull(r, m[:]); err != nil {
		return nil, fmt.Errorf("trace: read magic: %w", err)
	}
	if string(m[:]) != magic {
		return nil, fmt.Errorf("trace: bad magic %q", m[:])
	}
	ver, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	if ver != version {
		return nil, fmt.Errorf("trace: unsupported version %d", ver)
	}
	if d.hdr.Seed, err = d.uvarint(); err != nil {
		return nil, err
	}
	wsBits, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	d.hdr.WSScale = math.Float64frombits(wsBits)
	instr, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	warm, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	if instr > math.MaxInt64 || warm > math.MaxInt64 {
		return nil, fmt.Errorf("trace: run budget overflows int64")
	}
	d.hdr.InstrPerCore, d.hdr.WarmMemops = int64(instr), int64(warm)
	n, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	if n == 0 || n > maxCores {
		return nil, fmt.Errorf("trace: %d cores out of range [1,%d]", n, maxCores)
	}
	d.hdr.Benchmarks = make([]string, n)
	for i := range d.hdr.Benchmarks {
		nameLen, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		if nameLen > maxNameLen {
			return nil, fmt.Errorf("trace: benchmark name length %d exceeds %d", nameLen, maxNameLen)
		}
		name := make([]byte, nameLen)
		if _, err := io.ReadFull(r, name); err != nil {
			return nil, fmt.Errorf("trace: read benchmark name: %w", err)
		}
		d.hdr.Benchmarks[i] = string(name)
	}
	d.cores = make([]coreDec, n)
	return d, nil
}

// uvarint reads one varint byte-at-a-time from the underlying reader
// (header and chunk framing only; record decoding works on buffered
// chunk payloads).
func (d *Reader) uvarint() (uint64, error) {
	var x uint64
	var s uint
	for i := 0; i < binary.MaxVarintLen64; i++ {
		if _, err := io.ReadFull(d.r, d.varbuf[:1]); err != nil {
			return 0, fmt.Errorf("trace: read varint: %w", err)
		}
		b := d.varbuf[0]
		if b < 0x80 {
			if i == binary.MaxVarintLen64-1 && b > 1 {
				return 0, fmt.Errorf("trace: varint overflows uint64")
			}
			return x | uint64(b)<<s, nil
		}
		x |= uint64(b&0x7f) << s
		s += 7
	}
	return 0, fmt.Errorf("trace: varint too long")
}

// Header returns the trace metadata.
func (d *Reader) Header() Header { return d.hdr }

// Err returns the first decode error: nil on a well-formed trace whose
// consumers never outran their streams, io.ErrUnexpectedEOF (wrapped)
// when a consumer needed more operations than the trace holds, or a
// description of the first structural fault.
func (d *Reader) Err() error { return d.err }

// Source returns the replay source for one core stream. On underrun or
// malformed input it latches Reader.Err and produces zero operations —
// each still retiring one instruction — so a simulation consuming it
// always terminates and can surface Err afterwards.
func (d *Reader) Source(core int) workload.Source {
	return &replaySource{d: d, core: core}
}

type replaySource struct {
	d    *Reader
	core int
}

func (s *replaySource) Next() workload.Op { return s.d.next(s.core) }

// next decodes one record for a core, pulling chunks as needed. The
// first error — structural or underrun, on any stream — poisons every
// stream: all subsequent calls return zero operations.
func (d *Reader) next(core int) workload.Op {
	if d.err != nil {
		return workload.Op{}
	}
	c := &d.cores[core]
	for c.off >= len(c.buf) {
		if d.err != nil || d.eof {
			if d.err == nil {
				d.err = fmt.Errorf("trace: core %d stream exhausted: %w", core, io.ErrUnexpectedEOF)
			}
			return workload.Op{}
		}
		d.fill()
	}
	head, ok := d.record(c)
	if !ok {
		d.fail(fmt.Errorf("trace: core %d: malformed record", core))
		return workload.Op{}
	}
	if head>>1 > maxGap {
		d.fail(fmt.Errorf("trace: core %d: gap %d exceeds %d", core, head>>1, uint64(maxGap)))
		return workload.Op{}
	}
	return workload.Op{
		Gap:   int(head >> 1),
		Store: head&1 == 1,
		Addr:  c.prevAddr,
		PC:    c.prevPC,
	}
}

// decode pulls one varint off the core's buffered chunk payload.
// Records never span chunks, so a varint running off the buffer is a
// format violation, not a retry.
func (c *coreDec) decode() (uint64, bool) {
	u, n := binary.Uvarint(c.buf[c.off:])
	if n <= 0 {
		return 0, false
	}
	c.off += n
	return u, true
}

// record decodes the three varints of one operation record and advances
// the core's delta state.
func (d *Reader) record(c *coreDec) (head uint64, ok bool) {
	head, ok = c.decode()
	if !ok {
		return 0, false
	}
	da, ok := c.decode()
	if !ok {
		return 0, false
	}
	dp, ok := c.decode()
	if !ok {
		return 0, false
	}
	c.prevAddr += unzigzag(da)
	c.prevPC += uint64(unzigzag(dp))
	return head, true
}

// fail latches the first error and poisons all streams.
func (d *Reader) fail(err error) {
	if d.err == nil {
		d.err = err
	}
}

// fill reads the next chunk into its core's buffer. A clean EOF at a
// chunk boundary just marks the body done.
func (d *Reader) fill() {
	var cb [1]byte
	if _, err := io.ReadFull(d.r, cb[:]); err != nil {
		if err == io.EOF {
			d.eof = true
		} else {
			d.fail(fmt.Errorf("trace: read chunk: %w", err))
		}
		return
	}
	core, err := d.contUvarint(cb[0])
	if err != nil {
		d.fail(err)
		return
	}
	size, err := d.chunkUvarint()
	if err != nil {
		d.fail(err)
		return
	}
	if core >= uint64(len(d.cores)) {
		d.fail(fmt.Errorf("trace: chunk for core %d of %d", core, len(d.cores)))
		return
	}
	if size == 0 || size > maxChunkLen {
		d.fail(fmt.Errorf("trace: chunk length %d out of range [1,%d]", size, maxChunkLen))
		return
	}
	c := &d.cores[core]
	if c.off == len(c.buf) {
		// Fully consumed: recycle the buffer in place.
		c.buf = c.buf[:0]
		c.off = 0
	}
	start := len(c.buf)
	need := start + int(size)
	if cap(c.buf) < need {
		grown := make([]byte, start, need)
		copy(grown, c.buf)
		c.buf = grown
	}
	c.buf = c.buf[:need]
	if _, err := io.ReadFull(d.r, c.buf[start:]); err != nil {
		c.buf = c.buf[:start]
		d.fail(fmt.Errorf("trace: read chunk payload: %w", err))
	}
}

// chunkUvarint reads a chunk-framing varint byte by byte.
func (d *Reader) chunkUvarint() (uint64, error) {
	var first [1]byte
	if _, err := io.ReadFull(d.r, first[:]); err != nil {
		return 0, fmt.Errorf("trace: read chunk varint: %w", err)
	}
	return d.contUvarint(first[0])
}

// contUvarint finishes a varint whose first byte is already read.
func (d *Reader) contUvarint(first byte) (uint64, error) {
	x := uint64(first & 0x7f)
	if first < 0x80 {
		return x, nil
	}
	s := uint(7)
	for i := 1; i < binary.MaxVarintLen64; i++ {
		if _, err := io.ReadFull(d.r, d.varbuf[:1]); err != nil {
			return 0, fmt.Errorf("trace: read chunk varint: %w", err)
		}
		b := d.varbuf[0]
		if b < 0x80 {
			if i == binary.MaxVarintLen64-1 && b > 1 {
				return 0, fmt.Errorf("trace: chunk varint overflows uint64")
			}
			return x | uint64(b)<<s, nil
		}
		x |= uint64(b&0x7f) << s
		s += 7
	}
	return 0, fmt.Errorf("trace: chunk varint too long")
}
