package trace

import (
	"bytes"
	"testing"

	"dcasim/internal/workload"
)

// corpusSeeds builds representative traces for the fuzz corpus: a
// single-core synthetic recording, a multi-core interleaved one, and an
// empty-body header. Checked-in variants (including mutated ones) live
// under testdata/fuzz/FuzzDecoder.
func corpusSeeds(tb testing.TB) [][]byte {
	var seeds [][]byte

	var one bytes.Buffer
	w, err := NewWriter(&one, Header{Benchmarks: []string{"mcf"}, Seed: 1, WSScale: 0.02, InstrPerCore: 100, WarmMemops: 50})
	if err != nil {
		tb.Fatal(err)
	}
	prof, err := workload.Lookup("mcf")
	if err != nil {
		tb.Fatal(err)
	}
	gen := workload.NewGen(prof, 1, 0, 0.01)
	for i := 0; i < 400; i++ {
		w.Add(0, gen.Next())
	}
	if err := w.Flush(); err != nil {
		tb.Fatal(err)
	}
	seeds = append(seeds, one.Bytes())

	var multi bytes.Buffer
	w, err = NewWriter(&multi, Header{Benchmarks: []string{"lbm", "gcc"}, Seed: 2, WSScale: 0.02, InstrPerCore: 100, WarmMemops: 0})
	if err != nil {
		tb.Fatal(err)
	}
	for i, op := range randomOps(13, 600) {
		w.Add(i%2, op)
	}
	if err := w.Flush(); err != nil {
		tb.Fatal(err)
	}
	seeds = append(seeds, multi.Bytes())

	var hdrOnly bytes.Buffer
	if _, err := NewWriter(&hdrOnly, Header{Benchmarks: []string{"milc"}}); err != nil {
		tb.Fatal(err)
	}
	seeds = append(seeds, hdrOnly.Bytes())
	return seeds
}

// FuzzDecoder drives the trace decoder with arbitrary bytes: whatever
// the input, opening and draining a trace must never panic, never loop
// unboundedly, and must latch an error (rather than fabricate data)
// whenever a consumer outruns the stream.
func FuzzDecoder(f *testing.F) {
	for _, s := range corpusSeeds(f) {
		f.Add(s)
		if len(s) > 8 {
			f.Add(s[:len(s)/2]) // truncated
			m := bytes.Clone(s)
			m[len(m)/3] ^= 0x40 // corrupted header or body byte
			f.Add(m)
		}
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return
		}
		hdr := r.Header()
		n := len(hdr.Benchmarks)
		if n < 1 || n > maxCores {
			t.Fatalf("reader accepted %d cores", n)
		}
		// Drain a bounded number of ops round-robin, the way a
		// simulation would; progress must be bounded regardless of
		// input.
		srcs := make([]workload.Source, n)
		for i := range srcs {
			srcs[i] = r.Source(i)
		}
		const budget = 1 << 14
		for i := 0; i < budget && r.Err() == nil; i++ {
			op := srcs[i%n].Next()
			if op.Gap < 0 || uint64(op.Gap) > maxGap {
				t.Fatalf("decoded gap %d out of range", op.Gap)
			}
		}
		if r.Err() == nil {
			return // long valid trace: budget exhausted before the data
		}
		// Past the first error every stream must be poisoned: zero ops
		// only, error latched stable.
		first := r.Err()
		for i := range srcs {
			if op := srcs[i].Next(); op != (workload.Op{}) {
				t.Fatalf("core %d produced %+v after error %v", i, op, first)
			}
		}
		if r.Err() != first {
			t.Fatalf("latched error changed from %v to %v", first, r.Err())
		}
	})
}
