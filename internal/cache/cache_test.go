package cache

import (
	"math/rand"
	"testing"
)

func mustNew(t *testing.T, size int64, block, ways int) *Cache {
	t.Helper()
	c, err := New(size, block, ways)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 64, 2); err == nil {
		t.Error("zero size accepted")
	}
	if _, err := New(100, 64, 2); err == nil {
		t.Error("non-divisible size accepted")
	}
	c := mustNew(t, 32<<10, 64, 2)
	if c.Sets() != 256 || c.Ways() != 2 {
		t.Fatalf("32KB/2way: %d sets x %d ways, want 256x2", c.Sets(), c.Ways())
	}
}

func TestHitMiss(t *testing.T) {
	c := mustNew(t, 1024, 64, 2) // 8 sets, 2 ways
	if r := c.Access(5, false); r.Hit {
		t.Fatal("cold access hit")
	}
	if r := c.Access(5, false); !r.Hit {
		t.Fatal("second access missed")
	}
	if c.Hits != 1 || c.Misses != 1 {
		t.Fatalf("counters %d/%d", c.Hits, c.Misses)
	}
}

func TestLRUEvictionOrder(t *testing.T) {
	c := mustNew(t, 1024, 64, 2) // 8 sets; addresses =set (mod 8) share a set
	c.Access(0, false)           // set 0
	c.Access(8, false)           // set 0, second way
	c.Access(0, false)           // refresh 0
	r := c.Access(16, false)     // evicts 8
	if r.Hit || !r.VictimValid || r.VictimAddr != 8 {
		t.Fatalf("expected victim 8, got %+v", r)
	}
	if p, _ := c.Probe(0); !p {
		t.Fatal("MRU block evicted")
	}
}

func TestDirtyVictim(t *testing.T) {
	c := mustNew(t, 1024, 64, 2)
	c.Access(0, true) // dirty
	c.Access(8, false)
	r := c.Access(16, false)
	if !r.VictimValid || r.VictimAddr != 0 || !r.VictimDirty {
		t.Fatalf("dirty victim not reported: %+v", r)
	}
}

func TestWriteMarksDirty(t *testing.T) {
	c := mustNew(t, 1024, 64, 2)
	c.Access(3, false)
	if _, d := c.Probe(3); d {
		t.Fatal("clean block reported dirty")
	}
	c.Access(3, true)
	if _, d := c.Probe(3); !d {
		t.Fatal("written block not dirty")
	}
}

func TestClean(t *testing.T) {
	c := mustNew(t, 1024, 64, 2)
	c.Access(3, true)
	if !c.Clean(3) {
		t.Fatal("Clean did not report the block was dirty")
	}
	if _, d := c.Probe(3); d {
		t.Fatal("block still dirty after Clean")
	}
	if c.Clean(3) {
		t.Fatal("Clean on a clean block reported dirty")
	}
	if c.Clean(999) {
		t.Fatal("Clean on an absent block reported dirty")
	}
}

func TestProbeDoesNotTouch(t *testing.T) {
	c := mustNew(t, 1024, 64, 2)
	c.Access(0, false)
	c.Access(8, false)
	// Probing 0 must NOT refresh it.
	c.Probe(0)
	r := c.Access(16, false)
	if r.VictimAddr != 0 {
		t.Fatalf("probe changed LRU state; victim %d, want 0", r.VictimAddr)
	}
}

// TestAgainstReferenceModel drives the cache and a brute-force reference
// (per-set LRU lists) with random traffic and requires identical
// hit/miss/victim behaviour — a property check of the replacement logic.
func TestAgainstReferenceModel(t *testing.T) {
	const (
		sets  = 16
		ways  = 4
		block = 64
	)
	c := mustNew(t, sets*ways*block, block, ways)
	type line struct {
		addr  int64
		dirty bool
	}
	ref := make([][]line, sets) // MRU first

	rnd := rand.New(rand.NewSource(99))
	for op := 0; op < 20_000; op++ {
		addr := int64(rnd.Intn(256))
		write := rnd.Intn(3) == 0
		set := addr % sets

		// Reference behaviour.
		refHit := false
		var refVictim line
		refVictimValid := false
		s := ref[set]
		for i, ln := range s {
			if ln.addr == addr {
				refHit = true
				ln.dirty = ln.dirty || write
				s = append(append([]line{ln}, s[:i]...), s[i+1:]...)
				break
			}
		}
		if !refHit {
			if len(s) == ways {
				refVictim = s[ways-1]
				refVictimValid = true
				s = s[:ways-1]
			}
			s = append([]line{{addr: addr, dirty: write}}, s...)
		}
		ref[set] = s

		got := c.Access(addr, write)
		if got.Hit != refHit {
			t.Fatalf("op %d addr %d: hit=%v, reference says %v", op, addr, got.Hit, refHit)
		}
		if !refHit {
			if got.VictimValid != refVictimValid {
				t.Fatalf("op %d: victimValid=%v, reference %v", op, got.VictimValid, refVictimValid)
			}
			if refVictimValid && (got.VictimAddr != refVictim.addr || got.VictimDirty != refVictim.dirty) {
				t.Fatalf("op %d: victim %d/%v, reference %d/%v",
					op, got.VictimAddr, got.VictimDirty, refVictim.addr, refVictim.dirty)
			}
		}
	}
}

func TestMissRate(t *testing.T) {
	c := mustNew(t, 1024, 64, 2)
	if c.MissRate() != 0 {
		t.Fatal("empty cache should report 0 miss rate")
	}
	c.Access(1, false)
	c.Access(1, false)
	if got := c.MissRate(); got != 0.5 {
		t.Fatalf("miss rate %v, want 0.5", got)
	}
	c.ResetStats()
	if c.Hits != 0 || c.Misses != 0 {
		t.Fatal("ResetStats left counters")
	}
}
