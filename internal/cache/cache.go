// Package cache implements the functional SRAM caches of the hierarchy
// above the DRAM cache: per-core L1s and the shared L2. The caches are
// functional (hit/miss and replacement state); their latencies are
// charged by the CPU model, which is where timing lives.
package cache

import "fmt"

// Cache is a set-associative, write-back, write-allocate cache with LRU
// replacement over block addresses (physical address >> log2(block)).
type Cache struct {
	sets int64
	ways int

	tag   []int64
	valid []bool
	dirty []bool
	lru   []uint32
	tick  uint32

	Hits   int64
	Misses int64
}

// New builds a cache of the given total size. sizeBytes must be a
// multiple of blockBytes*ways.
func New(sizeBytes int64, blockBytes, ways int) (*Cache, error) {
	if sizeBytes <= 0 || blockBytes <= 0 || ways <= 0 {
		return nil, fmt.Errorf("cache: non-positive parameter size=%d block=%d ways=%d", sizeBytes, blockBytes, ways)
	}
	blocks := sizeBytes / int64(blockBytes)
	if blocks%int64(ways) != 0 {
		return nil, fmt.Errorf("cache: %d blocks not divisible by %d ways", blocks, ways)
	}
	sets := blocks / int64(ways)
	n := sets * int64(ways)
	return &Cache{
		sets:  sets,
		ways:  ways,
		tag:   make([]int64, n),
		valid: make([]bool, n),
		dirty: make([]bool, n),
		lru:   make([]uint32, n),
	}, nil
}

// Sets returns the number of sets.
func (c *Cache) Sets() int64 { return c.sets }

// Ways returns the associativity.
func (c *Cache) Ways() int { return c.ways }

func (c *Cache) idx(set int64, way int) int64 { return set*int64(c.ways) + int64(way) }

func (c *Cache) find(blockAddr int64) (set int64, way int) {
	set = blockAddr % c.sets
	t := blockAddr / c.sets
	for w := 0; w < c.ways; w++ {
		i := c.idx(set, w)
		if c.valid[i] && c.tag[i] == t {
			return set, w
		}
	}
	return set, -1
}

// Result reports the outcome of an Access.
type Result struct {
	Hit         bool
	VictimAddr  int64 // block displaced by the allocation (misses only)
	VictimValid bool
	VictimDirty bool
}

// Access performs a load (write=false) or store (write=true) with
// allocate-on-miss semantics and returns the displaced victim, if any.
// Hit detection and victim selection share a single way scan: this is
// the hottest loop of the whole simulator (every warm-up operation and
// every timed memory operation passes through it).
func (c *Cache) Access(blockAddr int64, write bool) Result {
	set := blockAddr % c.sets
	tg := blockAddr / c.sets
	base := set * int64(c.ways)
	c.tick++
	victim, invalid := -1, -1
	var oldest uint32
	for w := 0; w < c.ways; w++ {
		i := base + int64(w)
		if !c.valid[i] {
			if invalid < 0 {
				invalid = w
			}
			continue
		}
		if c.tag[i] == tg {
			c.Hits++
			c.lru[i] = c.tick
			if write {
				c.dirty[i] = true
			}
			return Result{Hit: true}
		}
		if victim < 0 || c.lru[i] < oldest {
			victim, oldest = w, c.lru[i]
		}
	}
	c.Misses++
	if invalid >= 0 {
		victim = invalid
	}
	i := base + int64(victim)
	res := Result{}
	if c.valid[i] {
		res.VictimAddr = c.tag[i]*c.sets + set
		res.VictimValid = true
		res.VictimDirty = c.dirty[i]
	}
	c.tag[i] = tg
	c.valid[i] = true
	c.dirty[i] = write
	c.lru[i] = c.tick
	return res
}

// Probe reports presence without changing any state.
func (c *Cache) Probe(blockAddr int64) (present, dirty bool) {
	set, way := c.find(blockAddr)
	if way < 0 {
		return false, false
	}
	return true, c.dirty[c.idx(set, way)]
}

// Clean clears the dirty bit of blockAddr if present, returning whether
// it was dirty. Used by the Lee DRAM-aware writeback policy, which
// eagerly writes row-mates back and leaves them resident clean.
func (c *Cache) Clean(blockAddr int64) bool {
	set, way := c.find(blockAddr)
	if way < 0 {
		return false
	}
	i := c.idx(set, way)
	was := c.dirty[i]
	c.dirty[i] = false
	return was
}

// MissRate returns misses / (hits+misses), or 0 with no traffic.
func (c *Cache) MissRate() float64 {
	total := c.Hits + c.Misses
	if total == 0 {
		return 0
	}
	return float64(c.Misses) / float64(total)
}

// ResetStats clears hit/miss counters.
func (c *Cache) ResetStats() { c.Hits, c.Misses = 0, 0 }
