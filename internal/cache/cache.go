// Package cache implements the functional SRAM caches of the hierarchy
// above the DRAM cache: per-core L1s and the shared L2. The caches are
// functional (hit/miss and replacement state); their latencies are
// charged by the CPU model, which is where timing lives.
package cache

import (
	"fmt"
	"math/bits"
)

// Cache is a set-associative, write-back, write-allocate cache with LRU
// replacement over block addresses (physical address >> log2(block)).
type Cache struct {
	sets int64
	ways int

	// Power-of-two set counts (the common case) split addresses with a
	// mask and shift instead of the int64 div/mod pair, which dominates
	// the cost of small-way accesses.
	setsPow2 bool
	setMask  int64
	setShift uint

	// lines packs each way's tag, LRU stamp, and dirty bit into one
	// 16-byte record so a set's state is contiguous (a two-way L1 set is
	// a single CPU cache line; a 16-way L2 set is four sequential ones).
	// emptyTag marks an invalid way.
	lines []line
	tick  uint32

	Hits   int64
	Misses int64
}

type line struct {
	tag   int64
	lru   uint32
	dirty bool
}

// emptyTag marks an invalid way. Real tags are block addresses divided by
// the set count and therefore non-negative.
const emptyTag = int64(-1)

// New builds a cache of the given total size. sizeBytes must be a
// multiple of blockBytes*ways.
func New(sizeBytes int64, blockBytes, ways int) (*Cache, error) {
	if sizeBytes <= 0 || blockBytes <= 0 || ways <= 0 {
		return nil, fmt.Errorf("cache: non-positive parameter size=%d block=%d ways=%d", sizeBytes, blockBytes, ways)
	}
	blocks := sizeBytes / int64(blockBytes)
	if blocks%int64(ways) != 0 {
		return nil, fmt.Errorf("cache: %d blocks not divisible by %d ways", blocks, ways)
	}
	sets := blocks / int64(ways)
	n := sets * int64(ways)
	c := &Cache{
		sets:  sets,
		ways:  ways,
		lines: make([]line, n),
	}
	for i := range c.lines {
		c.lines[i].tag = emptyTag
	}
	if sets&(sets-1) == 0 {
		c.setsPow2 = true
		c.setMask = sets - 1
		c.setShift = uint(bits.TrailingZeros64(uint64(sets)))
	}
	return c, nil
}

// split maps a block address to its (set, tag) pair.
func (c *Cache) split(blockAddr int64) (set, tag int64) {
	if c.setsPow2 {
		return blockAddr & c.setMask, blockAddr >> c.setShift
	}
	return blockAddr % c.sets, blockAddr / c.sets
}

// Sets returns the number of sets.
func (c *Cache) Sets() int64 { return c.sets }

// Ways returns the associativity.
func (c *Cache) Ways() int { return c.ways }

func (c *Cache) idx(set int64, way int) int64 { return set*int64(c.ways) + int64(way) }

func (c *Cache) find(blockAddr int64) (set int64, way int) {
	set, t := c.split(blockAddr)
	base := set * int64(c.ways)
	for w := 0; w < c.ways; w++ {
		if c.lines[base+int64(w)].tag == t {
			return set, w
		}
	}
	return set, -1
}

// Result reports the outcome of an Access.
type Result struct {
	Hit         bool
	VictimAddr  int64 // block displaced by the allocation (misses only)
	VictimValid bool
	VictimDirty bool
}

// Access performs a load (write=false) or store (write=true) with
// allocate-on-miss semantics and returns the displaced victim, if any.
// This is the hottest loop of the whole simulator (every warm-up
// operation and every timed memory operation passes through it): the hit
// scan touches only the tag words, and the victim scan runs only on a
// miss.
func (c *Cache) Access(blockAddr int64, write bool) Result {
	set, tg := c.split(blockAddr)
	ws := c.lines[set*int64(c.ways) : (set+1)*int64(c.ways)]
	c.tick++
	for w := range ws {
		l := &ws[w]
		if l.tag == tg {
			c.Hits++
			l.lru = c.tick
			if write {
				l.dirty = true
			}
			return Result{Hit: true}
		}
	}
	c.Misses++
	victim := -1
	var oldest uint32
	for w := range ws {
		l := &ws[w]
		if l.tag == emptyTag {
			victim = w
			break
		}
		if victim < 0 || l.lru < oldest {
			victim, oldest = w, l.lru
		}
	}
	l := &ws[victim]
	res := Result{}
	if l.tag != emptyTag {
		res.VictimAddr = l.tag*c.sets + set
		res.VictimValid = true
		res.VictimDirty = l.dirty
	}
	l.tag = tg
	l.dirty = write
	l.lru = c.tick
	return res
}

// Touch performs a read-hit check in a single way scan: on a hit it
// counts the hit and refreshes LRU state, exactly as Access would; on a
// miss it changes nothing and counts nothing (allocation — and the miss
// count — happen later, when the caller installs the fill). It exists so
// no-allocate-on-miss callers don't pay a Probe scan plus an Access scan.
func (c *Cache) Touch(blockAddr int64) bool {
	set, tg := c.split(blockAddr)
	ws := c.lines[set*int64(c.ways) : (set+1)*int64(c.ways)]
	for w := range ws {
		l := &ws[w]
		if l.tag == tg {
			c.Hits++
			c.tick++
			l.lru = c.tick
			return true
		}
	}
	return false
}

// Probe reports presence without changing any state.
func (c *Cache) Probe(blockAddr int64) (present, dirty bool) {
	set, way := c.find(blockAddr)
	if way < 0 {
		return false, false
	}
	return true, c.lines[c.idx(set, way)].dirty
}

// Clean clears the dirty bit of blockAddr if present, returning whether
// it was dirty. Used by the Lee DRAM-aware writeback policy, which
// eagerly writes row-mates back and leaves them resident clean.
func (c *Cache) Clean(blockAddr int64) bool {
	set, way := c.find(blockAddr)
	if way < 0 {
		return false
	}
	l := &c.lines[c.idx(set, way)]
	was := l.dirty
	l.dirty = false
	return was
}

// MissRate returns misses / (hits+misses), or 0 with no traffic.
func (c *Cache) MissRate() float64 {
	total := c.Hits + c.Misses
	if total == 0 {
		return 0
	}
	return float64(c.Misses) / float64(total)
}

// ResetStats clears hit/miss counters.
func (c *Cache) ResetStats() { c.Hits, c.Misses = 0, 0 }
