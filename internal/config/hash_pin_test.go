package config

import "testing"

// TestPresetHashStability pins the content addresses of the three preset
// configurations. These hashes key the persistent result cache: a change
// here invalidates every cached result, so it must only ever happen
// together with a deliberate SchemaVersion bump (see json.go). The
// values were captured before the scheduler-policy registry refactor and
// prove that the Algorithm string type, the AlgParams omitempty field,
// and the registry-driven marshalers leave canonical bytes unchanged.
func TestPresetHashStability(t *testing.T) {
	want := map[string]string{
		"paper": "c718702e642b32223ca084f7aaf8bd0ad1365530f9598ed06200153556922d04",
		"bench": "4629d31b7916cd8c2453c6fc0d9152c21b20bf95d4d1b3fd75a335b6e7745549",
		"test":  "e088178afa57179a4ecc9fe6466be63af85761f4f7803dbfc6129f9b812f2965",
	}
	for name, cfg := range map[string]Config{
		"paper": Paper(),
		"bench": Bench(),
		"test":  Test(),
	} {
		if got := cfg.Hash(); got != want[name] {
			t.Errorf("%s preset hash changed: got %s want %s\n"+
				"(cache-invalidating change — requires a SchemaVersion bump and this pin updated with it)",
				name, got, want[name])
		}
	}
}
