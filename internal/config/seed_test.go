package config

import "testing"

// TestReplicateSeedIdentity: replicate 0 is the base seed itself, so a
// single-replicate run hashes (and caches) identically to an
// unreplicated one.
func TestReplicateSeedIdentity(t *testing.T) {
	for _, s := range []uint64{0, 1, 42, 1 << 40} {
		if got := ReplicateSeed(s, 0); got != s {
			t.Fatalf("ReplicateSeed(%d, 0) = %d", s, got)
		}
	}
}

// TestReplicateSeedDistinct: replicate seeds must not collide with each
// other across nearby base seeds, nor with the per-mix seed offsets the
// experiment runner derives (base + mixID*1_000_003, mixID <= 30) —
// a collision would silently correlate two "independent" replicates.
func TestReplicateSeedDistinct(t *testing.T) {
	seen := map[uint64]string{}
	record := func(seed uint64, what string) {
		if prev, dup := seen[seed]; dup {
			t.Fatalf("seed collision: %s and %s both derive %d", prev, what, seed)
		}
		seen[seed] = what
	}
	for base := uint64(1); base <= 4; base++ {
		for mix := uint64(0); mix <= 30; mix++ {
			perMix := base + mix*1_000_003
			for k := 0; k < 8; k++ {
				record(ReplicateSeed(perMix, k), "base/mix/rep")
			}
		}
	}
}

// TestSeedPatch: the patch changes Seed and nothing else, so replicate
// configs content-address like ordinary config variants.
func TestSeedPatch(t *testing.T) {
	base := Test()
	base.Benchmarks = []string{"mcf", "lbm", "libquantum", "omnetpp"}
	patched, err := base.Patch(SeedPatch(ReplicateSeed(base.Seed, 3)))
	if err != nil {
		t.Fatal(err)
	}
	if patched.Seed != ReplicateSeed(base.Seed, 3) {
		t.Fatalf("patched seed = %d, want %d", patched.Seed, ReplicateSeed(base.Seed, 3))
	}
	if patched.Hash() == base.Hash() {
		t.Fatal("seed patch did not change the config hash")
	}
	// Restoring the seed restores the exact config, proving the patch
	// touched only Seed.
	restored, err := patched.Patch(SeedPatch(base.Seed))
	if err != nil {
		t.Fatal(err)
	}
	if restored.Hash() != base.Hash() {
		t.Fatal("seed patch changed fields beyond Seed")
	}
}
