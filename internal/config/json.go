package config

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
)

// SchemaVersion identifies the serialized Config layout. It is folded
// into Config.Hash(), so bumping it invalidates every content-addressed
// cache entry at once: bump whenever a Config field is added, removed,
// renamed, or changes meaning — anything that would make two different
// simulations hash alike, or one simulation hash differently than before
// for no behavioural reason.
const SchemaVersion = 1

// envelope is the on-disk form of Save/Load: the schema version guards
// against silently decoding a file written by an incompatible layout.
type envelope struct {
	Schema int    `json:"schema"`
	Config Config `json:"config"`
}

// Canonical returns the canonical JSON encoding of the configuration:
// struct-declaration field order, string enum names, times in integer
// picoseconds, no insignificant whitespace. Two configs are behaviourally
// identical under this schema iff their canonical encodings are equal,
// which is what makes Hash usable as a cache key.
func (c Config) Canonical() ([]byte, error) {
	return json.Marshal(c)
}

// Hash returns the content address of the configuration: a hex SHA-256
// over the schema version and the canonical encoding. It panics on a
// non-marshalable config (only possible with out-of-range enum values),
// matching the many fmt/stats helpers that treat impossible inputs as
// programmer errors.
func (c Config) Hash() string {
	enc, err := c.Canonical()
	if err != nil {
		panic(fmt.Sprintf("config: hashing unmarshalable config: %v", err))
	}
	h := sha256.New()
	fmt.Fprintf(h, "dcasim-config-v%d:", SchemaVersion)
	h.Write(enc)
	return hex.EncodeToString(h.Sum(nil))
}

// Save writes the configuration to path as indented JSON inside a
// schema-versioned envelope.
func Save(path string, c Config) error {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(envelope{Schema: SchemaVersion, Config: c}); err != nil {
		return fmt.Errorf("config: encode %s: %w", path, err)
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		return fmt.Errorf("config: %w", err)
	}
	return nil
}

// Load reads a configuration written by Save. Unknown fields and schema
// mismatches are errors: a config file drives cache keys, so a typoed
// field silently decoding to the default would poison every downstream
// result.
func Load(path string) (Config, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Config{}, fmt.Errorf("config: %w", err)
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var env envelope
	if err := dec.Decode(&env); err != nil {
		return Config{}, fmt.Errorf("config: decode %s: %w", path, err)
	}
	// Reject trailing content: a second concatenated document (say, a
	// duplicated paste) would otherwise be silently ignored, and edits
	// made to it would never reach the run.
	if _, err := dec.Token(); err != io.EOF {
		return Config{}, fmt.Errorf("config: %s: trailing data after the configuration document", path)
	}
	if env.Schema != SchemaVersion {
		return Config{}, fmt.Errorf("config: %s has schema %d, this build expects %d", path, env.Schema, SchemaVersion)
	}
	return env.Config, nil
}

// ParsePreset returns the named preset configuration ("paper", "bench",
// or "test") — the scale switch every command used to hand-roll.
func ParsePreset(s string) (Config, error) {
	switch s {
	case "paper":
		return Paper(), nil
	case "bench":
		return Bench(), nil
	case "test":
		return Test(), nil
	}
	return Config{}, fmt.Errorf("config: unknown scale %q (want paper, bench, or test)", s)
}

// Patch overlays partial configurations, given as JSON objects, onto c,
// applying them in order. Nested objects merge recursively (so
// {"Timing":{"TWTR":2500}} changes one timing parameter and keeps the
// rest); arrays and scalars replace. Unknown fields anywhere in a patch
// are errors.
//
// A patch touching Ctrl while Ctrl is nil first materializes the
// effective controller parameters (CtrlConfig(), i.e. the Table II
// defaults for the design selected by the same patch): a single-knob
// override like {"Ctrl":{"FlushFactor":2}} edits the machine the run
// would actually use instead of producing a zeroed controller config.
func (c Config) Patch(patches ...json.RawMessage) (Config, error) {
	out := c
	for _, p := range patches {
		if len(p) == 0 {
			continue
		}
		var pm map[string]interface{}
		dec := json.NewDecoder(bytes.NewReader(p))
		dec.UseNumber() // keep int64 fields (times, budgets, seeds) exact
		if err := dec.Decode(&pm); err != nil {
			return Config{}, fmt.Errorf("config: decode patch %s: %w", p, err)
		}
		ctrlPatch, hasCtrl := pm["Ctrl"]
		delete(pm, "Ctrl")
		var err error
		if out, err = out.applyPatchMap(pm); err != nil {
			return Config{}, err
		}
		if !hasCtrl {
			continue
		}
		if ctrlPatch == nil {
			out.Ctrl = nil // explicit "Ctrl": null restores the defaults
			continue
		}
		if out.Ctrl == nil {
			eff := out.CtrlConfig()
			out.Ctrl = &eff
		}
		if out, err = out.applyPatchMap(map[string]interface{}{"Ctrl": ctrlPatch}); err != nil {
			return Config{}, err
		}
	}
	return out, nil
}

// applyPatchMap deep-merges one decoded patch object onto the config's
// canonical JSON and strictly re-decodes the result.
func (c Config) applyPatchMap(pm map[string]interface{}) (Config, error) {
	if len(pm) == 0 {
		return c, nil
	}
	base, err := c.Canonical()
	if err != nil {
		return Config{}, fmt.Errorf("config: encode base: %w", err)
	}
	var m map[string]interface{}
	baseDec := json.NewDecoder(bytes.NewReader(base))
	baseDec.UseNumber()
	if err := baseDec.Decode(&m); err != nil {
		return Config{}, fmt.Errorf("config: decode base: %w", err)
	}
	mergeJSON(m, pm)
	merged, err := json.Marshal(m)
	if err != nil {
		return Config{}, fmt.Errorf("config: encode merged: %w", err)
	}
	dec := json.NewDecoder(bytes.NewReader(merged))
	dec.DisallowUnknownFields()
	var out Config
	if err := dec.Decode(&out); err != nil {
		return Config{}, fmt.Errorf("config: apply patch: %w", err)
	}
	return out, nil
}

// mergeJSON merges src into dst recursively: object-into-object merges
// per key, anything else replaces the destination value. Keys are
// visited in sorted order so the merge — and anything derived from a
// traversal of it — is deterministic regardless of map iteration order.
func mergeJSON(dst, src map[string]interface{}) {
	keys := make([]string, 0, len(src))
	for k := range src {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		sv := src[k]
		if sm, ok := sv.(map[string]interface{}); ok {
			if dm, ok := dst[k].(map[string]interface{}); ok {
				mergeJSON(dm, sm)
				continue
			}
		}
		dst[k] = sv
	}
}
