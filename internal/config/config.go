// Package config assembles the full-system configuration (the paper's
// Table II) with presets at three scales: the paper's own parameters, a
// bench scale that reproduces every figure in minutes on a laptop, and a
// small test scale for the unit/integration suites.
package config

import (
	"fmt"
	"reflect"
	"strings"

	"dcasim/internal/addrmap"
	"dcasim/internal/core"
	"dcasim/internal/cpu"
	"dcasim/internal/dcache"
	"dcasim/internal/dram"
	"dcasim/internal/mainmem"
	"dcasim/internal/simtime"
	"dcasim/internal/workload"
)

// TracePrefix marks a Benchmarks entry as a trace-replay source:
// "trace:foo.dct" is shorthand for setting TracePath to "foo.dct".
const TracePrefix = "trace:"

// Config is the complete simulation configuration.
type Config struct {
	// Workload: one benchmark name per core (see workload.Names), or a
	// single "trace:<path>" entry selecting trace replay.
	Benchmarks []string

	// TracePath replays a recorded trace instead of running the
	// synthetic generators: core count and benchmark names come from
	// the trace header, which also overrides InstrPerCore/WarmMemops so
	// the replay consumes exactly the recorded stream.
	TracePath string
	// RecordPath writes the operation stream each core consumes —
	// warm-up included — to a trace file replayable via TracePath.
	RecordPath string

	// Controller and cache organization under study.
	Design       core.Design
	Org          dcache.Org
	XORRemap     bool // permutation-based remapping (Fig. 9)
	UseMAPI      bool // MAP-I miss predictor (on in all paper configs)
	LeeWriteback bool // Lee DRAM-aware L2 writeback (Fig. 19)
	TagCacheKB   int  // ATCache SRAM tag cache size; 0 disables (Fig. 18)
	BEARProbe    bool // BEAR writeback-probe elision (extension)
	// Algorithm overrides the base scheduling algorithm (default BLISS).
	Algorithm core.Algorithm
	// AlgParams overrides the selected policy's declared tunables by
	// name (e.g. ATLAS's QuantumNS); nil keeps every default. Unknown
	// names and out-of-range values are rejected by Validate. Marshals
	// with omitempty so configs without overrides keep their hash.
	AlgParams map[string]float64 `json:",omitempty"`

	// Die-stacked DRAM shape (Table II).
	CacheSizeBytes int64
	Channels       int
	Ranks          int
	Banks          int
	RowBytes       int
	Timing         dram.Timing
	// Ctrl overrides the per-design queue parameters when non-nil.
	Ctrl *core.Config

	// Below the DRAM cache.
	MainMem mainmem.Config

	// Processor side.
	CPU      cpu.Params
	L1Bytes  int64
	L1Ways   int
	L2Bytes  int64
	L2Ways   int
	L2HitLat simtime.Time

	// Run scale.
	InstrPerCore int64
	WarmMemops   int64   // functional warm-up memory ops per core
	WSScale      float64 // working-set scaling relative to the paper
	Seed         uint64
}

// Paper returns the full Table II configuration: 256 MB DRAM cache,
// 4 channels × 16 banks with 4 KB rows, 8 MB L2, 4 GHz 8-wide cores. The
// instruction budget is the paper's 500 M per core — provided for
// completeness; use Bench for tractable runs.
func Paper() Config {
	return Config{
		Design:         core.DCA,
		Algorithm:      core.AlgBLISS,
		Org:            dcache.SetAssoc,
		UseMAPI:        true,
		CacheSizeBytes: 256 << 20,
		Channels:       4,
		Ranks:          1,
		Banks:          16,
		RowBytes:       4096,
		Timing:         dram.StackedDRAM(),
		MainMem:        mainmem.DefaultConfig(),
		CPU:            cpu.DefaultParams(),
		L1Bytes:        32 << 10,
		L1Ways:         2,
		L2Bytes:        8 << 20,
		L2Ways:         16,
		L2HitLat:       5 * simtime.Nanosecond, // 20 cycles at 4 GHz
		InstrPerCore:   500_000_000,
		WarmMemops:     8_000_000,
		WSScale:        1,
		Seed:           1,
	}
}

// Bench returns the scaled configuration used by the experiment harness:
// the machine shape is preserved (channels, banks, rows, timings, queue
// sizes) while capacities and the instruction budget shrink together so
// the cache-to-working-set ratios — and therefore hit rates and traffic
// mixes — stay representative.
func Bench() Config {
	c := Paper()
	c.CacheSizeBytes = 64 << 20
	c.L2Bytes = 2 << 20
	c.InstrPerCore = 300_000
	c.WarmMemops = 600_000
	c.WSScale = 0.25
	return c
}

// Test returns a small configuration for unit and integration tests.
func Test() Config {
	c := Paper()
	c.CacheSizeBytes = 4 << 20
	c.L2Bytes = 512 << 10
	c.InstrPerCore = 50_000
	c.WarmMemops = 40_000
	c.WSScale = 0.02
	return c
}

// DRAMGeometry returns the addrmap geometry implied by the config.
func (c Config) DRAMGeometry() addrmap.Geometry {
	return addrmap.Geometry{
		Channels:  c.Channels,
		Ranks:     c.Ranks,
		Banks:     c.Banks,
		RowBytes:  c.RowBytes,
		BlockSize: dcache.BlockBytes,
	}
}

// CtrlConfig returns the controller parameters: the explicit override or
// the per-design Table II defaults with the config's base algorithm.
func (c Config) CtrlConfig() core.Config {
	if c.Ctrl != nil {
		return *c.Ctrl
	}
	cc := core.DefaultConfig(c.Design)
	cc.Algorithm = c.Algorithm
	cc.AlgParams = c.AlgParams
	return cc
}

// ReplayPath returns the trace file to replay: TracePath, or the path
// of a lone "trace:<path>" Benchmarks entry. Empty means live synthetic
// generation.
func (c Config) ReplayPath() string {
	if c.TracePath != "" {
		return c.TracePath
	}
	if len(c.Benchmarks) == 1 && strings.HasPrefix(c.Benchmarks[0], TracePrefix) {
		return c.Benchmarks[0][len(TracePrefix):]
	}
	return ""
}

// Validate reports the first problem with the configuration.
func (c Config) Validate() error {
	if replay := c.ReplayPath(); replay != "" {
		// Core count, benchmarks, and run budgets come from the trace
		// header; a benchmark list alongside it would be ignored and is
		// almost certainly a mistake.
		if c.TracePath != "" && len(c.Benchmarks) > 0 {
			return fmt.Errorf("config: both TracePath and Benchmarks set")
		}
	} else {
		if len(c.Benchmarks) == 0 {
			return fmt.Errorf("config: no benchmarks")
		}
		for _, b := range c.Benchmarks {
			if strings.HasPrefix(b, TracePrefix) {
				return fmt.Errorf("config: trace entry %q cannot be mixed with synthetic benchmarks", b)
			}
			if _, err := workload.Lookup(b); err != nil {
				return err
			}
		}
	}
	if err := c.DRAMGeometry().Validate(); err != nil {
		return err
	}
	if err := c.CtrlConfig().Validate(); err != nil {
		return err
	}
	// With an explicit Ctrl the controller consumes Ctrl.Design and
	// Ctrl.Algorithm, so a diverging top-level value would be silently
	// inert — yet still change the config hash, mislabeling cached
	// results. Reject the divergence instead.
	if c.Ctrl != nil {
		if c.Ctrl.Design != c.Design {
			return fmt.Errorf("config: Design %v diverges from Ctrl.Design %v (the controller uses Ctrl.Design)", c.Design, c.Ctrl.Design)
		}
		if c.Ctrl.Algorithm.Canonical() != c.Algorithm.Canonical() {
			return fmt.Errorf("config: Algorithm %v diverges from Ctrl.Algorithm %v (the controller uses Ctrl.Algorithm)", c.Algorithm, c.Ctrl.Algorithm)
		}
		if len(c.AlgParams) > 0 && !reflect.DeepEqual(c.AlgParams, c.Ctrl.AlgParams) {
			return fmt.Errorf("config: AlgParams diverge from Ctrl.AlgParams (the controller uses Ctrl.AlgParams)")
		}
	}
	switch {
	// On replay the trace header supplies the run budgets and the
	// working-set scale is unused, so both may be left zero.
	case c.InstrPerCore <= 0 && c.ReplayPath() == "":
		return fmt.Errorf("config: non-positive instruction budget %d", c.InstrPerCore)
	case c.WSScale <= 0 && c.ReplayPath() == "":
		return fmt.Errorf("config: non-positive working-set scale %v", c.WSScale)
	case c.L1Bytes <= 0 || c.L2Bytes <= 0:
		return fmt.Errorf("config: non-positive cache sizes L1=%d L2=%d", c.L1Bytes, c.L2Bytes)
	case c.TagCacheKB < 0:
		return fmt.Errorf("config: negative tag cache size %d", c.TagCacheKB)
	case c.TagCacheKB > 0 && c.Org != dcache.SetAssoc:
		return fmt.Errorf("config: tag cache requires the set-associative organization")
	}
	return nil
}
