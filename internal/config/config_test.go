package config

import (
	"testing"

	"dcasim/internal/core"
	"dcasim/internal/dcache"
)

func withMix(c Config) Config {
	c.Benchmarks = []string{"mcf", "lbm", "gcc", "milc"}
	return c
}

func TestPresetsValidate(t *testing.T) {
	for name, cfg := range map[string]Config{
		"paper": withMix(Paper()),
		"bench": withMix(Bench()),
		"test":  withMix(Test()),
	} {
		if err := cfg.Validate(); err != nil {
			t.Errorf("%s preset invalid: %v", name, err)
		}
	}
}

func TestPaperMatchesTableII(t *testing.T) {
	c := Paper()
	if c.CacheSizeBytes != 256<<20 || c.Channels != 4 || c.Banks != 16 || c.RowBytes != 4096 {
		t.Fatalf("stacked DRAM shape wrong: %+v", c)
	}
	if c.L2Bytes != 8<<20 || c.L1Bytes != 32<<10 {
		t.Fatalf("SRAM sizes wrong: L1=%d L2=%d", c.L1Bytes, c.L2Bytes)
	}
	if c.CPU.FreqGHz != 4 || c.CPU.Width != 8 || c.CPU.ROB != 192 {
		t.Fatalf("core parameters wrong: %+v", c.CPU)
	}
	if c.InstrPerCore != 500_000_000 {
		t.Fatalf("paper instruction budget %d, want 500M", c.InstrPerCore)
	}
	if !c.UseMAPI {
		t.Fatal("the paper's setups all use MAP-I")
	}
}

func TestCtrlConfigPerDesign(t *testing.T) {
	c := withMix(Bench())
	c.Design = core.ROD
	cc := c.CtrlConfig()
	if cc.ReadQueueCap != 32 || cc.WriteQueueCap != 96 {
		t.Fatalf("ROD queues %d/%d", cc.ReadQueueCap, cc.WriteQueueCap)
	}
	override := core.DefaultConfig(core.DCA)
	override.FlushFactor = 2
	c.Ctrl = &override
	if c.CtrlConfig().FlushFactor != 2 {
		t.Fatal("override ignored")
	}
}

func TestValidationErrors(t *testing.T) {
	base := withMix(Test())
	cases := map[string]func(*Config){
		"no benchmarks":      func(c *Config) { c.Benchmarks = nil },
		"unknown benchmark":  func(c *Config) { c.Benchmarks = []string{"doom"} },
		"zero instructions":  func(c *Config) { c.InstrPerCore = 0 },
		"zero ws scale":      func(c *Config) { c.WSScale = 0 },
		"negative tag cache": func(c *Config) { c.TagCacheKB = -1 },
		"tag cache on DM":    func(c *Config) { c.TagCacheKB = 64; c.Org = dcache.DirectMapped },
		"bad channels":       func(c *Config) { c.Channels = 3 },
		"zero L2":            func(c *Config) { c.L2Bytes = 0 },
	}
	for name, mutate := range cases {
		c := base
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("%s: validation passed", name)
		}
	}
}

func TestReplayPath(t *testing.T) {
	c := Test()
	if p := c.ReplayPath(); p != "" {
		t.Fatalf("fresh config replays %q", p)
	}
	c.TracePath = "runs/mix.dct"
	if p := c.ReplayPath(); p != "runs/mix.dct" {
		t.Fatalf("TracePath not surfaced: %q", p)
	}
	c = Test()
	c.Benchmarks = []string{TracePrefix + "foo.dct"}
	if p := c.ReplayPath(); p != "foo.dct" {
		t.Fatalf("trace: shorthand parsed as %q", p)
	}
	// A replay config validates without benchmarks, budgets, or scale:
	// the trace header supplies them.
	c.Benchmarks = nil
	c.TracePath = "foo.dct"
	c.InstrPerCore = 0
	c.WSScale = 0
	if err := c.Validate(); err != nil {
		t.Fatalf("replay config rejected: %v", err)
	}
}

func TestReplayValidationErrors(t *testing.T) {
	cases := map[string]func(*Config){
		"trace mixed with benchmarks": func(c *Config) {
			c.Benchmarks = []string{"mcf", TracePrefix + "foo.dct"}
		},
		"TracePath alongside benchmarks": func(c *Config) {
			c.Benchmarks = []string{"mcf"}
			c.TracePath = "foo.dct"
		},
	}
	for name, mutate := range cases {
		c := Test()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("%s: validation passed", name)
		}
	}
}

func TestDRAMGeometry(t *testing.T) {
	g := Paper().DRAMGeometry()
	if g.BlocksPerRow() != 64 {
		t.Fatalf("blocks per row = %d, want 64", g.BlocksPerRow())
	}
}
