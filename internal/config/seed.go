package config

import (
	"encoding/json"
	"fmt"
)

// replicateStride separates the seed streams of replicate runs. It is
// prime and larger than the maximum per-mix seed offset the experiment
// runner applies (mixID*1_000_003 with mixID <= 30), so replicate k of
// one mix can never collide with replicate 0 of another.
const replicateStride = 100_000_007

// ReplicateSeed derives the seed of replicate k from a base seed.
// Replicate 0 is the base seed itself, so a single-replicate run is
// bit-identical to an unreplicated one.
func ReplicateSeed(seed uint64, k int) uint64 {
	return seed + uint64(k)*replicateStride
}

// SeedPatch returns a JSON patch setting only the Seed field — the
// ordinary Config.Patch form replicate configs are built from, so they
// content-address, cache, and deduplicate like any other config.
func SeedPatch(seed uint64) json.RawMessage {
	return json.RawMessage(fmt.Sprintf(`{"Seed":%d}`, seed))
}
