package config

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"regexp"
	"strings"
	"testing"

	"dcasim/internal/core"
	"dcasim/internal/dcache"
	"dcasim/internal/simtime"
)

// presets returns every preset plus a variant exercising the optional
// fields (controller override, tag cache, algorithm, benchmarks).
func presets() map[string]Config {
	full := Bench()
	full.Benchmarks = []string{"mcf", "lbm", "libquantum", "omnetpp"}
	full.Design = core.ROD
	full.Org = dcache.DirectMapped
	full.XORRemap = true
	full.LeeWriteback = true
	full.Algorithm = core.AlgFRFCFS
	ctrl := core.DefaultConfig(core.ROD)
	ctrl.Algorithm = core.AlgFRFCFS // must match the top level (Validate)
	ctrl.FlushFactor = 2
	full.Ctrl = &ctrl
	return map[string]Config{
		"paper": Paper(),
		"bench": Bench(),
		"test":  Test(),
		"full":  full,
	}
}

// TestJSONRoundTrip: canonical encode → decode must reproduce every
// preset exactly, including nested pointers and enum fields.
func TestJSONRoundTrip(t *testing.T) {
	for name, cfg := range presets() {
		enc, err := cfg.Canonical()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		var back Config
		if err := json.Unmarshal(enc, &back); err != nil {
			t.Fatalf("%s: decode: %v", name, err)
		}
		if !reflect.DeepEqual(back, cfg) {
			t.Errorf("%s: round trip diverged:\n got %+v\nwant %+v", name, back, cfg)
		}
	}
}

// TestHashStability pins Config.Hash() for the presets: cache keys must
// not change silently. A legitimate schema change (new field, changed
// meaning) must bump SchemaVersion, which changes every hash at once —
// and this test's constants with it.
func TestHashStability(t *testing.T) {
	want := map[string]string{
		"paper": "c718702e642b32223ca084f7aaf8bd0ad1365530f9598ed06200153556922d04",
		"bench": "4629d31b7916cd8c2453c6fc0d9152c21b20bf95d4d1b3fd75a335b6e7745549",
		"test":  "e088178afa57179a4ecc9fe6466be63af85761f4f7803dbfc6129f9b812f2965",
	}
	for name, h := range want {
		cfg, err := ParsePreset(name)
		if err != nil {
			t.Fatal(err)
		}
		if got := cfg.Hash(); got != h {
			t.Errorf("%s hash changed: got %s want %s — config schema drifted without a SchemaVersion bump?", name, got, h)
		}
	}
}

// TestSchemaVersionExtractable guards the sed pattern CI uses to derive
// the result-cache key from this package's source: the constant must
// stay on a single `const SchemaVersion = N` line, or the workflow's
// extraction comes up empty and its guard aborts the job.
func TestSchemaVersionExtractable(t *testing.T) {
	data, err := os.ReadFile("json.go")
	if err != nil {
		t.Fatal(err)
	}
	re := regexp.MustCompile(`(?m)^const SchemaVersion = ([0-9]+)$`)
	m := re.FindSubmatch(data)
	if m == nil {
		t.Fatal("`const SchemaVersion = N` line not found — CI derives its cache key from it (see .github/workflows/ci.yml)")
	}
	if got := fmt.Sprintf("%d", SchemaVersion); string(m[1]) != got {
		t.Fatalf("extracted %s, constant is %s", m[1], got)
	}
}

func TestHashDistinguishesConfigs(t *testing.T) {
	a := Test()
	b := Test()
	b.Seed++
	if a.Hash() == b.Hash() {
		t.Fatal("different configs must hash differently")
	}
	if a.Hash() != Test().Hash() {
		t.Fatal("equal configs must hash equally")
	}
}

func TestSaveLoad(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cfg.json")
	for name, cfg := range presets() {
		if err := Save(path, cfg); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		back, err := Load(path)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !reflect.DeepEqual(back, cfg) {
			t.Errorf("%s: Save/Load diverged:\n got %+v\nwant %+v", name, back, cfg)
		}
	}
}

func TestLoadRejectsUnknownFieldsAndSchema(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) string {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	if _, err := Load(write("unknown.json", `{"schema":1,"config":{"Desing":"DCA"}}`)); err == nil {
		t.Error("Load accepted an unknown config field")
	}
	if _, err := Load(write("schema.json", `{"schema":999,"config":{}}`)); err == nil || !strings.Contains(err.Error(), "schema") {
		t.Errorf("Load accepted a future schema: %v", err)
	}
}

func TestParsePreset(t *testing.T) {
	for _, name := range []string{"paper", "bench", "test"} {
		if _, err := ParsePreset(name); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	if _, err := ParsePreset("huge"); err == nil {
		t.Error("ParsePreset accepted an unknown scale")
	}
}

func TestPatchDeepMerge(t *testing.T) {
	base := Test()
	got, err := base.Patch(json.RawMessage(`{"Timing":{"TWTR":2500},"Design":"ROD","Org":"dm"}`))
	if err != nil {
		t.Fatal(err)
	}
	if got.Timing.TWTR != 2500 {
		t.Errorf("TWTR not patched: %v", got.Timing.TWTR)
	}
	if got.Timing.TRCD != simtime.FromNS(8) {
		t.Errorf("deep merge clobbered sibling timing field: %v", got.Timing.TRCD)
	}
	if got.Design != core.ROD || got.Org != dcache.DirectMapped {
		t.Errorf("enum patches not applied: %v %v", got.Design, got.Org)
	}
	// Unpatched fields survive untouched.
	want := base
	want.Timing.TWTR = 2500
	want.Design = core.ROD
	want.Org = dcache.DirectMapped
	if !reflect.DeepEqual(got, want) {
		t.Errorf("patch changed unrelated fields:\n got %+v\nwant %+v", got, want)
	}
}

func TestPatchCtrlMerge(t *testing.T) {
	// A Ctrl patch against a nil Ctrl materializes the effective
	// defaults of the selected design first, so a single-knob override
	// edits the machine the run would actually use — the sweep-axis
	// idiom for knobs like FlushFactor.
	base := Test() // Design DCA, Ctrl nil
	ffOnly, err := base.Patch(json.RawMessage(`{"Ctrl":{"FlushFactor":2}}`))
	if err != nil {
		t.Fatal(err)
	}
	want := core.DefaultConfig(core.DCA)
	want.FlushFactor = 2
	if ffOnly.Ctrl == nil || !reflect.DeepEqual(*ffOnly.Ctrl, want) {
		t.Fatalf("Ctrl patch did not materialize defaults: %+v", ffOnly.Ctrl)
	}
	if err := ffOnly.Validate(); err == nil {
		// Test() has no benchmarks, so full validation can't pass here;
		// check just the controller part instead.
		t.Fatal("expected benchmark validation error")
	}
	if err := ffOnly.CtrlConfig().Validate(); err != nil {
		t.Fatalf("materialized Ctrl invalid: %v", err)
	}

	// The design selected in the same patch governs the defaults.
	rodFF, err := base.Patch(json.RawMessage(`{"Design":"ROD","Ctrl":{"FlushFactor":1}}`))
	if err != nil {
		t.Fatal(err)
	}
	if rodFF.Ctrl.Design != core.ROD || rodFF.Ctrl.ReadQueueCap != 32 || rodFF.Ctrl.WriteQueueCap != 96 {
		t.Fatalf("Ctrl defaults not taken from the patched design: %+v", rodFF.Ctrl)
	}

	// A later patch merges into the existing Ctrl rather than replacing
	// it, and an explicit null restores the defaults.
	again, err := ffOnly.Patch(json.RawMessage(`{"Ctrl":{"FlushFactor":6}}`))
	if err != nil {
		t.Fatal(err)
	}
	if again.Ctrl.FlushFactor != 6 || again.Ctrl.ReadQueueCap != 64 {
		t.Fatalf("Ctrl deep merge lost fields: %+v", again.Ctrl)
	}
	cleared, err := again.Patch(json.RawMessage(`{"Ctrl":null}`))
	if err != nil {
		t.Fatal(err)
	}
	if cleared.Ctrl != nil {
		t.Fatalf("explicit Ctrl:null did not clear the override: %+v", cleared.Ctrl)
	}
}

// TestValidateRejectsCtrlDivergence: with an explicit Ctrl the
// controller consumes Ctrl.Design/Ctrl.Algorithm, so a diverging
// top-level value would be silently inert yet still change the hash —
// it must be rejected, not simulated under the wrong label.
func TestValidateRejectsCtrlDivergence(t *testing.T) {
	base := Test()
	base.Benchmarks = []string{"mcf"}
	ctrl := core.DefaultConfig(core.DCA)
	base.Ctrl = &ctrl

	ok := base
	if err := ok.Validate(); err != nil {
		t.Fatalf("consistent Ctrl rejected: %v", err)
	}
	badDesign := base
	badDesign.Design = core.CD
	if err := badDesign.Validate(); err == nil || !strings.Contains(err.Error(), "Ctrl.Design") {
		t.Errorf("diverging Design accepted: %v", err)
	}
	badAlg := base
	badAlg.Algorithm = core.AlgFCFS
	if err := badAlg.Validate(); err == nil || !strings.Contains(err.Error(), "Ctrl.Algorithm") {
		t.Errorf("diverging Algorithm accepted: %v", err)
	}
}

func TestPatchRejectsUnknownField(t *testing.T) {
	if _, err := Test().Patch(json.RawMessage(`{"Desing":"DCA"}`)); err == nil {
		t.Fatal("Patch accepted an unknown field")
	}
}

func TestPatchKeepsLargeIntsExact(t *testing.T) {
	base := Paper()                                                      // 500 M instructions, 256 MB sizes
	got, err := base.Patch(json.RawMessage(`{"Seed":9007199254740993}`)) // 2^53+1
	if err != nil {
		t.Fatal(err)
	}
	if got.Seed != 9007199254740993 {
		t.Errorf("seed lost precision through the patch path: %d", got.Seed)
	}
	if got.InstrPerCore != base.InstrPerCore || got.CacheSizeBytes != base.CacheSizeBytes {
		t.Error("unpatched large ints drifted through the patch path")
	}
}
