package sim

import (
	"testing"

	"dcasim/internal/config"
	"dcasim/internal/core"
	"dcasim/internal/dcache"
)

// TestAccountingInvariants checks cross-module consistency of the
// statistics a run reports.
func TestAccountingInvariants(t *testing.T) {
	cfg := config.Test()
	cfg.Benchmarks = []string{"soplex", "mcf", "gcc", "libquantum"}
	for _, org := range []dcache.Org{dcache.SetAssoc, dcache.DirectMapped} {
		cfg.Org = org
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		s := res.DCache
		// The run stops when every core retires its budget, so a few
		// requests (bounded by the cores' MSHRs) are still in flight;
		// all counts must agree up to that slack.
		slack := int64(len(cfg.Benchmarks) * cfg.CPU.MSHRs)
		near := func(a, b int64) bool { return a-b <= slack && b-a <= slack }

		if !near(s.ReadHits+s.ReadMisses, s.ReadReqs) {
			t.Errorf("%v: hits %d + misses %d != reads %d", org, s.ReadHits, s.ReadMisses, s.ReadReqs)
		}
		if !near(s.ReadsCompleted, s.ReadReqs) {
			t.Errorf("%v: %d of %d reads completed", org, s.ReadsCompleted, s.ReadReqs)
		}
		// Every read miss produces exactly one refill request.
		if !near(s.RefillReqs, s.ReadMisses) {
			t.Errorf("%v: refills %d != read misses %d", org, s.RefillReqs, s.ReadMisses)
		}
		// Every read miss fetches exactly one block from main memory
		// (plus MAP-I false-miss speculative fetches).
		if res.MainMemReads < s.ReadMisses {
			t.Errorf("%v: main memory reads %d < read misses %d", org, res.MainMemReads, s.ReadMisses)
		}
		if res.MainMemReads > s.ReadMisses+s.WastedFetches+slack {
			t.Errorf("%v: main memory reads %d > misses %d + wasted %d",
				org, res.MainMemReads, s.ReadMisses, s.WastedFetches)
		}
		// DRAM accesses split consistently.
		d := res.DRAM
		if d.Reads+d.Writes != d.Accesses {
			t.Errorf("%v: reads %d + writes %d != accesses %d", org, d.Reads, d.Writes, d.Accesses)
		}
		if d.ReadRowHit+d.ReadRowMiss+d.ReadRowConf != d.Reads {
			t.Errorf("%v: read row outcomes do not sum: %+v", org, d)
		}
		if d.WriteRowHit+d.WriteRowMiss+d.WriteRowConf != d.Writes {
			t.Errorf("%v: write row outcomes do not sum: %+v", org, d)
		}
		// The controller issued exactly the DRAM accesses.
		c := res.Ctrl
		if c.PRIssued+c.LRIssued != d.Reads {
			t.Errorf("%v: PR %d + LR %d != DRAM reads %d", org, c.PRIssued, c.LRIssued, d.Reads)
		}
		if c.WritesIssued != d.Writes {
			t.Errorf("%v: controller writes %d != DRAM writes %d", org, c.WritesIssued, d.Writes)
		}
	}
}

// TestNonDCADesignsNeverUseOFS: the OFS path is DCA-only.
func TestNonDCADesignsNeverUseOFS(t *testing.T) {
	for _, d := range []core.Design{core.CD, core.ROD} {
		cfg := config.Test()
		cfg.Benchmarks = []string{"lbm", "mcf", "leslie3d", "omnetpp"}
		cfg.Design = d
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.Ctrl.OFSIssues != 0 || res.Ctrl.ScheduleAllOn != 0 {
			t.Errorf("%v: OFS=%d ScheduleAll=%d, want 0/0", d, res.Ctrl.OFSIssues, res.Ctrl.ScheduleAllOn)
		}
		if d == core.CD && res.Ctrl.LRIssued != 0 {
			// CD never classifies LRs (all reads are plain reads).
			continue
		}
	}
}

// TestDCAClassifiesLRs: under DCA, writeback/refill probes are LRs.
func TestDCAClassifiesLRs(t *testing.T) {
	cfg := config.Test()
	cfg.Benchmarks = []string{"lbm", "mcf", "leslie3d", "omnetpp"}
	cfg.Design = core.DCA
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ctrl.LRIssued == 0 {
		t.Fatal("DCA issued no LRs despite writeback/refill traffic")
	}
	if res.Ctrl.PRIssued == 0 {
		t.Fatal("DCA issued no PRs")
	}
}

// TestRemapPreservesWork: remapping changes locations, not the amount of
// work — request counts must match between remapped and plain runs.
func TestRemapPreservesWork(t *testing.T) {
	cfg := config.Test()
	cfg.Benchmarks = []string{"soplex", "mcf", "gcc", "libquantum"}
	plain, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.XORRemap = true
	remap, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Timing shifts change L2 MSHR merge opportunities slightly, so the
	// counts match within a small tolerance rather than exactly.
	within := func(a, b int64) bool {
		d := a - b
		if d < 0 {
			d = -d
		}
		return d*200 <= a+b // 1 % of the mean
	}
	if !within(plain.DCache.ReadReqs, remap.DCache.ReadReqs) {
		t.Errorf("read requests differ: %d vs %d", plain.DCache.ReadReqs, remap.DCache.ReadReqs)
	}
	if !within(plain.DCache.ReadHits, remap.DCache.ReadHits) {
		t.Errorf("hit behaviour changed under remap: %d vs %d (mapping must not affect set indexing)",
			plain.DCache.ReadHits, remap.DCache.ReadHits)
	}
}

// TestTagCacheReducesOrMultipliesTagTraffic: with a tiny tag cache the
// DRAM tag traffic typically grows (the paper's Fig. 18 observation).
func TestTagCacheChangesTagTraffic(t *testing.T) {
	cfg := config.Test()
	cfg.Benchmarks = []string{"mcf", "omnetpp", "astar", "milc"}
	base, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.TagCacheKB = 64
	with, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if with.TagCacheLookups == 0 {
		t.Fatal("tag cache saw no lookups")
	}
	if base.DRAMTagAccesses == 0 {
		t.Fatal("baseline recorded no tag accesses")
	}
	ratio := float64(with.DRAMTagAccesses) / float64(base.DRAMTagAccesses)
	if ratio < 0.2 || ratio > 6 {
		t.Fatalf("tag traffic ratio %.2f implausible", ratio)
	}
}

// TestLeePolicyProducesEagerWritebacks at system level.
func TestLeePolicyProducesEagerWritebacks(t *testing.T) {
	cfg := config.Test()
	cfg.Benchmarks = []string{"lbm", "lbm", "lbm", "lbm"}
	cfg.LeeWriteback = true
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.LeeEager == 0 {
		t.Fatal("Lee policy produced no eager row-mate writebacks on a streaming store-heavy mix")
	}
}

// TestSeedChangesOutcome: different seeds must give different (but
// still valid) executions.
func TestSeedChangesOutcome(t *testing.T) {
	cfg := config.Test()
	cfg.Benchmarks = []string{"soplex", "mcf", "gcc", "libquantum"}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Seed = 12345
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	for i := range a.IPC {
		if a.IPC[i] == b.IPC[i] {
			same++
		}
	}
	if same == len(a.IPC) {
		t.Fatal("different seeds produced identical IPCs for every core")
	}
}

// TestAloneFasterThanShared: a benchmark running alone must not be
// slower than the same benchmark sharing the machine with three others.
func TestAloneFasterThanShared(t *testing.T) {
	cfg := config.Test()
	alone, err := AloneIPC(cfg, "mcf")
	if err != nil {
		t.Fatal(err)
	}
	cfg.Benchmarks = []string{"mcf", "lbm", "bwaves", "milc"}
	cfg.Design = core.CD
	shared, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if shared.IPC[0] > alone*1.05 {
		t.Fatalf("mcf shared IPC %.4f exceeds alone IPC %.4f", shared.IPC[0], alone)
	}
}
