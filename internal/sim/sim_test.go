package sim

import (
	"testing"

	"dcasim/internal/config"
	"dcasim/internal/core"
	"dcasim/internal/dcache"
)

func testConfig() config.Config {
	cfg := config.Test()
	cfg.Benchmarks = []string{"mcf", "lbm", "libquantum", "omnetpp"}
	return cfg
}

func TestRunCompletes(t *testing.T) {
	for _, org := range []dcache.Org{dcache.SetAssoc, dcache.DirectMapped} {
		for _, d := range []core.Design{core.CD, core.ROD, core.DCA} {
			cfg := testConfig()
			cfg.Org = org
			cfg.Design = d
			res, err := Run(cfg)
			if err != nil {
				t.Fatalf("%v/%v: %v", org, d, err)
			}
			for i, ipc := range res.IPC {
				if ipc <= 0 || ipc > float64(cfg.CPU.Width) {
					t.Errorf("%v/%v core %d: implausible IPC %v", org, d, i, ipc)
				}
			}
			if res.DCache.ReadReqs == 0 {
				t.Errorf("%v/%v: no DRAM cache reads", org, d)
			}
			if res.DCache.WritebackReqs == 0 {
				t.Errorf("%v/%v: no DRAM cache writebacks", org, d)
			}
			if res.DRAM.Accesses == 0 {
				t.Errorf("%v/%v: no DRAM accesses", org, d)
			}
			t.Logf("%v/%-3v IPC=%v hit=%.2f rowhit=%.2f accPerTA=%.1f L2missLat=%.1fns reads=%d wb=%d refill=%d turn=%d",
				org, d, res.IPC, res.DCache.ReadHitRate(), res.ReadRowHitRate(),
				res.AccessesPerTurnaround(), res.L2MissLatencyNS,
				res.DCache.ReadReqs, res.DCache.WritebackReqs, res.DCache.RefillReqs, res.DRAM.Turnarounds)
		}
	}
}

func TestDeterminism(t *testing.T) {
	cfg := testConfig()
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.IPC {
		if a.IPC[i] != b.IPC[i] {
			t.Fatalf("core %d IPC differs between identical runs: %v vs %v", i, a.IPC[i], b.IPC[i])
		}
	}
	if a.DRAM != b.DRAM {
		t.Fatalf("DRAM stats differ between identical runs:\n%+v\n%+v", a.DRAM, b.DRAM)
	}
}
