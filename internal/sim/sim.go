// Package sim assembles a complete system from a config — cores, L1s,
// the shared L2, the DRAM cache with its per-channel controllers, and
// main memory — performs functional warm-up, runs the timed region, and
// collects every statistic the experiments consume.
package sim

import (
	"bufio"
	"fmt"
	"os"

	"dcasim/internal/cache"
	"dcasim/internal/config"
	"dcasim/internal/core"
	"dcasim/internal/cpu"
	"dcasim/internal/dcache"
	"dcasim/internal/dram"
	"dcasim/internal/event"
	"dcasim/internal/mainmem"
	"dcasim/internal/simtime"
	"dcasim/internal/tagcache"
	"dcasim/internal/trace"
	"dcasim/internal/workload"
)

// Result collects the outputs of one simulation run.
type Result struct {
	Benchmarks []string
	IPC        []float64
	FinishNS   []float64

	DCache dcache.Stats
	DRAM   dram.Stats
	Ctrl   core.Stats

	L2MissLatencyNS float64
	L2MissRate      float64
	L2Writebacks    int64
	LeeEager        int64

	TagCacheLookups int64
	TagCacheHits    int64
	DRAMTagAccesses int64

	MainMemReads  int64
	MainMemWrites int64
}

// runSources carries the resolved per-core operation streams of a run:
// live synthetic generators, trace-replay decoders, and the optional
// recording tee around either.
type runSources struct {
	names      []string // benchmark name per core, for Result.Benchmarks
	srcs       []workload.Source
	reader     *trace.Reader
	writer     *trace.Writer
	outBuf     *bufio.Writer
	recordPath string
	files      []*os.File
}

// openSources resolves cfg into per-core sources. On replay it rewrites
// the run budgets from the trace header so the simulation consumes
// exactly the recorded stream; on record it tees every source into a
// trace writer.
func openSources(cfg *config.Config) (*runSources, error) {
	rs := &runSources{}
	if path := cfg.ReplayPath(); path != "" {
		f, err := os.Open(path)
		if err != nil {
			return nil, fmt.Errorf("sim: open trace: %w", err)
		}
		rs.files = append(rs.files, f)
		r, err := trace.NewReader(bufio.NewReaderSize(f, 1<<16))
		if err != nil {
			rs.closeFiles()
			return nil, err
		}
		rs.reader = r
		hdr := r.Header()
		rs.names = hdr.Benchmarks
		if hdr.InstrPerCore > 0 {
			cfg.InstrPerCore = hdr.InstrPerCore
			cfg.WarmMemops = hdr.WarmMemops
			cfg.Seed = hdr.Seed
			cfg.WSScale = hdr.WSScale
		}
		if cfg.InstrPerCore <= 0 {
			rs.closeFiles()
			return nil, fmt.Errorf("sim: trace %s carries no instruction budget and the config sets none", path)
		}
		rs.srcs = make([]workload.Source, len(rs.names))
		for i := range rs.srcs {
			rs.srcs[i] = r.Source(i)
		}
	} else {
		rs.names = append([]string(nil), cfg.Benchmarks...)
		rs.srcs = make([]workload.Source, len(rs.names))
		for i, bench := range rs.names {
			prof, err := workload.Lookup(bench)
			if err != nil {
				return nil, err
			}
			rs.srcs[i] = workload.NewGen(prof, cfg.Seed*1000003+uint64(i)*7919, int64(i)<<40, cfg.WSScale)
		}
	}
	if cfg.RecordPath != "" {
		f, err := os.Create(cfg.RecordPath)
		if err != nil {
			rs.closeFiles()
			return nil, fmt.Errorf("sim: create trace: %w", err)
		}
		rs.files = append(rs.files, f)
		rs.recordPath = cfg.RecordPath
		rs.outBuf = bufio.NewWriterSize(f, 1<<16)
		w, err := trace.NewWriter(rs.outBuf, trace.Header{
			Benchmarks:   rs.names,
			Seed:         cfg.Seed,
			WSScale:      cfg.WSScale,
			InstrPerCore: cfg.InstrPerCore,
			WarmMemops:   cfg.WarmMemops,
		})
		if err != nil {
			rs.abort()
			return nil, err
		}
		rs.writer = w
		for i := range rs.srcs {
			rs.srcs[i] = w.Tee(i, rs.srcs[i])
		}
	}
	return rs, nil
}

// abort closes the trace files after a failed run and removes a
// partially written recording — a truncated .dct would replay as a
// confusing stream-exhausted error much later.
func (rs *runSources) abort() {
	rs.closeFiles()
	if rs.recordPath != "" {
		os.Remove(rs.recordPath)
	}
}

// finish flushes the recording, surfaces any replay decode error, and
// closes the trace files.
func (rs *runSources) finish() error {
	var first error
	if rs.writer != nil {
		first = rs.writer.Flush()
		if err := rs.outBuf.Flush(); first == nil && err != nil {
			first = fmt.Errorf("sim: flush trace: %w", err)
		}
	}
	if rs.reader != nil && first == nil {
		if err := rs.reader.Err(); err != nil {
			first = fmt.Errorf("sim: replay: %w", err)
		}
	}
	if err := rs.closeFiles(); first == nil {
		first = err
	}
	return first
}

func (rs *runSources) closeFiles() error {
	var first error
	for _, f := range rs.files {
		if err := f.Close(); first == nil && err != nil {
			first = err
		}
	}
	rs.files = nil
	return first
}

// testEngineHook, when set, observes the event engine of every Run
// before any event is scheduled. It is a test-only seam (the
// event-delta characterization test instruments Schedule through it)
// and must stay nil outside tests.
var testEngineHook func(*event.Engine)

// Run executes one simulation and returns its results.
func Run(cfg config.Config) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	srcs, err := openSources(&cfg)
	if err != nil {
		return Result{}, err
	}
	finished := false
	defer func() {
		if !finished {
			srcs.abort()
		}
	}()
	eng := &event.Engine{}
	if testEngineHook != nil {
		testEngineHook(eng)
	}
	mem := mainmem.New(eng, cfg.MainMem)

	dcCfg := dcache.Config{
		Org:       cfg.Org,
		SizeBytes: cfg.CacheSizeBytes,
		DRAM:      cfg.DRAMGeometry(),
		Timing:    cfg.Timing,
		XORRemap:  cfg.XORRemap,
		Ctrl:      cfg.CtrlConfig(),
		UseMAPI:   cfg.UseMAPI,
		BEARProbe: cfg.BEARProbe,
		Cores:     len(srcs.srcs),
	}
	if cfg.TagCacheKB > 0 {
		tc := tagcache.DefaultConfig(cfg.TagCacheKB << 10)
		dcCfg.TagCache = &tc
	}
	dc, err := dcache.New(eng, dcCfg, mem)
	if err != nil {
		return Result{}, err
	}

	l2arr, err := cache.New(cfg.L2Bytes, dcache.BlockBytes, cfg.L2Ways)
	if err != nil {
		return Result{}, err
	}
	l2 := cpu.NewL2(eng, l2arr, dc, cfg.L2HitLat, cfg.LeeWriteback)

	cores := make([]*cpu.Core, len(srcs.srcs))
	for i, src := range srcs.srcs {
		l1, err := cache.New(cfg.L1Bytes, dcache.BlockBytes, cfg.L1Ways)
		if err != nil {
			return Result{}, err
		}
		cores[i] = cpu.NewCore(eng, i, cfg.CPU, src, l1, l2)
	}

	// Functional warm-up: interleave the cores in rounds so shared L2 and
	// DRAM-cache state see the multiprogrammed interleaving, then clear
	// all statistics.
	const warmRound = 1024
	for done := int64(0); done < cfg.WarmMemops; done += warmRound {
		n := warmRound
		if cfg.WarmMemops-done < int64(n) {
			n = int(cfg.WarmMemops - done)
		}
		for _, c := range cores {
			c.Warm(int64(n))
		}
	}
	dc.ResetStats()
	l2.ResetStats()
	mem.ResetStats()

	// Timed region: run until every core retires its budget.
	remaining := len(cores)
	for _, c := range cores {
		c.Run(cfg.InstrPerCore, func(*cpu.Core) { remaining-- })
	}
	for remaining > 0 {
		if !eng.Step() {
			return Result{}, fmt.Errorf("sim: deadlock with %d cores unfinished at %v", remaining, eng.Now())
		}
	}
	// Any error — including a replay decode error surfaced here — takes
	// the deferred abort path, which discards a partial recording.
	if err := srcs.finish(); err != nil {
		return Result{}, err
	}
	finished = true

	res := Result{
		Benchmarks:      append([]string(nil), srcs.names...),
		DCache:          dc.Stats(),
		DRAM:            dc.DRAMStats(),
		Ctrl:            dc.CtrlStats(),
		L2MissLatencyNS: l2.AvgMissLatency().NS(),
		L2Writebacks:    l2.Writebacks,
		LeeEager:        l2.LeeEager,
		MainMemReads:    mem.Reads,
		MainMemWrites:   mem.Writes,
	}
	if l2.Reads > 0 {
		res.L2MissRate = float64(l2.ReadMisses) / float64(l2.Reads)
	}
	res.DRAMTagAccesses = res.DRAM.TagAccesses
	if tc := dc.TagCache(); tc != nil {
		res.TagCacheLookups = tc.Lookups
		res.TagCacheHits = tc.Hits
	}
	for _, c := range cores {
		res.IPC = append(res.IPC, c.IPC())
		res.FinishNS = append(res.FinishNS, c.FinishTime().NS())
	}
	return res, nil
}

// AloneIPC runs a single benchmark alone on the given configuration and
// returns its IPC — the denominator of the weighted-speedup metric. The
// controller design used for alone runs is CD, the paper's normalization
// baseline.
func AloneIPC(cfg config.Config, bench string) (float64, error) {
	cfg.Benchmarks = []string{bench}
	cfg.Design = core.CD
	cfg.Ctrl = nil
	res, err := Run(cfg)
	if err != nil {
		return 0, err
	}
	return res.IPC[0], nil
}

// TotalNS returns the latest core finish time of a result.
func (r Result) TotalNS() float64 {
	max := 0.0
	for _, f := range r.FinishNS {
		if f > max {
			max = f
		}
	}
	return max
}

// ReadRowHitRate forwards the DRAM read row-buffer hit rate.
func (r Result) ReadRowHitRate() float64 { return r.DRAM.ReadRowHitRate() }

// AccessesPerTurnaround forwards the DRAM turnaround metric.
func (r Result) AccessesPerTurnaround() float64 { return r.DRAM.AccessesPerTurnaround() }

// AvgReadLatencyNS returns the mean DRAM-cache read latency in ns.
func (r Result) AvgReadLatencyNS() float64 {
	return simtime.Time(r.DCache.AvgReadLatency()).NS()
}
