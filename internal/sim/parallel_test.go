package sim

import (
	"reflect"
	"sync"
	"testing"

	"dcasim/internal/config"
	"dcasim/internal/core"
)

// TestConcurrentRunsAreIsolated is the shared-mutable-state audit behind
// the parallel experiment engine: Run must be a pure function with no
// state escaping between concurrent invocations. Eight goroutines run
// the same config at once — under -race (the CI race job runs this
// package) any shared RNG, event-pool, or statistics state would trip
// the detector, and any nondeterminism would break the DeepEqual.
func TestConcurrentRunsAreIsolated(t *testing.T) {
	cfg := config.Test()
	cfg.Benchmarks = []string{"mcf", "lbm", "libquantum", "omnetpp"}
	cfg.Design = core.DCA

	const n = 8
	results := make([]Result, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = Run(cfg)
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("run %d: %v", i, errs[i])
		}
		if !reflect.DeepEqual(results[i], results[0]) {
			t.Fatalf("concurrent run %d diverged from run 0:\n%+v\nvs\n%+v", i, results[i], results[0])
		}
	}
}

// TestConcurrentDistinctRunsAreIsolated interleaves different designs
// and seeds concurrently and checks each against its own sequential
// baseline: cross-run contamination would show up as a mismatch against
// the isolated reference result.
func TestConcurrentDistinctRunsAreIsolated(t *testing.T) {
	var cfgs []config.Config
	for _, d := range []core.Design{core.CD, core.ROD, core.DCA} {
		cfg := config.Test()
		cfg.Benchmarks = []string{"mcf", "lbm", "libquantum", "omnetpp"}
		cfg.Design = d
		cfg.Seed = 7 + uint64(d)
		cfgs = append(cfgs, cfg)
	}
	want := make([]Result, len(cfgs))
	for i, cfg := range cfgs {
		var err error
		if want[i], err = Run(cfg); err != nil {
			t.Fatal(err)
		}
	}
	got := make([]Result, len(cfgs))
	errs := make([]error, len(cfgs))
	var wg sync.WaitGroup
	for i, cfg := range cfgs {
		wg.Add(1)
		go func(i int, cfg config.Config) {
			defer wg.Done()
			got[i], errs[i] = Run(cfg)
		}(i, cfg)
	}
	wg.Wait()
	for i := range cfgs {
		if errs[i] != nil {
			t.Fatalf("run %d: %v", i, errs[i])
		}
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Fatalf("concurrent run %d diverged from its sequential baseline", i)
		}
	}
}
