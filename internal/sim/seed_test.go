package sim

// Pins the per-core seed derivation in openSources
// (cfg.Seed*1000003 + i*7919): with seeded replicates
// (config.ReplicateSeed) layered on top of per-mix seed offsets, a
// collision between the generator streams of two (seed, core) pairs
// would silently correlate runs that every statistic treats as
// independent — observable only as suspiciously tight confidence
// intervals, never as a failure.

import (
	"fmt"
	"testing"

	"dcasim/internal/config"
	"dcasim/internal/workload"
)

// streamPrefix runs the real openSources derivation for one seed and
// returns the first n ops of each core's generator, keyed for pairwise
// comparison. Every core runs the same benchmark so any two streams are
// drawn from the same profile and differ only through their seeds.
func streamPrefix(t *testing.T, seed uint64, cores, n int) [][]workload.Op {
	t.Helper()
	cfg := config.Test()
	cfg.Seed = seed
	cfg.Benchmarks = make([]string, cores)
	for i := range cfg.Benchmarks {
		cfg.Benchmarks[i] = "mcf"
	}
	rs, err := openSources(&cfg)
	if err != nil {
		t.Fatal(err)
	}
	out := make([][]workload.Op, cores)
	for i, src := range rs.srcs {
		out[i] = make([]workload.Op, n)
		for j := range out[i] {
			out[i][j] = src.Next()
		}
	}
	return out
}

// TestPerCoreSeedStreamsDistinct asserts pairwise-distinct generator
// streams across adjacent base seeds, replicate-derived seeds, and core
// indices. Adjacent seeds are the dangerous ones: the derivation
// multiplies the seed by 1000003 and offsets cores by 7919, so a bug
// collapsing either factor would first show up between neighbours.
func TestPerCoreSeedStreamsDistinct(t *testing.T) {
	const cores, ops = 4, 64
	seeds := []uint64{1, 2, 3,
		config.ReplicateSeed(1, 1), config.ReplicateSeed(1, 2),
		config.ReplicateSeed(2, 1),
	}
	type stream struct {
		label string
		ops   []workload.Op
	}
	var streams []stream
	for _, s := range seeds {
		prefix := streamPrefix(t, s, cores, ops)
		for i, p := range prefix {
			streams = append(streams, stream{fmt.Sprintf("seed %d core %d", s, i), p})
		}
	}
	equal := func(a, b []workload.Op) bool {
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	for i := 0; i < len(streams); i++ {
		for j := i + 1; j < len(streams); j++ {
			if equal(streams[i].ops, streams[j].ops) {
				t.Errorf("generator streams coincide: %s vs %s (first %d ops identical)",
					streams[i].label, streams[j].label, ops)
			}
		}
	}
}

// TestPerCoreSeedDerivationReproducible: the same (seed, core) pair must
// regenerate the identical stream — the determinism half of the
// contract, without which replicate CIs would measure the RNG, not the
// machine.
func TestPerCoreSeedDerivationReproducible(t *testing.T) {
	const cores, ops = 2, 64
	a := streamPrefix(t, 7, cores, ops)
	b := streamPrefix(t, 7, cores, ops)
	for i := 0; i < cores; i++ {
		for j := 0; j < ops; j++ {
			if a[i][j] != b[i][j] {
				t.Fatalf("core %d op %d differs across identical configs", i, j)
			}
		}
	}
}
