package sim

import (
	"sort"
	"testing"

	"dcasim/internal/core"
	"dcasim/internal/event"
	"dcasim/internal/simtime"
)

// TestEventDeltaCharacterization instruments one full simulation run
// (the BenchmarkSimOneRun mix) and histograms the schedule deltas
// (t - now) the models produce. It pins the empirical facts the timing
// wheel's level sizing rests on:
//
//   - schedule deltas cluster on a handful of fixed values — DRAM
//     timing constants, CPU-cycle multiples, the off-chip latency —
//     so a calendar bucket rarely holds more than a few events;
//   - ≥ 90% of deltas fit the innermost wheel level (≤ 65.5 ns), so
//     the O(1) no-cascade path dominates;
//   - nothing ever reaches the far-future spill (> ~1.1 s).
//
// If a future timing-model change invalidates these (say, a refresh
// model scheduling multi-ms deltas en masse), this test is the canary
// saying the wheel's level/bucket sizing needs revisiting.
func TestEventDeltaCharacterization(t *testing.T) {
	hist := map[simtime.Time]int64{}
	testEngineHook = func(e *event.Engine) {
		e.SetScheduleHook(func(now, at simtime.Time) { hist[at-now]++ })
	}
	defer func() { testEngineHook = nil }()

	cfg := testConfig()
	cfg.Benchmarks = []string{"soplex", "mcf", "gcc", "libquantum"}
	cfg.Design = core.DCA
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}

	var total int64
	for _, n := range hist {
		total += n
	}
	if total == 0 {
		t.Fatal("schedule hook observed no events")
	}

	// Sort deltas by frequency for reporting and the cluster pin.
	deltas := make([]simtime.Time, 0, len(hist))
	for d := range hist {
		deltas = append(deltas, d)
	}
	sort.Slice(deltas, func(i, j int) bool {
		if hist[deltas[i]] != hist[deltas[j]] {
			return hist[deltas[i]] > hist[deltas[j]]
		}
		return deltas[i] < deltas[j]
	})

	// Pin 1: >= 90% of schedules are either near-immediate core/pipeline
	// events (delta under 8 level-0 buckets, i.e. < 2.048 ns — retire
	// spacing, back-to-back issue) or sit on one of the top 8 fixed
	// DRAM-path constants (observed: the row access + burst sum at
	// 11.33 ns dominates with ~54%, the turnaround path at 27.33 ns adds
	// ~15%, off-chip at 50 ns ~4%). This bimodal clustering — tiny
	// deltas plus a handful of repeated constants — is exactly the shape
	// a calendar wheel serves in O(1).
	const nearImmediate = 8 * 256 * simtime.Picosecond
	var clustered int64
	k := 0
	for _, d := range deltas {
		if d < nearImmediate {
			clustered += hist[d]
		} else if k < 8 {
			clustered += hist[d]
			k++
		}
	}
	if frac := float64(clustered) / float64(total); frac < 0.90 {
		t.Errorf("near-immediate deltas plus the top 8 fixed constants cover only %.1f%% of %d schedules, want >= 90%% — event deltas no longer cluster on fixed timing constants",
			100*frac, total)
	}

	// Pin 2: >= 90% of deltas fit the innermost wheel level (256
	// buckets x 256 ps = 65.536 ns), the O(1) no-cascade fast path.
	const level0Range = 65536 * simtime.Picosecond
	var inner int64
	for d, n := range hist {
		if d < level0Range {
			inner += n
		}
	}
	if frac := float64(inner) / float64(total); frac < 0.90 {
		t.Errorf("only %.1f%% of schedule deltas fit the innermost wheel level (< %v), want >= 90%%", 100*frac, level0Range)
	}

	// Pin 3: the far-future spill (beyond the outermost level, ~1.1 s)
	// is never touched by a real workload.
	const wheelRange = simtime.Time(1) << 40
	for d, n := range hist {
		if d >= wheelRange {
			t.Errorf("%d schedules at delta %v exceed the wheel range %v: the spill is supposed to be unreachable in real workloads", n, d, wheelRange)
		}
	}

	if testing.Verbose() {
		t.Logf("%d schedules, %d distinct deltas; top:", total, len(deltas))
		n := 16
		if len(deltas) < n {
			n = len(deltas)
		}
		for _, d := range deltas[:n] {
			t.Logf("  %8d ps  %7d  (%5.1f%%)", int64(d), hist[d], 100*float64(hist[d])/float64(total))
		}
	}
}
