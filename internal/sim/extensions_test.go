package sim

import (
	"testing"

	"dcasim/internal/config"
	"dcasim/internal/core"
	"dcasim/internal/dcache"
	"dcasim/internal/simtime"
)

// TestBEARElidesProbes: the ideal writeback-probe filter must remove a
// substantial fraction of writeback tag reads on a hit-heavy mix.
func TestBEARElidesProbes(t *testing.T) {
	cfg := config.Test()
	cfg.Benchmarks = []string{"gcc", "soplex", "gcc", "soplex"}
	cfg.Org = dcache.DirectMapped
	cfg.BEARProbe = true
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.DCache.BEARElided == 0 {
		t.Fatal("BEAR filter elided no probes")
	}
	if res.DCache.BEARElided > res.DCache.WritebackReqs {
		t.Fatalf("elided %d probes from %d writebacks", res.DCache.BEARElided, res.DCache.WritebackReqs)
	}
}

// TestBEARReducesTagTraffic: with the probe filter, DRAM reads shrink
// for the same work.
func TestBEARReducesTagTraffic(t *testing.T) {
	cfg := config.Test()
	cfg.Benchmarks = []string{"gcc", "soplex", "gcc", "soplex"}
	cfg.Org = dcache.DirectMapped
	plain, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.BEARProbe = true
	bear, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if bear.DRAM.Reads >= plain.DRAM.Reads {
		t.Fatalf("BEAR did not reduce DRAM reads: %d vs %d", bear.DRAM.Reads, plain.DRAM.Reads)
	}
}

// TestSchedulerAlgorithms: every base algorithm completes and FCFS
// (which ignores row locality) must not beat BLISS on row-buffer hits.
func TestSchedulerAlgorithms(t *testing.T) {
	rowHit := map[core.Algorithm]float64{}
	for _, alg := range []core.Algorithm{core.AlgBLISS, core.AlgFRFCFS, core.AlgFCFS} {
		cfg := config.Test()
		cfg.Benchmarks = []string{"lbm", "mcf", "leslie3d", "omnetpp"}
		cfg.Algorithm = alg
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		rowHit[alg] = res.ReadRowHitRate()
	}
	if rowHit[core.AlgFCFS] > rowHit[core.AlgBLISS]+0.02 {
		t.Fatalf("FCFS row-hit rate %.3f above BLISS %.3f — row-hit-first priority not working",
			rowHit[core.AlgFCFS], rowHit[core.AlgBLISS])
	}
}

// TestTWTRHurtsROD: doubling the write-to-read turnaround must hurt a
// design that pays a turnaround every few accesses (ROD) more than one
// that batches directions (DCA) — the paper's §V argument.
func TestTWTRHurtsROD(t *testing.T) {
	total := func(d core.Design, twtrNS float64) float64 {
		cfg := config.Test()
		cfg.Benchmarks = []string{"lbm", "mcf", "leslie3d", "omnetpp"}
		cfg.Org = dcache.DirectMapped
		cfg.Design = d
		cfg.Timing.TWTR = simtime.FromNS(twtrNS)
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.TotalNS()
	}
	rodSlowdown := total(core.ROD, 10) / total(core.ROD, 2.5)
	dcaSlowdown := total(core.DCA, 10) / total(core.DCA, 2.5)
	if rodSlowdown < dcaSlowdown {
		t.Fatalf("tWTR 2.5->10ns slowed ROD by %.3fx but DCA by %.3fx; ROD should suffer more",
			rodSlowdown, dcaSlowdown)
	}
}
