package sim

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"dcasim/internal/config"
	"dcasim/internal/core"
	"dcasim/internal/dcache"
	"dcasim/internal/workload"
)

// replayScale returns a reduced test-scale config: the differential
// sweep below multiplies it by 11 benchmarks × 6 machine combinations.
func replayScale() config.Config {
	cfg := config.Test()
	cfg.InstrPerCore = 20_000
	cfg.WarmMemops = 10_000
	return cfg
}

var replayDesigns = []core.Design{core.CD, core.ROD, core.DCA}
var replayOrgs = []dcache.Org{dcache.SetAssoc, dcache.DirectMapped}

// TestReplayBitIdentical is the trace subsystem's headline guarantee:
// recording a live synthetic run and replaying the file must reproduce
// the live run's Result bit for bit — IPC vectors, every statistic — for
// every built-in benchmark under all three controller designs and both
// cache organizations. The same recording serves every machine shape
// because the operation stream a core consumes is machine-independent.
func TestReplayBitIdentical(t *testing.T) {
	dir := t.TempDir()
	for _, bench := range workload.Names() {
		bench := bench
		t.Run(bench, func(t *testing.T) {
			t.Parallel()
			path := filepath.Join(dir, bench+".dct")
			rec := replayScale()
			rec.Benchmarks = []string{bench}
			rec.RecordPath = path
			recorded, err := Run(rec)
			if err != nil {
				t.Fatalf("record: %v", err)
			}
			for _, d := range replayDesigns {
				for _, org := range replayOrgs {
					live := replayScale()
					live.Benchmarks = []string{bench}
					live.Design = d
					live.Org = org
					want, err := Run(live)
					if err != nil {
						t.Fatalf("%v/%v live: %v", d, org, err)
					}
					// The recording run itself must match the plain live
					// run of the same machine: the tee only observes.
					if d == rec.Design && org == rec.Org {
						if !reflect.DeepEqual(recorded, want) {
							t.Errorf("recording perturbed the run\nplain:  %+v\nrecord: %+v", want, recorded)
						}
					}
					rep := replayScale()
					rep.Benchmarks = nil
					rep.TracePath = path
					rep.Design = d
					rep.Org = org
					got, err := Run(rep)
					if err != nil {
						t.Fatalf("%v/%v replay: %v", d, org, err)
					}
					if !reflect.DeepEqual(got, want) {
						t.Errorf("%v/%v: replay diverged from live run\nlive:   %+v\nreplay: %+v", d, org, want, got)
					}
				}
			}
		})
	}
}

// TestReplayBitIdenticalMix covers the multiprogrammed case: four cores
// consuming interleaved per-core streams from one trace file, via the
// "trace:" benchmark shorthand.
func TestReplayBitIdenticalMix(t *testing.T) {
	mix := []string{"mcf", "lbm", "libquantum", "omnetpp"}
	path := filepath.Join(t.TempDir(), "mix.dct")
	rec := replayScale()
	rec.Benchmarks = mix
	rec.RecordPath = path
	rec.Design = core.DCA
	want, err := Run(rec)
	if err != nil {
		t.Fatal(err)
	}
	rep := replayScale()
	rep.Benchmarks = []string{config.TracePrefix + path}
	rep.Design = core.DCA
	got, err := Run(rep)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("mix replay diverged from live run\nlive:   %+v\nreplay: %+v", want, got)
	}
	if !reflect.DeepEqual(got.Benchmarks, mix) {
		t.Fatalf("replay Benchmarks = %v, want %v (header names, not the trace: entry)", got.Benchmarks, mix)
	}
}

// TestReplayTruncatedTraceErrors: a trace shorter than the run it claims
// must fail cleanly, not hang or panic.
func TestReplayTruncatedTraceErrors(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trunc.dct")
	rec := replayScale()
	rec.Benchmarks = []string{"gcc"}
	rec.RecordPath = path
	if _, err := Run(rec); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	rep := replayScale()
	rep.Benchmarks = nil
	rep.TracePath = path
	// Re-record while replaying (transcode): the failed run must also
	// discard its partial output file.
	out := filepath.Join(filepath.Dir(path), "transcode.dct")
	rep.RecordPath = out
	if _, err := Run(rep); err == nil {
		t.Fatal("replaying a truncated trace succeeded")
	}
	if _, err := os.Stat(out); !os.IsNotExist(err) {
		t.Fatalf("failed run left partial recording %s behind (stat err: %v)", out, err)
	}
}

// TestReplayRejectsMixedBenchmarks: trace entries cannot be combined
// with synthetic benchmarks or a second TracePath.
func TestReplayRejectsMixedBenchmarks(t *testing.T) {
	cfg := replayScale()
	cfg.Benchmarks = []string{"mcf", config.TracePrefix + "foo.dct"}
	if _, err := Run(cfg); err == nil {
		t.Error("mixed trace/synthetic benchmark list accepted")
	}
	cfg = replayScale()
	cfg.Benchmarks = []string{"mcf"}
	cfg.TracePath = "foo.dct"
	if _, err := Run(cfg); err == nil {
		t.Error("TracePath alongside Benchmarks accepted")
	}
}
