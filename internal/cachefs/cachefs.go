// Package cachefs is the filesystem seam under the persistent result
// cache (internal/rescache). Every durable-state operation the cache
// performs — entry reads, temp-file writes, the atomic rename, claim
// create/stat/touch/remove — goes through the FS interface, so tests
// can substitute a fault-injecting implementation (Fault) and prove the
// cache's failure-model invariants: a corrupted, truncated, or torn
// entry is never trusted, an injected EIO/ENOSPC degrades to a
// recompute or a typed error, and a simulated crash never wedges a
// later pass.
//
// The package deliberately lives outside internal/rescache: the
// repo's claimerr analyzer forbids discarding errors returned by
// rescache functions, and the cache's own best-effort cleanup calls
// (removing a scratch file whose leak costs at most a later sweep)
// must stay expressible without weakening that rule for callers.
package cachefs

import (
	"io"
	"io/fs"
	"os"
	"time"
)

// File is the write handle the cache uses for temp entries and claim
// files: sequential writes, a durability barrier, and Close.
type File interface {
	io.Writer
	// Name returns the file's path, as os.File.Name does.
	Name() string
	// Sync flushes the file's contents to stable storage.
	Sync() error
	Close() error
}

// FS is the set of filesystem operations the result cache performs.
// Implementations must be safe for concurrent use.
type FS interface {
	MkdirAll(dir string, perm fs.FileMode) error
	ReadDir(dir string) ([]fs.DirEntry, error)
	ReadFile(path string) ([]byte, error)
	// CreateTemp creates a new unique file in dir (os.CreateTemp
	// pattern semantics).
	CreateTemp(dir, pattern string) (File, error)
	// CreateExclusive creates path with O_CREATE|O_EXCL|O_WRONLY: it
	// fails with a fs.ErrExist-wrapping error when the file already
	// exists. This is the cache's cross-process mutual-exclusion
	// primitive (claim and breaker-lock files).
	CreateExclusive(path string) (File, error)
	Rename(oldpath, newpath string) error
	Remove(path string) error
	Stat(path string) (fs.FileInfo, error)
	// Chtimes updates path's access and modification times — the claim
	// heartbeat that keeps a live claimant from looking stale.
	Chtimes(path string, atime, mtime time.Time) error
	// SyncDir flushes dir's directory entries to stable storage, making
	// a preceding rename durable across a machine crash.
	SyncDir(dir string) error
}

// OS returns the real-filesystem implementation.
func OS() FS { return osFS{} }

type osFS struct{}

func (osFS) MkdirAll(dir string, perm fs.FileMode) error { return os.MkdirAll(dir, perm) }
func (osFS) ReadDir(dir string) ([]fs.DirEntry, error)   { return os.ReadDir(dir) }
func (osFS) ReadFile(path string) ([]byte, error)        { return os.ReadFile(path) }
func (osFS) Rename(oldpath, newpath string) error        { return os.Rename(oldpath, newpath) }
func (osFS) Remove(path string) error                    { return os.Remove(path) }
func (osFS) Stat(path string) (fs.FileInfo, error)       { return os.Stat(path) }

func (osFS) Chtimes(path string, atime, mtime time.Time) error {
	return os.Chtimes(path, atime, mtime)
}

func (osFS) CreateTemp(dir, pattern string) (File, error) {
	f, err := os.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) CreateExclusive(path string) (File, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	serr := d.Sync()
	cerr := d.Close()
	if serr != nil {
		return serr
	}
	return cerr
}
