package cachefs

import (
	"errors"
	"os"
	"path/filepath"
	"syscall"
	"testing"
)

// TestFaultFailAtNthOp: the injector must hit exactly the Nth operation
// of the targeted kind and pass every other operation through.
func TestFaultFailAtNthOp(t *testing.T) {
	dir := t.TempDir()
	f := NewFault(OS())
	f.FailAt(OpReadFile, 2, syscall.EIO)

	path := filepath.Join(dir, "x")
	if err := os.WriteFile(path, []byte("payload"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := f.ReadFile(path); err != nil {
		t.Fatalf("1st ReadFile failed: %v (fault armed for the 2nd)", err)
	}
	if _, err := f.ReadFile(path); !errors.Is(err, syscall.EIO) {
		t.Fatalf("2nd ReadFile = %v, want EIO", err)
	}
	if _, err := f.ReadFile(path); err != nil {
		t.Fatalf("3rd ReadFile failed: %v (fault must fire once)", err)
	}
}

// TestFaultPartialWrite: a torn write delivers the prefix, then errors.
func TestFaultPartialWrite(t *testing.T) {
	dir := t.TempDir()
	f := NewFault(OS())
	f.PartialWriteAt(1, 3, syscall.ENOSPC)

	file, err := f.CreateTemp(dir, "t*")
	if err != nil {
		t.Fatal(err)
	}
	n, werr := file.Write([]byte("abcdef"))
	if !errors.Is(werr, syscall.ENOSPC) || n != 3 {
		t.Fatalf("torn write = (%d, %v), want (3, ENOSPC)", n, werr)
	}
	if err := file.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(file.Name())
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "abc" {
		t.Fatalf("file holds %q after torn write, want %q", data, "abc")
	}
}

// TestFaultCrashLatches: after a crash fires, every later operation of
// any kind fails with ErrCrashed until Revive.
func TestFaultCrashLatches(t *testing.T) {
	dir := t.TempDir()
	f := NewFault(OS())
	f.CrashAt(OpRename, 1)

	if err := f.Rename(filepath.Join(dir, "a"), filepath.Join(dir, "b")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("rename = %v, want ErrCrashed", err)
	}
	if _, err := f.ReadFile(filepath.Join(dir, "a")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash ReadFile = %v, want ErrCrashed", err)
	}
	if _, err := f.Stat(dir); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash Stat = %v, want ErrCrashed", err)
	}
	f.Revive()
	if _, err := f.Stat(dir); err != nil {
		t.Fatalf("post-revive Stat failed: %v", err)
	}
}

// TestFaultOpLog: the injector records operation order — the hook the
// sync-before-rename protocol assertion hangs off.
func TestFaultOpLog(t *testing.T) {
	dir := t.TempDir()
	f := NewFault(OS())
	file, err := f.CreateTemp(dir, "t*")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := file.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := file.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := file.Close(); err != nil {
		t.Fatal(err)
	}
	want := []Op{OpCreateTmp, OpWrite, OpFileSync, OpFileClose}
	got := f.OpLog()
	if len(got) != len(want) {
		t.Fatalf("op log %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("op log %v, want %v", got, want)
		}
	}
}
