package cachefs

import (
	"errors"
	"io/fs"
	"sync"
	"time"
)

// ErrCrashed is the error every operation returns after a Fault has
// simulated a process/machine crash: from the caller's point of view
// the filesystem simply stopped answering, and whatever had not been
// renamed or synced is lost.
var ErrCrashed = errors.New("cachefs: simulated crash")

// Op names one kind of filesystem operation for fault targeting. File
// handle operations (write/sync/close) count globally, not per handle.
type Op string

// The operation kinds a Fault can target.
const (
	OpMkdirAll  Op = "mkdirall"
	OpReadDir   Op = "readdir"
	OpReadFile  Op = "readfile"
	OpCreateTmp Op = "createtemp"
	OpCreateExl Op = "createexclusive"
	OpRename    Op = "rename"
	OpRemove    Op = "remove"
	OpStat      Op = "stat"
	OpChtimes   Op = "chtimes"
	OpSyncDir   Op = "syncdir"
	OpWrite     Op = "write"
	OpFileSync  Op = "filesync"
	OpFileClose Op = "fileclose"
)

// injection is one armed fault: the Nth operation of kind op (counted
// from arming, 1-based) fails with err. partial applies to OpWrite
// only: that many bytes reach the inner file before the error. crash
// additionally latches the whole filesystem dead.
type injection struct {
	op      Op
	at      int
	err     error
	partial int
	crash   bool
}

// Fault wraps an FS and injects failures: EIO/ENOSPC on the Nth
// operation of a kind, short writes, and whole-filesystem crashes. It
// also records the order of every operation, so tests can assert
// protocol properties (e.g. "the temp file is synced before the
// rename").
type Fault struct {
	inner FS

	mu      sync.Mutex
	crashed bool
	count   map[Op]int
	armed   []injection
	log     []Op
}

// NewFault wraps inner with a fault injector. With no faults armed it
// is a transparent proxy.
func NewFault(inner FS) *Fault {
	return &Fault{inner: inner, count: make(map[Op]int)}
}

// FailAt arms a fault: the nth operation of kind op from now (1-based)
// fails with err without reaching the inner filesystem.
func (f *Fault) FailAt(op Op, n int, err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.armed = append(f.armed, injection{op: op, at: f.count[op] + n, err: err})
}

// PartialWriteAt arms a torn write: the nth Write from now delivers
// only keep bytes to the inner file, then fails with err.
func (f *Fault) PartialWriteAt(n, keep int, err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.armed = append(f.armed, injection{op: OpWrite, at: f.count[OpWrite] + n, err: err, partial: keep})
}

// CrashAt arms a crash: the nth operation of kind op from now fails
// with ErrCrashed, and every operation after it — any kind, any handle
// — fails the same way, as if the process had been killed at that
// instant. Revive clears the condition (the "restarted process" half
// of a crash-recovery test).
func (f *Fault) CrashAt(op Op, n int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.armed = append(f.armed, injection{op: op, at: f.count[op] + n, err: ErrCrashed, crash: true})
}

// Revive clears a crash and every still-armed fault.
func (f *Fault) Revive() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.crashed = false
	f.armed = nil
}

// OpLog returns a copy of the operations attempted so far, in order.
func (f *Fault) OpLog() []Op {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]Op(nil), f.log...)
}

// check records one attempted operation and returns the fault to
// inject, if any. The bool reports a partial write (inject after
// partial bytes).
func (f *Fault) check(op Op) (injection, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.log = append(f.log, op)
	if f.crashed {
		return injection{op: op, err: ErrCrashed}, true
	}
	f.count[op]++
	for i, inj := range f.armed {
		if inj.op == op && inj.at == f.count[op] {
			f.armed = append(f.armed[:i], f.armed[i+1:]...)
			if inj.crash {
				f.crashed = true
			}
			return inj, true
		}
	}
	return injection{}, false
}

func (f *Fault) MkdirAll(dir string, perm fs.FileMode) error {
	if inj, ok := f.check(OpMkdirAll); ok {
		return inj.err
	}
	return f.inner.MkdirAll(dir, perm)
}

func (f *Fault) ReadDir(dir string) ([]fs.DirEntry, error) {
	if inj, ok := f.check(OpReadDir); ok {
		return nil, inj.err
	}
	return f.inner.ReadDir(dir)
}

func (f *Fault) ReadFile(path string) ([]byte, error) {
	if inj, ok := f.check(OpReadFile); ok {
		return nil, inj.err
	}
	return f.inner.ReadFile(path)
}

func (f *Fault) CreateTemp(dir, pattern string) (File, error) {
	if inj, ok := f.check(OpCreateTmp); ok {
		return nil, inj.err
	}
	file, err := f.inner.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &faultFile{fault: f, inner: file}, nil
}

func (f *Fault) CreateExclusive(path string) (File, error) {
	if inj, ok := f.check(OpCreateExl); ok {
		return nil, inj.err
	}
	file, err := f.inner.CreateExclusive(path)
	if err != nil {
		return nil, err
	}
	return &faultFile{fault: f, inner: file}, nil
}

func (f *Fault) Rename(oldpath, newpath string) error {
	if inj, ok := f.check(OpRename); ok {
		return inj.err
	}
	return f.inner.Rename(oldpath, newpath)
}

func (f *Fault) Remove(path string) error {
	if inj, ok := f.check(OpRemove); ok {
		return inj.err
	}
	return f.inner.Remove(path)
}

func (f *Fault) Stat(path string) (fs.FileInfo, error) {
	if inj, ok := f.check(OpStat); ok {
		return nil, inj.err
	}
	return f.inner.Stat(path)
}

func (f *Fault) Chtimes(path string, atime, mtime time.Time) error {
	if inj, ok := f.check(OpChtimes); ok {
		return inj.err
	}
	return f.inner.Chtimes(path, atime, mtime)
}

func (f *Fault) SyncDir(dir string) error {
	if inj, ok := f.check(OpSyncDir); ok {
		return inj.err
	}
	return f.inner.SyncDir(dir)
}

// faultFile routes a File's operations back through the Fault's
// injection tables.
type faultFile struct {
	fault *Fault
	inner File
}

func (f *faultFile) Name() string { return f.inner.Name() }

func (f *faultFile) Write(p []byte) (int, error) {
	inj, ok := f.fault.check(OpWrite)
	if !ok {
		return f.inner.Write(p)
	}
	n := 0
	if inj.partial > 0 && inj.partial < len(p) {
		// A torn write: part of the payload lands before the fault.
		n, _ = f.inner.Write(p[:inj.partial])
	}
	return n, inj.err
}

func (f *faultFile) Sync() error {
	if inj, ok := f.fault.check(OpFileSync); ok {
		return inj.err
	}
	return f.inner.Sync()
}

func (f *faultFile) Close() error {
	if inj, ok := f.fault.check(OpFileClose); ok {
		return inj.err
	}
	return f.inner.Close()
}
