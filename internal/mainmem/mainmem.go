// Package mainmem models the off-chip DRAM main memory below the DRAM
// cache: a fixed 50 ns access latency (Table II) behind a 2 GHz × 64-bit
// off-chip bus that serialises block transfers at 4 ns per 64 B block.
//
// The paper's contribution is entirely inside the DRAM-cache controller;
// main memory only needs to charge a realistic, bandwidth-limited miss
// penalty, so a latency-plus-server queue is sufficient.
package mainmem

import (
	"dcasim/internal/event"
	"dcasim/internal/simtime"
)

// Config parameterises the main memory model.
type Config struct {
	Latency   simtime.Time // fixed access latency
	BlockTime simtime.Time // bus serialisation per block
}

// DefaultConfig matches Table II: 50 ns latency, 64 B over a
// 2 GHz × 64-bit bus = 4 ns per block.
func DefaultConfig() Config {
	return Config{
		Latency:   50 * simtime.Nanosecond,
		BlockTime: 4 * simtime.Nanosecond,
	}
}

// Memory is the off-chip memory. Reads invoke a completion callback;
// writes are fire-and-forget but still consume bus bandwidth.
type Memory struct {
	eng *event.Engine
	cfg Config

	busFree simtime.Time

	Reads  int64
	Writes int64
	// BusyTime accumulates bus occupancy for bandwidth accounting.
	BusyTime simtime.Time
}

// New builds a main memory attached to the engine.
func New(eng *event.Engine, cfg Config) *Memory {
	return &Memory{eng: eng, cfg: cfg}
}

func (m *Memory) serve() simtime.Time {
	start := simtime.Max(m.eng.Now(), m.busFree)
	m.busFree = start + m.cfg.BlockTime
	m.BusyTime += m.cfg.BlockTime
	return start + m.cfg.Latency
}

// Read fetches a block; done fires at the completion time.
func (m *Memory) Read(done event.Callback) {
	m.Reads++
	m.eng.CallAt(m.serve(), done)
}

// Write retires a block write. It occupies the bus but completes
// asynchronously with no callback: writes below the DRAM cache are never
// on the critical path in this study.
func (m *Memory) Write() {
	m.Writes++
	m.serve()
}

// ResetStats clears counters after warm-up.
func (m *Memory) ResetStats() {
	m.Reads, m.Writes, m.BusyTime = 0, 0, 0
}
