package mainmem

import (
	"testing"

	"dcasim/internal/event"
	"dcasim/internal/simtime"
)

func TestReadLatency(t *testing.T) {
	eng := &event.Engine{}
	m := New(eng, DefaultConfig())
	var done simtime.Time
	m.Read(event.Func(func(now simtime.Time) { done = now }))
	eng.Run()
	if done != 50*simtime.Nanosecond {
		t.Fatalf("read completed at %v, want 50ns", done)
	}
}

func TestBusSerialization(t *testing.T) {
	eng := &event.Engine{}
	cfg := DefaultConfig()
	m := New(eng, cfg)
	var done []simtime.Time
	for i := 0; i < 3; i++ {
		m.Read(event.Func(func(now simtime.Time) { done = append(done, now) }))
	}
	eng.Run()
	if len(done) != 3 {
		t.Fatalf("%d reads completed, want 3", len(done))
	}
	for i, want := range []simtime.Time{
		cfg.Latency,
		cfg.BlockTime + cfg.Latency,
		2*cfg.BlockTime + cfg.Latency,
	} {
		if done[i] != want {
			t.Fatalf("read %d completed at %v, want %v", i, done[i], want)
		}
	}
}

func TestWritesConsumeBandwidth(t *testing.T) {
	eng := &event.Engine{}
	cfg := DefaultConfig()
	m := New(eng, cfg)
	m.Write()
	var done simtime.Time
	m.Read(event.Func(func(now simtime.Time) { done = now }))
	eng.Run()
	if done != cfg.BlockTime+cfg.Latency {
		t.Fatalf("read after write completed at %v, want %v", done, cfg.BlockTime+cfg.Latency)
	}
	if m.Reads != 1 || m.Writes != 1 {
		t.Fatalf("counters reads=%d writes=%d", m.Reads, m.Writes)
	}
}

func TestResetStats(t *testing.T) {
	eng := &event.Engine{}
	m := New(eng, DefaultConfig())
	m.Write()
	m.ResetStats()
	if m.Reads != 0 || m.Writes != 0 || m.BusyTime != 0 {
		t.Fatal("ResetStats left counters")
	}
}
