package dcasim

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"dcasim/internal/stats"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files from current output")

// goldenTable runs one small multiprogrammed mix across every controller
// design and both cache organizations and renders the results as a
// stats.Table. The table digests every statistic family a figure driver
// consumes (IPC, finish time, hit rates, DRAM row outcomes, controller
// issue counts), so any behavioural drift in the simulation — in
// particular a change to the event kernel's (time, sequence) ordering —
// shows up as a diff.
func goldenTable() (*stats.Table, error) {
	tbl := stats.NewTable(
		"design", "org", "totalNS", "ipc0", "ipc3",
		"rdHits", "rdMiss", "dramAcc", "rowHitR",
		"prIss", "lrIss", "wrIss", "memRd", "memWr",
	)
	for _, design := range []Design{CD, ROD, DCA} {
		for _, org := range []Org{SetAssoc, DirectMapped} {
			cfg := TestConfig()
			cfg.Benchmarks = []string{"soplex", "mcf", "gcc", "libquantum"}
			cfg.Design = design
			cfg.Org = org
			res, err := Run(cfg)
			if err != nil {
				return nil, err
			}
			tbl.AddRowf(
				fmt.Sprint(design), fmt.Sprint(org), res.TotalNS(),
				res.IPC[0], res.IPC[3],
				fmt.Sprint(res.DCache.ReadHits), fmt.Sprint(res.DCache.ReadMisses),
				fmt.Sprint(res.DRAM.Accesses), res.ReadRowHitRate(),
				fmt.Sprint(res.Ctrl.PRIssued), fmt.Sprint(res.Ctrl.LRIssued),
				fmt.Sprint(res.Ctrl.WritesIssued),
				fmt.Sprint(res.MainMemReads), fmt.Sprint(res.MainMemWrites),
			)
		}
	}
	return tbl, nil
}

// TestGoldenTable pins the simulator's observable output bit-for-bit.
// The golden file was generated with the original closure-per-event
// binary-heap kernel; the pooled 4-ary-heap kernel must reproduce it
// exactly. Regenerate (only when an intentional model change lands) with:
//
//	go test -run TestGoldenTable -update .
func TestGoldenTable(t *testing.T) {
	tbl, err := goldenTable()
	if err != nil {
		t.Fatal(err)
	}
	got := tbl.String()
	path := filepath.Join("testdata", "golden_table.txt")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden file (regenerate with -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("simulation output diverged from golden file:\n--- want\n%s\n--- got\n%s", want, got)
	}
}
