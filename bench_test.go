package dcasim

import (
	"fmt"
	"os"
	"strconv"
	"testing"

	"dcasim/internal/addrmap"
	"dcasim/internal/core"
	"dcasim/internal/dram"
	"dcasim/internal/event"
	"dcasim/internal/exp"
	"dcasim/internal/simtime"
	"dcasim/internal/stats"
	"dcasim/internal/workload"
)

// benchMixes controls how many Table I mixes the figure benchmarks
// evaluate (default 4; set DCASIM_BENCH_MIXES=30 for the full sweep).
func benchMixes() []Mix {
	n := 4
	if s := os.Getenv("DCASIM_BENCH_MIXES"); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v >= 1 && v <= 30 {
			n = v
		}
	}
	return TableIMixes()[:n]
}

// benchRunner builds a fresh memoizing runner at the test scale; each
// figure benchmark measures the cost of regenerating that figure's rows
// from scratch.
func benchRunner() *Runner {
	return NewRunner(TestConfig(), benchMixes(), 0)
}

func reportTable(b *testing.B, tbl *stats.Table, err error) {
	b.Helper()
	if err != nil {
		b.Fatal(err)
	}
	if b.N == 1 && os.Getenv("DCASIM_BENCH_PRINT") != "" {
		fmt.Println(tbl)
	}
}

// --- One benchmark per table and figure of the paper ---

func BenchmarkTableI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl := exp.TableI(benchMixes())
		reportTable(b, tbl, nil)
	}
}

func BenchmarkTableII(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl := benchRunner().TableII()
		reportTable(b, tbl, nil)
	}
}

func BenchmarkFig8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl, err := benchRunner().Fig8()
		reportTable(b, tbl, err)
	}
}

func BenchmarkFig9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl, err := benchRunner().Fig9()
		reportTable(b, tbl, err)
	}
}

func BenchmarkFig10(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl, err := benchRunner().Fig10()
		reportTable(b, tbl, err)
	}
}

func BenchmarkFig11(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl, err := benchRunner().Fig11()
		reportTable(b, tbl, err)
	}
}

func BenchmarkFig12(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl, err := benchRunner().Fig12()
		reportTable(b, tbl, err)
	}
}

func BenchmarkFig13(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl, err := benchRunner().Fig13()
		reportTable(b, tbl, err)
	}
}

func BenchmarkFig14(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl, err := benchRunner().Fig14()
		reportTable(b, tbl, err)
	}
}

func BenchmarkFig15(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl, err := benchRunner().Fig15()
		reportTable(b, tbl, err)
	}
}

func BenchmarkFig16(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl, err := benchRunner().Fig16()
		reportTable(b, tbl, err)
	}
}

func BenchmarkFig17(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl, err := benchRunner().Fig17()
		reportTable(b, tbl, err)
	}
}

func BenchmarkFig18(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl, err := benchRunner().Fig18()
		reportTable(b, tbl, err)
	}
}

func BenchmarkFig19(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl, err := benchRunner().Fig19()
		reportTable(b, tbl, err)
	}
}

// --- Parallel experiment engine (make bench-parallel) ---

// benchFig8J regenerates Fig. 8 from a cold in-memory memo (no
// persistent cache) at a fixed worker count; the J1/J8 pair recorded in
// BENCH_parallel.json is the parallel engine's speedup measurement.
func benchFig8J(b *testing.B, workers int) {
	for i := 0; i < b.N; i++ {
		tbl, err := NewRunner(TestConfig(), benchMixes(), workers).Fig8()
		reportTable(b, tbl, err)
	}
}

func BenchmarkFig8J1(b *testing.B) { benchFig8J(b, 1) }
func BenchmarkFig8J8(b *testing.B) { benchFig8J(b, 8) }

// --- Extension studies (paper prose claims; see internal/exp) ---

func BenchmarkExtTWTRSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl, err := benchRunner().TWTRSweep()
		reportTable(b, tbl, err)
	}
}

func BenchmarkExtSchedulerStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl, err := benchRunner().SchedulerStudy()
		reportTable(b, tbl, err)
	}
}

func BenchmarkExtBEARStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl, err := benchRunner().BEARStudy()
		reportTable(b, tbl, err)
	}
}

// --- Ablations called out in DESIGN.md ---

// BenchmarkAblationFlushFactor sweeps the OFS flushing factor (§IV-C).
func BenchmarkAblationFlushFactor(b *testing.B) {
	for _, ff := range []uint8{0, 2, 4, 6} {
		b.Run(fmt.Sprintf("FF-%d", ff), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := TestConfig()
				cfg.Benchmarks = []string{"milc", "leslie3d", "omnetpp", "gcc"}
				cfg.Design = DCA
				ctrl := core.DefaultConfig(core.DCA)
				ctrl.FlushFactor = ff
				cfg.Ctrl = &ctrl
				if _, err := Run(cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationScheduleAll sweeps the DCA read-queue hysteresis.
func BenchmarkAblationScheduleAll(b *testing.B) {
	for _, hi := range []float64{0.65, 0.85, 0.95} {
		b.Run(fmt.Sprintf("high-%.0f%%", 100*hi), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := TestConfig()
				cfg.Benchmarks = []string{"lbm", "mcf", "leslie3d", "omnetpp"}
				cfg.Design = DCA
				ctrl := core.DefaultConfig(core.DCA)
				ctrl.ScheduleAllHigh = hi
				ctrl.ScheduleAllLow = hi - 0.10
				cfg.Ctrl = &ctrl
				if _, err := Run(cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Microbenchmarks of the simulation substrate ---

func BenchmarkChannelIssue(b *testing.B) {
	g := addrmap.Geometry{Channels: 1, Ranks: 1, Banks: 16, RowBytes: 4096, BlockSize: 64}
	ch := dram.NewChannel(dram.StackedDRAM(), g)
	accs := make([]*dram.Access, 64)
	for i := range accs {
		accs[i] = &dram.Access{
			Kind:  dram.ReadData,
			Loc:   addrmap.Loc{Bank: i % 16, Row: int64(i / 16), Col: i % 64},
			Bytes: 64,
		}
	}
	b.ResetTimer()
	now := ch.BusFreeAt()
	for i := 0; i < b.N; i++ {
		now = ch.Issue(accs[i%len(accs)], now)
	}
}

func BenchmarkEventEngine(b *testing.B) {
	var eng event.Engine
	fn := func() {}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.After(10, fn)
		if i%64 == 63 {
			eng.Run()
		}
	}
	eng.Run()
}

// benchEventDeltas schedules bursts of 64 events at the given delta
// menu and drains between bursts — the schedule/fire rhythm the
// simulator itself produces. Each menu targets one regime of the
// timing wheel (see internal/event/wheel.go).
func benchEventDeltas(b *testing.B, deltas []simtime.Time) {
	var eng event.Engine
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.After(deltas[i%len(deltas)], fn)
		if i%64 == 63 {
			eng.Run()
		}
	}
	eng.Run()
}

// benchUniformDeltas spreads schedules uniformly across the inner two
// wheel levels (up to ~1 µs), so pops regularly cascade level-1
// buckets down to level 0.
var benchUniformDeltas = func() []simtime.Time {
	d := make([]simtime.Time, 1024)
	x := uint64(0x9e3779b97f4a7c15)
	for i := range d {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		d[i] = simtime.Time(x%(1<<20) + 1)
	}
	return d
}()

// BenchmarkEventUniform measures the cascade-heavy regime: uniform
// deltas spanning levels 0–1.
func BenchmarkEventUniform(b *testing.B) { benchEventDeltas(b, benchUniformDeltas) }

// BenchmarkEventDRAMClustered measures the regime the characterization
// test (internal/sim) shows real runs live in: deltas drawn from the
// fixed DRAM timing constants, all inside the level-0 window, so
// nearly every schedule is a direct O(1) bucket append.
func BenchmarkEventDRAMClustered(b *testing.B) {
	benchEventDeltas(b, []simtime.Time{
		250, 1670, 3330, 5000, 7500, 8000, 11330, 15000, 27330, 30000, 50000,
	})
}

// BenchmarkEventSpill measures the far-future overflow path: deltas
// beyond the outermost wheel level land in the sorted spill and are
// refilled back into the wheel when the clock approaches them.
func BenchmarkEventSpill(b *testing.B) {
	benchEventDeltas(b, []simtime.Time{
		1 << 41, 1<<41 + 512, 3 << 40, 1<<41 + 3*256, 1 << 42,
	})
}

func BenchmarkWorkloadGen(b *testing.B) {
	prof, _ := workload.Lookup("milc")
	g := workload.NewGen(prof, 1, 0, 0.1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.Next()
	}
}

// BenchmarkSimOneRun measures one complete small multiprogrammed
// simulation (warm-up plus timed region).
func BenchmarkSimOneRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := TestConfig()
		cfg.Benchmarks = []string{"soplex", "mcf", "gcc", "libquantum"}
		cfg.Design = DCA
		if _, err := Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}
